// tools/rmt_fuzz.cpp — the structured-fuzzer CLI over check/fuzz.hpp.
//
//   rmt_fuzz [--seed S] [--mutants N] [--diff-checks N] [--store-checks N]
//            [--max-nodes N] [--jobs N] [--corpus DIR]... [--artifacts DIR]
//            [--trace-out FILE] [--self-test]
//
// Runs the parser-robustness, differential-decider and store-image loops (see
// check/fuzz.hpp for the contracts) and prints the one-line report
// summary. Exit status: 0 when clean, 2 on findings (after writing each
// finding's input + detail under --artifacts and dumping the flight
// recorder to --trace-out), 1 on usage errors.
//
// --self-test proves the harness *detects* divergence: it runs a short
// differential pass with a deliberately-broken RMT decider (inverts the
// reference's answer) and expects decider-diverged findings, then a clean
// pass with the real deciders and expects none. Wired as the fuzz_selftest
// ctest — the fuzz gate is only trustworthy while this stays green.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/rmt_cut.hpp"
#include "check/fuzz.hpp"
#include "obs/trace.hpp"

namespace {

using rmt::propcheck::FuzzOptions;
using rmt::propcheck::FuzzReport;

[[noreturn]] void usage(const std::string& why) {
  std::cerr << "rmt_fuzz: " << why << "\n"
            << "usage: rmt_fuzz [--seed S] [--mutants N] [--diff-checks N]\n"
            << "                [--store-checks N] [--max-nodes N] [--jobs N]\n"
            << "                [--corpus DIR]... [--artifacts DIR]\n"
            << "                [--trace-out FILE] [--self-test]\n";
  std::exit(1);
}

std::uint64_t parse_u64(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    usage(flag + " needs a non-negative integer, got '" + value + "'");
  }
}

void print_findings(const FuzzReport& report) {
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const auto& f = report.findings[i];
    std::cerr << "finding " << i << ": " << f.kind << " (unit " << f.index << ", seed "
              << f.seed << "): " << f.detail << "\n";
  }
}

int self_test(FuzzOptions opts) {
  // Small but real: the broken decider must see enough instances to
  // diverge on at least one (any instance with a cut answer flips).
  opts.parser_mutants = 200;
  opts.diff_checks = 40;
  opts.store_checks = 80;
  FuzzOptions broken = opts;
  broken.rmt_decider = [](const rmt::Instance& inst) {
    // Deliberately wrong: report the opposite existence answer.
    const auto ref = rmt::analysis::find_rmt_cut_reference(inst);
    if (ref) return std::optional<rmt::analysis::RmtCutWitness>{};
    return std::optional<rmt::analysis::RmtCutWitness>{rmt::analysis::RmtCutWitness{}};
  };
  const FuzzReport caught = rmt::propcheck::run_fuzz(broken);
  bool saw_decider_finding = false;
  for (const auto& f : caught.findings) saw_decider_finding |= f.kind == "decider-diverged";
  if (!saw_decider_finding) {
    std::cerr << "self-test: broken decider was NOT caught (" << caught.summary() << ")\n";
    return 1;
  }
  const FuzzReport clean = rmt::propcheck::run_fuzz(opts);
  if (!clean.ok()) {
    std::cerr << "self-test: real deciders produced findings:\n";
    print_findings(clean);
    return 1;
  }
  std::cout << "self-test: broken decider caught (" << caught.findings.size()
            << " findings), real deciders clean\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions opts;
  std::string artifacts;
  std::string trace_out;
  bool run_self_test = false;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) usage(a + " needs a value");
      return args[++i];
    };
    if (a == "--seed") opts.seed = parse_u64(a, value());
    else if (a == "--mutants") opts.parser_mutants = parse_u64(a, value());
    else if (a == "--diff-checks") opts.diff_checks = parse_u64(a, value());
    else if (a == "--store-checks") opts.store_checks = parse_u64(a, value());
    else if (a == "--max-nodes") opts.max_exact_nodes = parse_u64(a, value());
    else if (a == "--jobs") opts.svc_workers = parse_u64(a, value());
    else if (a == "--corpus") {
      try {
        for (std::string& entry : rmt::propcheck::load_corpus_dir(value()))
          opts.corpus.push_back(std::move(entry));
      } catch (const std::exception& e) {
        usage(e.what());
      }
    } else if (a == "--artifacts") artifacts = value();
    else if (a == "--trace-out") trace_out = value();
    else if (a == "--self-test") run_self_test = true;
    else usage("unknown flag '" + a + "'");
  }

  if (!trace_out.empty()) {
    rmt::obs::trace::Recorder::global().set_dump_path(trace_out);
    rmt::obs::trace::install_crash_handler();
  }

  if (run_self_test) return self_test(opts);

  const FuzzReport report = rmt::propcheck::run_fuzz(opts);
  std::cout << report.summary() << "\n";
  if (report.ok()) return 0;

  print_findings(report);
  if (!artifacts.empty()) {
    const std::size_t files = rmt::propcheck::write_artifacts(artifacts, report.findings);
    std::cerr << "wrote " << files << " artifact file(s) under " << artifacts << "\n";
  }
  if (!trace_out.empty()) rmt::obs::trace::Recorder::global().dump_now("fuzz-finding");
  return 2;
}

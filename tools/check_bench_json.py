#!/usr/bin/env python3
"""Validate the JSON artifacts emitted by the rmt observability layer.

Understands the nine schemas the repository produces:
  * rmt.bench/1    — bench/ driver reports (obs::BenchReport);
  * rmt.analyze/1  — `rmt_cli analyze --json`;
  * rmt.run/1      — `rmt_cli run --json`;
  * rmt.validate/1 — `rmt_cli validate --json` (rmt::audit diagnostics);
  * rmt.request/1  — one query to the svc serving stack (the lines
                     tools/rmt_serve reads and `rmt_cli decide` implies);
  * rmt.response/1 — the matching answer lines (rmt_serve stdout,
                     `rmt_cli decide` output);
  * rmt.trace/1    — flight-recorder span dumps (obs/trace.hpp; rmt_serve
                     --trace-out, rmt_cli --trace-out, bench --trace-out).
                     JSONL: one header line, then one line per span. Parent
                     pointers must form a well-founded forest — every
                     parent resolves within the dump to a span of the same
                     trace, no cycles, and a child's [start_ns, end_ns]
                     interval nests inside its parent's. Join references
                     must resolve too (they may cross traces: a coalesced
                     request's join span points at the leader's compute
                     span). Resolution is enforced only when the header
                     says dropped == 0 — ring overwrite legitimately evicts
                     parents in long runs;
  * rmt.campaign/1 — JSONL campaign manifests (exec::Campaign --resume
                     checkpoints). Files ending in .jsonl are validated
                     line by line: at least one header, a consistent
                     campaign identity, and well-formed shard lines
                     (shard < of, begin <= end, single-line payload);
  * rmt.store/1    — `rmt_cli store dump` JSONL: one header line naming
                     the store generation and record/byte totals, then
                     one line per record (key, seq, value_len, 16-hex
                     checksum, live flag). The header's counts must agree
                     with the record lines, and live_records <= records.

JSONL files whose lines carry rmt.request/1 / rmt.response/1 schemas (a
captured serving transcript) are validated line by line against those
checkers, files whose lines carry rmt.trace/1 against the trace rules, and
files whose lines carry rmt.store/1 against the store-dump rules, instead
of the campaign rules.

Usage:
  check_bench_json.py [--require-phases] [--require-sim] FILE [FILE ...]
  check_bench_json.py --self-test

  --require-phases  fail unless metrics.phases has at least one entry
  --require-sim     fail unless the simulator counters (sim.runs > 0)
                    are present in metrics.counters
  --self-test       validate the checkers themselves against embedded
                    good/bad documents and exit

Exit code 0 if every file validates, 1 otherwise (problems on stderr).
Wired into ctest so a malformed artifact fails the build's test suite.
"""

import argparse
import json
import math
import re
import sys

SCALAR = (str, int, float, bool)
HISTOGRAM_FIELDS = [
    "count", "total_us", "mean_us", "min_us", "p50_us", "p95_us", "p99_us", "max_us",
]
METRICS_SECTIONS = ["counters", "gauges", "phases", "histograms", "summaries"]
NETWORK_STAT_FIELDS = [
    "rounds", "honest_messages", "adversary_messages", "adversary_dropped",
    "honest_payload_bytes", "adversary_payload_bytes", "peak_round_messages",
    "quiet_rounds",
]


class Problems:
    def __init__(self, path):
        self.path = path
        self.items = []

    def add(self, msg):
        self.items.append(f"{self.path}: {msg}")


def check_histogram(h, where, problems):
    if not isinstance(h, dict):
        problems.add(f"{where}: not an object")
        return
    for field in HISTOGRAM_FIELDS:
        if not isinstance(h.get(field), (int, float)) or isinstance(h.get(field), bool):
            problems.add(f"{where}.{field}: missing or non-numeric")
    if all(isinstance(h.get(f), (int, float)) for f in ("p50_us", "p95_us", "p99_us", "max_us")):
        if not h["p50_us"] <= h["p95_us"] <= h["p99_us"] <= h["max_us"] * (1 + 1e-9):
            problems.add(f"{where}: percentiles not monotone "
                         f"(p50={h['p50_us']} p95={h['p95_us']} p99={h['p99_us']} max={h['max_us']})")
    if isinstance(h.get("count"), int) and h["count"] < 0:
        problems.add(f"{where}.count: negative")


def check_metrics(metrics, problems, require_phases, require_sim):
    if not isinstance(metrics, dict):
        problems.add("metrics: not an object")
        return
    for section in METRICS_SECTIONS:
        if not isinstance(metrics.get(section), dict):
            problems.add(f"metrics.{section}: missing or not an object")
    counters = metrics.get("counters", {})
    if isinstance(counters, dict):
        for name, v in counters.items():
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                problems.add(f"metrics.counters[{name}]: not a non-negative integer")
    for section in ("phases", "histograms"):
        entries = metrics.get(section, {})
        if isinstance(entries, dict):
            for name, h in entries.items():
                check_histogram(h, f"metrics.{section}[{name}]", problems)
    if require_phases and not metrics.get("phases"):
        problems.add("metrics.phases: empty (per-phase timings required; "
                     "was observability enabled in the producer?)")
    if require_sim:
        if not isinstance(counters, dict) or not counters.get("sim.runs"):
            problems.add("metrics.counters['sim.runs']: missing or zero "
                         "(simulator counters required)")


def check_bench(doc, problems, args):
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        problems.add("name: missing or empty")
    run = doc.get("run")
    if not isinstance(run, dict):
        problems.add("run: missing or not an object (the run anchors)")
    else:
        for field in ("start_unix_ms", "mono_anchor_ns"):
            if not _is_uint(run.get(field)):
                problems.add(f"run.{field}: missing or not a non-negative integer")
    columns = doc.get("columns")
    if not (isinstance(columns, list) and columns
            and all(isinstance(c, str) for c in columns)):
        problems.add("columns: must be a non-empty array of strings")
        columns = []
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.add("rows: must be a non-empty array")
        rows = []
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            problems.add(f"rows[{i}]: not an object")
            continue
        if columns and list(row.keys()) != columns:
            problems.add(f"rows[{i}]: keys {list(row.keys())} != columns {columns}")
        for key, v in row.items():
            if not isinstance(v, SCALAR):
                problems.add(f"rows[{i}][{key}]: non-scalar value")
    # Answer-identity columns are a hard gate, not a data point: a bench
    # that declares `identical` (e.g. bench_decider's seed-vs-optimized
    # witness comparison) asserts its optimized paths reproduce the seed
    # answers bit for bit. Any row that is not literally true fails.
    if "identical" in columns:
        for i, row in enumerate(rows):
            if isinstance(row, dict) and row.get("identical") is not True:
                problems.add(f"rows[{i}].identical: {row.get('identical')!r} "
                             f"(optimized answer diverged from seed)")
    # Budget columns are the same kind of gate: bench_trace_overhead's
    # `within_budget` asserts the measured tracing overhead stayed under
    # its hard per-row budget. Any row that is not literally true fails.
    if "within_budget" in columns:
        for i, row in enumerate(rows):
            if isinstance(row, dict) and row.get("within_budget") is not True:
                problems.add(f"rows[{i}].within_budget: {row.get('within_budget')!r} "
                             f"(measured overhead exceeded the hard budget)")
    # Throughput columns (`qps`, `qps_tcp`, `qps_direct`, ...) must be
    # usable numbers: a NaN, infinity, negative, or non-numeric cell means
    # the driver's timing loop broke (zero wall time, overflow) and the
    # artifact cannot be compared across runs. Timings are never *asserted*
    # beyond that — this is a sanity rule, not a perf gate.
    for col in columns:
        if col != "qps" and not col.startswith("qps_"):
            continue
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                continue
            v = row.get(col)
            if isinstance(v, bool) or not isinstance(v, (int, float)) \
                    or not math.isfinite(v) or v < 0:
                problems.add(f"rows[{i}].{col}: {v!r} "
                             f"(throughput must be a non-negative finite number)")
    # BENCH_store.json column rules: bench_store's rows compare cold
    # compute against the memory tier and the disk tier after a restart,
    # so the timing/speedup cells must be usable non-negative finite
    # numbers (the identical column is already gated above). A missing
    # column means the driver's schema drifted from the dashboard's.
    if name == "bench_store":
        required = ["workload", "cold_us", "mem_warm_us", "disk_warm_us",
                    "speedup_mem", "speedup_disk", "identical"]
        for col in required:
            if col not in columns:
                problems.add(f"columns: bench_store requires {col!r}")
        for col in ("cold_us", "mem_warm_us", "disk_warm_us",
                    "speedup_mem", "speedup_disk"):
            if col not in columns:
                continue
            for i, row in enumerate(rows):
                if not isinstance(row, dict):
                    continue
                v = row.get(col)
                if isinstance(v, bool) or not isinstance(v, (int, float)) \
                        or not math.isfinite(v) or v < 0:
                    problems.add(f"rows[{i}].{col}: {v!r} "
                                 f"(must be a non-negative finite number)")
    check_metrics(doc.get("metrics"), problems, args.require_phases, args.require_sim)


def check_analyze(doc, problems, args):
    inst = doc.get("instance")
    if not isinstance(inst, dict):
        problems.add("instance: missing or not an object")
    else:
        for field in ("players", "channels", "dealer", "receiver", "maximal_sets"):
            if not isinstance(inst.get(field), int) or isinstance(inst.get(field), bool):
                problems.add(f"instance.{field}: missing or non-integer")
    for field in ("rmt_solvable", "zcpa_solvable", "full_knowledge_solvable"):
        if not isinstance(doc.get(field), bool):
            problems.add(f"{field}: missing or non-boolean")
    if "rmt_cut_witness" not in doc:
        problems.add("rmt_cut_witness: missing (null expected when solvable)")
    check_metrics(doc.get("metrics"), problems, args.require_phases, args.require_sim)


def check_run(doc, problems, args):
    for field in ("correct", "wrong"):
        if not isinstance(doc.get(field), bool):
            problems.add(f"{field}: missing or non-boolean")
    if "decision" not in doc:
        problems.add("decision: missing (null expected on abstention)")
    stats = doc.get("stats")
    if not isinstance(stats, dict):
        problems.add("stats: missing or not an object")
    else:
        for field in NETWORK_STAT_FIELDS:
            if not isinstance(stats.get(field), int) or isinstance(stats.get(field), bool):
                problems.add(f"stats.{field}: missing or non-integer")
    phases = doc.get("phases")
    if not isinstance(phases, dict):
        problems.add("phases: missing or not an object")
    elif args.require_phases and not phases:
        problems.add("phases: empty (per-run phase breakdown required)")
    check_metrics(doc.get("metrics"), problems, args.require_phases, args.require_sim)


def check_validate(doc, problems, args):
    inst = doc.get("instance")
    if not isinstance(inst, dict):
        problems.add("instance: missing or not an object")
    else:
        for field in ("players", "channels", "dealer", "receiver", "maximal_sets"):
            if not isinstance(inst.get(field), int) or isinstance(inst.get(field), bool):
                problems.add(f"instance.{field}: missing or non-integer")
    valid = doc.get("valid")
    if not isinstance(valid, bool):
        problems.add("valid: missing or non-boolean")
    diags = doc.get("diagnostics")
    if not isinstance(diags, list):
        problems.add("diagnostics: missing or not an array")
        diags = []
    for i, d in enumerate(diags):
        if not isinstance(d, dict):
            problems.add(f"diagnostics[{i}]: not an object")
            continue
        for field in ("component", "message"):
            if not isinstance(d.get(field), str) or not d.get(field):
                problems.add(f"diagnostics[{i}].{field}: missing or empty")
    if valid is True and diags:
        problems.add("diagnostics: non-empty although valid=true")
    if valid is False and not diags:
        problems.add("diagnostics: empty although valid=false")
    check_metrics(doc.get("metrics"), problems, args.require_phases, args.require_sim)


def _is_uint(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


# --- the svc wire protocol (rmt.request/1 / rmt.response/1) ------------------

# The four engine query kinds plus the "stats" / "trace" probes rmt_serve
# answers without consulting the engine.
REQUEST_KINDS = ["decide_rmt", "decide_zpp", "analyze", "simulate", "stats", "trace"]
RESPONSE_STATUSES = ["ok", "deadline_exceeded", "error"]
KEY_HEX_RE = re.compile(r"^[0-9a-f]{32}$")


def check_request(doc, problems, args):
    if not isinstance(doc.get("id"), str):
        problems.add("id: missing or not a string")
    kind = doc.get("kind")
    if kind not in REQUEST_KINDS:
        problems.add(f"kind: {kind!r} not one of {REQUEST_KINDS}")
    if not isinstance(doc.get("instance"), str):
        problems.add("instance: missing or not a string (the embedded "
                     "rmt-instance v1 text)")
    elif kind not in ("stats", "trace") and "rmt-instance v1" not in doc["instance"]:
        problems.add("instance: does not contain an 'rmt-instance v1' header")
    if "deadline_ms" in doc and not _is_uint(doc["deadline_ms"]):
        problems.add("deadline_ms: not a non-negative integer")
    if "no_cache" in doc and not isinstance(doc["no_cache"], bool):
        problems.add("no_cache: not a boolean")
    params = doc.get("params")
    if params is not None:
        if not isinstance(params, dict):
            problems.add("params: not an object")
        else:
            for field in ("value", "seed", "max_rounds"):
                if field in params and not _is_uint(params[field]):
                    problems.add(f"params.{field}: not a non-negative integer")
            if "strategy" in params and not isinstance(params["strategy"], str):
                problems.add("params.strategy: not a string")
            corrupted = params.get("corrupted")
            if corrupted is not None and not (
                    isinstance(corrupted, list) and all(_is_uint(v) for v in corrupted)):
                problems.add("params.corrupted: not an array of node ids")


def check_response(doc, problems, args):
    if not isinstance(doc.get("id"), str):
        problems.add("id: missing or not a string")
    status = doc.get("status")
    if status not in RESPONSE_STATUSES:
        problems.add(f"status: {status!r} not one of {RESPONSE_STATUSES}")
    key = doc.get("key", "absent")
    if key == "absent":
        problems.add("key: missing (null expected when unknown)")
    elif key is not None and not (isinstance(key, str) and KEY_HEX_RE.match(key)):
        problems.add(f"key: {key!r} is neither null nor 32 lowercase hex chars")
    result = doc.get("result", "absent")
    if status == "ok":
        if not isinstance(result, dict):
            problems.add("result: missing or not an object although status is ok")
    elif result is not None:
        problems.add(f"result: must be null when status is {status!r}")
    error = doc.get("error", "absent")
    if status == "error":
        if not isinstance(error, str) or not error:
            problems.add("error: missing or empty although status is error")
    elif error is not None:
        problems.add(f"error: must be null when status is {status!r}")
    for field in ("cached", "coalesced"):
        if not isinstance(doc.get(field), bool):
            problems.add(f"{field}: missing or not a boolean")
    wall = doc.get("wall_us")
    if not isinstance(wall, (int, float)) or isinstance(wall, bool) or wall < 0:
        problems.add("wall_us: missing or not a non-negative number")
    trace_id = doc.get("trace_id", "absent")
    if trace_id == "absent":
        problems.add("trace_id: missing (null expected when tracing is off)")
    elif trace_id is not None and not (isinstance(trace_id, str)
                                       and SPAN_HEX_RE.match(trace_id)):
        problems.add(f"trace_id: {trace_id!r} is neither null nor 16 lowercase hex chars")


# --- the flight-recorder dump (rmt.trace/1 JSONL) ----------------------------

SPAN_HEX_RE = re.compile(r"^[0-9a-f]{16}$")
TRACE_HEADER_FIELDS = ["run_start_unix_ms", "mono_anchor_ns", "capacity",
                       "recorded", "dropped"]
SPAN_KINDS = ["span", "join"]


def _check_trace_span(doc, where, problems):
    """Per-line span checks; returns the decoded span or None."""
    ok = True
    for field in ("trace", "span"):
        v = doc.get(field)
        if not (isinstance(v, str) and SPAN_HEX_RE.match(v)):
            problems.add(f"{where}.{field}: {v!r} is not 16 lowercase hex chars")
            ok = False
    for field in ("parent", "join"):
        v = doc.get(field, "absent")
        if v == "absent":
            problems.add(f"{where}.{field}: missing (null expected for none)")
            ok = False
        elif v is not None and not (isinstance(v, str) and SPAN_HEX_RE.match(v)):
            problems.add(f"{where}.{field}: {v!r} is neither null nor 16 hex chars")
            ok = False
    if not isinstance(doc.get("name"), str) or not doc.get("name"):
        problems.add(f"{where}.name: missing or empty")
        ok = False
    kind = doc.get("kind")
    if kind not in SPAN_KINDS:
        problems.add(f"{where}.kind: {kind!r} not one of {SPAN_KINDS}")
        ok = False
    elif (kind == "join") != (doc.get("join") is not None):
        problems.add(f"{where}: kind {kind!r} inconsistent with join "
                     f"{doc.get('join')!r} (joins and only joins carry a target)")
    for field in ("start_ns", "end_ns"):
        if not _is_uint(doc.get(field)):
            problems.add(f"{where}.{field}: missing or not a non-negative integer")
            ok = False
    if ok and doc["end_ns"] < doc["start_ns"]:
        problems.add(f"{where}: end_ns {doc['end_ns']} < start_ns {doc['start_ns']}")
    if "attrs" in doc and not isinstance(doc["attrs"], str):
        problems.add(f"{where}.attrs: not a string")
    return doc if ok else None


def check_trace_lines(lines, problems):
    """Validate an rmt.trace/1 dump, given its decoded lines.

    Structure first (every line), then the parent-pointer forest: parents
    resolve in-trace with nested intervals and no cycles, joins resolve
    (possibly cross-trace). Resolution is only enforced when the header
    reports dropped == 0 — an overwritten ring legitimately loses parents.
    """
    header = None
    spans = []
    for i, doc in lines:
        where = f"line {i}"
        if not isinstance(doc, dict):
            problems.add(f"{where}: not an object")
            continue
        if doc.get("schema") != "rmt.trace/1":
            problems.add(f"{where}: schema is not rmt.trace/1")
            continue
        if "span" not in doc:  # header line
            if header is not None:
                problems.add(f"{where}: second header line")
                continue
            if spans:
                problems.add(f"{where}: header after span lines")
            header = doc
            for field in TRACE_HEADER_FIELDS:
                if not _is_uint(doc.get(field)):
                    problems.add(f"{where} (header).{field}: missing or not a "
                                 f"non-negative integer")
            if _is_uint(doc.get("recorded")) and _is_uint(doc.get("dropped")) \
                    and doc["dropped"] > doc["recorded"]:
                problems.add(f"{where} (header): dropped {doc['dropped']} > "
                             f"recorded {doc['recorded']}")
            continue
        span = _check_trace_span(doc, where, problems)
        if span is not None:
            spans.append((i, span))
    if header is None:
        problems.add("no rmt.trace/1 header line found")
        return
    if _is_uint(header.get("capacity")) and len(spans) > header["capacity"]:
        problems.add(f"{len(spans)} span lines exceed the header capacity "
                     f"{header['capacity']}")
    if _is_uint(header.get("recorded")) and _is_uint(header.get("dropped")) \
            and header["dropped"] == 0 \
            and len(lines) - 1 == len(spans) and len(spans) != header["recorded"]:
        problems.add(f"header says recorded={header['recorded']} dropped=0 "
                     f"but the dump carries {len(spans)} span lines")
    by_id = {}
    for i, span in spans:
        if span["span"] in by_id:
            problems.add(f"line {i}: duplicate span id {span['span']}")
        else:
            by_id[span["span"]] = (i, span)
    complete = _is_uint(header.get("dropped")) and header["dropped"] == 0
    for i, span in spans:
        parent = span.get("parent")
        if parent is not None and parent not in by_id and complete:
            problems.add(f"line {i}: parent {parent} does not resolve "
                         f"(and the header says dropped == 0)")
        join = span.get("join")
        if join is not None and join not in by_id and complete:
            problems.add(f"line {i}: join {join} does not resolve "
                         f"(and the header says dropped == 0)")
    for i, span in spans:
        parent = span.get("parent")
        target = by_id.get(parent) if parent is not None else None
        if target is None:
            continue
        pi, p = target
        if p["trace"] != span["trace"]:
            problems.add(f"line {i}: parent {parent} (line {pi}) belongs to "
                         f"trace {p['trace']}, child to {span['trace']}")
        if not (p["start_ns"] <= span["start_ns"] and span["end_ns"] <= p["end_ns"]):
            problems.add(
                f"line {i}: interval [{span['start_ns']}, {span['end_ns']}] not "
                f"inside parent's [{p['start_ns']}, {p['end_ns']}] (line {pi})")
    # Cycle detection over the parent forest (resolved edges only).
    state = {}  # span id -> 1 (on stack) | 2 (done)
    for sid in by_id:
        path = []
        cur = sid
        while cur is not None and cur in by_id and state.get(cur) != 2:
            if state.get(cur) == 1:
                problems.add(f"parent cycle through span {cur} "
                             f"(line {by_id[cur][0]})")
                break
            state[cur] = 1
            path.append(cur)
            cur = by_id[cur][1].get("parent")
        for s in path:
            state[s] = 2


def check_wire_lines(lines, problems):
    """Validate a serving transcript: every line a request or a response."""
    if not lines:
        problems.add("empty transcript")
        return
    args = argparse.Namespace(require_phases=False, require_sim=False)
    for i, doc in lines:
        where = f"line {i}"
        if not isinstance(doc, dict):
            problems.add(f"{where}: not an object")
            continue
        checker = WIRE_CHECKERS.get(doc.get("schema"))
        if checker is None:
            problems.add(f"{where}: schema {doc.get('schema')!r} is not a wire schema")
            continue
        sub = Problems(f"{problems.path}: {where}")
        checker(doc, sub, args)
        problems.items.extend(sub.items)


def check_campaign_lines(lines, problems):
    """Validate an rmt.campaign/1 JSONL manifest, given its decoded lines.

    Concatenated subset manifests are legal (several identical headers);
    what must never happen is two lines disagreeing on the campaign
    identity, or a shard line whose geometry is self-contradictory.
    """
    headers = 0
    identity = None  # (campaign, root_seed, total_units, shards)
    for i, doc in lines:
        where = f"line {i}"
        if not isinstance(doc, dict):
            problems.add(f"{where}: not an object")
            continue
        if doc.get("schema") != "rmt.campaign/1":
            problems.add(f"{where}: schema is not rmt.campaign/1")
            continue
        if not isinstance(doc.get("campaign"), str) or not doc.get("campaign"):
            problems.add(f"{where}: campaign: missing or empty")
            continue
        if "shard" not in doc:  # header line
            headers += 1
            for field in ("root_seed", "total_units", "shards"):
                if not _is_uint(doc.get(field)):
                    problems.add(f"{where} (header).{field}: missing or not a non-negative int")
            ident = (doc.get("campaign"), doc.get("root_seed"),
                     doc.get("total_units"), doc.get("shards"))
            if identity is None:
                identity = ident
            elif ident != identity:
                problems.add(f"{where} (header): identity {ident} != first header {identity}")
            continue
        for field in ("shard", "of", "begin", "end", "seed"):
            if not _is_uint(doc.get(field)):
                problems.add(f"{where}.{field}: missing or not a non-negative int")
        if identity is not None and doc["campaign"] != identity[0]:
            problems.add(f"{where}: campaign {doc['campaign']!r} != header {identity[0]!r}")
        if _is_uint(doc.get("shard")) and _is_uint(doc.get("of")) and doc["shard"] >= doc["of"]:
            problems.add(f"{where}: shard {doc['shard']} >= of {doc['of']}")
        if _is_uint(doc.get("begin")) and _is_uint(doc.get("end")) and doc["begin"] > doc["end"]:
            problems.add(f"{where}: begin {doc['begin']} > end {doc['end']}")
        wall = doc.get("wall_us")
        if not isinstance(wall, (int, float)) or isinstance(wall, bool) or wall < 0:
            problems.add(f"{where}.wall_us: missing or not a non-negative number")
        payload = doc.get("payload")
        if not isinstance(payload, str):
            problems.add(f"{where}.payload: missing or not a string")
        elif "\n" in payload:
            problems.add(f"{where}.payload: contains a newline")
    if headers == 0:
        problems.add("no rmt.campaign/1 header line found")


STORE_CHECKSUM_RE = re.compile(r"^[0-9a-f]{16}$")
STORE_HEADER_FIELDS = ["generation", "records", "live_records", "bytes", "valid_prefix"]
STORE_RECORD_FIELDS = ["key", "seq", "value_len", "checksum", "live"]


def check_store_lines(lines, problems):
    """Validate an rmt.store/1 dump (`rmt_cli store dump` JSONL).

    One header first, then one line per record. The header's counts are
    cross-checked against the record lines: a dump whose header claims
    more (or fewer) records than it carries came from a different log.
    """
    if not lines:
        problems.add("empty store dump")
        return
    header = None
    record_lines = 0
    live_lines = 0
    for i, doc in lines:
        where = f"line {i}"
        if not isinstance(doc, dict):
            problems.add(f"{where}: not an object")
            continue
        if doc.get("schema") != "rmt.store/1":
            problems.add(f"{where}: schema is not rmt.store/1")
            continue
        if "key" not in doc:  # header line
            if header is not None:
                problems.add(f"{where}: second header line")
                continue
            if record_lines:
                problems.add(f"{where}: header after record lines")
            header = doc
            for field in STORE_HEADER_FIELDS:
                if not _is_uint(doc.get(field)):
                    problems.add(f"{where} (header).{field}: missing or not a "
                                 f"non-negative integer")
            if not isinstance(doc.get("torn"), bool):
                problems.add(f"{where} (header).torn: missing or non-boolean")
            if _is_uint(doc.get("live_records")) and _is_uint(doc.get("records")) \
                    and doc["live_records"] > doc["records"]:
                problems.add(f"{where} (header): live_records "
                             f"{doc['live_records']} > records {doc['records']}")
            continue
        record_lines += 1
        for field in STORE_RECORD_FIELDS:
            if field not in doc:
                problems.add(f"{where}.{field}: missing")
        if not isinstance(doc.get("key"), str) or not doc.get("key"):
            problems.add(f"{where}.key: missing or empty")
        for field in ("seq", "value_len"):
            if field in doc and not _is_uint(doc.get(field)):
                problems.add(f"{where}.{field}: not a non-negative integer")
        checksum = doc.get("checksum")
        if checksum is not None and (not isinstance(checksum, str)
                                     or not STORE_CHECKSUM_RE.match(checksum)):
            problems.add(f"{where}.checksum: {checksum!r} (expected 16 hex digits)")
        live = doc.get("live")
        if live is not None and not isinstance(live, bool):
            problems.add(f"{where}.live: non-boolean")
        if live is True:
            live_lines += 1
    if header is None:
        problems.add("no rmt.store/1 header line found")
        return
    if _is_uint(header.get("records")) and record_lines != header["records"]:
        problems.add(f"header says records={header['records']} but the dump "
                     f"carries {record_lines} record lines")
    if _is_uint(header.get("live_records")) and live_lines != header["live_records"]:
        problems.add(f"header says live_records={header['live_records']} but "
                     f"{live_lines} record lines are live")


def read_jsonl(path, problems):
    try:
        with open(path, encoding="utf-8") as f:
            raw = f.readlines()
    except OSError as e:
        problems.add(f"unreadable: {e}")
        return []
    lines = []
    for i, text in enumerate(raw, start=1):
        if not text.strip():
            continue
        try:
            lines.append((i, json.loads(text)))
        except json.JSONDecodeError as e:
            problems.add(f"line {i}: invalid JSON: {e}")
    return lines


CHECKERS = {
    "rmt.bench/1": check_bench,
    "rmt.analyze/1": check_analyze,
    "rmt.run/1": check_run,
    "rmt.validate/1": check_validate,
    "rmt.request/1": check_request,
    "rmt.response/1": check_response,
}
WIRE_CHECKERS = {
    "rmt.request/1": check_request,
    "rmt.response/1": check_response,
}


def check_file(path, args):
    problems = Problems(path)
    if path.endswith(".jsonl"):
        lines = read_jsonl(path, problems)
        schemas = {doc.get("schema") for _, doc in lines if isinstance(doc, dict)}
        if schemas and schemas <= set(WIRE_CHECKERS):
            check_wire_lines(lines, problems)
        elif schemas == {"rmt.trace/1"}:
            check_trace_lines(lines, problems)
        elif schemas == {"rmt.store/1"}:
            check_store_lines(lines, problems)
        else:
            check_campaign_lines(lines, problems)
        return problems.items
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        problems.add(f"unreadable or invalid JSON: {e}")
        return problems.items
    if not isinstance(doc, dict):
        problems.add("top level is not an object")
        return problems.items
    schema = doc.get("schema")
    checker = CHECKERS.get(schema)
    if checker is None:
        problems.add(f"schema: unknown or missing ({schema!r}); "
                     f"expected one of {sorted(CHECKERS)}")
        return problems.items
    checker(doc, problems, args)
    return problems.items


def _selftest_docs():
    metrics = {s: {} for s in METRICS_SECTIONS}
    hist = {f: 1 for f in HISTOGRAM_FIELDS}
    inst = {"players": 8, "channels": 9, "dealer": 0, "receiver": 7, "maximal_sets": 3}
    stats = {f: 0 for f in NETWORK_STAT_FIELDS}
    run = {"start_unix_ms": 1754600000000, "mono_anchor_ns": 123456789}
    good = [
        {"schema": "rmt.bench/1", "name": "b", "run": run, "columns": ["n"],
         "rows": [{"n": 4}], "metrics": metrics},
        {"schema": "rmt.bench/1", "name": "bench_decider", "run": run,
         "columns": ["decider", "identical"],
         "rows": [{"decider": "rmt-seed", "identical": True},
                  {"decider": "rmt-incr", "identical": True}],
         "metrics": metrics},
        {"schema": "rmt.bench/1", "name": "bench_trace", "run": run,
         "columns": ["row", "per_span_ns", "within_budget"],
         "rows": [{"row": "span-idle", "per_span_ns": 3.5, "within_budget": True}],
         "metrics": metrics},
        {"schema": "rmt.bench/1", "name": "bench_net", "run": run,
         "columns": ["clients", "qps_tcp", "qps_direct", "identical"],
         "rows": [{"clients": 1, "qps_tcp": 20587.2, "qps_direct": 114766.9,
                   "identical": True},
                  {"clients": 8, "qps_tcp": 0, "qps_direct": 111645.3,
                   "identical": True}],
         "metrics": metrics},
        {"schema": "rmt.bench/1", "name": "bench_store", "run": run,
         "columns": ["workload", "cold_us", "mem_warm_us", "disk_warm_us",
                     "speedup_mem", "speedup_disk", "identical"],
         "rows": [{"workload": "cycle-20", "cold_us": 470.8, "mem_warm_us": 12.5,
                   "disk_warm_us": 14.5, "speedup_mem": 37.7, "speedup_disk": 32.5,
                   "identical": True}],
         "metrics": metrics},
        {"schema": "rmt.analyze/1", "instance": inst, "rmt_solvable": True,
         "rmt_cut_witness": None, "zcpa_solvable": True,
         "full_knowledge_solvable": True, "metrics": metrics},
        {"schema": "rmt.run/1", "decision": 42, "correct": True, "wrong": False,
         "stats": stats, "phases": {"sim.route": hist}, "metrics": metrics},
        {"schema": "rmt.validate/1", "instance": inst, "valid": True,
         "diagnostics": [], "metrics": metrics},
        {"schema": "rmt.validate/1", "instance": inst, "valid": False,
         "diagnostics": [{"component": "graph", "message": "asymmetric adjacency"}],
         "metrics": metrics},
        {"schema": "rmt.request/1", "id": "q1", "kind": "decide_rmt",
         "instance": "rmt-instance v1\nnodes 3\n"},
        {"schema": "rmt.request/1", "id": "q2", "kind": "simulate",
         "instance": "rmt-instance v1\nnodes 3\n", "deadline_ms": 50,
         "no_cache": True,
         "params": {"value": 7, "corrupted": [1], "strategy": "silent",
                    "seed": 9, "max_rounds": 0}},
        {"schema": "rmt.request/1", "id": "st", "kind": "stats", "instance": ""},
        {"schema": "rmt.response/1", "id": "q1", "status": "ok",
         "key": "bc6adf4f00f0be648b62687f484b0ff8", "result": {"solvable": True},
         "error": None, "cached": False, "coalesced": True, "wall_us": 12.5,
         "trace_id": "7f3a9c51d2e80b64"},
        {"schema": "rmt.response/1", "id": "q2", "status": "deadline_exceeded",
         "key": "bc6adf4f00f0be648b62687f484b0ff8", "result": None,
         "error": None, "cached": False, "coalesced": False, "wall_us": 0,
         "trace_id": None},
        {"schema": "rmt.response/1", "id": "", "status": "error", "key": None,
         "result": None, "error": "missing field 'kind'", "cached": False,
         "coalesced": False, "wall_us": 0.0, "trace_id": None},
    ]
    bad = [
        {"schema": "rmt.unknown/9"},
        {"schema": "rmt.bench/1", "name": "", "run": run, "columns": [], "rows": [],
         "metrics": metrics},
        # The run anchors are required: without them an artifact cannot be
        # aligned with the trace dump from the same process.
        {"schema": "rmt.bench/1", "name": "b", "columns": ["n"],
         "rows": [{"n": 4}], "metrics": metrics},
        {"schema": "rmt.bench/1", "name": "b", "run": {"start_unix_ms": -5},
         "columns": ["n"], "rows": [{"n": 4}], "metrics": metrics},
        # Identity gate: a declared `identical` column with any non-true
        # value (false, "yes", missing) is a divergence, not a style issue.
        {"schema": "rmt.bench/1", "name": "bench_decider", "run": run,
         "columns": ["decider", "identical"],
         "rows": [{"decider": "rmt-seed", "identical": True},
                  {"decider": "rmt-incr", "identical": False}],
         "metrics": metrics},
        {"schema": "rmt.bench/1", "name": "bench_decider", "run": run,
         "columns": ["decider", "identical"],
         "rows": [{"decider": "rmt-incr", "identical": "yes"}],
         "metrics": metrics},
        # Budget gate: within_budget is hard-checked the same way.
        {"schema": "rmt.bench/1", "name": "bench_trace", "run": run,
         "columns": ["row", "within_budget"],
         "rows": [{"row": "span-idle", "within_budget": False}],
         "metrics": metrics},
        # Throughput sanity: qps / qps_* cells must be non-negative finite
        # numbers — a negative, NaN, or textual rate is a broken timing loop.
        {"schema": "rmt.bench/1", "name": "bench_net", "run": run,
         "columns": ["clients", "qps_tcp", "identical"],
         "rows": [{"clients": 1, "qps_tcp": -3.0, "identical": True}],
         "metrics": metrics},
        {"schema": "rmt.bench/1", "name": "bench_net", "run": run,
         "columns": ["clients", "qps_tcp", "identical"],
         "rows": [{"clients": 1, "qps_tcp": float("nan"), "identical": True}],
         "metrics": metrics},
        {"schema": "rmt.bench/1", "name": "bench_net", "run": run,
         "columns": ["clients", "qps_tcp", "identical"],
         "rows": [{"clients": 1, "qps_tcp": "fast", "identical": True}],
         "metrics": metrics},
        # bench_store column rules: the schema is closed (a missing column
        # is dashboard drift) and every timing/speedup cell must be a
        # usable non-negative finite number.
        {"schema": "rmt.bench/1", "name": "bench_store", "run": run,
         "columns": ["workload", "identical"],
         "rows": [{"workload": "cycle-20", "identical": True}],
         "metrics": metrics},                                    # columns missing
        {"schema": "rmt.bench/1", "name": "bench_store", "run": run,
         "columns": ["workload", "cold_us", "mem_warm_us", "disk_warm_us",
                     "speedup_mem", "speedup_disk", "identical"],
         "rows": [{"workload": "cycle-20", "cold_us": -1.0, "mem_warm_us": 12.5,
                   "disk_warm_us": 14.5, "speedup_mem": 37.7, "speedup_disk": 32.5,
                   "identical": True}],
         "metrics": metrics},                                    # negative timing
        {"schema": "rmt.bench/1", "name": "bench_store", "run": run,
         "columns": ["workload", "cold_us", "mem_warm_us", "disk_warm_us",
                     "speedup_mem", "speedup_disk", "identical"],
         "rows": [{"workload": "cycle-20", "cold_us": 470.8, "mem_warm_us": 12.5,
                   "disk_warm_us": 14.5, "speedup_mem": 37.7,
                   "speedup_disk": float("inf"), "identical": True}],
         "metrics": metrics},                                    # infinite speedup
        {"schema": "rmt.analyze/1", "instance": {"players": "eight"},
         "rmt_solvable": "yes", "metrics": metrics},
        {"schema": "rmt.run/1", "correct": True, "wrong": False,
         "stats": {"rounds": -1.5}, "phases": {}, "metrics": metrics},
        {"schema": "rmt.validate/1", "instance": inst, "valid": True,
         "diagnostics": [{"component": "graph", "message": "stale"}],
         "metrics": metrics},
        {"schema": "rmt.validate/1", "instance": inst, "valid": False,
         "diagnostics": [], "metrics": metrics},
        {"schema": "rmt.validate/1", "instance": inst, "valid": False,
         "diagnostics": [{"component": "", "message": "x"}], "metrics": metrics},
        {"schema": "rmt.request/1", "kind": "decide_rmt",
         "instance": "rmt-instance v1\n"},                       # id missing
        {"schema": "rmt.request/1", "id": "q", "kind": "warp",
         "instance": "rmt-instance v1\n"},                       # unknown kind
        {"schema": "rmt.request/1", "id": "q", "kind": "decide_rmt",
         "instance": "not an instance"},                         # no v1 header
        {"schema": "rmt.request/1", "id": "q", "kind": "decide_rmt",
         "instance": "rmt-instance v1\n", "deadline_ms": -5},    # negative deadline
        {"schema": "rmt.request/1", "id": "q", "kind": "simulate",
         "instance": "rmt-instance v1\n",
         "params": {"corrupted": "1,2"}},                        # corrupted not a list
        {"schema": "rmt.response/1", "id": "q", "status": "late", "key": None,
         "result": None, "error": None, "cached": False, "coalesced": False,
         "wall_us": 0},                                          # unknown status
        {"schema": "rmt.response/1", "id": "q", "status": "ok", "key": "XYZ",
         "result": {}, "error": None, "cached": False, "coalesced": False,
         "wall_us": 1},                                          # malformed key
        {"schema": "rmt.response/1", "id": "q", "status": "ok", "key": None,
         "result": None, "error": None, "cached": False, "coalesced": False,
         "wall_us": 1},                                          # ok without result
        {"schema": "rmt.response/1", "id": "q", "status": "error", "key": None,
         "result": {"x": 1}, "error": "boom", "cached": False,
         "coalesced": False, "wall_us": 1},                      # result on error
        {"schema": "rmt.response/1", "id": "q", "status": "error", "key": None,
         "result": None, "error": None, "cached": False, "coalesced": False,
         "wall_us": 1},                                          # error without message
        {"schema": "rmt.response/1", "id": "q", "status": "ok", "key": None,
         "result": {}, "error": None, "cached": "no", "coalesced": False,
         "wall_us": -2},                                         # bad cached/wall_us
        {"schema": "rmt.response/1", "id": "q", "status": "ok", "key": None,
         "result": {}, "error": None, "cached": False, "coalesced": False,
         "wall_us": 1},                                          # trace_id missing
        {"schema": "rmt.response/1", "id": "q", "status": "ok", "key": None,
         "result": {}, "error": None, "cached": False, "coalesced": False,
         "wall_us": 1, "trace_id": "XYZ"},                       # malformed trace_id
    ]
    return good, bad


def _selftest_manifests():
    """Campaign manifests are JSONL, so their fixtures are line lists:
    (lineno, decoded doc), exactly what check_campaign_lines consumes."""
    header = {"schema": "rmt.campaign/1", "campaign": "sweep",
              "root_seed": 4242, "total_units": 10, "shards": 2}
    shard0 = {"schema": "rmt.campaign/1", "campaign": "sweep", "shard": 0,
              "of": 2, "begin": 0, "end": 5, "seed": 7, "wall_us": 12.5,
              "payload": "[1,2,3]"}
    shard1 = dict(shard0, shard=1, begin=5, end=10)
    good = [
        [(1, header), (2, shard0), (3, shard1)],
        # Concatenated subset manifests: duplicate identical headers are fine.
        [(1, header), (2, shard0), (3, header), (4, shard1)],
        # Header only (resume file from a run killed before any checkpoint).
        [(1, header)],
    ]
    bad = [
        [],                                                     # empty file
        [(1, shard0)],                                          # no header
        [(1, header), (2, dict(shard0, shard=2))],              # shard >= of
        [(1, header), (2, dict(shard0, begin=9, end=3))],       # begin > end
        [(1, header), (2, dict(shard0, campaign="other"))],     # identity drift
        [(1, header), (2, dict(header, root_seed=1))],          # header disagreement
        [(1, header), (2, dict(shard0, payload=["not", "a", "string"]))],
        [(1, header), (2, dict(shard0, payload="torn\nline"))],
        [(1, header), (2, dict(shard0, wall_us="fast"))],
        [(1, dict(header, schema="rmt.bench/1"))],              # wrong schema
    ]
    return good, bad


def _selftest_traces():
    """Trace dumps are JSONL, so fixtures are (lineno, doc) line lists."""
    def hx(n):
        return f"{n:016x}"

    def span(trace, sid, parent=None, name="svc.request", kind="span",
             join=None, start=0, end=100):
        return {"schema": "rmt.trace/1", "trace": hx(trace), "span": hx(sid),
                "parent": None if parent is None else hx(parent), "name": name,
                "kind": kind, "join": None if join is None else hx(join),
                "start_ns": start, "end_ns": end, "attrs": ""}

    header = {"schema": "rmt.trace/1", "run_start_unix_ms": 1754600000000,
              "mono_anchor_ns": 123, "capacity": 4096, "recorded": 4, "dropped": 0}
    root = span(1, 2)
    child = span(1, 3, parent=2, name="svc.compute", start=10, end=90)
    # A coalesced request: its own root, plus a join referencing the other
    # trace's compute span — legal cross-trace.
    root2 = span(4, 5, start=5, end=95)
    join2 = span(4, 6, parent=5, name="svc.join", kind="join", join=3,
                 start=5, end=80)
    good = [
        [(1, header), (2, root), (3, child), (4, root2), (5, join2)],
        # Empty ring: a header alone is a valid dump.
        [(1, dict(header, recorded=0))],
        # dropped > 0 relaxes resolution: an evicted parent is tolerated.
        [(1, dict(header, dropped=2)), (2, span(1, 9, parent=8))],
    ]
    bad = [
        [],                                                  # no header
        [(1, root)],                                         # span, no header
        [(1, header), (2, header)],                          # second header
        [(1, root), (2, header)],                            # header after spans
        [(1, dict(header, dropped=9))],                      # dropped > recorded
        [(1, header), (2, root), (3, root)],                 # duplicate span id
        [(1, header), (2, span(1, 9, parent=8))],            # unresolved parent
        [(1, header), (2, root),
         (3, span(4, 6, parent=None, kind="join", join=77))],  # unresolved join
        [(1, header), (2, span(1, 2, parent=3)),
         (3, span(1, 3, parent=2))],                         # parent cycle
        [(1, header), (2, root),
         (3, span(1, 3, parent=2, start=10, end=150))],      # child exceeds parent
        [(1, header), (2, root),
         (3, span(7, 3, parent=2, start=10, end=90))],       # cross-trace parent
        [(1, header), (2, span(1, 3, kind="join"))],         # join without target
        [(1, header), (2, span(1, 3, join=2)), (3, root)],   # target without join kind
        [(1, header), (2, span(1, 3, start=50, end=20))],    # end < start
        [(1, header), (2, dict(root, span="XYZ"))],          # malformed span id
        [(1, header), (2, dict(root, name=""))],             # empty name
        [(1, header), (2, dict(root, kind="event"))],        # unknown kind
    ]
    return good, bad


def _selftest_stores():
    """Store dumps are JSONL, so fixtures are (lineno, doc) line lists."""
    header = {"schema": "rmt.store/1", "generation": 1, "records": 2,
              "live_records": 1, "bytes": 345, "valid_prefix": 345, "torn": False}
    rec_dead = {"schema": "rmt.store/1", "key": "aa|decide_rmt", "seq": 0,
                "value_len": 86, "checksum": "7f3a9c51d2e80b64", "live": False}
    rec_live = dict(rec_dead, seq=1, checksum="0123456789abcdef", live=True)
    good = [
        [(1, header), (2, rec_dead), (3, rec_live)],
        # Empty store: a header alone is a valid dump.
        [(1, {"schema": "rmt.store/1", "generation": 0, "records": 0,
              "live_records": 0, "bytes": 50, "valid_prefix": 50, "torn": False})],
        # A torn log is still dumpable — the flag reports it.
        [(1, dict(header, records=1, live_records=1, torn=True)), (2, rec_live)],
    ]
    bad = [
        [],                                                   # empty dump
        [(1, rec_live)],                                      # no header
        [(1, header), (2, rec_dead), (3, header)],            # second header
        [(1, rec_dead), (2, header), (3, rec_live)],          # header after records
        [(1, dict(header, records=2, live_records=3))],       # live > total
        [(1, dict(header, torn="no")), (2, rec_dead), (3, rec_live)],
        [(1, header), (2, rec_dead)],                         # count mismatch
        [(1, header), (2, rec_dead), (3, dict(rec_live, live=False))],  # live mismatch
        [(1, header), (2, rec_dead), (3, dict(rec_live, key=""))],
        [(1, header), (2, rec_dead), (3, dict(rec_live, seq=-4))],
        [(1, header), (2, rec_dead), (3, dict(rec_live, checksum="XYZ"))],
        [(1, dict(header, schema="rmt.bench/1")), (2, rec_dead), (3, rec_live)],
    ]
    return good, bad


def self_test():
    args = argparse.Namespace(require_phases=False, require_sim=False)

    def problems_for(doc):
        problems = Problems("<self-test>")
        checker = CHECKERS.get(doc.get("schema"))
        if checker is None:
            problems.add("schema: unknown")
        else:
            checker(doc, problems, args)
        return problems.items

    good, bad = _selftest_docs()
    failures = []
    for i, doc in enumerate(good):
        items = problems_for(doc)
        if items:
            failures.append(f"good[{i}] ({doc['schema']}): unexpectedly rejected: {items}")
    for i, doc in enumerate(bad):
        if not problems_for(doc):
            failures.append(f"bad[{i}] ({doc['schema']}): unexpectedly accepted")

    def manifest_problems(lines):
        problems = Problems("<self-test>")
        check_campaign_lines(lines, problems)
        return problems.items

    good_m, bad_m = _selftest_manifests()
    for i, lines in enumerate(good_m):
        items = manifest_problems(lines)
        if items:
            failures.append(f"good manifest[{i}]: unexpectedly rejected: {items}")
    for i, lines in enumerate(bad_m):
        if not manifest_problems(lines):
            failures.append(f"bad manifest[{i}]: unexpectedly accepted")

    # Wire transcripts (request/response JSONL) go through check_wire_lines.
    def transcript_problems(lines):
        problems = Problems("<self-test>")
        check_wire_lines(lines, problems)
        return problems.items

    req = {"schema": "rmt.request/1", "id": "q", "kind": "analyze",
           "instance": "rmt-instance v1\nnodes 3\n"}
    resp = {"schema": "rmt.response/1", "id": "q", "status": "ok",
            "key": "bc6adf4f00f0be648b62687f484b0ff8", "result": {},
            "error": None, "cached": False, "coalesced": False, "wall_us": 1,
            "trace_id": None}
    good_t = [[(1, req), (2, resp)], [(1, resp)]]
    bad_t = [
        [],                                          # empty transcript
        [(1, dict(resp, schema="rmt.bench/1"))],     # not a wire schema
        [(1, req), (2, dict(resp, status="late"))],  # bad line reported with lineno
    ]
    for i, lines in enumerate(good_t):
        items = transcript_problems(lines)
        if items:
            failures.append(f"good transcript[{i}]: unexpectedly rejected: {items}")
    for i, lines in enumerate(bad_t):
        if not transcript_problems(lines):
            failures.append(f"bad transcript[{i}]: unexpectedly accepted")

    # Flight-recorder dumps go through check_trace_lines.
    def trace_problems(lines):
        problems = Problems("<self-test>")
        check_trace_lines(lines, problems)
        return problems.items

    good_tr, bad_tr = _selftest_traces()
    for i, lines in enumerate(good_tr):
        items = trace_problems(lines)
        if items:
            failures.append(f"good trace[{i}]: unexpectedly rejected: {items}")
    for i, lines in enumerate(bad_tr):
        if not trace_problems(lines):
            failures.append(f"bad trace[{i}]: unexpectedly accepted")

    # Store dumps go through check_store_lines.
    def store_problems(lines):
        problems = Problems("<self-test>")
        check_store_lines(lines, problems)
        return problems.items

    good_s, bad_s = _selftest_stores()
    for i, lines in enumerate(good_s):
        items = store_problems(lines)
        if items:
            failures.append(f"good store[{i}]: unexpectedly rejected: {items}")
    for i, lines in enumerate(bad_s):
        if not store_problems(lines):
            failures.append(f"bad store[{i}]: unexpectedly accepted")

    for f in failures:
        print(f"self-test: {f}", file=sys.stderr)
    total = (len(good) + len(bad) + len(good_m) + len(bad_m) + len(good_t) + len(bad_t)
             + len(good_tr) + len(bad_tr) + len(good_s) + len(bad_s))
    print(f"self-test: {total} documents, {len(failures)} failures")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--require-phases", action="store_true")
    parser.add_argument("--require-sim", action="store_true")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the checkers against embedded documents")
    parser.add_argument("files", nargs="*", metavar="FILE")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.files:
        parser.error("at least one FILE is required (or use --self-test)")

    failures = 0
    for path in args.files:
        items = check_file(path, args)
        if items:
            failures += 1
            for item in items:
                print(item, file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

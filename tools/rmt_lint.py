#!/usr/bin/env python3
"""Project-specific static linter for the rmt library.

Machine-enforces the conventions the code review would otherwise have to
catch by hand (wired into ctest as lint_project / lint_selftest):

  pragma-once       every header uses #pragma once as its include guard
  header-namespace  no `using namespace` at any scope in a header
  banned-token      src/ may not use rand() (Rng is seeded and forkable),
                    raw assert() (RMT_REQUIRE/RMT_CHECK throw and carry
                    messages), or iostream writes (the library reports via
                    return values and exceptions; printing is for tools/)
  thread-spawn      raw std::thread / std::jthread / std::async only inside
                    src/exec/ (everything else goes through rmt::exec's
                    ThreadPool so determinism, stats, and TSan coverage are
                    centralised); tests/ may spawn threads to race the pool
  rng-discipline    raw standard RNG engines (std::mt19937 & friends,
                    std::random_device, srand) only inside src/util/rng.hpp;
                    every other random stream goes through rmt::Rng so seeds
                    stay splitmix64-derived and every campaign cell,
                    propcheck coordinate and fuzz finding is reproducible.
                    Applies to ALL linted dirs — tests and tools included
                    (an unreproducible test failure is as bad as one in src/)
  entry-require     each registered public API entry point contains an
                    RMT_REQUIRE precondition (or an RMT_AUDIT_VALIDATE deep
                    hook) in its body
  phase-registry    the RMT_OBS_SCOPE phase names used across src/ form a
                    closed vocabulary: exactly the names listed in
                    src/obs/phase_names.hpp (both directions checked)
  svc-metric-registry
                    every "svc.*" / "cache.*" metric-name string literal in
                    C++ sources appears in src/svc/metric_names.hpp, and
                    every registered name keeps an instrumentation site in
                    src/ (both directions, mirroring phase-registry).
                    Phase names ("svc.batch", "svc.compute") belong to the
                    phase registry and span names ("svc.request", "svc.join")
                    to the span registry; both are exempt here.
  span-registry     the trace span names used across src/ form a closed
                    vocabulary: every RMT_TRACE_SPAN name must come from
                    src/obs/phase_names.hpp (the macro is RMT_OBS_SCOPE's
                    sibling), every RMT_TRACE_NAME literal must appear in
                    src/obs/span_names.hpp or the phase registry, and every
                    span-registry entry keeps an RMT_TRACE_NAME site in src/
                    (both directions, mirroring phase-registry)
  socket-discipline raw BSD socket / poll / epoll calls (socket, accept,
                    bind, listen, connect, recv, send, setsockopt, ...)
                    only inside src/net/ — every other layer, tests and
                    benches included, talks through net::Server /
                    net::Client so framing, backpressure, and the net.*
                    counters cannot be bypassed (member calls like
                    client.connect(...) are fine; it is the free functions
                    that are fenced)
  net-metric-registry
                    every "net.*" metric-name string literal in C++
                    sources appears in src/net/metric_names.hpp, and every
                    registered name keeps an instrumentation site in src/
                    (both directions, mirroring svc-metric-registry). Span
                    names ("net.conn", "net.read", "net.write") belong to
                    the span registry and are exempt here.
  io-discipline     raw POSIX file io (::open, ::write, pread, pwrite,
                    fsync, ftruncate, rename, unlink, mkdir, ...) only
                    inside src/store/ — the store owns durability, so its
                    append/fsync/rename discipline, torn-tail repair, and
                    store.* accounting cannot be bypassed by another layer
                    scribbling on the log. The crash handler's async-
                    signal-safe dump and the event loop's self-pipe are
                    grandfathered per line with a '// lint:raw-io-allowed'
                    marker carrying its justification. Common identifiers
                    (open/write/rename) trip only when ::-qualified —
                    member functions and std::filesystem stay legitimate;
                    the rare POSIX names (pread, fsync, ftruncate, ...)
                    trip bare too.
  store-metric-registry
                    every "store.*" metric-name string literal in C++
                    sources appears in src/store/metric_names.hpp, and
                    every registered name keeps an instrumentation site in
                    src/ (both directions, mirroring svc/net-metric-
                    registry). The store phase names ("store.load",
                    "store.append", "store.compact") belong to the phase
                    registry and are exempt here.
  simd-discipline   raw SIMD intrinsics (_mm*, vld1q*/vst1q*,
                    __builtin_ia32*, vendor vector types) and their
                    <immintrin.h>/<arm_neon.h> includes only inside
                    src/util/simd.hpp — every other layer calls the
                    rmt::simd kernels, so the scalar reference path, the
                    force_scalar hook, and the backend identity sweeps
                    cover ALL vector code in the tree. The
                    lint:simd-backend-registry markers in that header must
                    list exactly the RMT_SIMD_BACKEND_*-gated backends
                    (both directions checked).

Usage:
  rmt_lint.py [--repo DIR]   lint the repository (default: the linter's
                             parent repo checkout)
  rmt_lint.py --self-test    run the rules against embedded good/bad
                             fixtures instead of the repository

Exit code 0 when clean, 1 on violations (reported one per line on stderr).
"""

import argparse
import pathlib
import re
import sys

# --- rule configuration ------------------------------------------------------

BANNED_TOKENS = [
    (re.compile(r"\brand\s*\("), "rand() — use util/rng.hpp (seeded, forkable)"),
    (re.compile(r"\bassert\s*\("), "assert() — use RMT_REQUIRE/RMT_CHECK (util/check.hpp)"),
    (re.compile(r"std::cout\b"), "std::cout — the library must not write to stdout"),
    (re.compile(r"std::cerr\b"), "std::cerr — the library must not write to stderr"),
]

# Public API entry points that must keep a precondition (RMT_REQUIRE) or a
# deep-audit hook (RMT_AUDIT_VALIDATE) in their body. Listed explicitly so
# removing a guard is a reviewed decision, not an accident.
ENTRY_POINTS = [
    ("src/analysis/rmt_cut.cpp", "find_rmt_cut"),
    ("src/analysis/zpp_cut.cpp", "find_rmt_zpp_cut"),
    ("src/analysis/feasibility.cpp", "find_two_cover_cut"),
    ("src/protocols/runner.cpp", "run_rmt"),
    ("src/protocols/runner.cpp", "run_broadcast"),
    ("src/sim/network.cpp", "Network::Network"),
    ("src/graph/graph.cpp", "Graph::add_edge"),
    ("src/knowledge/view.cpp", "ViewFunction::set_view"),
    ("src/knowledge/local_knowledge.cpp", "derive_local_knowledge"),
    ("src/instance/instance.cpp", "Instance::Instance"),
]

PHASE_REGISTRY_FILE = "src/obs/phase_names.hpp"
OBS_SCOPE_RE = re.compile(r'RMT_OBS_SCOPE\(\s*"([^"]+)"\s*\)')
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")


def strip_line_comments(text):
    """Drop // comments so doc examples don't trip token rules."""
    return "\n".join(line.split("//", 1)[0] for line in text.splitlines())


# --- rules -------------------------------------------------------------------
# Each rule takes (relpath, text) and yields "relpath:line: rule: message".


def check_pragma_once(relpath, text):
    if not relpath.endswith(".hpp"):
        return
    if "#pragma once" not in text:
        yield f"{relpath}:1: pragma-once: header lacks '#pragma once'"


def check_header_namespace(relpath, text):
    if not relpath.endswith(".hpp"):
        return
    for i, line in enumerate(strip_line_comments(text).splitlines(), 1):
        if USING_NAMESPACE_RE.match(line):
            yield f"{relpath}:{i}: header-namespace: 'using namespace' in a header"


def check_banned_tokens(relpath, text):
    if not relpath.startswith("src/"):
        return
    for i, line in enumerate(strip_line_comments(text).splitlines(), 1):
        for pattern, why in BANNED_TOKENS:
            if pattern.search(line):
                yield f"{relpath}:{i}: banned-token: {why}"


THREAD_SPAWN_RE = re.compile(r"std::(?:thread|jthread|async)\b")


def check_thread_spawn(relpath, text):
    # tests/ may spawn raw threads (e.g. to race the pool from outside);
    # everyone else must go through src/exec/.
    if relpath.startswith("src/exec/") or relpath.startswith("tests/"):
        return
    for i, line in enumerate(strip_line_comments(text).splitlines(), 1):
        if THREAD_SPAWN_RE.search(line):
            yield (f"{relpath}:{i}: thread-spawn: raw std::thread/jthread/async "
                   f"outside src/exec/ — use exec::ThreadPool")


RNG_DISCIPLINE_RE = re.compile(
    r"std::(?:mt19937(?:_64)?|minstd_rand0?|random_device|default_random_engine"
    r"|knuth_b|ranlux\w+)\b|\bsrand\s*\(")
RNG_ALLOWED_FILES = {"src/util/rng.hpp"}


def check_rng_discipline(relpath, text):
    # Unlike banned-token this rule covers *every* linted dir: a test or
    # tool seeding its own std::mt19937 (or worse, std::random_device)
    # produces failures that no recorded seed can replay.
    if relpath in RNG_ALLOWED_FILES:
        return
    for i, line in enumerate(strip_line_comments(text).splitlines(), 1):
        if RNG_DISCIPLINE_RE.search(line):
            yield (f"{relpath}:{i}: rng-discipline: raw standard RNG engine/seeding "
                   f"outside src/util/rng.hpp — use rmt::Rng (splitmix64-derived seeds)")


# Free-function calls into the BSD socket / poll layer. The lookbehind
# rejects member access (client.recv(...)), pointers (sock->send(...)),
# qualified names (std::bind(...)) and longer identifiers (resend(...)),
# so only the raw C API trips the rule.
SOCKET_DISCIPLINE_RE = re.compile(
    r"(?<![\w.:>])(?:socket|accept4?|bind|listen|connect|recv|recvfrom|recvmsg"
    r"|send|sendto|sendmsg|poll|ppoll|epoll_[a-z0-9_]+|select|setsockopt"
    r"|getsockopt|getsockname|inet_pton|inet_ntop)\s*\(")


def check_socket_discipline(relpath, text):
    # src/net/ owns every socket: the transport's framing, admission,
    # backpressure, and net.* accounting must be impossible to bypass by
    # opening a raw fd elsewhere (tests and benches drive the server
    # through net::Client for the same reason).
    if relpath.startswith("src/net/"):
        return
    for i, line in enumerate(strip_line_comments(text).splitlines(), 1):
        if SOCKET_DISCIPLINE_RE.search(line):
            yield (f"{relpath}:{i}: socket-discipline: raw socket/poll call "
                   f"outside src/net/ — use net::Server / net::Client")


# Raw POSIX file io. Two tiers: names that are common C++ identifiers
# (open, write, rename — member functions, std::filesystem) trip only in
# their ::-qualified form, which is how every raw call site in this tree
# is spelled; the unmistakably-POSIX names trip bare as well. The
# lookbehind rejects members (file.open), pointers (f->write), qualified
# names (std::rename — the char before :: is a word char, the char before
# the bare name is ':'), and longer identifiers (reopen, pwrite_all).
IO_DISCIPLINE_RE = re.compile(
    r"(?<![\w.:>])(?:"
    r"::\s*(?:open|openat|creat|write|pread|pwrite|fsync|fdatasync"
    r"|ftruncate|rename|unlink|mkdir|rmdir)"
    r"|(?:openat|creat|pread|pwrite|fsync|fdatasync|ftruncate|unlink"
    r"|mkdir|rmdir)"
    r")\s*\(")
RAW_IO_ALLOWED_MARK = "lint:raw-io-allowed"


def check_io_discipline(relpath, text):
    # src/store/ owns every durable byte: the identity header, O_APPEND
    # append discipline, fsync points, and tmp+rename compaction are
    # invariants of one file, not conventions spread across layers. A raw
    # write/rename elsewhere could tear the log in ways scan_bytes was
    # never taught to repair. Grandfathered sites (the crash handler's
    # async-signal-safe dump, the event loop's self-pipe) carry a
    # lint:raw-io-allowed marker on the offending line.
    if relpath.startswith("src/store/"):
        return
    raw_lines = text.splitlines()
    for i, line in enumerate(strip_line_comments(text).splitlines(), 1):
        if IO_DISCIPLINE_RE.search(line):
            if RAW_IO_ALLOWED_MARK in raw_lines[i - 1]:
                continue
            yield (f"{relpath}:{i}: io-discipline: raw POSIX file io outside "
                   f"src/store/ — go through store::Store, or justify the line "
                   f"with '// {RAW_IO_ALLOWED_MARK}: why'")


# Raw vendor intrinsics, vector register types, and the intrinsics headers.
# The lookbehind rejects longer identifiers (commit_mm_totals, a_mm_count) so
# only the vendor namespace itself trips the rule.
SIMD_FILE = "src/util/simd.hpp"
SIMD_INTRINSIC_RE = re.compile(
    r"(?<!\w)(?:_mm\d*_[a-z0-9_]+|__m(?:64|128|256|512)[id]?\b"
    r"|__builtin_ia32_\w+|vld\d+q?_[a-z0-9_]+|vst\d+q?_[a-z0-9_]+"
    r"|(?:u?int|float|poly)(?:8|16|32|64)x\d+(?:x\d+)?_t\b)")
SIMD_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(?:immintrin|x86intrin|arm_neon|arm_sve"
    r"|[exapstw]mmintrin|avx\w*intrin)\.h>")


def check_simd_discipline(relpath, text):
    # src/util/simd.hpp owns every intrinsic: the kernels there carry the
    # scalar reference twin, the force_scalar hook, and the dispatch probe.
    # An intrinsic anywhere else is vector code the backend-identity sweeps
    # cannot reach.
    if relpath == SIMD_FILE:
        return
    for i, line in enumerate(strip_line_comments(text).splitlines(), 1):
        if SIMD_INTRINSIC_RE.search(line) or SIMD_INCLUDE_RE.search(line):
            yield (f"{relpath}:{i}: simd-discipline: raw SIMD intrinsic/vector type "
                   f"outside {SIMD_FILE} — use the rmt::simd kernels")


SIMD_BACKEND_DEFINE_RE = re.compile(r"#define\s+RMT_SIMD_BACKEND_([A-Z0-9_]+)\b")


def parse_simd_backend_registry(text):
    """Backend names listed between the lint:simd-backend-registry markers."""
    m = re.search(r"lint:simd-backend-registry-begin(.*?)lint:simd-backend-registry-end",
                  text, re.S)
    if not m:
        return None
    return set(re.findall(r"^\s*//\s*([a-z0-9_]+)\s*$", m.group(1), re.M))


def simd_backend_findings(registry, simd_text):
    """The both-direction backend check as a pure function (self-tested).

    Every RMT_SIMD_BACKEND_* gate in the header must be listed in the
    registry markers, and every listed backend must keep its gate — so
    adding a backend (or retiring one) forces the registry comment, the
    propcheck axis docs, and the reviewer to notice.
    """
    findings = []
    gated = {name.lower() for name in SIMD_BACKEND_DEFINE_RE.findall(simd_text)}
    for name in sorted(gated - registry):
        findings.append(
            f"{SIMD_FILE}:1: simd-discipline: backend '{name}' is gated by an "
            f"RMT_SIMD_BACKEND_ define but not listed in the "
            f"lint:simd-backend-registry markers")
    for name in sorted(registry - gated):
        findings.append(
            f"{SIMD_FILE}:1: simd-discipline: registered backend '{name}' has "
            f"no RMT_SIMD_BACKEND_ define left")
    return findings


def check_simd_backend_registry(repo, findings):
    path = repo / SIMD_FILE
    if not path.is_file():
        findings.append(f"{SIMD_FILE}:1: simd-discipline: kernel header is missing")
        return
    text = path.read_text(encoding="utf-8")
    registry = parse_simd_backend_registry(text)
    if registry is None:
        findings.append(f"{SIMD_FILE}:1: simd-discipline: "
                        f"lint:simd-backend-registry markers not found")
        return
    findings.extend(simd_backend_findings(registry, text))


def function_body(text, name):
    """The brace-balanced body of the first definition of `name`, or None.

    Good enough for the entry registry: finds `name` followed (possibly
    across lines) by an argument list and an opening brace, then matches
    braces textually. The sources are clang-format-clean, which keeps this
    reliable without a real parser.
    """
    # Match e.g. "find_rmt_cut(" or "Network::Network(" at a non-word boundary.
    sig = re.compile(r"(?<![\w:])" + re.escape(name) + r"\s*\(")
    m = sig.search(text)
    if not m:
        return None
    depth = 0
    start = None
    for pos in range(m.end() - 1, len(text)):
        c = text[pos]
        if c == "{":
            if start is None:
                start = pos
            depth += 1
        elif c == "}":
            depth -= 1
            if start is not None and depth == 0:
                return text[start : pos + 1]
        elif c == ";" and start is None:
            return None  # declaration only
    return None


def check_entry_requires(repo, findings):
    for relpath, name in ENTRY_POINTS:
        path = repo / relpath
        if not path.is_file():
            findings.append(f"{relpath}:1: entry-require: registered file is missing")
            continue
        body = function_body(path.read_text(encoding="utf-8"), name)
        if body is None:
            findings.append(
                f"{relpath}:1: entry-require: cannot find a definition of '{name}'")
        elif "RMT_REQUIRE" not in body and "RMT_AUDIT_VALIDATE" not in body:
            findings.append(
                f"{relpath}:1: entry-require: '{name}' has neither RMT_REQUIRE "
                f"nor RMT_AUDIT_VALIDATE")


def parse_phase_registry(text):
    """Names listed between the lint:phase-registry markers, or None."""
    m = re.search(r"lint:phase-registry-begin(.*?)lint:phase-registry-end", text, re.S)
    if not m:
        return None
    return set(re.findall(r'"([^"]+)"', m.group(1)))


def check_phase_registry(repo, sources, findings):
    registry_path = repo / PHASE_REGISTRY_FILE
    if not registry_path.is_file():
        findings.append(f"{PHASE_REGISTRY_FILE}:1: phase-registry: registry file is missing")
        return
    registry = parse_phase_registry(registry_path.read_text(encoding="utf-8"))
    if registry is None:
        findings.append(
            f"{PHASE_REGISTRY_FILE}:1: phase-registry: lint:phase-registry markers not found")
        return
    used = {}  # name -> first "file:line"
    for relpath, text in sources:
        if not relpath.startswith("src/"):
            continue
        for i, line in enumerate(strip_line_comments(text).splitlines(), 1):
            for name in OBS_SCOPE_RE.findall(line):
                used.setdefault(name, f"{relpath}:{i}")
    for name, where in sorted(used.items()):
        if name.startswith("test."):
            findings.append(
                f"{where}: phase-registry: prefix 'test.' is reserved for unit tests, "
                f"not library code ('{name}')")
        elif name not in registry:
            findings.append(
                f"{where}: phase-registry: phase '{name}' is not in {PHASE_REGISTRY_FILE}")
    for name in sorted(registry - set(used)):
        findings.append(
            f"{PHASE_REGISTRY_FILE}:1: phase-registry: registered phase '{name}' "
            f"has no RMT_OBS_SCOPE site left")


SPAN_REGISTRY_FILE = "src/obs/span_names.hpp"
TRACE_SPAN_RE = re.compile(r'RMT_TRACE_SPAN\(\s*"([^"]+)"\s*\)')
TRACE_NAME_RE = re.compile(r'RMT_TRACE_NAME\(\s*"([^"]+)"\s*\)')


def parse_span_registry(text):
    """Names listed between the lint:span-registry markers, or None."""
    m = re.search(r"lint:span-registry-begin(.*?)lint:span-registry-end", text, re.S)
    if not m:
        return None
    return set(re.findall(r'"([^"]+)"', m.group(1)))


def span_findings(span_registry, phase_names, sources):
    """The both-direction span-name check as a pure function (self-tested).

    RMT_TRACE_SPAN is RMT_OBS_SCOPE's sibling, so its names must come from
    the phase registry (the runtime audit enforces the same). RMT_TRACE_NAME
    marks a free-standing span-name literal; it may use a phase name or a
    span-registry name. Every span-registry entry must keep an
    RMT_TRACE_NAME site in src/. `sources` excludes the registry file.
    """
    findings = []
    span_used = {}   # RMT_TRACE_SPAN name -> first "file:line"
    name_used = {}   # RMT_TRACE_NAME name -> first "file:line"
    name_in_src = set()
    for relpath, text in sources:
        if not relpath.startswith("src/"):
            continue
        for i, line in enumerate(strip_line_comments(text).splitlines(), 1):
            for name in TRACE_SPAN_RE.findall(line):
                span_used.setdefault(name, f"{relpath}:{i}")
            for name in TRACE_NAME_RE.findall(line):
                name_used.setdefault(name, f"{relpath}:{i}")
                name_in_src.add(name)
    for name, where in sorted(span_used.items()):
        if name.startswith("test."):
            findings.append(
                f"{where}: span-registry: prefix 'test.' is reserved for unit tests, "
                f"not library code ('{name}')")
        elif name not in phase_names:
            findings.append(
                f"{where}: span-registry: RMT_TRACE_SPAN name '{name}' is not in "
                f"{PHASE_REGISTRY_FILE}")
    for name, where in sorted(name_used.items()):
        if name not in span_registry and name not in phase_names:
            findings.append(
                f"{where}: span-registry: span name '{name}' is in neither "
                f"{SPAN_REGISTRY_FILE} nor {PHASE_REGISTRY_FILE}")
    for name in sorted(span_registry - name_in_src):
        findings.append(
            f"{SPAN_REGISTRY_FILE}:1: span-registry: registered span name "
            f"'{name}' has no RMT_TRACE_NAME site left in src/")
    return findings


def check_span_registry(repo, sources, findings):
    registry_path = repo / SPAN_REGISTRY_FILE
    if not registry_path.is_file():
        findings.append(f"{SPAN_REGISTRY_FILE}:1: span-registry: registry file is missing")
        return
    registry = parse_span_registry(registry_path.read_text(encoding="utf-8"))
    if registry is None:
        findings.append(f"{SPAN_REGISTRY_FILE}:1: span-registry: "
                        f"lint:span-registry markers not found")
        return
    phase_path = repo / PHASE_REGISTRY_FILE
    phase_names = set()
    if phase_path.is_file():
        phase_names = parse_phase_registry(phase_path.read_text(encoding="utf-8")) or set()
    scanned = [(relpath, text) for relpath, text in sources
               if relpath != SPAN_REGISTRY_FILE]
    findings.extend(span_findings(registry, phase_names, scanned))


SVC_METRIC_REGISTRY_FILE = "src/svc/metric_names.hpp"
SVC_METRIC_LITERAL_RE = re.compile(r'"((?:svc|cache)\.[A-Za-z0-9_.]+)"')


def parse_svc_metric_registry(text):
    """Names listed between the lint:svc-metric-registry markers, or None."""
    m = re.search(r"lint:svc-metric-registry-begin(.*?)lint:svc-metric-registry-end",
                  text, re.S)
    if not m:
        return None
    return set(re.findall(r'"([^"]+)"', m.group(1)))


def svc_metric_findings(registry, phase_names, sources):
    """The both-direction registry check as a pure function (self-tested).

    `sources` excludes the registry file itself; `phase_names` (phase and
    span names alike) are exempt — the phase/span registry rules own them.
    """
    findings = []
    used = {}  # name -> first "file:line"
    used_in_src = set()
    for relpath, text in sources:
        for i, line in enumerate(strip_line_comments(text).splitlines(), 1):
            for name in SVC_METRIC_LITERAL_RE.findall(line):
                used.setdefault(name, f"{relpath}:{i}")
                if relpath.startswith("src/"):
                    used_in_src.add(name)
    for name, where in sorted(used.items()):
        if name in phase_names:
            continue
        if name not in registry:
            findings.append(
                f"{where}: svc-metric-registry: metric '{name}' is not in "
                f"{SVC_METRIC_REGISTRY_FILE}")
    for name in sorted(registry - used_in_src):
        findings.append(
            f"{SVC_METRIC_REGISTRY_FILE}:1: svc-metric-registry: registered metric "
            f"'{name}' has no instrumentation site left in src/")
    return findings


def check_svc_metric_registry(repo, sources, findings):
    registry_path = repo / SVC_METRIC_REGISTRY_FILE
    if not registry_path.is_file():
        findings.append(
            f"{SVC_METRIC_REGISTRY_FILE}:1: svc-metric-registry: registry file is missing")
        return
    registry = parse_svc_metric_registry(registry_path.read_text(encoding="utf-8"))
    if registry is None:
        findings.append(f"{SVC_METRIC_REGISTRY_FILE}:1: svc-metric-registry: "
                        f"lint:svc-metric-registry markers not found")
        return
    phase_path = repo / PHASE_REGISTRY_FILE
    phase_names = set()
    if phase_path.is_file():
        phase_names = parse_phase_registry(phase_path.read_text(encoding="utf-8")) or set()
    span_path = repo / SPAN_REGISTRY_FILE
    if span_path.is_file():
        phase_names |= parse_span_registry(span_path.read_text(encoding="utf-8")) or set()
    scanned = [(relpath, text) for relpath, text in sources
               if relpath not in (SVC_METRIC_REGISTRY_FILE, SPAN_REGISTRY_FILE)]
    findings.extend(svc_metric_findings(registry, phase_names, scanned))


NET_METRIC_REGISTRY_FILE = "src/net/metric_names.hpp"
NET_METRIC_LITERAL_RE = re.compile(r'"(net\.[A-Za-z0-9_.]+)"')


def parse_net_metric_registry(text):
    """Names listed between the lint:net-metric-registry markers, or None."""
    m = re.search(r"lint:net-metric-registry-begin(.*?)lint:net-metric-registry-end",
                  text, re.S)
    if not m:
        return None
    return set(re.findall(r'"([^"]+)"', m.group(1)))


def net_metric_findings(registry, span_names, sources):
    """The both-direction net-metric check as a pure function (self-tested).

    `sources` excludes the registry file itself; `span_names` (the span and
    phase vocabularies) are exempt — "net.conn" / "net.read" / "net.write"
    are trace spans owned by the span-registry rule, not metrics.
    """
    findings = []
    used = {}  # name -> first "file:line"
    used_in_src = set()
    for relpath, text in sources:
        for i, line in enumerate(strip_line_comments(text).splitlines(), 1):
            for name in NET_METRIC_LITERAL_RE.findall(line):
                used.setdefault(name, f"{relpath}:{i}")
                if relpath.startswith("src/"):
                    used_in_src.add(name)
    for name, where in sorted(used.items()):
        if name in span_names:
            continue
        if name not in registry:
            findings.append(
                f"{where}: net-metric-registry: metric '{name}' is not in "
                f"{NET_METRIC_REGISTRY_FILE}")
    for name in sorted(registry - used_in_src):
        findings.append(
            f"{NET_METRIC_REGISTRY_FILE}:1: net-metric-registry: registered metric "
            f"'{name}' has no instrumentation site left in src/")
    return findings


def check_net_metric_registry(repo, sources, findings):
    registry_path = repo / NET_METRIC_REGISTRY_FILE
    if not registry_path.is_file():
        findings.append(
            f"{NET_METRIC_REGISTRY_FILE}:1: net-metric-registry: registry file is missing")
        return
    registry = parse_net_metric_registry(registry_path.read_text(encoding="utf-8"))
    if registry is None:
        findings.append(f"{NET_METRIC_REGISTRY_FILE}:1: net-metric-registry: "
                        f"lint:net-metric-registry markers not found")
        return
    span_names = set()
    phase_path = repo / PHASE_REGISTRY_FILE
    if phase_path.is_file():
        span_names |= parse_phase_registry(phase_path.read_text(encoding="utf-8")) or set()
    span_path = repo / SPAN_REGISTRY_FILE
    if span_path.is_file():
        span_names |= parse_span_registry(span_path.read_text(encoding="utf-8")) or set()
    scanned = [(relpath, text) for relpath, text in sources
               if relpath not in (NET_METRIC_REGISTRY_FILE, SPAN_REGISTRY_FILE)]
    findings.extend(net_metric_findings(registry, span_names, scanned))


STORE_METRIC_REGISTRY_FILE = "src/store/metric_names.hpp"
STORE_METRIC_LITERAL_RE = re.compile(r'"(store\.[A-Za-z0-9_.]+)"')


def parse_store_metric_registry(text):
    """Names listed between the lint:store-metric-registry markers, or None."""
    m = re.search(r"lint:store-metric-registry-begin(.*?)lint:store-metric-registry-end",
                  text, re.S)
    if not m:
        return None
    return set(re.findall(r'"([^"]+)"', m.group(1)))


def store_metric_findings(registry, phase_names, sources):
    """The both-direction store-metric check as a pure function (self-tested).

    `sources` excludes the registry file itself; `phase_names` (the phase
    and span vocabularies) are exempt — "store.load" / "store.append" /
    "store.compact" are RMT_OBS_SCOPE phases owned by the phase-registry
    rule, not metrics.
    """
    findings = []
    used = {}  # name -> first "file:line"
    used_in_src = set()
    for relpath, text in sources:
        for i, line in enumerate(strip_line_comments(text).splitlines(), 1):
            for name in STORE_METRIC_LITERAL_RE.findall(line):
                used.setdefault(name, f"{relpath}:{i}")
                if relpath.startswith("src/"):
                    used_in_src.add(name)
    for name, where in sorted(used.items()):
        if name in phase_names:
            continue
        if name not in registry:
            findings.append(
                f"{where}: store-metric-registry: metric '{name}' is not in "
                f"{STORE_METRIC_REGISTRY_FILE}")
    for name in sorted(registry - used_in_src):
        findings.append(
            f"{STORE_METRIC_REGISTRY_FILE}:1: store-metric-registry: registered metric "
            f"'{name}' has no instrumentation site left in src/")
    return findings


def check_store_metric_registry(repo, sources, findings):
    registry_path = repo / STORE_METRIC_REGISTRY_FILE
    if not registry_path.is_file():
        findings.append(
            f"{STORE_METRIC_REGISTRY_FILE}:1: store-metric-registry: registry file is missing")
        return
    registry = parse_store_metric_registry(registry_path.read_text(encoding="utf-8"))
    if registry is None:
        findings.append(f"{STORE_METRIC_REGISTRY_FILE}:1: store-metric-registry: "
                        f"lint:store-metric-registry markers not found")
        return
    phase_names = set()
    phase_path = repo / PHASE_REGISTRY_FILE
    if phase_path.is_file():
        phase_names |= parse_phase_registry(phase_path.read_text(encoding="utf-8")) or set()
    span_path = repo / SPAN_REGISTRY_FILE
    if span_path.is_file():
        phase_names |= parse_span_registry(span_path.read_text(encoding="utf-8")) or set()
    scanned = [(relpath, text) for relpath, text in sources
               if relpath not in (STORE_METRIC_REGISTRY_FILE, SPAN_REGISTRY_FILE)]
    findings.extend(store_metric_findings(registry, phase_names, scanned))


# --- driver ------------------------------------------------------------------

LINT_DIRS = ["src", "bench", "tests", "tools", "examples"]
PER_FILE_RULES = [check_pragma_once, check_header_namespace, check_banned_tokens,
                  check_thread_spawn, check_rng_discipline, check_socket_discipline,
                  check_io_discipline, check_simd_discipline]


def gather_sources(repo):
    out = []
    for d in LINT_DIRS:
        root = repo / d
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in (".hpp", ".cpp"):
                relpath = path.relative_to(repo).as_posix()
                out.append((relpath, path.read_text(encoding="utf-8")))
    return out


def lint_repo(repo):
    findings = []
    sources = gather_sources(repo)
    for relpath, text in sources:
        for rule in PER_FILE_RULES:
            findings.extend(rule(relpath, text))
    check_entry_requires(repo, findings)
    check_simd_backend_registry(repo, findings)
    check_phase_registry(repo, sources, findings)
    check_span_registry(repo, sources, findings)
    check_svc_metric_registry(repo, sources, findings)
    check_net_metric_registry(repo, sources, findings)
    check_store_metric_registry(repo, sources, findings)
    return findings


# --- self-test ---------------------------------------------------------------

SELFTEST_CASES = [
    # (rule, relpath, text, expect_finding)
    (check_pragma_once, "src/x.hpp", "#pragma once\nint x;\n", False),
    (check_pragma_once, "src/x.hpp", "int x;\n", True),
    (check_pragma_once, "src/x.cpp", "int x;\n", False),
    (check_header_namespace, "src/x.hpp", "using namespace std;\n", True),
    (check_header_namespace, "src/x.hpp", "// using namespace std; (docs)\n", False),
    (check_header_namespace, "src/x.cpp", "using namespace rmt;\n", False),
    (check_banned_tokens, "src/x.cpp", "int r = rand();\n", True),
    (check_banned_tokens, "src/x.cpp", "int operand(int);\n", False),
    (check_banned_tokens, "src/x.cpp", "assert(x);\n", True),
    (check_banned_tokens, "src/x.cpp", "static_assert(sizeof(int) == 4);\n", False),
    (check_banned_tokens, "src/x.cpp", "std::cout << x;\n", True),
    (check_banned_tokens, "tools/x.cpp", "std::cout << x;\n", False),
    (check_thread_spawn, "src/sim/x.cpp", "std::thread t(f);\n", True),
    (check_thread_spawn, "bench/x.cpp", "auto f = std::async(g);\n", True),
    (check_thread_spawn, "src/exec/thread_pool.cpp", "std::thread t(f);\n", False),
    (check_thread_spawn, "tests/test_x.cpp", "std::jthread t(f);\n", False),
    (check_thread_spawn, "src/sim/x.cpp", "// std::thread (see exec)\n", False),
    (check_rng_discipline, "src/sim/x.cpp", "std::mt19937 gen(seed);\n", True),
    (check_rng_discipline, "tests/test_x.cpp", "std::mt19937_64 gen(7);\n", True),
    (check_rng_discipline, "tools/x.cpp", "std::random_device rd;\n", True),
    (check_rng_discipline, "bench/x.cpp", "srand(42);\n", True),
    (check_rng_discipline, "src/x.cpp", "std::default_random_engine e;\n", True),
    (check_rng_discipline, "src/util/rng.hpp", "std::mt19937_64 engine_;\n", False),
    (check_rng_discipline, "tests/test_x.cpp", "Rng rng(7);\n", False),
    (check_rng_discipline, "src/x.cpp", "// std::mt19937 would break repro\n", False),
    (check_socket_discipline, "src/svc/x.cpp", "int fd = socket(AF_INET, 0, 0);\n", True),
    (check_socket_discipline, "tests/test_x.cpp", "recv(fd, buf, n, 0);\n", True),
    (check_socket_discipline, "bench/x.cpp", "poll(fds, n, -1);\n", True),
    (check_socket_discipline, "tools/x.cpp", "epoll_wait(ep, evs, 64, -1);\n", True),
    (check_socket_discipline, "src/net/server.cpp", "int fd = socket(AF_INET, 0, 0);\n",
     False),
    # Member calls, qualified names, and longer identifiers are not the
    # raw C API: net::Client wraps them legitimately.
    (check_socket_discipline, "tests/test_x.cpp", "client.connect(port);\n", False),
    (check_socket_discipline, "bench/x.cpp", "client.send_line(line);\n", False),
    (check_socket_discipline, "src/x.cpp", "auto f = std::bind(g, 1);\n", False),
    (check_socket_discipline, "src/x.cpp", "resend(frame);\n", False),
    (check_socket_discipline, "src/x.cpp", "// raw send( is banned here\n", False),
    (check_io_discipline, "src/svc/engine.cpp",
     "const int fd = ::open(path.c_str(), O_RDONLY);\n", True),
    (check_io_discipline, "src/obs/trace.cpp", "::write(fd, buf, n);\n", True),
    (check_io_discipline, "tests/test_x.cpp", "fsync(fd);\n", True),
    (check_io_discipline, "bench/x.cpp", "::rename(tmp, path);\n", True),
    (check_io_discipline, "tools/x.cpp", "unlink(tmp.c_str());\n", True),
    (check_io_discipline, "src/svc/engine.cpp", "mkdir(dir, 0755);\n", True),
    (check_io_discipline, "src/store/store.cpp",
     "const int fd = ::open(path.c_str(), O_RDONLY);\n", False),
    # A lint:raw-io-allowed marker on the line grandfathers it.
    (check_io_discipline, "src/obs/trace.cpp",
     "::write(fd, buf, n);  // lint:raw-io-allowed: crash handler\n", False),
    # Member functions, std::filesystem, and longer identifiers are not
    # the raw POSIX API; common names trip only when ::-qualified.
    (check_io_discipline, "src/svc/engine.cpp", "file.open(path);\n", False),
    (check_io_discipline, "src/obs/x.hpp", "void write(const std::string&);\n",
     False),
    (check_io_discipline, "bench/x.cpp",
     "std::filesystem::rename(tmp, path);\n", False),
    (check_io_discipline, "src/x.cpp", "reopen(log);\n", False),
    (check_io_discipline, "src/x.cpp", "pwrite_all(fd, buf);\n", False),
    (check_io_discipline, "src/x.cpp", "// raw ::write( is banned here\n", False),
    (check_simd_discipline, "src/adversary/bit_matrix.cpp",
     "__m256i v = _mm256_setzero_si256();\n", True),
    (check_simd_discipline, "src/util/simd.hpp",
     "__m256i v = _mm256_setzero_si256();\n", False),
    (check_simd_discipline, "bench/x.cpp", "uint64x2_t r = vld1q_u64(p);\n", True),
    (check_simd_discipline, "tests/test_x.cpp", "__builtin_ia32_pand(a, b);\n", True),
    (check_simd_discipline, "src/x.cpp", "#include <immintrin.h>\n", True),
    (check_simd_discipline, "src/x.cpp", "#include <arm_neon.h>\n", True),
    # Longer identifiers and comment mentions are not the vendor namespace.
    (check_simd_discipline, "src/x.cpp", "commit_mm_totals(x);\n", False),
    (check_simd_discipline, "src/x.cpp", "// _mm256_or_si256 lives in simd.hpp\n", False),
    (check_simd_discipline, "src/x.cpp", "simd::subset_any(cols, 1, 1, n, cand);\n", False),
]

# (registry, simd.hpp text, expect_finding) for simd_backend_findings.
SIMD_BACKEND_CASES = [
    # Gates and registry agree: clean.
    ({"avx2", "neon"},
     "#define RMT_SIMD_BACKEND_AVX2 1\n#define RMT_SIMD_BACKEND_NEON 1\n", False),
    # A gated backend missing from the markers is a finding.
    ({"avx2"},
     "#define RMT_SIMD_BACKEND_AVX2 1\n#define RMT_SIMD_BACKEND_NEON 1\n", True),
    # A registered backend with no gate left is a finding.
    ({"avx2", "neon", "sve"},
     "#define RMT_SIMD_BACKEND_AVX2 1\n#define RMT_SIMD_BACKEND_NEON 1\n", True),
]

# (span_registry, phase_names, sources, expect_finding) for span_findings.
SPAN_CASES = [
    # A phase-registry RMT_TRACE_SPAN plus a registered RMT_TRACE_NAME,
    # each with a live src/ site: clean in both directions.
    ({"exec.task"}, {"rmt_cut.find"},
     [("src/analysis/rmt_cut.cpp", 'RMT_TRACE_SPAN("rmt_cut.find");\n'),
      ("src/exec/thread_pool.cpp", 'Span s(RMT_TRACE_NAME("exec.task"));\n')], False),
    # An RMT_TRACE_SPAN name outside the phase registry is a finding even
    # if it sits in the span registry — the macro is phase-backed.
    ({"exec.task", "svc.rogue"}, {"rmt_cut.find"},
     [("src/svc/engine.cpp", 'RMT_TRACE_SPAN("svc.rogue");\n'),
      ("src/exec/thread_pool.cpp", 'Span s(RMT_TRACE_NAME("exec.task"));\n'),
      ("src/svc/engine.cpp", 'rec.set_name(RMT_TRACE_NAME("svc.rogue"));\n')], True),
    # An RMT_TRACE_NAME literal in neither registry is a finding.
    ({"exec.task"}, set(),
     [("src/exec/thread_pool.cpp", 'Span s(RMT_TRACE_NAME("exec.task"));\n'),
      ("src/svc/engine.cpp", 'rec.set_name(RMT_TRACE_NAME("svc.rogue"));\n')], True),
    # A registered span name with no src/ RMT_TRACE_NAME site left is a
    # finding — a use in tests/ alone does not keep it alive.
    ({"exec.task", "svc.join"}, set(),
     [("src/exec/thread_pool.cpp", 'Span s(RMT_TRACE_NAME("exec.task"));\n'),
      ("tests/test_x.cpp", 'rec.set_name(RMT_TRACE_NAME("svc.join"));\n')], True),
    # "test." is reserved for unit tests, not library RMT_TRACE_SPAN sites.
    ({"exec.task"}, {"test.phase"},
     [("src/exec/thread_pool.cpp", 'Span s(RMT_TRACE_NAME("exec.task"));\n'),
      ("src/svc/engine.cpp", 'RMT_TRACE_SPAN("test.phase");\n')], True),
    # Mentions inside // comments do not count as uses.
    ({"exec.task"}, set(),
     [("src/exec/thread_pool.cpp",
       'Span s(RMT_TRACE_NAME("exec.task"));  // not RMT_TRACE_NAME("x.y")\n')], False),
]

# (registry, phase_names, sources, expect_finding) for svc_metric_findings.
SVC_METRIC_CASES = [
    # A registered metric used in src/: clean in both directions.
    ({"svc.requests"}, set(),
     [("src/svc/engine.cpp", 'reg.counter("svc.requests");\n')], False),
    # An unregistered metric literal anywhere is a finding.
    ({"svc.requests"}, set(),
     [("src/svc/engine.cpp", 'reg.counter("svc.requests");\n'),
      ("src/svc/engine.cpp", 'reg.counter("svc.rogue");\n')], True),
    ({"svc.requests"}, set(),
     [("src/svc/engine.cpp", 'reg.counter("svc.requests");\n'),
      ("tests/test_x.cpp", 'reg.counter("cache.rogue");\n')], True),
    # A registered metric with no src/ site left is a finding — a use in
    # tests/ alone does not keep it alive.
    ({"svc.requests", "svc.stale"}, set(),
     [("src/svc/engine.cpp", 'reg.counter("svc.requests");\n'),
      ("tests/test_x.cpp", 'reg.counter("svc.stale");\n')], True),
    # Phase names are the phase registry's business, not a metric finding.
    ({"svc.requests"}, {"svc.batch"},
     [("src/svc/engine.cpp", 'reg.counter("svc.requests");\n'),
      ("src/svc/engine.cpp", 'RMT_OBS_SCOPE("svc.batch");\n')], False),
    # Mentions inside // comments do not count as uses.
    ({"svc.requests"}, set(),
     [("src/svc/engine.cpp",
       'reg.counter("svc.requests");  // not "svc.phantom"\n')], False),
]

# (registry, span_names, sources, expect_finding) for net_metric_findings.
NET_METRIC_CASES = [
    # A registered metric used in src/: clean in both directions.
    ({"net.accepts"}, set(),
     [("src/net/server.cpp", 'reg.counter("net.accepts");\n')], False),
    # An unregistered metric literal anywhere is a finding.
    ({"net.accepts"}, set(),
     [("src/net/server.cpp", 'reg.counter("net.accepts");\n'),
      ("src/net/server.cpp", 'reg.counter("net.rogue");\n')], True),
    ({"net.accepts"}, set(),
     [("src/net/server.cpp", 'reg.counter("net.accepts");\n'),
      ("tests/test_x.cpp", 'EXPECT_TRUE(has("net.rogue"));\n')], True),
    # A registered metric with no src/ site left is a finding — a use in
    # tests/ alone does not keep it alive.
    ({"net.accepts", "net.stale"}, set(),
     [("src/net/server.cpp", 'reg.counter("net.accepts");\n'),
      ("tests/test_x.cpp", 'reg.counter("net.stale");\n')], True),
    # Span names are the span registry's business, not a metric finding.
    ({"net.accepts"}, {"net.conn", "net.read", "net.write"},
     [("src/net/server.cpp", 'reg.counter("net.accepts");\n'),
      ("src/net/server.cpp", 'rec.set_name(RMT_TRACE_NAME("net.write"));\n')], False),
    # Mentions inside // comments do not count as uses.
    ({"net.accepts"}, set(),
     [("src/net/server.cpp",
       'reg.counter("net.accepts");  // not "net.phantom"\n')], False),
]


# (registry, phase_names, sources, expect_finding) for store_metric_findings.
STORE_METRIC_CASES = [
    # A registered metric used in src/: clean in both directions.
    ({"store.hits"}, set(),
     [("src/store/store.cpp", 'reg.counter("store.hits");\n')], False),
    # An unregistered metric literal anywhere is a finding.
    ({"store.hits"}, set(),
     [("src/store/store.cpp", 'reg.counter("store.hits");\n'),
      ("src/store/store.cpp", 'reg.counter("store.rogue");\n')], True),
    ({"store.hits"}, set(),
     [("src/store/store.cpp", 'reg.counter("store.hits");\n'),
      ("tests/test_store.cpp", 'EXPECT_TRUE(has("store.rogue"));\n')], True),
    # A registered metric with no src/ site left is a finding — a use in
    # tests/ alone does not keep it alive.
    ({"store.hits", "store.stale"}, set(),
     [("src/store/store.cpp", 'reg.counter("store.hits");\n'),
      ("tests/test_store.cpp", 'reg.counter("store.stale");\n')], True),
    # Phase names are the phase registry's business, not a metric finding.
    ({"store.hits"}, {"store.load", "store.append", "store.compact"},
     [("src/store/store.cpp", 'reg.counter("store.hits");\n'),
      ("src/store/store.cpp", 'RMT_OBS_SCOPE("store.append");\n')], False),
    # Mentions inside // comments do not count as uses.
    ({"store.hits"}, set(),
     [("src/store/store.cpp",
       'reg.counter("store.hits");  // not "store.phantom"\n')], False),
]


def self_test():
    failures = []
    for i, (rule, relpath, text, expect) in enumerate(SELFTEST_CASES):
        got = bool(list(rule(relpath, text)))
        if got != expect:
            failures.append(f"case {i} ({rule.__name__}): expected "
                            f"{'a finding' if expect else 'clean'}, got the opposite")
    body = function_body("int f() { return 0; }\nvoid g(int a) { RMT_REQUIRE(a, \"\"); }", "g")
    if body is None or "RMT_REQUIRE" not in body:
        failures.append("function_body: failed to extract g's body")
    if function_body("void h(int);", "h") is not None:
        failures.append("function_body: declaration misread as definition")
    registry = parse_phase_registry(
        '// lint:phase-registry-begin\n"a.b",\n"c.d",\n// lint:phase-registry-end\n')
    if registry != {"a.b", "c.d"}:
        failures.append(f"parse_phase_registry: got {registry!r}")

    simd_registry = parse_simd_backend_registry(
        "// lint:simd-backend-registry-begin\n//   avx2\n//   neon\n"
        "// lint:simd-backend-registry-end\n")
    if simd_registry != {"avx2", "neon"}:
        failures.append(f"parse_simd_backend_registry: got {simd_registry!r}")
    for case, (reg, text, expect) in enumerate(SIMD_BACKEND_CASES):
        got = bool(simd_backend_findings(reg, text))
        if got != expect:
            failures.append(f"simd-backend case {case}: expected "
                            f"{'a finding' if expect else 'clean'}, got the opposite")

    span_registry = parse_span_registry(
        '// lint:span-registry-begin\n"exec.task",\n"svc.join",\n'
        '// lint:span-registry-end\n')
    if span_registry != {"exec.task", "svc.join"}:
        failures.append(f"parse_span_registry: got {span_registry!r}")
    for case, (reg, phases, sources, expect) in enumerate(SPAN_CASES):
        got = bool(span_findings(reg, phases, sources))
        if got != expect:
            failures.append(f"span case {case}: expected "
                            f"{'a finding' if expect else 'clean'}, got the opposite")

    svc_registry = parse_svc_metric_registry(
        '// lint:svc-metric-registry-begin\n"svc.requests",\n"svc.cache.hits",\n'
        '// lint:svc-metric-registry-end\n')
    if svc_registry != {"svc.requests", "svc.cache.hits"}:
        failures.append(f"parse_svc_metric_registry: got {svc_registry!r}")
    for case, (reg, phases, sources, expect) in enumerate(SVC_METRIC_CASES):
        got = bool(svc_metric_findings(reg, phases, sources))
        if got != expect:
            failures.append(f"svc-metric case {case}: expected "
                            f"{'a finding' if expect else 'clean'}, got the opposite")

    net_registry = parse_net_metric_registry(
        '// lint:net-metric-registry-begin\n"net.accepts",\n"net.shed",\n'
        '// lint:net-metric-registry-end\n')
    if net_registry != {"net.accepts", "net.shed"}:
        failures.append(f"parse_net_metric_registry: got {net_registry!r}")
    for case, (reg, spans, sources, expect) in enumerate(NET_METRIC_CASES):
        got = bool(net_metric_findings(reg, spans, sources))
        if got != expect:
            failures.append(f"net-metric case {case}: expected "
                            f"{'a finding' if expect else 'clean'}, got the opposite")

    store_registry = parse_store_metric_registry(
        '// lint:store-metric-registry-begin\n"store.hits",\n"store.appends",\n'
        '// lint:store-metric-registry-end\n')
    if store_registry != {"store.hits", "store.appends"}:
        failures.append(f"parse_store_metric_registry: got {store_registry!r}")
    for case, (reg, phases, sources, expect) in enumerate(STORE_METRIC_CASES):
        got = bool(store_metric_findings(reg, phases, sources))
        if got != expect:
            failures.append(f"store-metric case {case}: expected "
                            f"{'a finding' if expect else 'clean'}, got the opposite")
    for f in failures:
        print(f"self-test: {f}", file=sys.stderr)
    total = len(SELFTEST_CASES) + len(SPAN_CASES) + len(SVC_METRIC_CASES) \
        + len(NET_METRIC_CASES) + len(STORE_METRIC_CASES) + len(SIMD_BACKEND_CASES) + 8
    print(f"self-test: {total} checks, {len(failures)} failures")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--repo", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root to lint")
    parser.add_argument("--self-test", action="store_true",
                        help="check the rules against embedded fixtures and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_repo(args.repo)
    for finding in findings:
        print(finding, file=sys.stderr)
    print(f"rmt_lint: {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())

// tools/rmt_cli — command-line front end over instance files.
//
// Subcommands: see kSubcommands below — the usage text is generated from
// that one table, so help and dispatch cannot drift apart.
//
// Observability flags (analyze/run):
//   --stats              print per-phase timing table after the command
//   --json <path|->      write a machine-readable report (rmt.analyze/1
//                        or rmt.run/1 schema, incl. the metrics snapshot)
//   --jsonl-trace <path> (run only) write the delivery transcript as JSONL
//   --trace-out <path>   enable span tracing (obs/trace.hpp) and dump the
//                        flight recorder as rmt.trace/1 JSONL on exit
//   --no-cache           (decide only) bypass the svc result cache
//
// Instance file format: see src/io/serialize.hpp. Exit code 0 on success,
// 1 on usage errors, 2 on malformed input, 3 when `validate` found an
// invariant violation.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/design_tool.hpp"
#include "analysis/feasibility.hpp"
#include "analysis/minimal_knowledge.hpp"
#include "graph/graphviz.hpp"
#include "io/serialize.hpp"
#include "obs/json.hpp"
#include "obs/jsonl_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "protocols/rmt_pka.hpp"
#include "protocols/runner.hpp"
#include "sim/strategies.hpp"
#include "store/format.hpp"
#include "store/store.hpp"
#include "svc/engine.hpp"
#include "svc/wire.hpp"
#include "util/audit.hpp"
#include "util/fmt.hpp"

namespace {

using namespace rmt;

/// The one subcommand table: dispatch names main() matches and the usage
/// text are both derived from it.
struct Subcommand {
  const char* name;
  const char* args;
  const char* help;
};
constexpr Subcommand kSubcommands[] = {
    {"analyze", "<file>", "feasibility report (all deciders)"},
    {"run", "<file> <x> [T..]", "run RMT-PKA with value x, corrupting T (two-faced attack)"},
    {"decide", "<file> [rmt|zpp|analyze]", "answer via svc::Engine; rmt.response/1 on stdout"},
    {"region", "<file>", "per-receiver reliable region"},
    {"dot", "<file>", "Graphviz of the instance"},
    {"minimize", "<file>", "greedy minimal sufficient views"},
    {"validate", "<file>", "deep invariant validators (rmt::audit)"},
    {"store", "merge|compact|dump <dir>..", "persistent result store maintenance"},
};

int usage() {
  std::string names;
  std::string lines;
  for (const Subcommand& s : kSubcommands) {
    names += names.empty() ? "" : "|";
    names += s.name;
    char row[160];
    std::snprintf(row, sizeof row, "  rmt_cli %-8s %-22s %s\n", s.name, s.args, s.help);
    lines += row;
  }
  std::fprintf(stderr,
               "usage: rmt_cli <%s> <instance-file> [args]\n%s"
               "flags: --stats | --json <path|-> | --jsonl-trace <path> (run only)\n"
               "       --trace-out <path> | --no-cache (decide only)\n",
               names.c_str(), lines.c_str());
  return 1;
}

struct ObsFlags {
  bool stats = false;
  bool no_cache = false;
  std::optional<std::string> json_path;
  std::optional<std::string> jsonl_trace_path;
  std::optional<std::string> trace_out_path;
};

/// Strip the observability flags out of argv (any position).
ObsFlags consume_obs_flags(int& argc, char** argv) {
  ObsFlags flags;
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stats") {
      flags.stats = true;
    } else if (arg == "--no-cache") {
      flags.no_cache = true;
    } else if (arg == "--json" || arg == "--jsonl-trace" || arg == "--trace-out") {
      if (i + 1 >= argc) throw std::invalid_argument(arg + " requires a path argument");
      (arg == "--json" ? flags.json_path
                       : arg == "--jsonl-trace" ? flags.jsonl_trace_path
                                                : flags.trace_out_path) = argv[++i];
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
  return flags;
}

/// Where the human-readable summary goes: stderr when the JSON document
/// owns stdout (`--json -`), so piped output stays machine-parseable.
FILE* human_out(const ObsFlags& flags) {
  return flags.json_path && *flags.json_path == "-" ? stderr : stdout;
}

void emit_document(const std::string& doc, const std::string& path) {
  if (path == "-") {
    std::printf("%s\n", doc.c_str());
    return;
  }
  std::ofstream out(path);
  if (!out) throw std::invalid_argument("cannot open " + path + " for writing");
  out << doc << '\n';
}

void print_phase_stats(FILE* hout) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"phase", "count", "total(us)", "mean(us)", "p95(us)", "max(us)"});
  for (const auto& e : obs::Registry::global().entries()) {
    if (e.kind != obs::Registry::Entry::Kind::kHistogram || e.name.rfind("phase.", 0) != 0)
      continue;
    const obs::Histogram& h = *e.histogram;
    rows.push_back({e.name.substr(6), std::to_string(h.count()), fmt::fixed(h.sum(), 1),
                    fmt::fixed(h.mean(), 1), fmt::fixed(h.p95(), 1), fmt::fixed(h.max(), 1)});
  }
  if (rows.size() == 1) {
    std::fprintf(hout, "\n(no phases recorded)\n");
    return;
  }
  std::fprintf(hout, "\n## phase timings\n\n%s", fmt::table(rows).c_str());
}

void write_network_stats(obs::json::Writer& w, const sim::NetworkStats& s) {
  w.begin_object();
  w.field("rounds", s.rounds);
  w.field("honest_messages", s.honest_messages);
  w.field("adversary_messages", s.adversary_messages);
  w.field("adversary_dropped", s.adversary_dropped);
  w.field("honest_payload_bytes", s.honest_payload_bytes);
  w.field("adversary_payload_bytes", s.adversary_payload_bytes);
  w.field("peak_round_messages", s.peak_round_messages);
  w.field("quiet_rounds", s.quiet_rounds);
  w.end_object();
}

void write_phase_profile(obs::json::Writer& w, const obs::PhaseProfile& p) {
  w.begin_object();
  for (const auto& [name, s] : p.phases()) {
    w.key(name).begin_object();
    w.field("count", s.count);
    w.field("total_us", s.total_us);
    w.field("max_us", s.max_us);
    w.end_object();
  }
  w.end_object();
}

int cmd_analyze(const Instance& inst, const ObsFlags& flags) {
  FILE* hout = human_out(flags);
  std::fprintf(hout, "instance: %zu players, %zu channels, D=%u, R=%u, |Z|max=%zu sets\n",
               inst.num_players(), inst.graph().num_edges(), inst.dealer(), inst.receiver(),
               inst.adversary().num_maximal_sets());
  const auto rmt_cut = analysis::find_rmt_cut(inst);
  std::fprintf(hout, "RMT solvable (no RMT-cut): %s\n", rmt_cut ? "no" : "yes");
  if (rmt_cut)
    std::fprintf(hout, "  witness: C1=%s C2=%s receiver-side B=%s\n",
                 rmt_cut->c1.to_string().c_str(), rmt_cut->c2.to_string().c_str(),
                 rmt_cut->b.to_string().c_str());
  const auto zpp = analysis::find_rmt_zpp_cut(inst);
  std::fprintf(hout, "Z-CPA solvable (no RMT Z-pp cut): %s\n", zpp ? "no" : "yes");
  const bool full_solvable = analysis::solvable_full_knowledge(
      inst.graph(), inst.adversary(), inst.dealer(), inst.receiver());
  std::fprintf(hout, "full-knowledge solvable (no two-cover): %s\n", full_solvable ? "yes" : "no");

  if (flags.json_path) {
    obs::json::Writer w;
    w.begin_object();
    w.field("schema", "rmt.analyze/1");
    w.key("instance").begin_object();
    w.field("players", inst.num_players());
    w.field("channels", inst.graph().num_edges());
    w.field("dealer", std::uint64_t(inst.dealer()));
    w.field("receiver", std::uint64_t(inst.receiver()));
    w.field("maximal_sets", inst.adversary().num_maximal_sets());
    w.end_object();
    w.field("rmt_solvable", !rmt_cut.has_value());
    w.key("rmt_cut_witness");
    if (rmt_cut) {
      w.begin_object();
      w.field("c1", rmt_cut->c1.to_string());
      w.field("c2", rmt_cut->c2.to_string());
      w.field("b", rmt_cut->b.to_string());
      w.end_object();
    } else {
      w.null();
    }
    w.field("zcpa_solvable", !zpp.has_value());
    w.field("full_knowledge_solvable", full_solvable);
    w.key("metrics").raw_value(obs::snapshot_json(obs::Registry::global()));
    w.end_object();
    emit_document(w.take(), *flags.json_path);
  }
  return 0;
}

int cmd_run(const Instance& inst, int argc, char** argv, const ObsFlags& flags) {
  if (argc < 1) return usage();
  const sim::Value x = std::strtoull(argv[0], nullptr, 10);
  NodeSet corrupted;
  for (int i = 1; i < argc; ++i) corrupted.insert(NodeId(std::strtoul(argv[i], nullptr, 10)));
  if (!inst.admissible_corruption(corrupted)) {
    std::fprintf(stderr, "corruption set %s is not admissible under Z\n",
                 corrupted.to_string().c_str());
    return 2;
  }
  std::ofstream trace_out;
  std::optional<obs::JsonlTraceObserver> trace;
  if (flags.jsonl_trace_path) {
    trace_out.open(*flags.jsonl_trace_path);
    if (!trace_out)
      throw std::invalid_argument("cannot open " + *flags.jsonl_trace_path + " for writing");
    trace.emplace(trace_out);
  }
  sim::TwoFacedStrategy attack;
  const protocols::Outcome out = protocols::run_rmt(inst, protocols::RmtPka{}, x, corrupted,
                                                    &attack, 0, trace ? &*trace : nullptr);
  if (out.decision)
    std::fprintf(human_out(flags), "decision: %llu (%s) — rounds=%zu messages=%zu bytes=%zu\n",
                 static_cast<unsigned long long>(*out.decision),
                 out.correct ? "correct" : "WRONG", out.stats.rounds,
                 out.stats.honest_messages, out.stats.honest_payload_bytes);
  else
    std::fprintf(human_out(flags), "no decision (safe abstention) — rounds=%zu\n",
                 out.stats.rounds);

  if (flags.json_path) {
    obs::json::Writer w;
    w.begin_object();
    w.field("schema", "rmt.run/1");
    w.field("protocol", "RMT-PKA");
    w.field("dealer_value", std::uint64_t(x));
    w.field("corrupted", corrupted.to_string());
    w.key("decision");
    if (out.decision) {
      w.value(std::uint64_t(*out.decision));
    } else {
      w.null();
    }
    w.field("correct", out.correct);
    w.field("wrong", out.wrong);
    w.key("stats");
    write_network_stats(w, out.stats);
    w.key("phases");
    write_phase_profile(w, out.phases);
    w.key("metrics").raw_value(obs::snapshot_json(obs::Registry::global()));
    w.end_object();
    emit_document(w.take(), *flags.json_path);
  }
  return 0;
}

int cmd_decide(const Instance& inst, int argc, char** argv, const ObsFlags& flags) {
  std::string kind_name = argc >= 1 ? argv[0] : "rmt";
  if (kind_name == "rmt") kind_name = "decide_rmt";
  if (kind_name == "zpp") kind_name = "decide_zpp";
  const std::optional<svc::QueryKind> kind = svc::parse_query_kind(kind_name);
  if (!kind || *kind == svc::QueryKind::kSimulate) return usage();
  svc::Engine engine(nullptr);  // one-shot: sequential, default cache
  std::vector<svc::Request> batch;
  batch.push_back(svc::Request{*kind, inst, {}, std::nullopt, flags.no_cache});
  const std::vector<svc::Response> responses = engine.run(batch);
  std::printf("%s\n", svc::wire::format_response("cli", responses[0]).c_str());
  return responses[0].status == svc::Response::Status::kOk ? 0 : 2;
}

int cmd_region(const Instance& inst) {
  for (const auto& rep : analysis::receiver_reports(inst.graph(), inst.adversary(),
                                                    inst.gamma(), inst.dealer()))
    std::printf("receiver %u: %s\n", rep.receiver,
                rep.corruptible ? "corruptible (excluded)"
                                : (rep.solvable ? "reachable" : "unreachable"));
  return 0;
}

int cmd_dot(const Instance& inst) {
  DotOptions opts;
  opts.highlight = inst.adversary().support();
  opts.labels[inst.dealer()] = "D";
  opts.labels[inst.receiver()] = "R";
  std::printf("%s", to_dot(inst.graph(), opts).c_str());
  return 0;
}

int cmd_validate(const Instance& inst, const ObsFlags& flags) {
  const std::vector<audit::Diagnostic> diags = audit::check_instance(inst);
  FILE* hout = human_out(flags);
  if (diags.empty()) {
    std::fprintf(hout, "valid: all deep invariants hold (%zu players, %zu channels)\n",
                 inst.num_players(), inst.graph().num_edges());
  } else {
    for (const audit::Diagnostic& d : diags)
      std::fprintf(hout, "invalid [%s]: %s\n", d.component.c_str(), d.message.c_str());
  }

  if (flags.json_path) {
    obs::json::Writer w;
    w.begin_object();
    w.field("schema", "rmt.validate/1");
    w.key("instance").begin_object();
    w.field("players", inst.num_players());
    w.field("channels", inst.graph().num_edges());
    w.field("dealer", std::uint64_t(inst.dealer()));
    w.field("receiver", std::uint64_t(inst.receiver()));
    w.field("maximal_sets", inst.adversary().num_maximal_sets());
    w.end_object();
    w.field("valid", diags.empty());
    w.key("diagnostics").begin_array();
    for (const audit::Diagnostic& d : diags) {
      w.begin_object();
      w.field("component", d.component);
      w.field("message", d.message);
      w.end_object();
    }
    w.end_array();
    w.key("metrics").raw_value(obs::snapshot_json(obs::Registry::global()));
    w.end_object();
    emit_document(w.take(), *flags.json_path);
  }
  return diags.empty() ? 0 : 3;
}

/// `store` maintenance verbs. These never parse an instance file, so
/// main() dispatches here before io::load_instance.
///
///   store merge <dst-dir> <src-dir>   fold src into dst (LWW by seq;
///                                     value divergence on a shared key
///                                     is a hard failure, exit 3)
///   store compact <dir>               rewrite the log to live records
///   store dump <dir> [--json <path|->]  rmt.store/1 JSONL inventory
int cmd_store(int argc, char** argv, const ObsFlags& flags) {
  if (argc < 2) return usage();
  const std::string verb = argv[0];
  const std::string dir = argv[1];
  if (verb == "merge") {
    if (argc < 3) return usage();
    store::Options opts;
    opts.dir = dir;
    store::Store dst(opts);
    store::MergeReport report;
    try {
      report = store::merge(dst, argv[2]);
    } catch (const std::runtime_error& e) {
      // Divergence: the stores disagree on the bytes of a shared key.
      // That is a data-integrity violation, never a mergeable state.
      std::fprintf(stderr, "MERGE FAILED: %s\n", e.what());
      return 3;
    }
    const store::Stats st = dst.stats();
    std::printf("merged %s into %s: %llu scanned, %llu appended, %llu identical; "
                "now %llu live records (%llu bytes, generation %llu)\n",
                argv[2], dir.c_str(), static_cast<unsigned long long>(report.scanned),
                static_cast<unsigned long long>(report.appended),
                static_cast<unsigned long long>(report.skipped_equal),
                static_cast<unsigned long long>(st.live_records),
                static_cast<unsigned long long>(st.bytes),
                static_cast<unsigned long long>(st.generation));
    return 0;
  }
  if (verb == "compact") {
    store::Options opts;
    opts.dir = dir;
    store::Store s(opts);
    const store::Stats before = s.stats();
    s.compact();
    const store::Stats after = s.stats();
    std::printf("compacted %s: %llu -> %llu bytes, %llu live records, generation %llu\n",
                dir.c_str(), static_cast<unsigned long long>(before.bytes),
                static_cast<unsigned long long>(after.bytes),
                static_cast<unsigned long long>(after.live_records),
                static_cast<unsigned long long>(after.generation));
    return 0;
  }
  if (verb == "dump") {
    // Read-only inventory: scan the log without opening a Store, so a
    // torn tail is reported, not repaired.
    std::ifstream in(dir + "/store.log", std::ios::binary);
    if (!in) throw std::invalid_argument("cannot open " + dir + "/store.log");
    std::string image((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    const store::ScanResult scan = store::scan_bytes(image);
    // Newest seq per key decides liveness (ties broken by file order).
    std::map<std::string, std::size_t> newest;
    for (std::size_t i = 0; i < scan.records.size(); ++i) {
      const auto it = newest.find(scan.records[i].key);
      if (it == newest.end() || scan.records[i].seq >= scan.records[it->second].seq)
        newest[scan.records[i].key] = i;
    }
    std::string doc;
    {
      obs::json::Writer w;
      w.begin_object();
      w.field("schema", "rmt.store/1");
      w.field("generation", scan.generation);
      w.field("records", scan.records.size());
      w.field("live_records", newest.size());
      w.field("bytes", std::uint64_t(image.size()));
      w.field("valid_prefix", std::uint64_t(scan.valid_prefix));
      w.field("torn", scan.torn);
      w.end_object();
      doc = w.take();
    }
    for (std::size_t i = 0; i < scan.records.size(); ++i) {
      const store::RecordRef& r = scan.records[i];
      obs::json::Writer w;
      w.begin_object();
      w.field("schema", "rmt.store/1");
      w.field("key", r.key);
      w.field("seq", r.seq);
      w.field("value_len", std::uint64_t(r.value_len));
      char hex[17];
      std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(r.checksum));
      w.field("checksum", hex);
      w.field("live", newest.at(r.key) == i);
      w.end_object();
      doc += '\n';
      doc += w.take();
    }
    emit_document(doc, flags.json_path ? *flags.json_path : "-");
    return 0;
  }
  return usage();
}

int cmd_minimize(const Instance& inst) {
  const auto result = analysis::find_minimal_sufficient_view(inst);
  if (!result) {
    std::printf("instance is unsolvable — no sufficient view function below γ\n");
    return 0;
  }
  std::printf("shed %zu view edges and %zu known nodes; minimal instance:\n\n%s",
              result->removed_edges, result->removed_nodes,
              io::serialize_instance(Instance(inst.graph(), inst.adversary(), result->gamma,
                                              inst.dealer(), inst.receiver()))
                  .c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ObsFlags flags = consume_obs_flags(argc, argv);
    if (argc < 3) return usage();
    // Phase timing and the JSON reports both read the metrics registry, so
    // observability goes on whenever either surface was requested.
    if (flags.stats || flags.json_path) obs::set_enabled(true);
    if (flags.trace_out_path) obs::trace::set_enabled(true);
    // The store verbs operate on store directories, not instance files.
    if (!std::strcmp(argv[1], "store")) return cmd_store(argc - 2, argv + 2, flags);
    const Instance inst = io::load_instance(argv[2]);
    int rc = 1;
    if (!std::strcmp(argv[1], "analyze")) {
      rc = cmd_analyze(inst, flags);
    } else if (!std::strcmp(argv[1], "run")) {
      rc = cmd_run(inst, argc - 3, argv + 3, flags);
    } else if (!std::strcmp(argv[1], "decide")) {
      rc = cmd_decide(inst, argc - 3, argv + 3, flags);
    } else if (!std::strcmp(argv[1], "region")) {
      rc = cmd_region(inst);
    } else if (!std::strcmp(argv[1], "dot")) {
      rc = cmd_dot(inst);
    } else if (!std::strcmp(argv[1], "minimize")) {
      rc = cmd_minimize(inst);
    } else if (!std::strcmp(argv[1], "validate") || !std::strcmp(argv[1], "--validate")) {
      rc = cmd_validate(inst, flags);
    } else {
      return usage();
    }
    if (flags.stats) print_phase_stats(human_out(flags));
    if (flags.trace_out_path &&
        !obs::trace::Recorder::global().write_file(*flags.trace_out_path))
      std::fprintf(stderr, "warning: cannot write trace to %s\n", flags.trace_out_path->c_str());
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

// tools/rmt_cli — command-line front end over instance files.
//
//   rmt_cli analyze  <file>            feasibility report (all deciders)
//   rmt_cli run      <file> <x> [T..]  run RMT-PKA with value x, corrupting
//                                      the listed nodes under the two-faced
//                                      attack
//   rmt_cli region   <file>            per-receiver reliable region
//   rmt_cli dot      <file>            Graphviz of the instance
//   rmt_cli minimize <file>            greedy minimal sufficient views
//
// Instance file format: see src/io/serialize.hpp. Exit code 0 on success,
// 1 on usage errors, 2 on malformed input.
#include <cstdio>
#include <cstring>
#include <fstream>

#include "analysis/design_tool.hpp"
#include "analysis/feasibility.hpp"
#include "analysis/minimal_knowledge.hpp"
#include "graph/graphviz.hpp"
#include "io/serialize.hpp"
#include "protocols/rmt_pka.hpp"
#include "protocols/runner.hpp"
#include "sim/strategies.hpp"

namespace {

using namespace rmt;

int usage() {
  std::fprintf(stderr,
               "usage: rmt_cli <analyze|run|region|dot|minimize> <instance-file> [args]\n"
               "       rmt_cli run <file> <dealer-value> [corrupted-node ...]\n");
  return 1;
}

Instance load(const char* path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument(std::string("cannot open ") + path);
  return io::parse_instance(in);
}

int cmd_analyze(const Instance& inst) {
  std::printf("instance: %zu players, %zu channels, D=%u, R=%u, |Z|max=%zu sets\n",
              inst.num_players(), inst.graph().num_edges(), inst.dealer(), inst.receiver(),
              inst.adversary().num_maximal_sets());
  const auto rmt_cut = analysis::find_rmt_cut(inst);
  std::printf("RMT solvable (no RMT-cut): %s\n", rmt_cut ? "no" : "yes");
  if (rmt_cut)
    std::printf("  witness: C1=%s C2=%s receiver-side B=%s\n", rmt_cut->c1.to_string().c_str(),
                rmt_cut->c2.to_string().c_str(), rmt_cut->b.to_string().c_str());
  const auto zpp = analysis::find_rmt_zpp_cut(inst);
  std::printf("Z-CPA solvable (no RMT Z-pp cut): %s\n", zpp ? "no" : "yes");
  std::printf("full-knowledge solvable (no two-cover): %s\n",
              analysis::solvable_full_knowledge(inst.graph(), inst.adversary(), inst.dealer(),
                                                inst.receiver())
                  ? "yes"
                  : "no");
  return 0;
}

int cmd_run(const Instance& inst, int argc, char** argv) {
  if (argc < 1) return usage();
  const sim::Value x = std::strtoull(argv[0], nullptr, 10);
  NodeSet corrupted;
  for (int i = 1; i < argc; ++i) corrupted.insert(NodeId(std::strtoul(argv[i], nullptr, 10)));
  if (!inst.admissible_corruption(corrupted)) {
    std::fprintf(stderr, "corruption set %s is not admissible under Z\n",
                 corrupted.to_string().c_str());
    return 2;
  }
  sim::TwoFacedStrategy attack;
  const protocols::Outcome out =
      protocols::run_rmt(inst, protocols::RmtPka{}, x, corrupted, &attack);
  if (out.decision)
    std::printf("decision: %llu (%s) — rounds=%zu messages=%zu bytes=%zu\n",
                static_cast<unsigned long long>(*out.decision),
                out.correct ? "correct" : "WRONG", out.stats.rounds,
                out.stats.honest_messages, out.stats.honest_payload_bytes);
  else
    std::printf("no decision (safe abstention) — rounds=%zu\n", out.stats.rounds);
  return 0;
}

int cmd_region(const Instance& inst) {
  for (const auto& rep : analysis::receiver_reports(inst.graph(), inst.adversary(),
                                                    inst.gamma(), inst.dealer()))
    std::printf("receiver %u: %s\n", rep.receiver,
                rep.corruptible ? "corruptible (excluded)"
                                : (rep.solvable ? "reachable" : "unreachable"));
  return 0;
}

int cmd_dot(const Instance& inst) {
  DotOptions opts;
  opts.highlight = inst.adversary().support();
  opts.labels[inst.dealer()] = "D";
  opts.labels[inst.receiver()] = "R";
  std::printf("%s", to_dot(inst.graph(), opts).c_str());
  return 0;
}

int cmd_minimize(const Instance& inst) {
  const auto result = analysis::find_minimal_sufficient_view(inst);
  if (!result) {
    std::printf("instance is unsolvable — no sufficient view function below γ\n");
    return 0;
  }
  std::printf("shed %zu view edges and %zu known nodes; minimal instance:\n\n%s",
              result->removed_edges, result->removed_nodes,
              io::serialize_instance(Instance(inst.graph(), inst.adversary(), result->gamma,
                                              inst.dealer(), inst.receiver()))
                  .c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  try {
    const Instance inst = load(argv[2]);
    if (!std::strcmp(argv[1], "analyze")) return cmd_analyze(inst);
    if (!std::strcmp(argv[1], "run")) return cmd_run(inst, argc - 3, argv + 3);
    if (!std::strcmp(argv[1], "region")) return cmd_region(inst);
    if (!std::strcmp(argv[1], "dot")) return cmd_dot(inst);
    if (!std::strcmp(argv[1], "minimize")) return cmd_minimize(inst);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

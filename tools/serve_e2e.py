#!/usr/bin/env python3
"""End-to-end test of the JSONL serving stack (tools/rmt_serve).

Pipes a scripted rmt.request/1 stream into an rmt_serve process and
asserts the serving semantics from the outside:

  * four duplicate decide requests in one batch share ONE computation
    (exactly one response has coalesced=false; the engine's `computed`
    counter confirms it) and answer byte-identical results;
  * a repeated cacheable request comes back cached=true with the same
    bytes;
  * deadline_ms=0 is rejected with status "deadline_exceeded" without
    wedging the server — the retry right after succeeds;
  * a malformed line gets an "error" response (id "" when unreadable)
    while the rest of the stream is answered normally;
  * the final "stats" probe reports the exact engine/cache counters the
    script implies;
  * every response line validates against the rmt.response/1 schema via
    tools/check_bench_json.py (when --checker is given).

Usage: serve_e2e.py --server PATH [--checker PATH] [--jobs N]
Exit code 0 on success; failures are printed and exit 1.

Wired into ctest as `serve_e2e`.
"""

import argparse
import json
import subprocess
import sys
import tempfile

INSTANCE_A = ("rmt-instance v1\nnodes 3\nedge 0 1\nedge 1 2\n"
              "dealer 0\nreceiver 2\ncorruptible 1\n")
INSTANCE_B = ("rmt-instance v1\nnodes 6\nedge 0 1\nedge 1 2\nedge 2 5\n"
              "edge 0 3\nedge 3 4\nedge 4 5\ndealer 0\nreceiver 5\n"
              "corruptible 1\ncorruptible 3\nknowledge k-hop 2\n")


def request(rid, instance, **extra):
    doc = {"schema": "rmt.request/1", "id": rid, "kind": "decide_rmt",
           "instance": instance}
    doc.update(extra)
    return json.dumps(doc)


def build_input():
    lines = []
    # Batch 1: four duplicates, no_cache so the cache cannot pre-empt the
    # coalescing path. A blank line flushes the batch.
    for i in range(1, 5):
        lines.append(request(f"dup{i}", INSTANCE_A, no_cache=True))
    lines.append("")
    # Cache population + hit on a distinct instance.
    lines.append(request("warm", INSTANCE_B))
    lines.append("")
    lines.append(request("hit", INSTANCE_B))
    lines.append("")
    # Deadline 0 is deterministically already expired; the retry that
    # follows proves the server did not wedge.
    lines.append(request("late", INSTANCE_A, deadline_ms=0))
    lines.append("")
    lines.append(request("retry", INSTANCE_A))
    lines.append("")
    # A line that is not even JSON still yields a response.
    lines.append("this is not a request")
    lines.append("")
    # Stats probe (flushes anything pending first).
    lines.append(json.dumps({"schema": "rmt.request/1", "id": "st",
                             "kind": "stats", "instance": ""}))
    return "\n".join(lines) + "\n"


def run_server(server, jobs, text):
    proc = subprocess.run([server, "--jobs", str(jobs)], input=text,
                          capture_output=True, text=True, timeout=90)
    if proc.returncode != 0:
        raise AssertionError(f"rmt_serve exited {proc.returncode}: {proc.stderr}")
    return [json.loads(line) for line in proc.stdout.splitlines() if line.strip()]


def check(responses, failures):
    def expect(cond, msg):
        if not cond:
            failures.append(msg)

    by_id = {}
    for r in responses:
        expect(r.get("schema") == "rmt.response/1",
               f"bad schema in response: {r.get('schema')!r}")
        by_id.setdefault(r.get("id"), []).append(r)

    # Coalescing: one computation, four identical answers.
    dups = [by_id.get(f"dup{i}", [None])[0] for i in range(1, 5)]
    expect(all(d is not None for d in dups), "missing dup responses")
    if all(dups):
        expect(all(d["status"] == "ok" for d in dups), "dup status not ok")
        results = {json.dumps(d["result"], sort_keys=True) for d in dups}
        expect(len(results) == 1, f"dup results diverged: {len(results)} variants")
        keys = {d["key"] for d in dups}
        expect(len(keys) == 1, "dup keys diverged")
        owners = [d for d in dups if not d["coalesced"]]
        expect(len(owners) == 1,
               f"expected exactly 1 non-coalesced dup, got {len(owners)}")

    # Caching: the second ask for INSTANCE_B is a byte-identical hit.
    warm, hit = by_id.get("warm", [None])[0], by_id.get("hit", [None])[0]
    expect(warm and warm["status"] == "ok" and not warm["cached"],
           "warm request not a fresh ok")
    expect(hit and hit["status"] == "ok" and hit["cached"], "hit request not cached")
    if warm and hit:
        expect(hit["result"] == warm["result"], "cached bytes diverged")

    # Deadline: rejected, result null, and the server kept serving.
    late, retry = by_id.get("late", [None])[0], by_id.get("retry", [None])[0]
    expect(late and late["status"] == "deadline_exceeded",
           f"late status: {late and late['status']}")
    expect(late and late["result"] is None, "late result not null")
    expect(retry and retry["status"] == "ok", "retry after deadline failed")

    # Malformed line: an error response with the empty id.
    bad = by_id.get("", [None])[0]
    expect(bad and bad["status"] == "error" and bad["error"],
           "malformed line did not yield an error response")

    # Stats: the exact counters the scripted stream implies.
    st = by_id.get("st", [None])[0]
    expect(st and st["status"] == "ok", "stats probe failed")
    if st:
        engine = st["result"]["engine"]
        cache = st["result"]["cache"]
        expect(engine["requests"] == 8, f"engine.requests={engine['requests']} != 8")
        expect(engine["computed"] == 3, f"engine.computed={engine['computed']} != 3 "
               "(dups must share one computation)")
        expect(engine["coalesced"] == 3, f"engine.coalesced={engine['coalesced']} != 3")
        expect(engine["deadline_exceeded"] == 1,
               f"engine.deadline_exceeded={engine['deadline_exceeded']} != 1")
        expect(engine["errors"] == 0, f"engine.errors={engine['errors']} != 0")
        expect(cache["hits"] == 1, f"cache.hits={cache['hits']} != 1")
        expect(cache["misses"] == 2, f"cache.misses={cache['misses']} != 2")
        expect(cache["entries"] == 2, f"cache.entries={cache['entries']} != 2")


def schema_check(checker, responses, failures):
    with tempfile.NamedTemporaryFile("w", suffix=".jsonl", delete=False) as f:
        for r in responses:
            f.write(json.dumps(r) + "\n")
        path = f.name
    proc = subprocess.run([sys.executable, checker, path],
                          capture_output=True, text=True)
    if proc.returncode != 0:
        failures.append(f"check_bench_json rejected the response stream:\n{proc.stderr}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--server", required=True, help="path to the rmt_serve binary")
    parser.add_argument("--checker", help="path to check_bench_json.py")
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args()

    failures = []
    responses = run_server(args.server, args.jobs, build_input())
    check(responses, failures)
    if args.checker:
        schema_check(args.checker, responses, failures)

    for f in failures:
        print(f"serve_e2e: FAIL: {f}", file=sys.stderr)
    print(f"serve_e2e: {len(responses)} responses, {len(failures)} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

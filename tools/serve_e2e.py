#!/usr/bin/env python3
"""End-to-end test of the JSONL serving stack (tools/rmt_serve).

Pipes a scripted rmt.request/1 stream into an rmt_serve process and
asserts the serving semantics from the outside:

  * four duplicate decide requests in one batch share ONE computation
    (exactly one response has coalesced=false; the engine's `computed`
    counter confirms it) and answer byte-identical results;
  * a repeated cacheable request comes back cached=true with the same
    bytes;
  * deadline_ms=0 is rejected with status "deadline_exceeded" without
    wedging the server — the retry right after succeeds;
  * a malformed line gets an "error" response (id "" when unreadable)
    while the rest of the stream is answered normally;
  * the final "stats" probe reports the exact engine/cache counters the
    script implies — including the exact cache byte total derived from the
    response keys/results;
  * every decide response carries a distinct 16-hex trace_id; probe and
    unreadable-line responses carry null;
  * the final "trace" probe returns the flight recorder, and the span
    forest proves the coalescing causality: one svc.request root per
    engine request, exactly ONE svc.compute subtree for the four
    duplicates, and three svc.join spans referencing the leader's compute
    span — with each response's trace_id resolving to its root span;
  * every response line validates against the rmt.response/1 schema, and
    the trace probe's dump against the rmt.trace/1 forest rules, via
    tools/check_bench_json.py (when --checker is given).

Usage: serve_e2e.py --server PATH [--checker PATH] [--jobs N]
Exit code 0 on success; failures are printed and exit 1.

Wired into ctest as `serve_e2e`.
"""

import argparse
import json
import re
import subprocess
import sys
import tempfile

INSTANCE_A = ("rmt-instance v1\nnodes 3\nedge 0 1\nedge 1 2\n"
              "dealer 0\nreceiver 2\ncorruptible 1\n")
INSTANCE_B = ("rmt-instance v1\nnodes 6\nedge 0 1\nedge 1 2\nedge 2 5\n"
              "edge 0 3\nedge 3 4\nedge 4 5\ndealer 0\nreceiver 5\n"
              "corruptible 1\ncorruptible 3\nknowledge k-hop 2\n")


def request(rid, instance, **extra):
    doc = {"schema": "rmt.request/1", "id": rid, "kind": "decide_rmt",
           "instance": instance}
    doc.update(extra)
    return json.dumps(doc)


def build_input():
    lines = []
    # Batch 1: four duplicates, no_cache so the cache cannot pre-empt the
    # coalescing path. A blank line flushes the batch.
    for i in range(1, 5):
        lines.append(request(f"dup{i}", INSTANCE_A, no_cache=True))
    lines.append("")
    # Cache population + hit on a distinct instance.
    lines.append(request("warm", INSTANCE_B))
    lines.append("")
    lines.append(request("hit", INSTANCE_B))
    lines.append("")
    # Deadline 0 is deterministically already expired; the retry that
    # follows proves the server did not wedge.
    lines.append(request("late", INSTANCE_A, deadline_ms=0))
    lines.append("")
    lines.append(request("retry", INSTANCE_A))
    lines.append("")
    # A line that is not even JSON still yields a response.
    lines.append("this is not a request")
    lines.append("")
    # Probes (each flushes anything pending first; neither reaches the
    # engine, so the request counters above stay exact).
    lines.append(json.dumps({"schema": "rmt.request/1", "id": "st",
                             "kind": "stats", "instance": ""}))
    lines.append("")
    lines.append(json.dumps({"schema": "rmt.request/1", "id": "tr",
                             "kind": "trace", "instance": ""}))
    return "\n".join(lines) + "\n"


def run_server(server, jobs, text):
    proc = subprocess.run([server, "--jobs", str(jobs)], input=text,
                          capture_output=True, text=True, timeout=90)
    if proc.returncode != 0:
        raise AssertionError(f"rmt_serve exited {proc.returncode}: {proc.stderr}")
    return [json.loads(line) for line in proc.stdout.splitlines() if line.strip()]


def check(responses, failures):
    def expect(cond, msg):
        if not cond:
            failures.append(msg)

    by_id = {}
    for r in responses:
        expect(r.get("schema") == "rmt.response/1",
               f"bad schema in response: {r.get('schema')!r}")
        by_id.setdefault(r.get("id"), []).append(r)

    # Coalescing: one computation, four identical answers.
    dups = [by_id.get(f"dup{i}", [None])[0] for i in range(1, 5)]
    expect(all(d is not None for d in dups), "missing dup responses")
    if all(dups):
        expect(all(d["status"] == "ok" for d in dups), "dup status not ok")
        results = {json.dumps(d["result"], sort_keys=True) for d in dups}
        expect(len(results) == 1, f"dup results diverged: {len(results)} variants")
        keys = {d["key"] for d in dups}
        expect(len(keys) == 1, "dup keys diverged")
        owners = [d for d in dups if not d["coalesced"]]
        expect(len(owners) == 1,
               f"expected exactly 1 non-coalesced dup, got {len(owners)}")

    # Caching: the second ask for INSTANCE_B is a byte-identical hit.
    warm, hit = by_id.get("warm", [None])[0], by_id.get("hit", [None])[0]
    expect(warm and warm["status"] == "ok" and not warm["cached"],
           "warm request not a fresh ok")
    expect(hit and hit["status"] == "ok" and hit["cached"], "hit request not cached")
    if warm and hit:
        expect(hit["result"] == warm["result"], "cached bytes diverged")

    # Deadline: rejected, result null, and the server kept serving.
    late, retry = by_id.get("late", [None])[0], by_id.get("retry", [None])[0]
    expect(late and late["status"] == "deadline_exceeded",
           f"late status: {late and late['status']}")
    expect(late and late["result"] is None, "late result not null")
    expect(retry and retry["status"] == "ok", "retry after deadline failed")

    # Malformed line: an error response with the empty id.
    bad = by_id.get("", [None])[0]
    expect(bad and bad["status"] == "error" and bad["error"],
           "malformed line did not yield an error response")

    # Stats: the exact counters the scripted stream implies.
    st = by_id.get("st", [None])[0]
    expect(st and st["status"] == "ok", "stats probe failed")
    if st:
        engine = st["result"]["engine"]
        cache = st["result"]["cache"]
        expect(engine["requests"] == 8, f"engine.requests={engine['requests']} != 8")
        expect(engine["computed"] == 3, f"engine.computed={engine['computed']} != 3 "
               "(dups must share one computation)")
        expect(engine["coalesced"] == 3, f"engine.coalesced={engine['coalesced']} != 3")
        expect(engine["deadline_exceeded"] == 1,
               f"engine.deadline_exceeded={engine['deadline_exceeded']} != 1")
        expect(engine["errors"] == 0, f"engine.errors={engine['errors']} != 0")
        expect(cache["hits"] == 1, f"cache.hits={cache['hits']} != 1")
        expect(cache["misses"] == 2, f"cache.misses={cache['misses']} != 2")
        expect(cache["entries"] == 2, f"cache.entries={cache['entries']} != 2")
        # Exact byte accounting: the two entries are warm's and retry's.
        # Each costs its composite cache key ("<instance-key>:<kind>") plus
        # the compact serialized result — svc::ResultCache charges
        # key.size() + value.size(), and the server stores results as the
        # same compact JSON it answers with.
        if warm and retry:
            expected_bytes = sum(
                len(r["key"]) + 1 + len("decide_rmt") +
                len(json.dumps(r["result"], separators=(",", ":")))
                for r in (warm, retry))
            expect(cache["bytes"] == expected_bytes,
                   f"cache.bytes={cache['bytes']} != {expected_bytes} "
                   "(composite keys + stored result bytes)")

    # Trace ids: every request that reached the engine got its own trace;
    # probe and unreadable-line responses carry null.
    tids = {}
    for rid in [f"dup{i}" for i in range(1, 5)] + ["warm", "hit", "late", "retry"]:
        r = by_id.get(rid, [None])[0]
        tid = r.get("trace_id") if r else None
        expect(isinstance(tid, str) and re.fullmatch(r"[0-9a-f]{16}", tid),
               f"{rid}: trace_id {tid!r} is not 16 hex digits")
        if isinstance(tid, str):
            tids[rid] = tid
    expect(len(set(tids.values())) == len(tids), "decide trace_ids not distinct")
    for rid in ("", "st", "tr"):
        r = by_id.get(rid, [None])[0]
        expect(r is not None and r.get("trace_id") is None,
               f"{rid or 'malformed'}: trace_id should be null")


def check_trace(responses, failures):
    """Assert the coalescing causality from the trace probe's span forest;
    returns the dump as rmt.trace/1 lines for the schema check."""
    def expect(cond, msg):
        if not cond:
            failures.append(msg)

    by_id = {r.get("id"): r for r in responses}
    tr = by_id.get("tr")
    expect(tr and tr.get("status") == "ok" and tr["result"]["kind"] == "trace",
           "trace probe failed")
    if not (tr and tr.get("status") == "ok"):
        return None
    header, spans = tr["result"]["header"], tr["result"]["spans"]
    expect(header["dropped"] == 0, "flight recorder dropped spans mid-test")

    tid = lambda rid: by_id[rid].get("trace_id")
    engine_ids = [f"dup{i}" for i in range(1, 5)] + ["warm", "hit", "late", "retry"]

    # One svc.request root per engine request, each on its response's trace.
    roots = {s["trace"]: s for s in spans if s["name"] == "svc.request"}
    expect(len([s for s in spans if s["name"] == "svc.request"]) == 8,
           "expected 8 svc.request root spans")
    expect(all(s["parent"] is None for s in roots.values()),
           "svc.request spans must be trace roots")
    expect(set(roots) == {tid(r) for r in engine_ids},
           "svc.request traces do not match the response trace_ids")

    # The four duplicates share ONE compute subtree: the leader's trace
    # carries the only svc.compute among them, hanging off the leader's
    # root; the three followers each record an svc.join referencing it.
    computes = [s for s in spans if s["name"] == "svc.compute"]
    expect(len(computes) == 3, f"expected 3 svc.compute spans (dup leader, "
           f"warm, retry), got {len(computes)}")
    dup_traces = {tid(f"dup{i}") for i in range(1, 5)}
    dup_computes = [s for s in computes if s["trace"] in dup_traces]
    expect(len(dup_computes) == 1,
           f"expected exactly 1 svc.compute among the dups, got {len(dup_computes)}")
    leader = next(r for r in (by_id[f"dup{i}"] for i in range(1, 5))
                  if not r["coalesced"])
    joins = [s for s in spans if s["name"] == "svc.join"]
    expect(len(joins) == 3, f"expected 3 svc.join spans, got {len(joins)}")
    if dup_computes:
        compute = dup_computes[0]
        expect(compute["trace"] == leader["trace_id"],
               "the dup compute span is not on the leader's trace")
        expect(compute["parent"] == roots[leader["trace_id"]]["span"],
               "the dup compute span does not hang off the leader's root")
        expect({j["trace"] for j in joins} == dup_traces - {leader["trace_id"]},
               "svc.join spans are not one per follower dup")
        for j in joins:
            expect(j["kind"] == "join" and j["join"] == compute["span"],
                   f"join span {j['span']} does not reference the leader's "
                   "compute span")
            expect(j["parent"] == roots[j["trace"]]["span"],
                   f"join span {j['span']} does not hang off its own root")

    # Root attrs carry the serving verdicts the responses claimed.
    attr_expect = [(leader["id"], "cache=bypass", "coalesced=false"),
                   ("hit", "cache=hit", "status=ok"),
                   ("late", "status=deadline_exceeded", "bytes=0"),
                   ("retry", "cache=miss", "coalesced=false")]
    for rid, *needles in attr_expect:
        attrs = roots.get(tid(rid), {}).get("attrs", "")
        for needle in needles:
            expect(needle in attrs, f"{rid}: root attrs {attrs!r} lack {needle!r}")
    follower = next(r for r in (by_id[f"dup{i}"] for i in range(1, 5))
                    if r["coalesced"])
    attrs = roots.get(follower["trace_id"], {}).get("attrs", "")
    for needle in ("join=batch", "coalesced=true"):
        expect(needle in attrs,
               f"{follower['id']}: root attrs {attrs!r} lack {needle!r}")

    return [json.dumps(header)] + [json.dumps(s) for s in spans]


def schema_check(checker, lines, what, failures):
    with tempfile.NamedTemporaryFile("w", suffix=".jsonl", delete=False) as f:
        for line in lines:
            f.write(line + "\n")
        path = f.name
    proc = subprocess.run([sys.executable, checker, path],
                          capture_output=True, text=True)
    if proc.returncode != 0:
        failures.append(f"check_bench_json rejected the {what}:\n{proc.stderr}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--server", required=True, help="path to the rmt_serve binary")
    parser.add_argument("--checker", help="path to check_bench_json.py")
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args()

    failures = []
    responses = run_server(args.server, args.jobs, build_input())
    check(responses, failures)
    trace_lines = check_trace(responses, failures)
    if args.checker:
        schema_check(args.checker, [json.dumps(r) for r in responses],
                     "response stream", failures)
        if trace_lines:
            schema_check(args.checker, trace_lines, "trace probe dump", failures)

    for f in failures:
        print(f"serve_e2e: FAIL: {f}", file=sys.stderr)
    print(f"serve_e2e: {len(responses)} responses, {len(failures)} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""End-to-end test of the JSONL serving stack (tools/rmt_serve).

Pipes a scripted rmt.request/1 stream into an rmt_serve process and
asserts the serving semantics from the outside:

  * four duplicate decide requests in one batch share ONE computation
    (exactly one response has coalesced=false; the engine's `computed`
    counter confirms it) and answer byte-identical results;
  * a repeated cacheable request comes back cached=true with the same
    bytes;
  * deadline_ms=0 is rejected with status "deadline_exceeded" without
    wedging the server — the retry right after succeeds;
  * a malformed line gets an "error" response (id "" when unreadable)
    while the rest of the stream is answered normally;
  * the final "stats" probe reports the exact engine/cache counters the
    script implies — including the exact cache byte total derived from the
    response keys/results;
  * every decide response carries a distinct 16-hex trace_id; probe and
    unreadable-line responses carry null;
  * the final "trace" probe returns the flight recorder, and the span
    forest proves the coalescing causality: one svc.request root per
    engine request, exactly ONE svc.compute subtree for the four
    duplicates, and three svc.join spans referencing the leader's compute
    span — with each response's trace_id resolving to its root span;
  * every response line validates against the rmt.response/1 schema, and
    the trace probe's dump against the rmt.trace/1 forest rules, via
    tools/check_bench_json.py (when --checker is given).

Persistence (`--store-dir`) is exercised in BOTH transports:

  * store_restart — a server is SIGKILLed mid-serve (no shutdown hook may
    run) after answering three distinct requests with a store attached; a
    restarted server over the same directory answers the same requests
    byte-identically with cached=true, engine.computed==0 and
    engine.disk_hits==3 — the warm-start contract: a crash costs zero
    recomputation;
  * store_merge_divergence — two servers populate two stores with the
    same request, then ONE value byte in the source store is flipped with
    its record checksum recomputed (so the record still loads as
    perfectly valid); `rmt_cli store merge` must refuse with exit 3 and a
    MERGE FAILED diagnosis, leaving the destination byte-for-byte
    untouched, while the untampered control merge exits 0. Needs --cli.

TCP mode (`rmt_serve --port 0`) is exercised by a socket harness on top of
the same assertions:

  * tcp_parity_faults — 64 concurrent clients with injected transport
    faults (split writes mid-line, dribbled bytes, duplicated lines,
    half-open disconnects) each receive answers whose deterministic
    segment (status/key/result/error) is byte-identical to the stdio-mode
    answer for the same request, in request order, with zero sheds and
    zero leaked connections in the final net.* stats;
  * tcp_coalesce — the same key sent from two different sockets lands in
    ONE engine batch (a blank line from either connection flushes) and
    shares one computation: engine.computed==1, engine.coalesced==1, and
    the trace probe shows one svc.compute with an svc.join referencing it
    plus net.write spans joined to each response's svc.request root;
  * tcp_shed — admission control: past --max-inflight-conn the server
    answers "overloaded" errors immediately (net.shed counts them) and
    keeps both the order and the connection intact;
  * tcp_slow_client — a client that never reads is disconnected once its
    write queue passes --write-hard-cap, while a healthy client on the
    same server keeps getting answers;
  * tcp_drain — SIGTERM flushes in-flight work, closes cleanly, exit 0.

Usage: serve_e2e.py --server PATH [--cli PATH] [--checker PATH] [--jobs N]
                    [--mode {all,stdio,tcp}]
Exit code 0 on success; failures are printed and exit 1.

Wired into ctest as `serve_e2e` (and the release CI job runs --mode tcp
explicitly).
"""

import argparse
import json
import os
import re
import signal
import socket
import struct
import subprocess
import sys
import tempfile
import threading
import time

INSTANCE_A = ("rmt-instance v1\nnodes 3\nedge 0 1\nedge 1 2\n"
              "dealer 0\nreceiver 2\ncorruptible 1\n")
INSTANCE_B = ("rmt-instance v1\nnodes 6\nedge 0 1\nedge 1 2\nedge 2 5\n"
              "edge 0 3\nedge 3 4\nedge 4 5\ndealer 0\nreceiver 5\n"
              "corruptible 1\ncorruptible 3\nknowledge k-hop 2\n")


def request(rid, instance, **extra):
    doc = {"schema": "rmt.request/1", "id": rid, "kind": "decide_rmt",
           "instance": instance}
    doc.update(extra)
    return json.dumps(doc)


def build_input():
    lines = []
    # Batch 1: four duplicates, no_cache so the cache cannot pre-empt the
    # coalescing path. A blank line flushes the batch.
    for i in range(1, 5):
        lines.append(request(f"dup{i}", INSTANCE_A, no_cache=True))
    lines.append("")
    # Cache population + hit on a distinct instance.
    lines.append(request("warm", INSTANCE_B))
    lines.append("")
    lines.append(request("hit", INSTANCE_B))
    lines.append("")
    # Deadline 0 is deterministically already expired; the retry that
    # follows proves the server did not wedge.
    lines.append(request("late", INSTANCE_A, deadline_ms=0))
    lines.append("")
    lines.append(request("retry", INSTANCE_A))
    lines.append("")
    # A line that is not even JSON still yields a response.
    lines.append("this is not a request")
    lines.append("")
    # Probes (each flushes anything pending first; neither reaches the
    # engine, so the request counters above stay exact).
    lines.append(json.dumps({"schema": "rmt.request/1", "id": "st",
                             "kind": "stats", "instance": ""}))
    lines.append("")
    lines.append(json.dumps({"schema": "rmt.request/1", "id": "tr",
                             "kind": "trace", "instance": ""}))
    return "\n".join(lines) + "\n"


def run_server(server, jobs, text):
    proc = subprocess.run([server, "--jobs", str(jobs)], input=text,
                          capture_output=True, text=True, timeout=90)
    if proc.returncode != 0:
        raise AssertionError(f"rmt_serve exited {proc.returncode}: {proc.stderr}")
    return [json.loads(line) for line in proc.stdout.splitlines() if line.strip()]


def check(responses, failures):
    def expect(cond, msg):
        if not cond:
            failures.append(msg)

    by_id = {}
    for r in responses:
        expect(r.get("schema") == "rmt.response/1",
               f"bad schema in response: {r.get('schema')!r}")
        by_id.setdefault(r.get("id"), []).append(r)

    # Coalescing: one computation, four identical answers.
    dups = [by_id.get(f"dup{i}", [None])[0] for i in range(1, 5)]
    expect(all(d is not None for d in dups), "missing dup responses")
    if all(dups):
        expect(all(d["status"] == "ok" for d in dups), "dup status not ok")
        results = {json.dumps(d["result"], sort_keys=True) for d in dups}
        expect(len(results) == 1, f"dup results diverged: {len(results)} variants")
        keys = {d["key"] for d in dups}
        expect(len(keys) == 1, "dup keys diverged")
        owners = [d for d in dups if not d["coalesced"]]
        expect(len(owners) == 1,
               f"expected exactly 1 non-coalesced dup, got {len(owners)}")

    # Caching: the second ask for INSTANCE_B is a byte-identical hit.
    warm, hit = by_id.get("warm", [None])[0], by_id.get("hit", [None])[0]
    expect(warm and warm["status"] == "ok" and not warm["cached"],
           "warm request not a fresh ok")
    expect(hit and hit["status"] == "ok" and hit["cached"], "hit request not cached")
    if warm and hit:
        expect(hit["result"] == warm["result"], "cached bytes diverged")

    # Deadline: rejected, result null, and the server kept serving.
    late, retry = by_id.get("late", [None])[0], by_id.get("retry", [None])[0]
    expect(late and late["status"] == "deadline_exceeded",
           f"late status: {late and late['status']}")
    expect(late and late["result"] is None, "late result not null")
    expect(retry and retry["status"] == "ok", "retry after deadline failed")

    # Malformed line: an error response with the empty id.
    bad = by_id.get("", [None])[0]
    expect(bad and bad["status"] == "error" and bad["error"],
           "malformed line did not yield an error response")

    # Stats: the exact counters the scripted stream implies.
    st = by_id.get("st", [None])[0]
    expect(st and st["status"] == "ok", "stats probe failed")
    if st:
        engine = st["result"]["engine"]
        cache = st["result"]["cache"]
        expect(engine["requests"] == 8, f"engine.requests={engine['requests']} != 8")
        expect(engine["computed"] == 3, f"engine.computed={engine['computed']} != 3 "
               "(dups must share one computation)")
        expect(engine["coalesced"] == 3, f"engine.coalesced={engine['coalesced']} != 3")
        expect(engine["deadline_exceeded"] == 1,
               f"engine.deadline_exceeded={engine['deadline_exceeded']} != 1")
        expect(engine["errors"] == 0, f"engine.errors={engine['errors']} != 0")
        expect(cache["hits"] == 1, f"cache.hits={cache['hits']} != 1")
        expect(cache["misses"] == 2, f"cache.misses={cache['misses']} != 2")
        expect(cache["entries"] == 2, f"cache.entries={cache['entries']} != 2")
        # Exact byte accounting: the two entries are warm's and retry's.
        # Each costs its composite cache key ("<instance-key>:<kind>") plus
        # the compact serialized result — svc::ResultCache charges
        # key.size() + value.size(), and the server stores results as the
        # same compact JSON it answers with.
        if warm and retry:
            expected_bytes = sum(
                len(r["key"]) + 1 + len("decide_rmt") +
                len(json.dumps(r["result"], separators=(",", ":")))
                for r in (warm, retry))
            expect(cache["bytes"] == expected_bytes,
                   f"cache.bytes={cache['bytes']} != {expected_bytes} "
                   "(composite keys + stored result bytes)")

    # Trace ids: every request that reached the engine got its own trace;
    # probe and unreadable-line responses carry null.
    tids = {}
    for rid in [f"dup{i}" for i in range(1, 5)] + ["warm", "hit", "late", "retry"]:
        r = by_id.get(rid, [None])[0]
        tid = r.get("trace_id") if r else None
        expect(isinstance(tid, str) and re.fullmatch(r"[0-9a-f]{16}", tid),
               f"{rid}: trace_id {tid!r} is not 16 hex digits")
        if isinstance(tid, str):
            tids[rid] = tid
    expect(len(set(tids.values())) == len(tids), "decide trace_ids not distinct")
    for rid in ("", "st", "tr"):
        r = by_id.get(rid, [None])[0]
        expect(r is not None and r.get("trace_id") is None,
               f"{rid or 'malformed'}: trace_id should be null")


def check_trace(responses, failures):
    """Assert the coalescing causality from the trace probe's span forest;
    returns the dump as rmt.trace/1 lines for the schema check."""
    def expect(cond, msg):
        if not cond:
            failures.append(msg)

    by_id = {r.get("id"): r for r in responses}
    tr = by_id.get("tr")
    expect(tr and tr.get("status") == "ok" and tr["result"]["kind"] == "trace",
           "trace probe failed")
    if not (tr and tr.get("status") == "ok"):
        return None
    header, spans = tr["result"]["header"], tr["result"]["spans"]
    expect(header["dropped"] == 0, "flight recorder dropped spans mid-test")

    tid = lambda rid: by_id[rid].get("trace_id")
    engine_ids = [f"dup{i}" for i in range(1, 5)] + ["warm", "hit", "late", "retry"]

    # One svc.request root per engine request, each on its response's trace.
    roots = {s["trace"]: s for s in spans if s["name"] == "svc.request"}
    expect(len([s for s in spans if s["name"] == "svc.request"]) == 8,
           "expected 8 svc.request root spans")
    expect(all(s["parent"] is None for s in roots.values()),
           "svc.request spans must be trace roots")
    expect(set(roots) == {tid(r) for r in engine_ids},
           "svc.request traces do not match the response trace_ids")

    # The four duplicates share ONE compute subtree: the leader's trace
    # carries the only svc.compute among them, hanging off the leader's
    # root; the three followers each record an svc.join referencing it.
    computes = [s for s in spans if s["name"] == "svc.compute"]
    expect(len(computes) == 3, f"expected 3 svc.compute spans (dup leader, "
           f"warm, retry), got {len(computes)}")
    dup_traces = {tid(f"dup{i}") for i in range(1, 5)}
    dup_computes = [s for s in computes if s["trace"] in dup_traces]
    expect(len(dup_computes) == 1,
           f"expected exactly 1 svc.compute among the dups, got {len(dup_computes)}")
    leader = next(r for r in (by_id[f"dup{i}"] for i in range(1, 5))
                  if not r["coalesced"])
    joins = [s for s in spans if s["name"] == "svc.join"]
    expect(len(joins) == 3, f"expected 3 svc.join spans, got {len(joins)}")
    if dup_computes:
        compute = dup_computes[0]
        expect(compute["trace"] == leader["trace_id"],
               "the dup compute span is not on the leader's trace")
        expect(compute["parent"] == roots[leader["trace_id"]]["span"],
               "the dup compute span does not hang off the leader's root")
        expect({j["trace"] for j in joins} == dup_traces - {leader["trace_id"]},
               "svc.join spans are not one per follower dup")
        for j in joins:
            expect(j["kind"] == "join" and j["join"] == compute["span"],
                   f"join span {j['span']} does not reference the leader's "
                   "compute span")
            expect(j["parent"] == roots[j["trace"]]["span"],
                   f"join span {j['span']} does not hang off its own root")

    # Root attrs carry the serving verdicts the responses claimed.
    attr_expect = [(leader["id"], "cache=bypass", "coalesced=false"),
                   ("hit", "cache=hit", "status=ok"),
                   ("late", "status=deadline_exceeded", "bytes=0"),
                   ("retry", "cache=miss", "coalesced=false")]
    for rid, *needles in attr_expect:
        attrs = roots.get(tid(rid), {}).get("attrs", "")
        for needle in needles:
            expect(needle in attrs, f"{rid}: root attrs {attrs!r} lack {needle!r}")
    follower = next(r for r in (by_id[f"dup{i}"] for i in range(1, 5))
                    if r["coalesced"])
    attrs = roots.get(follower["trace_id"], {}).get("attrs", "")
    for needle in ("join=batch", "coalesced=true"):
        expect(needle in attrs,
               f"{follower['id']}: root attrs {attrs!r} lack {needle!r}")

    return [json.dumps(header)] + [json.dumps(s) for s in spans]


def schema_check(checker, lines, what, failures):
    with tempfile.NamedTemporaryFile("w", suffix=".jsonl", delete=False) as f:
        for line in lines:
            f.write(line + "\n")
        path = f.name
    proc = subprocess.run([sys.executable, checker, path],
                          capture_output=True, text=True)
    if proc.returncode != 0:
        failures.append(f"check_bench_json rejected the {what}:\n{proc.stderr}")


# --------------------------------------------------------------------------
# Persistence scenarios (rmt_serve --store-dir; see src/store/)
# --------------------------------------------------------------------------

def fnv1a64(data):
    """FNV-1a-64 over bytes — must match src/store/format.hpp."""
    h = 0xCBF29CE484222325
    for c in data:
        h ^= c
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def tamper_store_value(path):
    """Flip one value byte of the first record in a store.log AND recompute
    that record's checksum, so the record still loads as perfectly valid —
    only a byte-level comparison against another store can catch it."""
    with open(path, "rb") as f:
        data = bytearray(f.read())
    off = data.index(b"\n") + 1  # first record starts after the identity line
    key_len, value_len = struct.unpack_from("<II", data, off)
    (seq,) = struct.unpack_from("<Q", data, off + 8)
    if value_len == 0:
        raise AssertionError("tamper target record has an empty value")
    key = bytes(data[off + 24:off + 24 + key_len])
    voff = off + 24 + key_len
    data[voff] ^= 0x01
    value = bytes(data[voff:voff + value_len])
    checksum = fnv1a64(struct.pack("<IIQ", key_len, value_len, seq) + key + value)
    struct.pack_into("<Q", data, off + 16, checksum)
    with open(path, "wb") as f:
        f.write(data)


STORE_KEYS = 3  # distinct instances persisted per store_restart run


def store_restart(server, jobs, failures, mode):
    """SIGKILL mid-serve -> restart -> byte-identical answers, computed==0."""
    tag = f"store_restart[{mode}]"

    def expect(cond, msg):
        if not cond:
            failures.append(f"{tag}: {msg}")

    with tempfile.TemporaryDirectory(prefix="rmt_e2e_store_") as tmp:
        sdir = os.path.join(tmp, "store")
        flags = ["--store-dir", sdir]
        first = {}

        # First life: answer three distinct requests (each write-through to
        # disk), then SIGKILL — no drain, no flush hook, nothing graceful.
        if mode == "stdio":
            proc = subprocess.Popen([server, "--jobs", str(jobs), *flags],
                                    stdin=subprocess.PIPE, stdout=subprocess.PIPE,
                                    stderr=subprocess.DEVNULL, text=True)
            try:
                for k in range(STORE_KEYS):
                    proc.stdin.write(request(f"w{k}", VARIANTS[k]) + "\n\n")
                proc.stdin.flush()
                for _ in range(STORE_KEYS):
                    doc = json.loads(proc.stdout.readline())
                    first[doc["id"]] = doc
            finally:
                proc.kill()
                proc.wait()
        else:
            with TcpServer(server, jobs, flags) as srv:
                client = TcpClient(srv.port)
                for k in range(STORE_KEYS):
                    client.request(f"w{k}", VARIANTS[k])
                    client.send_line("")
                for _ in range(STORE_KEYS):
                    doc = json.loads(client.recv_line())
                    first[doc["id"]] = doc
                client.close()
                srv.proc.kill()
                srv.proc.wait()
        expect(len(first) == STORE_KEYS
               and all(d["status"] == "ok" for d in first.values()),
               "first life did not answer every request ok")
        if len(first) != STORE_KEYS:
            return

        # Second life over the same directory: every answer must come off
        # disk — cached, byte-identical, zero recomputation.
        docs = {}
        if mode == "stdio":
            lines = []
            for k in range(STORE_KEYS):
                lines.append(request(f"w{k}", VARIANTS[k]))
                lines.append("")
            lines.append(json.dumps({"schema": "rmt.request/1", "id": "st",
                                     "kind": "stats", "instance": ""}))
            out = subprocess.run([server, "--jobs", str(jobs), *flags],
                                 input="\n".join(lines) + "\n",
                                 capture_output=True, text=True, timeout=90)
            expect(out.returncode == 0,
                   f"restarted server exited {out.returncode}: {out.stderr}")
            for raw in out.stdout.splitlines():
                if raw.strip():
                    doc = json.loads(raw)
                    docs[doc["id"]] = doc
        else:
            with TcpServer(server, jobs, flags) as srv:
                client = TcpClient(srv.port)
                for k in range(STORE_KEYS):
                    client.request(f"w{k}", VARIANTS[k])
                    client.send_line("")
                for _ in range(STORE_KEYS):
                    doc = json.loads(client.recv_line())
                    docs[doc["id"]] = doc
                docs["st"] = client.probe("stats", "st")
                client.close()
                expect(srv.terminate() == 0, "restarted server exit != 0")

        for k in range(STORE_KEYS):
            doc = docs.get(f"w{k}")
            expect(doc is not None and doc["status"] == "ok",
                   f"w{k}: restarted answer missing or not ok")
            if not doc:
                continue
            expect(doc["cached"] is True, f"w{k}: restarted answer not cached")
            expect(doc["result"] == first[f"w{k}"]["result"],
                   f"w{k}: restarted result diverged from the pre-crash bytes")
        st = docs.get("st")
        expect(st is not None and st["status"] == "ok", "stats probe failed")
        if st:
            engine, store = st["result"]["engine"], st["result"].get("store")
            expect(engine["computed"] == 0,
                   f"engine.computed={engine['computed']} != 0 "
                   "(restart recomputed instead of serving from disk)")
            expect(engine["disk_hits"] == STORE_KEYS,
                   f"engine.disk_hits={engine['disk_hits']} != {STORE_KEYS}")
            expect(store is not None and store["hits"] == STORE_KEYS,
                   f"store.hits={store and store['hits']} != {STORE_KEYS}")
            expect(store is not None and store["records"] == STORE_KEYS
                   and store["repairs"] == 0,
                   "store inventory wrong after the crash "
                   f"(records={store and store['records']}, "
                   f"repairs={store and store['repairs']})")


def populate_store(server, jobs, sdir, mode):
    """One server life that persists INSTANCE_B's answer into `sdir`."""
    if mode == "stdio":
        out = subprocess.run([server, "--jobs", str(jobs), "--store-dir", sdir],
                             input=request("seed", INSTANCE_B) + "\n\n",
                             capture_output=True, text=True, timeout=90)
        if out.returncode != 0:
            raise AssertionError(f"populate run exited {out.returncode}: {out.stderr}")
    else:
        with TcpServer(server, jobs, ["--store-dir", sdir]) as srv:
            client = TcpClient(srv.port)
            client.request("seed", INSTANCE_B)
            client.send_line("")
            doc = json.loads(client.recv_line())
            if doc["status"] != "ok":
                raise AssertionError(f"populate request failed: {doc}")
            client.close()
            if srv.terminate() != 0:
                raise AssertionError("populate server exit != 0")


def store_merge_divergence(server, jobs, cli, failures, mode):
    """Merging a tampered store fails loudly and modifies nothing."""
    tag = f"store_merge_divergence[{mode}]"

    def expect(cond, msg):
        if not cond:
            failures.append(f"{tag}: {msg}")

    with tempfile.TemporaryDirectory(prefix="rmt_e2e_merge_") as tmp:
        dst = os.path.join(tmp, "a")
        src = os.path.join(tmp, "b")
        populate_store(server, jobs, dst, mode)
        populate_store(server, jobs, src, mode)
        dst_log = os.path.join(dst, "store.log")
        with open(dst_log, "rb") as f:
            dst_before = f.read()

        # Control: two stores grown from the same request hold identical
        # records — the merge folds to zero appends and exits 0.
        ok = subprocess.run([cli, "store", "merge", dst, src],
                            capture_output=True, text=True, timeout=60)
        expect(ok.returncode == 0,
               f"equal-store merge exited {ok.returncode}: {ok.stderr}")

        # One flipped value byte with a recomputed checksum: the record is
        # valid in isolation, so only the merge's byte comparison is left
        # to notice the two stores now disagree about a shared key.
        tamper_store_value(os.path.join(src, "store.log"))
        bad = subprocess.run([cli, "store", "merge", dst, src],
                            capture_output=True, text=True, timeout=60)
        expect(bad.returncode == 3,
               f"tampered merge exited {bad.returncode}, expected 3")
        expect("MERGE FAILED:" in bad.stderr and "divergence" in bad.stderr,
               f"tampered merge stderr lacks the diagnosis: {bad.stderr!r}")
        with open(dst_log, "rb") as f:
            expect(f.read() == dst_before,
                   "destination store modified by a refused merge")


# --------------------------------------------------------------------------
# TCP harness
# --------------------------------------------------------------------------

PORT_RE = re.compile(r"rmt_serve: listening on 127\.0\.0\.1:(\d+)")


def path_instance(n):
    """A structurally distinct n-node path instance (distinct cache key)."""
    lines = ["rmt-instance v1", f"nodes {n}"]
    lines += [f"edge {i} {i + 1}" for i in range(n - 1)]
    lines += ["dealer 0", f"receiver {n - 1}", "corruptible 1"]
    return "\n".join(lines) + "\n"


VARIANTS = [path_instance(n) for n in range(3, 9)]


def det_segment(raw_line):
    """The deterministic slice of a response line: status/key/result/error.

    Everything before it (schema, id) and after it (cached, coalesced,
    wall_us, trace_id) legitimately varies between stdio and TCP runs;
    this segment must be byte-identical for the same request.
    """
    start = raw_line.index('"status":')
    end = raw_line.index(',"cached":')
    return raw_line[start:end]


class TcpServer:
    """Context manager around `rmt_serve --port 0 <flags>`."""

    def __init__(self, server, jobs, flags=()):
        self.cmd = [server, "--port", "0", "--jobs", str(jobs), *flags]
        self.proc = None
        self.port = None

    def __enter__(self):
        self.proc = subprocess.Popen(self.cmd, stdout=subprocess.DEVNULL,
                                     stderr=subprocess.PIPE, text=True)
        line = self.proc.stderr.readline()
        m = PORT_RE.search(line)
        if not m:
            self.proc.kill()
            self.proc.wait()
            raise AssertionError(f"rmt_serve did not announce a port: {line!r}")
        self.port = int(m.group(1))
        return self

    def terminate(self, timeout=30):
        """SIGTERM the server and return its exit code (graceful drain)."""
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def __exit__(self, *exc):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait()
        self.proc.stderr.close()


class TcpClient:
    """Minimal blocking JSONL client with raw-byte access for fault injection."""

    def __init__(self, port, rcvbuf=0, timeout=60):
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        if rcvbuf:
            self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.sock.settimeout(timeout)
        self.sock.connect(("127.0.0.1", port))
        self.buf = b""

    def send_raw(self, data):
        self.sock.sendall(data)

    def send_line(self, line):
        self.sock.sendall(line.encode() + b"\n")

    def recv_line(self):
        """One decoded line, or None on clean EOF."""
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                return None
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode()

    def request(self, rid, instance, **extra):
        self.send_line(request(rid, instance, **extra))

    def probe(self, kind, rid):
        self.send_line(json.dumps({"schema": "rmt.request/1", "id": rid,
                                   "kind": kind, "instance": ""}))
        line = self.recv_line()
        if line is None:
            raise AssertionError(f"EOF while waiting for the {kind} probe")
        return json.loads(line)

    def shutdown_write(self):
        self.sock.shutdown(socket.SHUT_WR)

    def close(self):
        self.sock.close()


def stdio_reference_segments(server, jobs):
    """Map variant index -> deterministic response segment from a stdio run."""
    lines = []
    for k in range(len(VARIANTS)):
        lines.append(request(f"v{k}", VARIANTS[k]))
        lines.append("")
    text = "\n".join(lines) + "\n"
    proc = subprocess.run([server, "--jobs", str(jobs)], input=text,
                          capture_output=True, text=True, timeout=90)
    if proc.returncode != 0:
        raise AssertionError(f"stdio reference run exited {proc.returncode}: "
                             f"{proc.stderr}")
    segments = {}
    for raw in proc.stdout.splitlines():
        if not raw.strip():
            continue
        rid = json.loads(raw)["id"]
        segments[int(rid[1:])] = det_segment(raw)
    if set(segments) != set(range(len(VARIANTS))):
        raise AssertionError("stdio reference run missed variants")
    return segments


def tcp_parity_faults(server, jobs, checker, failures):
    """64 concurrent faulted clients; byte-identity with stdio answers."""
    def expect(cond, msg):
        if not cond:
            failures.append(f"tcp_parity_faults: {msg}")

    ref = stdio_reference_segments(server, jobs)
    n_clients, per_client = 64, 3
    raw_responses = []
    raw_lock = threading.Lock()
    errors = []

    def run_client(c, port):
        try:
            client = TcpClient(port)
            variants = [(c + j) % len(VARIANTS) for j in range(per_client)]
            reqs = [request(f"c{c}_{j}", VARIANTS[v])
                    for j, v in enumerate(variants)]
            fault = c % 4
            expected = list(zip([f"c{c}_{j}" for j in range(per_client)],
                                variants))
            if fault == 0:
                # Split writes: one send ending mid-way through the second
                # request line, the rest (plus the flush) in a second send.
                payload = ("\n".join(reqs) + "\n\n").encode()
                cut = len(reqs[0]) + 1 + len(reqs[1]) // 2
                client.send_raw(payload[:cut])
                time.sleep(0.01)
                client.send_raw(payload[cut:])
            elif fault == 1:
                # Dribbled bytes: the whole payload in 7-byte chunks.
                payload = ("\n".join(reqs) + "\n\n").encode()
                for off in range(0, len(payload), 7):
                    client.send_raw(payload[off:off + 7])
            elif fault == 2:
                # Duplicated line: the first request is sent twice; the
                # server must answer it twice, in order.
                payload = "\n".join([reqs[0]] + reqs) + "\n\n"
                client.send_raw(payload.encode())
                expected = [expected[0]] + expected
            else:
                # Half-open: send everything, then shut down the write side
                # before reading a single response.
                client.send_raw(("\n".join(reqs) + "\n\n").encode())
                client.shutdown_write()

            for rid, variant in expected:
                raw = client.recv_line()
                if raw is None:
                    errors.append(f"client {c}: EOF before response {rid}")
                    return
                doc = json.loads(raw)
                if doc["id"] != rid:
                    errors.append(f"client {c}: got id {doc['id']!r}, "
                                  f"expected {rid!r} (order broken)")
                    return
                if det_segment(raw) != ref[variant]:
                    errors.append(f"client {c}: response {rid} diverged from "
                                  "the stdio answer for the same instance")
                    return
                with raw_lock:
                    raw_responses.append(raw)
            if fault == 3 and client.recv_line() is not None:
                errors.append(f"client {c}: no EOF after half-open close")
            client.close()
        except Exception as e:  # noqa: BLE001 - collected per-thread
            errors.append(f"client {c}: {type(e).__name__}: {e}")

    with TcpServer(server, jobs, ["--batch-wait-ms", "2"]) as srv:
        threads = [threading.Thread(target=run_client, args=(c, srv.port))
                   for c in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for e in errors:
            failures.append(f"tcp_parity_faults: {e}")

        # The control connection is the 65th accept; wait for the 64 client
        # conns to be reaped so active==1 proves nothing wedged or leaked.
        control = TcpClient(srv.port)
        deadline = time.monotonic() + 10
        net = None
        while time.monotonic() < deadline:
            net = control.probe("stats", "st")["result"]["net"]
            if net["active"] == 1:
                break
            time.sleep(0.05)
        expect(net is not None and net["accepts"] == n_clients + 1,
               f"net.accepts={net and net['accepts']} != {n_clients + 1}")
        expect(net is not None and net["active"] == 1,
               f"net.active={net and net['active']} != 1 (leaked connections)")
        expect(net is not None and net["shed"] == 0,
               f"net.shed={net and net['shed']} != 0")
        expect(net is not None and net["slow_client_disconnects"] == 0,
               "unexpected slow-client disconnects")
        # The probe's own response is not yet counted in the snapshot it
        # carries, so the floor is exactly the client-request total.
        dup_extra = len([c for c in range(n_clients) if c % 4 == 2])
        want = n_clients * per_client + dup_extra
        expect(net is not None and net["responses_out"] >= want,
               f"net.responses_out={net and net['responses_out']} < {want}")
        control.close()
        expect(srv.terminate() == 0, "server exit code != 0 after SIGTERM")

    expect(len(raw_responses) == want,
           f"collected {len(raw_responses)} parity responses, expected {want}")
    if checker:
        schema_check(checker, raw_responses, "TCP parity responses", failures)


def tcp_coalesce(server, jobs, checker, failures):
    """One key from two sockets -> one computation, with trace evidence."""
    def expect(cond, msg):
        if not cond:
            failures.append(f"tcp_coalesce: {msg}")

    with TcpServer(server, jobs, ["--batch-wait-ms", "60000"]) as srv:
        a, b = TcpClient(srv.port), TcpClient(srv.port)
        a.request("a1", INSTANCE_A, no_cache=True)
        # No blank line yet: a1 sits in the shared pending batch. Give the
        # server time to admit it before the second socket joins the batch.
        time.sleep(0.3)
        b.request("b1", INSTANCE_A, no_cache=True)
        time.sleep(0.1)
        b.send_line("")  # a blank from EITHER conn flushes the shared batch

        ra = json.loads(a.recv_line())
        rb = json.loads(b.recv_line())
        expect(ra["id"] == "a1" and rb["id"] == "b1", "ids scrambled")
        expect(ra["status"] == "ok" and rb["status"] == "ok", "status not ok")
        expect(ra["key"] == rb["key"], "same instance produced different keys")
        expect({ra["coalesced"], rb["coalesced"]} == {True, False},
               "expected exactly one coalesced follower across the sockets")

        st = b.probe("stats", "st")["result"]
        expect(st["engine"]["requests"] == 2, "engine.requests != 2")
        expect(st["engine"]["computed"] == 1,
               f"engine.computed={st['engine']['computed']} != 1 "
               "(cross-socket batch did not share the computation)")
        expect(st["engine"]["coalesced"] == 1, "engine.coalesced != 1")
        expect(st["net"]["accepts"] == 2, "net.accepts != 2")

        tr = b.probe("trace", "tr")
        spans = tr["result"]["spans"]
        dup_traces = {ra["trace_id"], rb["trace_id"]}
        computes = [s for s in spans if s["name"] == "svc.compute"
                    and s["trace"] in dup_traces]
        expect(len(computes) == 1,
               f"expected 1 svc.compute across both sockets, got {len(computes)}")
        joins = [s for s in spans if s["name"] == "svc.join"]
        expect(len(joins) == 1 and computes
               and joins[0]["join"] == computes[0]["span"],
               "svc.join does not reference the shared compute span")

        # net.write spans prove the transport joined each response to its
        # svc.request root.
        roots = {s["span"]: s for s in spans if s["name"] == "svc.request"}
        writes = [s for s in spans if s["name"] == "net.write"
                  and s["join"] in roots]
        expect(len(writes) >= 2,
               f"expected >=2 net.write spans joined to svc.request roots, "
               f"got {len(writes)}")
        for w in writes:
            expect(w["kind"] == "join", "net.write span is not a join")

        if checker:
            dump = [json.dumps(tr["result"]["header"])]
            dump += [json.dumps(s) for s in spans]
            schema_check(checker, dump, "TCP trace probe dump", failures)
        a.close()
        b.close()
        expect(srv.terminate() == 0, "server exit code != 0 after SIGTERM")


def tcp_shed(server, jobs, failures):
    """Admission control: overloaded errors past the per-conn budget."""
    def expect(cond, msg):
        if not cond:
            failures.append(f"tcp_shed: {msg}")

    flags = ["--batch-wait-ms", "60000", "--max-inflight-conn", "1"]
    with TcpServer(server, jobs, flags) as srv:
        client = TcpClient(srv.port)
        payload = "\n".join(request(f"q{i}", INSTANCE_A) for i in range(5))
        client.send_raw((payload + "\n\n").encode())
        docs = []
        for _ in range(5):
            line = client.recv_line()
            if line is None:
                failures.append("tcp_shed: EOF before all 5 responses")
                return
            docs.append(json.loads(line))
        expect([d["id"] for d in docs] == [f"q{i}" for i in range(5)],
               "shed responses out of order")
        expect(docs[0]["status"] == "ok", "admitted request not ok")
        for d in docs[1:]:
            expect(d["status"] == "error" and "overloaded" in (d["error"] or ""),
                   f"{d['id']}: expected an overloaded error, got "
                   f"{d['status']}/{d['error']!r}")
        net = client.probe("stats", "st")["result"]["net"]
        expect(net["shed"] == 4, f"net.shed={net['shed']} != 4")
        client.close()
        expect(srv.terminate() == 0, "server exit code != 0 after SIGTERM")


def tcp_slow_client(server, jobs, failures):
    """A never-reading client is disconnected; a healthy one keeps working."""
    def expect(cond, msg):
        if not cond:
            failures.append(f"tcp_slow_client: {msg}")

    flags = ["--so-sndbuf", "4096", "--write-budget", "1024",
             "--write-hard-cap", "4096"]
    with TcpServer(server, jobs, flags) as srv:
        slow = TcpClient(srv.port, rcvbuf=4096)
        try:
            # Pipeline answered-but-unread work until the server's write
            # queue blows past the hard cap. Sends start failing once the
            # server resets the connection — that is the success condition.
            for i in range(400):
                slow.send_line(request(f"s{i}", INSTANCE_A))
                slow.send_line("")
        except OSError:
            pass

        healthy = TcpClient(srv.port)
        deadline = time.monotonic() + 15
        net = None
        while time.monotonic() < deadline:
            net = healthy.probe("stats", f"h{int(time.monotonic() * 1000)}")
            net = net["result"]["net"]
            if net["slow_client_disconnects"] >= 1:
                break
            time.sleep(0.05)
        expect(net is not None and net["slow_client_disconnects"] >= 1,
               "slow client was never disconnected")
        healthy.request("ok1", INSTANCE_B)
        healthy.send_line("")
        doc = json.loads(healthy.recv_line())
        expect(doc["id"] == "ok1" and doc["status"] == "ok",
               "healthy client starved while the slow client was shed")
        slow.close()
        healthy.close()
        expect(srv.terminate() == 0, "server exit code != 0 after SIGTERM")


def tcp_drain(server, jobs, failures):
    """SIGTERM mid-batch: the in-flight answer is flushed, then clean EOF."""
    def expect(cond, msg):
        if not cond:
            failures.append(f"tcp_drain: {msg}")

    with TcpServer(server, jobs, ["--batch-wait-ms", "60000"]) as srv:
        client = TcpClient(srv.port)
        client.request("d1", INSTANCE_A)
        time.sleep(0.3)  # let the request reach the pending batch
        # Drain flushes the pending batch even though no blank line arrived.
        srv.proc.send_signal(signal.SIGTERM)
        raw = client.recv_line()
        expect(raw is not None, "no response during graceful drain")
        if raw is not None:
            doc = json.loads(raw)
            expect(doc["id"] == "d1" and doc["status"] == "ok",
                   "drained response wrong")
        expect(client.recv_line() is None, "expected EOF after drain")
        client.close()
        code = srv.proc.wait(timeout=30)
        expect(code == 0, f"server exit code {code} != 0 after drain")


def run_scenarios(scenarios, failures):
    for name, fn in scenarios:
        before = len(failures)
        try:
            fn()
        except Exception as e:  # noqa: BLE001 - a scenario must not kill the rest
            failures.append(f"{name}: {type(e).__name__}: {e}")
        status = "ok" if len(failures) == before else "FAIL"
        print(f"serve_e2e: {name}: {status}")


def run_tcp(server, jobs, checker, cli, failures):
    scenarios = [("tcp_parity_faults",
                  lambda: tcp_parity_faults(server, jobs, checker, failures)),
                 ("tcp_coalesce",
                  lambda: tcp_coalesce(server, jobs, checker, failures)),
                 ("tcp_shed", lambda: tcp_shed(server, jobs, failures)),
                 ("tcp_slow_client",
                  lambda: tcp_slow_client(server, jobs, failures)),
                 ("tcp_drain", lambda: tcp_drain(server, jobs, failures)),
                 ("store_restart[tcp]",
                  lambda: store_restart(server, jobs, failures, "tcp"))]
    if cli:
        scenarios.append(
            ("store_merge_divergence[tcp]",
             lambda: store_merge_divergence(server, jobs, cli, failures, "tcp")))
    run_scenarios(scenarios, failures)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--server", required=True, help="path to the rmt_serve binary")
    parser.add_argument("--cli", help="path to the rmt_cli binary "
                        "(enables the store merge-divergence scenarios)")
    parser.add_argument("--checker", help="path to check_bench_json.py")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--mode", choices=["all", "stdio", "tcp"], default="all")
    args = parser.parse_args()

    failures = []
    responses = []
    if args.mode in ("all", "stdio"):
        responses = run_server(args.server, args.jobs, build_input())
        check(responses, failures)
        trace_lines = check_trace(responses, failures)
        if args.checker:
            schema_check(args.checker, [json.dumps(r) for r in responses],
                         "response stream", failures)
            if trace_lines:
                schema_check(args.checker, trace_lines, "trace probe dump",
                             failures)
        scenarios = [("store_restart[stdio]",
                      lambda: store_restart(args.server, args.jobs, failures,
                                            "stdio"))]
        if args.cli:
            scenarios.append(
                ("store_merge_divergence[stdio]",
                 lambda: store_merge_divergence(args.server, args.jobs,
                                                args.cli, failures, "stdio")))
        run_scenarios(scenarios, failures)
    if args.mode in ("all", "tcp"):
        run_tcp(args.server, args.jobs, args.checker, args.cli, failures)

    for f in failures:
        print(f"serve_e2e: FAIL: {f}", file=sys.stderr)
    print(f"serve_e2e: {len(responses)} responses, {len(failures)} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

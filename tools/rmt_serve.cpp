// tools/rmt_serve — the JSONL query server over svc::Engine.
//
// Two transports, one protocol (src/svc/wire.hpp):
//
//   rmt_serve --stdio   (default)  read rmt.request/1 lines from stdin,
//                                  answer rmt.response/1 lines on stdout;
//   rmt_serve --port N             accept many concurrent TCP clients on
//                                  127.0.0.1:N (0 = ephemeral) through the
//                                  src/net event loop — same line protocol
//                                  per connection, all connections multi-
//                                  plexed onto ONE engine so duplicate
//                                  keys coalesce across sockets.
//
// In both modes requests accumulate into a batch; a blank line (from any
// connection, in TCP mode), the batch limit, or — stdio only — EOF
// flushes the batch through the engine and emits the responses in input
// order. Deadlines (deadline_ms) count from the flush. Probe lines the
// engine never sees:
//   * malformed requests — answered with an "error" response echoing the
//     id when one could be salvaged;
//   * {"schema":"rmt.request/1","id":"s","kind":"stats"} — flushes the
//     pending batch, then reports the engine and cache counters as the
//     result object; the TCP server appends its transport counters as a
//     "net" section ({"kind":"stats","engine":{...},"cache":{...},
//     "net":{...}});
//   * {"schema":"rmt.request/1","id":"t","kind":"trace"} — flushes, then
//     reports the flight recorder as the result object
//     ({"kind":"trace","header":{...},"spans":[...]}) where header and
//     every span are verbatim rmt.trace/1 objects.
//
// Tracing (obs/trace.hpp) is always on in the server: every response
// carries its trace_id and the flight recorder retains the last spans.
// The TCP server announces its bound port on stderr
// ("rmt_serve: listening on 127.0.0.1:<port>") so a harness that asked
// for an ephemeral port can find it, and drains gracefully on SIGTERM /
// SIGINT: stop accepting and reading, answer everything in flight, flush
// every write queue, then exit 0.
//
//   rmt_serve [--stdio | --port N] [--jobs N] [--batch N] [--cache-mb N]
//             [--store-dir DIR] [--store-budget N]
//             [--seed N] [--trace-out FILE]
//             [--batch-wait-ms N] [--max-conns N] [--max-line-bytes N]
//             [--max-inflight N] [--max-inflight-conn N]
//             [--write-budget N] [--write-hard-cap N] [--so-sndbuf N]
//
//   --jobs N        worker threads (default: hardware concurrency; 0 =
//                   compute sequentially)
//   --batch N       max requests per engine batch (default 64)
//   --cache-mb N    result cache budget in MiB (default 64)
//   --store-dir D   persistent result store directory (created if absent;
//                   recovered on start — a hostile store file refuses to
//                   serve). Default: memory-only
//   --store-budget N  store.log size cap in bytes (0 = unlimited)
//   --seed N        root seed for derived simulate seeds (default 4242)
//   --trace-out F   dump the flight recorder to F (rmt.trace/1 JSONL) at
//                   exit, on deadline_exceeded, and on crash (the crash
//                   handler is installed only with this flag)
// TCP mode only (see src/net/server.hpp for semantics):
//   --batch-wait-ms N     max age of a pending batch (default 5)
//   --max-conns N         concurrent connection cap (default 1024)
//   --max-line-bytes N    per-line size cap (default 4 MiB)
//   --max-inflight N      global admission budget (default 4096)
//   --max-inflight-conn N per-connection admission budget (default 256)
//   --write-budget N      write-queue pause threshold, bytes (default 4 MiB)
//   --write-hard-cap N    slow-client disconnect threshold, bytes
//                         (default 4x budget)
//   --so-sndbuf N         SO_SNDBUF for accepted sockets (default kernel)
//
// Exit code 0 on EOF / graceful drain, 1 on usage or bind errors.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "net/server.hpp"
#include "obs/trace.hpp"
#include "svc/engine.hpp"
#include "svc/wire.hpp"

namespace {

using namespace rmt;

int usage() {
  std::fprintf(stderr,
               "usage: rmt_serve [--stdio | --port N] [--jobs N] [--batch N]\n"
               "                 [--cache-mb N] [--store-dir DIR] [--store-budget N]\n"
               "                 [--seed N] [--trace-out FILE]\n"
               "                 [--batch-wait-ms N] [--max-conns N] [--max-line-bytes N]\n"
               "                 [--max-inflight N] [--max-inflight-conn N]\n"
               "                 [--write-budget N] [--write-hard-cap N] [--so-sndbuf N]\n"
               "reads rmt.request/1 JSONL on stdin (--stdio) or serves it to many\n"
               "concurrent TCP clients on 127.0.0.1 (--port); a blank line flushes\n"
               "the pending batch\n");
  return 1;
}

/// One stdin line awaiting its response: either an index into the pending
/// engine batch or an already-formatted response (parse errors).
struct Slot {
  bool engine = false;
  std::size_t index = 0;      ///< engine slots: position in the batch
  std::string id;             ///< engine slots: echoed request id
  std::string preformatted;   ///< non-engine slots: the response line
};

/// The stdio transport: one reader, one stream, flush-at-EOF semantics.
class StdioServer {
 public:
  StdioServer(exec::ThreadPool* pool, svc::Engine::Options opts, std::size_t batch_limit)
      : engine_(pool, opts), batch_limit_(batch_limit) {}

  void handle_line(const std::string& line) {
    if (line.empty()) {
      flush();
      return;
    }
    const std::string probe = svc::wire::probe_kind(line);
    if (!probe.empty()) {
      flush();  // probes report the state *after* everything queued so far
      const std::string id = svc::wire::extract_id(line);
      const std::string out = probe == "stats" ? svc::wire::format_stats_response(id, engine_)
                                               : svc::wire::format_trace_response(id);
      std::printf("%s\n", out.c_str());
      std::fflush(stdout);
      return;
    }
    try {
      svc::wire::ParsedRequest parsed = svc::wire::parse_request(line);
      slots_.push_back(Slot{true, batch_.size(), parsed.id, ""});
      batch_.push_back(std::move(parsed.request));
    } catch (const std::exception& e) {
      slots_.push_back(
          Slot{false, 0, "", svc::wire::format_parse_error(svc::wire::extract_id(line), e.what())});
    }
    if (batch_.size() >= batch_limit_) flush();
  }

  void flush() {
    if (slots_.empty()) return;
    const std::vector<svc::Response> responses = engine_.run(batch_);
    for (const Slot& slot : slots_) {
      const std::string line = slot.engine
                                   ? svc::wire::format_response(slot.id, responses[slot.index])
                                   : slot.preformatted;
      std::printf("%s\n", line.c_str());
    }
    std::fflush(stdout);
    batch_.clear();
    slots_.clear();
  }

 private:
  svc::Engine engine_;
  std::size_t batch_limit_;
  std::vector<svc::Request> batch_;
  std::vector<Slot> slots_;
};

net::Server* g_server = nullptr;

extern "C" void handle_drain_signal(int) {
  if (g_server) g_server->stop();  // async-signal-safe by contract
}

}  // namespace

int main(int argc, char** argv) {
  bool stdio = true;
  std::size_t jobs = exec::ThreadPool::hardware_concurrency();
  std::size_t batch_limit = 64;
  std::size_t cache_mb = 64;
  std::string store_dir;
  std::uint64_t store_budget = 0;
  std::uint64_t seed = 4242;
  std::string trace_out;
  net::Server::Options net_opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stdio") {
      stdio = true;
      continue;
    }
    if (i + 1 >= argc) return usage();
    const char* val = argv[++i];
    const std::uint64_t n = std::strtoull(val, nullptr, 10);
    if (arg == "--jobs") jobs = std::size_t(n);
    else if (arg == "--batch") batch_limit = std::size_t(n);
    else if (arg == "--cache-mb") cache_mb = std::size_t(n);
    else if (arg == "--store-dir") store_dir = val;
    else if (arg == "--store-budget") store_budget = n;
    else if (arg == "--seed") seed = n;
    else if (arg == "--trace-out") trace_out = val;
    else if (arg == "--port") {
      stdio = false;
      net_opts.port = std::uint16_t(n);
    } else if (arg == "--batch-wait-ms") net_opts.batch_wait_ms = n;
    else if (arg == "--max-conns") net_opts.max_conns = std::size_t(n);
    else if (arg == "--max-line-bytes") net_opts.max_line_bytes = std::size_t(n);
    else if (arg == "--max-inflight") net_opts.max_inflight_total = std::size_t(n);
    else if (arg == "--max-inflight-conn") net_opts.max_inflight_per_conn = std::size_t(n);
    else if (arg == "--write-budget") net_opts.write_budget_bytes = std::size_t(n);
    else if (arg == "--write-hard-cap") net_opts.write_hard_cap_bytes = std::size_t(n);
    else if (arg == "--so-sndbuf") net_opts.so_sndbuf = int(n);
    else return usage();
  }
  if (batch_limit == 0) batch_limit = 1;

  obs::trace::set_enabled(true);
  if (!trace_out.empty()) {
    obs::trace::Recorder::global().set_dump_path(trace_out);
    obs::trace::install_crash_handler();
  }

  std::unique_ptr<exec::ThreadPool> pool;
  if (jobs > 0) pool = std::make_unique<exec::ThreadPool>(jobs);

  svc::Engine::Options opts;
  opts.cache.max_bytes = cache_mb << 20;
  opts.store.dir = store_dir;
  opts.store.max_bytes = store_budget;
  opts.root_seed = seed;

  if (stdio) {
    // Engine construction opens (and recovers) the store; a hostile store
    // file is a clean refusal to serve, never a crash.
    std::unique_ptr<StdioServer> server;
    try {
      server = std::make_unique<StdioServer>(pool.get(), opts, batch_limit);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "rmt_serve: %s\n", e.what());
      return 1;
    }
    std::string line;
    while (std::getline(std::cin, line)) server->handle_line(line);
    server->flush();
    obs::trace::Recorder::global().dump_now("exit");
    return 0;
  }

  net_opts.batch_limit = batch_limit;
  net_opts.engine = opts;
  std::unique_ptr<net::Server> server;
  try {
    server = std::make_unique<net::Server>(pool.get(), net_opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rmt_serve: %s\n", e.what());
    return 1;
  }
  g_server = server.get();
  std::signal(SIGTERM, handle_drain_signal);
  std::signal(SIGINT, handle_drain_signal);
  std::signal(SIGPIPE, SIG_IGN);  // dead sockets surface as EPIPE on send

  // The harness contract: one parseable stderr line naming the bound port
  // (ephemeral when --port 0), flushed before the loop starts.
  std::fprintf(stderr, "rmt_serve: listening on 127.0.0.1:%u\n", unsigned(server->bound_port()));
  std::fflush(stderr);

  server->serve();
  obs::trace::Recorder::global().dump_now("exit");
  g_server = nullptr;
  return 0;
}

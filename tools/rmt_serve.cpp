// tools/rmt_serve — the stdio JSONL query server over svc::Engine.
//
// Reads rmt.request/1 lines from stdin, answers rmt.response/1 lines on
// stdout (see src/svc/wire.hpp for both schemas). Requests accumulate
// into a batch; a blank line, the batch limit, or EOF flushes the batch
// through the engine and emits the responses in input order. Deadlines
// (deadline_ms) count from the flush, i.e. from when the batch starts.
//
// Probe lines the engine never sees:
//   * malformed requests — answered immediately at flush time with an
//     "error" response echoing the id when one could be salvaged;
//   * {"schema":"rmt.request/1","id":"s","kind":"stats"} — flushes the
//     pending batch, then reports the engine and cache counters as the
//     result object ({"kind":"stats","engine":{...},"cache":{...}}).
//     This is how the e2e test asserts coalescing and caching over pure
//     stdio, no shared memory with the server;
//   * {"schema":"rmt.request/1","id":"t","kind":"trace"} — flushes, then
//     reports the flight recorder as the result object
//     ({"kind":"trace","header":{...},"spans":[...]}) where header and
//     every span are verbatim rmt.trace/1 objects — write them one per
//     line and the file validates as an rmt.trace/1 dump.
//
// Tracing (obs/trace.hpp) is always on in the server: every response
// carries its trace_id and the flight recorder retains the last spans.
//
//   rmt_serve [--jobs N] [--batch N] [--cache-mb N] [--seed N]
//             [--trace-out FILE]
//
//   --jobs N      worker threads (default: hardware concurrency; 0 = run
//                 requests sequentially on the reader thread)
//   --batch N     max requests per engine batch (default 64)
//   --cache-mb N  result cache budget in MiB (default 64)
//   --seed N      root seed for derived simulate seeds (default 4242)
//   --trace-out F dump the flight recorder to F (rmt.trace/1 JSONL) at
//                 EOF, on deadline_exceeded, and on crash (the crash
//                 handler is installed only with this flag)
//
// Exit code 0 on EOF, 1 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "svc/engine.hpp"
#include "svc/wire.hpp"

namespace {

using namespace rmt;

int usage() {
  std::fprintf(stderr,
               "usage: rmt_serve [--jobs N] [--batch N] [--cache-mb N] [--seed N]\n"
               "                 [--trace-out FILE]\n"
               "reads rmt.request/1 JSONL on stdin, writes rmt.response/1 on stdout;\n"
               "a blank line flushes the pending batch\n");
  return 1;
}

/// One stdin line awaiting its response: either an index into the pending
/// engine batch or an already-formatted response (parse errors, stats).
struct Slot {
  bool engine = false;
  std::size_t index = 0;      ///< engine slots: position in the batch
  std::string id;             ///< engine slots: echoed request id
  std::string preformatted;   ///< non-engine slots: the response line
};

class Server {
 public:
  Server(exec::ThreadPool* pool, svc::Engine::Options opts, std::size_t batch_limit)
      : engine_(pool, opts), batch_limit_(batch_limit) {}

  void handle_line(const std::string& line) {
    if (line.empty()) {
      flush();
      return;
    }
    const std::string probe = probe_kind(line);
    if (!probe.empty()) {
      flush();  // probes report the state *after* everything queued so far
      const std::string id = svc::wire::extract_id(line);
      std::printf("%s\n", (probe == "stats" ? stats_response(id) : trace_response(id)).c_str());
      std::fflush(stdout);
      return;
    }
    try {
      svc::wire::ParsedRequest parsed = svc::wire::parse_request(line);
      slots_.push_back(Slot{true, batch_.size(), parsed.id, ""});
      batch_.push_back(std::move(parsed.request));
    } catch (const std::exception& e) {
      slots_.push_back(
          Slot{false, 0, "", svc::wire::format_parse_error(svc::wire::extract_id(line), e.what())});
    }
    if (batch_.size() >= batch_limit_) flush();
  }

  void flush() {
    if (slots_.empty()) return;
    const std::vector<svc::Response> responses = engine_.run(batch_);
    for (const Slot& slot : slots_) {
      const std::string line = slot.engine
                                   ? svc::wire::format_response(slot.id, responses[slot.index])
                                   : slot.preformatted;
      std::printf("%s\n", line.c_str());
    }
    std::fflush(stdout);
    batch_.clear();
    slots_.clear();
  }

 private:
  /// "stats" / "trace" for a probe line, "" for everything else.
  static std::string probe_kind(const std::string& line) {
    try {
      const obs::json::Value doc = obs::json::Value::parse(line);
      if (!doc.is_object()) return "";
      const obs::json::Value* kind = doc.find("kind");
      if (!kind || kind->kind() != obs::json::Value::Kind::kString) return "";
      const std::string name = kind->as_string();
      return (name == "stats" || name == "trace") ? name : "";
    } catch (const std::invalid_argument&) {
      return "";
    }
  }

  std::string stats_response(const std::string& id) {
    const svc::Engine::Stats e = engine_.stats();
    const svc::ResultCache::Stats c = engine_.cache().stats();
    obs::json::Writer w;
    w.begin_object();
    w.field("schema", svc::wire::kResponseSchema);
    w.field("id", id);
    w.field("status", "ok");
    w.key("key").null();
    w.key("result").begin_object();
    w.field("kind", "stats");
    w.key("engine").begin_object();
    w.field("requests", e.requests);
    w.field("computed", e.computed);
    w.field("coalesced", e.coalesced);
    w.field("inflight_joins", e.inflight_joins);
    w.field("deadline_exceeded", e.deadline_exceeded);
    w.field("errors", e.errors);
    w.end_object();
    w.key("cache").begin_object();
    w.field("hits", c.hits);
    w.field("misses", c.misses);
    w.field("evictions", c.evictions);
    w.field("bytes", std::uint64_t(c.bytes));
    w.field("entries", std::uint64_t(c.entries));
    w.end_object();
    w.end_object();
    w.key("error").null();
    w.field("cached", false);
    w.field("coalesced", false);
    w.field("wall_us", 0.0);
    w.key("trace_id").null();
    w.end_object();
    return w.take();
  }

  std::string trace_response(const std::string& id) {
    const obs::trace::Recorder& rec = obs::trace::Recorder::global();
    // snapshot() first: it drains the per-thread buffers, so the header's
    // recorded count then agrees with the spans array.
    const std::vector<obs::trace::SpanRecord> spans = rec.snapshot();
    obs::json::Writer w;
    w.begin_object();
    w.field("schema", svc::wire::kResponseSchema);
    w.field("id", id);
    w.field("status", "ok");
    w.key("key").null();
    w.key("result").begin_object();
    w.field("kind", "trace");
    w.key("header").raw_value(obs::trace::header_json(rec.header()));
    w.key("spans").begin_array();
    for (const obs::trace::SpanRecord& s : spans) w.raw_value(obs::trace::span_json(s));
    w.end_array();
    w.end_object();
    w.key("error").null();
    w.field("cached", false);
    w.field("coalesced", false);
    w.field("wall_us", 0.0);
    w.key("trace_id").null();
    w.end_object();
    return w.take();
  }

  svc::Engine engine_;
  std::size_t batch_limit_;
  std::vector<svc::Request> batch_;
  std::vector<Slot> slots_;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t jobs = exec::ThreadPool::hardware_concurrency();
  std::size_t batch_limit = 64;
  std::size_t cache_mb = 64;
  std::uint64_t seed = 4242;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (i + 1 >= argc) return usage();
    const char* val = argv[++i];
    if (arg == "--jobs") jobs = std::strtoull(val, nullptr, 10);
    else if (arg == "--batch") batch_limit = std::strtoull(val, nullptr, 10);
    else if (arg == "--cache-mb") cache_mb = std::strtoull(val, nullptr, 10);
    else if (arg == "--seed") seed = std::strtoull(val, nullptr, 10);
    else if (arg == "--trace-out") trace_out = val;
    else return usage();
  }
  if (batch_limit == 0) batch_limit = 1;

  obs::trace::set_enabled(true);
  if (!trace_out.empty()) {
    obs::trace::Recorder::global().set_dump_path(trace_out);
    obs::trace::install_crash_handler();
  }

  std::unique_ptr<exec::ThreadPool> pool;
  if (jobs > 0) pool = std::make_unique<exec::ThreadPool>(jobs);

  svc::Engine::Options opts;
  opts.cache.max_bytes = cache_mb << 20;
  opts.root_seed = seed;
  Server server(pool.get(), opts, batch_limit);

  std::string line;
  while (std::getline(std::cin, line)) server.handle_line(line);
  server.flush();
  obs::trace::Recorder::global().dump_now("exit");
  return 0;
}

#!/usr/bin/env python3
"""Compare two rmt.trace/1 flight-recorder dumps phase by phase.

Both inputs are JSONL dumps as written by `--trace-out` (rmt_cli, rmt_serve,
the bench drivers) or the rmt_serve "trace" probe: one header line carrying
the run anchors (run_start_unix_ms, mono_anchor_ns), then one line per span.
Span timestamps are monotonic nanoseconds since the recorder's epoch, and
rmt.bench/1 artifacts from the same process carry the same two anchors in
their "run" object — so a BENCH_*.json and a trace dump (or two dumps from
different runs) can be placed on one wall-clock timeline: the report prints
each run's start time and the offset between them.

The comparison itself groups spans by name and diffs the per-name mean
durations:

  name          count          mean_us        total_us       ratio
  ------------  -------------  -------------  -------------  -----
  rmt_cut.find  3 -> 3         23.40 -> 22.1  70.2 -> 66.4   0.94

`ratio` is candidate mean over baseline mean. Names present in only one
dump are listed separately (informational — a new span site is not a
regression). With --budget R the tool becomes a gate: exit 1 if any name
present in both dumps with a baseline mean of at least --min-ns has
ratio > R. The --min-ns floor (default 1000 ns) keeps sub-microsecond
spans, whose means are dominated by clock granularity, out of the gate.

Usage:
  trace_compare.py BASELINE.jsonl CANDIDATE.jsonl [--budget R] [--min-ns N]
  trace_compare.py --self-test
"""

import argparse
import datetime
import json
import sys


def parse_trace(lines, where):
    """Split a dump into (header, spans). Raises ValueError on malformed
    input — this tool assumes dumps that check_bench_json.py accepts."""
    header = None
    spans = []
    for i, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as e:
            raise ValueError(f"{where}:{i}: not JSON: {e}") from None
        if not isinstance(doc, dict) or doc.get("schema") != "rmt.trace/1":
            raise ValueError(f"{where}:{i}: not an rmt.trace/1 line")
        if "span" not in doc:
            if header is not None:
                raise ValueError(f"{where}:{i}: duplicate header line")
            header = doc
        else:
            spans.append(doc)
    if header is None:
        raise ValueError(f"{where}: no rmt.trace/1 header line")
    return header, spans


def aggregate(spans):
    """Per-name {count, total_ns} over span durations."""
    stats = {}
    for s in spans:
        name = s.get("name", "")
        dur = int(s.get("end_ns", 0)) - int(s.get("start_ns", 0))
        entry = stats.setdefault(name, {"count": 0, "total_ns": 0})
        entry["count"] += 1
        entry["total_ns"] += max(dur, 0)
    return stats


def compare(base, cand):
    """Rows for names in both dumps (sorted by baseline total, descending),
    plus the names unique to each side."""
    rows = []
    for name in sorted(base.keys() & cand.keys(),
                       key=lambda n: -base[n]["total_ns"]):
        b, c = base[name], cand[name]
        b_mean = b["total_ns"] / b["count"]
        c_mean = c["total_ns"] / c["count"]
        rows.append({
            "name": name,
            "base_count": b["count"], "cand_count": c["count"],
            "base_mean_ns": b_mean, "cand_mean_ns": c_mean,
            "base_total_ns": b["total_ns"], "cand_total_ns": c["total_ns"],
            "ratio": c_mean / b_mean if b_mean > 0 else None,
        })
    only_base = sorted(base.keys() - cand.keys())
    only_cand = sorted(cand.keys() - base.keys())
    return rows, only_base, only_cand


def over_budget(rows, budget, min_ns):
    """The rows the --budget gate rejects."""
    return [r for r in rows
            if r["base_mean_ns"] >= min_ns
            and r["ratio"] is not None and r["ratio"] > budget]


def start_text(header):
    ms = header.get("run_start_unix_ms", 0)
    t = datetime.datetime.fromtimestamp(ms / 1000.0, tz=datetime.timezone.utc)
    return t.strftime("%Y-%m-%dT%H:%M:%S.") + f"{ms % 1000:03d}Z"


def print_report(base_header, cand_header, rows, only_base, only_cand, out):
    delta_ms = (cand_header.get("run_start_unix_ms", 0)
                - base_header.get("run_start_unix_ms", 0))
    print(f"baseline run started  {start_text(base_header)}", file=out)
    print(f"candidate run started {start_text(cand_header)} "
          f"({delta_ms / 1000.0:+.3f}s)", file=out)
    print(file=out)
    widths = [max([len("name")] + [len(r["name"]) for r in rows]), 14, 20, 5]
    header = ["name".ljust(widths[0]), "count".ljust(widths[1]),
              "mean_us".ljust(widths[2]), "ratio"]
    print("  ".join(header), file=out)
    print("  ".join("-" * w for w in widths), file=out)
    for r in rows:
        count = f"{r['base_count']} -> {r['cand_count']}"
        mean = f"{r['base_mean_ns'] / 1e3:.2f} -> {r['cand_mean_ns'] / 1e3:.2f}"
        ratio = "n/a" if r["ratio"] is None else f"{r['ratio']:.2f}"
        print(f"{r['name'].ljust(widths[0])}  {count.ljust(widths[1])}  "
              f"{mean.ljust(widths[2])}  {ratio}", file=out)
    for label, names in (("baseline", only_base), ("candidate", only_cand)):
        if names:
            print(f"only in {label}: {', '.join(names)}", file=out)


def run_compare(base_lines, cand_lines, base_where, cand_where,
                budget, min_ns, out):
    """The whole tool minus I/O; returns the process exit code."""
    base_header, base_spans = parse_trace(base_lines, base_where)
    cand_header, cand_spans = parse_trace(cand_lines, cand_where)
    rows, only_base, only_cand = compare(aggregate(base_spans),
                                         aggregate(cand_spans))
    print_report(base_header, cand_header, rows, only_base, only_cand, out)
    if budget is None:
        return 0
    bad = over_budget(rows, budget, min_ns)
    if bad:
        for r in bad:
            print(f"BUDGET EXCEEDED: {r['name']} ratio {r['ratio']:.2f} "
                  f"> {budget:.2f} "
                  f"({r['base_mean_ns'] / 1e3:.2f}us -> "
                  f"{r['cand_mean_ns'] / 1e3:.2f}us)", file=out)
        return 1
    gated = [r for r in rows
             if r["base_mean_ns"] >= min_ns and r["ratio"] is not None]
    if gated:
        worst = max(gated, key=lambda r: r["ratio"])
        print(f"budget {budget:.2f}x: OK (worst ratio {worst['ratio']:.2f} "
              f"on {worst['name']})", file=out)
    else:
        print(f"budget {budget:.2f}x: OK (no shared span name reaches the "
              f"{min_ns}ns floor)", file=out)
    return 0


# ---------------------------------------------------------------------------
# Self-test
# ---------------------------------------------------------------------------

def _dump(start_ms, spans):
    """A synthetic rmt.trace/1 dump; spans = [(name, start_ns, end_ns)]."""
    lines = [json.dumps({"schema": "rmt.trace/1", "run_start_unix_ms": start_ms,
                         "mono_anchor_ns": 7, "capacity": 4096,
                         "recorded": len(spans), "dropped": 0})]
    for i, (name, start_ns, end_ns) in enumerate(spans):
        lines.append(json.dumps({
            "schema": "rmt.trace/1", "trace": f"{1:016x}",
            "span": f"{i + 2:016x}", "parent": None, "name": name,
            "kind": "span", "join": None,
            "start_ns": start_ns, "end_ns": end_ns, "attrs": ""}))
    return lines


def self_test():
    import io

    checks = failures = 0

    def check(ok, label):
        nonlocal checks, failures
        checks += 1
        if not ok:
            failures += 1
            print(f"SELF-TEST FAIL: {label}", file=sys.stderr)

    base = _dump(1000, [("rmt_cut.find", 0, 10000), ("rmt_cut.find", 0, 20000),
                        ("svc.request", 0, 50000), ("tiny", 0, 100)])
    same = _dump(4200, [("rmt_cut.find", 0, 15000), ("svc.request", 0, 50000),
                        ("tiny", 0, 90), ("exec.task", 0, 7000)])
    slow = _dump(9000, [("rmt_cut.find", 0, 90000), ("svc.request", 0, 50000),
                        ("tiny", 0, 900)])

    # Identical means -> every ratio 1.0, budget passes.
    code = run_compare(base, base, "a", "b", 1.5, 1000, io.StringIO())
    check(code == 0, "identical dumps pass the budget")

    # Equal means despite different counts (15000 vs mean 15000) -> pass;
    # exec.task exists only in the candidate and must not trip the gate.
    out = io.StringIO()
    code = run_compare(base, same, "a", "b", 1.5, 1000, out)
    check(code == 0, "new span name does not trip the budget")
    check("only in candidate: exec.task" in out.getvalue(),
          "one-sided names are reported")
    check("+3.200s" in out.getvalue(), "run-start offset is reported")

    # rmt_cut.find regresses 6x -> gate fires; `tiny` regresses 9x but sits
    # under the --min-ns floor and must not be the reason.
    out = io.StringIO()
    code = run_compare(base, slow, "a", "b", 1.5, 1000, out)
    check(code == 1, "6x regression trips the budget")
    check("BUDGET EXCEEDED: rmt_cut.find" in out.getvalue(),
          "the regressed name is reported")
    check("tiny" not in [l.split()[2] if l.startswith("BUDGET") else ""
                         for l in out.getvalue().splitlines()],
          "sub-floor spans stay out of the gate")

    # No budget -> report only, exit 0 even on regression.
    code = run_compare(base, slow, "a", "b", None, 1000, io.StringIO())
    check(code == 0, "no --budget means report-only")

    # Malformed inputs fail loudly.
    for label, lines in (("missing header", base[1:]),
                         ("duplicate header", [base[0]] + base),
                         ("not JSON", ["{nope"]),
                         ("wrong schema", ['{"schema":"rmt.bench/1"}'])):
        try:
            run_compare(lines, base, "a", "b", None, 1000, io.StringIO())
            check(False, f"{label} raises")
        except ValueError:
            check(True, f"{label} raises")

    print(f"self-test: {checks} checks, {failures} failures")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--budget", type=float, default=None, metavar="R",
                        help="fail if any shared span name's mean-duration "
                             "ratio (candidate/baseline) exceeds R")
    parser.add_argument("--min-ns", type=int, default=1000, metavar="N",
                        help="ignore names whose baseline mean is under N ns "
                             "when gating (default: 1000)")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the comparator against embedded dumps")
    parser.add_argument("files", nargs="*", metavar="FILE",
                        help="BASELINE.jsonl CANDIDATE.jsonl")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if len(args.files) != 2:
        parser.error("exactly two FILEs are required (or use --self-test)")

    try:
        with open(args.files[0], encoding="utf-8") as f:
            base_lines = f.readlines()
        with open(args.files[1], encoding="utf-8") as f:
            cand_lines = f.readlines()
        return run_compare(base_lines, cand_lines, args.files[0],
                           args.files[1], args.budget, args.min_ns, sys.stdout)
    except (OSError, ValueError) as e:
        print(f"fatal: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

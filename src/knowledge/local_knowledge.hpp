// knowledge/local_knowledge.hpp — a player's initial information.
//
// In the partial knowledge model a player v starts with exactly two pieces
// of data (§1.3): its topology view γ(v) and its local adversary structure
// Z_v = Z^{V(γ(v))} = { A ∩ V(γ(v)) : A ∈ Z }. This header bundles them and
// provides the derivation from a global instance — the *only* place the
// global Z touches per-player state, which keeps the "players don't know
// Z" discipline honest throughout the protocol code.
#pragma once

#include "adversary/structure.hpp"
#include "knowledge/view.hpp"

namespace rmt {

/// What one player knows at round 0.
struct LocalKnowledge {
  NodeId self = 0;
  Graph view;                 ///< γ(self)
  AdversaryStructure local_z; ///< Z_self = Z^{V(γ(self))}
};

/// Derive v's initial knowledge from the global data.
LocalKnowledge derive_local_knowledge(const Graph& g, const AdversaryStructure& z,
                                      const ViewFunction& gamma, NodeId v);

/// Derive everyone's initial knowledge (indexed by node id; absent nodes
/// hold default entries).
std::vector<LocalKnowledge> derive_all_local_knowledge(const Graph& g,
                                                       const AdversaryStructure& z,
                                                       const ViewFunction& gamma);

/// Deep invariant check (rmt::audit): lk really is the restriction of the
/// global data — lk.view == γ(lk.self) and lk.local_z == Z^{V(γ(lk.self))},
/// both recomputed from scratch. Throws audit::AuditError.
void debug_validate(const LocalKnowledge& lk, const AdversaryStructure& z,
                    const ViewFunction& gamma);

}  // namespace rmt

#include "knowledge/local_knowledge.hpp"

#include "util/audit.hpp"
#include "util/check.hpp"

namespace rmt {

LocalKnowledge derive_local_knowledge(const Graph& g, const AdversaryStructure& z,
                                      const ViewFunction& gamma, NodeId v) {
  RMT_REQUIRE(g.has_node(v), "derive_local_knowledge: absent node");
  LocalKnowledge lk;
  lk.self = v;
  lk.view = gamma.view(v);
  lk.local_z = z.restricted_to(gamma.view_nodes(v));
  RMT_AUDIT_VALIDATE(lk, z, gamma);
  return lk;
}

std::vector<LocalKnowledge> derive_all_local_knowledge(const Graph& g,
                                                       const AdversaryStructure& z,
                                                       const ViewFunction& gamma) {
  std::vector<LocalKnowledge> out(g.capacity());
  g.nodes().for_each(
      [&](NodeId v) { out[v] = derive_local_knowledge(g, z, gamma, v); });
  return out;
}

void debug_validate(const LocalKnowledge& lk, const AdversaryStructure& z,
                    const ViewFunction& gamma) {
  if (!gamma.ground().has_node(lk.self))
    audit::detail::fail("knowledge", "player " + std::to_string(lk.self) +
                                         " is not a node of the ground graph");
  if (!(lk.view == gamma.view(lk.self)))
    audit::detail::fail("knowledge", "view of player " + std::to_string(lk.self) +
                                         " is not γ(v): " + lk.view.to_string());
  // Z_v = Z^{V(γ(v))} (§1.3) — recompute the restriction and compare
  // antichains exactly.
  const AdversaryStructure expected = z.restricted_to(gamma.view_nodes(lk.self));
  if (!(lk.local_z == expected))
    audit::detail::fail("knowledge", "local structure of player " + std::to_string(lk.self) +
                                         " is not Z^{V(γ(v))}: have " + lk.local_z.to_string() +
                                         ", expected " + expected.to_string());
}

}  // namespace rmt

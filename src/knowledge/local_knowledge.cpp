#include "knowledge/local_knowledge.hpp"

#include "util/check.hpp"

namespace rmt {

LocalKnowledge derive_local_knowledge(const Graph& g, const AdversaryStructure& z,
                                      const ViewFunction& gamma, NodeId v) {
  RMT_REQUIRE(g.has_node(v), "derive_local_knowledge: absent node");
  LocalKnowledge lk;
  lk.self = v;
  lk.view = gamma.view(v);
  lk.local_z = z.restricted_to(gamma.view_nodes(v));
  return lk;
}

std::vector<LocalKnowledge> derive_all_local_knowledge(const Graph& g,
                                                       const AdversaryStructure& z,
                                                       const ViewFunction& gamma) {
  std::vector<LocalKnowledge> out(g.capacity());
  g.nodes().for_each(
      [&](NodeId v) { out[v] = derive_local_knowledge(g, z, gamma, v); });
  return out;
}

}  // namespace rmt

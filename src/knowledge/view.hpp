// knowledge/view.hpp — the Partial Knowledge Model's view function γ (§1.3).
//
// γ maps each player v to the subgraph γ(v) of G it knows, with v ∈ γ(v).
// The joint view of a set S is the graph union γ(S) = (∪ V_v, ∪ E_v).
// The model subsumes:
//   * full knowledge:  γ(v) = G for every v;
//   * ad hoc:          γ(v) = the star of v's incident channels
//                      ("knowledge limited to its own neighborhood");
//   * k-hop:           γ(v) = induced subgraph on the radius-k ball —
//                      the natural interpolation used by the experiments
//                      (k_hop(1) already exceeds ad hoc: it also contains
//                      edges *among* neighbors).
//
// Views are ordered pointwise by the subgraph relation (§3.1 "minimal
// knowledge"): γ' ≤ γ iff γ'(v) ⊆ γ(v) for all v.
//
// Model floor: every view must contain its owner's incident star —
// γ(v) ⊇ ({v} ∪ N(v), {{v,u} : u ∈ N(v)}). A player physically knows its
// own authenticated channels (it must, to communicate at all), and the
// paper's partial knowledge model "encompasses the ad hoc model" as its
// minimum. The floor is also load-bearing for Theorem 5's tightness: the
// sufficiency proof identifies the receiver-side component of a cover in
// the reconstructed graph G_M with the component in the real G, which
// holds exactly because honest members of V_M contribute at least their
// stars to G_M. set_view enforces the floor.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace rmt {

class ViewFunction {
 public:
  ViewFunction() = default;

  /// Full-knowledge model over g.
  static ViewFunction full(const Graph& g);

  /// Ad hoc model: each node sees exactly its incident edges.
  static ViewFunction ad_hoc(const Graph& g);

  /// Induced subgraph on the k-ball around each node, floored with the
  /// owner's star. k = 0 coincides with ad hoc; large k converges to full
  /// knowledge.
  static ViewFunction k_hop(const Graph& g, std::size_t k);

  /// Minimal legal view function (γ = ad hoc stars), to be enriched with
  /// set_view for hand-built partial-knowledge scenarios.
  static ViewFunction custom(const Graph& g);

  /// "Social proximity" model, after the paper's motivation (§1: proximity
  /// correlates with available information): each node knows its k-hop
  /// ball, plus — independently with probability p per edge — random
  /// further edges of G (whose endpoints it then also knows). Deterministic
  /// in the seed.
  static ViewFunction social(const Graph& g, std::size_t base_k, double extra_edge_p,
                             Rng& rng);

  /// Replace v's view. Requires: the view is a subgraph of the ground
  /// graph containing v's full incident star (the model floor above).
  void set_view(NodeId v, Graph view);

  /// γ(v). Requires the node to exist in the ground graph.
  const Graph& view(NodeId v) const;

  /// V(γ(v)) — the node set of v's view (used pervasively: Z_v lives on it).
  const NodeSet& view_nodes(NodeId v) const;

  /// Joint view γ(S): union of the members' views.
  Graph joint_view(const NodeSet& s) const;

  /// Node set of the joint view, V(γ(S)), computed without building the
  /// union graph.
  NodeSet joint_view_nodes(const NodeSet& s) const;

  /// Pointwise subgraph order: true iff γ(v) ⊆ o.γ(v) for all v (i.e.
  /// *this carries at most the knowledge of o*).
  bool refined_by(const ViewFunction& o) const;

  const Graph& ground() const { return ground_; }

  /// Deep invariant check (rmt::audit): every view is a subgraph of the
  /// ground graph containing its owner's star, and the cached view-node
  /// sets match the views they cache. Throws audit::AuditError.
  void debug_validate() const;

 private:
  friend struct AuditTestAccess;  // tests corrupt internals to prove detection

  explicit ViewFunction(const Graph& g) : ground_(g), views_(g.capacity()) {}

  Graph ground_;
  std::vector<Graph> views_;           // indexed by node id
  std::vector<NodeSet> view_nodes_;    // cached V(γ(v))
};

}  // namespace rmt

#include "knowledge/view.hpp"

#include "graph/connectivity.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace rmt {

ViewFunction ViewFunction::full(const Graph& g) {
  ViewFunction f(g);
  g.nodes().for_each([&](NodeId v) { f.set_view(v, g); });
  return f;
}

ViewFunction ViewFunction::ad_hoc(const Graph& g) {
  ViewFunction f(g);
  g.nodes().for_each([&](NodeId v) {
    Graph star;
    star.add_node(v);
    g.neighbors(v).for_each([&](NodeId u) { star.add_edge(v, u); });
    f.set_view(v, std::move(star));
  });
  return f;
}

ViewFunction ViewFunction::k_hop(const Graph& g, std::size_t k) {
  ViewFunction f(g);
  g.nodes().for_each([&](NodeId v) {
    // Induced ball, floored with the owner's star (the k = 0 ball is just
    // {v}; a view below the incident star is outside the model).
    Graph view = g.induced(ball(g, v, k));
    g.neighbors(v).for_each([&](NodeId u) { view.add_edge(v, u); });
    f.set_view(v, std::move(view));
  });
  return f;
}

ViewFunction ViewFunction::custom(const Graph& g) { return ad_hoc(g); }

ViewFunction ViewFunction::social(const Graph& g, std::size_t base_k, double extra_edge_p,
                                  Rng& rng) {
  ViewFunction base = k_hop(g, base_k);
  const std::vector<Edge> edges = g.edges();
  g.nodes().for_each([&](NodeId v) {
    Graph view = base.view(v);
    for (const Edge& e : edges)
      if (!view.has_edge(e.a, e.b) && rng.chance(extra_edge_p)) view.add_edge(e.a, e.b);
    base.set_view(v, std::move(view));
  });
  return base;
}

void ViewFunction::set_view(NodeId v, Graph view) {
  RMT_REQUIRE(ground_.has_node(v), "set_view: node absent from ground graph");
  RMT_REQUIRE(view.has_node(v), "set_view: a view must include its owner");
  RMT_REQUIRE(ground_.contains_subgraph(view), "set_view: view is not a subgraph of G");
  bool has_star = true;
  ground_.neighbors(v).for_each([&](NodeId u) {
    if (!view.has_edge(v, u)) has_star = false;
  });
  RMT_REQUIRE(has_star, "set_view: a view must contain its owner's incident star");
  if (view_nodes_.size() < views_.size()) view_nodes_.resize(views_.size());
  view_nodes_[v] = view.nodes();
  views_[v] = std::move(view);
}

const Graph& ViewFunction::view(NodeId v) const {
  RMT_REQUIRE(v < views_.size() && ground_.has_node(v), "view: absent node");
  return views_[v];
}

const NodeSet& ViewFunction::view_nodes(NodeId v) const {
  RMT_REQUIRE(v < view_nodes_.size() && ground_.has_node(v), "view_nodes: absent node");
  return view_nodes_[v];
}

Graph ViewFunction::joint_view(const NodeSet& s) const {
  Graph out;
  (s & ground_.nodes()).for_each([&](NodeId v) { out = out.united(view(v)); });
  return out;
}

NodeSet ViewFunction::joint_view_nodes(const NodeSet& s) const {
  NodeSet out;
  (s & ground_.nodes()).for_each([&](NodeId v) { out |= view_nodes(v); });
  return out;
}

void ViewFunction::debug_validate() const {
  ground_.debug_validate();
  if (views_.size() < ground_.capacity())
    audit::detail::fail("view", "view table smaller than the ground graph's id space");
  ground_.nodes().for_each([&](NodeId v) {
    const Graph& view = views_[v];
    view.debug_validate();
    if (!view.has_node(v))
      audit::detail::fail("view", "γ(" + std::to_string(v) + ") does not contain its owner");
    if (!ground_.contains_subgraph(view))
      audit::detail::fail("view", "γ(" + std::to_string(v) + ") is not a subgraph of G");
    ground_.neighbors(v).for_each([&](NodeId u) {
      if (!view.has_edge(v, u))
        audit::detail::fail("view", "γ(" + std::to_string(v) +
                                        ") is missing incident-star edge {" +
                                        std::to_string(v) + "," + std::to_string(u) + "}");
    });
    if (v >= view_nodes_.size() || view_nodes_[v] != view.nodes())
      audit::detail::fail("view", "cached V(γ(" + std::to_string(v) +
                                      ")) does not match the view's node set");
  });
}

bool ViewFunction::refined_by(const ViewFunction& o) const {
  bool ok = true;
  ground_.nodes().for_each([&](NodeId v) {
    if (ok && !(o.ground().has_node(v) && o.view(v).contains_subgraph(view(v)))) ok = false;
  });
  return ok;
}

}  // namespace rmt

// net/framing.hpp — incremental JSONL line framing for untrusted sockets.
//
// A TCP connection delivers the rmt.request/1 stream as arbitrary byte
// chunks: lines split mid-byte, dribbled one byte per segment, several
// lines per read, a '\n' that never comes. LineFramer reassembles frames
// out of that stream with two hard properties the server relies on:
//
//  * bounded memory — a line is buffered up to `max_line_bytes`; one byte
//    past the cap flips the framer into O(1) discard mode until the next
//    '\n'. A hostile client sending an endless line costs a fixed-size
//    buffer, never an allocation proportional to what it sent;
//  * reject, don't consume — an oversized or NUL-embedded line surfaces
//    as a typed Frame (kOversized / kEmbeddedNul) and the connection
//    keeps going: the next '\n' re-arms normal framing and the following
//    line parses as if nothing happened. Dropping the connection (or
//    worse, wedging it) on one bad line would let one fault corrupt a
//    pipelined client's whole stream.
//
// NUL bytes are rejected at the framing layer rather than left for the
// JSON parser because the wire protocol stores lines in std::string on
// the way to svc::wire::parse_request — an embedded NUL would silently
// truncate error messages built from C strings and confuse best-effort id
// extraction. A frame either is a complete NUL-free line under the cap,
// or it is a typed rejection.
//
// Single-threaded by design: each connection owns one framer, fed and
// drained only from the event-loop thread (tests/test_net_framing.cpp
// sweeps split points; serve_e2e.py drives it over real sockets).
#pragma once

#include <cstddef>
#include <deque>
#include <string>

namespace rmt::net {

class LineFramer {
 public:
  enum class Kind {
    kLine,         ///< a complete line under the cap (terminator stripped)
    kOversized,    ///< the line exceeded max_line_bytes; payload dropped
    kEmbeddedNul,  ///< the line contained a NUL byte; payload dropped
  };

  struct Frame {
    Kind kind = Kind::kLine;
    std::string line;          ///< kLine only; "" for rejections
    std::size_t line_bytes = 0;  ///< original line length incl. dropped bytes
  };

  /// `max_line_bytes` caps one line's length excluding the terminator.
  explicit LineFramer(std::size_t max_line_bytes);

  /// Append a chunk of raw stream bytes. Never throws past allocation;
  /// buffered state stays <= max_line_bytes + O(1) regardless of input.
  void feed(const char* data, std::size_t n);

  /// Pop the next complete frame; false when the stream has no complete
  /// line yet (a partial line may still be buffered — see mid_line()).
  bool next(Frame& out);

  /// True when bytes of an unterminated line are pending — a half-open
  /// disconnect mid-line leaves this set, and the server logs the drop.
  bool mid_line() const { return !buf_.empty() || discarding_; }

  std::size_t buffered_bytes() const { return buf_.size(); }
  std::size_t max_line_bytes() const { return max_line_bytes_; }

 private:
  void complete_line();

  std::size_t max_line_bytes_;
  std::string buf_;            ///< the current partial line (<= cap + 1)
  bool discarding_ = false;    ///< past the cap: count, don't store
  bool saw_nul_ = false;
  std::size_t dropped_ = 0;    ///< bytes discarded from the current line
  std::deque<Frame> ready_;
};

}  // namespace rmt::net

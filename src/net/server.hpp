// net/server.hpp — the multi-client TCP front end over svc::Engine.
//
// One poll(2)-based, non-blocking event loop accepts many concurrent
// clients speaking the rmt.request/1 JSONL protocol (src/svc/wire.hpp)
// and multiplexes them onto ONE shared engine, so duplicate keys coalesce
// *across* sockets exactly as they do within a stdio batch. The design
// splits the work across two threads with a single handoff point:
//
//  * the event-loop thread (the caller of serve()) owns every socket: it
//    accepts, reads through per-connection LineFramers, parses requests
//    into a shared pending batch, formats and writes responses, and
//    enforces admission + backpressure. It never computes and never
//    blocks on a socket;
//  * a dedicated one-thread runner pool executes engine batches in
//    submission order (Engine::run may block on cross-batch inflight
//    joins and must not run on the engine's own compute pool — see
//    svc/engine.hpp). Completions come back through a mutex-guarded
//    queue plus a self-pipe wake-up.
//
// Batching: requests from all connections accumulate into one pending
// batch; a blank line from ANY connection flushes it (stdio parity —
// that is also what makes cross-socket in-batch coalescing determinis-
// tic for tests), as does reaching batch_limit or the batch_wait_ms age
// bound. Responses are slotted per connection in request order even when
// a connection's requests span multiple batches.
//
// Backpressure state machine, per connection:
//
//   READING --(write queue > write_budget_bytes)--> PAUSED (POLLIN off)
//   PAUSED  --(queue drains below budget/2)-------> READING
//   any     --(queue > write_hard_cap_bytes)------> DROPPED (slow client)
//   any     --(admission budget exceeded)---------> request SHED with an
//                                                   "overloaded:" error
//
// Admission sheds (per-conn/global inflight request counts, or a write
// queue already past budget) answer immediately instead of queueing work
// for a client that is not draining — the connection itself stays up.
// Graceful drain (stop(), async-signal-safe; rmt_serve wires SIGTERM to
// it): stop accepting and reading, finish every in-flight batch, flush
// every write queue, then serve() returns.
//
// Observability: net.* counters (src/net/metric_names.hpp) mirror the
// "net" section of the TCP "stats" probe; "net.conn" / "net.read" /
// "net.write" spans land in the flight recorder when tracing is on, with
// each engine-backed net.write span *joined* to its response's
// svc.request root span. DESIGN §15 documents the whole layer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "svc/engine.hpp"
#include "svc/wire.hpp"

namespace rmt::exec {
class ThreadPool;
}

namespace rmt::net {

/// Transport counters, as reported by stats() and the "stats" probe's
/// `net` section. Monotonic except `active` (a level).
struct NetStats {
  std::uint64_t accepts = 0;        ///< connections accepted
  std::uint64_t active = 0;         ///< currently open connections
  std::uint64_t disconnects = 0;    ///< connections closed (any reason)
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t lines_in = 0;       ///< complete frames (incl. rejected)
  std::uint64_t responses_out = 0;  ///< response lines queued for write
  std::uint64_t shed = 0;           ///< requests answered "overloaded:"
  std::uint64_t slow_client_disconnects = 0;
  std::uint64_t frame_rejects = 0;  ///< oversized / NUL-embedded lines
};

class Server {
 public:
  struct Options {
    /// TCP port on 127.0.0.1; 0 = ephemeral (read back via bound_port()).
    std::uint16_t port = 0;
    std::size_t max_conns = 1024;       ///< accept stalls above this
    std::size_t batch_limit = 64;       ///< max requests per engine batch
    /// Max age of a non-empty pending batch before it is submitted even
    /// without a blank-line flush. Large values make batching fully
    /// explicit (blank lines / batch_limit only) — the e2e coalescing
    /// scenario uses that for determinism.
    std::uint64_t batch_wait_ms = 5;
    /// Per-line size cap, enforced by the framing layer in O(1) memory.
    std::size_t max_line_bytes = svc::wire::kMaxRequestBytes;
    std::size_t max_inflight_per_conn = 256;  ///< admission: requests/conn
    std::size_t max_inflight_total = 4096;    ///< admission: requests total
    /// Soft per-connection write-queue bound: reading pauses above it and
    /// new requests are shed, resuming below half of it.
    std::size_t write_budget_bytes = 4u << 20;
    /// Hard bound: a connection whose unflushable queued bytes exceed it
    /// is dropped as a slow client. 0 = 4 * write_budget_bytes.
    std::size_t write_hard_cap_bytes = 0;
    /// SO_SNDBUF for accepted sockets; 0 = kernel default. Small values
    /// make write backpressure testable without megabytes of traffic.
    int so_sndbuf = 0;
    svc::Engine::Options engine;
  };

  /// Binds and listens immediately; throws std::runtime_error when the
  /// socket cannot be set up. `pool` is borrowed by the engine for the
  /// decider computations (null = compute sequentially on the runner).
  Server(exec::ThreadPool* pool, Options opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The port the listener actually bound (== opts.port unless it was 0).
  std::uint16_t bound_port() const;

  svc::Engine& engine();

  /// Run the event loop on the calling thread until stop(). Connections
  /// still open when the drain completes are closed.
  void serve();

  /// Request a graceful drain: async-signal-safe (one atomic store and a
  /// pipe write), callable from any thread or a signal handler.
  void stop();

  NetStats stats() const;

  /// Push net.* counter deltas into the global obs registry and forward
  /// to engine().publish_stats(). No-op while observability is disabled.
  void publish_stats();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rmt::net

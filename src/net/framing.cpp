#include "net/framing.hpp"

#include "util/check.hpp"

namespace rmt::net {

LineFramer::LineFramer(std::size_t max_line_bytes) : max_line_bytes_(max_line_bytes) {
  RMT_REQUIRE(max_line_bytes > 0, "LineFramer: max_line_bytes must be positive");
}

void LineFramer::complete_line() {
  Frame f;
  if (discarding_) {
    f.kind = Kind::kOversized;
    f.line_bytes = buf_.size() + dropped_;
  } else if (saw_nul_) {
    f.kind = Kind::kEmbeddedNul;
    f.line_bytes = buf_.size();
  } else {
    // Tolerate CRLF clients: one trailing '\r' belongs to the terminator,
    // not the payload (a bare '\r' anywhere else is payload and will fail
    // JSON parsing on its own merits).
    if (!buf_.empty() && buf_.back() == '\r') buf_.pop_back();
    f.kind = Kind::kLine;
    f.line_bytes = buf_.size();
    f.line = std::move(buf_);
  }
  ready_.push_back(std::move(f));
  buf_.clear();
  discarding_ = false;
  saw_nul_ = false;
  dropped_ = 0;
}

void LineFramer::feed(const char* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const char c = data[i];
    if (c == '\n') {
      complete_line();
      continue;
    }
    if (discarding_) {
      ++dropped_;
      continue;
    }
    if (c == '\0') saw_nul_ = true;
    buf_.push_back(c);
    if (buf_.size() > max_line_bytes_) {
      // Past the cap: remember how much we had, then stop storing. The
      // buffered prefix is dropped too — an oversized line is rejected
      // whole, never half-parsed.
      dropped_ = buf_.size();
      buf_.clear();
      buf_.shrink_to_fit();
      discarding_ = true;
    }
  }
}

bool LineFramer::next(Frame& out) {
  if (ready_.empty()) return false;
  out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

}  // namespace rmt::net

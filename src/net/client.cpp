#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace rmt::net {

namespace {

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string("net::Client: ") + what + ": " +
                           std::strerror(errno));
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      recv_buffer_(other.recv_buffer_),
      rbuf_(std::move(other.rbuf_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    recv_buffer_ = other.recv_buffer_;
    rbuf_ = std::move(other.rbuf_);
  }
  return *this;
}

void Client::connect(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) fail("socket");
  if (recv_buffer_ > 0)
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &recv_buffer_, sizeof recv_buffer_);
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1) fail("inet_pton");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail("connect");
  }
}

void Client::send_line(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  send_raw(framed.data(), framed.size());
}

void Client::send_raw(const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd_, p + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += std::size_t(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    fail("send");
  }
}

bool Client::recv_line(std::string& line) {
  for (;;) {
    const std::size_t nl = rbuf_.find('\n');
    if (nl != std::string::npos) {
      line.assign(rbuf_, 0, nl);
      rbuf_.erase(0, nl + 1);
      return true;
    }
    char buf[16 << 10];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      rbuf_.append(buf, std::size_t(n));
      continue;
    }
    if (n == 0) return false;  // EOF; a partial trailing line is dropped
    if (errno == EINTR) continue;
    fail("recv");
  }
}

void Client::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

}  // namespace rmt::net

#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"
#include "net/framing.hpp"
#include "net/metric_names.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "svc/wire.hpp"
#include "util/check.hpp"

namespace rmt::net {

namespace {

using clock_t_ = std::chrono::steady_clock;

void set_nonblocking_pipe(int fds[2]) {
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0)
    throw std::runtime_error("net::Server: pipe2 failed");
}

}  // namespace

struct Server::Impl {
  // -- one response-in-waiting on a connection ------------------------------
  //
  // Connections answer strictly in request order even when their requests
  // span several engine batches: slots form a FIFO, and the drain below
  // stops at the first slot whose result is not available yet.
  struct Slot {
    enum class Kind {
      kEngine,  ///< waits for batch `seq`, response at `index`
      kReady,   ///< preformatted (parse error, shed) — always writable
      kStats,   ///< stats probe: waits until `seq` batches completed
      kTrace,   ///< trace probe: ditto
    };
    Kind kind = Kind::kReady;
    std::uint64_t seq = 0;
    std::size_t index = 0;
    std::string id;
    std::string preformatted;
  };

  struct Conn {
    int fd = -1;
    LineFramer framer;
    std::deque<Slot> slots;
    std::string wbuf;
    std::size_t woff = 0;      ///< prefix of wbuf already written
    std::size_t inflight = 0;  ///< engine slots not yet answered
    bool paused = false;       ///< backpressure: POLLIN off
    bool eof = false;          ///< client half-closed; answer, then close
    bool dead = false;         ///< error / slow client; close at the sweep
    // trace + per-connection accounting (net.conn span attributes)
    std::uint64_t trace_id = 0;
    std::uint64_t open_ns = 0;
    std::uint64_t bytes_in = 0, bytes_out = 0, requests = 0, shed = 0;

    explicit Conn(std::size_t max_line) : framer(max_line) {}
    std::size_t queued() const { return wbuf.size() - woff; }
  };

  Options opts;
  svc::Engine engine;
  exec::ThreadPool runner{1};  ///< executes engine batches in order

  int listen_fd = -1;
  std::uint16_t port = 0;
  int wake_r = -1, wake_w = -1;
  std::atomic<bool> stop_requested{false};
  bool stopping = false;

  std::unordered_map<int, Conn> conns;
  std::vector<svc::Request> pending;
  clock_t_::time_point pending_since{};
  std::uint64_t submitted = 0;  ///< batches handed to the runner
  std::uint64_t completed = 0;  ///< batches whose responses arrived
  std::size_t inflight_total = 0;

  std::mutex completions_m;
  std::vector<std::pair<std::uint64_t, std::vector<svc::Response>>> completions;
  std::unordered_map<std::uint64_t, std::vector<svc::Response>> results;
  std::unordered_map<std::uint64_t, std::size_t> refs;  ///< unconsumed slots

  // net.* counters (single writer: the event-loop thread; atomics so
  // stats() is safely readable from tests and signal-adjacent contexts).
  std::atomic<std::uint64_t> accepts{0}, active{0}, disconnects{0};
  std::atomic<std::uint64_t> bytes_in{0}, bytes_out{0}, lines_in{0};
  std::atomic<std::uint64_t> responses_out{0}, shed{0};
  std::atomic<std::uint64_t> slow_client_disconnects{0}, frame_rejects{0};
  std::mutex publish_m;
  NetStats published;

  Impl(exec::ThreadPool* pool, Options o) : opts(std::move(o)), engine(pool, opts.engine) {
    RMT_REQUIRE(opts.batch_limit > 0, "net::Server: batch_limit must be positive");
    RMT_REQUIRE(opts.max_line_bytes > 0, "net::Server: max_line_bytes must be positive");
    if (opts.write_hard_cap_bytes == 0)
      opts.write_hard_cap_bytes = 4 * opts.write_budget_bytes;
    int pipe_fds[2];
    set_nonblocking_pipe(pipe_fds);
    wake_r = pipe_fds[0];
    wake_w = pipe_fds[1];
    open_listener();
  }

  ~Impl() {
    for (auto& [fd, conn] : conns) ::close(fd);
    conns.clear();
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_r >= 0) ::close(wake_r);
    if (wake_w >= 0) ::close(wake_w);
  }

  void open_listener() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd < 0) throw std::runtime_error("net::Server: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opts.port);
    if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0)
      throw std::runtime_error(std::string("net::Server: bind failed: ") +
                               std::strerror(errno));
    if (::listen(listen_fd, 128) != 0)
      throw std::runtime_error(std::string("net::Server: listen failed: ") +
                               std::strerror(errno));
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
      throw std::runtime_error("net::Server: getsockname failed");
    port = ntohs(bound.sin_port);
  }

  void wake() {
    const char b = 1;
    // Best effort: a full pipe already guarantees a pending wake-up.
    [[maybe_unused]] const ssize_t r = ::write(wake_w, &b, 1);  // lint:raw-io-allowed: self-pipe
  }

  // -- batching -------------------------------------------------------------

  void flush_pending() {
    if (pending.empty()) return;
    const std::uint64_t seq = submitted++;
    refs[seq] = pending.size();
    // shared_ptr keeps the task copyable for std::function; the batch is
    // owned by the runner task from here on.
    auto reqs = std::make_shared<std::vector<svc::Request>>(std::move(pending));
    pending.clear();
    runner.submit([this, seq, reqs] {
      std::vector<svc::Response> responses;
      try {
        responses = engine.run(*reqs);
      } catch (const std::exception& e) {
        // Engine::run converts per-request failures itself; this is the
        // never-expected belt-and-braces path that keeps a throw from
        // wedging every connection waiting on the batch.
        svc::Response err;
        err.status = svc::Response::Status::kError;
        err.error = std::string("internal: batch failed: ") + e.what();
        responses.assign(reqs->size(), err);
      }
      {
        std::lock_guard<std::mutex> lock(completions_m);
        completions.emplace_back(seq, std::move(responses));
      }
      wake();
    });
  }

  bool batch_wait_expired() const {
    if (pending.empty()) return false;
    const auto age =
        std::chrono::duration_cast<std::chrono::milliseconds>(clock_t_::now() - pending_since);
    return std::uint64_t(age.count()) >= opts.batch_wait_ms;
  }

  void drain_completions() {
    std::vector<std::pair<std::uint64_t, std::vector<svc::Response>>> done;
    {
      std::lock_guard<std::mutex> lock(completions_m);
      done.swap(completions);
    }
    if (done.empty()) return;
    for (auto& [seq, responses] : done) {
      ++completed;  // the one-thread runner completes batches in order
      const auto it = refs.find(seq);
      if (it != refs.end() && it->second > 0) results[seq] = std::move(responses);
      else refs.erase(seq);  // every slot was dropped with its connection
    }
    for (auto& [fd, conn] : conns) drain_slots(conn);
  }

  void consume_ref(std::uint64_t seq) {
    const auto it = refs.find(seq);
    if (it == refs.end()) return;
    if (--it->second == 0) {
      refs.erase(it);
      results.erase(seq);
    }
  }

  // -- per-connection response path -----------------------------------------

  void enqueue_line(Conn& conn, const std::string& line) {
    conn.wbuf.append(line);
    conn.wbuf.push_back('\n');
    responses_out.fetch_add(1, std::memory_order_relaxed);
  }

  void emit_write_span(const Conn& conn, const svc::Response& resp, std::size_t bytes) {
    if (conn.trace_id == 0 || !obs::trace::enabled()) return;
    obs::trace::SpanRecord rec;
    rec.trace_id = conn.trace_id;
    rec.span_id = obs::trace::next_id();
    rec.set_name(RMT_TRACE_NAME("net.write"));
    // Joined to the response's svc.request root: the transport leg of a
    // request links into the engine's trace forest.
    rec.join_span_id = resp.root_span;
    rec.start_ns = obs::trace::now_ns();
    rec.end_ns = rec.start_ns;
    rec.add_attr("bytes", std::uint64_t(bytes));
    obs::trace::emit(rec);
  }

  std::string overloaded_response(const std::string& line, const std::string& why) {
    shed.fetch_add(1, std::memory_order_relaxed);
    return svc::wire::format_parse_error(svc::wire::extract_id(line), "overloaded: " + why);
  }

  void drain_slots(Conn& conn) {
    while (!conn.slots.empty()) {
      Slot& slot = conn.slots.front();
      if (slot.kind == Slot::Kind::kReady) {
        enqueue_line(conn, slot.preformatted);
      } else if (slot.kind == Slot::Kind::kEngine) {
        const auto it = results.find(slot.seq);
        if (it == results.end()) break;  // batch still computing
        const svc::Response& resp = it->second[slot.index];
        const std::string line = svc::wire::format_response(slot.id, resp);
        enqueue_line(conn, line);
        emit_write_span(conn, resp, line.size() + 1);
        --conn.inflight;
        --inflight_total;
        consume_ref(slot.seq);
      } else {
        // Probes report the state after everything submitted before them.
        if (completed < slot.seq) break;
        enqueue_line(conn, slot.kind == Slot::Kind::kStats
                               ? svc::wire::format_stats_response(slot.id, engine, "net",
                                                                  net_section_json())
                               : svc::wire::format_trace_response(slot.id));
      }
      conn.slots.pop_front();
    }
    flush_writes(conn);
  }

  void flush_writes(Conn& conn) {
    if (conn.dead) return;
    while (conn.woff < conn.wbuf.size()) {
      const ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.woff,
                               conn.wbuf.size() - conn.woff, MSG_NOSIGNAL);
      if (n > 0) {
        conn.woff += std::size_t(n);
        conn.bytes_out += std::uint64_t(n);
        bytes_out.fetch_add(std::uint64_t(n), std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      conn.dead = true;  // EPIPE / ECONNRESET: the client is gone
      return;
    }
    if (conn.woff == conn.wbuf.size()) {
      conn.wbuf.clear();
      conn.woff = 0;
    } else if (conn.woff > (64u << 10)) {
      conn.wbuf.erase(0, conn.woff);
      conn.woff = 0;
    }
    // Backpressure state machine: pause reads past the budget, resume
    // below half of it, drop the connection past the hard cap (a slow
    // client must not pin megabytes of the server's memory).
    const std::size_t queued = conn.queued();
    if (queued > opts.write_hard_cap_bytes) {
      slow_client_disconnects.fetch_add(1, std::memory_order_relaxed);
      conn.dead = true;
      return;
    }
    if (queued > opts.write_budget_bytes) conn.paused = true;
    else if (conn.paused && queued <= opts.write_budget_bytes / 2) conn.paused = false;
  }

  // -- request path ---------------------------------------------------------

  void handle_request_line(Conn& conn, const std::string& line) {
    const std::string probe = svc::wire::probe_kind(line);
    if (!probe.empty()) {
      flush_pending();  // probes report the state after everything queued
      Slot slot;
      slot.kind = probe == "stats" ? Slot::Kind::kStats : Slot::Kind::kTrace;
      slot.seq = submitted;
      slot.id = svc::wire::extract_id(line);
      conn.slots.push_back(std::move(slot));
      return;
    }
    // Admission control: shed instead of queueing work for a connection
    // (or a server) that is already past its budget. The response is
    // immediate and the connection stays usable.
    Slot slot;
    if (conn.inflight >= opts.max_inflight_per_conn) {
      ++conn.shed;
      slot.preformatted = overloaded_response(
          line, "connection has " + std::to_string(conn.inflight) +
                    " requests in flight (budget " +
                    std::to_string(opts.max_inflight_per_conn) + ")");
    } else if (inflight_total >= opts.max_inflight_total) {
      ++conn.shed;
      slot.preformatted = overloaded_response(
          line, "server has " + std::to_string(inflight_total) +
                    " requests in flight (budget " +
                    std::to_string(opts.max_inflight_total) + ")");
    } else if (conn.queued() > opts.write_budget_bytes) {
      ++conn.shed;
      slot.preformatted = overloaded_response(
          line, "write queue at " + std::to_string(conn.queued()) + " bytes (budget " +
                    std::to_string(opts.write_budget_bytes) + ")");
    } else {
      try {
        svc::wire::ParsedRequest parsed = svc::wire::parse_request(line);
        slot.kind = Slot::Kind::kEngine;
        slot.seq = submitted;  // the pending batch's future sequence number
        slot.index = pending.size();
        slot.id = std::move(parsed.id);
        if (pending.empty()) pending_since = clock_t_::now();
        pending.push_back(std::move(parsed.request));
        ++conn.inflight;
        ++inflight_total;
        ++conn.requests;
        conn.slots.push_back(std::move(slot));
        if (pending.size() >= opts.batch_limit) flush_pending();
        return;
      } catch (const std::exception& e) {
        slot.preformatted = svc::wire::format_parse_error(svc::wire::extract_id(line), e.what());
      }
    }
    conn.slots.push_back(std::move(slot));
  }

  void process_frames(Conn& conn) {
    LineFramer::Frame frame;
    while (!conn.dead && conn.framer.next(frame)) {
      lines_in.fetch_add(1, std::memory_order_relaxed);
      switch (frame.kind) {
        case LineFramer::Kind::kOversized:
          frame_rejects.fetch_add(1, std::memory_order_relaxed);
          {
            Slot slot;
            slot.preformatted = svc::wire::format_parse_error(
                "", "rmt.request/1: line exceeds " + std::to_string(opts.max_line_bytes) +
                        " bytes (got " + std::to_string(frame.line_bytes) + ")");
            conn.slots.push_back(std::move(slot));
          }
          break;
        case LineFramer::Kind::kEmbeddedNul:
          frame_rejects.fetch_add(1, std::memory_order_relaxed);
          {
            Slot slot;
            slot.preformatted = svc::wire::format_parse_error(
                "", "rmt.request/1: line contains a NUL byte (" +
                        std::to_string(frame.line_bytes) + " bytes)");
            conn.slots.push_back(std::move(slot));
          }
          break;
        case LineFramer::Kind::kLine:
          if (frame.line.empty()) flush_pending();  // blank line = flush
          else handle_request_line(conn, frame.line);
          break;
      }
    }
  }

  void handle_readable(Conn& conn) {
    if (conn.eof || conn.dead) return;
    const bool tracing = conn.trace_id != 0 && obs::trace::enabled();
    const std::uint64_t t0 = tracing ? obs::trace::now_ns() : 0;
    std::uint64_t got = 0;
    char buf[64 << 10];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
      if (n > 0) {
        got += std::uint64_t(n);
        conn.bytes_in += std::uint64_t(n);
        bytes_in.fetch_add(std::uint64_t(n), std::memory_order_relaxed);
        conn.framer.feed(buf, std::size_t(n));
        process_frames(conn);
        if (conn.dead) break;
        if (std::size_t(n) < sizeof buf) break;  // socket likely drained
        continue;
      }
      if (n == 0) {
        conn.eof = true;  // half-open: answer what is queued, then close
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      conn.dead = true;
      break;
    }
    if (tracing && got > 0) {
      obs::trace::SpanRecord rec;
      rec.trace_id = conn.trace_id;
      rec.span_id = obs::trace::next_id();
      rec.set_name(RMT_TRACE_NAME("net.read"));
      rec.start_ns = t0;
      rec.end_ns = obs::trace::now_ns();
      rec.add_attr("bytes", got);
      obs::trace::emit(rec);
    }
    drain_slots(conn);
  }

  void handle_accept() {
    while (conns.size() < opts.max_conns) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN, or a transient accept failure: retry next cycle
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      if (opts.so_sndbuf > 0)
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opts.so_sndbuf, sizeof opts.so_sndbuf);
      auto [it, inserted] = conns.emplace(fd, Conn(opts.max_line_bytes));
      Conn& conn = it->second;
      conn.fd = fd;
      if (obs::trace::enabled()) {
        conn.trace_id = obs::trace::next_id();
        conn.open_ns = obs::trace::now_ns();
      }
      accepts.fetch_add(1, std::memory_order_relaxed);
      active.store(conns.size(), std::memory_order_relaxed);
    }
  }

  void close_conn(Conn& conn) {
    if (conn.trace_id != 0 && obs::trace::enabled()) {
      obs::trace::SpanRecord rec;
      rec.trace_id = conn.trace_id;
      rec.span_id = obs::trace::next_id();
      rec.set_name(RMT_TRACE_NAME("net.conn"));
      rec.start_ns = conn.open_ns;
      rec.end_ns = obs::trace::now_ns();
      rec.add_attr("bytes_in", conn.bytes_in);
      rec.add_attr("bytes_out", conn.bytes_out);
      rec.add_attr("requests", conn.requests);
      rec.add_attr("shed", conn.shed);
      obs::trace::emit(rec);
    }
    // Release every response slot still referencing a batch — a closed
    // connection must not pin batch results (or the admission budget).
    for (const Slot& slot : conn.slots) {
      if (slot.kind != Slot::Kind::kEngine) continue;
      --conn.inflight;
      --inflight_total;
      consume_ref(slot.seq);
    }
    conn.slots.clear();
    ::close(conn.fd);
    disconnects.fetch_add(1, std::memory_order_relaxed);
  }

  /// Close everything that is finished (or doomed): dead connections, and
  /// connections with nothing left to say once the client half-closed or
  /// the server is draining.
  void close_sweep() {
    std::vector<int> doomed;
    for (auto& [fd, conn] : conns) {
      if (conn.dead) doomed.push_back(fd);
      else if ((conn.eof || stopping) && conn.slots.empty() && conn.queued() == 0)
        doomed.push_back(fd);
    }
    for (const int fd : doomed) {
      const auto it = conns.find(fd);
      close_conn(it->second);
      conns.erase(it);
    }
    if (!doomed.empty()) active.store(conns.size(), std::memory_order_relaxed);
  }

  std::string net_section_json() {
    const NetStats s = snapshot();
    obs::json::Writer w;
    w.begin_object();
    w.field("accepts", s.accepts);
    w.field("active", s.active);
    w.field("disconnects", s.disconnects);
    w.field("bytes_in", s.bytes_in);
    w.field("bytes_out", s.bytes_out);
    w.field("lines_in", s.lines_in);
    w.field("responses_out", s.responses_out);
    w.field("shed", s.shed);
    w.field("slow_client_disconnects", s.slow_client_disconnects);
    w.field("frame_rejects", s.frame_rejects);
    w.end_object();
    return w.take();
  }

  NetStats snapshot() const {
    NetStats s;
    s.accepts = accepts.load(std::memory_order_relaxed);
    s.active = active.load(std::memory_order_relaxed);
    s.disconnects = disconnects.load(std::memory_order_relaxed);
    s.bytes_in = bytes_in.load(std::memory_order_relaxed);
    s.bytes_out = bytes_out.load(std::memory_order_relaxed);
    s.lines_in = lines_in.load(std::memory_order_relaxed);
    s.responses_out = responses_out.load(std::memory_order_relaxed);
    s.shed = shed.load(std::memory_order_relaxed);
    s.slow_client_disconnects = slow_client_disconnects.load(std::memory_order_relaxed);
    s.frame_rejects = frame_rejects.load(std::memory_order_relaxed);
    return s;
  }

  void begin_drain() {
    if (stopping) return;
    stopping = true;
    flush_pending();  // requests read before the drain still get answers
  }

  void serve() {
    std::vector<pollfd> pfds;
    std::vector<int> pfd_conn;  // conn fd per pfds entry past the fixed two
    for (;;) {
      if (stop_requested.load(std::memory_order_relaxed)) begin_drain();
      close_sweep();
      if (stopping && conns.empty() && completed == submitted && pending.empty()) break;

      pfds.clear();
      pfd_conn.clear();
      pfds.push_back(pollfd{wake_r, POLLIN, 0});
      const bool accepting = !stopping && conns.size() < opts.max_conns;
      pfds.push_back(pollfd{accepting ? listen_fd : -1, POLLIN, 0});
      for (auto& [fd, conn] : conns) {
        short events = 0;
        if (!conn.eof && !conn.dead && !conn.paused && !stopping) events |= POLLIN;
        if (conn.queued() > 0) events |= POLLOUT;
        pfds.push_back(pollfd{fd, events, 0});
        pfd_conn.push_back(fd);
      }

      int timeout_ms = stopping ? 50 : 1000;
      if (!pending.empty()) {
        const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
            clock_t_::now() - pending_since);
        const std::int64_t left = std::int64_t(opts.batch_wait_ms) - age.count();
        timeout_ms = int(std::clamp<std::int64_t>(left, 0, 1000));
      }

      const int ready = ::poll(pfds.data(), nfds_t(pfds.size()), timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("net::Server: poll failed: ") +
                                 std::strerror(errno));
      }

      if (pfds[0].revents & POLLIN) {
        char sink[256];
        while (::read(wake_r, sink, sizeof sink) > 0) {
        }
      }
      drain_completions();
      if (stop_requested.load(std::memory_order_relaxed)) begin_drain();

      if (!stopping && (pfds[1].revents & POLLIN)) handle_accept();

      for (std::size_t i = 2; i < pfds.size(); ++i) {
        const auto it = conns.find(pfd_conn[i - 2]);
        if (it == conns.end()) continue;
        Conn& conn = it->second;
        if (pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) handle_readable(conn);
        if (pfds[i].revents & POLLOUT) flush_writes(conn);
      }

      if (batch_wait_expired()) flush_pending();
    }
  }
};

Server::Server(exec::ThreadPool* pool, Options opts)
    : impl_(std::make_unique<Impl>(pool, std::move(opts))) {}

Server::~Server() = default;

std::uint16_t Server::bound_port() const { return impl_->port; }

svc::Engine& Server::engine() { return impl_->engine; }

void Server::serve() { impl_->serve(); }

void Server::stop() {
  impl_->stop_requested.store(true, std::memory_order_relaxed);
  impl_->wake();
}

NetStats Server::stats() const { return impl_->snapshot(); }

void Server::publish_stats() {
  impl_->engine.publish_stats();
  if (!obs::enabled()) return;
  const NetStats now = impl_->snapshot();
  std::lock_guard<std::mutex> lock(impl_->publish_m);
  NetStats& last = impl_->published;
  obs::Registry& reg = obs::Registry::global();
  reg.counter("net.accepts").inc(now.accepts - last.accepts);
  reg.gauge("net.active").set(double(now.active));
  reg.counter("net.disconnects").inc(now.disconnects - last.disconnects);
  reg.counter("net.bytes_in").inc(now.bytes_in - last.bytes_in);
  reg.counter("net.bytes_out").inc(now.bytes_out - last.bytes_out);
  reg.counter("net.lines_in").inc(now.lines_in - last.lines_in);
  reg.counter("net.responses_out").inc(now.responses_out - last.responses_out);
  reg.counter("net.shed").inc(now.shed - last.shed);
  reg.counter("net.slow_client_disconnects")
      .inc(now.slow_client_disconnects - last.slow_client_disconnects);
  reg.counter("net.frame_rejects").inc(now.frame_rejects - last.frame_rejects);
  last = now;
}

}  // namespace rmt::net

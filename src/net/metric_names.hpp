// net/metric_names.hpp — the closed registry of rmt::net metric names.
//
// Every "net.*" metric name a C++ source references must be listed here,
// mirroring src/svc/metric_names.hpp: tools/rmt_lint.py cross-checks both
// directions — a source referencing an unregistered name, or a registry
// entry with no remaining instrumentation site in src/ — so the serving
// dashboards can treat the transport vocabulary as a stable schema. The
// same names appear (without the "net." prefix) as the `net` section of
// the TCP server's "stats" probe response.
//
// To add a metric: add the instrumentation site and the entry here in the
// same change; the linter markers below delimit what it parses.
#pragma once

#include <array>
#include <string_view>

namespace rmt::net {

// lint:net-metric-registry-begin
inline constexpr std::array<std::string_view, 10> kNetMetricNames = {
    "net.accepts",
    "net.active",
    "net.bytes_in",
    "net.bytes_out",
    "net.disconnects",
    "net.frame_rejects",
    "net.lines_in",
    "net.responses_out",
    "net.shed",
    "net.slow_client_disconnects",
};
// lint:net-metric-registry-end

constexpr bool is_known_net_metric(std::string_view name) {
  for (std::string_view m : kNetMetricNames)
    if (m == name) return true;
  return false;
}

}  // namespace rmt::net

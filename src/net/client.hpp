// net/client.hpp — a minimal blocking JSONL client for net::Server.
//
// The counterpart the tests and benches drive connections with: connect
// to 127.0.0.1:<port>, send whole lines, read whole lines back. It is
// deliberately synchronous (the *server* is the event loop under test)
// and deliberately byte-oriented — send_raw() exists precisely so the
// adversarial tests can split writes mid-line, dribble bytes, or inject
// garbage that a line-level API would never produce.
//
// Not a production client: no reconnect, no timeouts beyond the socket
// defaults, one thread per Client. Move-only (owns the fd).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace rmt::net {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Shrink SO_RCVBUF for the *next* connect() — together with the
  /// server's so_sndbuf option this bounds the kernel's in-flight window,
  /// making slow-client backpressure observable with little traffic.
  /// Must be called before connect(); 0 = kernel default.
  void set_recv_buffer(int bytes) { recv_buffer_ = bytes; }

  /// Connect to 127.0.0.1:port. Throws std::runtime_error on failure.
  void connect(std::uint16_t port);

  bool connected() const { return fd_ >= 0; }

  /// Send `line` plus a trailing '\n', looping until every byte is
  /// written. Throws std::runtime_error when the peer is gone.
  void send_line(const std::string& line);

  /// Send exactly `data` — no newline appended, no framing. The fault-
  /// injection primitive: callers split/duplicate/dribble at will.
  void send_raw(const void* data, std::size_t len);

  /// Read one '\n'-terminated line (newline stripped) into `line`.
  /// Returns false on clean EOF with no buffered partial line; throws on
  /// socket errors.
  bool recv_line(std::string& line);

  /// Half-close: shutdown(SHUT_WR) so the server sees EOF while this end
  /// can still read the remaining responses.
  void shutdown_write();

  void close();

 private:
  int fd_ = -1;
  int recv_buffer_ = 0;
  std::string rbuf_;  ///< bytes received but not yet returned as lines
};

}  // namespace rmt::net

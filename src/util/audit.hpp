// util/audit.hpp — rmt::audit: deep structural validators behind RMT_AUDIT.
//
// RMT_REQUIRE/RMT_CHECK (util/check.hpp) guard cheap, local conditions and
// stay on in every build. This layer is the opposite trade: validators that
// re-derive whole representation invariants — antichain canonicality of an
// AdversaryStructure, adjacency symmetry of a Graph, the Z_v = Z^{V(γ(v))}
// consistency of derived knowledge, per-round message conservation in the
// simulator — and therefore cost as much as the operations they audit.
//
// Two-level design:
//  * The `debug_validate()` entry points below are *always* compiled, so
//    tests and `rmt_cli validate` can run them in any build.
//  * The RMT_AUDIT_VALIDATE(...) hook macro, planted at the entry points of
//    ⊕, restriction, the analysis deciders and the protocol runner, expands
//    to nothing unless the library is configured with -DRMT_AUDIT=ON
//    (CMake option; defines RMT_AUDIT). With the option off the hooks do
//    not evaluate their arguments and reference no audit symbol — audited
//    hot paths are bit-identical to an unaudited build.
//
// A violation is a library bug, never user error: validators throw
// AuditError (a std::logic_error) after bumping the obs counters
// "audit.violations{component=...}". Passing checks bump
// "audit.checks{component=...}", which is how tests assert that an
// RMT_AUDIT=ON run actually exercised every validator.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace rmt {

class AdversaryStructure;
class Graph;
class Instance;
class NodeSet;
class RestrictedStructure;
class ViewFunction;
struct LocalKnowledge;

namespace sim {
class Network;
}

namespace audit {

/// True when the library was configured with -DRMT_AUDIT=ON and the hook
/// macro below is live. Tests branch on this to assert both the detecting
/// (on) and the zero-overhead (off) behavior from one source.
#ifdef RMT_AUDIT
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Thrown on any deep-validation failure. `component()` names the audited
/// module ("adversary", "graph", "knowledge", "instance", "sim", "obs") so
/// diagnostics can be grouped machine-readably.
class AuditError : public std::logic_error {
 public:
  AuditError(std::string component, const std::string& message)
      : std::logic_error("audit[" + component + "]: " + message),
        component_(std::move(component)) {}

  const std::string& component() const { return component_; }

 private:
  std::string component_;
};

namespace detail {
/// Bump audit.violations{component} and throw AuditError.
[[noreturn]] void fail(const char* component, const std::string& message);
/// Bump audit.checks{component} (called once per passing validator).
void passed(const char* component);
}  // namespace detail

/// Deep validators. Each re-derives the audited invariant from scratch and
/// throws AuditError on the first violation. Always compiled; see header
/// comment for the cost model.
void validate(const NodeSet& s);
void validate(const Graph& g);
void validate(const AdversaryStructure& z);
void validate(const RestrictedStructure& r);
void validate(const ViewFunction& gamma);
void validate(const Instance& inst);
/// Consistency of derived round-0 knowledge against the global data:
/// lk.view == γ(lk.self) and lk.local_z == Z^{V(γ(lk.self))}, recomputed.
void validate(const LocalKnowledge& lk, const AdversaryStructure& z, const ViewFunction& gamma);
/// Simulator channel/addressing invariants over the queued inboxes (the
/// per-round conservation count lives in Network::step, which knows the
/// round's production totals).
void validate(const sim::Network& net);

/// One collected violation, for machine-readable reporting
/// (`rmt_cli validate`).
struct Diagnostic {
  std::string component;
  std::string message;
};

/// Run every instance-level validator (graph, adversary structure, view
/// function, instance well-formedness, per-player derived knowledge),
/// collecting instead of throwing: one Diagnostic per failed component.
/// Empty result means the instance passed the full audit.
std::vector<Diagnostic> check_instance(const Instance& inst);

}  // namespace audit
}  // namespace rmt

/// Entry-point hook: validates its argument(s) when RMT_AUDIT is on,
/// disappears entirely (arguments unevaluated) when off.
#ifdef RMT_AUDIT
#define RMT_AUDIT_VALIDATE(...) ::rmt::audit::validate(__VA_ARGS__)
#else
#define RMT_AUDIT_VALIDATE(...) static_cast<void>(0)
#endif

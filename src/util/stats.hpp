// util/stats.hpp — streaming summary statistics for the experiment
// drivers (Welford's online algorithm: numerically stable single pass).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "util/check.hpp"

namespace rmt {

class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / double(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }

  double mean() const {
    RMT_REQUIRE(n_ > 0, "mean of empty sample");
    return mean_;
  }
  double min() const {
    RMT_REQUIRE(n_ > 0, "min of empty sample");
    return min_;
  }
  double max() const {
    RMT_REQUIRE(n_ > 0, "max of empty sample");
    return max_;
  }
  /// Sample variance (n-1 denominator); 0 for a single observation.
  double variance() const {
    RMT_REQUIRE(n_ > 0, "variance of empty sample");
    return n_ < 2 ? 0.0 : m2_ / double(n_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double sum() const { return mean_ * double(n_); }

  /// Merge another sample (parallel Welford combination).
  void merge(const OnlineStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const std::size_t n = n_ + o.n_;
    m2_ += o.m2_ + delta * delta * double(n_) * double(o.n_) / double(n);
    mean_ += delta * double(o.n_) / double(n);
    n_ = n;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace rmt

// util/rng.hpp — deterministic seeded random number generation.
//
// All randomized components of the library (graph generators, random
// adversary structures, randomized Byzantine strategies, experiment sweeps)
// take an explicit Rng so that every run is reproducible from a seed. No
// component reads ambient entropy.
#pragma once

#include <cstdint>
#include <random>

#include "util/check.hpp"

namespace rmt {

/// Deterministic RNG wrapper around a fixed engine. Copyable; copies evolve
/// independently (useful for giving each simulated node its own stream).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    RMT_REQUIRE(lo <= hi, "empty range");
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    RMT_REQUIRE(n > 0, "index() over empty range");
    return static_cast<std::size_t>(uniform(0, n - 1));
  }

  /// Bernoulli trial with success probability p in [0,1].
  bool chance(double p) {
    RMT_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_) < p;
  }

  /// Uniform real in [0,1).
  double real() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Derive an independent child stream; deterministic in (this state, salt).
  Rng fork(std::uint64_t salt) {
    return Rng(uniform(0, ~0ull) ^ (salt * 0xbf58476d1ce4e5b9ull + 0x94d049bb133111ebull));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rmt

#include "util/fmt.hpp"

#include <algorithm>
#include <cstdio>

namespace rmt::fmt {

std::string join(const std::vector<std::string>& pieces, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string pad(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string table(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return {};
  std::size_t cols = 0;
  for (const auto& r : rows) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  for (const auto& r : rows)
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < cols; ++c) {
      out += pad(c < r.size() ? r[c] : "", width[c]);
      if (c + 1 < cols) out += "  ";
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit_row(rows[0]);
  std::string rule;
  for (std::size_t c = 0; c < cols; ++c) {
    rule += std::string(width[c], '-');
    if (c + 1 < cols) rule += "  ";
  }
  out += rule + '\n';
  for (std::size_t i = 1; i < rows.size(); ++i) emit_row(rows[i]);
  return out;
}

}  // namespace rmt::fmt

// util/check.hpp — precondition and invariant checking macros.
//
// Conventions (CppCoreGuidelines I.6/I.8):
//  * RMT_REQUIRE  — precondition on a public API; throws std::invalid_argument
//                   so misuse is reportable and testable.
//  * RMT_CHECK    — internal invariant; throws std::logic_error (a bug in the
//                   library if it ever fires). Kept on in all build types:
//                   the library is combinatorial, the cost is negligible
//                   relative to the search loops it guards.
#pragma once

#include <stdexcept>
#include <string>

namespace rmt::detail {

[[noreturn]] inline void require_failed(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  throw std::invalid_argument(std::string("precondition failed: ") + expr + " at " + file + ":" +
                              std::to_string(line) + (msg.empty() ? "" : (": " + msg)));
}

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  throw std::logic_error(std::string("invariant violated: ") + expr + " at " + file + ":" +
                         std::to_string(line) + (msg.empty() ? "" : (": " + msg)));
}

}  // namespace rmt::detail

#define RMT_REQUIRE(expr, msg)                                        \
  do {                                                                \
    if (!(expr)) ::rmt::detail::require_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#define RMT_CHECK(expr, msg)                                          \
  do {                                                                \
    if (!(expr)) ::rmt::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

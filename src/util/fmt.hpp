// util/fmt.hpp — small text-formatting helpers shared by tools, examples and
// benchmark table printers. Deliberately tiny: the library proper returns
// data, and only the presentation layer formats it.
#pragma once

#include <string>
#include <vector>

namespace rmt::fmt {

/// Join string pieces with a separator: join({"a","b"}, ", ") == "a, b".
std::string join(const std::vector<std::string>& pieces, const std::string& sep);

/// Fixed-point with the given number of decimals (e.g. for rate columns).
std::string fixed(double v, int decimals);

/// Left-align `s` into a field of `width` characters (pads with spaces;
/// never truncates).
std::string pad(const std::string& s, std::size_t width);

/// Render a simple aligned ASCII table. `rows[0]` is the header.
/// Column widths are computed from content. Used by the bench table binaries.
std::string table(const std::vector<std::vector<std::string>>& rows);

}  // namespace rmt::fmt

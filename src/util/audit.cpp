#include "util/audit.hpp"

#include "adversary/oplus.hpp"
#include "adversary/structure.hpp"
#include "graph/graph.hpp"
#include "instance/instance.hpp"
#include "knowledge/local_knowledge.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "sim/network.hpp"

namespace rmt::audit {

namespace detail {

void fail(const char* component, const std::string& message) {
  obs::Registry::global()
      .counter("audit.violations", {{"component", component}})
      .inc();
  throw AuditError(component, message);
}

void passed(const char* component) {
  obs::Registry::global().counter("audit.checks", {{"component", component}}).inc();
}

}  // namespace detail

void validate(const NodeSet& s) {
  RMT_OBS_SCOPE("audit.validate");
  s.debug_validate();
  detail::passed("node_set");
}

void validate(const Graph& g) {
  RMT_OBS_SCOPE("audit.validate");
  g.debug_validate();
  detail::passed("graph");
}

void validate(const AdversaryStructure& z) {
  RMT_OBS_SCOPE("audit.validate");
  z.debug_validate();
  detail::passed("adversary");
}

void validate(const RestrictedStructure& r) {
  RMT_OBS_SCOPE("audit.validate");
  r.debug_validate();
  detail::passed("restricted");
}

void validate(const ViewFunction& gamma) {
  RMT_OBS_SCOPE("audit.validate");
  gamma.debug_validate();
  detail::passed("view");
}

void validate(const Instance& inst) {
  RMT_OBS_SCOPE("audit.validate");
  inst.debug_validate();
  detail::passed("instance");
}

void validate(const LocalKnowledge& lk, const AdversaryStructure& z, const ViewFunction& gamma) {
  RMT_OBS_SCOPE("audit.validate");
  debug_validate(lk, z, gamma);
  detail::passed("knowledge");
}

void validate(const sim::Network& net) {
  RMT_OBS_SCOPE("audit.validate");
  net.debug_validate();
  detail::passed("sim");
}

std::vector<Diagnostic> check_instance(const Instance& inst) {
  std::vector<Diagnostic> out;
  const auto run = [&out](auto&& fn) {
    try {
      fn();
      return true;
    } catch (const AuditError& e) {
      out.push_back({e.component(), e.what()});
      return false;
    }
  };
  run([&] { validate(inst.graph()); });
  run([&] { validate(inst.adversary()); });
  run([&] { validate(inst.gamma()); });
  run([&] { validate(inst); });
  // One diagnostic suffices for the per-player consistency check — a
  // corrupt derivation would otherwise repeat n times.
  bool knowledge_ok = true;
  inst.graph().nodes().for_each([&](NodeId v) {
    if (!knowledge_ok) return;
    knowledge_ok =
        run([&] { validate(inst.knowledge_of(v), inst.adversary(), inst.gamma()); });
  });
  return out;
}

}  // namespace rmt::audit

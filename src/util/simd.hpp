// util/simd.hpp — portable batched bit-matrix kernels (AVX2 / NEON / scalar).
//
// The adversary-structure hot paths all reduce to scanning rows of a
// word-level bit matrix against one candidate word vector:
//   * subset_any     — ∃ row ⊇ candidate   (antichain membership),
//   * disjoint_any   — ∃ row ∩ candidate=∅ (conjunction-constraint rows),
//   * intersect_any  — ∃ row ∩ candidate≠∅ (negated singleton conjunctions),
//   * conjunction_probe_w1 — the fused all-groups form JointStructure uses.
// This header is the single place those scans are implemented, once per
// backend, so every caller (SubsetMatrix, ConjunctionRows, the deciders,
// the benches) shares one definition of the scan semantics.
//
// Backend selection is compile-time: AVX2 on x86-64, NEON on aarch64,
// portable scalar otherwise or when the build forces it (-DRMT_SIMD=OFF
// defines RMT_SIMD_OFF and compiles the vector paths out entirely). On
// x86-64 the vector kernels carry target("avx2") attributes and are gated
// behind a one-time __builtin_cpu_supports probe, so the library baseline
// ISA is unchanged and the binary stays safe on pre-AVX2 hardware —
// compile-time selection with runtime dispatch on top.
//
// force_scalar(true) is the test override hook: it routes every dispatch
// below through the scalar reference implementation regardless of backend,
// which is how the propcheck backend axis, the fuzz differentials and the
// bench identity sweeps prove scalar/vector bit-identity. The flag is a
// process-global atomic (decider pool workers must observe it).
//
// Matrix layout contract (see adversary/bit_matrix.hpp for the builder):
// column-block-major — word w of row r lives at cols[w * stride + r], so
// one vector load picks up the same word of 4 (AVX2) or 2 (NEON)
// consecutive rows. With words == 1 (every exact-decider workload:
// kMaxExactNodes = 26 keeps all hot sets in one 64-bit block) the layout
// degenerates to a flat contiguous row array.
//
// Raw intrinsics are banned outside this header (tools/rmt_lint.py rule
// `simd-discipline`); the registry markers below list the compiled-in
// backends for the linter's both-directions check.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#if !defined(RMT_SIMD_OFF) && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define RMT_SIMD_BACKEND_AVX2 1
#include <immintrin.h>
#elif !defined(RMT_SIMD_OFF) && defined(__ARM_NEON)
#define RMT_SIMD_BACKEND_NEON 1
#include <arm_neon.h>
#endif

// lint:simd-backend-registry-begin
//   avx2
//   neon
// lint:simd-backend-registry-end

namespace rmt::simd {

/// A [begin, end) row range of one conjunction group (constraint).
struct RowRange {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
};

namespace detail {
/// The test override hook's backing flag. Relaxed ordering suffices: the
/// flag only selects between two bit-identical implementations, so a
/// racing reader picking the stale backend is still correct.
inline std::atomic<bool> scalar_forced_flag{false};
}  // namespace detail

/// Route every kernel below through the scalar implementation until
/// force_scalar(false). Process-global; pool workers observe it.
inline void force_scalar(bool on) {
  detail::scalar_forced_flag.store(on, std::memory_order_relaxed);
}

inline bool scalar_forced() {
  return detail::scalar_forced_flag.load(std::memory_order_relaxed);
}

/// RAII form of the override hook for sweeps: forces the scalar backend
/// for the scope's lifetime and restores the previous state on exit.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool on = true) : prev_(scalar_forced()) { force_scalar(on); }
  ~ScopedForceScalar() { force_scalar(prev_); }
  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;

 private:
  bool prev_;
};

/// The backend this translation unit was compiled with ("avx2", "neon",
/// "scalar"). Compile-time fact; ignores the runtime probe and the hook.
constexpr const char* backend_name() {
#if defined(RMT_SIMD_BACKEND_AVX2)
  return "avx2";
#elif defined(RMT_SIMD_BACKEND_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

namespace detail {

#if defined(RMT_SIMD_BACKEND_AVX2)
/// One-time CPUID probe: the AVX2 kernels are compiled with a target
/// attribute, not a raised baseline, so they must not run on hardware
/// without the feature.
inline const bool kHaveAvx2 = __builtin_cpu_supports("avx2") != 0;
#endif

// --- scalar reference kernels ----------------------------------------------
// These define the semantics; every vector kernel must agree bit for bit
// (the bench identity sweep and the fuzz differential enforce that).

inline bool subset_any_scalar(const std::uint64_t* cand, std::size_t words,
                              const std::uint64_t* cols, std::size_t stride, std::size_t begin,
                              std::size_t end) {
  if (words == 0) return begin < end;  // empty candidate ⊆ every row
  for (std::size_t r = begin; r < end; ++r) {
    std::uint64_t violation = 0;
    for (std::size_t w = 0; w < words; ++w) violation |= cand[w] & ~cols[w * stride + r];
    if (violation == 0) return true;
  }
  return false;
}

inline bool disjoint_any_scalar(const std::uint64_t* cand, std::size_t words,
                                const std::uint64_t* cols, std::size_t stride, std::size_t begin,
                                std::size_t end) {
  if (words == 0) return begin < end;  // empty candidate is disjoint from every row
  for (std::size_t r = begin; r < end; ++r) {
    std::uint64_t overlap = 0;
    for (std::size_t w = 0; w < words; ++w) overlap |= cand[w] & cols[w * stride + r];
    if (overlap == 0) return true;
  }
  return false;
}

inline bool intersect_any_scalar(const std::uint64_t* cand, std::size_t words,
                                 const std::uint64_t* cols, std::size_t stride, std::size_t begin,
                                 std::size_t end) {
  if (words == 0) return false;
  for (std::size_t r = begin; r < end; ++r) {
    std::uint64_t overlap = 0;
    for (std::size_t w = 0; w < words; ++w) overlap |= cand[w] & cols[w * stride + r];
    if (overlap != 0) return true;
  }
  return false;
}

inline bool conjunction_probe_w1_scalar(std::uint64_t x, const std::uint64_t* rows,
                                        const RowRange* groups, std::size_t ngroups) {
  for (std::size_t g = 0; g < ngroups; ++g) {
    bool satisfied = false;
    for (std::uint32_t r = groups[g].begin; r < groups[g].end; ++r) {
      if ((x & rows[r]) == 0) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

// --- AVX2 kernels ------------------------------------------------------------
// 4 rows of 64 columns per 256-bit op; the per-word accumulator keeps the
// early exit at chunk granularity (one branch per 4 rows).

#if defined(RMT_SIMD_BACKEND_AVX2)

[[gnu::target("avx2")]] inline bool subset_any_avx2(const std::uint64_t* cand, std::size_t words,
                                                    const std::uint64_t* cols, std::size_t stride,
                                                    std::size_t begin, std::size_t end) {
  if (words == 0) return begin < end;
  std::size_t r = begin;
  for (; r + 4 <= end; r += 4) {
    __m256i violation = _mm256_setzero_si256();
    for (std::size_t w = 0; w < words; ++w) {
      const __m256i rows =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + w * stride + r));
      const __m256i c = _mm256_set1_epi64x(static_cast<long long>(cand[w]));
      violation = _mm256_or_si256(violation, _mm256_andnot_si256(rows, c));
    }
    const __m256i zero_lanes = _mm256_cmpeq_epi64(violation, _mm256_setzero_si256());
    if (_mm256_movemask_epi8(zero_lanes) != 0) return true;
  }
  return subset_any_scalar(cand, words, cols, stride, r, end);
}

[[gnu::target("avx2")]] inline bool disjoint_any_avx2(const std::uint64_t* cand, std::size_t words,
                                                      const std::uint64_t* cols, std::size_t stride,
                                                      std::size_t begin, std::size_t end) {
  if (words == 0) return begin < end;
  std::size_t r = begin;
  for (; r + 4 <= end; r += 4) {
    __m256i overlap = _mm256_setzero_si256();
    for (std::size_t w = 0; w < words; ++w) {
      const __m256i rows =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + w * stride + r));
      const __m256i c = _mm256_set1_epi64x(static_cast<long long>(cand[w]));
      overlap = _mm256_or_si256(overlap, _mm256_and_si256(rows, c));
    }
    const __m256i zero_lanes = _mm256_cmpeq_epi64(overlap, _mm256_setzero_si256());
    if (_mm256_movemask_epi8(zero_lanes) != 0) return true;
  }
  return disjoint_any_scalar(cand, words, cols, stride, r, end);
}

[[gnu::target("avx2")]] inline bool intersect_any_avx2(const std::uint64_t* cand,
                                                       std::size_t words,
                                                       const std::uint64_t* cols,
                                                       std::size_t stride, std::size_t begin,
                                                       std::size_t end) {
  if (words == 0) return false;
  std::size_t r = begin;
  for (; r + 4 <= end; r += 4) {
    __m256i overlap = _mm256_setzero_si256();
    for (std::size_t w = 0; w < words; ++w) {
      const __m256i rows =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + w * stride + r));
      const __m256i c = _mm256_set1_epi64x(static_cast<long long>(cand[w]));
      overlap = _mm256_or_si256(overlap, _mm256_and_si256(rows, c));
    }
    const __m256i zero_lanes = _mm256_cmpeq_epi64(overlap, _mm256_setzero_si256());
    if (_mm256_movemask_epi8(zero_lanes) != static_cast<int>(0xFFFFFFFFu)) return true;
  }
  return intersect_any_scalar(cand, words, cols, stride, r, end);
}

[[gnu::target("avx2")]] inline bool conjunction_probe_w1_avx2(std::uint64_t x,
                                                              const std::uint64_t* rows,
                                                              const RowRange* groups,
                                                              std::size_t ngroups) {
  // Groups whose row ranges are consecutive singletons (the dominant shape:
  // one forbidden row per constraint) fuse into a single "no row may
  // intersect x" sweep, 4 groups per vector op. Wider groups fall back to
  // the per-group ∃-disjoint scan.
  std::size_t g = 0;
  while (g < ngroups) {
    if (groups[g].end == groups[g].begin + 1) {
      const std::uint32_t first = groups[g].begin;
      std::size_t run = 1;
      while (g + run < ngroups && groups[g + run].end == groups[g + run].begin + 1 &&
             groups[g + run].begin == first + run)
        ++run;
      if (intersect_any_avx2(&x, 1, rows, 0, first, first + run)) return false;
      g += run;
    } else {
      if (!disjoint_any_avx2(&x, 1, rows, 0, groups[g].begin, groups[g].end)) return false;
      ++g;
    }
  }
  return true;
}

#endif  // RMT_SIMD_BACKEND_AVX2

// --- NEON kernels ------------------------------------------------------------
// 2 rows per 128-bit op. aarch64 implies NEON, so no runtime probe.

#if defined(RMT_SIMD_BACKEND_NEON)

inline bool subset_any_neon(const std::uint64_t* cand, std::size_t words,
                            const std::uint64_t* cols, std::size_t stride, std::size_t begin,
                            std::size_t end) {
  if (words == 0) return begin < end;
  std::size_t r = begin;
  for (; r + 2 <= end; r += 2) {
    uint64x2_t violation = vdupq_n_u64(0);
    for (std::size_t w = 0; w < words; ++w) {
      const uint64x2_t rows = vld1q_u64(cols + w * stride + r);
      const uint64x2_t c = vdupq_n_u64(cand[w]);
      violation = vorrq_u64(violation, vbicq_u64(c, rows));  // c & ~rows
    }
    if (vgetq_lane_u64(violation, 0) == 0 || vgetq_lane_u64(violation, 1) == 0) return true;
  }
  return subset_any_scalar(cand, words, cols, stride, r, end);
}

inline bool disjoint_any_neon(const std::uint64_t* cand, std::size_t words,
                              const std::uint64_t* cols, std::size_t stride, std::size_t begin,
                              std::size_t end) {
  if (words == 0) return begin < end;
  std::size_t r = begin;
  for (; r + 2 <= end; r += 2) {
    uint64x2_t overlap = vdupq_n_u64(0);
    for (std::size_t w = 0; w < words; ++w) {
      const uint64x2_t rows = vld1q_u64(cols + w * stride + r);
      const uint64x2_t c = vdupq_n_u64(cand[w]);
      overlap = vorrq_u64(overlap, vandq_u64(c, rows));
    }
    if (vgetq_lane_u64(overlap, 0) == 0 || vgetq_lane_u64(overlap, 1) == 0) return true;
  }
  return disjoint_any_scalar(cand, words, cols, stride, r, end);
}

inline bool intersect_any_neon(const std::uint64_t* cand, std::size_t words,
                               const std::uint64_t* cols, std::size_t stride, std::size_t begin,
                               std::size_t end) {
  if (words == 0) return false;
  std::size_t r = begin;
  for (; r + 2 <= end; r += 2) {
    uint64x2_t overlap = vdupq_n_u64(0);
    for (std::size_t w = 0; w < words; ++w) {
      const uint64x2_t rows = vld1q_u64(cols + w * stride + r);
      const uint64x2_t c = vdupq_n_u64(cand[w]);
      overlap = vorrq_u64(overlap, vandq_u64(c, rows));
    }
    if (vgetq_lane_u64(overlap, 0) != 0 || vgetq_lane_u64(overlap, 1) != 0) return true;
  }
  return intersect_any_scalar(cand, words, cols, stride, r, end);
}

inline bool conjunction_probe_w1_neon(std::uint64_t x, const std::uint64_t* rows,
                                      const RowRange* groups, std::size_t ngroups) {
  std::size_t g = 0;
  while (g < ngroups) {
    if (groups[g].end == groups[g].begin + 1) {
      const std::uint32_t first = groups[g].begin;
      std::size_t run = 1;
      while (g + run < ngroups && groups[g + run].end == groups[g + run].begin + 1 &&
             groups[g + run].begin == first + run)
        ++run;
      if (intersect_any_neon(&x, 1, rows, 0, first, first + run)) return false;
      g += run;
    } else {
      if (!disjoint_any_neon(&x, 1, rows, 0, groups[g].begin, groups[g].end)) return false;
      ++g;
    }
  }
  return true;
}

#endif  // RMT_SIMD_BACKEND_NEON

/// True when the vector backend is both compiled in, supported by this
/// CPU and not overridden by force_scalar.
inline bool vector_active() {
#if defined(RMT_SIMD_BACKEND_AVX2)
  return kHaveAvx2 && !scalar_forced();
#elif defined(RMT_SIMD_BACKEND_NEON)
  return !scalar_forced();
#else
  return false;
#endif
}

/// Scans shorter than this stay on the inlined scalar kernels even when
/// the vector backend is active: target-attributed functions cannot be
/// inlined into baseline-ISA callers, so a handful of rows never amortizes
/// the call + broadcast setup. Chosen at two vector chunks (AVX2).
inline constexpr std::size_t kSmallScanRows = 8;

}  // namespace detail

/// The backend the next kernel call will actually run ("avx2", "neon",
/// "scalar") — backend_name() downgraded by the CPU probe and the hook.
inline const char* active_backend() {
  return detail::vector_active() ? backend_name() : "scalar";
}

/// ∃ r ∈ [begin, end): candidate ⊆ row_r. `cols` is column-block-major
/// with `stride` (word w of row r at cols[w*stride + r]); candidate words
/// beyond `words` are treated as zero, so callers pass the candidate's
/// active word count even when the matrix is wider.
inline bool subset_any(const std::uint64_t* cand, std::size_t words, const std::uint64_t* cols,
                       std::size_t stride, std::size_t begin, std::size_t end) {
#if defined(RMT_SIMD_BACKEND_AVX2)
  if (begin + detail::kSmallScanRows <= end && detail::vector_active())
    return detail::subset_any_avx2(cand, words, cols, stride, begin, end);
#elif defined(RMT_SIMD_BACKEND_NEON)
  if (begin + detail::kSmallScanRows <= end && detail::vector_active())
    return detail::subset_any_neon(cand, words, cols, stride, begin, end);
#endif
  return detail::subset_any_scalar(cand, words, cols, stride, begin, end);
}

/// ∃ r ∈ [begin, end): candidate ∩ row_r = ∅. Same layout contract.
inline bool disjoint_any(const std::uint64_t* cand, std::size_t words, const std::uint64_t* cols,
                         std::size_t stride, std::size_t begin, std::size_t end) {
#if defined(RMT_SIMD_BACKEND_AVX2)
  if (begin + detail::kSmallScanRows <= end && detail::vector_active())
    return detail::disjoint_any_avx2(cand, words, cols, stride, begin, end);
#elif defined(RMT_SIMD_BACKEND_NEON)
  if (begin + detail::kSmallScanRows <= end && detail::vector_active())
    return detail::disjoint_any_neon(cand, words, cols, stride, begin, end);
#endif
  return detail::disjoint_any_scalar(cand, words, cols, stride, begin, end);
}

/// ∃ r ∈ [begin, end): candidate ∩ row_r ≠ ∅. Same layout contract.
inline bool intersect_any(const std::uint64_t* cand, std::size_t words, const std::uint64_t* cols,
                          std::size_t stride, std::size_t begin, std::size_t end) {
#if defined(RMT_SIMD_BACKEND_AVX2)
  if (begin + detail::kSmallScanRows <= end && detail::vector_active())
    return detail::intersect_any_avx2(cand, words, cols, stride, begin, end);
#elif defined(RMT_SIMD_BACKEND_NEON)
  if (begin + detail::kSmallScanRows <= end && detail::vector_active())
    return detail::intersect_any_neon(cand, words, cols, stride, begin, end);
#endif
  return detail::intersect_any_scalar(cand, words, cols, stride, begin, end);
}

/// Fused conjunction probe over single-word rows: true iff every group in
/// `groups` contains at least one row disjoint from x. Rows are a flat
/// contiguous array (the words == 1 degenerate of the column-block-major
/// layout); group ranges index into it.
inline bool conjunction_probe_w1(std::uint64_t x, const std::uint64_t* rows,
                                 const RowRange* groups, std::size_t ngroups) {
#if defined(RMT_SIMD_BACKEND_AVX2) || defined(RMT_SIMD_BACKEND_NEON)
  // Group ranges are contiguous and ascending (a LIFO row stack), so the
  // total span is one subtraction — route short probes to the inlined
  // scalar loop, same policy as the row kernels above.
  const std::size_t span =
      ngroups == 0 ? 0 : std::size_t{groups[ngroups - 1].end} - groups[0].begin;
#endif
#if defined(RMT_SIMD_BACKEND_AVX2)
  if (span >= detail::kSmallScanRows && detail::vector_active())
    return detail::conjunction_probe_w1_avx2(x, rows, groups, ngroups);
#elif defined(RMT_SIMD_BACKEND_NEON)
  if (span >= detail::kSmallScanRows && detail::vector_active())
    return detail::conjunction_probe_w1_neon(x, rows, groups, ngroups);
#endif
  return detail::conjunction_probe_w1_scalar(x, rows, groups, ngroups);
}

}  // namespace rmt::simd

#include "adversary/oplus.hpp"

#include <vector>

#include "obs/timer.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace rmt {

RestrictedStructure::RestrictedStructure(const AdversaryStructure& z, NodeSet ground)
    : family_(z.restricted_to(ground)),
      ground_(std::move(ground)),
      compiled_(CompiledGroup::complement(ground_, family_.maximal_sets())) {}

std::string RestrictedStructure::to_string() const {
  return family_.to_string() + "^" + ground_.to_string();
}

void RestrictedStructure::debug_validate() const {
  family_.debug_validate();
  ground_.debug_validate();
  const NodeSet support = family_.support();
  if (!support.is_subset_of(ground_))
    audit::detail::fail("restricted", "family mentions nodes outside its ground set: " +
                                          (support - ground_).to_string() + " ⊄ " +
                                          ground_.to_string());
  // The compiled forbidden rows are a derived cache of (family, ground);
  // re-derive and compare, or conjunction probes silently diverge from
  // family_.contains.
  const CompiledGroup expect = CompiledGroup::complement(ground_, family_.maximal_sets());
  if (expect.count != compiled_.count || expect.row_words != compiled_.row_words ||
      expect.rows != compiled_.rows)
    audit::detail::fail("restricted",
                        "compiled complement rows out of sync with (family, ground) in " +
                            to_string());
}

RestrictedStructure oplus(const RestrictedStructure& a, const RestrictedStructure& b) {
  RMT_OBS_SCOPE("adversary.oplus");
  RMT_AUDIT_VALIDATE(a);
  RMT_AUDIT_VALIDATE(b);
  // Degenerate operands: an empty *family* joined with anything is the
  // empty family (no Z₁ exists to pair), mirroring Definition 2 literally.
  const NodeSet joint_ground = a.ground() | b.ground();
  if (a.family().empty_family() || b.family().empty_family())
    return RestrictedStructure(AdversaryStructure{}, joint_ground);

  std::vector<NodeSet> joined;
  joined.reserve(a.family().num_maximal_sets() * b.family().num_maximal_sets());
  for (const NodeSet& m1 : a.family().maximal_sets()) {
    for (const NodeSet& m2 : b.family().maximal_sets()) {
      // Maximal candidate for this pair (see header derivation).
      NodeSet x = (m1 - b.ground()) | (m2 - a.ground()) | (m1 & m2);
      joined.push_back(std::move(x));
    }
  }
  RestrictedStructure out(AdversaryStructure::from_sets(joined), joint_ground);
  RMT_AUDIT_VALIDATE(out);
  return out;
}

}  // namespace rmt

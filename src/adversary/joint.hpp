// adversary/joint.hpp — lazy joint adversary structures.
//
// The paper constantly evaluates membership in joins like
//
//   Z_B = ⊕_{v ∈ B} Z^{V(γ(v))}          (§2)
//
// whose explicit antichain can blow up multiplicatively per operand. By the
// conjunction characterization (oplus.hpp, a consequence of Theorem 1 and
// associativity, Thm 13):
//
//   X ∈ ⊕_i E_i^{A_i}   ⇔   ∀i:  X ∩ A_i ∈ E_i^{A_i}
//
// so membership can be decided against the *constraint list* directly, in
// O(Σ_i |E_i|) set operations, without ever materializing the join. That is
// what JointStructure does; materialize() folds the explicit ⊕ for
// cross-validation and for small-instance tooling.
//
// This is exactly how a receiver "safely utilizes the maximal valid
// information" from other players' reported local structures: the join is
// the *largest* structure consistent with every report (Thm 1), so testing
// a candidate cut against it is sound no matter which report came from a
// liar — lies only ever shrink the honest players' options, never create
// false negatives for the true structure (Cor. 2: Z^{∪A_i} ⊆ ⊕ Z^{A_i}).
#pragma once

#include <vector>

#include "adversary/oplus.hpp"
#include "util/check.hpp"

namespace rmt {

class JointStructure {
 public:
  JointStructure() = default;

  /// Add the constraint "restricted to `ground`, the structure looks like
  /// z^ground". Typically: add_constraint(V(γ(v)), Z_v) for each v ∈ B.
  void add_constraint(const NodeSet& ground, const AdversaryStructure& z);

  /// Add a constraint whose restriction was already computed — the decider
  /// hot path prepares one RestrictedStructure per node up front and pushes
  /// copies here, skipping the per-push restrict + prune entirely.
  void add_constraint(const RestrictedStructure& c) { constraints_.push_back(c); }

  /// Remove the most recently added constraint (LIFO — the incremental
  /// connected-subset DFS pairs one pop per push). Requires non-empty.
  void pop_constraint() {
    RMT_REQUIRE(!constraints_.empty(), "pop_constraint on empty JointStructure");
    constraints_.pop_back();
  }

  void reserve(std::size_t n) { constraints_.reserve(n); }

  /// Conjunction membership test (see header). With no constraints every
  /// set is a member (the join over an empty index set is the full
  /// structure over ∅ — every X restricted to ∅ is ∅ ∈ anything monotone);
  /// callers that need a stricter default add constraints first.
  bool contains(const NodeSet& x) const;

  /// Union of constraint grounds — the ground set of the join.
  NodeSet ground() const;

  std::size_t num_constraints() const { return constraints_.size(); }

  /// Fold the explicit ⊕ over all constraints (exponential-size output
  /// possible; for tests and small tooling).
  RestrictedStructure materialize() const;

 private:
  std::vector<RestrictedStructure> constraints_;
};

}  // namespace rmt

// adversary/joint.hpp — lazy joint adversary structures.
//
// The paper constantly evaluates membership in joins like
//
//   Z_B = ⊕_{v ∈ B} Z^{V(γ(v))}          (§2)
//
// whose explicit antichain can blow up multiplicatively per operand. By the
// conjunction characterization (oplus.hpp, a consequence of Theorem 1 and
// associativity, Thm 13):
//
//   X ∈ ⊕_i E_i^{A_i}   ⇔   ∀i:  X ∩ A_i ∈ E_i^{A_i}
//
// so membership can be decided against the *constraint list* directly, in
// O(Σ_i |E_i|) set operations, without ever materializing the join. That is
// what JointStructure does; materialize() folds the explicit ⊕ for
// cross-validation and for small-instance tooling.
//
// This is exactly how a receiver "safely utilizes the maximal valid
// information" from other players' reported local structures: the join is
// the *largest* structure consistent with every report (Thm 1), so testing
// a candidate cut against it is sound no matter which report came from a
// liar — lies only ever shrink the honest players' options, never create
// false negatives for the true structure (Cor. 2: Z^{∪A_i} ⊆ ⊕ Z^{A_i}).
#pragma once

#include <deque>
#include <vector>

#include "adversary/bit_matrix.hpp"
#include "adversary/oplus.hpp"
#include "util/check.hpp"

namespace rmt {

class JointStructure {
 public:
  JointStructure() = default;

  // Move-only: the constraint list stores pointers (into owned_ for
  // copying pushes, into caller storage for add_constraint_ref), and a
  // copy would alias the source's backing store. Nothing copies joint
  // structures; moves keep deque element addresses stable.
  JointStructure(const JointStructure&) = delete;
  JointStructure& operator=(const JointStructure&) = delete;
  JointStructure(JointStructure&&) noexcept = default;
  JointStructure& operator=(JointStructure&&) noexcept = default;
  ~JointStructure() = default;

  /// Add the constraint "restricted to `ground`, the structure looks like
  /// z^ground". Typically: add_constraint(V(γ(v)), Z_v) for each v ∈ B.
  void add_constraint(const NodeSet& ground, const AdversaryStructure& z);

  /// Add a constraint whose restriction was already computed; the
  /// constraint is copied into owned storage.
  void add_constraint(const RestrictedStructure& c);

  /// Push by reference, no copy: the caller guarantees `c` outlives this
  /// constraint (until the matching pop_constraint). The decider hot path
  /// uses this with its prebuilt per-node constraints — one pointer push
  /// plus a precompiled-row append per DFS step, no allocation.
  void add_constraint_ref(const RestrictedStructure& c) {
    constraints_.push_back(&c);
    rows_.push_group(c.compiled());
  }

  /// Remove the most recently added constraint (LIFO — the incremental
  /// connected-subset DFS pairs one pop per push). Requires non-empty.
  void pop_constraint() {
    RMT_REQUIRE(!constraints_.empty(), "pop_constraint on empty JointStructure");
    rows_.pop_group();
    if (!owned_.empty() && constraints_.back() == &owned_.back()) owned_.pop_back();
    constraints_.pop_back();
  }

  void reserve(std::size_t n) {
    constraints_.reserve(n);
    rows_.reserve(n, n);
  }

  /// Conjunction membership test (see header), evaluated against the
  /// compiled forbidden rows (adversary/bit_matrix.hpp) with the SIMD
  /// kernels. With no constraints every set is a member (the join over an
  /// empty index set is the full structure over ∅ — every X restricted to
  /// ∅ is ∅ ∈ anything monotone); callers that need a stricter default add
  /// constraints first.
  bool contains(const NodeSet& x) const { return rows_.contains(x); }

  /// Batched conjunction probes: out[i] = contains(probes[i]). The decider
  /// scans call this with their per-chunk distinct candidates instead of
  /// per-candidate contains.
  void probe_batch(const NodeSet* probes, std::size_t k, bool* out) const {
    rows_.probe_batch(probes, k, out);
  }

  /// Union of constraint grounds — the ground set of the join.
  NodeSet ground() const;

  std::size_t num_constraints() const { return constraints_.size(); }

  /// Fold the explicit ⊕ over all constraints (exponential-size output
  /// possible; for tests and small tooling).
  RestrictedStructure materialize() const;

 private:
  std::vector<const RestrictedStructure*> constraints_;
  std::deque<RestrictedStructure> owned_;  // backing for the copying pushes
  ConjunctionRows rows_;                   // compiled rows, pushed/popped with constraints_
};

}  // namespace rmt

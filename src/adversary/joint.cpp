#include "adversary/joint.hpp"

namespace rmt {

void JointStructure::add_constraint(const NodeSet& ground, const AdversaryStructure& z) {
  owned_.emplace_back(z, ground);
  constraints_.push_back(&owned_.back());
  rows_.push_group(owned_.back().compiled());
}

void JointStructure::add_constraint(const RestrictedStructure& c) {
  owned_.push_back(c);
  constraints_.push_back(&owned_.back());
  rows_.push_group(owned_.back().compiled());
}



NodeSet JointStructure::ground() const {
  NodeSet g;
  for (const RestrictedStructure* c : constraints_) g |= c->ground();
  return g;
}

RestrictedStructure JointStructure::materialize() const {
  if (constraints_.empty()) {
    // Join over the empty index set: the unique structure over ∅ that
    // contains ∅ (consistent with contains(): every X ∩ ∅ = ∅ is a member).
    return RestrictedStructure(AdversaryStructure::trivial(), NodeSet{});
  }
  RestrictedStructure acc = *constraints_.front();
  for (std::size_t i = 1; i < constraints_.size(); ++i) acc = oplus(acc, *constraints_[i]);
  return acc;
}

}  // namespace rmt

#include "adversary/threshold.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"

namespace rmt {

namespace {

void k_subsets(const std::vector<NodeId>& elems, std::size_t k, std::size_t from, NodeSet& cur,
               std::vector<NodeSet>& out) {
  if (k == 0) {
    out.push_back(cur);
    return;
  }
  for (std::size_t i = from; i + k <= elems.size(); ++i) {
    cur.insert(elems[i]);
    k_subsets(elems, k - 1, i + 1, cur, out);
    cur.erase(elems[i]);
  }
}

}  // namespace

AdversaryStructure threshold_structure(const NodeSet& universe, std::size_t t) {
  const std::vector<NodeId> elems = universe.to_vector();
  RMT_REQUIRE(elems.size() <= 32, "threshold_structure: universe too large");
  if (t == 0) return AdversaryStructure::trivial();
  const std::size_t k = std::min(t, elems.size());
  std::vector<NodeSet> sets;
  NodeSet cur;
  k_subsets(elems, k, 0, cur, sets);
  return AdversaryStructure::from_sets(sets);
}

AdversaryStructure t_local_structure(const Graph& g, std::size_t t) {
  const std::vector<NodeId> elems = g.nodes().to_vector();
  RMT_REQUIRE(elems.size() <= 22, "t_local_structure: graph too large for exact enumeration");
  // Enumerate all subsets satisfying the local bound and keep the maximal
  // ones. 2^n * n checks; fine at the guarded sizes.
  std::vector<NodeSet> admissible;
  const std::size_t total = std::size_t{1} << elems.size();
  for (std::size_t mask = 0; mask < total; ++mask) {
    NodeSet s;
    for (std::size_t i = 0; i < elems.size(); ++i)
      if ((mask >> i) & 1) s.insert(elems[i]);
    bool ok = true;
    g.nodes().for_each([&](NodeId v) {
      if (ok && (s & g.closed_neighborhood(v)).size() > t) ok = false;
    });
    if (ok) admissible.push_back(std::move(s));
  }
  return AdversaryStructure::from_sets(admissible);
}

AdversaryStructure t_local_neighborhood_structure(const Graph& g, NodeId v, std::size_t t) {
  return threshold_structure(g.neighbors(v), t);
}

AdversaryStructure random_structure(const NodeSet& universe, std::size_t count,
                                    std::size_t set_size, const NodeSet& excluded, Rng& rng) {
  std::vector<NodeId> pool = (universe - excluded).to_vector();
  std::vector<NodeSet> sets;
  sets.reserve(count + 1);
  sets.push_back(NodeSet{});  // ∅ is always admissible
  const std::size_t k = std::min(set_size, pool.size());
  for (std::size_t c = 0; c < count && !pool.empty(); ++c) {
    std::shuffle(pool.begin(), pool.end(), rng.engine());
    NodeSet s;
    for (std::size_t i = 0; i < k; ++i) s.insert(pool[i]);
    sets.push_back(std::move(s));
  }
  return AdversaryStructure::from_sets(sets);
}

}  // namespace rmt

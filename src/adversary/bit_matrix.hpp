// adversary/bit_matrix.hpp — structure-of-arrays bit-matrix layouts for
// the adversary-structure scan kernels (util/simd.hpp).
//
// Two complementary layouts cover every hot membership shape:
//
//  * SubsetMatrix — the antichain of maximal sets as a column-block-major
//    word matrix (word w of row r at data[w*stride + r]) with rows
//    pre-sorted into ascending-popcount buckets. bucket_start_[p] is the
//    skip-list threshold: a candidate with popcount p starts scanning at
//    the first row with ≥ p bits, so it never touches rows provably too
//    small to contain it — the SoA successor of the sizes_[i] >= n filter
//    the AoS contains() loop used. Membership answers are exactly those
//    of the canonical antichain (debug_validate cross-checks row
//    round-trips); only scan order changes, which a boolean cannot see.
//
//  * ConjunctionRows — a LIFO stack of constraint row-groups for joint
//    membership. Constraint ⟨ground, E⟩ tests x ∩ ground ∈ E^ground; with
//    maximal sets M_j of E^ground that is ∃j: x ∩ ground ⊆ M_j, i.e.
//    ∃j: x ∩ (ground ∖ M_j) = ∅. CompiledGroup precomputes those
//    "forbidden rows" R_j = ground ∖ M_j once per constraint, so the DFS
//    push in the deciders is a plain row append — no restriction, no
//    NodeSet temporaries, no allocation after reserve. A group with no
//    rows is an unsatisfiable constraint (the empty family); a group
//    containing the empty row is always satisfied.
//
// Both layouts are derived caches: builders consume canonical NodeSet
// antichains via NodeSet::word_span() and audit validators re-derive the
// layout from the source antichain to prove the cache is in sync.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/node_set.hpp"
#include "util/check.hpp"
#include "util/simd.hpp"

namespace rmt {

/// SoA antichain: popcount-bucketed rows, column-block-major words.
class SubsetMatrix {
 public:
  /// Rebuild from a canonical antichain (sorted, duplicate-free). Rows are
  /// re-ordered by (popcount asc, canonical index asc); src index r maps a
  /// matrix row back to its antichain position.
  void build(const std::vector<NodeSet>& antichain);

  /// Drop all rows (the not-built state: contains_subset answers as for an
  /// empty antichain; owners fall back to their scalar scan).
  void clear() {
    data_.clear();
    src_.clear();
    pops_.clear();
    bucket_start_.clear();
    nrows_ = 0;
    words_ = 0;
    stride_ = 0;
  }

  std::size_t num_rows() const { return nrows_; }
  std::size_t words_per_row() const { return words_; }
  std::size_t row_stride() const { return stride_; }

  /// ∃ maximal set ⊇ x — the antichain membership kernel. Equivalent to
  /// scanning the canonical antichain with a popcount filter.
  bool contains_subset(const NodeSet& x) const {
    const NodeSet::WordSpan xs = x.word_span();
    if (xs.count == 0) return nrows_ > 0;  // ∅ is a member of any non-empty family
    if (xs.count > words_) return false;   // canonical: a high word ⇒ a high bit
    const std::size_t p = x.size();
    if (p + 1 >= bucket_start_.size()) return false;  // more bits than any row
    return simd::subset_any(xs.words, xs.count, data_.data(), stride_, bucket_start_[p], nrows_);
  }

  /// Batched membership: out[i] = contains_subset(probes[i]). One call per
  /// candidate block amortizes dispatch and keeps the row matrix hot.
  void probe_batch(const NodeSet* probes, std::size_t k, bool* out) const {
    for (std::size_t i = 0; i < k; ++i) out[i] = contains_subset(probes[i]);
  }

  /// Skip-list threshold: index of the first row with popcount ≥ p
  /// (num_rows() when no row qualifies). Exposed for tests/benches.
  std::size_t first_row_for_popcount(std::size_t p) const {
    if (p + 1 >= bucket_start_.size()) return nrows_;
    return bucket_start_[p];
  }

  /// Reconstruct matrix row r as a canonical NodeSet (audit round-trip).
  NodeSet row_as_set(std::size_t r) const;
  /// Antichain index matrix row r was built from.
  std::uint32_t row_source_index(std::size_t r) const { return src_[r]; }

  /// Deep cross-validation against the source antichain (rmt::audit):
  /// row permutation, word round-trips, popcount bucket monotonicity and
  /// skip thresholds, zeroed padding lanes. Throws audit::AuditError with
  /// component `component`.
  void debug_validate_against(const std::vector<NodeSet>& antichain, const char* component) const;

 private:
  friend struct AuditTestAccess;  // tests corrupt internals to prove detection

  std::vector<std::uint64_t> data_;          // data_[w*stride_ + r]
  std::vector<std::uint32_t> src_;           // matrix row -> antichain index
  std::vector<std::uint32_t> pops_;          // row popcounts, ascending
  std::vector<std::uint32_t> bucket_start_;  // [p] = first row with popcount >= p
  std::size_t nrows_ = 0;
  std::size_t words_ = 0;   // word blocks per row
  std::size_t stride_ = 0;  // rows padded to the lane multiple
};

/// Precompiled forbidden rows of one conjunction constraint (see header
/// comment): R_j = ground ∖ M_j, deduplicated and domination-pruned
/// (R' ⊆ R makes R redundant: x ∩ R = ∅ already implies x ∩ R' = ∅).
struct CompiledGroup {
  std::vector<std::uint64_t> rows;  // row-major, row_words words per row
  std::size_t row_words = 0;
  std::size_t count = 0;

  static CompiledGroup complement(const NodeSet& ground, const std::vector<NodeSet>& antichain);
};

/// LIFO stack of conjunction groups with a fused probe kernel. Row storage
/// is row-major with a grow-only stride; at one word per row (every exact
/// decider workload: kMaxExactNodes = 26) that is the degenerate
/// column-block layout the vector kernels consume directly.
class ConjunctionRows {
 public:
  void clear() {
    rows_.clear();
    groups_.clear();
    words_ = 1;
  }

  void reserve(std::size_t groups, std::size_t rows) {
    groups_.reserve(groups);
    rows_.reserve(rows * words_);
  }

  void push_group(const CompiledGroup& g) {
    if (g.row_words == words_) {
      // Matching stride (every exact-decider push): the compiled rows are
      // already in wire format — one range append, no zero-fill pass.
      const auto begin = static_cast<std::uint32_t>(rows_.size() / words_);
      rows_.insert(rows_.end(), g.rows.begin(), g.rows.end());
      groups_.push_back({begin, static_cast<std::uint32_t>(begin + g.count)});
      return;
    }
    push_group_restride(g);
  }

  void pop_group() {
    RMT_REQUIRE(!groups_.empty(), "pop_group on empty ConjunctionRows");
    rows_.resize(static_cast<std::size_t>(groups_.back().begin) * words_);
    groups_.pop_back();
  }

  std::size_t num_groups() const { return groups_.size(); }
  std::size_t num_rows() const { return rows_.size() / words_; }
  std::size_t words_per_row() const { return words_; }

  /// True iff every group has a row disjoint from x — the conjunction
  /// membership ∀i: x ∩ A_i ∈ E_i^{A_i} over the compiled rows.
  bool contains(const NodeSet& x) const {
    if (words_ == 1) {
      const NodeSet::WordSpan xs = x.word_span();
      const std::uint64_t x0 = xs.count != 0 ? xs.words[0] : 0;
      return simd::conjunction_probe_w1(x0, rows_.data(), groups_.data(), groups_.size());
    }
    return contains_wide(x);
  }

  /// Batched conjunction probes: out[i] = contains(probes[i]).
  void probe_batch(const NodeSet* probes, std::size_t k, bool* out) const {
    for (std::size_t i = 0; i < k; ++i) out[i] = contains(probes[i]);
  }

 private:
  void push_group_restride(const CompiledGroup& g);
  bool contains_wide(const NodeSet& x) const;

  std::vector<std::uint64_t> rows_;      // row-major, stride words_
  std::vector<simd::RowRange> groups_;
  std::size_t words_ = 1;
};

}  // namespace rmt

// adversary/oplus.hpp — the joint-view operation ⊕ on adversary structures
// (paper §2, Definition 2, Appendix A).
//
//   E^A ⊕ F^B = { Z₁ ∪ Z₂ | Z₁ ∈ E^A, Z₂ ∈ F^B, Z₁ ∩ B = Z₂ ∩ A }
//
// The computational key (derived from Theorem 1 / Corollary 2, proved in
// the antichain construction below) is the *conjunction characterization*:
// for X ⊆ A ∪ B,
//
//   X ∈ E^A ⊕ F^B   ⇔   X ∩ A ∈ E^A  and  X ∩ B ∈ F^B.
//
// (⇐) take Z₁ = X∩A, Z₂ = X∩B: they agree on A∩B and unite to X.
// (⇒) if X = Z₁∪Z₂ with Z₁∩B = Z₂∩A then X∩A = Z₁ ∪ (Z₂∩A) = Z₁ since
//     Z₂∩A = Z₁∩B ⊆ Z₁, and symmetrically X∩B = Z₂.
//
// Consequently the maximal sets of the join, for maximal M₁ ∈ E^A and
// M₂ ∈ F^B, are X(M₁,M₂) = (M₁∖B) ∪ (M₂∖A) ∪ (M₁∩M₂): inside A∩B a node
// must sit in both, inside A∖B in M₁, inside B∖A in M₂. The antichain of
// the join is the pruned set of all such X(M₁,M₂) — an O(|E|·|F|) exact
// materialization used by the algebra tests. Protocol code uses the lazy
// conjunction form instead (joint.hpp) which never materializes.
#pragma once

#include <string>

#include "adversary/bit_matrix.hpp"
#include "adversary/structure.hpp"

namespace rmt {

/// An adversary structure together with the node set it is a structure
/// *over* — the object the ⊕ algebra is defined on ("(E, A) ∈ S" in
/// Theorem 15). Invariant: every admissible set is a subset of `ground`.
class RestrictedStructure {
 public:
  RestrictedStructure() = default;

  /// Restrict `z` to `ground`: carries Z^ground over ground.
  RestrictedStructure(const AdversaryStructure& z, NodeSet ground);

  const AdversaryStructure& family() const { return family_; }
  const NodeSet& ground() const { return ground_; }

  bool contains(const NodeSet& x) const { return family_.contains(x); }

  /// The constraint's precompiled forbidden rows ground ∖ M (see
  /// adversary/bit_matrix.hpp): x ∩ ground ∈ family ⇔ some row is disjoint
  /// from x. Built once at construction; JointStructure pushes reference
  /// this instead of copying the whole structure.
  const CompiledGroup& compiled() const { return compiled_; }

  /// Semilattice equality: same ground set and same family.
  friend bool operator==(const RestrictedStructure& a, const RestrictedStructure& b) {
    return a.ground_ == b.ground_ && a.family_ == b.family_;
  }

  std::string to_string() const;

  /// Deep invariant check (rmt::audit): the family is canonical and every
  /// admissible set lies inside `ground`. Throws audit::AuditError.
  void debug_validate() const;

 private:
  friend struct AuditTestAccess;  // tests corrupt internals to prove detection

  AdversaryStructure family_;
  NodeSet ground_;
  CompiledGroup compiled_;  // derived cache; debug_validate re-derives it
};

/// The ⊕ join of Definition 2, materialized exactly on antichains.
RestrictedStructure oplus(const RestrictedStructure& a, const RestrictedStructure& b);

}  // namespace rmt

// adversary/threshold.hpp — builders for the classical adversary models the
// general model subsumes (§1: global threshold [10], t-local [8]), plus
// random general structures for the experiment harness.
#pragma once

#include "adversary/structure.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace rmt {

/// Global threshold model: every set of at most t nodes from `universe` is
/// corruptible. Maximal sets are the C(|universe|, t) t-subsets, so this is
/// intended for small universes (guarded).
AdversaryStructure threshold_structure(const NodeSet& universe, std::size_t t);

/// t-locally bounded model (Koo [8]): admissible sets are those with at
/// most t corruptions in the *closed* neighborhood of every node of g.
/// Computed exactly by maximal-set search; exponential, guarded to small n.
AdversaryStructure t_local_structure(const Graph& g, std::size_t t);

/// The *local* adversary structure a node v uses in the ad hoc t-local
/// model without global computation: subsets of N(v) of size <= t.
AdversaryStructure t_local_neighborhood_structure(const Graph& g, NodeId v, std::size_t t);

/// Random general structure: `count` maximal sets, each a uniform subset of
/// `universe` of size exactly `set_size` (clamped to |universe|); never
/// includes `excluded` nodes (use for keeping D and R honest, the standard
/// assumption for RMT feasibility statements).
AdversaryStructure random_structure(const NodeSet& universe, std::size_t count,
                                    std::size_t set_size, const NodeSet& excluded, Rng& rng);

}  // namespace rmt

#include "adversary/bit_matrix.hpp"

#include <algorithm>
#include <numeric>
#include <string>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/audit.hpp"

namespace rmt {

namespace {

// Rows are padded to a full vector chunk so the column stride is uniform;
// padding lanes stay zero (a zero row can never be a superset of a
// non-empty candidate, and the kernels only scan [bucket, nrows) anyway).
constexpr std::size_t kRowPad = 8;

std::size_t padded_rows(std::size_t n) { return (n + kRowPad - 1) / kRowPad * kRowPad; }

}  // namespace

void SubsetMatrix::build(const std::vector<NodeSet>& antichain) {
  RMT_OBS_SCOPE("adversary.matrix_build");
  nrows_ = antichain.size();
  src_.resize(nrows_);
  pops_.resize(nrows_);
  words_ = 0;
  if (nrows_ == 0) {
    stride_ = 0;
    data_.clear();
    bucket_start_.assign(1, 0);
    return;
  }
  std::iota(src_.begin(), src_.end(), 0u);
  std::vector<std::uint32_t> pop_of(nrows_);
  for (std::size_t i = 0; i < nrows_; ++i) {
    pop_of[i] = static_cast<std::uint32_t>(antichain[i].size());
    words_ = std::max(words_, antichain[i].word_span().count);
  }
  // Popcount buckets: ascending popcount, canonical antichain order within
  // a bucket (stable); membership is order-independent, so only the skip
  // threshold semantics matter. Counting sort — popcounts are tiny, and a
  // comparison sort here would dominate the per-restriction build cost.
  std::uint32_t max_pop_of = 0;
  for (std::size_t i = 0; i < nrows_; ++i) max_pop_of = std::max(max_pop_of, pop_of[i]);
  if (!std::is_sorted(pop_of.begin(), pop_of.end())) {
    std::vector<std::uint32_t> slot(max_pop_of + 2, 0);  // slot[p]: next row for popcount p
    for (std::size_t i = 0; i < nrows_; ++i) ++slot[pop_of[i] + 1];
    for (std::size_t b = 1; b < slot.size(); ++b) slot[b] += slot[b - 1];
    for (std::size_t i = 0; i < nrows_; ++i)
      src_[slot[pop_of[i]]++] = static_cast<std::uint32_t>(i);
  }
  stride_ = padded_rows(nrows_);
  data_.assign(words_ * stride_, 0);
  for (std::size_t r = 0; r < nrows_; ++r) {
    pops_[r] = pop_of[src_[r]];
    const NodeSet::WordSpan ws = antichain[src_[r]].word_span();
    for (std::size_t w = 0; w < ws.count; ++w) data_[w * stride_ + r] = ws.words[w];
  }
  const std::size_t max_pop = pops_.back();
  bucket_start_.assign(max_pop + 2, static_cast<std::uint32_t>(nrows_));
  for (std::size_t r = nrows_; r-- > 0;)
    for (std::size_t p = 0; p <= pops_[r]; ++p)
      bucket_start_[p] = static_cast<std::uint32_t>(r);
  if (obs::enabled()) obs::Registry::global().counter("structure.matrix_builds").inc();
}

NodeSet SubsetMatrix::row_as_set(std::size_t r) const {
  RMT_REQUIRE(r < nrows_, "SubsetMatrix::row_as_set: row out of range");
  NodeSet out;
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t bits = data_[w * stride_ + r];
    while (bits != 0) {
      const int b = __builtin_ctzll(bits);
      out.insert(static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b)));
      bits &= bits - 1;
    }
  }
  return out;
}

void SubsetMatrix::debug_validate_against(const std::vector<NodeSet>& antichain,
                                          const char* component) const {
  if (nrows_ != antichain.size())
    audit::detail::fail(component, "bit matrix row count " + std::to_string(nrows_) +
                                       " != antichain size " + std::to_string(antichain.size()));
  if (nrows_ == 0) {
    // Never-built (default) and built-empty states are both valid: the
    // skip table is absent or the single sentinel 0, and no row storage.
    if (!data_.empty() || bucket_start_.size() > 1 ||
        (bucket_start_.size() == 1 && bucket_start_[0] != 0))
      audit::detail::fail(component, "empty bit matrix carries stale data");
    return;
  }
  if (stride_ < nrows_ || data_.size() != words_ * stride_)
    audit::detail::fail(component, "bit matrix storage geometry inconsistent: stride " +
                                       std::to_string(stride_) + ", rows " +
                                       std::to_string(nrows_) + ", words " +
                                       std::to_string(words_));
  std::vector<bool> hit(nrows_, false);
  for (std::size_t r = 0; r < nrows_; ++r) {
    if (src_[r] >= nrows_ || hit[src_[r]])
      audit::detail::fail(component,
                          "bit matrix source map is not a permutation of the antichain");
    hit[src_[r]] = true;
    // The load-bearing check: every matrix row must round-trip to its
    // canonical source set bit for bit, or contains() silently diverges
    // from the antichain definition.
    const NodeSet round_trip = row_as_set(r);
    if (!(round_trip == antichain[src_[r]]))
      audit::detail::fail(component, "bit matrix row " + std::to_string(r) +
                                         " does not round-trip: " + round_trip.to_string() +
                                         " != " + antichain[src_[r]].to_string());
    if (pops_[r] != antichain[src_[r]].size())
      audit::detail::fail(component,
                          "bit matrix popcount wrong for row " + std::to_string(r));
    if (r > 0 && pops_[r] < pops_[r - 1])
      audit::detail::fail(component, "bit matrix rows not sorted by popcount at row " +
                                         std::to_string(r));
  }
  for (std::size_t p = 0; p < bucket_start_.size(); ++p) {
    std::size_t expect = nrows_;
    for (std::size_t r = 0; r < nrows_; ++r) {
      if (pops_[r] >= p) {
        expect = r;
        break;
      }
    }
    if (bucket_start_[p] != expect)
      audit::detail::fail(component, "bit matrix skip threshold wrong for popcount " +
                                         std::to_string(p));
  }
  if (bucket_start_.size() != static_cast<std::size_t>(pops_.back()) + 2)
    audit::detail::fail(component, "bit matrix skip table has wrong length");
  for (std::size_t w = 0; w < words_; ++w)
    for (std::size_t r = nrows_; r < stride_; ++r)
      if (data_[w * stride_ + r] != 0)
        audit::detail::fail(component, "bit matrix padding lane not zero at row " +
                                           std::to_string(r));
}

CompiledGroup CompiledGroup::complement(const NodeSet& ground,
                                        const std::vector<NodeSet>& antichain) {
  CompiledGroup g;
  // Dedup + domination-prune on the NodeSet level first: distinct maximal
  // sets can leave identical or nested complements inside `ground`.
  std::vector<NodeSet> kept;
  kept.reserve(antichain.size());
  for (const NodeSet& m : antichain) {
    NodeSet r = ground;
    r -= m;
    bool redundant = false;
    for (std::size_t i = 0; i < kept.size(); ++i) {
      if (kept[i].is_subset_of(r)) {
        redundant = true;  // an existing row already implies this one
        break;
      }
    }
    if (redundant) continue;
    std::erase_if(kept, [&](const NodeSet& k) { return r.is_subset_of(k); });
    kept.push_back(std::move(r));
  }
  std::sort(kept.begin(), kept.end());
  for (const NodeSet& r : kept) g.row_words = std::max(g.row_words, r.word_span().count);
  g.count = kept.size();
  g.rows.assign(g.count * g.row_words, 0);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    const NodeSet::WordSpan ws = kept[i].word_span();
    for (std::size_t w = 0; w < ws.count; ++w) g.rows[i * g.row_words + w] = ws.words[w];
  }
  return g;
}

void ConjunctionRows::push_group_restride(const CompiledGroup& g) {
  if (g.row_words > words_) {
    // Restride (cold: only when a wider ground arrives). Grow-only, so the
    // exact deciders — one word per row throughout — never take this path.
    const std::size_t old_words = words_;
    const std::size_t nrows = rows_.size() / old_words;
    std::vector<std::uint64_t> wide(nrows * g.row_words, 0);
    for (std::size_t r = 0; r < nrows; ++r)
      for (std::size_t w = 0; w < old_words; ++w)
        wide[r * g.row_words + w] = rows_[r * old_words + w];
    rows_ = std::move(wide);
    words_ = g.row_words;
  }
  const auto begin = static_cast<std::uint32_t>(rows_.size() / words_);
  rows_.resize(rows_.size() + g.count * words_, 0);
  for (std::size_t i = 0; i < g.count; ++i)
    for (std::size_t w = 0; w < g.row_words; ++w)
      rows_[(begin + i) * words_ + w] = g.rows[i * g.row_words + w];
  groups_.push_back(
      {begin, static_cast<std::uint32_t>(begin + g.count)});
}

bool ConjunctionRows::contains_wide(const NodeSet& x) const {
  const NodeSet::WordSpan xs = x.word_span();
  const std::size_t nw = std::min(xs.count, words_);
  for (const simd::RowRange& g : groups_) {
    bool satisfied = false;
    for (std::uint32_t r = g.begin; r < g.end && !satisfied; ++r) {
      std::uint64_t overlap = 0;
      for (std::size_t w = 0; w < nw; ++w) overlap |= xs.words[w] & rows_[r * words_ + w];
      satisfied = overlap == 0;
    }
    if (!satisfied) return false;
  }
  return true;
}

}  // namespace rmt

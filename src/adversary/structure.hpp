// adversary/structure.hpp — monotone adversary structures (Hirt–Maurer).
//
// An adversary structure Z over the player set is a *monotone* family of
// node sets: if Z ∈ Z and Z' ⊆ Z then Z' ∈ Z (§1.3). We represent a
// structure by the antichain of its *maximal* sets, which is the standard
// compact encoding: membership is "is X a subset of some maximal set", and
// all of the paper's operations (restriction E^A, family union, the ⊕
// join) have exact antichain implementations.
//
// A structure does not carry a ground set — it is a family of subsets of
// the global id space, mirroring the paper where restrictions E^A are
// written against explicit node sets A. RestrictedStructure (oplus.hpp)
// pairs a structure with its ground set where the ⊕ algebra needs one.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "adversary/bit_matrix.hpp"
#include "graph/node_set.hpp"

namespace rmt {

class AdversaryStructure {
 public:
  /// The empty *family* — contains no set at all, not even ∅. Distinct from
  /// trivial(): a protocol-facing structure should contain ∅ ("corrupt
  /// nobody" is always admissible); Instance validation enforces that.
  AdversaryStructure() = default;

  /// The family {∅}: adversary present but unable to corrupt anyone.
  static AdversaryStructure trivial();

  /// Build from any generating collection; the result is the monotone
  /// closure (non-maximal and duplicate generators are pruned away).
  static AdversaryStructure from_sets(const std::vector<NodeSet>& sets);

  /// Add one admissible set (and implicitly all its subsets).
  void add(const NodeSet& s);

  /// Antichains at least this large get the SoA bit matrix built for
  /// contains(); smaller families scan maximal_ directly — the build cost
  /// (allocations + fills) never amortizes on the per-B restrictions the
  /// deciders churn through, which have a handful of maximal sets.
  static constexpr std::size_t kMatrixBuildRows = 8;

  /// Membership: X ∈ Z iff X is a subset of some maximal set.
  bool contains(const NodeSet& x) const;

  /// Batched membership: out[i] = contains(probes[i]). One call per
  /// candidate block keeps the bit matrix hot across probes.
  void probe_batch(const NodeSet* probes, std::size_t k, bool* out) const;

  /// The SoA bit-matrix view of the antichain (bit_matrix.hpp) that
  /// contains() scans. Exposed for benches/tests.
  const SubsetMatrix& matrix() const { return matrix_; }

  /// The antichain of maximal sets, canonically sorted. An empty vector
  /// means the empty family.
  const std::vector<NodeSet>& maximal_sets() const { return maximal_; }

  bool empty_family() const { return maximal_.empty(); }
  std::size_t num_maximal_sets() const { return maximal_.size(); }

  /// Largest cardinality among maximal sets (0 for trivial/empty family).
  std::size_t max_corruption_size() const;

  /// Restriction Z^A = {Z ∩ A : Z ∈ Z} (§2). Monotone again; computed by
  /// intersecting the maximal sets and re-pruning.
  AdversaryStructure restricted_to(const NodeSet& a) const;

  /// Family union Z ∪ Z' (used e.g. in the Thm-8 adversary construction
  /// Z' = {...} ∪ {C₂}).
  AdversaryStructure united_with(const AdversaryStructure& o) const;

  /// All nodes mentioned by some admissible set. Cached: O(1).
  const NodeSet& support() const { return support_; }

  /// Exact equality of the represented monotone families (antichain
  /// comparison; canonical sorting makes this a vector compare).
  friend bool operator==(const AdversaryStructure& a, const AdversaryStructure& b) {
    return a.maximal_ == b.maximal_;
  }

  /// Enumerate every member set exactly once (exponential: |members| can be
  /// 2^|max set|; intended for tests on small structures). `visit` returning
  /// false stops the enumeration; returns false iff stopped.
  bool enumerate_members(const std::function<bool(const NodeSet&)>& visit) const;

  std::string to_string() const;

  /// Deep invariant check (rmt::audit): the representation really is the
  /// canonical antichain — strictly ascending (hence duplicate-free), no
  /// set contained in another, every member canonical. Throws
  /// audit::AuditError.
  void debug_validate() const;

 private:
  friend struct AuditTestAccess;  // tests corrupt internals to prove detection

  void prune_and_sort();
  void rebuild_cache();

  std::vector<NodeSet> maximal_;  // canonical: antichain, sorted ascending
  // Membership-test accelerators, derived from maximal_ (debug_validate
  // checks consistency): the support union rejects any probe with a node
  // outside ∪Z in one word-parallel subset test, the popcount cache skips
  // maximal sets too small to contain the probe, and the bit matrix is the
  // SoA layout the SIMD subset kernel scans.
  NodeSet support_;
  std::vector<std::uint32_t> sizes_;  // sizes_[i] == maximal_[i].size()
  SubsetMatrix matrix_;               // popcount-bucketed SoA antichain
};

}  // namespace rmt

#include "adversary/structure.hpp"

#include <algorithm>
#include <unordered_set>

#include "obs/timer.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace rmt {

AdversaryStructure AdversaryStructure::trivial() {
  AdversaryStructure z;
  z.maximal_.push_back(NodeSet{});
  return z;
}

AdversaryStructure AdversaryStructure::from_sets(const std::vector<NodeSet>& sets) {
  AdversaryStructure z;
  z.maximal_ = sets;
  z.prune_and_sort();
  return z;
}

void AdversaryStructure::add(const NodeSet& s) {
  if (contains(s)) return;
  maximal_.push_back(s);
  prune_and_sort();
}

bool AdversaryStructure::contains(const NodeSet& x) const {
  for (const NodeSet& m : maximal_)
    if (x.is_subset_of(m)) return true;
  return false;
}

std::size_t AdversaryStructure::max_corruption_size() const {
  std::size_t best = 0;
  for (const NodeSet& m : maximal_) best = std::max(best, m.size());
  return best;
}

AdversaryStructure AdversaryStructure::restricted_to(const NodeSet& a) const {
  RMT_OBS_SCOPE("adversary.restrict");
  RMT_AUDIT_VALIDATE(*this);
  AdversaryStructure out;
  out.maximal_.reserve(maximal_.size());
  for (const NodeSet& m : maximal_) out.maximal_.push_back(m & a);
  out.prune_and_sort();
  RMT_AUDIT_VALIDATE(out);
  return out;
}

AdversaryStructure AdversaryStructure::united_with(const AdversaryStructure& o) const {
  AdversaryStructure out;
  out.maximal_ = maximal_;
  out.maximal_.insert(out.maximal_.end(), o.maximal_.begin(), o.maximal_.end());
  out.prune_and_sort();
  return out;
}

NodeSet AdversaryStructure::support() const {
  NodeSet s;
  for (const NodeSet& m : maximal_) s |= m;
  return s;
}

bool AdversaryStructure::enumerate_members(
    const std::function<bool(const NodeSet&)>& visit) const {
  std::unordered_set<NodeSet> seen;
  // Enumerate subsets of each maximal set; dedupe across overlapping
  // maximal sets.
  for (const NodeSet& m : maximal_) {
    const std::vector<NodeId> elems = m.to_vector();
    RMT_REQUIRE(elems.size() <= 24, "enumerate_members: maximal set too large to enumerate");
    const std::size_t total = std::size_t{1} << elems.size();
    for (std::size_t mask = 0; mask < total; ++mask) {
      NodeSet sub;
      for (std::size_t i = 0; i < elems.size(); ++i)
        if ((mask >> i) & 1) sub.insert(elems[i]);
      if (seen.insert(sub).second) {
        if (!visit(sub)) return false;
      }
    }
  }
  return true;
}

void AdversaryStructure::debug_validate() const {
  for (std::size_t i = 0; i < maximal_.size(); ++i) {
    maximal_[i].debug_validate();
    if (i > 0 && !(maximal_[i - 1] < maximal_[i]))
      audit::detail::fail("adversary",
                          "maximal sets not in strict canonical order at index " +
                              std::to_string(i) + ": " + maximal_[i - 1].to_string() +
                              " !< " + maximal_[i].to_string());
    for (std::size_t j = 0; j < maximal_.size(); ++j)
      if (i != j && maximal_[i].is_subset_of(maximal_[j]))
        audit::detail::fail("adversary", "antichain violated: " + maximal_[i].to_string() +
                                             " ⊆ " + maximal_[j].to_string());
  }
}

std::string AdversaryStructure::to_string() const {
  std::string out = "Z[max: ";
  for (std::size_t i = 0; i < maximal_.size(); ++i) {
    if (i) out += ", ";
    out += maximal_[i].to_string();
  }
  return out + "]";
}

void AdversaryStructure::prune_and_sort() {
  // Remove any set contained in another; canonicalize order.
  std::sort(maximal_.begin(), maximal_.end());
  maximal_.erase(std::unique(maximal_.begin(), maximal_.end()), maximal_.end());
  std::vector<NodeSet> keep;
  keep.reserve(maximal_.size());
  for (std::size_t i = 0; i < maximal_.size(); ++i) {
    bool dominated = false;
    // Strict containment only: duplicates were removed above, so
    // is_subset_of between distinct entries means proper subset.
    for (std::size_t j = 0; j < maximal_.size() && !dominated; ++j)
      if (i != j && maximal_[i].is_subset_of(maximal_[j])) dominated = true;
    if (!dominated) keep.push_back(maximal_[i]);
  }
  maximal_ = std::move(keep);
}

}  // namespace rmt

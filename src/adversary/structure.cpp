#include "adversary/structure.hpp"

#include <algorithm>
#include <unordered_set>

#include "obs/timer.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace rmt {

AdversaryStructure AdversaryStructure::trivial() {
  AdversaryStructure z;
  z.maximal_.push_back(NodeSet{});
  z.rebuild_cache();
  return z;
}

AdversaryStructure AdversaryStructure::from_sets(const std::vector<NodeSet>& sets) {
  AdversaryStructure z;
  z.maximal_ = sets;
  z.prune_and_sort();
  return z;
}

void AdversaryStructure::add(const NodeSet& s) {
  // Single incremental domination pass: one sweep decides membership (s is
  // dominated ⇒ no-op), evicts the sets s strictly dominates, and finds the
  // sorted insertion point — no re-sort, no quadratic re-prune. The popcount
  // cache filters both directions: only strictly larger sets can dominate s,
  // only sets no larger can be dominated by it.
  const std::size_t n = s.size();
  for (std::size_t i = 0; i < maximal_.size(); ++i)
    if (sizes_[i] >= n && s.is_subset_of(maximal_[i])) return;
  std::size_t w = 0;
  for (std::size_t i = 0; i < maximal_.size(); ++i) {
    if (sizes_[i] <= n && maximal_[i].is_subset_of(s)) continue;  // dominated by s
    if (w != i) maximal_[w] = std::move(maximal_[i]);
    ++w;
  }
  maximal_.resize(w);
  maximal_.insert(std::lower_bound(maximal_.begin(), maximal_.end(), s), s);
  rebuild_cache();
}

bool AdversaryStructure::contains(const NodeSet& x) const {
  if (!x.is_subset_of(support_)) return false;
  if (matrix_.num_rows() != 0) return matrix_.contains_subset(x);
  // Below kMatrixBuildRows the matrix is not built; the popcount-filtered
  // scan over the canonical antichain answers identically.
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < maximal_.size(); ++i)
    if (sizes_[i] >= n && x.is_subset_of(maximal_[i])) return true;
  return false;
}

void AdversaryStructure::probe_batch(const NodeSet* probes, std::size_t k, bool* out) const {
  for (std::size_t i = 0; i < k; ++i) out[i] = contains(probes[i]);
}

std::size_t AdversaryStructure::max_corruption_size() const {
  std::size_t best = 0;
  for (const NodeSet& m : maximal_) best = std::max(best, m.size());
  return best;
}

AdversaryStructure AdversaryStructure::restricted_to(const NodeSet& a) const {
  RMT_OBS_SCOPE("adversary.restrict");
  RMT_AUDIT_VALIDATE(*this);
  AdversaryStructure out;
  if (a.size() <= 8) {
    // Small ground (the per-node views the deciders restrict to): the
    // intersections collapse onto a few distinct sets, so an incremental
    // antichain insert dedupes as it goes — no collect-then-sort over the
    // full source antichain. Same maximal family, same canonical order.
    std::vector<NodeSet>& kept = out.maximal_;
    kept.reserve(16);
    for (const NodeSet& m : maximal_) {
      NodeSet r = m & a;
      bool dominated = false;
      for (const NodeSet& k : kept) {
        if (r.is_subset_of(k)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      std::erase_if(kept, [&](const NodeSet& k) { return k.is_subset_of(r); });
      kept.push_back(std::move(r));
    }
    std::sort(kept.begin(), kept.end());
    out.rebuild_cache();
  } else {
    out.maximal_.reserve(maximal_.size());
    for (const NodeSet& m : maximal_) out.maximal_.push_back(m & a);
    out.prune_and_sort();
  }
  RMT_AUDIT_VALIDATE(out);
  return out;
}

AdversaryStructure AdversaryStructure::united_with(const AdversaryStructure& o) const {
  AdversaryStructure out;
  out.maximal_ = maximal_;
  out.maximal_.insert(out.maximal_.end(), o.maximal_.begin(), o.maximal_.end());
  out.prune_and_sort();
  return out;
}


bool AdversaryStructure::enumerate_members(
    const std::function<bool(const NodeSet&)>& visit) const {
  std::unordered_set<NodeSet> seen;
  // Enumerate subsets of each maximal set; dedupe across overlapping
  // maximal sets.
  for (const NodeSet& m : maximal_) {
    const std::vector<NodeId> elems = m.to_vector();
    RMT_REQUIRE(elems.size() <= 24, "enumerate_members: maximal set too large to enumerate");
    const std::size_t total = std::size_t{1} << elems.size();
    for (std::size_t mask = 0; mask < total; ++mask) {
      NodeSet sub;
      for (std::size_t i = 0; i < elems.size(); ++i)
        if ((mask >> i) & 1) sub.insert(elems[i]);
      if (seen.insert(sub).second) {
        if (!visit(sub)) return false;
      }
    }
  }
  return true;
}

void AdversaryStructure::debug_validate() const {
  for (std::size_t i = 0; i < maximal_.size(); ++i) {
    maximal_[i].debug_validate();
    if (i > 0 && !(maximal_[i - 1] < maximal_[i]))
      audit::detail::fail("adversary",
                          "maximal sets not in strict canonical order at index " +
                              std::to_string(i) + ": " + maximal_[i - 1].to_string() +
                              " !< " + maximal_[i].to_string());
    for (std::size_t j = 0; j < maximal_.size(); ++j)
      if (i != j && maximal_[i].is_subset_of(maximal_[j]))
        audit::detail::fail("adversary", "antichain violated: " + maximal_[i].to_string() +
                                             " ⊆ " + maximal_[j].to_string());
  }
  // The membership accelerators must mirror maximal_ exactly — a stale
  // cache silently mis-answers contains().
  if (sizes_.size() != maximal_.size())
    audit::detail::fail("adversary", "popcount cache out of sync: " + std::to_string(sizes_.size()) +
                                         " entries for " + std::to_string(maximal_.size()) +
                                         " maximal sets");
  NodeSet expect_support;
  for (std::size_t i = 0; i < maximal_.size(); ++i) {
    if (sizes_[i] != maximal_[i].size())
      audit::detail::fail("adversary", "popcount cache wrong at index " + std::to_string(i) +
                                           " for " + maximal_[i].to_string());
    expect_support |= maximal_[i];
  }
  if (!(expect_support == support_))
    audit::detail::fail("adversary", "support cache " + support_.to_string() +
                                         " != union of maximal sets " + expect_support.to_string());
  // Built matrices must round-trip to the antichain; a missing matrix on an
  // antichain past the build threshold is itself a stale cache (the
  // row-count check inside fails it).
  if (matrix_.num_rows() != 0 || maximal_.size() >= kMatrixBuildRows)
    matrix_.debug_validate_against(maximal_, "adversary");
}

std::string AdversaryStructure::to_string() const {
  std::string out = "Z[max: ";
  for (std::size_t i = 0; i < maximal_.size(); ++i) {
    if (i) out += ", ";
    out += maximal_[i].to_string();
  }
  return out + "]";
}

void AdversaryStructure::prune_and_sort() {
  // Remove any set contained in another; canonicalize order.
  std::sort(maximal_.begin(), maximal_.end());
  maximal_.erase(std::unique(maximal_.begin(), maximal_.end()), maximal_.end());
  // Domination pass, popcount-bucketed: duplicates are gone, so containment
  // between distinct entries is strict and only a strictly *larger* set can
  // dominate. Checking each set against the larger-size suffix of a
  // size-descending index order skips every same-or-smaller candidate —
  // on threshold-style antichains (all sets the same size) the quadratic
  // subset sweep disappears entirely.
  const std::size_t k = maximal_.size();
  if (k <= 1) {  // nothing can dominate; skip the index machinery
    rebuild_cache();
    return;
  }
  std::vector<std::uint32_t> size_of(k);
  for (std::size_t i = 0; i < k; ++i) size_of[i] = static_cast<std::uint32_t>(maximal_[i].size());
  // Order indices by size descending with a counting sort: sizes are tiny
  // integers (≤ the universe), and the comparison sort here was the single
  // largest cost of the deciders' per-B restrictions. Bucket fill order is
  // by ascending index, so the order is stable within a size.
  std::uint32_t max_sz = 0;
  for (std::size_t i = 0; i < k; ++i) max_sz = std::max(max_sz, size_of[i]);
  std::vector<std::uint32_t> slot(max_sz + 2, 0);  // slot[max_sz - s]: next index for size s
  for (std::size_t i = 0; i < k; ++i) ++slot[max_sz - size_of[i] + 1];
  for (std::size_t b = 1; b < slot.size(); ++b) slot[b] += slot[b - 1];
  std::vector<std::uint32_t> by_size_desc(k);
  for (std::size_t i = 0; i < k; ++i)
    by_size_desc[slot[max_sz - size_of[i]]++] = static_cast<std::uint32_t>(i);
  std::vector<NodeSet> keep;
  keep.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    bool dominated = false;
    for (std::uint32_t j : by_size_desc) {
      if (size_of[j] <= size_of[i]) break;  // descending: no dominator past here
      if (maximal_[i].is_subset_of(maximal_[j])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) keep.push_back(maximal_[i]);
  }
  maximal_ = std::move(keep);
  rebuild_cache();
}

void AdversaryStructure::rebuild_cache() {
  support_.clear();
  sizes_.resize(maximal_.size());
  for (std::size_t i = 0; i < maximal_.size(); ++i) {
    support_ |= maximal_[i];
    sizes_[i] = static_cast<std::uint32_t>(maximal_[i].size());
  }
  if (maximal_.size() >= kMatrixBuildRows)
    matrix_.build(maximal_);
  else
    matrix_.clear();
}

}  // namespace rmt

#include "protocols/runner.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace rmt::protocols {

namespace {

/// Fold one run's NetworkStats into the global "sim.*" counters, so any
/// driver that enables observability gets aggregate simulator totals in
/// its registry snapshot without threading stats by hand.
void publish_sim_counters(const sim::NetworkStats& s) {
  if (!obs::enabled()) return;
  auto& reg = obs::Registry::global();
  reg.counter("sim.runs").inc();
  reg.counter("sim.rounds").inc(s.rounds);
  reg.counter("sim.honest_messages").inc(s.honest_messages);
  reg.counter("sim.adversary_messages").inc(s.adversary_messages);
  reg.counter("sim.adversary_dropped").inc(s.adversary_dropped);
  reg.counter("sim.honest_payload_bytes").inc(s.honest_payload_bytes);
  reg.counter("sim.adversary_payload_bytes").inc(s.adversary_payload_bytes);
  reg.histogram("sim.peak_round_messages").observe(double(s.peak_round_messages));
}

std::vector<std::unique_ptr<sim::ProtocolNode>> build_nodes(const Instance& inst,
                                                            const Protocol& proto,
                                                            Value dealer_value,
                                                            const NodeSet& corruption,
                                                            NodeId receiver_label) {
  std::vector<std::unique_ptr<sim::ProtocolNode>> nodes(inst.graph().capacity());
  inst.graph().nodes().for_each([&](NodeId v) {
    if (corruption.contains(v)) return;
    PublicInfo pub;
    pub.dealer = inst.dealer();
    pub.receiver = receiver_label;
    if (v == inst.dealer()) pub.dealer_value = dealer_value;
    nodes[v] = proto.make_node(inst.knowledge_of(v), pub);
  });
  return nodes;
}

}  // namespace

Outcome run_rmt(const Instance& inst, const Protocol& proto, Value dealer_value,
                const NodeSet& corruption, sim::AdversaryStrategy* strategy,
                std::size_t max_rounds, sim::NetworkObserver* observer) {
  RMT_REQUIRE(inst.admissible_corruption(corruption),
              "run_rmt: corruption set not admissible under Z");
  RMT_AUDIT_VALIDATE(inst);
  if (max_rounds == 0) max_rounds = proto.default_max_rounds(inst);

  Outcome out;
  {
    obs::ScopedCollector collect(out.phases);
    RMT_OBS_SCOPE("runner.run_rmt");
    RMT_TRACE_SPAN("runner.run_rmt");
    sim::Network net(inst, build_nodes(inst, proto, dealer_value, corruption, inst.receiver()),
                     corruption, strategy, dealer_value);
    net.set_observer(observer);
    out.decision = net.run(max_rounds);
    out.correct = out.decision.has_value() && *out.decision == dealer_value;
    out.wrong = out.decision.has_value() && *out.decision != dealer_value;
    out.stats = net.stats();
  }
  publish_sim_counters(out.stats);
  return out;
}

BroadcastOutcome run_broadcast(const Instance& inst, const Protocol& proto, Value dealer_value,
                               const NodeSet& corruption, sim::AdversaryStrategy* strategy,
                               std::size_t max_rounds) {
  RMT_REQUIRE(inst.admissible_corruption(corruption),
              "run_broadcast: corruption set not admissible under Z");
  RMT_AUDIT_VALIDATE(inst);
  if (max_rounds == 0) max_rounds = proto.default_max_rounds(inst);

  // Broadcast semantics ([13]'s Z-CPA): there is no designated receiver —
  // every player relays on decision. Label the receiver with a sentinel id
  // that matches no node, so no player takes the output-and-stop role.
  BroadcastOutcome out;
  {
    obs::ScopedCollector collect(out.phases);
    RMT_OBS_SCOPE("runner.run_broadcast");
    RMT_TRACE_SPAN("runner.run_broadcast");
    const NodeId no_receiver = NodeId(inst.graph().capacity());
    sim::Network net(inst, build_nodes(inst, proto, dealer_value, corruption, no_receiver),
                     corruption, strategy, dealer_value);
    for (std::size_t i = 0; i < max_rounds + 1; ++i) net.step();

    out.decisions.assign(inst.graph().capacity(), std::nullopt);
    inst.graph().nodes().for_each([&](NodeId v) {
      if (corruption.contains(v)) return;
      ++out.honest_total;
      const auto d = net.node(v).decision();
      out.decisions[v] = d;
      if (d) {
        ++out.honest_decided;
        (*d == dealer_value) ? void(++out.honest_correct) : void(++out.honest_wrong);
      }
    });
    out.stats = net.stats();
  }
  publish_sim_counters(out.stats);
  return out;
}

}  // namespace rmt::protocols

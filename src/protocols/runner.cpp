#include "protocols/runner.hpp"

#include "util/check.hpp"

namespace rmt::protocols {

namespace {

std::vector<std::unique_ptr<sim::ProtocolNode>> build_nodes(const Instance& inst,
                                                            const Protocol& proto,
                                                            Value dealer_value,
                                                            const NodeSet& corruption,
                                                            NodeId receiver_label) {
  std::vector<std::unique_ptr<sim::ProtocolNode>> nodes(inst.graph().capacity());
  inst.graph().nodes().for_each([&](NodeId v) {
    if (corruption.contains(v)) return;
    PublicInfo pub;
    pub.dealer = inst.dealer();
    pub.receiver = receiver_label;
    if (v == inst.dealer()) pub.dealer_value = dealer_value;
    nodes[v] = proto.make_node(inst.knowledge_of(v), pub);
  });
  return nodes;
}

}  // namespace

Outcome run_rmt(const Instance& inst, const Protocol& proto, Value dealer_value,
                const NodeSet& corruption, sim::AdversaryStrategy* strategy,
                std::size_t max_rounds, sim::NetworkObserver* observer) {
  RMT_REQUIRE(inst.admissible_corruption(corruption),
              "run_rmt: corruption set not admissible under Z");
  if (max_rounds == 0) max_rounds = proto.default_max_rounds(inst);

  sim::Network net(inst, build_nodes(inst, proto, dealer_value, corruption, inst.receiver()),
                   corruption, strategy, dealer_value);
  net.set_observer(observer);
  Outcome out;
  out.decision = net.run(max_rounds);
  out.correct = out.decision.has_value() && *out.decision == dealer_value;
  out.wrong = out.decision.has_value() && *out.decision != dealer_value;
  out.stats = net.stats();
  return out;
}

BroadcastOutcome run_broadcast(const Instance& inst, const Protocol& proto, Value dealer_value,
                               const NodeSet& corruption, sim::AdversaryStrategy* strategy,
                               std::size_t max_rounds) {
  RMT_REQUIRE(inst.admissible_corruption(corruption),
              "run_broadcast: corruption set not admissible under Z");
  if (max_rounds == 0) max_rounds = proto.default_max_rounds(inst);

  // Broadcast semantics ([13]'s Z-CPA): there is no designated receiver —
  // every player relays on decision. Label the receiver with a sentinel id
  // that matches no node, so no player takes the output-and-stop role.
  const NodeId no_receiver = NodeId(inst.graph().capacity());
  sim::Network net(inst, build_nodes(inst, proto, dealer_value, corruption, no_receiver),
                   corruption, strategy, dealer_value);
  for (std::size_t i = 0; i < max_rounds + 1; ++i) net.step();

  BroadcastOutcome out;
  out.decisions.assign(inst.graph().capacity(), std::nullopt);
  inst.graph().nodes().for_each([&](NodeId v) {
    if (corruption.contains(v)) return;
    ++out.honest_total;
    const auto d = net.node(v).decision();
    out.decisions[v] = d;
    if (d) {
      ++out.honest_decided;
      (*d == dealer_value) ? void(++out.honest_correct) : void(++out.honest_wrong);
    }
  });
  out.stats = net.stats();
  return out;
}

}  // namespace rmt::protocols

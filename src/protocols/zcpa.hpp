// protocols/zcpa.hpp — Z-CPA, the Certified Propagation Algorithm for
// general adversaries ([13], adapted for RMT in §4.1 of the paper).
//
//   1. If v ∈ N(D): upon reception of x_D from the dealer, decide x_D.
//   2. Else: upon receiving the same value x from all neighbors in a set
//      N ⊆ N(v) with N ∉ Z_v, decide x.
//   3. On decision: the receiver outputs and terminates; any other player
//      sends x to all neighbors once and terminates.
//
// Z-CPA is safe (an honest player never decides wrong: a deciding set N
// outside Z_v cannot be all-corrupted) and unique for the ad hoc model
// (Thms 7 + 8): it succeeds exactly when no RMT Z-pp cut exists.
//
// It is implemented as a protocol *scheme* (§5): the rule-2 membership
// check is delegated to a MembershipOracle. Plugging an ExplicitOracle
// gives the textbook protocol; a ThresholdOracle gives CPA; Theorem 9's
// SimulationOracle gives the self-reduction.
#pragma once

#include "protocols/protocol.hpp"
#include "reduction/membership_oracle.hpp"

namespace rmt::protocols {

class Zcpa final : public Protocol {
 public:
  /// Default: explicit antichain membership on each node's Z_v.
  Zcpa();
  explicit Zcpa(reduction::OracleFactory oracle_factory, std::string variant_name = "Z-CPA");

  std::string name() const override { return name_; }
  std::unique_ptr<sim::ProtocolNode> make_node(const LocalKnowledge& lk,
                                               const PublicInfo& pub) const override;

 private:
  reduction::OracleFactory oracles_;
  std::string name_;
};

}  // namespace rmt::protocols

#include "protocols/ppa.hpp"

#include <map>
#include <set>

#include "graph/paths.hpp"
#include "protocols/flooding.hpp"
#include "util/check.hpp"

namespace rmt::protocols {

namespace {

using sim::Message;
using sim::PathValuePayload;

class PpaNode final : public sim::ProtocolNode {
 public:
  PpaNode(const LocalKnowledge& lk, const PublicInfo& pub, std::size_t max_paths)
      : self_(lk.self), pub_(pub), knowledge_(lk), relay_(lk.self), max_paths_(max_paths) {
    neighbors_ = lk.view.neighbors(self_);
  }

  std::vector<Message> on_start() override {
    if (self_ != pub_.dealer) return {};
    RMT_CHECK(pub_.dealer_value.has_value(), "dealer node without a value");
    decision_ = *pub_.dealer_value;
    std::vector<Message> out;
    neighbors_.for_each([&](NodeId u) {
      out.push_back({self_, u, PathValuePayload{*pub_.dealer_value, Path{self_}}});
    });
    return out;
  }

  std::vector<Message> on_round(std::size_t, const std::vector<Message>& inbox) override {
    if (self_ == pub_.dealer) return {};
    std::vector<Message> out;
    for (const Message& m : inbox) {
      const auto* t1 = std::get_if<PathValuePayload>(&m.payload);
      if (!t1) continue;
      if (self_ == pub_.receiver) {
        if (relay_.admissible(t1->trail, m.from)) {
          Path full = t1->trail;
          full.push_back(self_);
          delivered_[t1->x].insert(std::move(full));
        }
      } else {
        relay_.relay(m, *t1, neighbors_, out);
      }
    }
    if (self_ == pub_.receiver && !decision_) try_decide();
    return out;
  }

  std::optional<sim::Value> decision() const override { return decision_; }

 private:
  void try_decide() {
    const Graph& g = knowledge_.view;  // = G under full knowledge
    for (const auto& [x, paths] : delivered_) {
      for (const NodeSet& z : knowledge_.local_z.maximal_sets()) {
        if (z.contains(pub_.dealer) || z.contains(self_)) continue;
        // All simple D–R paths in G − Z must have delivered x.
        const Graph avoid = g.induced(g.nodes() - z);
        if (!avoid.has_node(pub_.dealer) || !avoid.has_node(self_)) continue;
        bool all_delivered = true;
        std::size_t found = 0;
        const EnumStatus st = enumerate_simple_paths(
            avoid, pub_.dealer, self_,
            [&](const Path& p) {
              ++found;
              if (!paths.count(p)) {
                all_delivered = false;
                return false;
              }
              return true;
            },
            max_paths_);
        if (st == EnumStatus::kTruncated && all_delivered) continue;  // budget: abstain
        if (all_delivered && found > 0) {
          decision_ = x;
          return;
        }
      }
    }
  }

  NodeId self_;
  PublicInfo pub_;
  LocalKnowledge knowledge_;
  NodeSet neighbors_;
  TrailRelay relay_;
  std::size_t max_paths_;
  std::map<sim::Value, std::set<Path>> delivered_;
  std::optional<sim::Value> decision_;
};

}  // namespace

Ppa::Ppa(std::size_t max_paths) : max_paths_(max_paths) {}

std::unique_ptr<sim::ProtocolNode> Ppa::make_node(const LocalKnowledge& lk,
                                                  const PublicInfo& pub) const {
  return std::make_unique<PpaNode>(lk, pub, max_paths_);
}

}  // namespace rmt::protocols

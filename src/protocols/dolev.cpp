#include "protocols/dolev.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "protocols/flooding.hpp"
#include "util/check.hpp"

namespace rmt::protocols {

namespace {

using sim::Message;
using sim::PathValuePayload;

/// Interior nodes of a D...R trail (endpoints excluded — every trail
/// shares them).
NodeSet interior(const Path& p) {
  NodeSet s;
  for (std::size_t i = 1; i + 1 < p.size(); ++i) s.insert(p[i]);
  return s;
}

bool pack(const std::vector<NodeSet>& interiors, std::size_t count, std::size_t from,
          const NodeSet& used, std::size_t& budget) {
  if (count == 0) return true;
  if (budget == 0) return false;
  for (std::size_t i = from; i + count <= interiors.size(); ++i) {
    if (budget == 0) return false;
    --budget;
    if (!interiors[i].intersects(used) &&
        pack(interiors, count - 1, i + 1, used | interiors[i], budget))
      return true;
  }
  return false;
}

}  // namespace

bool has_disjoint_trails(const std::vector<Path>& trails, std::size_t count,
                         std::size_t budget) {
  if (count == 0) return true;
  if (trails.size() < count) return false;
  std::vector<NodeSet> interiors;
  interiors.reserve(trails.size());
  for (const Path& p : trails) interiors.push_back(interior(p));
  // Greedy by ascending interior size first — catches the common case
  // (honest disjoint paths) immediately.
  std::sort(interiors.begin(), interiors.end(),
            [](const NodeSet& a, const NodeSet& b) { return a.size() < b.size(); });
  NodeSet used;
  std::size_t got = 0;
  for (const NodeSet& s : interiors) {
    if (!s.intersects(used)) {
      used |= s;
      if (++got >= count) return true;
    }
  }
  // Exhaustive (budgeted) fallback: greedy is not optimal for packing.
  return pack(interiors, count, 0, NodeSet{}, budget);
}

namespace {

class DolevNode final : public sim::ProtocolNode {
 public:
  DolevNode(const LocalKnowledge& lk, const PublicInfo& pub, std::size_t t,
            std::size_t max_trails)
      : self_(lk.self), pub_(pub), relay_(lk.self), t_(t), max_trails_(max_trails) {
    neighbors_ = lk.view.neighbors(self_);
  }

  std::vector<Message> on_start() override {
    if (self_ != pub_.dealer) return {};
    RMT_CHECK(pub_.dealer_value.has_value(), "dealer node without a value");
    decision_ = *pub_.dealer_value;
    std::vector<Message> out;
    neighbors_.for_each([&](NodeId u) {
      out.push_back({self_, u, PathValuePayload{*pub_.dealer_value, Path{self_}}});
    });
    return out;
  }

  std::vector<Message> on_round(std::size_t, const std::vector<Message>& inbox) override {
    if (self_ == pub_.dealer) return {};
    std::vector<Message> out;
    for (const Message& m : inbox) {
      const auto* t1 = std::get_if<PathValuePayload>(&m.payload);
      if (!t1) continue;
      if (self_ == pub_.receiver) {
        if (!relay_.admissible(t1->trail, m.from)) continue;
        // A direct dealer trail decides immediately (authenticated channel).
        if (m.from == pub_.dealer && t1->trail == Path{pub_.dealer}) {
          decision_ = t1->x;
          continue;
        }
        auto& pool = trails_[t1->x];
        if (pool.size() < max_trails_) {
          Path full = t1->trail;
          full.push_back(self_);
          pool.push_back(std::move(full));
        }
      } else {
        relay_.relay(m, *t1, neighbors_, out);
      }
    }
    if (self_ == pub_.receiver && !decision_) {
      for (const auto& [x, pool] : trails_) {
        if (has_disjoint_trails(pool, t_ + 1)) {
          decision_ = x;
          break;
        }
      }
    }
    return out;
  }

  std::optional<sim::Value> decision() const override { return decision_; }

 private:
  NodeId self_;
  PublicInfo pub_;
  NodeSet neighbors_;
  TrailRelay relay_;
  std::size_t t_;
  std::size_t max_trails_;
  std::map<sim::Value, std::vector<Path>> trails_;
  std::optional<sim::Value> decision_;
};

}  // namespace

Dolev::Dolev(std::size_t t, std::size_t max_trails) : t_(t), max_trails_(max_trails) {}

std::string Dolev::name() const { return "Dolev(t=" + std::to_string(t_) + ")"; }

std::unique_ptr<sim::ProtocolNode> Dolev::make_node(const LocalKnowledge& lk,
                                                    const PublicInfo& pub) const {
  return std::make_unique<DolevNode>(lk, pub, t_, max_trails_);
}

}  // namespace rmt::protocols

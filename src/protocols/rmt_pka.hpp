// protocols/rmt_pka.hpp — RMT-PKA, the paper's main contribution
// (Protocol 1, §3.1).
//
// The first *unique* RMT protocol for the partial knowledge model with a
// general adversary: it achieves RMT on an instance (G, Z, γ, D, R)
// exactly when no RMT-cut exists (Thms 3 + 5, Cor. 6) — i.e. whenever
// *any* safe protocol could. And it is safe on every instance, solvable
// or not (Thm 4), even against adversaries that report fictitious nodes
// and fabricated local knowledge.
//
// Wire behaviour:
//   D     : sends (x_D, {D}) and ((D, γ(D), Z_D), {D}) to all neighbors,
//           terminates.
//   v∉{D,R}: sends ((v, γ(v), Z_v), {v}); relays every admissible trailed
//           message with its trail extended (flooding.hpp).
//   R     : accumulates; runs the decision subroutine (pka_decision.hpp)
//           every round until it returns a value.
#pragma once

#include "protocols/pka_decision.hpp"
#include "protocols/protocol.hpp"

namespace rmt::protocols {

class RmtPka final : public Protocol {
 public:
  explicit RmtPka(DeciderMode mode = DeciderMode::kExhaustive, DeciderLimits limits = {});

  std::string name() const override {
    return mode_ == DeciderMode::kExhaustive ? "RMT-PKA" : "RMT-PKA(greedy)";
  }
  std::unique_ptr<sim::ProtocolNode> make_node(const LocalKnowledge& lk,
                                               const PublicInfo& pub) const override;

  const DeciderLimits& limits() const { return limits_; }

 private:
  DeciderMode mode_;
  DeciderLimits limits_;
};

}  // namespace rmt::protocols

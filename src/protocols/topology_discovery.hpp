// protocols/topology_discovery.hpp — Byzantine-resilient topology
// discovery: the paper's §6 outlook, built.
//
// "Although topology discovery was not our motive, techniques used here
// (e.g. the ⊕ operation) may be applicable to that problem under a
// Byzantine adversary ([12],[4])." This module takes that suggestion
// literally: nodes flood their initial knowledge exactly like RMT-PKA's
// type-2 messages, and every node distills a *certified* map from the
// claims it collects.
//
// Certification rule (the both-endpoints principle): a collected claim
// "edge {a, b} exists" is certified by node v iff
//   * it lies inside v's own view γ(v) (ground truth), or
//   * *both* endpoints' self-reports contain the edge, with consistent
//     single versions for a and b among v's collected reports.
// Guarantees, tested operationally:
//   * soundness for reachable honest pairs — a fabricated edge touching an
//     honest node whose true self-report reaches v is never certified:
//     the true report, which omits the edge, conflicts with any forgery
//     about that node, and conflicted subjects certify nothing;
//   * completeness — every edge whose two (honest) endpoints are
//     reachable from v without crossing the corruption set is certified
//     by round |V|;
//   * attribution — a certified-but-fake edge can only connect nodes that
//     are corrupted, fictitious, or cut off from v by the corruption set:
//     fake regions never attach through a reachable honest node. This is
//     the discovery analogue of the trail-tail invariant, and the honest
//     best possible (a fully cut-off region is information-theoretically
//     forgeable — the same indistinguishability as in Thms 3/8).
#pragma once

#include "protocols/protocol.hpp"

namespace rmt::protocols {

/// What one node distilled by the end of a discovery run.
struct DiscoveryReport {
  Graph certified;          ///< the certified map (nodes + edges)
  NodeSet conflicted;       ///< subjects with contradictory versions (liars at work)
  std::size_t claims_seen = 0;  ///< distinct (subject, version) reports collected
};

/// The discovery protocol: type-2 flooding + per-node certification. It is
/// not an RMT protocol (there is no value to decide) — decision() always
/// reports ⊥ and runs are driven for a fixed number of rounds via
/// run_broadcast or Network::step; reports are read back with
/// TopologyDiscovery::report_of.
class TopologyDiscovery final : public Protocol {
 public:
  TopologyDiscovery() = default;

  std::string name() const override { return "TopologyDiscovery"; }
  std::unique_ptr<sim::ProtocolNode> make_node(const LocalKnowledge& lk,
                                               const PublicInfo& pub) const override;

  /// Extract the report from a node created by this protocol. Requires the
  /// node to actually be a discovery node (checked).
  static DiscoveryReport report_of(const sim::ProtocolNode& node);
};

/// Convenience driver: run discovery on `inst` for |V|+1 rounds with the
/// given corruption/strategy and return every honest node's report
/// (indexed by node id; corrupted slots are empty reports).
std::vector<DiscoveryReport> run_topology_discovery(const Instance& inst,
                                                    const NodeSet& corruption,
                                                    sim::AdversaryStrategy* strategy = nullptr);

}  // namespace rmt::protocols

// protocols/flooding.hpp — the trail-stamped relay rule shared by the
// path-propagation protocols (PPA and RMT-PKA type-1/type-2 handling).
//
// Protocol 1's relay rule, verbatim: upon reception of (a, p) from node u,
//   if (v ∈ p) ∨ (tail(p) ≠ u) then discard, else send (a, p‖v) to all
//   neighbours.
// The tail check is the linchpin of safety (footnote 1): because channels
// are authenticated, a message whose trail does not end at its true sender
// is dropped by the first honest hop — hence any trail that survives to
// the receiver and is not entirely honest must *name* a corrupted node.
//
// Duplicate suppression is an implementation addition the paper's model
// makes implicitly (each honest node sends each message once); we enforce
// it against adversarial replays via exact payload serialization.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "sim/message.hpp"

namespace rmt::protocols {

class TrailRelay {
 public:
  explicit TrailRelay(NodeId self) : self_(self) {}

  /// Returns true iff the trail is well-formed for a message received by
  /// `self_` from `from`: non-empty, ends at `from`, does not contain self.
  bool admissible(const Path& trail, NodeId from) const {
    if (trail.empty() || trail.back() != from) return false;
    for (NodeId v : trail)
      if (v == self_) return false;
    return true;
  }

  /// Process one incoming trailed message; if admissible and not a replay,
  /// emit relayed copies (trail extended by self) to every neighbor.
  template <typename PayloadT>
  void relay(const sim::Message& m, const PayloadT& body, const NodeSet& neighbors,
             std::vector<sim::Message>& out) {
    if (!admissible(body.trail, m.from)) return;
    if (!seen_.insert(sim::payload_serialize(m.payload)).second) return;
    PayloadT next = body;
    next.trail.push_back(self_);
    neighbors.for_each([&](NodeId u) {
      sim::Message copy;
      copy.from = self_;
      copy.to = u;
      copy.payload = next;
      out.push_back(std::move(copy));
    });
  }

 private:
  NodeId self_;
  std::unordered_set<std::string> seen_;
};

}  // namespace rmt::protocols

// protocols/runner.hpp — one-call protocol execution.
//
// Wires an Instance, a Protocol, a corruption set and an adversary
// strategy into a sim::Network, runs to decision or round bound, and
// reports the outcome with the accounting the experiments need. This is
// the main entry point of the library for "does protocol P deliver on
// instance I against adversary S?" questions.
#pragma once

#include "obs/timer.hpp"
#include "protocols/protocol.hpp"

namespace rmt::protocols {

struct Outcome {
  std::optional<Value> decision;      ///< the receiver's output, if any
  bool correct = false;               ///< decided and equal to x_D
  bool wrong = false;                 ///< decided and ≠ x_D — a safety violation
  sim::NetworkStats stats;
  /// Per-phase wall-time breakdown of this run (RMT_OBS_SCOPE sites hit
  /// while it executed). Empty unless obs::set_enabled(true).
  obs::PhaseProfile phases;
};

/// Run one RMT execution. `corruption` must be admissible under the
/// instance's Z (∅ for a fault-free control run); `strategy` may be null
/// (corrupted nodes stay silent). `max_rounds` 0 means the protocol's
/// default bound. `observer` (sim/trace.hpp), if given, receives the full
/// delivery transcript.
Outcome run_rmt(const Instance& inst, const Protocol& proto, Value dealer_value,
                const NodeSet& corruption, sim::AdversaryStrategy* strategy = nullptr,
                std::size_t max_rounds = 0, sim::NetworkObserver* observer = nullptr);

struct BroadcastOutcome {
  /// Per node id: the decision of each honest node (nullopt = undecided;
  /// entries for corrupted/absent ids are nullopt too).
  std::vector<std::optional<Value>> decisions;
  std::size_t honest_decided = 0;
  std::size_t honest_correct = 0;
  std::size_t honest_wrong = 0;
  std::size_t honest_total = 0;
  sim::NetworkStats stats;
  /// Per-phase wall-time breakdown (see Outcome::phases).
  obs::PhaseProfile phases;
};

/// Run to the round bound without early receiver termination and collect
/// every honest node's decision — the Reliable Broadcast view of a
/// protocol (used for the Z-CPA broadcast experiments of [13]/§4).
BroadcastOutcome run_broadcast(const Instance& inst, const Protocol& proto, Value dealer_value,
                               const NodeSet& corruption,
                               sim::AdversaryStrategy* strategy = nullptr,
                               std::size_t max_rounds = 0);

}  // namespace rmt::protocols

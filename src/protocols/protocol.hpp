// protocols/protocol.hpp — the protocol abstraction driven by the runner.
//
// A Protocol is a factory: given one player's *initial knowledge only*
// (LocalKnowledge: γ(v) and Z_v — never the global instance) plus the
// public parameters every player holds (the dealer's and receiver's
// labels, §3: "we assume that the dealer knows the id of player R"), it
// builds that player's round machine. Keeping the constructor signature
// down to (LocalKnowledge, PublicInfo) is what makes the partial-knowledge
// discipline checkable: a protocol cannot cheat and peek at G or Z because
// they are simply not reachable from its inputs.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "instance/instance.hpp"
#include "sim/network.hpp"

namespace rmt::protocols {

using sim::Value;

/// Parameters known to every player before the protocol starts.
struct PublicInfo {
  NodeId dealer = 0;
  NodeId receiver = 0;
  /// Set only when constructing the dealer's own node: x_D.
  std::optional<Value> dealer_value;
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual std::string name() const = 0;

  /// Build the round machine for the player lk.self.
  virtual std::unique_ptr<sim::ProtocolNode> make_node(const LocalKnowledge& lk,
                                                       const PublicInfo& pub) const = 0;

  /// Rounds after which the runner gives up. Every protocol here decides
  /// by round |V(G)| when it decides at all (Thm 5 proof; Z-CPA round
  /// complexity argument in Thm 9's proof).
  virtual std::size_t default_max_rounds(const Instance& inst) const {
    return inst.num_players() + 1;
  }
};

}  // namespace rmt::protocols

#include "protocols/pka_decision.hpp"

#include <algorithm>

#include "adversary/joint.hpp"
#include "graph/cuts.hpp"
#include "util/check.hpp"

namespace rmt::protocols {

namespace {

/// One chosen version per subject.
using Snapshot = std::map<NodeId, const NodeReport*>;

/// G_M: union of the chosen views of V_M's members, node-induced on V_M
/// (Def. 4's construction: G_M = γ(V_M) induced on V_M).
Graph build_gm(const Snapshot& snap, const NodeSet& vm) {
  Graph joint;
  vm.for_each([&](NodeId v) {
    const auto it = snap.find(v);
    RMT_CHECK(it != snap.end(), "V_M member without a snapshot version");
    joint = joint.united(it->second->view);
  });
  return joint.induced(vm);
}

/// Def. 5: every simple D–R path of gm appears among the delivered trails
/// for the candidate value; at least one must exist (value(M) needs type-1
/// evidence). Path budget overrun counts as failure (abstain direction).
bool is_full(const Graph& gm, NodeId d, NodeId r, const std::set<Path>& delivered,
             const DeciderLimits& limits, DeciderStats& stats) {
  ++stats.fullness_checks;
  if (!gm.has_node(d) || !gm.has_node(r)) return false;
  bool all_present = true;
  std::size_t found = 0;
  const EnumStatus st = enumerate_simple_paths(
      gm, d, r,
      [&](const Path& p) {
        ++found;
        if (!delivered.count(p)) {
          all_present = false;
          return false;
        }
        return true;
      },
      limits.max_paths);
  if (st == EnumStatus::kTruncated && all_present) {
    stats.budget_exhausted = true;
    return false;
  }
  return all_present && found > 0;
}

/// Def. 6: does some cut C of gm between D and R have
/// C ∩ V(γ(B)) ∈ Z_B for the receiver-side component B? All γ / Z data is
/// the snapshot's *claimed* data — exactly what M provides the receiver.
/// WLOG C = N(B) for connected B ∋ R (monotone structures; see
/// analysis/rmt_cut.hpp for the argument). A blown enumeration budget
/// reports "maybe covered" (abstain direction).
bool has_adversary_cover(const Graph& gm, NodeId d, NodeId r, const Snapshot& snap,
                         const DeciderLimits& limits, DeciderStats& stats) {
  ++stats.cover_checks;
  if (!gm.has_node(r) || !gm.has_node(d)) return true;
  bool covered = false;
  std::size_t budget = limits.max_cover_sets;
  enumerate_connected_subsets(gm, r, NodeSet::single(d), [&](const NodeSet& b) {
    if (budget-- == 0) {
      stats.budget_exhausted = true;
      covered = true;  // conservative
      return false;
    }
    const NodeSet c = gm.boundary(b);
    if (c.contains(d)) return true;  // not a D-excluding cut for this B
    // Z_B and V(γ(B)) from the claimed reports of B's members.
    JointStructure zb;
    NodeSet gamma_b;
    b.for_each([&](NodeId v) {
      const NodeReport& rep = *snap.at(v);
      zb.add_constraint(rep.view.nodes(), rep.local_z);
      gamma_b |= rep.view.nodes();
    });
    if (zb.contains(c & gamma_b)) {
      covered = true;
      return false;
    }
    return true;
  });
  return covered;
}

/// Enumerate snapshots (one version per subject) with a cap on the number
/// of combinations; calls fn for each. Subject R is pinned to the
/// receiver's own knowledge upstream, so it never branches here.
void for_each_snapshot(const std::map<NodeId, std::vector<NodeReport>>& reports,
                       const DeciderLimits& limits, DeciderStats& stats,
                       const std::function<bool(const Snapshot&)>& fn) {
  std::vector<const std::vector<NodeReport>*> axes;
  std::vector<NodeId> subjects;
  for (const auto& [u, versions] : reports) {
    RMT_CHECK(!versions.empty(), "subject with zero report versions");
    axes.push_back(&versions);
    subjects.push_back(u);
  }
  std::vector<std::size_t> idx(axes.size(), 0);
  std::size_t produced = 0;
  for (;;) {
    if (produced++ >= limits.max_snapshots) {
      stats.budget_exhausted = true;
      return;
    }
    ++stats.snapshots;
    Snapshot snap;
    for (std::size_t i = 0; i < axes.size(); ++i) snap[subjects[i]] = &(*axes[i])[idx[i]];
    if (!fn(snap)) return;
    // Odometer increment.
    std::size_t i = 0;
    while (i < idx.size()) {
      if (++idx[i] < axes[i]->size()) break;
      idx[i] = 0;
      ++i;
    }
    if (i == idx.size()) return;
  }
}

/// Try one concrete (snapshot, V_M, x): valid-by-construction, check full
/// and cover-free.
bool accepts(const Snapshot& snap, const NodeSet& vm, NodeId d, NodeId r,
             const std::set<Path>& delivered, const DeciderLimits& limits, DeciderStats& stats) {
  const Graph gm = build_gm(snap, vm);
  if (!is_full(gm, d, r, delivered, limits, stats)) return false;
  return !has_adversary_cover(gm, d, r, snap, limits, stats);
}

std::optional<sim::Value> decide_exhaustive(const DecisionInput& in, const Snapshot& snap,
                                            const DeciderLimits& limits, DeciderStats& stats) {
  // Optional subjects: everything except D and R (which any useful M must
  // contain — G_M needs both endpoints).
  if (!snap.count(in.dealer)) return std::nullopt;
  std::vector<NodeId> optional_subjects;
  for (const auto& [u, rep] : snap) {
    (void)rep;
    if (u != in.dealer && u != in.receiver) optional_subjects.push_back(u);
  }
  if (optional_subjects.size() > limits.max_subset_bits) {
    stats.budget_exhausted = true;
    return std::nullopt;
  }
  const std::size_t combos = std::size_t{1} << optional_subjects.size();
  for (const auto& [x, delivered] : in.type1) {
    // Descending masks: the all-subjects candidate first — in benign runs
    // it is the honest M and the search ends immediately.
    for (std::size_t mask = combos; mask-- > 0;) {
      ++stats.subsets_tried;
      NodeSet vm{in.dealer, in.receiver};
      for (std::size_t i = 0; i < optional_subjects.size(); ++i)
        if ((mask >> i) & 1) vm.insert(optional_subjects[i]);
      if (accepts(snap, vm, in.dealer, in.receiver, delivered, limits, stats)) {
        stats.decided_vm = vm;
        return x;
      }
    }
  }
  return std::nullopt;
}

std::optional<sim::Value> decide_greedy(const DecisionInput& in, const Snapshot& snap,
                                        const DeciderLimits& limits, DeciderStats& stats) {
  if (!snap.count(in.dealer)) return std::nullopt;
  for (const auto& [x, delivered] : in.type1) {
    NodeSet vm;
    for (const auto& [u, rep] : snap) {
      (void)rep;
      vm.insert(u);
    }
    // Peel nodes that break fullness: a missing D–R path can only be
    // repaired by evicting one of its interior nodes from V_M.
    for (std::size_t iter = 0; iter <= snap.size(); ++iter) {
      const Graph gm = build_gm(snap, vm);
      ++stats.fullness_checks;
      if (!gm.has_node(in.dealer) || !gm.has_node(in.receiver)) break;
      std::map<NodeId, std::size_t> blame;
      std::size_t found = 0, missing = 0;
      enumerate_simple_paths(
          gm, in.dealer, in.receiver,
          [&](const Path& p) {
            ++found;
            if (!delivered.count(p)) {
              ++missing;
              for (NodeId v : p)
                if (v != in.dealer && v != in.receiver) ++blame[v];
            }
            return true;
          },
          limits.max_paths);
      if (found == 0) break;
      if (missing == 0) {
        if (!has_adversary_cover(gm, in.dealer, in.receiver, snap, limits, stats)) {
          stats.decided_vm = vm;
          return x;
        }
        break;  // covered — greedy does not explore alternatives
      }
      const auto worst = std::max_element(
          blame.begin(), blame.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      if (worst == blame.end()) break;
      vm.erase(worst->first);
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<sim::Value> pka_decide(const DecisionInput& in, DeciderMode mode,
                                     const DeciderLimits& limits, DeciderStats* stats_out) {
  DeciderStats local;
  DeciderStats& stats = stats_out ? *stats_out : local;

  // Dealer propagation rule: R ∈ N(D) and (x_D, {D}) arrived on the
  // authenticated dealer channel.
  if (in.direct_value) return in.direct_value;
  if (in.type1.empty()) return std::nullopt;

  // Pin subject R to the receiver's own ground truth; adversarial claims
  // about R itself are never entertained (R can tell they are lies).
  std::map<NodeId, std::vector<NodeReport>> reports = in.reports;
  reports[in.receiver] = {NodeReport{in.receiver, in.receiver_knowledge.view,
                                     in.receiver_knowledge.local_z}};

  std::optional<sim::Value> decision;
  for_each_snapshot(reports, limits, stats, [&](const Snapshot& snap) {
    decision = (mode == DeciderMode::kExhaustive) ? decide_exhaustive(in, snap, limits, stats)
                                                  : decide_greedy(in, snap, limits, stats);
    return !decision.has_value();
  });
  return decision;
}

}  // namespace rmt::protocols

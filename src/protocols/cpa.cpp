#include "protocols/cpa.hpp"

namespace rmt::protocols {

Cpa::Cpa(std::size_t t)
    : t_(t), inner_(reduction::threshold_oracle_factory(t), "CPA(t=" + std::to_string(t) + ")") {}

std::string Cpa::name() const { return inner_.name(); }

std::unique_ptr<sim::ProtocolNode> Cpa::make_node(const LocalKnowledge& lk,
                                                  const PublicInfo& pub) const {
  return inner_.make_node(lk, pub);
}

}  // namespace rmt::protocols

// protocols/dolev.hpp — Dolev's disjoint-path protocol [2], the historic
// baseline for RMT under a *global* threshold adversary.
//
// The dealer floods (x_D, {D}); relays apply the trail-stamped rule; the
// receiver decides on x once t+1 pairwise internally-node-disjoint
// delivered trails carry x:
//   * sound for any corruption of ≤ t nodes — one of t+1 disjoint trails
//     is all-honest, and an all-honest trail carries x_D (the tail check
//     forces every forged trail to name a corrupted node);
//   * complete when D and R are (2t+1)-connected (Dolev's classic bound):
//     the 2t+1 disjoint honest paths are all delivered and already contain
//     t+1 pairwise disjoint x_D-trails.
//
// The paper's general model subsumes this setting: a global-t structure's
// two-cover condition is exactly (2t+1)-connectivity (experiment F3a), so
// Dolev ≈ PPA specialized — we keep it as an independent implementation
// and cross-check the two in tests and experiment T4.
//
// The receiver-side search for t+1 disjoint trails is a set-packing
// problem; we run greedy packing first and fall back to bounded exhaustive
// search (budgeted: overruns abstain, never guess).
#pragma once

#include "protocols/protocol.hpp"

namespace rmt::protocols {

class Dolev final : public Protocol {
 public:
  /// `t`: the global corruption bound the receiver defends against.
  /// `max_trails`: per-value cap on trails considered by the packing
  /// search (newest trails beyond the cap are dropped — abstain bias).
  explicit Dolev(std::size_t t, std::size_t max_trails = 64);

  std::string name() const override;
  std::unique_ptr<sim::ProtocolNode> make_node(const LocalKnowledge& lk,
                                               const PublicInfo& pub) const override;

  std::size_t threshold() const { return t_; }

 private:
  std::size_t t_;
  std::size_t max_trails_;
};

/// Exposed for unit tests: true iff `trails` contains `count` pairwise
/// internally-disjoint paths (endpoints shared by construction). Greedy
/// then bounded exhaustive; `budget` caps explored subsets.
bool has_disjoint_trails(const std::vector<Path>& trails, std::size_t count,
                         std::size_t budget = 1u << 16);

}  // namespace rmt::protocols

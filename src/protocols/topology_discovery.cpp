#include "protocols/topology_discovery.hpp"

#include <map>
#include <vector>

#include "protocols/flooding.hpp"
#include "sim/network.hpp"
#include "util/check.hpp"

namespace rmt::protocols {

namespace {

using sim::KnowledgePayload;
using sim::Message;

class DiscoveryNode final : public sim::ProtocolNode {
 public:
  explicit DiscoveryNode(const LocalKnowledge& lk)
      : self_(lk.self), knowledge_(lk), relay_(lk.self) {
    neighbors_ = lk.view.neighbors(self_);
  }

  std::vector<Message> on_start() override {
    std::vector<Message> out;
    neighbors_.for_each([&](NodeId u) {
      out.push_back(
          {self_, u, KnowledgePayload{self_, knowledge_.view, knowledge_.local_z, Path{self_}}});
    });
    return out;
  }

  std::vector<Message> on_round(std::size_t, const std::vector<Message>& inbox) override {
    std::vector<Message> out;
    for (const Message& m : inbox) {
      const auto* t2 = std::get_if<KnowledgePayload>(&m.payload);
      if (!t2) continue;
      if (!relay_.admissible(t2->trail, m.from)) continue;
      if (!t2->view.has_node(t2->subject)) continue;  // structurally impossible
      record(t2->subject, t2->view);
      relay_.relay(m, *t2, neighbors_, out);
    }
    return out;
  }

  std::optional<sim::Value> decision() const override { return std::nullopt; }

  DiscoveryReport report() const {
    DiscoveryReport rep;
    // Self knowledge is ground truth.
    rep.certified = knowledge_.view;

    // Single-version subjects only; conflicted ones certify nothing.
    std::map<NodeId, const Graph*> accepted;
    for (const auto& [subject, versions] : reports_) {
      rep.claims_seen += versions.size();
      if (versions.size() == 1 && !(subject == self_)) {
        accepted[subject] = &versions.front();
      } else if (versions.size() > 1) {
        rep.conflicted.insert(subject);
      }
    }
    // Certify edges vouched for by BOTH endpoints' accepted self-reports.
    for (const auto& [a, view_a] : accepted) {
      rep.certified.add_node(a);
      view_a->neighbors(a).for_each([&](NodeId b) {
        const bool b_vouches =
            (b == self_) ? knowledge_.view.has_edge(a, b)
                         : (accepted.count(b) && accepted.at(b)->has_node(b) &&
                            accepted.at(b)->has_edge(a, b));
        if (b_vouches) rep.certified.add_edge(a, b);
      });
    }
    return rep;
  }

 private:
  void record(NodeId subject, const Graph& view) {
    auto& versions = reports_[subject];
    for (const Graph& v : versions)
      if (v == view) return;
    versions.push_back(view);
  }

  NodeId self_;
  LocalKnowledge knowledge_;
  NodeSet neighbors_;
  TrailRelay relay_;
  std::map<NodeId, std::vector<Graph>> reports_;
};

}  // namespace

std::unique_ptr<sim::ProtocolNode> TopologyDiscovery::make_node(const LocalKnowledge& lk,
                                                                const PublicInfo&) const {
  return std::make_unique<DiscoveryNode>(lk);
}

DiscoveryReport TopologyDiscovery::report_of(const sim::ProtocolNode& node) {
  const auto* discovery = dynamic_cast<const DiscoveryNode*>(&node);
  RMT_REQUIRE(discovery != nullptr, "report_of: node was not built by TopologyDiscovery");
  return discovery->report();
}

std::vector<DiscoveryReport> run_topology_discovery(const Instance& inst,
                                                    const NodeSet& corruption,
                                                    sim::AdversaryStrategy* strategy) {
  RMT_REQUIRE(inst.admissible_corruption(corruption),
              "run_topology_discovery: corruption not admissible");
  const TopologyDiscovery proto;
  std::vector<std::unique_ptr<sim::ProtocolNode>> nodes(inst.graph().capacity());
  inst.graph().nodes().for_each([&](NodeId v) {
    if (corruption.contains(v)) return;
    PublicInfo pub;  // discovery has no dealer/receiver roles
    pub.dealer = inst.dealer();
    pub.receiver = NodeId(inst.graph().capacity());
    nodes[v] = proto.make_node(inst.knowledge_of(v), pub);
  });
  sim::Network net(inst, std::move(nodes), corruption, strategy, /*dealer_value=*/0);
  for (std::size_t i = 0; i < inst.num_players() + 1; ++i) net.step();

  std::vector<DiscoveryReport> out(inst.graph().capacity());
  inst.graph().nodes().for_each([&](NodeId v) {
    if (!corruption.contains(v)) out[v] = TopologyDiscovery::report_of(net.node(v));
  });
  return out;
}

}  // namespace rmt::protocols

#include "protocols/zcpa.hpp"

#include <map>

#include "util/check.hpp"

namespace rmt::protocols {

namespace {

using sim::Message;
using sim::ValuePayload;

class ZcpaNode final : public sim::ProtocolNode {
 public:
  ZcpaNode(const LocalKnowledge& lk, const PublicInfo& pub,
           std::unique_ptr<reduction::MembershipOracle> oracle)
      : self_(lk.self), pub_(pub), neighbors_(lk.view.neighbors(lk.self)),
        oracle_(std::move(oracle)) {}

  std::vector<Message> on_start() override {
    if (self_ != pub_.dealer) return {};
    // Dealer: send x_D to all neighbors and terminate.
    RMT_CHECK(pub_.dealer_value.has_value(), "dealer node without a value");
    decision_ = *pub_.dealer_value;
    terminated_ = true;
    return broadcast(*pub_.dealer_value);
  }

  std::vector<Message> on_round(std::size_t, const std::vector<Message>& inbox) override {
    if (terminated_) return {};

    for (const Message& m : inbox) {
      const auto* v = std::get_if<ValuePayload>(&m.payload);
      if (!v) continue;  // erroneous dialect for this protocol — discard
      if (m.from == pub_.dealer) {
        // Rule 1: the channel is authenticated, the dealer honest.
        decision_ = v->x;
        break;
      }
      // Record the first value per neighbor; an honest neighbor sends
      // exactly once, so later conflicting copies are adversarial noise.
      first_value_.emplace(m.from, v->x);
    }

    // Rule 2: some value backed by a neighbor set outside Z_v?
    if (!decision_) {
      std::map<sim::Value, NodeSet> backers;
      for (const auto& [u, x] : first_value_) backers[x].insert(u);
      for (const auto& [x, n] : backers) {
        if (!oracle_->member(n)) {
          decision_ = x;
          break;
        }
      }
    }

    // Rule 3: relay on decision (receiver only outputs).
    if (decision_) {
      terminated_ = true;
      if (self_ != pub_.receiver) return broadcast(*decision_);
    }
    return {};
  }

  std::optional<sim::Value> decision() const override { return decision_; }

  const reduction::MembershipOracle& oracle() const { return *oracle_; }

 private:
  std::vector<Message> broadcast(sim::Value x) {
    std::vector<Message> out;
    neighbors_.for_each([&](NodeId u) { out.push_back({self_, u, ValuePayload{x}}); });
    return out;
  }

  NodeId self_;
  PublicInfo pub_;
  NodeSet neighbors_;
  std::unique_ptr<reduction::MembershipOracle> oracle_;
  std::map<NodeId, sim::Value> first_value_;
  std::optional<sim::Value> decision_;
  bool terminated_ = false;
};

}  // namespace

Zcpa::Zcpa() : Zcpa(reduction::explicit_oracle_factory()) {}

Zcpa::Zcpa(reduction::OracleFactory oracle_factory, std::string variant_name)
    : oracles_(std::move(oracle_factory)), name_(std::move(variant_name)) {}

std::unique_ptr<sim::ProtocolNode> Zcpa::make_node(const LocalKnowledge& lk,
                                                   const PublicInfo& pub) const {
  return std::make_unique<ZcpaNode>(lk, pub, oracles_(lk));
}

}  // namespace rmt::protocols

// protocols/pka_decision.hpp — the receiver-side decision subroutine of
// RMT-PKA (Protocol 1, §3.1).
//
// The paper's rule is nondeterministic: "if R receives a full set M with
// value(M) = x and ∄ an adversary cover for M then return x". Concretely
// the receiver must *search* its received messages for a subset M that is
//   * valid (Def. 4): all type-1 messages carry the same value x, and at
//     most one (γ(u), Z_u) version per subject u;
//   * full (Def. 5): every simple D–R path of the reconstructed graph G_M
//     appears among M's type-1 trails;
//   * cover-free (Def. 6): no cut C of G_M between D and R satisfies
//     C ∩ V(γ(B)) ∈ Z_B for B the receiver-side component, with γ and Z_B
//     computed from M's *claimed* views and structures.
//
// A valid M is determined by (a) a value x, (b) a *snapshot* — one chosen
// version per subject — and (c) the subject subset V_M. The search is
// therefore: for each value, for each snapshot (branching only where the
// adversary created conflicting versions), for each V_M ∋ D, R.
//
// Two search modes:
//   * kExhaustive — tries every V_M (within budgets); matches the tight
//     characterization: decides whenever no RMT-cut exists (Thm 5).
//   * kGreedy — starts from V_M = all subjects and peels nodes that break
//     fullness; fast, may abstain on crafted inputs.
// Both are *safe unconditionally*: Theorem 4 holds for ANY full cover-free
// M, so no search order can produce a wrong decision; budgets only ever
// cause abstention.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "adversary/structure.hpp"
#include "graph/paths.hpp"
#include "knowledge/local_knowledge.hpp"
#include "sim/message.hpp"

namespace rmt::protocols {

/// One claimed (u, γ(u), Z_u) version, as reconstructed from type-2
/// messages (trails stripped — only content identity matters for Def. 4).
struct NodeReport {
  NodeId subject = 0;
  Graph view;
  AdversaryStructure local_z;
  friend bool operator==(const NodeReport&, const NodeReport&) = default;
};

/// Everything the receiver has accumulated, in decision-ready form.
struct DecisionInput {
  NodeId dealer = 0;
  NodeId receiver = 0;
  /// The receiver's own γ(R), Z_R — ground truth for subject R.
  LocalKnowledge receiver_knowledge;
  /// Set when (x_D, {D}) arrived straight from the dealer (dealer rule).
  std::optional<sim::Value> direct_value;
  /// value → set of complete D..R trails that delivered it.
  std::map<sim::Value, std::set<Path>> type1;
  /// subject → distinct claimed versions (conflicts ⇒ adversary at work).
  std::map<NodeId, std::vector<NodeReport>> reports;
};

enum class DeciderMode { kExhaustive, kGreedy };

struct DeciderLimits {
  std::size_t max_snapshots = 64;      ///< version-combination budget
  std::size_t max_subset_bits = 14;    ///< enumerate at most 2^bits V_M sets
  std::size_t max_paths = 4096;        ///< per fullness check
  std::size_t max_cover_sets = 1u << 16;  ///< connected-B budget per cover check
};

struct DeciderStats {
  std::size_t snapshots = 0;
  std::size_t subsets_tried = 0;
  std::size_t fullness_checks = 0;
  std::size_t cover_checks = 0;
  bool budget_exhausted = false;  ///< some branch was abandoned for cost
  /// On success: the V_M of the accepted full message set — the witness a
  /// receiver can log to *explain* its decision (which reports it trusted).
  std::optional<NodeSet> decided_vm;
};

/// The decision subroutine. Returns the decided value or ⊥.
std::optional<sim::Value> pka_decide(const DecisionInput& in, DeciderMode mode,
                                     const DeciderLimits& limits, DeciderStats* stats = nullptr);

}  // namespace rmt::protocols

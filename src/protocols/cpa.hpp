// protocols/cpa.hpp — Koo's Certified Propagation Algorithm [8] under the
// t-locally bounded adversary model.
//
// CPA's certification rule — "decide x once t+1 neighbors vouch for it,
// since at least one of them must be honest" — is exactly Z-CPA with the
// local structure "subsets of N(v) of size at most t". The paper cites CPA
// as the special case its general machinery subsumes (§1.1); we expose it
// as a named protocol both as the historic baseline and as a living test
// that the subsumption holds (tests run CPA and the equivalent Z-CPA
// side by side).
#pragma once

#include "protocols/zcpa.hpp"

namespace rmt::protocols {

class Cpa final : public Protocol {
 public:
  explicit Cpa(std::size_t t);

  std::string name() const override;
  std::unique_ptr<sim::ProtocolNode> make_node(const LocalKnowledge& lk,
                                               const PublicInfo& pub) const override;

  std::size_t threshold() const { return t_; }

 private:
  std::size_t t_;
  Zcpa inner_;
};

}  // namespace rmt::protocols

// protocols/ppa.hpp — the Path Propagation Algorithm, the classic
// full-knowledge RMT baseline ([13]; decision rule in the spirit of
// Kumar et al. [9]).
//
// Dealer floods (x_D, {D}); intermediate nodes apply the trail-stamped
// relay rule; the receiver — who under full knowledge holds G and Z —
// decides on x as soon as some admissible Z ∈ Z explains away all dissent:
//
//   decide x  ⇔  ∃Z ∈ Z:  every simple D–R path of G avoiding Z has
//                delivered exactly x (and at least one such path exists).
//
// On instances with no two-cover cut (feasibility.hpp) this is safe and
// resilient: taking Z ⊇ T (the real corruption) shows completeness by
// round |V|, and two values with witnesses Z_x, Z_y would make Z_x ∪ T a
// D–R cut. On *infeasible* instances PPA may decide wrongly — unlike
// RMT-PKA, which is safe everywhere (Thm 4); experiment T1/T4 exhibits
// the contrast.
//
// PPA only reads knowledge through γ — instantiate it on full-knowledge
// instances (γ(v) = G), where lk.view *is* G and lk.local_z *is* Z.
#pragma once

#include "protocols/protocol.hpp"

namespace rmt::protocols {

class Ppa final : public Protocol {
 public:
  /// `max_paths`: budget for the receiver's per-decision path enumeration;
  /// exceeding it makes the receiver abstain that round (safe direction).
  explicit Ppa(std::size_t max_paths = 4096);

  std::string name() const override { return "PPA"; }
  std::unique_ptr<sim::ProtocolNode> make_node(const LocalKnowledge& lk,
                                               const PublicInfo& pub) const override;

 private:
  std::size_t max_paths_;
};

}  // namespace rmt::protocols

#include "protocols/rmt_pka.hpp"

#include <algorithm>

#include "protocols/flooding.hpp"
#include "util/check.hpp"

namespace rmt::protocols {

namespace {

using sim::KnowledgePayload;
using sim::Message;
using sim::PathValuePayload;

class PkaNode final : public sim::ProtocolNode {
 public:
  PkaNode(const LocalKnowledge& lk, const PublicInfo& pub, DeciderMode mode,
          const DeciderLimits& limits)
      : self_(lk.self), pub_(pub), knowledge_(lk), relay_(lk.self), mode_(mode),
        limits_(limits) {
    neighbors_ = lk.view.neighbors(self_);
    if (self_ == pub_.receiver) {
      input_.dealer = pub_.dealer;
      input_.receiver = pub_.receiver;
      input_.receiver_knowledge = lk;
    }
  }

  std::vector<Message> on_start() override {
    std::vector<Message> out;
    if (self_ == pub_.dealer) {
      RMT_CHECK(pub_.dealer_value.has_value(), "dealer node without a value");
      decision_ = *pub_.dealer_value;
      neighbors_.for_each([&](NodeId u) {
        out.push_back({self_, u, PathValuePayload{*pub_.dealer_value, Path{self_}}});
        out.push_back(
            {self_, u, KnowledgePayload{self_, knowledge_.view, knowledge_.local_z, Path{self_}}});
      });
    } else if (self_ != pub_.receiver) {
      neighbors_.for_each([&](NodeId u) {
        out.push_back(
            {self_, u, KnowledgePayload{self_, knowledge_.view, knowledge_.local_z, Path{self_}}});
      });
    }
    return out;
  }

  std::vector<Message> on_round(std::size_t, const std::vector<Message>& inbox) override {
    if (self_ == pub_.dealer) return {};
    std::vector<Message> out;
    bool received_anything = false;
    for (const Message& m : inbox) {
      if (const auto* t1 = std::get_if<PathValuePayload>(&m.payload)) {
        received_anything = true;
        if (self_ == pub_.receiver) {
          absorb_type1(m, *t1);
        } else {
          relay_.relay(m, *t1, neighbors_, out);
        }
      } else if (const auto* t2 = std::get_if<KnowledgePayload>(&m.payload)) {
        received_anything = true;
        if (self_ == pub_.receiver) {
          absorb_type2(m, *t2);
        } else {
          relay_.relay(m, *t2, neighbors_, out);
        }
      }
      // Other payload kinds: erroneous for this protocol — discard.
    }
    if (self_ == pub_.receiver && !decision_ && received_anything) {
      decision_ = pka_decide(input_, mode_, limits_, &stats_);
    }
    return out;
  }

  std::optional<sim::Value> decision() const override { return decision_; }

  const DeciderStats& stats() const { return stats_; }

 private:
  void absorb_type1(const Message& m, const PathValuePayload& t1) {
    if (!relay_.admissible(t1.trail, m.from)) return;
    // Dealer propagation rule: (x_D, {D}) straight from D over the
    // authenticated channel.
    if (m.from == pub_.dealer && t1.trail == Path{pub_.dealer}) input_.direct_value = t1.x;
    Path full = t1.trail;
    full.push_back(self_);
    input_.type1[t1.x].insert(std::move(full));
  }

  void absorb_type2(const Message& m, const KnowledgePayload& t2) {
    if (!relay_.admissible(t2.trail, m.from)) return;
    // Reject structurally impossible claims outright: a view must contain
    // its subject (γ(u) ∋ u by definition).
    if (!t2.view.has_node(t2.subject)) return;
    NodeReport rep{t2.subject, t2.view, t2.local_z};
    auto& versions = input_.reports[t2.subject];
    if (std::find(versions.begin(), versions.end(), rep) == versions.end())
      versions.push_back(std::move(rep));
  }

  NodeId self_;
  PublicInfo pub_;
  LocalKnowledge knowledge_;
  NodeSet neighbors_;
  TrailRelay relay_;
  DeciderMode mode_;
  DeciderLimits limits_;
  DecisionInput input_;
  DeciderStats stats_;
  std::optional<sim::Value> decision_;
};

}  // namespace

RmtPka::RmtPka(DeciderMode mode, DeciderLimits limits) : mode_(mode), limits_(limits) {}

std::unique_ptr<sim::ProtocolNode> RmtPka::make_node(const LocalKnowledge& lk,
                                                     const PublicInfo& pub) const {
  return std::make_unique<PkaNode>(lk, pub, mode_, limits_);
}

}  // namespace rmt::protocols

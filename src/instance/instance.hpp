// instance/instance.hpp — an RMT problem instance I = (G, Z, γ, D, R).
//
// The tuple of §1.3/§3: network G, adversary structure Z, view function γ,
// dealer D, receiver R. The class validates the model's well-formedness
// conditions once so every consumer (analysis, protocols, experiments) can
// rely on them:
//   * D, R ∈ V(G), D ≠ R;
//   * every view γ(v) is a subgraph of G containing v;
//   * Z contains ∅ (an adversary that may corrupt nobody is admissible —
//     resilience quantifies over *all* admissible sets, including ∅);
//   * D and R are not members of any admissible set: the dealer is honest
//     by assumption throughout the paper ("the dealer's presumed honesty"),
//     and a corrupted receiver makes the decision problem vacuous.
#pragma once

#include <string>

#include "adversary/structure.hpp"
#include "knowledge/local_knowledge.hpp"
#include "knowledge/view.hpp"

namespace rmt {

class Instance {
 public:
  /// Validates the conditions listed above; throws std::invalid_argument
  /// on violation.
  Instance(Graph g, AdversaryStructure z, ViewFunction gamma, NodeId dealer, NodeId receiver);

  /// Convenience: ad hoc instance (G, Z, D, R) of §4 — γ is derived.
  static Instance ad_hoc(Graph g, AdversaryStructure z, NodeId dealer, NodeId receiver);

  /// Convenience: full-knowledge instance.
  static Instance full_knowledge(Graph g, AdversaryStructure z, NodeId dealer, NodeId receiver);

  const Graph& graph() const { return g_; }
  const AdversaryStructure& adversary() const { return z_; }
  const ViewFunction& gamma() const { return gamma_; }
  NodeId dealer() const { return dealer_; }
  NodeId receiver() const { return receiver_; }

  std::size_t num_players() const { return g_.num_nodes(); }

  /// Z_v — the local adversary structure of v.
  AdversaryStructure local_structure(NodeId v) const;

  /// v's complete round-0 knowledge.
  LocalKnowledge knowledge_of(NodeId v) const;

  /// True if `t` is an admissible corruption set (t ∈ Z; the validated
  /// invariants already exclude D and R from all admissible sets).
  bool admissible_corruption(const NodeSet& t) const { return z_.contains(t); }

  std::string to_string() const;

  /// Deep invariant check (rmt::audit): re-derives the constructor's
  /// well-formedness conditions against the *current* members (catching
  /// post-construction corruption the one-shot validation cannot). Throws
  /// audit::AuditError.
  void debug_validate() const;

 private:
  friend struct AuditTestAccess;  // tests corrupt internals to prove detection

  Graph g_;
  AdversaryStructure z_;
  ViewFunction gamma_;
  NodeId dealer_;
  NodeId receiver_;
};

}  // namespace rmt

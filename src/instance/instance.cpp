#include "instance/instance.hpp"

#include "util/audit.hpp"
#include "util/check.hpp"

namespace rmt {

Instance::Instance(Graph g, AdversaryStructure z, ViewFunction gamma, NodeId dealer,
                   NodeId receiver)
    : g_(std::move(g)), z_(std::move(z)), gamma_(std::move(gamma)), dealer_(dealer),
      receiver_(receiver) {
  RMT_REQUIRE(g_.has_node(dealer_), "Instance: dealer not in graph");
  RMT_REQUIRE(g_.has_node(receiver_), "Instance: receiver not in graph");
  RMT_REQUIRE(dealer_ != receiver_, "Instance: dealer equals receiver");
  RMT_REQUIRE(z_.contains(NodeSet{}), "Instance: adversary structure must contain the empty set");
  const NodeSet support = z_.support();
  RMT_REQUIRE(!support.contains(dealer_), "Instance: dealer must be honest (not in any Z ∈ Z)");
  RMT_REQUIRE(!support.contains(receiver_),
              "Instance: receiver must be honest (not in any Z ∈ Z)");
  RMT_REQUIRE(support.is_subset_of(g_.nodes()), "Instance: Z mentions nodes outside G");
  g_.nodes().for_each([&](NodeId v) {
    const Graph& view = gamma_.view(v);  // throws if missing
    RMT_REQUIRE(view.has_node(v), "Instance: view must contain its owner");
    RMT_REQUIRE(g_.contains_subgraph(view), "Instance: view is not a subgraph of G");
  });
}

Instance Instance::ad_hoc(Graph g, AdversaryStructure z, NodeId dealer, NodeId receiver) {
  ViewFunction gamma = ViewFunction::ad_hoc(g);
  return Instance(std::move(g), std::move(z), std::move(gamma), dealer, receiver);
}

Instance Instance::full_knowledge(Graph g, AdversaryStructure z, NodeId dealer,
                                  NodeId receiver) {
  ViewFunction gamma = ViewFunction::full(g);
  return Instance(std::move(g), std::move(z), std::move(gamma), dealer, receiver);
}

AdversaryStructure Instance::local_structure(NodeId v) const {
  return z_.restricted_to(gamma_.view_nodes(v));
}

LocalKnowledge Instance::knowledge_of(NodeId v) const {
  return derive_local_knowledge(g_, z_, gamma_, v);
}

void Instance::debug_validate() const {
  if (!g_.has_node(dealer_)) audit::detail::fail("instance", "dealer not in graph");
  if (!g_.has_node(receiver_)) audit::detail::fail("instance", "receiver not in graph");
  if (dealer_ == receiver_) audit::detail::fail("instance", "dealer equals receiver");
  if (!z_.contains(NodeSet{}))
    audit::detail::fail("instance", "adversary structure does not contain ∅");
  const NodeSet support = z_.support();
  if (support.contains(dealer_))
    audit::detail::fail("instance", "dealer is a member of an admissible set");
  if (support.contains(receiver_))
    audit::detail::fail("instance", "receiver is a member of an admissible set");
  if (!support.is_subset_of(g_.nodes()))
    audit::detail::fail("instance", "Z mentions nodes outside G: " +
                                        (support - g_.nodes()).to_string());
  if (!(gamma_.ground() == g_))
    audit::detail::fail("instance", "view function is grounded on a different graph");
}

std::string Instance::to_string() const {
  return "Instance(D=" + std::to_string(dealer_) + ", R=" + std::to_string(receiver_) +
         ", " + g_.to_string() + ", " + z_.to_string() + ")";
}

}  // namespace rmt

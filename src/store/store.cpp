// store/store.cpp — the only translation unit in the library allowed to
// touch raw POSIX file I/O (tools/rmt_lint.py's io-discipline rule fences
// open/pread/pwrite/fsync/rename/unlink here): everything below is the
// crash-safety story, and crash safety is exactly the property iostream
// buffering hides.
#include "store/store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "store/metric_names.hpp"
#include "util/audit.hpp"

namespace rmt::store {

namespace {

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw std::invalid_argument("store: " + what + " '" + path + "': " + std::strerror(errno));
}

/// write(2) the whole buffer (appending fd), retrying short writes.
void write_all(int fd, const char* data, std::size_t size, const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write to", path);
    }
    done += std::size_t(n);
  }
}

/// Read the entire file behind `fd` (size from fstat) into a string.
std::string read_all(int fd, const std::string& path) {
  struct stat st{};
  if (::fstat(fd, &st) != 0) throw_errno("stat", path);
  std::string out;
  out.resize(std::size_t(st.st_size));
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd, out.data() + done, out.size() - done, off_t(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read", path);
    }
    if (n == 0) {  // shrank underneath us; trust what we got
      out.resize(done);
      break;
    }
    done += std::size_t(n);
  }
  return out;
}

void fsync_or_throw(int fd, const std::string& path) {
  if (::fsync(fd) != 0) throw_errno("fsync", path);
}

/// fsync the directory so a freshly created/renamed store.log is durable.
void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best-effort (some filesystems refuse)
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

Store::Store(Options opts) : opts_(std::move(opts)) {
  RMT_REQUIRE(!opts_.dir.empty(), "store::Store: empty directory");
  RMT_REQUIRE(opts_.compact_dead_ratio > 0.0 && opts_.compact_dead_ratio <= 1.0,
              "store::Store: compact_dead_ratio outside (0, 1]");
  if (::mkdir(opts_.dir.c_str(), 0755) != 0 && errno != EEXIST)
    throw_errno("create directory", opts_.dir);
  path_ = opts_.dir + "/store.log";
  // O_APPEND: every write(2) lands at EOF regardless of where the fd was
  // left (a freshly opened fd sits at 0 — without this, the first append
  // after a reopen would overwrite the identity header).
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) throw_errno("open", path_);
  try {
    std::lock_guard<std::mutex> lock(m_);
    load_locked();
    maybe_compact_locked();
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

Store::~Store() {
  if (fd_ >= 0) ::close(fd_);
}

void Store::load_locked() {
  RMT_OBS_SCOPE("store.load");
  RMT_TRACE_SPAN("store.load");
  std::string image = read_all(fd_, path_);
  if (image.empty()) {
    // Fresh store: durable identity line before the first record.
    const std::string header = header_line(0);
    write_all(fd_, header.data(), header.size(), path_);
    fsync_or_throw(fd_, path_);
    fsync_dir(opts_.dir);
    generation_ = 0;
    header_size_ = header.size();
    total_bytes_ = header.size();
    live_bytes_ = header.size();
    record_count_ = 0;
    next_seq_ = 0;
    return;
  }
  // scan_bytes throws std::invalid_argument on a hostile identity line —
  // propagate: a file that is not ours is rejected, never overwritten.
  const ScanResult scan = scan_bytes(image);
  RMT_AUDIT_VALIDATE(scan, image);
  if (scan.torn) {
    // Torn-tail repair, the manifest way: drop the unusable suffix so the
    // next append starts from a clean frame boundary.
    if (::ftruncate(fd_, off_t(scan.valid_prefix)) != 0) throw_errno("truncate", path_);
    fsync_or_throw(fd_, path_);
    ++counters_.repairs;
  }
  generation_ = scan.generation;
  header_size_ = scan.header_size;
  total_bytes_ = scan.valid_prefix;
  record_count_ = scan.records.size();
  index_.clear();
  for (const RecordRef& r : scan.records) {
    next_seq_ = std::max(next_seq_, r.seq + 1);
    Entry e;
    e.offset = r.offset;
    e.size = r.size;
    e.value_len = r.value_len;
    e.seq = r.seq;
    const auto it = index_.find(r.key);
    // File order breaks seq ties: a later identical seq wins, matching
    // the order the records were appended.
    if (it == index_.end() || r.seq >= it->second.seq)
      index_[r.key] = e;
  }
  live_bytes_ = header_size_;
  for (const auto& [key, e] : index_) live_bytes_ += e.size;
}

std::optional<std::string> Store::read_value_locked(const Entry& e, const std::string& key) {
  std::string frame;
  frame.resize(e.size);
  std::size_t done = 0;
  while (done < frame.size()) {
    const ssize_t n = ::pread(fd_, frame.data() + done, frame.size() - done,
                              off_t(e.offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      ++counters_.read_errors;
      return std::nullopt;
    }
    if (n == 0) {
      ++counters_.read_errors;
      return std::nullopt;
    }
    done += std::size_t(n);
  }
  // Re-verify the full frame on every read: a flipped bit anywhere in the
  // record turns this get into a miss, never into a wrong byte.
  if (frame.size() < kRecordHeaderSize + key.size()) {
    ++counters_.read_errors;
    return std::nullopt;
  }
  const std::uint32_t key_len = detail::get_u32(frame, 0);
  const std::uint32_t value_len = detail::get_u32(frame, 4);
  const std::uint64_t seq = detail::get_u64(frame, 8);
  const std::uint64_t checksum = detail::get_u64(frame, 16);
  if (key_len != key.size() || value_len != e.value_len || seq != e.seq ||
      frame.compare(kRecordHeaderSize, key.size(), key) != 0) {
    ++counters_.read_errors;
    return std::nullopt;
  }
  std::string value = frame.substr(kRecordHeaderSize + key.size());
  if (record_checksum(key, value, seq) != checksum) {
    ++counters_.read_errors;
    return std::nullopt;
  }
  return value;
}

std::optional<std::string> Store::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(m_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return std::nullopt;
  }
  std::optional<std::string> value = read_value_locked(it->second, key);
  if (!value) {
    // Poisoned on disk: forget the entry so future gets miss cheaply and
    // compaction drops the bytes.
    live_bytes_ -= it->second.size;
    index_.erase(it);
    ++counters_.misses;
    return std::nullopt;
  }
  ++counters_.hits;
  return value;
}

void Store::append_locked(const std::string& key, const std::string& value) {
  RMT_OBS_SCOPE("store.append");
  RMT_TRACE_SPAN("store.append");
  const std::string frame = encode_record(key, value, next_seq_);
  write_all(fd_, frame.data(), frame.size(), path_);
  if (opts_.fsync_each_append) fsync_or_throw(fd_, path_);
  Entry e;
  e.offset = total_bytes_;
  e.size = frame.size();
  e.value_len = value.size();
  e.seq = next_seq_;
  ++next_seq_;
  if (const auto it = index_.find(key); it != index_.end()) live_bytes_ -= it->second.size;
  index_[key] = e;
  total_bytes_ += frame.size();
  live_bytes_ += frame.size();
  ++record_count_;
  ++counters_.appends;
}

void Store::put(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lock(m_);
  if (const auto it = index_.find(key); it != index_.end()) {
    // Absorb identical rewrites (the common write-back after a disk hit
    // warmed the memory tier) without growing the log.
    if (it->second.value_len == value.size()) {
      const std::optional<std::string> current = read_value_locked(it->second, key);
      if (current && *current == value) return;
    }
  }
  append_locked(key, value);
  maybe_compact_locked();
}

void Store::flush() {
  std::lock_guard<std::mutex> lock(m_);
  fsync_or_throw(fd_, path_);
}

void Store::compact() {
  std::lock_guard<std::mutex> lock(m_);
  compact_locked();
}

void Store::maybe_compact_locked() {
  const std::uint64_t dead = total_bytes_ - live_bytes_;
  const bool ratio_hit = dead >= opts_.compact_min_dead_bytes &&
                         double(dead) > opts_.compact_dead_ratio * double(total_bytes_);
  const bool over_budget = opts_.max_bytes > 0 && total_bytes_ > opts_.max_bytes;
  if (ratio_hit || over_budget) compact_locked();
}

void Store::compact_locked() {
  RMT_OBS_SCOPE("store.compact");
  RMT_TRACE_SPAN("store.compact");
  // Live records in seq order, so the rewritten log replays the history
  // of surviving writes.
  std::vector<std::pair<std::string, Entry>> live(index_.begin(), index_.end());
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a.second.seq < b.second.seq; });

  // Budget enforcement happens here, not on the append path: evict
  // lowest-seq (oldest surviving) records until the live set fits.
  if (opts_.max_bytes > 0) {
    std::uint64_t live_total = header_size_;
    for (const auto& [key, e] : live) live_total += e.size;
    std::size_t first = 0;
    while (first < live.size() && live_total > opts_.max_bytes) {
      live_total -= live[first].second.size;
      ++counters_.evictions;
      ++first;
    }
    live.erase(live.begin(), live.begin() + std::ptrdiff_t(first));
  }

  const std::string tmp_path = path_ + ".tmp";
  const int tmp = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tmp < 0) throw_errno("open", tmp_path);
  std::unordered_map<std::string, Entry> new_index;
  std::uint64_t new_total = 0;
  try {
    const std::string header = header_line(generation_ + 1);
    write_all(tmp, header.data(), header.size(), tmp_path);
    new_total = header.size();
    for (auto& [key, e] : live) {
      const std::optional<std::string> value = read_value_locked(e, key);
      if (!value) continue;  // bit rot discovered during rewrite: drop it
      const std::string frame = encode_record(key, *value, e.seq);
      write_all(tmp, frame.data(), frame.size(), tmp_path);
      Entry ne = e;
      ne.offset = new_total;
      new_index[key] = ne;
      new_total += frame.size();
    }
    fsync_or_throw(tmp, tmp_path);
  } catch (...) {
    ::close(tmp);
    ::unlink(tmp_path.c_str());
    throw;
  }
  ::close(tmp);
  // Atomic cutover: rename, fsync the directory, reopen the new inode.
  if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    throw_errno("rename", tmp_path);
  }
  fsync_dir(opts_.dir);
  const int nfd = ::open(path_.c_str(), O_RDWR | O_APPEND, 0644);
  if (nfd < 0) throw_errno("reopen", path_);
  ::close(fd_);
  fd_ = nfd;
  ++generation_;
  header_size_ = header_line(generation_).size();
  index_ = std::move(new_index);
  record_count_ = index_.size();
  total_bytes_ = new_total;
  live_bytes_ = new_total;
  ++counters_.compactions;
}

Stats Store::stats() const {
  std::lock_guard<std::mutex> lock(m_);
  Stats out = counters_;
  out.records = record_count_;
  out.live_records = index_.size();
  out.bytes = total_bytes_;
  out.live_bytes = live_bytes_;
  out.generation = generation_;
  return out;
}

void Store::publish_stats() {
  if (!obs::enabled()) return;
  const Stats now = stats();
  std::lock_guard<std::mutex> lock(m_);
  obs::Registry& reg = obs::Registry::global();
  reg.counter("store.hits").inc(now.hits - published_.hits);
  reg.counter("store.misses").inc(now.misses - published_.misses);
  reg.counter("store.appends").inc(now.appends - published_.appends);
  reg.counter("store.read_errors").inc(now.read_errors - published_.read_errors);
  reg.counter("store.compactions").inc(now.compactions - published_.compactions);
  reg.counter("store.evictions").inc(now.evictions - published_.evictions);
  reg.counter("store.repairs").inc(now.repairs - published_.repairs);
  reg.counter("store.merged").inc(now.merged - published_.merged);
  reg.gauge("store.records").set(double(now.records));
  reg.gauge("store.live_records").set(double(now.live_records));
  reg.gauge("store.bytes").set(double(now.bytes));
  reg.gauge("store.live_bytes").set(double(now.live_bytes));
  reg.gauge("store.generation").set(double(now.generation));
  published_ = now;
}

MergeReport merge(Store& dst, const std::string& src_dir) {
  const std::string src_path = src_dir + "/store.log";
  const int fd = ::open(src_path.c_str(), O_RDONLY);
  if (fd < 0) throw_errno("open", src_path);
  std::string image;
  try {
    image = read_all(fd, src_path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  // Hostile source headers throw std::invalid_argument out of here; a
  // torn source tail is merely ignored (the source is never modified).
  const ScanResult scan = scan_bytes(image);
  RMT_AUDIT_VALIDATE(scan, image);

  // Last-writer-wins within the source log before any comparison.
  std::unordered_map<std::string, const RecordRef*> live;
  for (const RecordRef& r : scan.records) {
    const auto it = live.find(r.key);
    if (it == live.end() || r.seq >= it->second->seq) live[r.key] = &r;
  }

  MergeReport report;
  for (const auto& [key, ref] : live) {
    ++report.scanned;
    const std::string value(image.substr(ref->value_offset, ref->value_len));
    std::lock_guard<std::mutex> lock(dst.m_);
    const auto it = dst.index_.find(key);
    if (it != dst.index_.end()) {
      const std::optional<std::string> have = dst.read_value_locked(it->second, key);
      if (have && *have == value) {
        ++report.skipped_equal;
        continue;
      }
      if (have) {
        // Results are pure functions of the key: two stores disagreeing
        // on the bytes means one of them is corrupt or lying. Refuse.
        throw std::runtime_error("store: merge divergence on key '" + key + "': destination has " +
                                 std::to_string(have->size()) + " bytes, source has " +
                                 std::to_string(value.size()) + " differing bytes");
      }
      // Destination record rotted (read_value dropped it): take the
      // source's copy below.
    }
    dst.append_locked(key, value);
    ++dst.counters_.merged;
    ++report.appended;
  }
  {
    std::lock_guard<std::mutex> lock(dst.m_);
    dst.maybe_compact_locked();
    fsync_or_throw(dst.fd_, dst.path_);
  }
  return report;
}

}  // namespace rmt::store

namespace rmt::audit {

void validate(const store::Store& s) {
  const char* component = "store";
  std::lock_guard<std::mutex> lock(s.m_);
  const std::string image = [&] {
    struct stat st{};
    if (::fstat(s.fd_, &st) != 0) detail::fail(component, "store file unreadable");
    std::string out(std::size_t(st.st_size), '\0');
    std::size_t done = 0;
    while (done < out.size()) {
      const ssize_t n = ::pread(s.fd_, out.data() + done, out.size() - done, off_t(done));
      if (n <= 0) detail::fail(component, "store file read failed mid-audit");
      done += std::size_t(n);
    }
    return out;
  }();
  if (image.size() != s.total_bytes_)
    detail::fail(component, "byte ledger " + std::to_string(s.total_bytes_) +
                                " disagrees with file size " + std::to_string(image.size()));
  store::ScanResult scan;
  try {
    scan = store::scan_bytes(image);
  } catch (const std::invalid_argument& e) {
    detail::fail(component, std::string("live store fails its own identity check: ") + e.what());
  }
  validate(scan, image);
  if (scan.torn) detail::fail(component, "live store carries a torn tail");
  if (scan.generation != s.generation_)
    detail::fail(component, "generation ledger disagrees with the header");
  // The index must be exactly the newest record per key.
  std::unordered_map<std::string, const store::RecordRef*> newest;
  for (const store::RecordRef& r : scan.records) {
    const auto it = newest.find(r.key);
    if (it == newest.end() || r.seq >= it->second->seq) newest[r.key] = &r;
  }
  if (newest.size() != s.index_.size())
    detail::fail(component, "index size disagrees with the log's live set");
  std::uint64_t live_bytes = s.header_size_;
  for (const auto& [key, e] : s.index_) {
    const auto it = newest.find(key);
    if (it == newest.end()) detail::fail(component, "index key absent from the log");
    if (it->second->offset != e.offset || it->second->size != e.size ||
        it->second->seq != e.seq)
      detail::fail(component, "index entry disagrees with the newest record for its key");
    if (e.seq >= s.next_seq_) detail::fail(component, "index seq at or past next_seq");
    live_bytes += e.size;
  }
  if (live_bytes != s.live_bytes_)
    detail::fail(component, "live byte ledger disagrees with the index");
  detail::passed(component);
}

}  // namespace rmt::audit

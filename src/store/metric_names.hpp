// store/metric_names.hpp — the closed registry of rmt::store metric names.
//
// Every "store.*" metric name a C++ source references must be listed here,
// mirroring the svc and net metric registries: tools/rmt_lint.py
// cross-checks both directions — a source referencing an unregistered
// name, or a registry entry with no remaining source — so the `store`
// section of the stats probe and BENCH_store.json consumers can treat the
// persistence vocabulary as a stable schema. The store phase names
// ("store.load", "store.append", "store.compact") live in the phase
// registry (obs/phase_names.hpp), not here; the linter knows the
// difference.
//
// To add a metric: add the instrumentation site and the entry here in the
// same change; the linter markers below delimit what it parses.
#pragma once

#include <array>
#include <string_view>

namespace rmt::store {

// lint:store-metric-registry-begin
inline constexpr std::array<std::string_view, 13> kStoreMetricNames = {
    "store.appends",
    "store.bytes",
    "store.compactions",
    "store.evictions",
    "store.generation",
    "store.hits",
    "store.live_bytes",
    "store.live_records",
    "store.merged",
    "store.misses",
    "store.read_errors",
    "store.records",
    "store.repairs",
};
// lint:store-metric-registry-end

constexpr bool is_known_store_metric(std::string_view name) {
  for (std::string_view m : kStoreMetricNames)
    if (m == name) return true;
  return false;
}

}  // namespace rmt::store

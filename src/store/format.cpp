#include "store/format.hpp"

#include "util/audit.hpp"

namespace rmt::store {

namespace {

/// The header prefix the check covers: everything before " check ".
std::string header_prefix(std::uint64_t generation) {
  return "rmt-store v1 generation " + std::to_string(generation);
}

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[std::size_t(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace

std::string header_line(std::uint64_t generation) {
  const std::string prefix = header_prefix(generation);
  return prefix + " check " + hex16(svc::fnv1a64(prefix)) + "\n";
}

std::uint64_t record_checksum(const std::string& key, const std::string& value,
                              std::uint64_t seq) {
  std::string covered;
  covered.reserve(16 + key.size() + value.size());
  detail::put_u32(covered, std::uint32_t(key.size()));
  detail::put_u32(covered, std::uint32_t(value.size()));
  detail::put_u64(covered, seq);
  covered += key;
  covered += value;
  return svc::fnv1a64(covered);
}

std::string encode_record(const std::string& key, const std::string& value, std::uint64_t seq) {
  RMT_REQUIRE(!key.empty(), "store::encode_record: empty key");
  RMT_REQUIRE(key.size() <= kMaxKeyLen,
              "store::encode_record: key of " + std::to_string(key.size()) +
                  " bytes exceeds the cap " + std::to_string(kMaxKeyLen));
  RMT_REQUIRE(value.size() <= kMaxValueLen,
              "store::encode_record: value of " + std::to_string(value.size()) +
                  " bytes exceeds the cap " + std::to_string(kMaxValueLen));
  std::string out;
  out.reserve(kRecordHeaderSize + key.size() + value.size());
  detail::put_u32(out, std::uint32_t(key.size()));
  detail::put_u32(out, std::uint32_t(value.size()));
  detail::put_u64(out, seq);
  detail::put_u64(out, record_checksum(key, value, seq));
  out += key;
  out += value;
  return out;
}

ScanResult scan_bytes(std::string_view bytes) {
  // --- identity line: reject, never repair -----------------------------
  const std::size_t probe = std::min(bytes.size(), kMaxHeaderLine);
  const std::size_t nl = bytes.substr(0, probe).find('\n');
  if (nl == std::string_view::npos)
    throw std::invalid_argument("store: no identity line within the first " +
                                std::to_string(kMaxHeaderLine) + " bytes — not a store file");
  const std::string line(bytes.substr(0, nl));
  // "rmt-store v1 generation <G> check <16-hex>"
  static const std::string kMagic = "rmt-store v1 generation ";
  if (line.rfind(kMagic, 0) != 0)
    throw std::invalid_argument("store: identity line does not start with '" + kMagic + "'");
  const std::size_t check_at = line.find(" check ");
  if (check_at == std::string::npos)
    throw std::invalid_argument("store: identity line carries no check field");
  const std::string gen_text = line.substr(kMagic.size(), check_at - kMagic.size());
  if (gen_text.empty() || gen_text.find_first_not_of("0123456789") != std::string::npos)
    throw std::invalid_argument("store: identity line generation '" + gen_text +
                                "' is not a number");
  std::uint64_t generation = 0;
  for (const char c : gen_text) {
    if (generation > (UINT64_MAX - std::uint64_t(c - '0')) / 10)
      throw std::invalid_argument("store: identity line generation overflows");
    generation = generation * 10 + std::uint64_t(c - '0');
  }
  const std::string prefix = line.substr(0, check_at);
  const std::string want = line.substr(check_at + 7);
  std::string have;
  {
    const std::uint64_t h = svc::fnv1a64(prefix);
    have = hex16(h);
  }
  if (want != have)
    throw std::invalid_argument("store: identity check mismatch (header says '" + want +
                                "', contents hash to '" + have + "')");

  ScanResult out;
  out.generation = generation;
  out.header_size = nl + 1;
  out.valid_prefix = out.header_size;

  // --- records: scan until the bytes stop framing ----------------------
  std::size_t at = out.header_size;
  while (at < bytes.size()) {
    const std::size_t left = bytes.size() - at;
    if (left < kRecordHeaderSize) {
      out.torn = true;
      out.tail_error = "torn record header: " + std::to_string(left) + " trailing bytes at offset " +
                       std::to_string(at);
      break;
    }
    const std::uint32_t key_len = detail::get_u32(bytes, at);
    const std::uint32_t value_len = detail::get_u32(bytes, at + 4);
    if (key_len == 0 || key_len > kMaxKeyLen || value_len > kMaxValueLen) {
      out.torn = true;
      out.tail_error = "implausible frame at offset " + std::to_string(at) + ": key_len " +
                       std::to_string(key_len) + ", value_len " + std::to_string(value_len);
      break;
    }
    const std::size_t body = std::size_t(key_len) + std::size_t(value_len);
    if (left < kRecordHeaderSize + body) {
      out.torn = true;
      out.tail_error = "torn record body at offset " + std::to_string(at) + ": frame wants " +
                       std::to_string(kRecordHeaderSize + body) + " bytes, file has " +
                       std::to_string(left);
      break;
    }
    const std::uint64_t seq = detail::get_u64(bytes, at + 8);
    const std::uint64_t checksum = detail::get_u64(bytes, at + 16);
    const std::string key(bytes.substr(at + kRecordHeaderSize, key_len));
    const std::string value(bytes.substr(at + kRecordHeaderSize + key_len, value_len));
    if (record_checksum(key, value, seq) != checksum) {
      out.torn = true;
      out.tail_error = "checksum mismatch at offset " + std::to_string(at);
      break;
    }
    RecordRef ref;
    ref.offset = at;
    ref.size = kRecordHeaderSize + body;
    ref.key = key;
    ref.value_offset = at + kRecordHeaderSize + key_len;
    ref.value_len = value_len;
    ref.seq = seq;
    ref.checksum = checksum;
    out.records.push_back(std::move(ref));
    at += kRecordHeaderSize + body;
    out.valid_prefix = at;
  }
  return out;
}

}  // namespace rmt::store

namespace rmt::audit {

void validate(const store::ScanResult& scan, std::string_view bytes) {
  const char* component = "store";
  if (scan.header_size == 0 || scan.header_size > bytes.size())
    detail::fail(component, "scan header_size outside the image");
  if (scan.valid_prefix < scan.header_size || scan.valid_prefix > bytes.size())
    detail::fail(component, "scan valid_prefix outside [header_size, size]");
  if (!scan.torn && scan.valid_prefix != bytes.size())
    detail::fail(component, "scan not torn yet valid_prefix < image size");
  std::size_t at = scan.header_size;
  for (const store::RecordRef& r : scan.records) {
    if (r.offset != at) detail::fail(component, "records not contiguous from the header");
    if (r.offset + r.size > scan.valid_prefix)
      detail::fail(component, "record crosses valid_prefix");
    if (r.key.empty() || r.key.size() > store::kMaxKeyLen ||
        r.value_len > store::kMaxValueLen)
      detail::fail(component, "record violates framing caps");
    if (r.value_offset != r.offset + store::kRecordHeaderSize + r.key.size())
      detail::fail(component, "record value_offset inconsistent with key size");
    const std::string value(bytes.substr(r.value_offset, r.value_len));
    if (store::record_checksum(r.key, value, r.seq) != r.checksum)
      detail::fail(component, "record checksum does not cover its bytes");
    at = r.offset + r.size;
  }
  if (at != scan.valid_prefix)
    detail::fail(component, "records do not tile the valid prefix");
  detail::passed(component);
}

}  // namespace rmt::audit

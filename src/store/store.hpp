// store/store.hpp — the persistent tier under svc::ResultCache: a
// crash-safe append-only record log with identity-checked recovery,
// last-writer-wins indexing, and budgeted compaction.
//
// The store answers the same get/put contract the in-memory cache does,
// but against <dir>/store.log (format.hpp). Properties the serving stack
// leans on:
//
//   * Crash safety. Appends are single write(2) calls of a fully framed
//     record; a process killed mid-append leaves at most one torn record
//     at the tail, which recovery truncates away (counted in
//     Stats::repairs). The identity header is fsync'd at creation and
//     after every compaction; appends themselves are not fsync'd by
//     default — SIGKILL keeps kernel-buffered writes, and losing the tail
//     to a power cut merely re-pays some compute.
//
//   * Never a wrong byte. get() re-verifies the record checksum on every
//     read; a mismatch (bit rot, hostile edit) is a miss plus a
//     read_errors tick, never a served value. A file whose identity line
//     fails its check is rejected at open (std::invalid_argument).
//
//   * Last-writer-wins. Records carry a monotone seq; the newest seq for
//     a key is live, older duplicates are dead bytes. Online compaction
//     rewrites live records to a temp file and renames it into place
//     (generation + 1) once dead bytes pass Options::compact_dead_ratio,
//     or whenever the file exceeds Options::max_bytes — evicting
//     lowest-seq records if live bytes alone bust the budget.
//
//   * Thread safety. svc::Engine calls put() from pool workers and get()
//     from the submitting thread; every public method locks the one
//     internal mutex.
//
// merge() folds another store's log into this one: absent keys are
// appended, identical values are skipped, and a value divergence on the
// same key is a hard std::runtime_error — results are a pure function of
// the key, so divergence means one side is corrupt or lying.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "store/format.hpp"

namespace rmt::store {
class Store;
struct MergeReport;
MergeReport merge(Store& dst, const std::string& src_dir);
}  // namespace rmt::store

namespace rmt::audit {
/// Deep index-vs-log invariants: every index entry frames a verifiable
/// record whose key matches and whose seq is the newest for that key;
/// live/total byte accounting agrees with the file.
void validate(const store::Store& s);
}  // namespace rmt::audit

namespace rmt::store {

struct Options {
  /// Directory holding store.log; created if absent. Empty = no store
  /// (svc::Engine treats an empty dir as "disk tier disabled").
  std::string dir;
  /// Cap on the log file size in bytes; 0 = unlimited. Crossing it
  /// triggers compaction, then lowest-seq eviction until live bytes fit.
  std::uint64_t max_bytes = 0;
  /// Compact when dead bytes exceed this fraction of the file (and
  /// compact_min_dead_bytes, so small logs are not churned).
  double compact_dead_ratio = 0.5;
  std::uint64_t compact_min_dead_bytes = 1u << 16;
  /// fsync every append (durability against power loss, not just
  /// process death). Off by default: the serving win is restart reuse.
  bool fsync_each_append = false;
};

struct Stats {
  std::uint64_t hits = 0;         ///< get() served a verified value
  std::uint64_t misses = 0;       ///< get() found nothing usable
  std::uint64_t appends = 0;      ///< records appended by put()
  std::uint64_t read_errors = 0;  ///< checksum/frame mismatches on read
  std::uint64_t compactions = 0;  ///< log rewrites (generation bumps)
  std::uint64_t evictions = 0;    ///< live records dropped for the budget
  std::uint64_t repairs = 0;      ///< torn tails truncated at open
  std::uint64_t merged = 0;       ///< records appended by merge()
  std::uint64_t records = 0;      ///< records in the log (live + dead)
  std::uint64_t live_records = 0;
  std::uint64_t bytes = 0;        ///< log file size
  std::uint64_t live_bytes = 0;   ///< header + live record bytes
  std::uint64_t generation = 0;
};

class Store {
 public:
  /// Open or create <opts.dir>/store.log. Throws std::invalid_argument on
  /// an unusable directory or a file that fails its identity check;
  /// repairs (and counts) a torn tail. May compact immediately when the
  /// inherited log already busts the budget.
  explicit Store(Options opts);
  ~Store();

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Read-verify the newest record for `key`; nullopt on miss or on any
  /// integrity failure (which also drops the poisoned index entry).
  std::optional<std::string> get(const std::string& key);

  /// Append (or refresh) `key` -> `value`. A put identical to the live
  /// value is absorbed without growing the log. Throws
  /// std::invalid_argument past the framing caps.
  void put(const std::string& key, const std::string& value);

  /// fsync the log (serve shutdown, checkpoint points).
  void flush();

  /// Force a compaction regardless of thresholds.
  void compact();

  const std::string& path() const { return path_; }
  Stats stats() const;
  /// Push counters (as deltas) and gauges into obs::Registry::global()
  /// under the store.* names (store/metric_names.hpp).
  void publish_stats();

 private:
  friend MergeReport merge(Store& dst, const std::string& src_dir);
  friend void rmt::audit::validate(const Store& s);

  struct Entry {
    std::size_t offset = 0;  ///< record header offset in the log
    std::size_t size = 0;    ///< full framed size
    std::size_t value_len = 0;
    std::uint64_t seq = 0;
  };

  void load_locked();
  /// Read + verify the record behind `e`; nullopt counts a read error.
  std::optional<std::string> read_value_locked(const Entry& e, const std::string& key);
  void append_locked(const std::string& key, const std::string& value);
  void maybe_compact_locked();
  void compact_locked();

  Options opts_;
  std::string path_;
  int fd_ = -1;
  mutable std::mutex m_;
  std::unordered_map<std::string, Entry> index_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t record_count_ = 0;  ///< records in the log (live + dead)
  std::size_t header_size_ = 0;
  std::uint64_t total_bytes_ = 0;  ///< current log size incl. header
  std::uint64_t live_bytes_ = 0;   ///< header + live record bytes
  Stats counters_;                 ///< monotone counters (hits..merged)
  Stats published_;                ///< last publish_stats() snapshot
};

/// What merge() did (also printed by `rmt_cli store merge`).
struct MergeReport {
  std::uint64_t scanned = 0;        ///< live records in the source
  std::uint64_t appended = 0;       ///< keys new to the destination
  std::uint64_t skipped_equal = 0;  ///< keys present with identical bytes
};

// merge(): fold the store under `src_dir` into `dst` (declared above the
// class for the friend declaration). The source is opened read-only and
// never modified (a torn source tail is skipped, not repaired). Throws
// std::invalid_argument when the source is not a store,
// std::runtime_error when a shared key carries diverging values.

}  // namespace rmt::store

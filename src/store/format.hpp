// store/format.hpp — the on-disk format of the rmt::store record log, as
// pure byte-level helpers with no filesystem dependency.
//
// A store file is one text identity line followed by binary records:
//
//   rmt-store v1 generation <G> check <16-hex>\n
//   [record]*
//
// The header names the format, the compaction generation, and carries an
// FNV-1a-64 check over its own prefix — the same identity-check-on-load
// discipline exec::Campaign manifests use, so a foreign or bit-flipped
// file is rejected before a single record is trusted.
//
// Each record is length-prefixed and individually checksummed:
//
//   offset  0  u32  key_len     (little-endian)
//   offset  4  u32  value_len   (little-endian)
//   offset  8  u64  seq         (little-endian; last-writer-wins order)
//   offset 16  u64  checksum    (little-endian; FNV-1a-64 over bytes
//                                [0, 16) ++ key ++ value)
//   offset 24  key bytes, then value bytes
//
// scan_bytes() is the loader core: it either throws std::invalid_argument
// (hostile header — the file is not ours) or returns every well-formed
// record plus the length of the valid prefix. Trailing garbage — a torn
// append, a flipped length, a checksum mismatch — stops the scan but is
// NOT an error: the caller repairs by truncating to `valid_prefix`,
// exactly the torn-tail recovery the campaign manifest writer performs.
// Being pure, the same function is what rmt_fuzz's STORE domain hammers
// with truncated / bit-flipped / spliced images.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "svc/instance_key.hpp"
#include "util/check.hpp"

namespace rmt::store {

/// Framing caps. A key is a svc composite key (tens of bytes) and a value
/// a serialized result document; anything past these is a corrupt length
/// field, not a legitimate record.
inline constexpr std::size_t kMaxKeyLen = 4096;
inline constexpr std::size_t kMaxValueLen = 4u << 20;
/// Fixed binary record header size (two u32 lengths, seq, checksum).
inline constexpr std::size_t kRecordHeaderSize = 24;
/// A header line longer than this cannot be ours (the generation would
/// need > 80 digits); scanning stops instead of hunting for '\n' forever.
inline constexpr std::size_t kMaxHeaderLine = 128;

namespace detail {

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(char((v >> (8 * i)) & 0xff));
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(char((v >> (8 * i)) & 0xff));
}

inline std::uint32_t get_u32(std::string_view bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(std::uint8_t(bytes[at + std::size_t(i)])) << (8 * i);
  return v;
}

inline std::uint64_t get_u64(std::string_view bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(std::uint8_t(bytes[at + std::size_t(i)])) << (8 * i);
  return v;
}

}  // namespace detail

/// The identity line for generation `g`, newline included. The 16-hex
/// check is fnv1a64 over everything before " check ".
std::string header_line(std::uint64_t generation);

/// One framed record, ready to append. Throws std::invalid_argument when
/// the key or value exceeds its framing cap or the key is empty.
std::string encode_record(const std::string& key, const std::string& value, std::uint64_t seq);

/// The checksum a record with these fields must carry — exposed so tests
/// and the fuzzer can forge records (valid and deliberately corrupt).
std::uint64_t record_checksum(const std::string& key, const std::string& value,
                              std::uint64_t seq);

/// One well-formed record found by scan_bytes, referencing the scanned
/// image by offset (values are not copied out of multi-MiB images).
struct RecordRef {
  std::size_t offset = 0;        ///< file offset of the record header
  std::size_t size = 0;          ///< total framed size (header + key + value)
  std::string key;               ///< decoded key bytes
  std::size_t value_offset = 0;  ///< file offset of the value bytes
  std::size_t value_len = 0;
  std::uint64_t seq = 0;
  std::uint64_t checksum = 0;
};

/// What scan_bytes learned about an image.
struct ScanResult {
  std::uint64_t generation = 0;
  std::size_t header_size = 0;     ///< bytes of the identity line incl. '\n'
  std::vector<RecordRef> records;  ///< every well-formed record, file order
  std::size_t valid_prefix = 0;    ///< header + records; truncate here to repair
  bool torn = false;               ///< bytes past valid_prefix were rejected
  std::string tail_error;          ///< why the scan stopped (when torn)
};

/// Scan a store image. Throws std::invalid_argument when the identity line
/// is absent, malformed, or fails its check — the file is not a usable
/// store and must be rejected, not repaired. A bad record merely ends the
/// scan: everything before it is the recoverable prefix.
ScanResult scan_bytes(std::string_view bytes);

}  // namespace rmt::store

namespace rmt::audit {
/// Deep invariants of a scan result against its image: records contiguous
/// from the header, inside the valid prefix, checksums true, framing caps
/// respected. The fuzzer runs this on every surviving scan.
void validate(const store::ScanResult& scan, std::string_view bytes);
}  // namespace rmt::audit

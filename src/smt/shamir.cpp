#include "smt/shamir.hpp"

#include <algorithm>

namespace rmt::smt {

std::vector<Share> share(Fp secret, std::size_t t, std::size_t n, Rng& rng) {
  RMT_REQUIRE(t < n, "share: need more shares than the threshold");
  RMT_REQUIRE(n < kFieldPrime, "share: too many shares for the field");
  Poly f{secret};
  for (std::size_t i = 0; i < t; ++i) f.push_back(Fp(rng.uniform(0, kFieldPrime - 1)));
  std::vector<Share> out;
  out.reserve(n);
  for (std::size_t i = 1; i <= n; ++i)
    out.push_back({std::uint32_t(i), eval(f, Fp(i))});
  return out;
}

namespace {

std::vector<std::pair<Fp, Fp>> as_points(const std::vector<Share>& shares) {
  std::vector<std::pair<Fp, Fp>> pts;
  pts.reserve(shares.size());
  for (const Share& s : shares) pts.push_back({Fp(s.index), s.value});
  return pts;
}

}  // namespace

Fp reconstruct(const std::vector<Share>& shares, std::size_t t) {
  RMT_REQUIRE(shares.size() >= t + 1, "reconstruct: not enough shares");
  std::vector<Share> head(shares.begin(), shares.begin() + std::ptrdiff_t(t + 1));
  return eval(interpolate(as_points(head)), Fp(0));
}

DecodeResult robust_reconstruct(const std::vector<Share>& shares, std::size_t t,
                                std::size_t max_subsets) {
  DecodeResult result;
  const std::size_t n = shares.size();
  if (n < t + 1) return result;
  // Acceptance threshold by decoding regime: with n >= 3t+1 any degree-t
  // polynomial agreeing with n-t shares is unique (two such would agree on
  // n-2t >= t+1 points, forcing equality). Below that, safety demands
  // *all* shares fit — otherwise a second codeword could out-vote the
  // truth and decoding would return a wrong secret instead of detecting.
  const std::size_t need_agree = (n >= 3 * t + 1) ? n - t : n;
  const auto points = as_points(shares);

  // Enumerate (t+1)-subsets in lexicographic order; the honest fault-free
  // prefix (first t+1 shares) is tried first, so clean inputs decode in
  // one interpolation.
  std::vector<std::size_t> idx(t + 1);
  for (std::size_t i = 0; i <= t; ++i) idx[i] = i;
  std::size_t budget = max_subsets;
  for (;;) {
    if (budget-- == 0) return result;  // search exhausted — abstain
    std::vector<std::pair<Fp, Fp>> subset;
    for (std::size_t i : idx) subset.push_back(points[i]);
    const Poly f = interpolate(subset);
    if (degree(f) <= t) {
      std::size_t agree = 0;
      for (const auto& pt : points) agree += (eval(f, pt.first) == pt.second);
      if (agree >= need_agree) {
        result.secret = eval(f, Fp(0));
        result.agreeing = agree;
        for (const Share& s : shares)
          if (!(eval(f, Fp(s.index)) == s.value)) result.rejected.push_back(s.index);
        return result;
      }
    }
    // Next combination.
    std::size_t i = t + 1;
    while (i-- > 0) {
      if (idx[i] + (t + 1 - i) < n) {
        ++idx[i];
        for (std::size_t j = i + 1; j <= t; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return result;  // all combinations tried — no codeword
    }
  }
}

}  // namespace rmt::smt

// smt/gf.hpp — arithmetic in GF(p), p = 2^31 − 1 (a Mersenne prime).
//
// The substrate for the secure-message-transmission companion module
// (smt/): Shamir sharing and polynomial decoding need a field; a 31-bit
// Mersenne prime keeps every product inside 64 bits and reductions cheap,
// and its size comfortably exceeds the message spaces the experiments use.
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace rmt::smt {

/// The field modulus.
inline constexpr std::uint64_t kFieldPrime = 2147483647ull;  // 2^31 - 1

/// An element of GF(p). Regular value type; all operations are total
/// (division by zero throws).
class Fp {
 public:
  constexpr Fp() = default;
  /// Reduces any 64-bit value into the field.
  constexpr explicit Fp(std::uint64_t v) : v_(v % kFieldPrime) {}

  constexpr std::uint64_t value() const { return v_; }

  friend constexpr Fp operator+(Fp a, Fp b) { return Fp(a.v_ + b.v_); }
  friend constexpr Fp operator-(Fp a, Fp b) { return Fp(a.v_ + kFieldPrime - b.v_); }
  friend constexpr Fp operator*(Fp a, Fp b) { return Fp(a.v_ * b.v_); }
  friend Fp operator/(Fp a, Fp b) { return a * b.inverse(); }

  Fp& operator+=(Fp o) { return *this = *this + o; }
  Fp& operator-=(Fp o) { return *this = *this - o; }
  Fp& operator*=(Fp o) { return *this = *this * o; }

  friend constexpr bool operator==(Fp a, Fp b) { return a.v_ == b.v_; }

  /// a^e by square-and-multiply.
  Fp pow(std::uint64_t e) const;

  /// Multiplicative inverse (Fermat). Requires non-zero.
  Fp inverse() const;

 private:
  std::uint64_t v_ = 0;  // invariant: < kFieldPrime
};

}  // namespace rmt::smt

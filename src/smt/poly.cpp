#include "smt/poly.hpp"

#include <algorithm>

namespace rmt::smt {

Fp eval(const Poly& p, Fp x) {
  Fp acc(0);
  for (auto it = p.rbegin(); it != p.rend(); ++it) acc = acc * x + *it;
  return acc;
}

std::size_t degree(const Poly& p) {
  for (std::size_t i = p.size(); i-- > 0;)
    if (!(p[i] == Fp(0))) return i;
  return 0;
}

namespace {

// result += q * scale
void add_scaled(Poly& result, const Poly& q, Fp scale) {
  if (result.size() < q.size()) result.resize(q.size(), Fp(0));
  for (std::size_t i = 0; i < q.size(); ++i) result[i] += q[i] * scale;
}

}  // namespace

Poly interpolate(const std::vector<std::pair<Fp, Fp>>& points) {
  RMT_REQUIRE(!points.empty(), "interpolate: no points");
  for (std::size_t i = 0; i < points.size(); ++i)
    for (std::size_t j = i + 1; j < points.size(); ++j)
      RMT_REQUIRE(!(points[i].first == points[j].first),
                  "interpolate: duplicate x coordinate");

  Poly result;
  for (std::size_t i = 0; i < points.size(); ++i) {
    // Lagrange basis L_i as a coefficient vector.
    Poly basis{Fp(1)};
    Fp denom(1);
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j == i) continue;
      // basis *= (x - x_j)
      Poly next(basis.size() + 1, Fp(0));
      for (std::size_t k = 0; k < basis.size(); ++k) {
        next[k + 1] += basis[k];
        next[k] -= basis[k] * points[j].first;
      }
      basis = std::move(next);
      denom *= points[i].first - points[j].first;
    }
    add_scaled(result, basis, points[i].second / denom);
  }
  // Trim trailing zeros for canonical degree reporting.
  while (result.size() > 1 && result.back() == Fp(0)) result.pop_back();
  return result;
}

bool fits(const Poly& p, const std::vector<std::pair<Fp, Fp>>& points) {
  return std::all_of(points.begin(), points.end(),
                     [&](const auto& pt) { return eval(p, pt.first) == pt.second; });
}

}  // namespace rmt::smt

#include "smt/gf.hpp"

namespace rmt::smt {

Fp Fp::pow(std::uint64_t e) const {
  Fp base = *this;
  Fp acc(1);
  while (e) {
    if (e & 1) acc *= base;
    base *= base;
    e >>= 1;
  }
  return acc;
}

Fp Fp::inverse() const {
  RMT_REQUIRE(v_ != 0, "inverse of zero in GF(p)");
  return pow(kFieldPrime - 2);
}

}  // namespace rmt::smt

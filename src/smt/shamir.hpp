// smt/shamir.hpp — Shamir secret sharing with robust reconstruction.
//
// share(s, t, n): a uniformly random degree-t polynomial f with f(0) = s;
// wire i carries f(i). Any t shares are jointly uniform (perfect privacy);
// t+1 honest shares determine s.
//
// robust_reconstruct handles Byzantine shares: with n shares of which at
// most t are corrupted,
//   * n >= 3t+1  ⇒ unique decoding — the reconstruction always returns s;
//   * n >= 2t+1  ⇒ error detection — the result is s or "failure", never
//     a wrong value (the receiver can tell when the shares do not all fit
//     one degree-t polynomial).
// Decoding is by bounded subset search (try polynomials through (t+1)-
// subsets, accept one agreeing with >= n - t shares) — exponential in the
// worst case like everything else exact in this repository, fine at wire
// counts the disjoint-path model produces. (Production systems would use
// Berlekamp–Welch; the contract is identical.)
#pragma once

#include <optional>
#include <vector>

#include "smt/poly.hpp"
#include "util/rng.hpp"

namespace rmt::smt {

struct Share {
  std::uint32_t index = 0;  ///< wire index, 1-based (x coordinate)
  Fp value;
};

/// Split `secret` into n shares with threshold t (any t reveal nothing,
/// t+1 reconstruct). Requires t < n and n < p.
std::vector<Share> share(Fp secret, std::size_t t, std::size_t n, Rng& rng);

/// Plain reconstruction from any >= t+1 *correct* shares.
Fp reconstruct(const std::vector<Share>& shares, std::size_t t);

struct DecodeResult {
  std::optional<Fp> secret;      ///< engaged iff decoding succeeded
  std::size_t agreeing = 0;      ///< shares consistent with the accepted polynomial
  std::vector<std::uint32_t> rejected;  ///< indices voted corrupted
};

/// Robust decode of `shares` assuming at most `t` of them are corrupted
/// (see header). `max_subsets` bounds the search; exhaustion reports
/// failure (abstain direction).
DecodeResult robust_reconstruct(const std::vector<Share>& shares, std::size_t t,
                                std::size_t max_subsets = 1u << 16);

}  // namespace rmt::smt

// smt/psmt.hpp — message transmission in the *wires* abstraction, the
// model of the secure-transmission literature the paper builds on
// (Dolev–Dwork–Waarts–Yung [3]; Kumar et al. [9], whose efficiency
// techniques §6 discusses).
//
// Between sender and receiver run n node-disjoint channels ("wires"); the
// adversary corrupts at most t of them and may alter or drop whatever they
// carry. Two one-round protocols:
//
//   * PRMT — perfectly *reliable* transmission: the value travels in the
//     clear on every wire, the receiver takes the majority. Correct iff
//     n >= 2t+1 (Dolev's bound, the wires-model face of the 2t+1-
//     connectivity condition recovered in experiment F3a).
//   * PSMT — perfectly *secure* (reliable + private) transmission: a
//     degree-t Shamir sharing rides the wires, the receiver robustly
//     decodes. Reliable iff n >= 3t+1 (one round); private for any t < n:
//     the adversary's t wire-views are distributionally independent of
//     the secret.
//
// The wires themselves come from a graph via disjoint_wires() — extracting
// internally node-disjoint D–R paths — which ties this module back to the
// repository's topology substrate: RMT machinery finds and certifies the
// routes, smt/ runs coding on top of them.
#pragma once

#include <optional>

#include "graph/paths.hpp"
#include "smt/shamir.hpp"

namespace rmt::smt {

/// What the adversary does to the wires it owns.
struct WireFault {
  std::uint32_t wire = 0;  ///< 1-based wire index
  /// Replacement value; nullopt = drop the wire's message entirely.
  std::optional<Fp> replace;
};

struct TransmissionResult {
  std::optional<Fp> delivered;  ///< the receiver's output (⊥ = detected failure)
  bool correct = false;
  bool wrong = false;  ///< delivered ≠ sent — a protocol-soundness violation
};

/// One-round PRMT: value in the clear on every wire + majority. Sound for
/// |faults| <= t iff n >= 2t+1.
TransmissionResult prmt_transmit(Fp value, std::size_t n, std::size_t t,
                                 const std::vector<WireFault>& faults);

/// One-round PSMT: Shamir(t) shares on the wires + robust decode.
/// Reliable for |faults| <= t iff n >= 3t+1; detects (never lies) for
/// n >= 2t+1.
TransmissionResult psmt_transmit(Fp secret, std::size_t n, std::size_t t,
                                 const std::vector<WireFault>& faults, Rng& rng);

/// The adversary's view of a PSMT transmission: the shares on its wires.
/// Exposed for the perfect-privacy property tests: for ANY view and ANY
/// candidate secret there exists a sharing consistent with both — checked
/// constructively via explain_view.
std::vector<Share> psmt_adversary_view(Fp secret, std::size_t n, std::size_t t,
                                       const NodeSet& corrupted_wires, Rng& rng);

/// Constructive privacy witness: a degree-t polynomial with f(0) = claimed
/// secret passing through every observed share. Exists whenever
/// |view| <= t — which is exactly why t wires learn nothing.
Poly explain_view(const std::vector<Share>& view, Fp claimed_secret);

/// Extract up to `want` internally node-disjoint s–t paths from g by
/// shortest-path peeling (greedy; optimal count is min_vertex_cut, which
/// greedy may undershoot on adversarial topologies — callers check the
/// returned count). Paths include both endpoints.
std::vector<Path> disjoint_wires(const Graph& g, NodeId s, NodeId t, std::size_t want);

}  // namespace rmt::smt

// smt/poly.hpp — polynomials over GF(p): evaluation and Lagrange
// interpolation, the two primitives Shamir sharing stands on.
#pragma once

#include <utility>
#include <vector>

#include "smt/gf.hpp"

namespace rmt::smt {

/// A polynomial by its coefficient vector, low degree first; the zero
/// polynomial is the empty vector.
using Poly = std::vector<Fp>;

/// Horner evaluation.
Fp eval(const Poly& p, Fp x);

/// Degree (0 for constants and for the zero polynomial).
std::size_t degree(const Poly& p);

/// The unique polynomial of degree < points.size() through the given
/// points. Requires pairwise-distinct x coordinates (checked) and at
/// least one point.
Poly interpolate(const std::vector<std::pair<Fp, Fp>>& points);

/// True iff p passes through every point.
bool fits(const Poly& p, const std::vector<std::pair<Fp, Fp>>& points);

}  // namespace rmt::smt

#include "smt/psmt.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "graph/connectivity.hpp"

namespace rmt::smt {

namespace {

/// Apply faults to the sent values; returns the receiver-side view as
/// (wire, value) pairs (dropped wires absent).
std::vector<Share> apply_faults(const std::vector<Share>& sent,
                                const std::vector<WireFault>& faults) {
  std::map<std::uint32_t, std::optional<Fp>> mutate;
  for (const WireFault& f : faults) mutate[f.wire] = f.replace;
  std::vector<Share> received;
  for (const Share& s : sent) {
    const auto it = mutate.find(s.index);
    if (it == mutate.end()) {
      received.push_back(s);
    } else if (it->second) {
      received.push_back({s.index, *it->second});
    }  // else dropped
  }
  return received;
}

}  // namespace

TransmissionResult prmt_transmit(Fp value, std::size_t n, std::size_t t,
                                 const std::vector<WireFault>& faults) {
  RMT_REQUIRE(n >= 1, "prmt_transmit: need at least one wire");
  RMT_REQUIRE(faults.size() <= t, "prmt_transmit: more faults than the bound t");
  std::vector<Share> sent;
  for (std::size_t i = 1; i <= n; ++i) sent.push_back({std::uint32_t(i), value});
  const std::vector<Share> received = apply_faults(sent, faults);

  std::map<std::uint64_t, std::size_t> votes;
  for (const Share& s : received) ++votes[s.value.value()];
  TransmissionResult out;
  // Majority of the *wire count* (absent wires count against): a value is
  // accepted only with > n/2 backing, i.e. guaranteed-honest support.
  for (const auto& [v, count] : votes) {
    if (count * 2 > n) {
      out.delivered = Fp(v);
      break;
    }
  }
  out.correct = out.delivered && *out.delivered == value;
  out.wrong = out.delivered && !(*out.delivered == value);
  return out;
}

TransmissionResult psmt_transmit(Fp secret, std::size_t n, std::size_t t,
                                 const std::vector<WireFault>& faults, Rng& rng) {
  RMT_REQUIRE(faults.size() <= t, "psmt_transmit: more faults than the bound t");
  const std::vector<Share> sent = share(secret, t, n, rng);
  const std::vector<Share> received = apply_faults(sent, faults);
  TransmissionResult out;
  if (received.size() >= t + 1) {
    const DecodeResult decoded = robust_reconstruct(received, t);
    out.delivered = decoded.secret;
  }
  out.correct = out.delivered && *out.delivered == secret;
  out.wrong = out.delivered && !(*out.delivered == secret);
  return out;
}

std::vector<Share> psmt_adversary_view(Fp secret, std::size_t n, std::size_t t,
                                       const NodeSet& corrupted_wires, Rng& rng) {
  std::vector<Share> view;
  for (const Share& s : share(secret, t, n, rng))
    if (corrupted_wires.contains(s.index)) view.push_back(s);
  return view;
}

Poly explain_view(const std::vector<Share>& view, Fp claimed_secret) {
  RMT_REQUIRE(!view.empty(), "explain_view: empty view is explained by anything");
  std::vector<std::pair<Fp, Fp>> points{{Fp(0), claimed_secret}};
  for (const Share& s : view) points.push_back({Fp(s.index), s.value});
  return interpolate(points);
}

std::vector<Path> disjoint_wires(const Graph& g, NodeId s, NodeId t, std::size_t want) {
  RMT_REQUIRE(g.has_node(s) && g.has_node(t) && s != t, "disjoint_wires: bad endpoints");
  std::vector<Path> wires;
  NodeSet used;      // interiors already spent
  Graph work = g;    // the direct s-t edge, once used, is also spent
  while (wires.size() < want) {
    // BFS for a shortest s-t path avoiding used interiors.
    std::vector<std::optional<NodeId>> parent(g.capacity());
    std::deque<NodeId> queue{s};
    NodeSet seen = used | NodeSet{s};
    bool found = false;
    while (!queue.empty() && !found) {
      const NodeId u = queue.front();
      queue.pop_front();
      NodeSet next = work.neighbors(u);
      next -= seen;
      next.for_each([&](NodeId w) {
        if (found) return;
        parent[w] = u;
        if (w == t) {
          found = true;
          return;
        }
        seen.insert(w);
        queue.push_back(w);
      });
    }
    if (!found) break;
    Path p{t};
    for (NodeId v = t; v != s; v = *parent[v]) p.push_back(*parent[v]);
    std::reverse(p.begin(), p.end());
    if (p.size() == 2) work.remove_edge(s, t);
    for (NodeId v : p)
      if (v != s && v != t) used.insert(v);
    wires.push_back(std::move(p));
  }
  return wires;
}

}  // namespace rmt::smt

// sim/message.hpp — the wire format of the simulated network.
//
// One payload variant covers every protocol in the repository, so the
// simulator, the adversary strategies, and the accounting stay protocol-
// agnostic:
//   * ValuePayload      — a bare candidate dealer value (CPA / Z-CPA).
//   * PathValuePayload  — RMT-PKA type-1: (x, p), a value with its
//                         propagation trail.
//   * KnowledgePayload  — RMT-PKA type-2: ((u, γ(u), Z_u), p), a node's
//                         initial knowledge with its trail.
// Honest protocol nodes simply ignore payload kinds they do not speak —
// the paper's "erroneous messages can be recognized and discarded".
//
// Channels are authenticated (§1.3): the simulator stamps `from` itself,
// so a Byzantine node can send arbitrary *content* but can never forge the
// immediate sender of a message. Forging the *trail inside* a payload is
// allowed — detecting that is the protocols' job (footnote 1: the
// tail(p) = sender check guarantees a forged trail names at least one
// corrupted node).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "adversary/structure.hpp"
#include "graph/graph.hpp"
#include "graph/paths.hpp"

namespace rmt::sim {

/// The message space X. Wide enough for any experiment; protocols treat it
/// opaquely.
using Value = std::uint64_t;

struct ValuePayload {
  Value x = 0;
  friend bool operator==(const ValuePayload&, const ValuePayload&) = default;
};

struct PathValuePayload {
  Value x = 0;
  Path trail;  ///< propagation trail p, ending at the hop that sent this copy
  friend bool operator==(const PathValuePayload&, const PathValuePayload&) = default;
};

struct KnowledgePayload {
  NodeId subject = 0;          ///< the node u this report is about
  Graph view;                  ///< claimed γ(u)
  AdversaryStructure local_z;  ///< claimed Z_u
  Path trail;
  friend bool operator==(const KnowledgePayload&, const KnowledgePayload&) = default;
};

using Payload = std::variant<ValuePayload, PathValuePayload, KnowledgePayload>;

struct Message {
  NodeId from = 0;  ///< stamped by the network — trustworthy
  NodeId to = 0;
  Payload payload;
};

/// Approximate serialized size in bytes, for bit-complexity accounting.
std::size_t payload_bytes(const Payload& p);

/// Exact canonical serialization — two payloads serialize equal iff they
/// are equal. Used for duplicate suppression in the flooding protocols
/// (the adversary may replay; honest nodes must not amplify replays).
std::string payload_serialize(const Payload& p);

std::string payload_to_string(const Payload& p);

}  // namespace rmt::sim

// sim/network.hpp — the synchronous message-passing substrate.
//
// The model of §1.3: rounds proceed in lockstep; in each round every player
// sends messages over its incident authenticated channels based on what it
// received in earlier rounds. Corrupted players are driven by an
// AdversaryStrategy with *full information* (it sees the honest traffic of
// the current round before choosing its own — a rushing adversary — plus
// the dealer's value), the worst case an unbounded Byzantine adversary
// permits in this synchronous setting.
//
// The network enforces the model's physical constraints and nothing else:
//   * only corrupted nodes are driven by the strategy;
//   * a message travels only over an existing channel of its true sender
//     (authenticated channels — sender identity cannot be forged);
// everything above that layer (trail forgery, fictitious topology, lies
// about Z_v) is adversary content the protocols must survive.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "instance/instance.hpp"
#include "sim/message.hpp"
#include "util/rng.hpp"

namespace rmt {
struct AuditTestAccess;  // tests corrupt internals to prove detection
}

namespace rmt::sim {

/// One honest player's protocol engine, driven round by round.
class ProtocolNode {
 public:
  virtual ~ProtocolNode() = default;

  /// Round 1 sends (the dealer injects its value here).
  virtual std::vector<Message> on_start() = 0;

  /// One synchronous round: everything delivered to this node this round,
  /// in deterministic order; returns the sends for the next round.
  virtual std::vector<Message> on_round(std::size_t round, const std::vector<Message>& inbox) = 0;

  /// The node's decision, if it has made one (⊥ otherwise).
  virtual std::optional<Value> decision() const = 0;
};

/// What the adversary observes each round before acting.
struct AdversaryView {
  const Instance& instance;
  const NodeSet& corrupted;
  Value dealer_value;  ///< worst case: the adversary knows x_D
  std::size_t round;   ///< 1-based; round of the sends being produced
  /// Messages delivered to corrupted nodes at the start of this round.
  const std::vector<Message>& corrupted_inbox;
  /// Honest sends of this round (rushing adversary sees them first).
  const std::vector<Message>& honest_traffic;
};

/// Byzantine behavior for the whole corrupted set (a general adversary is
/// one coordinated entity, not per-node code).
class AdversaryStrategy {
 public:
  virtual ~AdversaryStrategy() = default;
  virtual std::vector<Message> act(const AdversaryView& view) = 0;
};

class NetworkObserver;  // sim/trace.hpp

/// Per-run accounting. Always collected (the counters are a handful of
/// integer bumps); the obs layer additionally aggregates them into the
/// global metrics registry when observability is enabled.
struct NetworkStats {
  std::size_t rounds = 0;
  std::size_t honest_messages = 0;
  std::size_t adversary_messages = 0;
  std::size_t adversary_dropped = 0;  ///< strategy sends violating the channel model
  std::size_t honest_payload_bytes = 0;
  std::size_t adversary_payload_bytes = 0;
  std::size_t peak_round_messages = 0;  ///< max deliveries in any single round
  std::size_t quiet_rounds = 0;         ///< rounds in which nothing was delivered
};

/// Drives one execution. Honest nodes are supplied from outside (built by a
/// Protocol factory); corrupted node ids must form an admissible set.
class Network {
 public:
  /// `nodes` is indexed by node id; entries for corrupted or absent ids
  /// must be null, entries for honest ids non-null.
  Network(const Instance& instance, std::vector<std::unique_ptr<ProtocolNode>> nodes,
          NodeSet corrupted, AdversaryStrategy* strategy, Value dealer_value);

  /// Run until the receiver decides or `max_rounds` rounds elapse.
  /// Returns the receiver's decision state afterwards.
  std::optional<Value> run(std::size_t max_rounds);

  /// Run exactly one more round (for tests that inspect intermediate
  /// state). Returns false once max rounds of use are exceeded by caller
  /// logic — the network itself has no built-in limit here.
  void step();

  const NetworkStats& stats() const { return stats_; }
  const ProtocolNode& node(NodeId v) const;

  /// Attach a transcript observer (sim/trace.hpp). Not owned; may be null
  /// to detach. Notified of every delivered message from the next round on.
  void set_observer(NetworkObserver* observer) { observer_ = observer; }

  /// Deep invariant check (rmt::audit): every queued message sits in its
  /// addressee's inbox and travels an existing channel of the graph. The
  /// per-round conservation count (produced == delivered) lives in step(),
  /// which knows the round's production totals. Throws audit::AuditError.
  void debug_validate() const;

 private:
  friend struct ::rmt::AuditTestAccess;

  std::vector<Message> collect_honest_sends();
  std::size_t queued_messages() const;
  void route(std::vector<Message>&& honest, std::vector<Message>&& adversarial);

  const Instance& instance_;
  std::vector<std::unique_ptr<ProtocolNode>> nodes_;
  NodeSet corrupted_;
  AdversaryStrategy* strategy_;  // may be null: corrupted nodes stay silent
  Value dealer_value_;
  std::size_t round_ = 0;
  std::vector<std::vector<Message>> inboxes_;  // per node id, next round's delivery
  NetworkStats stats_;
  NetworkObserver* observer_ = nullptr;
  bool started_ = false;
};

}  // namespace rmt::sim

// sim/trace.hpp — execution transcripts.
//
// A TraceRecorder observes every delivery the Network makes and renders a
// round-by-round textual transcript — the tool for debugging protocol
// behavior and for teaching (the adversary_lab example can show *why* a
// receiver abstained). Recording is opt-in per Network via set_observer;
// the default path pays nothing.
#pragma once

#include <string>
#include <vector>

#include "sim/message.hpp"

namespace rmt::sim {

/// Observer interface the Network notifies on every delivered message and
/// at each round boundary.
class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;
  virtual void on_round_begin(std::size_t round) = 0;
  /// `adversarial` is true for messages produced by the adversary strategy.
  virtual void on_delivery(const Message& m, bool adversarial) = 0;
};

/// Records everything; renders a transcript.
class TraceRecorder final : public NetworkObserver {
 public:
  struct Entry {
    std::size_t round;
    Message message;
    bool adversarial;
  };

  void on_round_begin(std::size_t round) override { round_ = round; }
  void on_delivery(const Message& m, bool adversarial) override {
    entries_.push_back({round_, m, adversarial});
  }

  const std::vector<Entry>& entries() const { return entries_; }

  /// Human-readable transcript, one line per delivery:
  ///   [r2] 1 -> 3  type1(x=5, p=0-1)   (adversarial)
  std::string render() const;

  /// Deliveries addressed to `node` only (e.g. the receiver's view).
  std::string render_for(NodeId node) const;

 private:
  std::size_t round_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace rmt::sim

#include "sim/network.hpp"

#include <algorithm>

#include "obs/timer.hpp"
#include "sim/trace.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace rmt::sim {

Network::Network(const Instance& instance, std::vector<std::unique_ptr<ProtocolNode>> nodes,
                 NodeSet corrupted, AdversaryStrategy* strategy, Value dealer_value)
    : instance_(instance), nodes_(std::move(nodes)), corrupted_(std::move(corrupted)),
      strategy_(strategy), dealer_value_(dealer_value), inboxes_(instance.graph().capacity()) {
  RMT_REQUIRE(instance_.admissible_corruption(corrupted_),
              "Network: corruption set is not admissible under Z");
  RMT_REQUIRE(nodes_.size() == instance_.graph().capacity(),
              "Network: node table must be indexed by node id");
  instance_.graph().nodes().for_each([&](NodeId v) {
    const bool is_corrupted = corrupted_.contains(v);
    RMT_REQUIRE(is_corrupted == (nodes_[v] == nullptr),
                "Network: exactly the corrupted ids must have null protocol nodes");
  });
}

std::size_t Network::queued_messages() const {
  std::size_t n = 0;
  for (const std::vector<Message>& inbox : inboxes_) n += inbox.size();
  return n;
}

void Network::debug_validate() const {
  for (std::size_t v = 0; v < inboxes_.size(); ++v) {
    for (const Message& m : inboxes_[v]) {
      if (m.to != NodeId(v))
        audit::detail::fail("sim", "message from " + std::to_string(m.from) + " to " +
                                       std::to_string(m.to) + " queued in inbox of " +
                                       std::to_string(v));
      if (!instance_.graph().has_edge(m.from, m.to))
        audit::detail::fail("sim", "queued message travels a non-channel {" +
                                       std::to_string(m.from) + "," + std::to_string(m.to) +
                                       "}");
    }
  }
}

const ProtocolNode& Network::node(NodeId v) const {
  RMT_REQUIRE(v < nodes_.size() && nodes_[v] != nullptr, "Network::node: no honest node here");
  return *nodes_[v];
}

std::vector<Message> Network::collect_honest_sends() {
  RMT_OBS_SCOPE("sim.honest_round");
  std::vector<Message> out;
  instance_.graph().nodes().for_each([&](NodeId v) {
    if (!nodes_[v]) return;
    std::vector<Message> sends =
        started_ ? nodes_[v]->on_round(round_, inboxes_[v]) : nodes_[v]->on_start();
    inboxes_[v].clear();
    for (Message& m : sends) {
      // Honest nodes are trusted code; a violation here is a protocol bug.
      RMT_CHECK(m.from == v, "honest node forged its sender id");
      RMT_CHECK(instance_.graph().has_edge(m.from, m.to), "honest node used a non-channel");
      stats_.honest_payload_bytes += payload_bytes(m.payload);
      out.push_back(std::move(m));
    }
  });
  stats_.honest_messages += out.size();
  return out;
}

void Network::route(std::vector<Message>&& honest, std::vector<Message>&& adversarial) {
  RMT_OBS_SCOPE("sim.route");
  const std::size_t delivered = honest.size() + adversarial.size();
  stats_.peak_round_messages = std::max(stats_.peak_round_messages, delivered);
  if (delivered == 0) ++stats_.quiet_rounds;
  for (Message& m : honest) {
    if (observer_) observer_->on_delivery(m, /*adversarial=*/false);
    inboxes_[m.to].push_back(std::move(m));
  }
  for (Message& m : adversarial) {
    if (observer_) observer_->on_delivery(m, /*adversarial=*/true);
    inboxes_[m.to].push_back(std::move(m));
  }
  // Deterministic delivery order regardless of production order.
  instance_.graph().nodes().for_each([&](NodeId v) {
    std::stable_sort(inboxes_[v].begin(), inboxes_[v].end(),
                     [](const Message& a, const Message& b) { return a.from < b.from; });
  });
}

void Network::step() {
  ++round_;
  if (observer_) observer_->on_round_begin(round_);
  std::vector<Message> honest = collect_honest_sends();
  started_ = true;

  std::vector<Message> adversarial;
  if (strategy_ && !corrupted_.empty()) {
    RMT_OBS_SCOPE("sim.adversary_act");
    // The corrupted inbox for this round was populated by the previous
    // route(); gather it for the strategy.
    std::vector<Message> corrupted_inbox;
    corrupted_.for_each([&](NodeId v) {
      for (Message& m : inboxes_[v]) corrupted_inbox.push_back(std::move(m));
      inboxes_[v].clear();
    });
    const AdversaryView view{instance_, corrupted_, dealer_value_, round_, corrupted_inbox,
                             honest};
    for (Message& m : strategy_->act(view)) {
      // Physical model enforcement: true sender must be corrupted and the
      // channel must exist. Violations are silently dropped (and counted):
      // the adversary may *try* anything; the network is what stops it.
      if (corrupted_.contains(m.from) && instance_.graph().has_edge(m.from, m.to)) {
        ++stats_.adversary_messages;
        stats_.adversary_payload_bytes += payload_bytes(m.payload);
        adversarial.push_back(std::move(m));
      } else {
        ++stats_.adversary_dropped;
      }
    }
  } else {
    corrupted_.for_each([&](NodeId v) { inboxes_[v].clear(); });
  }

  // Message conservation: routing must deliver exactly what this round
  // produced (post-drop) — nothing lost, nothing duplicated, and only over
  // real channels. The pre/post counts are only computed under audit.
  std::size_t produced = 0, queued_before = 0;
  if constexpr (audit::kEnabled) {
    produced = honest.size() + adversarial.size();
    queued_before = queued_messages();
  }
  route(std::move(honest), std::move(adversarial));
  if constexpr (audit::kEnabled) {
    if (queued_messages() != queued_before + produced)
      audit::detail::fail("sim", "round " + std::to_string(round_) + " routed " +
                                     std::to_string(produced) + " messages but inboxes grew by " +
                                     std::to_string(queued_messages() - queued_before));
    RMT_AUDIT_VALIDATE(*this);
  }
  stats_.rounds = round_;
}

std::optional<Value> Network::run(std::size_t max_rounds) {
  for (std::size_t i = 0; i < max_rounds; ++i) {
    step();
    if (auto d = nodes_[instance_.receiver()]->decision()) return d;
  }
  // One final quiet round so last-round deliveries can be consumed by the
  // receiver's decision logic.
  step();
  return nodes_[instance_.receiver()]->decision();
}

}  // namespace rmt::sim

#include "sim/adversary_search.hpp"

#include <algorithm>
#include <limits>

#include "exec/thread_pool.hpp"
#include "knowledge/local_knowledge.hpp"
#include "util/check.hpp"

namespace rmt::sim {

PerNodeModeStrategy::PerNodeModeStrategy(std::map<NodeId, NodeMode> modes, Value lie_offset)
    : modes_(std::move(modes)), offset_(lie_offset == 0 ? 1 : lie_offset) {}

std::vector<Message> PerNodeModeStrategy::act(const AdversaryView& view) {
  const Graph& g = view.instance.graph();
  std::vector<Message> out;

  auto mode_of = [&](NodeId c) {
    const auto it = modes_.find(c);
    return it == modes_.end() ? NodeMode::kSilent : it->second;
  };

  // Round 1: truthful knowledge publication for every non-silent node —
  // both kTruth and kLie mirror the honest round-1 behavior exactly (the
  // mirror construction lies about values, never about initial knowledge).
  if (view.round == 1) {
    view.corrupted.for_each([&](NodeId c) {
      if (mode_of(c) == NodeMode::kSilent) return;
      const LocalKnowledge lk = view.instance.knowledge_of(c);
      g.neighbors(c).for_each([&](NodeId u) {
        out.push_back({c, u, KnowledgePayload{c, lk.view, lk.local_z, Path{c}}});
      });
    });
    return out;
  }

  for (const Message& m : view.corrupted_inbox) {
    const NodeId c = m.to;
    const NodeMode mode = mode_of(c);
    if (mode == NodeMode::kSilent) continue;
    const bool flip = mode == NodeMode::kLie;
    struct Relay {
      std::vector<Message>& out;
      const Graph& g;
      NodeId c;
      NodeId from;
      Value offset;
      bool flip;
      void operator()(const ValuePayload& v) const {
        const Value x = flip ? v.x + offset : v.x;
        g.neighbors(c).for_each([&](NodeId u) { out.push_back({c, u, ValuePayload{x}}); });
      }
      void operator()(const PathValuePayload& p) const {
        if (std::find(p.trail.begin(), p.trail.end(), c) != p.trail.end()) return;
        if (p.trail.empty() || p.trail.back() != from) return;
        PathValuePayload next = p;
        if (flip) next.x += offset;
        next.trail.push_back(c);
        g.neighbors(c).for_each([&](NodeId u) { out.push_back({c, u, next}); });
      }
      void operator()(const KnowledgePayload& k) const {
        if (std::find(k.trail.begin(), k.trail.end(), c) != k.trail.end()) return;
        if (k.trail.empty() || k.trail.back() != from) return;
        KnowledgePayload next = k;
        next.trail.push_back(c);
        g.neighbors(c).for_each([&](NodeId u) { out.push_back({c, u, next}); });
      }
    };
    std::visit(Relay{out, g, c, m.from, offset_, flip}, m.payload);
  }
  return out;
}

namespace {

/// Decode a base-3 behavior code into a per-node mode assignment; the
/// code <-> modes bijection is shared by the sequential and exhaustive
/// searches so their witnesses are comparable.
std::map<NodeId, NodeMode> modes_for_code(const std::vector<NodeId>& nodes, std::size_t code) {
  std::map<NodeId, NodeMode> modes;
  std::size_t rest = code;
  for (NodeId v : nodes) {
    modes[v] = static_cast<NodeMode>(rest % 3);
    rest /= 3;
  }
  return modes;
}

std::size_t combos_for(const std::vector<NodeId>& nodes) {
  RMT_REQUIRE(nodes.size() <= 8, "search_behaviors: corruption set too large to enumerate");
  std::size_t combos = 1;
  for (std::size_t i = 0; i < nodes.size(); ++i) combos *= 3;
  return combos;
}

}  // namespace

SearchResult search_behaviors(const Instance& inst, const protocols::Protocol& proto,
                              Value dealer_value, const NodeSet& corruption) {
  const std::vector<NodeId> nodes = corruption.to_vector();
  SearchResult result;
  const std::size_t combos = combos_for(nodes);
  for (std::size_t code = 0; code < combos; ++code) {
    std::map<NodeId, NodeMode> modes = modes_for_code(nodes, code);
    PerNodeModeStrategy strategy(modes);
    const protocols::Outcome out =
        protocols::run_rmt(inst, proto, dealer_value, corruption, &strategy);
    ++result.behaviors_tried;
    if (out.wrong && !result.safety_violation)
      result.safety_violation = BehaviorWitness{modes, out};
    if (!out.decision && !result.liveness_block)
      result.liveness_block = BehaviorWitness{modes, out};
    if (result.safety_violation) break;  // the fatal witness; stop early
  }
  return result;
}

SearchResult search_all_corruptions(const Instance& inst, const protocols::Protocol& proto,
                                    Value dealer_value) {
  SearchResult total;
  for (const NodeSet& t : inst.adversary().maximal_sets()) {
    SearchResult r = search_behaviors(inst, proto, dealer_value, t);
    total.behaviors_tried += r.behaviors_tried;
    if (!total.safety_violation) total.safety_violation = std::move(r.safety_violation);
    if (!total.liveness_block) total.liveness_block = std::move(r.liveness_block);
    if (total.safety_violation) break;
  }
  return total;
}

namespace {

/// Lowest-code witnesses of one exhaustive scan; the reduction identity
/// is "no witness found" and combine keeps the smaller code per field —
/// associative, commutative, and independent of chunk boundaries.
struct ScanPartial {
  std::size_t safety_code = std::numeric_limits<std::size_t>::max();
  std::size_t liveness_code = std::numeric_limits<std::size_t>::max();
};

ScanPartial merge_partials(ScanPartial a, ScanPartial b) {
  a.safety_code = std::min(a.safety_code, b.safety_code);
  a.liveness_code = std::min(a.liveness_code, b.liveness_code);
  return a;
}

}  // namespace

SearchResult search_behaviors_exhaustive(const Instance& inst, const protocols::Protocol& proto,
                                         Value dealer_value, const NodeSet& corruption,
                                         exec::ThreadPool* pool) {
  const std::vector<NodeId> nodes = corruption.to_vector();
  const std::size_t combos = combos_for(nodes);

  const auto scan = [&](std::size_t lo, std::size_t hi) {
    ScanPartial p;
    for (std::size_t code = lo; code < hi; ++code) {
      PerNodeModeStrategy strategy(modes_for_code(nodes, code));
      const protocols::Outcome out =
          protocols::run_rmt(inst, proto, dealer_value, corruption, &strategy);
      if (out.wrong && code < p.safety_code) p.safety_code = code;
      if (!out.decision && code < p.liveness_code) p.liveness_code = code;
    }
    return p;
  };

  const ScanPartial found = exec::parallel_reduce<ScanPartial>(
      pool, 0, combos, exec::suggest_grain(combos, pool), ScanPartial{}, scan, merge_partials);

  SearchResult result;
  result.behaviors_tried = combos;
  // Re-run the winning codes once to recover their outcomes; cheaper than
  // shipping Outcome objects through every partial of the reduction.
  const auto rerun = [&](std::size_t code) {
    std::map<NodeId, NodeMode> modes = modes_for_code(nodes, code);
    PerNodeModeStrategy strategy(modes);
    const protocols::Outcome out =
        protocols::run_rmt(inst, proto, dealer_value, corruption, &strategy);
    return BehaviorWitness{std::move(modes), out};
  };
  if (found.safety_code != std::numeric_limits<std::size_t>::max())
    result.safety_violation = rerun(found.safety_code);
  if (found.liveness_code != std::numeric_limits<std::size_t>::max())
    result.liveness_block = rerun(found.liveness_code);
  return result;
}

SearchResult search_all_corruptions_exhaustive(const Instance& inst,
                                               const protocols::Protocol& proto,
                                               Value dealer_value, exec::ThreadPool* pool) {
  SearchResult total;
  for (const NodeSet& t : inst.adversary().maximal_sets()) {
    SearchResult r = search_behaviors_exhaustive(inst, proto, dealer_value, t, pool);
    total.behaviors_tried += r.behaviors_tried;
    if (!total.safety_violation) total.safety_violation = std::move(r.safety_violation);
    if (!total.liveness_block) total.liveness_block = std::move(r.liveness_block);
  }
  return total;
}

std::string modes_to_string(const std::map<NodeId, NodeMode>& modes) {
  std::string out = "{";
  bool first = true;
  for (const auto& [v, mode] : modes) {
    if (!first) out += ", ";
    first = false;
    out += std::to_string(v);
    out += mode == NodeMode::kSilent ? ":silent" : (mode == NodeMode::kTruth ? ":truth" : ":lie");
  }
  return out + "}";
}

}  // namespace rmt::sim

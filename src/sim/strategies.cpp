#include "sim/strategies.hpp"

#include <algorithm>
#include <unordered_set>

#include "knowledge/local_knowledge.hpp"

namespace rmt::sim {

std::vector<Message> SilentStrategy::act(const AdversaryView&) { return {}; }

ValueFlipStrategy::ValueFlipStrategy(Value offset) : offset_(offset == 0 ? 1 : offset) {}

std::vector<Message> ValueFlipStrategy::act(const AdversaryView& view) {
  // One burst in round 2 (after the dealer's round-1 injection, so the lie
  // competes with the truth in flight) is enough: honest protocols keep the
  // first value per neighbor / dedupe trails, so repetition adds nothing.
  if (view.round != 2) return {};
  const Value lie = view.dealer_value + offset_;
  const Graph& g = view.instance.graph();
  std::vector<Message> out;
  view.corrupted.for_each([&](NodeId c) {
    g.neighbors(c).for_each([&](NodeId u) {
      out.push_back({c, u, ValuePayload{lie}});
      // Type-1 dialect: claim the dealer handed the lie straight to c.
      out.push_back({c, u, PathValuePayload{lie, Path{view.instance.dealer(), c}}});
    });
  });
  return out;
}

RandomLieStrategy::RandomLieStrategy(Rng rng, std::size_t messages_per_round)
    : rng_(rng), per_round_(messages_per_round) {}

std::vector<Message> RandomLieStrategy::act(const AdversaryView& view) {
  const Graph& g = view.instance.graph();
  std::vector<Message> out;
  view.corrupted.for_each([&](NodeId c) {
    const std::vector<NodeId> nbrs = g.neighbors(c).to_vector();
    if (nbrs.empty()) return;
    for (std::size_t i = 0; i < per_round_; ++i) {
      const NodeId to = nbrs[rng_.index(nbrs.size())];
      switch (rng_.index(3)) {
        case 0:
          out.push_back({c, to, ValuePayload{rng_.uniform(0, 5)}});
          break;
        case 1: {
          // Forged trail through random (possibly fictitious) ids; must
          // end at c to pass the honest tail(p) check at all.
          Path p{view.instance.dealer()};
          const std::size_t hops = rng_.index(3);
          for (std::size_t h = 0; h < hops; ++h)
            p.push_back(NodeId(rng_.uniform(0, g.capacity() + 3)));
          p.push_back(c);
          out.push_back({c, to, PathValuePayload{rng_.uniform(0, 5), std::move(p)}});
          break;
        }
        case 2: {
          // Malformed knowledge report about a random subject.
          const NodeId subject = NodeId(rng_.uniform(0, g.capacity() + 3));
          Graph claimed;
          claimed.add_node(subject);
          const NodeId other = NodeId(rng_.uniform(0, g.capacity()));
          if (other != subject && rng_.chance(0.7)) claimed.add_edge(subject, other);
          KnowledgePayload k{subject, std::move(claimed), AdversaryStructure::trivial(),
                             Path{subject, c}};
          out.push_back({c, to, std::move(k)});
          break;
        }
      }
    }
  });
  return out;
}

FictitiousWorldStrategy::FictitiousWorldStrategy(Value wrong_offset, std::size_t phantom_count)
    : offset_(wrong_offset == 0 ? 1 : wrong_offset), phantoms_(std::max<std::size_t>(1, phantom_count)) {}

std::vector<Message> FictitiousWorldStrategy::act(const AdversaryView& view) {
  if (!built_) {
    built_ = true;
    const Graph& g = view.instance.graph();
    const NodeId d = view.instance.dealer();
    const Value lie = view.dealer_value + offset_;
    // Phantom chain D — q₁ — q₂ — ... — q_k — c, fabricated per corrupted
    // node, with per-phantom views that corroborate the chain and trivial
    // claimed local structures ("nobody around me can be corrupted").
    view.corrupted.for_each([&](NodeId c) {
      std::vector<NodeId> chain{d};
      for (std::size_t i = 0; i < phantoms_; ++i)
        chain.push_back(NodeId(g.capacity() + c * phantoms_ + i));
      chain.push_back(c);

      // The fabricated world graph: the chain plus c's real star (so the
      // lie embeds seamlessly into honest reports around c).
      Graph world;
      for (std::size_t i = 0; i + 1 < chain.size(); ++i) world.add_edge(chain[i], chain[i + 1]);
      g.neighbors(c).for_each([&](NodeId u) { world.add_edge(c, u); });

      g.neighbors(c).for_each([&](NodeId u) {
        // Type-1: the lie travelled the whole phantom chain.
        script_.push_back({c, u, PathValuePayload{lie, chain}});
        // Type-2 for each phantom: view = its chain segment, Z = trivial.
        for (std::size_t i = 1; i + 1 < chain.size(); ++i) {
          const NodeId q = chain[i];
          Graph q_view;
          q_view.add_edge(chain[i - 1], q);
          q_view.add_edge(q, chain[i + 1]);
          Path trail(chain.begin() + static_cast<std::ptrdiff_t>(i), chain.end());
          script_.push_back(
              {c, u, KnowledgePayload{q, std::move(q_view), AdversaryStructure::trivial(),
                                      std::move(trail)}});
        }
        // Type-2 for c itself: its real star plus the phantom link, and a
        // maximally dishonest "nothing can be corrupted here" structure.
        script_.push_back({c, u, KnowledgePayload{c, world, AdversaryStructure::trivial(), Path{c}}});
      });
    });
  }
  if (view.round == 2 && !script_.empty()) {
    return std::move(script_);
  }
  return {};
}

TwoFacedStrategy::TwoFacedStrategy(Value offset) : offset_(offset == 0 ? 1 : offset) {}

std::vector<Message> TwoFacedStrategy::act(const AdversaryView& view) {
  const Graph& g = view.instance.graph();
  const Value lie = view.dealer_value + offset_;
  std::vector<Message> out;

  // Round 1: behave exactly like honest Protocol-1 nodes — publish the
  // *true* initial knowledge. The consistent truth makes the later value
  // lie as hard to dismiss as possible.
  if (view.round == 1) {
    view.corrupted.for_each([&](NodeId c) {
      const LocalKnowledge lk = view.instance.knowledge_of(c);
      g.neighbors(c).for_each([&](NodeId u) {
        out.push_back({c, u, KnowledgePayload{c, lk.view, lk.local_z, Path{c}}});
      });
    });
    return out;
  }

  // Later rounds: relay everything per the honest relay rule, except that
  // every value is replaced by the lie.
  for (const Message& m : view.corrupted_inbox) {
    const NodeId c = m.to;
    struct Relay {
      std::vector<Message>& out;
      const Graph& g;
      NodeId c;
      NodeId from;
      Value lie;
      void operator()(const ValuePayload&) const {
        g.neighbors(c).for_each([&](NodeId u) { out.push_back({c, u, ValuePayload{lie}}); });
      }
      void operator()(const PathValuePayload& p) const {
        if (std::find(p.trail.begin(), p.trail.end(), c) != p.trail.end()) return;
        if (p.trail.empty() || p.trail.back() != from) return;
        Path next = p.trail;
        next.push_back(c);
        g.neighbors(c).for_each(
            [&](NodeId u) { out.push_back({c, u, PathValuePayload{lie, next}}); });
      }
      void operator()(const KnowledgePayload& k) const {
        if (std::find(k.trail.begin(), k.trail.end(), c) != k.trail.end()) return;
        if (k.trail.empty() || k.trail.back() != from) return;
        KnowledgePayload next = k;
        next.trail.push_back(c);
        g.neighbors(c).for_each([&](NodeId u) { out.push_back({c, u, next}); });
      }
    };
    std::visit(Relay{out, g, c, m.from, lie}, m.payload);
  }
  return out;
}

}  // namespace rmt::sim

// sim/strategies.hpp — a suite of Byzantine behaviors.
//
// These exercise the attack capabilities the paper explicitly grants the
// adversary: blocking, rerouting and altering messages, "reporting
// fictitious topology and false local knowledge" (§1.2), and forging
// propagation trails (caught by the tail(p) check, footnote 1, which
// guarantees every forged trail names at least one corrupted node).
//
// The safety experiment (T4) runs every protocol against every strategy —
// the pass criterion is zero wrong receiver decisions, the operational
// form of Theorem 4.
#pragma once

#include "sim/network.hpp"
#include "util/rng.hpp"

namespace rmt::sim {

/// Crash/block: corrupted nodes send nothing, ever. The pure *omission*
/// adversary — the minimum a Byzantine adversary can do, and already
/// enough to defeat protocols relying on a single relay path.
class SilentStrategy final : public AdversaryStrategy {
 public:
  std::vector<Message> act(const AdversaryView& view) override;
};

/// Flip-and-flood: corrupted nodes suppress everything they should relay
/// and instead flood a fixed wrong value to every neighbor, packaged for
/// every protocol dialect (bare value, type-1 with a locally-forged trail).
class ValueFlipStrategy final : public AdversaryStrategy {
 public:
  /// The injected value is dealer_value + offset (offset != 0).
  explicit ValueFlipStrategy(Value offset = 1);
  std::vector<Message> act(const AdversaryView& view) override;

 private:
  Value offset_;
};

/// Chaos: random payloads (random values, random forged trails, malformed
/// knowledge reports) to random neighbors. A fuzzer for the honest nodes'
/// input validation.
class RandomLieStrategy final : public AdversaryStrategy {
 public:
  explicit RandomLieStrategy(Rng rng, std::size_t messages_per_round = 4);
  std::vector<Message> act(const AdversaryView& view) override;

 private:
  Rng rng_;
  std::size_t per_round_;
};

/// The PKA-targeted attack of Theorem 4's hard case: corrupted nodes
/// fabricate a *consistent fictitious world* — invented nodes, invented
/// views for them, fabricated local structures, and type-1 trails routing
/// a wrong value through the invented region — trying to hand the receiver
/// a full message set M for the wrong value. Safety demands the receiver
/// always finds an adversary cover for such an M.
class FictitiousWorldStrategy final : public AdversaryStrategy {
 public:
  /// `phantom_count` invented nodes get ids above every real id.
  explicit FictitiousWorldStrategy(Value wrong_offset = 1, std::size_t phantom_count = 2);
  std::vector<Message> act(const AdversaryView& view) override;

 private:
  Value offset_;
  std::size_t phantoms_;
  bool built_ = false;
  std::vector<Message> script_;  // the round-1 injection, replayed in slices
};

/// Two-faced relay: corrupted nodes *follow the protocols' relay rules*
/// but for the wrong value — they echo honest type-2 knowledge truthfully
/// (making the lie maximally consistent) while converting every value
/// payload they relay to x_D + offset. This is the simulator counterpart
/// of the indistinguishable-runs construction in the proofs of Thms 3/8.
class TwoFacedStrategy final : public AdversaryStrategy {
 public:
  explicit TwoFacedStrategy(Value offset = 1);
  std::vector<Message> act(const AdversaryView& view) override;

 private:
  Value offset_;
};

}  // namespace rmt::sim

#include "sim/message.hpp"

namespace rmt::sim {

std::size_t payload_bytes(const Payload& p) {
  struct Sizer {
    std::size_t operator()(const ValuePayload&) const { return sizeof(Value); }
    std::size_t operator()(const PathValuePayload& m) const {
      return sizeof(Value) + m.trail.size() * sizeof(NodeId);
    }
    std::size_t operator()(const KnowledgePayload& m) const {
      std::size_t bytes = sizeof(NodeId) + m.trail.size() * sizeof(NodeId);
      bytes += m.view.num_nodes() * sizeof(NodeId) + m.view.num_edges() * 2 * sizeof(NodeId);
      for (const NodeSet& s : m.local_z.maximal_sets())
        bytes += (s.size() + 1) * sizeof(NodeId);
      return bytes;
    }
  };
  return std::visit(Sizer{}, p);
}

namespace {

void append_u32(std::string& s, std::uint64_t v) {
  s += std::to_string(v);
  s += ',';
}

void append_path(std::string& s, const Path& p) {
  s += 'p';
  for (NodeId v : p) append_u32(s, v);
  s += ';';
}

void append_graph(std::string& s, const Graph& g) {
  s += 'g';
  g.nodes().for_each([&](NodeId v) { append_u32(s, v); });
  s += '|';
  for (const Edge& e : g.edges()) {
    append_u32(s, e.a);
    append_u32(s, e.b);
  }
  s += ';';
}

void append_structure(std::string& s, const AdversaryStructure& z) {
  s += 'z';
  for (const NodeSet& m : z.maximal_sets()) {
    m.for_each([&](NodeId v) { append_u32(s, v); });
    s += '|';
  }
  s += ';';
}

}  // namespace

std::string payload_serialize(const Payload& p) {
  struct Ser {
    std::string operator()(const ValuePayload& m) const {
      std::string s = "V";
      append_u32(s, m.x);
      return s;
    }
    std::string operator()(const PathValuePayload& m) const {
      std::string s = "1";
      append_u32(s, m.x);
      append_path(s, m.trail);
      return s;
    }
    std::string operator()(const KnowledgePayload& m) const {
      std::string s = "2";
      append_u32(s, m.subject);
      append_graph(s, m.view);
      append_structure(s, m.local_z);
      append_path(s, m.trail);
      return s;
    }
  };
  return std::visit(Ser{}, p);
}

std::string payload_to_string(const Payload& p) {
  struct Printer {
    std::string operator()(const ValuePayload& m) const {
      return "value(" + std::to_string(m.x) + ")";
    }
    std::string operator()(const PathValuePayload& m) const {
      return "type1(x=" + std::to_string(m.x) + ", p=" + path_to_string(m.trail) + ")";
    }
    std::string operator()(const KnowledgePayload& m) const {
      return "type2(u=" + std::to_string(m.subject) + ", p=" + path_to_string(m.trail) + ")";
    }
  };
  return std::visit(Printer{}, p);
}

}  // namespace rmt::sim

// sim/adversary_search.hpp — bounded adversary model checking.
//
// The fixed strategy suite (strategies.hpp) samples adversary behaviors;
// this module *searches* a structured family of them: each corrupted node
// independently plays one of
//   kSilent — omit everything,
//   kTruth  — behave exactly like an honest node (relay faithfully),
//   kLie    — honest relay shape with every value flipped (the per-node
//             slice of the Thm-3/8 mirror construction).
// That is 3^|T| joint behaviors per corruption set — small enough to
// enumerate exhaustively on test-sized instances, and expressive enough to
// contain the lower-bound attacks (all-kLie = TwoFaced, all-kSilent =
// Silent, mixtures cover split-brain behaviors none of the fixed
// strategies produce).
//
// search_for_violation runs a protocol against every behavior in the
// family and reports the first safety violation (receiver decided wrong)
// or, optionally, the first liveness block (receiver abstained). Safe
// protocols must never yield a safety witness; on instances with an
// RMT-cut, a blocking witness is expected to exist.
#pragma once

#include <map>
#include <optional>

#include "protocols/protocol.hpp"
#include "protocols/runner.hpp"
#include "sim/network.hpp"

namespace rmt::exec {
class ThreadPool;
}

namespace rmt::sim {

enum class NodeMode : std::uint8_t { kSilent, kTruth, kLie };

/// The joint behavior: every corrupted node plays its assigned mode.
/// kTruth/kLie nodes publish their true type-2 knowledge in round 1 and
/// apply the honest relay rules afterwards (kLie flipping every value).
class PerNodeModeStrategy final : public AdversaryStrategy {
 public:
  explicit PerNodeModeStrategy(std::map<NodeId, NodeMode> modes, Value lie_offset = 1);
  std::vector<Message> act(const AdversaryView& view) override;

 private:
  std::map<NodeId, NodeMode> modes_;
  Value offset_;
};

/// One found counterexample.
struct BehaviorWitness {
  std::map<NodeId, NodeMode> modes;
  protocols::Outcome outcome;
};

struct SearchResult {
  std::size_t behaviors_tried = 0;
  /// Receiver decided ≠ x_D under this behavior (must stay empty for safe
  /// protocols — this is the model-checked form of Theorem 4).
  std::optional<BehaviorWitness> safety_violation;
  /// Receiver abstained under this behavior (exists on unsolvable
  /// instances; on solvable ones a unique protocol leaves it empty).
  std::optional<BehaviorWitness> liveness_block;
};

/// Exhaustively try every mode assignment for `corruption` (3^|T| runs).
/// Requires |corruption| <= 8.
SearchResult search_behaviors(const Instance& inst, const protocols::Protocol& proto,
                              Value dealer_value, const NodeSet& corruption);

/// Convenience: search over every maximal admissible corruption set;
/// stops at the first safety violation. The liveness_block field reports
/// the first block found across all sets.
SearchResult search_all_corruptions(const Instance& inst, const protocols::Protocol& proto,
                                    Value dealer_value);

/// Exhaustive-scan variant of search_behaviors for parallel enumeration:
/// always runs all 3^|T| behaviors (no early stop) and reports the
/// *lowest-code* safety and liveness witnesses, so the result — including
/// behaviors_tried — is identical at any worker count. Pass pool=nullptr
/// for a sequential scan with the same semantics.
SearchResult search_behaviors_exhaustive(const Instance& inst, const protocols::Protocol& proto,
                                         Value dealer_value, const NodeSet& corruption,
                                         exec::ThreadPool* pool);

/// Exhaustive-scan variant of search_all_corruptions: scans every maximal
/// set in full and keeps the first witnesses in maximal-set order. Counts
/// every behavior of every set, so behaviors_tried is the family size.
SearchResult search_all_corruptions_exhaustive(const Instance& inst,
                                               const protocols::Protocol& proto,
                                               Value dealer_value, exec::ThreadPool* pool);

std::string modes_to_string(const std::map<NodeId, NodeMode>& modes);

}  // namespace rmt::sim

#include "sim/trace.hpp"

namespace rmt::sim {

namespace {

std::string render_entry(const TraceRecorder::Entry& e) {
  std::string line = "[r" + std::to_string(e.round) + "] " + std::to_string(e.message.from) +
                     " -> " + std::to_string(e.message.to) + "  " +
                     payload_to_string(e.message.payload);
  if (e.adversarial) line += "   (adversarial)";
  return line + "\n";
}

}  // namespace

std::string TraceRecorder::render() const {
  std::string out;
  for (const Entry& e : entries_) out += render_entry(e);
  return out;
}

std::string TraceRecorder::render_for(NodeId node) const {
  std::string out;
  for (const Entry& e : entries_)
    if (e.message.to == node) out += render_entry(e);
  return out;
}

}  // namespace rmt::sim

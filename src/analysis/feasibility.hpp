// analysis/feasibility.hpp — one-stop solvability queries.
//
// Ties together the paper's characterizations:
//   * partial knowledge (the paper's main result): solvable ⇔ no RMT-cut
//     (Thms 3 + 5);
//   * ad hoc / Z-CPA: Z-CPA succeeds ⇔ no RMT Z-pp cut (Thms 7 + 8);
//   * full knowledge (classic, [9]/PPA): solvable ⇔ no two admissible sets
//     Z₁, Z₂ ∈ Z whose union separates D from R — recovered here both as
//     an independent "two-cover" decider and, in the tests, as the
//     specialization of the RMT-cut decider to γ = full (where
//     Z_B = Z by idempotence, so the RMT-cut collapses to the 2-cover).
#pragma once

#include <optional>

#include "analysis/rmt_cut.hpp"
#include "analysis/zpp_cut.hpp"

namespace rmt::exec {
class ThreadPool;
}

namespace rmt::analysis {

/// Solvability of the instance by *any* safe-and-resilient protocol
/// (= by RMT-PKA, by uniqueness, Cor. 6).
bool solvable(const Instance& inst);

/// Solvability by Z-CPA on this instance (tight for the ad hoc model).
bool solvable_by_zcpa(const Instance& inst);

/// Classic full-knowledge condition: a pair (Z₁, Z₂) of admissible sets
/// covering a D–R cut, if one exists. Independent of γ.
struct TwoCoverWitness {
  NodeSet z1;
  NodeSet z2;
};
std::optional<TwoCoverWitness> find_two_cover_cut(const Graph& g, const AdversaryStructure& z,
                                                  NodeId dealer, NodeId receiver);

/// Parallel variant: scans the (Z₁, Z₂) pair grid across `pool` and keeps
/// the lowest row-major witness — identical to the sequential answer at
/// any worker count. pool == nullptr falls back to the sequential scan.
std::optional<TwoCoverWitness> find_two_cover_cut(const Graph& g, const AdversaryStructure& z,
                                                  NodeId dealer, NodeId receiver,
                                                  exec::ThreadPool* pool);

/// Solvability under full knowledge (no two-cover cut).
bool solvable_full_knowledge(const Graph& g, const AdversaryStructure& z, NodeId dealer,
                             NodeId receiver);

}  // namespace rmt::analysis

#include "analysis/enumeration.hpp"

#include <set>
#include <vector>

#include "graph/connectivity.hpp"
#include "util/check.hpp"

namespace rmt::analysis {

bool for_each_connected_graph(std::size_t n,
                              const std::function<bool(const Graph&)>& visit) {
  RMT_REQUIRE(n >= 1 && n <= 6, "for_each_connected_graph: n out of the guarded range");
  std::vector<std::pair<NodeId, NodeId>> slots;
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j) slots.push_back({i, j});
  const std::size_t total = std::size_t{1} << slots.size();
  for (std::size_t mask = 0; mask < total; ++mask) {
    Graph g(n);
    for (std::size_t s = 0; s < slots.size(); ++s)
      if ((mask >> s) & 1) g.add_edge(slots[s].first, slots[s].second);
    if (!is_connected(g)) continue;
    if (!visit(g)) return false;
  }
  return true;
}

bool for_each_structure(const NodeSet& allowed, std::size_t max_sets,
                        const std::function<bool(const AdversaryStructure&)>& visit) {
  const std::vector<NodeId> elems = allowed.to_vector();
  RMT_REQUIRE(elems.size() <= 4, "for_each_structure: support too large");
  RMT_REQUIRE(max_sets <= 3, "for_each_structure: too many generator sets");

  // All non-empty subsets of the allowed support, as candidate generators
  // (∅ adds nothing beyond the trivial family, emitted separately).
  std::vector<NodeSet> pool;
  for (std::size_t mask = 1; mask < (std::size_t{1} << elems.size()); ++mask) {
    NodeSet s;
    for (std::size_t i = 0; i < elems.size(); ++i)
      if ((mask >> i) & 1) s.insert(elems[i]);
    pool.push_back(std::move(s));
  }

  std::set<std::vector<NodeSet>> seen;  // canonical antichains already emitted
  auto emit = [&](const AdversaryStructure& z) {
    if (!seen.insert(z.maximal_sets()).second) return true;  // duplicate family
    return visit(z);
  };

  if (!emit(AdversaryStructure::trivial())) return false;

  // Choose up to max_sets generators (combinations, order-free).
  std::vector<std::size_t> pick;
  const std::function<bool(std::size_t)> choose = [&](std::size_t from) -> bool {
    if (!pick.empty()) {
      std::vector<NodeSet> gen{NodeSet{}};
      for (std::size_t i : pick) gen.push_back(pool[i]);
      if (!emit(AdversaryStructure::from_sets(gen))) return false;
    }
    if (pick.size() == max_sets) return true;
    for (std::size_t i = from; i < pool.size(); ++i) {
      pick.push_back(i);
      if (!choose(i + 1)) return false;
      pick.pop_back();
    }
    return true;
  };
  return choose(0);
}

std::size_t count_connected_graphs(std::size_t n) {
  std::size_t count = 0;
  for_each_connected_graph(n, [&](const Graph&) {
    ++count;
    return true;
  });
  return count;
}

}  // namespace rmt::analysis

#include "analysis/zpp_cut.hpp"

#include <limits>
#include <utility>
#include <vector>

#include "adversary/bit_matrix.hpp"
#include "analysis/rmt_cut.hpp"
#include "exec/thread_pool.hpp"
#include "graph/cuts.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace rmt::analysis {

namespace {

inline constexpr std::size_t kC2MemoSlots = 16;
inline constexpr std::size_t kC2Chunk = 16;

// The per-node plausibility constraint "N(u) ∩ C₂ ∈ Z_u", compiled to
// forbidden rows (bit_matrix.hpp): with M ranging over the maximal sets of
// Z_u, N(u) ∩ C₂ ⊆ M ⇔ C₂ ∩ (N(u) ∖ M) = ∅ (N(u)∩C₂ ⊆ N(u) makes the
// unrestricted maximal sets valid here). The whole per-B plausibility loop
// is then one ConjunctionRows probe over B's group stack.
std::vector<CompiledGroup> node_plausibility_groups(
    const Graph& g, const std::vector<AdversaryStructure>& local_z) {
  std::vector<CompiledGroup> groups(g.capacity());
  g.nodes().for_each([&](NodeId v) {
    groups[v] = CompiledGroup::complement(g.neighbors(v), local_z[v].maximal_sets());
  });
  return groups;
}

// The per-(B, C) maximal-set scan shared by the sequential and pooled
// deciders. Distinct C₂ = C ∖ M repeat across maximal sets whenever two M
// miss the (small) cut identically; the few distinct plausibility answers
// are memoized per B, and each chunk's new distinct C₂ go to the compiled
// rows as one probe_batch call. Batching and the memo only short-circuit
// *identical* tests, so the first qualifying M in canonical order still
// wins (witness identity).
std::optional<ZppCutWitness> scan_maximal_sets(const NodeSet& b, const NodeSet& cut,
                                               const ConjunctionRows& rows,
                                               const std::vector<NodeSet>& zmax) {
  if (zmax.size() == 1) {
    // One maximal set: a single plausibility probe decides the visit.
    NodeSet c2 = cut;
    c2 -= zmax[0];
    if (rows.contains(c2)) return ZppCutWitness{cut & zmax[0], std::move(c2), b};
    return std::nullopt;
  }
  NodeSet seen[kC2MemoSlots];
  bool ans[kC2MemoSlots];
  std::size_t nseen = 0;
  if (zmax.size() < kC2Chunk) {
    // Small antichains probe one by one; see rmt_cut.cpp.
    for (const NodeSet& m : zmax) {
      NodeSet c2 = cut;
      c2 -= m;
      bool plausible = false;
      bool cached = false;
      for (std::size_t i = 0; i < nseen; ++i) {
        if (seen[i] == c2) {
          plausible = ans[i];
          cached = true;
          break;
        }
      }
      if (!cached) {
        plausible = rows.contains(c2);
        if (nseen < kC2MemoSlots) {
          seen[nseen] = c2;
          ans[nseen] = plausible;
          ++nseen;
        }
      }
      if (plausible) return ZppCutWitness{cut & m, std::move(c2), b};
    }
    return std::nullopt;
  }
  NodeSet c2s[kC2Chunk];
  bool plausible[kC2Chunk];
  std::size_t fresh[kC2Chunk];
  NodeSet batch[kC2Chunk];
  bool batch_ans[kC2Chunk];
  std::size_t owner[kC2Chunk];
  for (std::size_t base = 0; base < zmax.size(); base += kC2Chunk) {
    const std::size_t len = std::min(kC2Chunk, zmax.size() - base);
    std::size_t nbatch = 0;
    for (std::size_t j = 0; j < len; ++j) {
      c2s[j] = cut;
      c2s[j] -= zmax[base + j];
      fresh[j] = kC2Chunk;
      bool cached = false;
      for (std::size_t i = 0; i < nseen; ++i) {
        if (seen[i] == c2s[j]) {
          plausible[j] = ans[i];
          cached = true;
          break;
        }
      }
      if (cached) continue;
      for (std::size_t i = 0; i < nbatch; ++i) {
        if (batch[i] == c2s[j]) {
          fresh[j] = i;
          cached = true;
          break;
        }
      }
      if (cached) continue;
      batch[nbatch] = c2s[j];
      owner[nbatch] = j;
      fresh[j] = nbatch;
      ++nbatch;
    }
    if (nbatch > 0) rows.probe_batch(batch, nbatch, batch_ans);
    for (std::size_t j = 0; j < len; ++j) {
      if (fresh[j] != kC2Chunk) {
        plausible[j] = batch_ans[fresh[j]];
        if (owner[fresh[j]] == j && nseen < kC2MemoSlots) {
          seen[nseen] = c2s[j];
          ans[nseen] = plausible[j];
          ++nseen;
        }
      }
      if (plausible[j])
        return ZppCutWitness{cut & zmax[base + j], std::move(c2s[j]), b};
    }
  }
  return std::nullopt;
}

// Incremental decider state (see rmt_cut.cpp for the pattern): the
// neighbour union ∪_{v∈B} N(v) and the compiled-row stack follow the DFS
// by push/pop deltas; N(B) = ∪N(v) ∖ B per visit. A push is one
// precompiled row-group append — no restriction, no NodeSet temporaries.
struct IncrementalScan {
  const Graph& g;
  const NodeId d;
  const std::vector<CompiledGroup>& node_groups;
  const std::vector<NodeSet>& zmax;
  NodeSet nbrs;
  ConjunctionRows rows;
  std::vector<NodeSet> nbrs_save;
  std::optional<ZppCutWitness> witness;

  void push(NodeId v) {
    rows.push_group(node_groups[v]);
    nbrs_save.push_back(nbrs);
    nbrs |= g.neighbors(v);
  }

  void pop(NodeId) {
    rows.pop_group();
    nbrs = std::move(nbrs_save.back());
    nbrs_save.pop_back();
  }

  bool visit(const NodeSet& b) {
    NodeSet cut = nbrs;
    cut -= b;
    if (cut.contains(d)) return true;
    witness = scan_maximal_sets(b, cut, rows, zmax);
    return !witness.has_value();
  }
};

std::vector<AdversaryStructure> local_structures(const Instance& inst) {
  std::vector<AdversaryStructure> local_z(inst.graph().capacity());
  inst.graph().nodes().for_each([&](NodeId v) { local_z[v] = inst.local_structure(v); });
  return local_z;
}

}  // namespace

std::optional<ZppCutWitness> find_rmt_zpp_cut(const Instance& inst) {
  RMT_OBS_SCOPE("zpp_cut.find");
  RMT_TRACE_SPAN("zpp_cut.find");
  RMT_REQUIRE(inst.num_players() <= kMaxExactNodes,
              "find_rmt_zpp_cut: instance too large for the exact decider");
  RMT_AUDIT_VALIDATE(inst);
  const Graph& g = inst.graph();
  const std::vector<AdversaryStructure> local_z = local_structures(inst);
  const std::vector<CompiledGroup> node_groups = node_plausibility_groups(g, local_z);

  IncrementalScan scan{g, inst.dealer(), node_groups, inst.adversary().maximal_sets(),
                       {}, {},           {},          {}};
  scan.rows.reserve(g.capacity(), g.capacity());
  scan.nbrs_save.reserve(g.capacity() + 1);
  enumerate_connected_subsets_incremental(g, inst.receiver(), NodeSet::single(inst.dealer()),
                                          scan);
  return std::move(scan.witness);
}

std::optional<ZppCutWitness> find_rmt_zpp_cut_reference(const Instance& inst) {
  RMT_OBS_SCOPE("zpp_cut.find");
  RMT_TRACE_SPAN("zpp_cut.find");
  RMT_REQUIRE(inst.num_players() <= kMaxExactNodes,
              "find_rmt_zpp_cut: instance too large for the exact decider");
  RMT_AUDIT_VALIDATE(inst);
  const Graph& g = inst.graph();
  const NodeId d = inst.dealer();
  const NodeId r = inst.receiver();
  const std::vector<AdversaryStructure> local_z = local_structures(inst);

  std::optional<ZppCutWitness> witness;
  enumerate_connected_subsets(g, r, NodeSet::single(d), [&](const NodeSet& b) {
    const NodeSet cut = g.boundary(b);
    if (cut.contains(d)) return true;
    for (const NodeSet& m : inst.adversary().maximal_sets()) {
      const NodeSet c2 = cut - m;
      bool plausible = true;
      b.for_each([&](NodeId u) {
        if (plausible && !local_z[u].contains(g.neighbors(u) & c2)) plausible = false;
      });
      if (plausible) {
        witness = ZppCutWitness{cut & m, c2, b};
        return false;
      }
    }
    return true;
  });
  return witness;
}

std::optional<ZppCutWitness> find_rmt_zpp_cut(const Instance& inst, exec::ThreadPool* pool) {
  if (pool == nullptr || pool->num_workers() <= 1) return find_rmt_zpp_cut(inst);
  RMT_OBS_SCOPE("zpp_cut.find");
  RMT_TRACE_SPAN("zpp_cut.find");
  RMT_REQUIRE(inst.num_players() <= kMaxExactNodes,
              "find_rmt_zpp_cut: instance too large for the exact decider");
  RMT_AUDIT_VALIDATE(inst);
  const Graph& g = inst.graph();
  const NodeId d = inst.dealer();
  const NodeId r = inst.receiver();
  const std::vector<AdversaryStructure> local_z = local_structures(inst);
  const std::vector<CompiledGroup> node_groups = node_plausibility_groups(g, local_z);
  const std::vector<NodeSet>& zmax = inst.adversary().maximal_sets();

  const auto eval_b = [&](const NodeSet& b) -> std::optional<ZppCutWitness> {
    const NodeSet cut = g.boundary(b);
    if (cut.contains(d)) return std::nullopt;
    ConjunctionRows rows;
    b.for_each([&](NodeId v) { rows.push_group(node_groups[v]); });
    return scan_maximal_sets(b, cut, rows, zmax);
  };

  // Same batched scan as the pooled find_rmt_cut: lowest-index witness ==
  // the sequential witness at any worker count.
  struct First {
    std::size_t index = std::numeric_limits<std::size_t>::max();
    std::optional<ZppCutWitness> w;
  };
  const std::size_t batch_size = 64 * pool->num_workers();
  std::vector<NodeSet> batch;
  batch.reserve(batch_size);
  std::optional<ZppCutWitness> witness;

  const auto flush = [&]() {
    if (batch.empty() || witness) return;
    First f = exec::parallel_reduce<First>(
        pool, 0, batch.size(), exec::suggest_grain(batch.size(), pool), First{},
        [&](std::size_t lo, std::size_t hi) {
          First p;
          for (std::size_t i = lo; i < hi; ++i) {
            if (std::optional<ZppCutWitness> w = eval_b(batch[i])) {
              p.index = i;
              p.w = std::move(w);
              break;
            }
          }
          return p;
        },
        [](First a, First b2) { return a.index <= b2.index ? std::move(a) : std::move(b2); });
    batch.clear();
    if (f.w) witness = std::move(*f.w);
  };

  enumerate_connected_subsets(g, r, NodeSet::single(d), [&](const NodeSet& b) {
    batch.push_back(b);
    if (batch.size() >= batch_size) flush();
    return !witness.has_value();
  });
  flush();
  return witness;
}

bool rmt_zpp_cut_exists(const Instance& inst) { return find_rmt_zpp_cut(inst).has_value(); }

bool zpp_cut_exists_broadcast(const Graph& g, const AdversaryStructure& z, NodeId dealer) {
  const NodeSet corruptible = z.support();
  bool exists = false;
  g.nodes().for_each([&](NodeId r) {
    if (exists || r == dealer || corruptible.contains(r)) return;
    const Instance inst = Instance::ad_hoc(g, z, dealer, r);
    if (rmt_zpp_cut_exists(inst)) exists = true;
  });
  return exists;
}

}  // namespace rmt::analysis

#include "analysis/zpp_cut.hpp"

#include <vector>

#include "analysis/rmt_cut.hpp"
#include "graph/cuts.hpp"
#include "obs/timer.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace rmt::analysis {

std::optional<ZppCutWitness> find_rmt_zpp_cut(const Instance& inst) {
  RMT_OBS_SCOPE("zpp_cut.find");
  RMT_REQUIRE(inst.num_players() <= kMaxExactNodes,
              "find_rmt_zpp_cut: instance too large for the exact decider");
  RMT_AUDIT_VALIDATE(inst);
  const Graph& g = inst.graph();
  const NodeId d = inst.dealer();
  const NodeId r = inst.receiver();

  std::vector<AdversaryStructure> local_z(g.capacity());
  g.nodes().for_each([&](NodeId v) { local_z[v] = inst.local_structure(v); });

  std::optional<ZppCutWitness> witness;
  enumerate_connected_subsets(g, r, NodeSet::single(d), [&](const NodeSet& b) {
    const NodeSet cut = g.boundary(b);
    if (cut.contains(d)) return true;
    for (const NodeSet& m : inst.adversary().maximal_sets()) {
      const NodeSet c2 = cut - m;
      bool plausible = true;
      b.for_each([&](NodeId u) {
        if (plausible && !local_z[u].contains(g.neighbors(u) & c2)) plausible = false;
      });
      if (plausible) {
        witness = ZppCutWitness{cut & m, c2, b};
        return false;
      }
    }
    return true;
  });
  return witness;
}

bool rmt_zpp_cut_exists(const Instance& inst) { return find_rmt_zpp_cut(inst).has_value(); }

bool zpp_cut_exists_broadcast(const Graph& g, const AdversaryStructure& z, NodeId dealer) {
  const NodeSet corruptible = z.support();
  bool exists = false;
  g.nodes().for_each([&](NodeId r) {
    if (exists || r == dealer || corruptible.contains(r)) return;
    const Instance inst = Instance::ad_hoc(g, z, dealer, r);
    if (rmt_zpp_cut_exists(inst)) exists = true;
  });
  return exists;
}

}  // namespace rmt::analysis

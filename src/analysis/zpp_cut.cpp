#include "analysis/zpp_cut.hpp"

#include <limits>
#include <utility>
#include <vector>

#include "analysis/rmt_cut.hpp"
#include "exec/thread_pool.hpp"
#include "graph/cuts.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace rmt::analysis {

namespace {

inline constexpr std::size_t kC2MemoSlots = 8;

// The per-(B, C) maximal-set scan shared by the sequential and pooled
// deciders. Distinct C₂ = C ∖ M repeat across maximal sets whenever two M
// miss the (small) cut identically; the few distinct plausibility answers
// are memoized per B. The memo only short-circuits *identical* tests, so
// the first qualifying M in canonical order still wins (witness identity).
std::optional<ZppCutWitness> scan_maximal_sets(const NodeSet& b, const NodeSet& cut,
                                               const std::vector<NodeId>& members,
                                               const Graph& g,
                                               const std::vector<AdversaryStructure>& local_z,
                                               const std::vector<NodeSet>& zmax) {
  NodeSet seen[kC2MemoSlots];
  bool ans[kC2MemoSlots];
  std::size_t nseen = 0;
  for (const NodeSet& m : zmax) {
    NodeSet c2 = cut;
    c2 -= m;
    bool plausible = false;
    bool cached = false;
    for (std::size_t i = 0; i < nseen; ++i) {
      if (seen[i] == c2) {
        plausible = ans[i];
        cached = true;
        break;
      }
    }
    if (!cached) {
      plausible = true;
      for (NodeId u : members) {
        if (!local_z[u].contains(g.neighbors(u) & c2)) {
          plausible = false;
          break;
        }
      }
      if (nseen < kC2MemoSlots) {
        seen[nseen] = c2;
        ans[nseen] = plausible;
        ++nseen;
      }
    }
    if (plausible) return ZppCutWitness{cut & m, std::move(c2), b};
  }
  return std::nullopt;
}

// Incremental decider state (see rmt_cut.cpp for the pattern): the
// neighbour union ∪_{v∈B} N(v) and the member list follow the DFS by
// push/pop deltas; N(B) = ∪N(v) ∖ B per visit. The member list gives the
// plausibility loop an early exit that NodeSet::for_each cannot.
struct IncrementalScan {
  const Graph& g;
  const NodeId d;
  const std::vector<AdversaryStructure>& local_z;
  const std::vector<NodeSet>& zmax;
  NodeSet nbrs;
  std::vector<NodeId> members;
  std::vector<NodeSet> nbrs_save;
  std::optional<ZppCutWitness> witness;

  void push(NodeId v) {
    members.push_back(v);
    nbrs_save.push_back(nbrs);
    nbrs |= g.neighbors(v);
  }

  void pop(NodeId) {
    members.pop_back();
    nbrs = std::move(nbrs_save.back());
    nbrs_save.pop_back();
  }

  bool visit(const NodeSet& b) {
    NodeSet cut = nbrs;
    cut -= b;
    if (cut.contains(d)) return true;
    witness = scan_maximal_sets(b, cut, members, g, local_z, zmax);
    return !witness.has_value();
  }
};

std::vector<AdversaryStructure> local_structures(const Instance& inst) {
  std::vector<AdversaryStructure> local_z(inst.graph().capacity());
  inst.graph().nodes().for_each([&](NodeId v) { local_z[v] = inst.local_structure(v); });
  return local_z;
}

}  // namespace

std::optional<ZppCutWitness> find_rmt_zpp_cut(const Instance& inst) {
  RMT_OBS_SCOPE("zpp_cut.find");
  RMT_TRACE_SPAN("zpp_cut.find");
  RMT_REQUIRE(inst.num_players() <= kMaxExactNodes,
              "find_rmt_zpp_cut: instance too large for the exact decider");
  RMT_AUDIT_VALIDATE(inst);
  const Graph& g = inst.graph();
  const std::vector<AdversaryStructure> local_z = local_structures(inst);

  IncrementalScan scan{g, inst.dealer(), local_z, inst.adversary().maximal_sets(), {}, {}, {}, {}};
  scan.members.reserve(g.capacity() + 1);
  scan.nbrs_save.reserve(g.capacity() + 1);
  enumerate_connected_subsets_incremental(g, inst.receiver(), NodeSet::single(inst.dealer()),
                                          scan);
  return std::move(scan.witness);
}

std::optional<ZppCutWitness> find_rmt_zpp_cut_reference(const Instance& inst) {
  RMT_OBS_SCOPE("zpp_cut.find");
  RMT_TRACE_SPAN("zpp_cut.find");
  RMT_REQUIRE(inst.num_players() <= kMaxExactNodes,
              "find_rmt_zpp_cut: instance too large for the exact decider");
  RMT_AUDIT_VALIDATE(inst);
  const Graph& g = inst.graph();
  const NodeId d = inst.dealer();
  const NodeId r = inst.receiver();
  const std::vector<AdversaryStructure> local_z = local_structures(inst);

  std::optional<ZppCutWitness> witness;
  enumerate_connected_subsets(g, r, NodeSet::single(d), [&](const NodeSet& b) {
    const NodeSet cut = g.boundary(b);
    if (cut.contains(d)) return true;
    for (const NodeSet& m : inst.adversary().maximal_sets()) {
      const NodeSet c2 = cut - m;
      bool plausible = true;
      b.for_each([&](NodeId u) {
        if (plausible && !local_z[u].contains(g.neighbors(u) & c2)) plausible = false;
      });
      if (plausible) {
        witness = ZppCutWitness{cut & m, c2, b};
        return false;
      }
    }
    return true;
  });
  return witness;
}

std::optional<ZppCutWitness> find_rmt_zpp_cut(const Instance& inst, exec::ThreadPool* pool) {
  if (pool == nullptr || pool->num_workers() <= 1) return find_rmt_zpp_cut(inst);
  RMT_OBS_SCOPE("zpp_cut.find");
  RMT_TRACE_SPAN("zpp_cut.find");
  RMT_REQUIRE(inst.num_players() <= kMaxExactNodes,
              "find_rmt_zpp_cut: instance too large for the exact decider");
  RMT_AUDIT_VALIDATE(inst);
  const Graph& g = inst.graph();
  const NodeId d = inst.dealer();
  const NodeId r = inst.receiver();
  const std::vector<AdversaryStructure> local_z = local_structures(inst);
  const std::vector<NodeSet>& zmax = inst.adversary().maximal_sets();

  const auto eval_b = [&](const NodeSet& b) -> std::optional<ZppCutWitness> {
    const NodeSet cut = g.boundary(b);
    if (cut.contains(d)) return std::nullopt;
    std::vector<NodeId> members = b.to_vector();
    return scan_maximal_sets(b, cut, members, g, local_z, zmax);
  };

  // Same batched scan as the pooled find_rmt_cut: lowest-index witness ==
  // the sequential witness at any worker count.
  struct First {
    std::size_t index = std::numeric_limits<std::size_t>::max();
    std::optional<ZppCutWitness> w;
  };
  const std::size_t batch_size = 64 * pool->num_workers();
  std::vector<NodeSet> batch;
  batch.reserve(batch_size);
  std::optional<ZppCutWitness> witness;

  const auto flush = [&]() {
    if (batch.empty() || witness) return;
    First f = exec::parallel_reduce<First>(
        pool, 0, batch.size(), exec::suggest_grain(batch.size(), pool), First{},
        [&](std::size_t lo, std::size_t hi) {
          First p;
          for (std::size_t i = lo; i < hi; ++i) {
            if (std::optional<ZppCutWitness> w = eval_b(batch[i])) {
              p.index = i;
              p.w = std::move(w);
              break;
            }
          }
          return p;
        },
        [](First a, First b2) { return a.index <= b2.index ? std::move(a) : std::move(b2); });
    batch.clear();
    if (f.w) witness = std::move(*f.w);
  };

  enumerate_connected_subsets(g, r, NodeSet::single(d), [&](const NodeSet& b) {
    batch.push_back(b);
    if (batch.size() >= batch_size) flush();
    return !witness.has_value();
  });
  flush();
  return witness;
}

bool rmt_zpp_cut_exists(const Instance& inst) { return find_rmt_zpp_cut(inst).has_value(); }

bool zpp_cut_exists_broadcast(const Graph& g, const AdversaryStructure& z, NodeId dealer) {
  const NodeSet corruptible = z.support();
  bool exists = false;
  g.nodes().for_each([&](NodeId r) {
    if (exists || r == dealer || corruptible.contains(r)) return;
    const Instance inst = Instance::ad_hoc(g, z, dealer, r);
    if (rmt_zpp_cut_exists(inst)) exists = true;
  });
  return exists;
}

}  // namespace rmt::analysis

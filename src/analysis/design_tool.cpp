#include "analysis/design_tool.hpp"

#include "analysis/rmt_cut.hpp"
#include "util/check.hpp"

namespace rmt::analysis {

std::vector<ReceiverReport> receiver_reports(const Graph& g, const AdversaryStructure& z,
                                             const ViewFunction& gamma, NodeId dealer) {
  const NodeSet corruptible = z.support();
  RMT_REQUIRE(!corruptible.contains(dealer),
              "receiver_reports: the dealer must be honest in the model");
  std::vector<ReceiverReport> out;
  g.nodes().for_each([&](NodeId r) {
    if (r == dealer) return;
    ReceiverReport rep;
    rep.receiver = r;
    rep.corruptible = corruptible.contains(r);
    if (!rep.corruptible) {
      const Instance inst(g, z, gamma, dealer, r);
      rep.solvable = !rmt_cut_exists(inst);
    }
    out.push_back(rep);
  });
  return out;
}

NodeSet rmt_region(const Graph& g, const AdversaryStructure& z, const ViewFunction& gamma,
                   NodeId dealer) {
  NodeSet region;
  for (const ReceiverReport& rep : receiver_reports(g, z, gamma, dealer))
    if (rep.solvable) region.insert(rep.receiver);
  return region;
}

Graph rmt_subgraph(const Graph& g, const AdversaryStructure& z, const ViewFunction& gamma,
                   NodeId dealer) {
  NodeSet zone = rmt_region(g, z, gamma, dealer);
  zone.insert(dealer);
  return g.induced(zone);
}

}  // namespace rmt::analysis

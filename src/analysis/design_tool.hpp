// analysis/design_tool.hpp — network-design-phase tooling.
//
// The paper highlights a practical by-product of the RMT-cut notion: "the
// new cut notion can be used to determine the exact subgraph in which RMT
// is possible in a network design phase" (§1.2(a)). Given a deployment
// (G, Z, γ) and a dealer D, rmt_region computes exactly the set of nodes
// that can serve as receivers, and rmt_subgraph the induced "reliable
// zone" around the dealer.
#pragma once

#include <vector>

#include "instance/instance.hpp"

namespace rmt::analysis {

/// Per-receiver feasibility report.
struct ReceiverReport {
  NodeId receiver = 0;
  bool corruptible = false;  ///< member of some admissible set — excluded
  bool solvable = false;     ///< no RMT-cut towards this receiver
};

/// Evaluate every candidate receiver (all nodes except the dealer).
/// A corruptible node is reported unsolvable: the model's receiver is
/// honest by definition, so no guarantee can be offered to it.
std::vector<ReceiverReport> receiver_reports(const Graph& g, const AdversaryStructure& z,
                                             const ViewFunction& gamma, NodeId dealer);

/// Nodes to which the dealer can transmit reliably (solvable receivers).
NodeSet rmt_region(const Graph& g, const AdversaryStructure& z, const ViewFunction& gamma,
                   NodeId dealer);

/// The induced subgraph on {D} ∪ rmt_region — the reliable zone.
Graph rmt_subgraph(const Graph& g, const AdversaryStructure& z, const ViewFunction& gamma,
                   NodeId dealer);

}  // namespace rmt::analysis

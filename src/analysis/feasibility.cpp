#include "analysis/feasibility.hpp"

#include <limits>

#include "exec/thread_pool.hpp"
#include "graph/connectivity.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace rmt::analysis {

bool solvable(const Instance& inst) { return !rmt_cut_exists(inst); }

bool solvable_by_zcpa(const Instance& inst) { return !rmt_zpp_cut_exists(inst); }

std::optional<TwoCoverWitness> find_two_cover_cut(const Graph& g, const AdversaryStructure& z,
                                                  NodeId dealer, NodeId receiver) {
  RMT_OBS_SCOPE("feasibility.two_cover");
  RMT_TRACE_SPAN("feasibility.two_cover");
  RMT_REQUIRE(g.has_node(dealer) && g.has_node(receiver) && dealer != receiver,
              "find_two_cover_cut: bad endpoints");
  RMT_AUDIT_VALIDATE(g);
  RMT_AUDIT_VALIDATE(z);
  // Maximal sets suffice: unions of smaller admissible sets are subsets of
  // unions of maximal ones, and "separates" is monotone in the removed set
  // as long as D, R stay out — which instance validation guarantees for
  // every admissible set.
  const auto& max_sets = z.maximal_sets();
  for (const NodeSet& z1 : max_sets)
    for (const NodeSet& z2 : max_sets) {
      const NodeSet cut = z1 | z2;
      if (cut.contains(dealer) || cut.contains(receiver)) continue;
      if (separates(g, cut, dealer, receiver)) return TwoCoverWitness{z1, z2};
    }
  return std::nullopt;
}

std::optional<TwoCoverWitness> find_two_cover_cut(const Graph& g, const AdversaryStructure& z,
                                                  NodeId dealer, NodeId receiver,
                                                  exec::ThreadPool* pool) {
  if (pool == nullptr || pool->num_workers() <= 1)
    return find_two_cover_cut(g, z, dealer, receiver);
  RMT_OBS_SCOPE("feasibility.two_cover");
  RMT_TRACE_SPAN("feasibility.two_cover");
  RMT_REQUIRE(g.has_node(dealer) && g.has_node(receiver) && dealer != receiver,
              "find_two_cover_cut: bad endpoints");
  RMT_AUDIT_VALIDATE(g);
  RMT_AUDIT_VALIDATE(z);
  const auto& max_sets = z.maximal_sets();
  const std::size_t n = max_sets.size();
  if (n == 0) return std::nullopt;

  // Flatten the pair grid to row-major indices and keep the lowest hit:
  // the same (z1, z2) the sequential double loop would have returned.
  struct First {
    std::size_t index = std::numeric_limits<std::size_t>::max();
  };
  const First f = exec::parallel_reduce<First>(
      pool, 0, n * n, exec::suggest_grain(n * n, pool), First{},
      [&](std::size_t lo, std::size_t hi) {
        First p;
        for (std::size_t i = lo; i < hi; ++i) {
          const NodeSet& z1 = max_sets[i / n];
          const NodeSet& z2 = max_sets[i % n];
          const NodeSet cut = z1 | z2;
          if (cut.contains(dealer) || cut.contains(receiver)) continue;
          if (separates(g, cut, dealer, receiver)) {
            p.index = i;
            break;
          }
        }
        return p;
      },
      [](First a, First b) { return a.index <= b.index ? a : b; });
  if (f.index == std::numeric_limits<std::size_t>::max()) return std::nullopt;
  return TwoCoverWitness{max_sets[f.index / n], max_sets[f.index % n]};
}

bool solvable_full_knowledge(const Graph& g, const AdversaryStructure& z, NodeId dealer,
                             NodeId receiver) {
  return !find_two_cover_cut(g, z, dealer, receiver).has_value();
}

}  // namespace rmt::analysis

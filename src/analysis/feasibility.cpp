#include "analysis/feasibility.hpp"

#include "graph/connectivity.hpp"
#include "obs/timer.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace rmt::analysis {

bool solvable(const Instance& inst) { return !rmt_cut_exists(inst); }

bool solvable_by_zcpa(const Instance& inst) { return !rmt_zpp_cut_exists(inst); }

std::optional<TwoCoverWitness> find_two_cover_cut(const Graph& g, const AdversaryStructure& z,
                                                  NodeId dealer, NodeId receiver) {
  RMT_OBS_SCOPE("feasibility.two_cover");
  RMT_REQUIRE(g.has_node(dealer) && g.has_node(receiver) && dealer != receiver,
              "find_two_cover_cut: bad endpoints");
  RMT_AUDIT_VALIDATE(g);
  RMT_AUDIT_VALIDATE(z);
  // Maximal sets suffice: unions of smaller admissible sets are subsets of
  // unions of maximal ones, and "separates" is monotone in the removed set
  // as long as D, R stay out — which instance validation guarantees for
  // every admissible set.
  const auto& max_sets = z.maximal_sets();
  for (const NodeSet& z1 : max_sets)
    for (const NodeSet& z2 : max_sets) {
      const NodeSet cut = z1 | z2;
      if (cut.contains(dealer) || cut.contains(receiver)) continue;
      if (separates(g, cut, dealer, receiver)) return TwoCoverWitness{z1, z2};
    }
  return std::nullopt;
}

bool solvable_full_knowledge(const Graph& g, const AdversaryStructure& z, NodeId dealer,
                             NodeId receiver) {
  return !find_two_cover_cut(g, z, dealer, receiver).has_value();
}

}  // namespace rmt::analysis

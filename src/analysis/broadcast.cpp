#include "analysis/broadcast.hpp"

namespace rmt::analysis {

bool broadcast_solvable_ad_hoc(const Graph& g, const AdversaryStructure& z, NodeId dealer) {
  return !zpp_cut_exists_broadcast(g, z, dealer);
}

NodeSet broadcast_reach_ad_hoc(const Graph& g, const AdversaryStructure& z, NodeId dealer) {
  const NodeSet corruptible = z.support();
  NodeSet reach;
  g.nodes().for_each([&](NodeId r) {
    if (r == dealer || corruptible.contains(r)) return;
    const Instance inst = Instance::ad_hoc(g, z, dealer, r);
    if (!rmt_zpp_cut_exists(inst)) reach.insert(r);
  });
  return reach;
}

}  // namespace rmt::analysis

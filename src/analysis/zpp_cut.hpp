// analysis/zpp_cut.hpp — partial-pair cuts for the ad hoc model.
//
// Definition 7 (RMT Z-pp cut): a cut C partitioning V∖C into A ∋ D and
// B ∋ R such that C = C₁ ∪ C₂ with C₁ ∈ Z and ∀u ∈ B: N(u) ∩ C₂ ∈ Z_u.
// Theorems 7 + 8: Z-CPA achieves RMT iff no RMT Z-pp cut exists — the
// tight ad hoc condition.
//
// Definition 10 (Z-pp cut, [13]): the broadcast version — B is any
// non-empty dealer-free side, not necessarily containing a designated
// receiver. A Z-pp cut exists iff an RMT Z-pp cut exists towards *some*
// receiver (split B into components, pick any node of one as the
// receiver), which is how broadcast feasibility is decided here.
//
// The same two WLOG reductions as in rmt_cut.hpp apply (C = N(B) for
// connected B; C₁ = N(B) ∩ M per maximal M ∈ Z).
//
// Z_u here is the node's local structure under the instance's γ; on ad hoc
// instances this is exactly the Z_u = Z^{N[u]} of the paper. The deciders
// accept any γ, in which case they characterize Z-CPA (a protocol that
// only ever uses neighborhood knowledge) on that instance.
#pragma once

#include <optional>

#include "instance/instance.hpp"

namespace rmt::exec {
class ThreadPool;
}

namespace rmt::analysis {

struct ZppCutWitness {
  NodeSet c1;  ///< C₁ ∈ Z
  NodeSet c2;  ///< locally plausible part: ∀u ∈ B, N(u) ∩ C₂ ∈ Z_u
  NodeSet b;   ///< receiver-side component
};

/// Find an RMT Z-pp cut (Def. 7), or nullopt (⇒ Z-CPA succeeds, Thm 7).
/// Incremental scan (see rmt_cut.hpp): N(B) and the member list follow the
/// connected-subset DFS by push/pop deltas; allocation-free at
/// kMaxExactNodes.
std::optional<ZppCutWitness> find_rmt_zpp_cut(const Instance& inst);

/// The straightforward per-B-rebuild decider, kept as the cross-check
/// baseline for witness identity and the BENCH_decider.json comparison.
std::optional<ZppCutWitness> find_rmt_zpp_cut_reference(const Instance& inst);

/// Parallel decider: batched scan over `pool`, lowest-index witness — the
/// returned witness is exactly the sequential one at any worker count.
/// pool == nullptr (or a one-worker pool) falls back to the sequential scan.
std::optional<ZppCutWitness> find_rmt_zpp_cut(const Instance& inst, exec::ThreadPool* pool);

bool rmt_zpp_cut_exists(const Instance& inst);

/// Broadcast Z-pp cut (Def. 10) existence on (G, Z) with dealer D:
/// true iff broadcast by Z-CPA is impossible for some honest receiver.
/// γ is taken ad hoc, matching the model of [13].
bool zpp_cut_exists_broadcast(const Graph& g, const AdversaryStructure& z, NodeId dealer);

}  // namespace rmt::analysis

// analysis/rmt_cut.hpp — the RMT-cut of Definition 3 and its exact decider.
//
//   Let C = C₁ ∪ C₂ be a cut in G partitioning V∖C into A, B' ≠ ∅ with
//   D ∈ A, R ∈ B', and let B be the connected component of R. C is an
//   RMT-cut iff C₁ ∈ Z and C₂ ∩ V(γ(B)) ∈ Z_B.
//
// Theorems 3 + 5: an RMT-cut exists iff *no* safe-and-resilient RMT
// algorithm exists for the instance — so this decider *is* the
// solvability test for the partial knowledge model.
//
// Exactness via two WLOG reductions (both from monotonicity):
//   1. It suffices to scan cuts of the form C = N(B) for connected B ∋ R
//      with D ∉ B ∪ N(B): if (C, C₁, C₂) qualifies with R-component B,
//      then N(B) ⊆ C and the restricted split (N(B)∩C₁, N(B)∩C₂) also
//      qualifies (subsets stay admissible in Z and in the monotone Z_B).
//   2. It suffices to try C₁ = N(B) ∩ M for each *maximal* M ∈ Z: any
//      admissible C₁ is inside some M, and shrinking C₂ to N(B)∖M only
//      helps.
// The scan is exponential in |G| (connected-subset enumeration) — the
// objects quantified over are exponential; instance sizes are guarded.
#pragma once

#include <optional>

#include "instance/instance.hpp"

namespace rmt::exec {
class ThreadPool;
}

namespace rmt::analysis {

/// A concrete RMT-cut, returned as proof of infeasibility.
struct RmtCutWitness {
  NodeSet c1;  ///< the part covered by an admissible set (C₁ ∈ Z)
  NodeSet c2;  ///< the part the receiver side cannot rule out
  NodeSet b;   ///< the connected component of R after removing C₁ ∪ C₂
};

/// Upper bound on instance size accepted by the exact deciders.
inline constexpr std::size_t kMaxExactNodes = 26;

/// Find an RMT-cut, or nullopt if none exists (⇒ RMT-PKA succeeds, Thm 5).
/// Requires num_players() <= kMaxExactNodes.
///
/// Incremental scan: Z_B, V(γ(B)) and N(B) follow the connected-subset DFS
/// by single-node push/pop deltas instead of per-B rebuilds, and every set
/// it touches is inline (NodeSet SBO) at kMaxExactNodes — the hot loop
/// never allocates (obs counter `nodeset.heap_spills` stays 0) and never
/// rebuilds a joint structure (`rmt_cut.joint_rebuilds` stays 0).
std::optional<RmtCutWitness> find_rmt_cut(const Instance& inst);

/// The straightforward decider: rebuilds Z_B, V(γ(B)) and N(B) from scratch
/// for every enumerated B. Same witnesses as find_rmt_cut by construction —
/// kept as the cross-check baseline (tests assert bit-identical answers;
/// bench_decider_hotpath measures the gap as BENCH_decider.json).
std::optional<RmtCutWitness> find_rmt_cut_reference(const Instance& inst);

/// Parallel decider: batches the connected-subset enumeration and
/// evaluates each batch across `pool`, keeping the lowest-index witness —
/// so the returned witness is exactly the sequential one at any worker
/// count. pool == nullptr (or a one-worker pool) falls back to the
/// sequential scan above.
std::optional<RmtCutWitness> find_rmt_cut(const Instance& inst, exec::ThreadPool* pool);

bool rmt_cut_exists(const Instance& inst);

}  // namespace rmt::analysis

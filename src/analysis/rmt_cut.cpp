#include "analysis/rmt_cut.hpp"

#include "adversary/joint.hpp"
#include "graph/cuts.hpp"
#include "obs/timer.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace rmt::analysis {

std::optional<RmtCutWitness> find_rmt_cut(const Instance& inst) {
  RMT_OBS_SCOPE("rmt_cut.find");
  RMT_REQUIRE(inst.num_players() <= kMaxExactNodes,
              "find_rmt_cut: instance too large for the exact decider");
  RMT_AUDIT_VALIDATE(inst);
  const Graph& g = inst.graph();
  const NodeId d = inst.dealer();
  const NodeId r = inst.receiver();

  // Local structures are instance-wide constants; compute them once, not
  // once per enumerated component.
  std::vector<AdversaryStructure> local_z(g.capacity());
  g.nodes().for_each([&](NodeId v) { local_z[v] = inst.local_structure(v); });

  std::optional<RmtCutWitness> witness;
  enumerate_connected_subsets(g, r, NodeSet::single(d), [&](const NodeSet& b) {
    const NodeSet cut = g.boundary(b);
    if (cut.contains(d)) return true;  // D may not sit inside the cut
    // Z_B as a lazy conjunction (see adversary/joint.hpp); built once per B.
    JointStructure zb;
    b.for_each([&](NodeId v) {
      zb.add_constraint(inst.gamma().view_nodes(v), local_z[v]);
    });
    const NodeSet gamma_b = inst.gamma().joint_view_nodes(b);
    for (const NodeSet& m : inst.adversary().maximal_sets()) {
      const NodeSet c2 = cut - m;
      if (zb.contains(c2 & gamma_b)) {
        witness = RmtCutWitness{cut & m, c2, b};
        return false;  // stop enumeration
      }
    }
    return true;
  });
  return witness;
}

bool rmt_cut_exists(const Instance& inst) { return find_rmt_cut(inst).has_value(); }

}  // namespace rmt::analysis

#include "analysis/rmt_cut.hpp"

#include <limits>
#include <utility>

#include "adversary/joint.hpp"
#include "exec/thread_pool.hpp"
#include "graph/cuts.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace rmt::analysis {

namespace {

obs::Counter* joint_rebuild_counter() {
  // Looked up per decider call, never cached across calls: Registry::reset()
  // (bench sections) invalidates metric handles.
  return obs::enabled() ? &obs::Registry::global().counter("rmt_cut.joint_rebuilds") : nullptr;
}

// One prebuilt constraint (Z^{V(γ(v))} over V(γ(v))) per node: the DFS
// pushes copy these, so no restriction/prune ever runs inside the scan.
// Restricting the global Z directly equals local_structure(v) by definition
// and costs one restriction instead of two.
std::vector<RestrictedStructure> prebuilt_constraints(const Instance& inst) {
  std::vector<RestrictedStructure> constraint(inst.graph().capacity());
  inst.graph().nodes().for_each([&](NodeId v) {
    constraint[v] = RestrictedStructure(inst.adversary(), inst.gamma().view_nodes(v));
  });
  return constraint;
}

inline constexpr std::size_t kProbeMemoSlots = 16;
inline constexpr std::size_t kProbeChunk = 16;

// The per-(B, C) maximal-set scan shared by the sequential and pooled
// deciders — one implementation, so their witnesses agree by construction.
// Distinct probes C₂ ∩ V(γ(B)) repeat heavily across maximal sets (any two
// M that miss the small cut identically yield the same C₂), so the few
// distinct joint-membership answers are memoized per B, and the chunk's
// *new* distinct probes go to the joint structure as one probe_batch call.
// Batching and memoization only short-circuit *identical* membership
// tests; the chunk is then walked in canonical antichain order and the
// first qualifying M wins, keeping witnesses bit-identical to the
// reference decider.
std::optional<RmtCutWitness> scan_maximal_sets(const NodeSet& b, const NodeSet& cut,
                                               const NodeSet& gamma_b, const JointStructure& zb,
                                               const std::vector<NodeSet>& zmax) {
  if (zmax.size() == 1) {
    // One maximal set (the fig_f4 trivial family): no repeats to memoize,
    // no chunk to stage — one probe decides the visit.
    NodeSet c2 = cut;
    c2 -= zmax[0];
    NodeSet probe = c2;
    probe &= gamma_b;
    if (zb.contains(probe)) return RmtCutWitness{cut & zmax[0], std::move(c2), b};
    return std::nullopt;
  }
  NodeSet seen[kProbeMemoSlots];
  bool ans[kProbeMemoSlots];
  std::size_t nseen = 0;
  if (zmax.size() < kProbeChunk) {
    // Small antichains (the fig_f4 trivial and random families) probe one
    // by one: the chunk staging below costs more than it amortizes.
    for (const NodeSet& m : zmax) {
      NodeSet c2 = cut;
      c2 -= m;
      NodeSet probe = c2;
      probe &= gamma_b;
      bool member = false;
      bool cached = false;
      for (std::size_t i = 0; i < nseen; ++i) {
        if (seen[i] == probe) {
          member = ans[i];
          cached = true;
          break;
        }
      }
      if (!cached) {
        member = zb.contains(probe);
        if (nseen < kProbeMemoSlots) {
          seen[nseen] = probe;
          ans[nseen] = member;
          ++nseen;
        }
      }
      if (member) return RmtCutWitness{cut & m, std::move(c2), b};
    }
    return std::nullopt;
  }
  NodeSet c2s[kProbeChunk];
  NodeSet probes[kProbeChunk];
  // member[j]: cached answer for chunk slot j; fresh[j]: index into the
  // batch of not-yet-answered distinct probes, or kProbeChunk for cached.
  bool member[kProbeChunk];
  std::size_t fresh[kProbeChunk];
  NodeSet batch[kProbeChunk];
  bool batch_ans[kProbeChunk];
  std::size_t owner[kProbeChunk];  // chunk slot that inserted batch[i]
  for (std::size_t base = 0; base < zmax.size(); base += kProbeChunk) {
    const std::size_t len = std::min(kProbeChunk, zmax.size() - base);
    std::size_t nbatch = 0;
    for (std::size_t j = 0; j < len; ++j) {
      c2s[j] = cut;
      c2s[j] -= zmax[base + j];
      probes[j] = c2s[j];
      probes[j] &= gamma_b;
      fresh[j] = kProbeChunk;
      bool cached = false;
      for (std::size_t i = 0; i < nseen; ++i) {
        if (seen[i] == probes[j]) {
          member[j] = ans[i];
          cached = true;
          break;
        }
      }
      if (cached) continue;
      // Dedupe within the pending batch too: chunk-mates repeat probes
      // just as heavily as the memo hits do.
      for (std::size_t i = 0; i < nbatch; ++i) {
        if (batch[i] == probes[j]) {
          fresh[j] = i;
          cached = true;
          break;
        }
      }
      if (cached) continue;
      batch[nbatch] = probes[j];
      owner[nbatch] = j;
      fresh[j] = nbatch;
      ++nbatch;
    }
    if (nbatch > 0) zb.probe_batch(batch, nbatch, batch_ans);
    for (std::size_t j = 0; j < len; ++j) {
      if (fresh[j] != kProbeChunk) {
        member[j] = batch_ans[fresh[j]];
        if (owner[fresh[j]] == j && nseen < kProbeMemoSlots) {
          seen[nseen] = probes[j];
          ans[nseen] = member[j];
          ++nseen;
        }
      }
      if (member[j])
        return RmtCutWitness{cut & zmax[base + j], std::move(c2s[j]), b};
    }
  }
  return std::nullopt;
}

// Incremental decider state, driven by the push/pop enumeration: Z_B, the
// joint view union V(γ(B)) and the neighbour union ∪_{v∈B} N(v) (whence
// N(B) = ∪N(v) ∖ B) all follow the DFS by single-node deltas. Unions are
// not invertible, so pop restores from a save stack instead of subtracting;
// all stacks are preallocated and every set involved is inline at
// kMaxExactNodes, so the scan never allocates.
struct IncrementalScan {
  const Graph& g;
  const NodeId d;
  const ViewFunction& gamma;
  const std::vector<RestrictedStructure>& constraint;
  const std::vector<NodeSet>& zmax;
  JointStructure zb;
  NodeSet gamma_b;
  NodeSet nbrs;
  std::vector<NodeSet> gamma_save;
  std::vector<NodeSet> nbrs_save;
  std::optional<RmtCutWitness> witness;

  void push(NodeId v) {
    zb.add_constraint_ref(constraint[v]);  // constraint outlives the scan
    gamma_save.push_back(gamma_b);
    gamma_b |= gamma.view_nodes(v);
    nbrs_save.push_back(nbrs);
    nbrs |= g.neighbors(v);
  }

  void pop(NodeId) {
    zb.pop_constraint();
    gamma_b = std::move(gamma_save.back());
    gamma_save.pop_back();
    nbrs = std::move(nbrs_save.back());
    nbrs_save.pop_back();
  }

  bool visit(const NodeSet& b) {
    NodeSet cut = nbrs;
    cut -= b;
    if (cut.contains(d)) return true;  // D may not sit inside the cut
    witness = scan_maximal_sets(b, cut, gamma_b, zb, zmax);
    return !witness.has_value();
  }
};

}  // namespace

std::optional<RmtCutWitness> find_rmt_cut(const Instance& inst) {
  RMT_OBS_SCOPE("rmt_cut.find");
  RMT_TRACE_SPAN("rmt_cut.find");
  RMT_REQUIRE(inst.num_players() <= kMaxExactNodes,
              "find_rmt_cut: instance too large for the exact decider");
  RMT_AUDIT_VALIDATE(inst);
  const Graph& g = inst.graph();
  const std::vector<RestrictedStructure> constraint = prebuilt_constraints(inst);

  IncrementalScan scan{g,  inst.dealer(), inst.gamma(), constraint, inst.adversary().maximal_sets(),
                       {}, {},            {},           {},         {},
                       {}};
  scan.zb.reserve(g.capacity());
  scan.gamma_save.reserve(g.capacity() + 1);
  scan.nbrs_save.reserve(g.capacity() + 1);
  enumerate_connected_subsets_incremental(g, inst.receiver(), NodeSet::single(inst.dealer()),
                                          scan);
  return std::move(scan.witness);
}

std::optional<RmtCutWitness> find_rmt_cut_reference(const Instance& inst) {
  RMT_OBS_SCOPE("rmt_cut.find");
  RMT_TRACE_SPAN("rmt_cut.find");
  RMT_REQUIRE(inst.num_players() <= kMaxExactNodes,
              "find_rmt_cut: instance too large for the exact decider");
  RMT_AUDIT_VALIDATE(inst);
  const Graph& g = inst.graph();
  const NodeId d = inst.dealer();
  const NodeId r = inst.receiver();

  // Local structures are instance-wide constants; compute them once, not
  // once per enumerated component.
  std::vector<AdversaryStructure> local_z(g.capacity());
  g.nodes().for_each([&](NodeId v) { local_z[v] = inst.local_structure(v); });
  obs::Counter* rebuilds = joint_rebuild_counter();

  std::optional<RmtCutWitness> witness;
  enumerate_connected_subsets(g, r, NodeSet::single(d), [&](const NodeSet& b) {
    const NodeSet cut = g.boundary(b);
    if (cut.contains(d)) return true;  // D may not sit inside the cut
    // Z_B membership spelled out per the definition: x ∈ ⊕_{v∈B} Z_v^{Γ(v)}
    // iff every node's slice x ∩ Γ(v) lies in Z_v^{Γ(v)}. The slice is a
    // subset of Γ(v), so membership in the restriction equals membership in
    // Z_v itself — no restricted structures, no conjunction compilation;
    // this is the oracle the incremental decider is checked against.
    if (rebuilds) rebuilds->inc();  // one fresh conjunction evaluated per B
    for (const NodeSet& m : inst.adversary().maximal_sets()) {
      const NodeSet c2 = cut - m;
      bool member = true;
      b.for_each([&](NodeId v) {
        if (member && !local_z[v].contains(c2 & inst.gamma().view_nodes(v))) member = false;
      });
      if (member) {
        witness = RmtCutWitness{cut & m, c2, b};
        return false;  // stop enumeration
      }
    }
    return true;
  });
  return witness;
}

std::optional<RmtCutWitness> find_rmt_cut(const Instance& inst, exec::ThreadPool* pool) {
  if (pool == nullptr || pool->num_workers() <= 1) return find_rmt_cut(inst);
  RMT_OBS_SCOPE("rmt_cut.find");
  RMT_TRACE_SPAN("rmt_cut.find");
  RMT_REQUIRE(inst.num_players() <= kMaxExactNodes,
              "find_rmt_cut: instance too large for the exact decider");
  RMT_AUDIT_VALIDATE(inst);
  const Graph& g = inst.graph();
  const NodeId d = inst.dealer();
  const NodeId r = inst.receiver();

  const std::vector<RestrictedStructure> constraint = prebuilt_constraints(inst);
  const std::vector<NodeSet>& zmax = inst.adversary().maximal_sets();
  obs::Counter* rebuilds = joint_rebuild_counter();  // atomic: safe from workers

  // The per-B work from the sequential scan, as a pure function of B. The
  // batch items are independent, so Z_B is rebuilt per B here (counted) —
  // but from the prebuilt constraints, so the rebuild is |B| pointer pushes
  // and compiled-row appends, not |B| restrictions.
  const auto eval_b = [&](const NodeSet& b) -> std::optional<RmtCutWitness> {
    const NodeSet cut = g.boundary(b);
    if (cut.contains(d)) return std::nullopt;
    JointStructure zb;
    zb.reserve(g.capacity());
    NodeSet gamma_b;
    b.for_each([&](NodeId v) {
      zb.add_constraint_ref(constraint[v]);  // constraint outlives the batch
      gamma_b |= inst.gamma().view_nodes(v);
    });
    if (rebuilds) rebuilds->inc();
    return scan_maximal_sets(b, cut, gamma_b, zb, zmax);
  };

  // The enumeration itself is a sequential DFS, so the pipeline is:
  // collect a batch of candidate Bs, fan the batch out over the pool,
  // keep the lowest-index witness (== the first in enumeration order, so
  // the answer matches the sequential decider bit for bit), stop at the
  // first batch that produced one.
  struct First {
    std::size_t index = std::numeric_limits<std::size_t>::max();
    std::optional<RmtCutWitness> w;
  };
  const std::size_t batch_size = 64 * pool->num_workers();
  std::vector<NodeSet> batch;
  batch.reserve(batch_size);
  std::optional<RmtCutWitness> witness;

  const auto flush = [&]() {
    if (batch.empty() || witness) return;
    First f = exec::parallel_reduce<First>(
        pool, 0, batch.size(), exec::suggest_grain(batch.size(), pool), First{},
        [&](std::size_t lo, std::size_t hi) {
          First p;
          for (std::size_t i = lo; i < hi; ++i) {
            if (std::optional<RmtCutWitness> w = eval_b(batch[i])) {
              p.index = i;
              p.w = std::move(w);
              break;  // lowest index within the chunk; rest cannot win
            }
          }
          return p;
        },
        [](First a, First b2) { return a.index <= b2.index ? std::move(a) : std::move(b2); });
    batch.clear();
    if (f.w) witness = std::move(*f.w);
  };

  enumerate_connected_subsets(g, r, NodeSet::single(d), [&](const NodeSet& b) {
    batch.push_back(b);
    if (batch.size() >= batch_size) flush();
    return !witness.has_value();
  });
  flush();
  return witness;
}

bool rmt_cut_exists(const Instance& inst) { return find_rmt_cut(inst).has_value(); }

}  // namespace rmt::analysis

#include "analysis/rmt_cut.hpp"

#include <limits>

#include "adversary/joint.hpp"
#include "exec/thread_pool.hpp"
#include "graph/cuts.hpp"
#include "obs/timer.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace rmt::analysis {

std::optional<RmtCutWitness> find_rmt_cut(const Instance& inst) {
  RMT_OBS_SCOPE("rmt_cut.find");
  RMT_REQUIRE(inst.num_players() <= kMaxExactNodes,
              "find_rmt_cut: instance too large for the exact decider");
  RMT_AUDIT_VALIDATE(inst);
  const Graph& g = inst.graph();
  const NodeId d = inst.dealer();
  const NodeId r = inst.receiver();

  // Local structures are instance-wide constants; compute them once, not
  // once per enumerated component.
  std::vector<AdversaryStructure> local_z(g.capacity());
  g.nodes().for_each([&](NodeId v) { local_z[v] = inst.local_structure(v); });

  std::optional<RmtCutWitness> witness;
  enumerate_connected_subsets(g, r, NodeSet::single(d), [&](const NodeSet& b) {
    const NodeSet cut = g.boundary(b);
    if (cut.contains(d)) return true;  // D may not sit inside the cut
    // Z_B as a lazy conjunction (see adversary/joint.hpp); built once per B.
    JointStructure zb;
    b.for_each([&](NodeId v) {
      zb.add_constraint(inst.gamma().view_nodes(v), local_z[v]);
    });
    const NodeSet gamma_b = inst.gamma().joint_view_nodes(b);
    for (const NodeSet& m : inst.adversary().maximal_sets()) {
      const NodeSet c2 = cut - m;
      if (zb.contains(c2 & gamma_b)) {
        witness = RmtCutWitness{cut & m, c2, b};
        return false;  // stop enumeration
      }
    }
    return true;
  });
  return witness;
}

std::optional<RmtCutWitness> find_rmt_cut(const Instance& inst, exec::ThreadPool* pool) {
  if (pool == nullptr || pool->num_workers() <= 1) return find_rmt_cut(inst);
  RMT_OBS_SCOPE("rmt_cut.find");
  RMT_REQUIRE(inst.num_players() <= kMaxExactNodes,
              "find_rmt_cut: instance too large for the exact decider");
  RMT_AUDIT_VALIDATE(inst);
  const Graph& g = inst.graph();
  const NodeId d = inst.dealer();
  const NodeId r = inst.receiver();

  std::vector<AdversaryStructure> local_z(g.capacity());
  g.nodes().for_each([&](NodeId v) { local_z[v] = inst.local_structure(v); });

  // The per-B work from the sequential scan, as a pure function of B.
  const auto eval_b = [&](const NodeSet& b) -> std::optional<RmtCutWitness> {
    const NodeSet cut = g.boundary(b);
    if (cut.contains(d)) return std::nullopt;
    JointStructure zb;
    b.for_each([&](NodeId v) {
      zb.add_constraint(inst.gamma().view_nodes(v), local_z[v]);
    });
    const NodeSet gamma_b = inst.gamma().joint_view_nodes(b);
    for (const NodeSet& m : inst.adversary().maximal_sets()) {
      const NodeSet c2 = cut - m;
      if (zb.contains(c2 & gamma_b)) return RmtCutWitness{cut & m, c2, b};
    }
    return std::nullopt;
  };

  // The enumeration itself is a sequential DFS, so the pipeline is:
  // collect a batch of candidate Bs, fan the batch out over the pool,
  // keep the lowest-index witness (== the first in enumeration order, so
  // the answer matches the sequential decider bit for bit), stop at the
  // first batch that produced one.
  struct First {
    std::size_t index = std::numeric_limits<std::size_t>::max();
    std::optional<RmtCutWitness> w;
  };
  const std::size_t batch_size = 64 * pool->num_workers();
  std::vector<NodeSet> batch;
  batch.reserve(batch_size);
  std::optional<RmtCutWitness> witness;

  const auto flush = [&]() {
    if (batch.empty() || witness) return;
    First f = exec::parallel_reduce<First>(
        pool, 0, batch.size(), exec::suggest_grain(batch.size(), pool), First{},
        [&](std::size_t lo, std::size_t hi) {
          First p;
          for (std::size_t i = lo; i < hi; ++i) {
            if (std::optional<RmtCutWitness> w = eval_b(batch[i])) {
              p.index = i;
              p.w = std::move(w);
              break;  // lowest index within the chunk; rest cannot win
            }
          }
          return p;
        },
        [](First a, First b2) { return a.index <= b2.index ? std::move(a) : std::move(b2); });
    batch.clear();
    if (f.w) witness = std::move(*f.w);
  };

  enumerate_connected_subsets(g, r, NodeSet::single(d), [&](const NodeSet& b) {
    batch.push_back(b);
    if (batch.size() >= batch_size) flush();
    return !witness.has_value();
  });
  flush();
  return witness;
}

bool rmt_cut_exists(const Instance& inst) { return find_rmt_cut(inst).has_value(); }

}  // namespace rmt::analysis

#include "analysis/minimal_knowledge.hpp"

#include "analysis/rmt_cut.hpp"
#include "obs/timer.hpp"
#include "util/audit.hpp"

namespace rmt::analysis {

bool knowledge_leq(const ViewFunction& smaller, const ViewFunction& larger) {
  return smaller.refined_by(larger);
}

namespace {

bool sufficient(const Instance& base, const ViewFunction& gamma) {
  const Instance trial(base.graph(), base.adversary(), gamma, base.dealer(), base.receiver());
  return !rmt_cut_exists(trial);
}

}  // namespace

std::optional<MinimalKnowledge> find_minimal_sufficient_view(const Instance& inst) {
  RMT_OBS_SCOPE("minimal_knowledge.search");
  RMT_AUDIT_VALIDATE(inst);
  if (rmt_cut_exists(inst)) return std::nullopt;

  ViewFunction gamma = inst.gamma();
  std::size_t removed_edges = 0;
  std::size_t removed_nodes = 0;

  // Pass 1: drop view edges one at a time (each is one unit of topology
  // knowledge). Pass 2: drop isolated known nodes (knowledge of a node's
  // existence — and with it the reach of Z_v, since Z_v = Z^{V(γ(v))}).
  // Repeat until a fixpoint: deleting one piece can make another deletable.
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<NodeId> owners = inst.graph().nodes().to_vector();
    for (NodeId v : owners) {
      for (const Edge& e : gamma.view(v).edges()) {
        // Edges incident to the owner are the model floor (every player
        // knows its own channels) — not knowledge that can be shed.
        if (e.a == v || e.b == v) continue;
        // The edge list was snapshotted before this inner loop; earlier
        // deletions in the same sweep may have removed e already.
        if (!gamma.view(v).has_edge(e.a, e.b)) continue;
        Graph shrunk = gamma.view(v);
        shrunk.remove_edge(e.a, e.b);
        ViewFunction trial = gamma;
        trial.set_view(v, shrunk);
        if (sufficient(inst, trial)) {
          gamma = std::move(trial);
          ++removed_edges;
          changed = true;
        }
      }
      // Isolated nodes (degree 0 in the view) other than v itself.
      Graph view = gamma.view(v);
      std::vector<NodeId> isolated;
      view.nodes().for_each([&](NodeId u) {
        if (u != v && view.degree(u) == 0) isolated.push_back(u);
      });
      for (NodeId u : isolated) {
        Graph shrunk = gamma.view(v);
        if (!shrunk.has_node(u) || shrunk.degree(u) != 0) continue;
        shrunk.remove_node(u);
        ViewFunction trial = gamma;
        trial.set_view(v, shrunk);
        if (sufficient(inst, trial)) {
          gamma = std::move(trial);
          ++removed_nodes;
          changed = true;
        }
      }
    }
  }
  return MinimalKnowledge{std::move(gamma), removed_edges, removed_nodes};
}

}  // namespace rmt::analysis

// analysis/broadcast.hpp — Reliable Broadcast feasibility (§4 / [13]).
//
// In Reliable Broadcast with an honest dealer the receiver is the whole
// player set: every honest player must decide on x_D. The paper adapts
// its machinery from this problem; we close the loop and expose broadcast
// queries built on the per-receiver deciders:
//   * ad hoc broadcast by Z-CPA is possible iff no Z-pp cut (Def. 10)
//     exists — equivalently, iff RMT is possible towards every honest
//     receiver;
//   * broadcast_reach reports which honest players are reachable, i.e.
//     the set Z-CPA actually informs when the unreachable side is cut off.
#pragma once

#include "analysis/zpp_cut.hpp"

namespace rmt::analysis {

/// Ad hoc broadcast solvability on (G, Z) with honest dealer D
/// (Def. 10 / Thms 7+8 lifted over all receivers).
bool broadcast_solvable_ad_hoc(const Graph& g, const AdversaryStructure& z, NodeId dealer);

/// The honest players to which ad hoc RMT (hence Z-CPA certification) is
/// individually possible. Broadcast is solvable iff this is every honest
/// non-dealer player.
NodeSet broadcast_reach_ad_hoc(const Graph& g, const AdversaryStructure& z, NodeId dealer);

}  // namespace rmt::analysis

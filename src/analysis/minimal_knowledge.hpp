// analysis/minimal_knowledge.hpp — "RMT under minimal knowledge" (§3.1).
//
// The paper orders view functions pointwise by the subgraph relation and
// observes that the non-existence of an RMT-cut characterizes the minimal
// initial knowledge that renders RMT solvable: a *minimal sufficient* γ is
// one with no RMT-cut such that removing any single piece of knowledge
// (an edge, or an isolated non-self node, from some view) creates one.
//
// find_minimal_sufficient_view computes such a minimal γ by greedy
// deletion. Minimal elements are not unique — the greedy order (ascending
// node, ascending edge) picks a canonical one deterministically. Deletion
// never goes below the model floor (each view keeps its owner's incident
// star; see knowledge/view.hpp): the ad hoc views are the minimum element
// of the ordering in this model.
#pragma once

#include <optional>

#include "instance/instance.hpp"

namespace rmt::analysis {

/// Result of the greedy minimization.
struct MinimalKnowledge {
  ViewFunction gamma;        ///< a minimal sufficient view function
  std::size_t removed_edges; ///< knowledge pieces shed from the input γ
  std::size_t removed_nodes;
};

/// Starting from inst.gamma() (which must be sufficient — no RMT-cut),
/// repeatedly delete view edges/nodes while sufficiency is preserved.
/// Returns nullopt if the instance is not solvable to begin with.
std::optional<MinimalKnowledge> find_minimal_sufficient_view(const Instance& inst);

/// True if γ' ≤ γ pointwise (the paper's ordering, with γ' the smaller).
bool knowledge_leq(const ViewFunction& smaller, const ViewFunction& larger);

}  // namespace rmt::analysis

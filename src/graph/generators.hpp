// graph/generators.hpp — topology generators for tests, examples and the
// experiment harness.
//
// Conventions: all generators return graphs with contiguous node ids
// 0..n-1. Where an experiment needs a dealer/receiver pair, the convention
// throughout the repository is D = 0 and R = n-1 unless stated otherwise.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace rmt::generators {

/// Path 0-1-...-(n-1). Requires n >= 1.
Graph path_graph(std::size_t n);

/// Cycle on n >= 3 nodes.
Graph cycle_graph(std::size_t n);

/// Complete graph K_n.
Graph complete_graph(std::size_t n);

/// w×h grid; node (x, y) has id y*w + x. Requires w, h >= 1.
Graph grid_graph(std::size_t w, std::size_t h);

/// The paper's Figure-1 "basic instance" family G': dealer D = 0, receiver
/// R = m+1, middle set A(G') = {1..m}, edges only D–a and a–R for each
/// a in the middle set. Requires m >= 1.
Graph basic_instance_graph(std::size_t m);

/// `layers` layers of `width` nodes between D = 0 and R = last id; every
/// node of layer i is adjacent to every node of layer i+1, D to all of the
/// first layer and R to all of the last. layers=1 gives basic instances.
Graph layered_graph(std::size_t layers, std::size_t width);

/// Uniform spanning-tree-ish random tree on n nodes (random attachment).
Graph random_tree(std::size_t n, Rng& rng);

/// Erdős–Rényi G(n, p) conditioned on connectivity: a random tree is laid
/// down first, then every remaining pair gets an edge with probability p.
/// Degenerate p = 0 gives a random tree, p = 1 gives K_n.
Graph random_connected_gnp(std::size_t n, double p, Rng& rng);

/// Random geometric ("sensor network") graph on the unit square: nodes at
/// uniform positions, edge iff Euclidean distance <= radius; extra edges
/// are added along a random tree if needed, to guarantee connectivity
/// (an ad hoc network with a partitioned topology is out of the model).
Graph random_geometric(std::size_t n, double radius, Rng& rng);

/// d-dimensional hypercube Q_d on 2^d nodes; node ids are the coordinate
/// bitmasks. Vertex connectivity d — a classic threshold-RMT testbed.
Graph hypercube(std::size_t d);

/// Complete bipartite K_{a,b}: sides {0..a-1} and {a..a+b-1}.
Graph complete_bipartite(std::size_t a, std::size_t b);

/// Two K_m cliques joined by a single bridge edge — the worst case for
/// cut-based adversaries (the bridge endpoints are a 2-cut).
Graph barbell(std::size_t m);

/// `count` internally node-disjoint D–R paths, each with `hops` >= 1
/// intermediate nodes. D = 0; path i's intermediates are
/// 1 + i*hops ... i*hops + hops, in order; R = count*hops + 1.
/// With singleton-corruptible bottlenecks this family separates the
/// knowledge models: locally-plausible pair cuts exist (ad hoc fails)
/// while no two admissible sets cover a cut (full knowledge succeeds).
Graph parallel_paths(std::size_t count, std::size_t hops);

/// "Generalized wheel": a cycle on n-1 nodes 1..n-1 plus a hub 0 adjacent
/// to every `spoke_stride`-th cycle node. A classic family where local and
/// global threshold conditions diverge.
Graph generalized_wheel(std::size_t n, std::size_t spoke_stride);

}  // namespace rmt::generators

// graph/graphviz.hpp — DOT export for inspection of instances and witnesses.
//
// Used by the examples and by the network-design tool to visualize where
// RMT is possible and which cut witnesses infeasibility.
#pragma once

#include <map>
#include <string>

#include "graph/graph.hpp"

namespace rmt {

struct DotOptions {
  std::string graph_name = "G";
  /// Nodes rendered with a distinct fill (e.g. a cut witness).
  NodeSet highlight;
  std::string highlight_color = "lightcoral";
  /// Extra per-node labels, appended to the id.
  std::map<NodeId, std::string> labels;
};

/// Render g as an undirected Graphviz DOT document.
std::string to_dot(const Graph& g, const DotOptions& opts = {});

}  // namespace rmt

#include "graph/connectivity.hpp"

#include <deque>

#include "util/check.hpp"

namespace rmt {

NodeSet component_of(const Graph& g, NodeId v, const NodeSet& removed) {
  RMT_REQUIRE(g.has_node(v), "component_of: absent node");
  RMT_REQUIRE(!removed.contains(v), "component_of: start node is removed");
  NodeSet seen = NodeSet::single(v);
  std::deque<NodeId> queue{v};
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    NodeSet next = g.neighbors(u);
    next -= seen;
    next -= removed;
    next.for_each([&](NodeId w) {
      seen.insert(w);
      queue.push_back(w);
    });
  }
  return seen;
}

std::vector<NodeSet> components(const Graph& g) {
  std::vector<NodeSet> out;
  NodeSet left = g.nodes();
  while (!left.empty()) {
    const NodeSet c = component_of(g, left.min());
    out.push_back(c);
    left -= c;
  }
  return out;
}

bool is_connected(const Graph& g) {
  if (g.nodes().empty()) return true;
  return component_of(g, g.nodes().min()).size() == g.num_nodes();
}

bool separates(const Graph& g, const NodeSet& cut, NodeId s, NodeId t) {
  RMT_REQUIRE(g.has_node(s) && g.has_node(t), "separates: absent endpoint");
  RMT_REQUIRE(!cut.contains(s) && !cut.contains(t), "separates: cut contains an endpoint");
  return !component_of(g, s, cut).contains(t);
}

std::optional<std::size_t> distance(const Graph& g, NodeId s, NodeId t) {
  RMT_REQUIRE(g.has_node(s) && g.has_node(t), "distance: absent endpoint");
  if (s == t) return 0;
  NodeSet frontier = NodeSet::single(s);
  NodeSet seen = frontier;
  std::size_t d = 0;
  while (!frontier.empty()) {
    ++d;
    NodeSet next;
    frontier.for_each([&](NodeId u) { next |= g.neighbors(u); });
    next -= seen;
    if (next.contains(t)) return d;
    seen |= next;
    frontier = std::move(next);
  }
  return std::nullopt;
}

NodeSet ball(const Graph& g, NodeId v, std::size_t k) {
  RMT_REQUIRE(g.has_node(v), "ball: absent node");
  NodeSet seen = NodeSet::single(v);
  NodeSet frontier = seen;
  for (std::size_t i = 0; i < k && !frontier.empty(); ++i) {
    NodeSet next;
    frontier.for_each([&](NodeId u) { next |= g.neighbors(u); });
    next -= seen;
    seen |= next;
    frontier = std::move(next);
  }
  return seen;
}

}  // namespace rmt

#include "graph/node_set.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/audit.hpp"

namespace rmt {

// See the matching pragma in node_set.hpp: GCC cannot correlate cap_ with
// the active union member and reports spurious bounds errors at -O2.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif

void NodeSet::grow(std::size_t need) {
  // Cold path: only sets wider than kInlineBits ids (or copies of such sets)
  // ever land here. Capacity doubles so repeated inserts amortize, and never
  // shrinks back — a spilled set stays spilled, but its *value* (the active
  // words) is what ==/hash/<=> observe, so representation is unobservable.
  const std::size_t newcap = std::max(need, static_cast<std::size_t>(cap_) * 2);
  auto* nw = new std::uint64_t[newcap];
  const std::uint64_t* ow = words();
  for (std::uint32_t i = 0; i < nwords_; ++i) nw[i] = ow[i];
  if (spilled()) delete[] heap_;
  heap_ = nw;
  cap_ = static_cast<std::uint32_t>(newcap);
  if (obs::enabled()) obs::Registry::global().counter("nodeset.heap_spills").inc();
}

std::size_t NodeSet::size() const {
  const std::uint64_t* ws = words();
  std::size_t n = 0;
  for (std::size_t i = 0; i < nwords_; ++i)
    n += static_cast<std::size_t>(__builtin_popcountll(ws[i]));
  return n;
}

NodeId NodeSet::min() const {
  RMT_REQUIRE(!empty(), "min() of empty NodeSet");
  const std::uint64_t* ws = words();
  for (std::size_t w = 0; w < nwords_; ++w)
    if (ws[w]) return static_cast<NodeId>(w * 64 + static_cast<std::size_t>(__builtin_ctzll(ws[w])));
  RMT_CHECK(false, "normalized NodeSet had only zero words");
}

NodeId NodeSet::max() const {
  RMT_REQUIRE(!empty(), "max() of empty NodeSet");
  const std::size_t w = nwords_ - 1;
  return static_cast<NodeId>(w * 64 + 63 - static_cast<std::size_t>(__builtin_clzll(words()[w])));
}

std::vector<NodeId> NodeSet::to_vector() const {
  std::vector<NodeId> out;
  out.reserve(size());
  for_each([&](NodeId v) { out.push_back(v); });
  return out;
}

NodeSet& NodeSet::operator|=(const NodeSet& o) {
  if (o.nwords_ > nwords_) ensure_words(o.nwords_);
  std::uint64_t* w = words();
  const std::uint64_t* ow = o.words();
  for (std::size_t i = 0; i < o.nwords_; ++i) w[i] |= ow[i];
  return *this;
}

NodeSet& NodeSet::operator&=(const NodeSet& o) {
  if (nwords_ > o.nwords_) nwords_ = o.nwords_;
  std::uint64_t* w = words();
  const std::uint64_t* ow = o.words();
  for (std::size_t i = 0; i < nwords_; ++i) w[i] &= ow[i];
  normalize();
  return *this;
}

NodeSet& NodeSet::operator-=(const NodeSet& o) {
  const std::size_t n = std::min(nwords_, o.nwords_);
  std::uint64_t* w = words();
  const std::uint64_t* ow = o.words();
  for (std::size_t i = 0; i < n; ++i) w[i] &= ~ow[i];
  normalize();
  return *this;
}

NodeSet& NodeSet::operator^=(const NodeSet& o) {
  if (o.nwords_ > nwords_) ensure_words(o.nwords_);
  std::uint64_t* w = words();
  const std::uint64_t* ow = o.words();
  for (std::size_t i = 0; i < o.nwords_; ++i) w[i] ^= ow[i];
  normalize();
  return *this;
}

bool NodeSet::is_subset_of(const NodeSet& o) const {
  if (nwords_ > o.nwords_) return false;  // canonical form: extra words are non-zero
  const std::uint64_t* w = words();
  const std::uint64_t* ow = o.words();
  for (std::size_t i = 0; i < nwords_; ++i)
    if (w[i] & ~ow[i]) return false;
  return true;
}

bool NodeSet::intersects(const NodeSet& o) const {
  const std::size_t n = std::min(nwords_, o.nwords_);
  const std::uint64_t* w = words();
  const std::uint64_t* ow = o.words();
  for (std::size_t i = 0; i < n; ++i)
    if (w[i] & ow[i]) return true;
  return false;
}

std::size_t NodeSet::hash() const {
  // FNV-1a over active words; canonical form makes this well-defined per
  // value, independent of inline vs. spilled representation.
  const std::uint64_t* ws = words();
  std::size_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < nwords_; ++i) {
    h ^= static_cast<std::size_t>(ws[i]);
    h *= 1099511628211ull;
  }
  return h;
}

void NodeSet::debug_validate() const {
  if (nwords_ > cap_)
    audit::detail::fail("node_set", "active word count exceeds storage capacity");
  if (nwords_ != 0 && words()[nwords_ - 1] == 0)
    audit::detail::fail("node_set",
                        "trailing zero word breaks canonical form (==/hash/subset tests "
                        "assume normalized words) in " + to_string());
}

std::string NodeSet::to_string() const {
  std::string out = "{";
  bool first = true;
  for_each([&](NodeId v) {
    if (!first) out += ", ";
    first = false;
    out += std::to_string(v);
  });
  return out + "}";
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace rmt

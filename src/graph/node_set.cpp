#include "graph/node_set.hpp"

#include <algorithm>

#include "util/audit.hpp"

namespace rmt {

std::size_t NodeSet::size() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
  return n;
}

NodeId NodeSet::min() const {
  RMT_REQUIRE(!empty(), "min() of empty NodeSet");
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (words_[w]) return static_cast<NodeId>(w * 64 + static_cast<std::size_t>(__builtin_ctzll(words_[w])));
  RMT_CHECK(false, "normalized NodeSet had only zero words");
}

NodeId NodeSet::max() const {
  RMT_REQUIRE(!empty(), "max() of empty NodeSet");
  const std::size_t w = words_.size() - 1;
  return static_cast<NodeId>(w * 64 + 63 - static_cast<std::size_t>(__builtin_clzll(words_[w])));
}

std::vector<NodeId> NodeSet::to_vector() const {
  std::vector<NodeId> out;
  out.reserve(size());
  for_each([&](NodeId v) { out.push_back(v); });
  return out;
}

NodeSet& NodeSet::operator|=(const NodeSet& o) {
  if (o.words_.size() > words_.size()) words_.resize(o.words_.size(), 0);
  for (std::size_t i = 0; i < o.words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

NodeSet& NodeSet::operator&=(const NodeSet& o) {
  if (words_.size() > o.words_.size()) words_.resize(o.words_.size());
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  normalize();
  return *this;
}

NodeSet& NodeSet::operator-=(const NodeSet& o) {
  const std::size_t n = std::min(words_.size(), o.words_.size());
  for (std::size_t i = 0; i < n; ++i) words_[i] &= ~o.words_[i];
  normalize();
  return *this;
}

NodeSet& NodeSet::operator^=(const NodeSet& o) {
  if (o.words_.size() > words_.size()) words_.resize(o.words_.size(), 0);
  for (std::size_t i = 0; i < o.words_.size(); ++i) words_[i] ^= o.words_[i];
  normalize();
  return *this;
}

bool NodeSet::is_subset_of(const NodeSet& o) const {
  if (words_.size() > o.words_.size()) return false;  // canonical form: extra words are non-zero
  for (std::size_t i = 0; i < words_.size(); ++i)
    if (words_[i] & ~o.words_[i]) return false;
  return true;
}

bool NodeSet::intersects(const NodeSet& o) const {
  const std::size_t n = std::min(words_.size(), o.words_.size());
  for (std::size_t i = 0; i < n; ++i)
    if (words_[i] & o.words_[i]) return true;
  return false;
}

std::size_t NodeSet::hash() const {
  // FNV-1a over words; canonical form makes this well-defined per value.
  std::size_t h = 1469598103934665603ull;
  for (std::uint64_t w : words_) {
    h ^= static_cast<std::size_t>(w);
    h *= 1099511628211ull;
  }
  return h;
}

void NodeSet::debug_validate() const {
  if (!words_.empty() && words_.back() == 0)
    audit::detail::fail("node_set",
                        "trailing zero word breaks canonical form (==/hash/subset tests "
                        "assume normalized words) in " + to_string());
}

std::string NodeSet::to_string() const {
  std::string out = "{";
  bool first = true;
  for_each([&](NodeId v) {
    if (!first) out += ", ";
    first = false;
    out += std::to_string(v);
  });
  return out + "}";
}

}  // namespace rmt

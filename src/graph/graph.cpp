#include "graph/graph.hpp"

#include <algorithm>

#include "util/audit.hpp"
#include "util/check.hpp"

namespace rmt {

void Graph::add_node(NodeId v) {
  if (v >= adj_.size()) adj_.resize(v + 1);
  nodes_.insert(v);
}

void Graph::add_edge(NodeId u, NodeId v) {
  RMT_REQUIRE(u != v, "self-loop edges are not allowed");
  add_node(u);
  add_node(v);
  adj_[u].insert(v);
  adj_[v].insert(u);
}

void Graph::remove_edge(NodeId u, NodeId v) {
  if (u < adj_.size()) adj_[u].erase(v);
  if (v < adj_.size()) adj_[v].erase(u);
}

void Graph::remove_node(NodeId v) {
  if (!has_node(v)) return;
  adj_[v].for_each([&](NodeId u) { adj_[u].erase(v); });
  adj_[v].clear();
  nodes_.erase(v);
}

std::size_t Graph::num_edges() const {
  std::size_t twice = 0;
  nodes_.for_each([&](NodeId v) { twice += adj_[v].size(); });
  return twice / 2;
}

const NodeSet& Graph::neighbors(NodeId v) const {
  RMT_REQUIRE(has_node(v), "neighbors() of absent node " + std::to_string(v));
  return adj_[v];
}

NodeSet Graph::closed_neighborhood(NodeId v) const {
  NodeSet s = neighbors(v);
  s.insert(v);
  return s;
}

NodeSet Graph::boundary(const NodeSet& s) const {
  NodeSet out;
  (s & nodes_).for_each([&](NodeId v) { out |= adj_[v]; });
  out -= s;
  return out;
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  nodes_.for_each([&](NodeId v) {
    adj_[v].for_each([&](NodeId u) {
      if (v < u) out.push_back({v, u});
    });
  });
  return out;
}

Graph Graph::induced(const NodeSet& s) const {
  Graph g;
  const NodeSet keep = s & nodes_;
  keep.for_each([&](NodeId v) { g.add_node(v); });
  keep.for_each([&](NodeId v) {
    (adj_[v] & keep).for_each([&](NodeId u) {
      if (v < u) g.add_edge(v, u);
    });
  });
  return g;
}

Graph Graph::united(const Graph& o) const {
  Graph g = *this;
  o.nodes_.for_each([&](NodeId v) { g.add_node(v); });
  for (const Edge& e : o.edges()) g.add_edge(e.a, e.b);
  return g;
}

bool Graph::contains_subgraph(const Graph& o) const {
  if (!o.nodes_.is_subset_of(nodes_)) return false;
  bool ok = true;
  o.nodes_.for_each([&](NodeId v) {
    if (!o.adj_[v].is_subset_of(adj_[v])) ok = false;
  });
  return ok;
}

bool operator==(const Graph& a, const Graph& b) {
  if (a.nodes_ != b.nodes_) return false;
  bool eq = true;
  a.nodes_.for_each([&](NodeId v) {
    if (a.adj_[v] != b.adj_[v]) eq = false;
  });
  return eq;
}

void Graph::debug_validate() const {
  // Messages are assembled with += (not chained operator+) to sidestep a
  // GCC 12 -Wrestrict false positive on nested string concatenation.
  const auto fail_at = [](const char* what, std::size_t v, const std::string& detail) {
    std::string msg = what;
    msg += " at node ";
    msg += std::to_string(v);
    if (!detail.empty()) {
      msg += ": ";
      msg += detail;
    }
    audit::detail::fail("graph", msg);
  };
  nodes_.debug_validate();
  if (!nodes_.empty() && nodes_.max() >= adj_.size())
    fail_at("missing adjacency row", nodes_.max(),
            "capacity " + std::to_string(adj_.size()));
  for (std::size_t v = 0; v < adj_.size(); ++v) {
    adj_[v].debug_validate();
    if (!nodes_.contains(NodeId(v))) {
      if (!adj_[v].empty())
        fail_at("non-empty adjacency row for absent node", v, adj_[v].to_string());
      continue;
    }
    if (adj_[v].contains(NodeId(v))) fail_at("self-loop", v, "");
    if (!adj_[v].is_subset_of(nodes_))
      fail_at("adjacency to non-nodes", v, (adj_[v] - nodes_).to_string());
    adj_[v].for_each([&](NodeId u) {
      if (!adj_[u].contains(NodeId(v)))
        fail_at("asymmetric adjacency", v,
                "edge to " + std::to_string(u) + " recorded in one direction only");
    });
  }
}

std::string Graph::to_string() const {
  // Assembled with += (not chained operator+) to sidestep a GCC 12
  // -Wrestrict false positive on nested string concatenation.
  std::string out = "Graph(V=";
  out += nodes_.to_string();
  out += ", E={";
  bool first = true;
  for (const Edge& e : edges()) {
    if (!first) out += ", ";
    first = false;
    out += "{";
    out += std::to_string(e.a);
    out += ",";
    out += std::to_string(e.b);
    out += "}";
  }
  out += "})";
  return out;
}

}  // namespace rmt

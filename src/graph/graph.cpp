#include "graph/graph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rmt {

void Graph::add_node(NodeId v) {
  if (v >= adj_.size()) adj_.resize(v + 1);
  nodes_.insert(v);
}

void Graph::add_edge(NodeId u, NodeId v) {
  RMT_REQUIRE(u != v, "self-loop edges are not allowed");
  add_node(u);
  add_node(v);
  adj_[u].insert(v);
  adj_[v].insert(u);
}

void Graph::remove_edge(NodeId u, NodeId v) {
  if (u < adj_.size()) adj_[u].erase(v);
  if (v < adj_.size()) adj_[v].erase(u);
}

void Graph::remove_node(NodeId v) {
  if (!has_node(v)) return;
  adj_[v].for_each([&](NodeId u) { adj_[u].erase(v); });
  adj_[v].clear();
  nodes_.erase(v);
}

std::size_t Graph::num_edges() const {
  std::size_t twice = 0;
  nodes_.for_each([&](NodeId v) { twice += adj_[v].size(); });
  return twice / 2;
}

const NodeSet& Graph::neighbors(NodeId v) const {
  RMT_REQUIRE(has_node(v), "neighbors() of absent node " + std::to_string(v));
  return adj_[v];
}

NodeSet Graph::closed_neighborhood(NodeId v) const {
  NodeSet s = neighbors(v);
  s.insert(v);
  return s;
}

NodeSet Graph::boundary(const NodeSet& s) const {
  NodeSet out;
  (s & nodes_).for_each([&](NodeId v) { out |= adj_[v]; });
  out -= s;
  return out;
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  nodes_.for_each([&](NodeId v) {
    adj_[v].for_each([&](NodeId u) {
      if (v < u) out.push_back({v, u});
    });
  });
  return out;
}

Graph Graph::induced(const NodeSet& s) const {
  Graph g;
  const NodeSet keep = s & nodes_;
  keep.for_each([&](NodeId v) { g.add_node(v); });
  keep.for_each([&](NodeId v) {
    (adj_[v] & keep).for_each([&](NodeId u) {
      if (v < u) g.add_edge(v, u);
    });
  });
  return g;
}

Graph Graph::united(const Graph& o) const {
  Graph g = *this;
  o.nodes_.for_each([&](NodeId v) { g.add_node(v); });
  for (const Edge& e : o.edges()) g.add_edge(e.a, e.b);
  return g;
}

bool Graph::contains_subgraph(const Graph& o) const {
  if (!o.nodes_.is_subset_of(nodes_)) return false;
  bool ok = true;
  o.nodes_.for_each([&](NodeId v) {
    if (!o.adj_[v].is_subset_of(adj_[v])) ok = false;
  });
  return ok;
}

bool operator==(const Graph& a, const Graph& b) {
  if (a.nodes_ != b.nodes_) return false;
  bool eq = true;
  a.nodes_.for_each([&](NodeId v) {
    if (a.adj_[v] != b.adj_[v]) eq = false;
  });
  return eq;
}

std::string Graph::to_string() const {
  std::string out = "Graph(V=" + nodes_.to_string() + ", E={";
  bool first = true;
  for (const Edge& e : edges()) {
    if (!first) out += ", ";
    first = false;
    out += "{" + std::to_string(e.a) + "," + std::to_string(e.b) + "}";
  }
  return out + "})";
}

}  // namespace rmt

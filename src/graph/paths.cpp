#include "graph/paths.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace rmt {

bool is_simple_path(const Graph& g, const Path& p) {
  if (p.empty()) return false;
  NodeSet seen;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (!g.has_node(p[i]) || seen.contains(p[i])) return false;
    seen.insert(p[i]);
    if (i > 0 && !g.has_edge(p[i - 1], p[i])) return false;
  }
  return true;
}

std::string path_to_string(const Path& p) {
  std::string out;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i) out += "-";
    out += std::to_string(p[i]);
  }
  return out;
}

namespace {

struct PathDfs {
  const Graph& g;
  NodeId target;
  const std::function<bool(const Path&)>& visit;
  std::size_t budget;
  Path current;
  NodeSet on_path;
  bool stopped = false;  // either budget exhausted or visitor declined

  // Returns false to abort the whole enumeration.
  bool run(NodeId v) {
    current.push_back(v);
    on_path.insert(v);
    if (v == target) {
      // Note: only abort when a path *beyond* the budget is found, so an
      // enumeration with exactly `max_paths` paths reports kComplete.
      if (budget == 0 || !visit(current)) {
        stopped = true;
      } else {
        --budget;
      }
    } else {
      NodeSet next = g.neighbors(v);
      next -= on_path;
      bool keep_going = true;
      next.for_each([&](NodeId u) {
        if (keep_going && !stopped) keep_going = run(u);
      });
    }
    on_path.erase(v);
    current.pop_back();
    return !stopped;
  }
};

}  // namespace

EnumStatus enumerate_simple_paths(const Graph& g, NodeId s, NodeId t,
                                  const std::function<bool(const Path&)>& visit,
                                  std::size_t max_paths) {
  RMT_REQUIRE(g.has_node(s) && g.has_node(t), "enumerate_simple_paths: absent endpoint");
  if (max_paths == 0) return EnumStatus::kTruncated;
  PathDfs dfs{g, t, visit, max_paths, {}, {}, false};
  dfs.run(s);
  // `stopped` with remaining budget means the visitor declined — callers of
  // the callback form asked to stop; we still flag truncation so they can
  // tell the output is partial.
  return dfs.stopped ? EnumStatus::kTruncated : EnumStatus::kComplete;
}

std::vector<Path> all_simple_paths(const Graph& g, NodeId s, NodeId t, std::size_t max_paths) {
  std::vector<Path> out;
  const EnumStatus st = enumerate_simple_paths(
      g, s, t,
      [&](const Path& p) {
        out.push_back(p);
        return true;
      },
      max_paths);
  if (st == EnumStatus::kTruncated)
    throw std::length_error("all_simple_paths: more than max_paths simple paths");
  return out;
}

std::size_t count_simple_paths(const Graph& g, NodeId s, NodeId t, std::size_t cap) {
  std::size_t n = 0;
  enumerate_simple_paths(
      g, s, t,
      [&](const Path&) {
        ++n;
        return true;
      },
      cap);
  return n;
}

}  // namespace rmt

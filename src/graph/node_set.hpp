// graph/node_set.hpp — NodeSet: a compact dynamic bitset over node ids.
//
// NodeSet is the workhorse value type of the library: adversary structures
// are antichains of NodeSets, cuts and components are NodeSets, and the
// exact deciders enumerate millions of them. It therefore favours:
//   * value semantics (regular type: copy, ==, hash, <);
//   * word-parallel set algebra (|, &, -, subset tests);
//   * a stable iteration order (ascending node id);
//   * allocation-free storage for small sets (small-buffer optimization).
//
// Storage: ids below kInlineBits (= 128) live in two inline words; larger
// sets spill to a heap buffer that only ever grows. All observable behaviour
// (==, <=>, hash, subset tests, iteration) is defined over the *active*
// words only, so an inline set and a spilled-then-shrunk set holding the
// same ids are indistinguishable. The exact deciders cap instances at
// kMaxExactNodes = 26, so their hot loops never touch the allocator; the
// obs counter `nodeset.heap_spills` counts every heap allocation to keep
// that claim measurable.
//
// A NodeSet does not know its "universe": operations on sets built against
// different graphs are well-defined bitwise (missing high bits read as 0),
// which is exactly the semantics of subsets of a common global id space.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace rmt {

// GCC's flow analysis does not track that cap_ > kInlineWords selects the
// heap_ member of the storage union, so at -O2 it reports out-of-bounds
// subscripts / zero-size writes against the two inline words for accesses
// that are only reachable in the spilled state. False positives; suppressed
// for the SBO accessors only (clang and the sanitizers see nothing).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif

/// Node identifier. Dense, 0-based per graph.
using NodeId = std::uint32_t;

class NodeSet {
 public:
  /// Words stored inline before spilling to the heap (128 node ids).
  static constexpr std::size_t kInlineWords = 2;
  /// Largest id representable without a heap allocation.
  static constexpr std::size_t kInlineBits = kInlineWords * 64;

  NodeSet() = default;
  NodeSet(std::initializer_list<NodeId> ids) {
    for (NodeId v : ids) insert(v);
  }

  NodeSet(const NodeSet& o) { assign_from(o); }
  NodeSet(NodeSet&& o) noexcept { steal_from(o); }
  NodeSet& operator=(const NodeSet& o) {
    if (this != &o) assign_from(o);
    return *this;
  }
  NodeSet& operator=(NodeSet&& o) noexcept {
    if (this != &o) {
      release();
      steal_from(o);
    }
    return *this;
  }
  ~NodeSet() { release(); }

  /// The set {0, 1, ..., n-1}.
  static NodeSet full(std::size_t n) {
    NodeSet s;
    if (n == 0) return s;
    s.ensure_words((n + 63) / 64);
    std::uint64_t* w = s.words();
    for (std::size_t i = 0; i < s.nwords_; ++i) w[i] = ~0ull;
    const std::size_t tail = n % 64;
    if (tail != 0) w[s.nwords_ - 1] = (1ull << tail) - 1;
    return s;
  }

  /// The singleton {v}.
  static NodeSet single(NodeId v) {
    NodeSet s;
    s.insert(v);
    return s;
  }

  void insert(NodeId v) {
    const std::size_t w = v / 64;
    if (w >= nwords_) ensure_words(w + 1);
    words()[w] |= 1ull << (v % 64);
  }

  void erase(NodeId v) {
    const std::size_t w = v / 64;
    if (w < nwords_) {
      words()[w] &= ~(1ull << (v % 64));
      normalize();
    }
  }

  bool contains(NodeId v) const {
    const std::size_t w = v / 64;
    return w < nwords_ && (words()[w] >> (v % 64)) & 1;
  }

  bool empty() const { return nwords_ == 0; }
  /// Drops the elements; retained heap capacity is reused, not freed.
  void clear() { nwords_ = 0; }

  /// Number of elements.
  std::size_t size() const;

  /// Smallest element. Requires non-empty.
  NodeId min() const;
  /// Largest element. Requires non-empty.
  NodeId max() const;

  /// Elements in ascending order.
  std::vector<NodeId> to_vector() const;

  /// Apply f to each element in ascending order.
  template <typename F>
  void for_each(F&& f) const {
    const std::uint64_t* ws = words();
    for (std::size_t w = 0; w < nwords_; ++w) {
      std::uint64_t bits = ws[w];
      while (bits) {
        const int b = __builtin_ctzll(bits);
        f(static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b)));
        bits &= bits - 1;
      }
    }
  }

  NodeSet& operator|=(const NodeSet& o);
  NodeSet& operator&=(const NodeSet& o);
  NodeSet& operator-=(const NodeSet& o);  // set difference
  NodeSet& operator^=(const NodeSet& o);  // symmetric difference

  friend NodeSet operator|(NodeSet a, const NodeSet& b) { return a |= b; }
  friend NodeSet operator&(NodeSet a, const NodeSet& b) { return a &= b; }
  friend NodeSet operator-(NodeSet a, const NodeSet& b) { return a -= b; }
  friend NodeSet operator^(NodeSet a, const NodeSet& b) { return a ^= b; }

  /// Read-only view of the active words, lowest word first.
  struct WordSpan {
    const std::uint64_t* words;
    std::size_t count;
  };

  /// Bulk word export for the bit-matrix builder and the audit
  /// cross-checks, replacing per-bit iteration. Reads of words [0, count)
  /// are value-defined; the pointer additionally stays dereferenceable up
  /// to kInlineWords (inline sets) or the allocated capacity (spilled
  /// sets), so padded vector loads past `count` are memory-safe but read
  /// unspecified values. Canonical form guarantees count == 0 or
  /// words[count-1] != 0.
  WordSpan word_span() const { return {words(), nwords_}; }

  bool is_subset_of(const NodeSet& o) const;
  bool is_superset_of(const NodeSet& o) const { return o.is_subset_of(*this); }
  bool intersects(const NodeSet& o) const;
  bool is_disjoint_from(const NodeSet& o) const { return !intersects(o); }

  friend bool operator==(const NodeSet& a, const NodeSet& b) {
    return a.nwords_ == b.nwords_ && std::equal(a.words(), a.words() + a.nwords_, b.words());
  }
  /// Lexicographic-on-words total order; used only for canonical sorting
  /// (e.g. deterministic antichain layout), not for set-theoretic meaning.
  friend std::strong_ordering operator<=>(const NodeSet& a, const NodeSet& b) {
    return std::lexicographical_compare_three_way(a.words(), a.words() + a.nwords_, b.words(),
                                                  b.words() + b.nwords_);
  }

  std::size_t hash() const;

  /// "{0, 3, 7}" — for diagnostics and DOT labels.
  std::string to_string() const;

  /// Deep invariant check (rmt::audit): canonical form — no trailing zero
  /// words, so == and hash() are value-correct — and representation sanity
  /// (active words never exceed capacity; inline capacity is exact).
  /// Throws audit::AuditError.
  void debug_validate() const;

 private:
  friend struct AuditTestAccess;  // tests corrupt internals to prove detection

  bool spilled() const { return cap_ > kInlineWords; }
  std::uint64_t* words() { return spilled() ? heap_ : inline_; }
  const std::uint64_t* words() const { return spilled() ? heap_ : inline_; }

  // Make words [0, n) addressable (new words zeroed); grows storage on the
  // cold path only. Never shrinks nwords_.
  void ensure_words(std::size_t n) {
    if (n > cap_) grow(n);
    std::uint64_t* w = words();
    for (std::size_t i = nwords_; i < n; ++i) w[i] = 0;
    if (n > nwords_) nwords_ = static_cast<std::uint32_t>(n);
  }

  void grow(std::size_t need);  // cold path: allocates, counts nodeset.heap_spills

  void assign_from(const NodeSet& o) {
    if (o.nwords_ > cap_) grow(o.nwords_);
    std::uint64_t* w = words();
    const std::uint64_t* ow = o.words();
    for (std::uint32_t i = 0; i < o.nwords_; ++i) w[i] = ow[i];
    nwords_ = o.nwords_;
  }

  void steal_from(NodeSet& o) noexcept {
    nwords_ = o.nwords_;
    cap_ = o.cap_;
    if (o.spilled()) {
      heap_ = o.heap_;
    } else {
      for (std::size_t i = 0; i < kInlineWords; ++i) inline_[i] = o.inline_[i];
    }
    o.nwords_ = 0;
    o.cap_ = kInlineWords;
  }

  void release() {
    if (spilled()) delete[] heap_;
    nwords_ = 0;
    cap_ = kInlineWords;
  }

  // Invariant: no trailing zero words (canonical form, so == is bitwise).
  void normalize() {
    const std::uint64_t* w = words();
    while (nwords_ != 0 && w[nwords_ - 1] == 0) --nwords_;
  }

  std::uint32_t nwords_ = 0;             // active (canonical) word count
  std::uint32_t cap_ = kInlineWords;     // allocated words; > kInlineWords ⇒ heap
  union {
    std::uint64_t inline_[kInlineWords] = {0, 0};
    std::uint64_t* heap_;
  };
};

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace rmt

template <>
struct std::hash<rmt::NodeSet> {
  std::size_t operator()(const rmt::NodeSet& s) const { return s.hash(); }
};

// graph/node_set.hpp — NodeSet: a compact dynamic bitset over node ids.
//
// NodeSet is the workhorse value type of the library: adversary structures
// are antichains of NodeSets, cuts and components are NodeSets, and the
// exact deciders enumerate millions of them. It therefore favours:
//   * value semantics (regular type: copy, ==, hash, <);
//   * word-parallel set algebra (|, &, -, subset tests);
//   * a stable iteration order (ascending node id).
//
// A NodeSet does not know its "universe": operations on sets built against
// different graphs are well-defined bitwise (missing high bits read as 0),
// which is exactly the semantics of subsets of a common global id space.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace rmt {

/// Node identifier. Dense, 0-based per graph.
using NodeId = std::uint32_t;

class NodeSet {
 public:
  NodeSet() = default;
  NodeSet(std::initializer_list<NodeId> ids) {
    for (NodeId v : ids) insert(v);
  }

  /// The set {0, 1, ..., n-1}.
  static NodeSet full(std::size_t n) {
    NodeSet s;
    if (n == 0) return s;
    s.words_.assign((n + 63) / 64, ~0ull);
    const std::size_t tail = n % 64;
    if (tail != 0) s.words_.back() = (1ull << tail) - 1;
    return s;
  }

  /// The singleton {v}.
  static NodeSet single(NodeId v) {
    NodeSet s;
    s.insert(v);
    return s;
  }

  void insert(NodeId v) {
    const std::size_t w = v / 64;
    if (w >= words_.size()) words_.resize(w + 1, 0);
    words_[w] |= 1ull << (v % 64);
  }

  void erase(NodeId v) {
    const std::size_t w = v / 64;
    if (w < words_.size()) {
      words_[w] &= ~(1ull << (v % 64));
      normalize();
    }
  }

  bool contains(NodeId v) const {
    const std::size_t w = v / 64;
    return w < words_.size() && (words_[w] >> (v % 64)) & 1;
  }

  bool empty() const { return words_.empty(); }
  void clear() { words_.clear(); }

  /// Number of elements.
  std::size_t size() const;

  /// Smallest element. Requires non-empty.
  NodeId min() const;
  /// Largest element. Requires non-empty.
  NodeId max() const;

  /// Elements in ascending order.
  std::vector<NodeId> to_vector() const;

  /// Apply f to each element in ascending order.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits) {
        const int b = __builtin_ctzll(bits);
        f(static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b)));
        bits &= bits - 1;
      }
    }
  }

  NodeSet& operator|=(const NodeSet& o);
  NodeSet& operator&=(const NodeSet& o);
  NodeSet& operator-=(const NodeSet& o);  // set difference
  NodeSet& operator^=(const NodeSet& o);  // symmetric difference

  friend NodeSet operator|(NodeSet a, const NodeSet& b) { return a |= b; }
  friend NodeSet operator&(NodeSet a, const NodeSet& b) { return a &= b; }
  friend NodeSet operator-(NodeSet a, const NodeSet& b) { return a -= b; }
  friend NodeSet operator^(NodeSet a, const NodeSet& b) { return a ^= b; }

  bool is_subset_of(const NodeSet& o) const;
  bool is_superset_of(const NodeSet& o) const { return o.is_subset_of(*this); }
  bool intersects(const NodeSet& o) const;
  bool is_disjoint_from(const NodeSet& o) const { return !intersects(o); }

  friend bool operator==(const NodeSet& a, const NodeSet& b) { return a.words_ == b.words_; }
  /// Lexicographic-on-words total order; used only for canonical sorting
  /// (e.g. deterministic antichain layout), not for set-theoretic meaning.
  friend std::strong_ordering operator<=>(const NodeSet& a, const NodeSet& b) {
    return a.words_ <=> b.words_;
  }

  std::size_t hash() const;

  /// "{0, 3, 7}" — for diagnostics and DOT labels.
  std::string to_string() const;

  /// Deep invariant check (rmt::audit): canonical form — no trailing zero
  /// words, so == and hash() are value-correct. Throws audit::AuditError.
  void debug_validate() const;

 private:
  friend struct AuditTestAccess;  // tests corrupt internals to prove detection
  // Invariant: no trailing zero words (canonical form, so == is bitwise).
  void normalize() {
    while (!words_.empty() && words_.back() == 0) words_.pop_back();
  }

  std::vector<std::uint64_t> words_;
};

}  // namespace rmt

template <>
struct std::hash<rmt::NodeSet> {
  std::size_t operator()(const rmt::NodeSet& s) const { return s.hash(); }
};

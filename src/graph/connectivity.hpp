// graph/connectivity.hpp — reachability and components.
//
// These are the primitives behind every cut notion in the paper: a set C is
// a D–R cut iff R is unreachable from D once C is removed, and the
// "connected component that R lies in" (Defs. 3, 6) is component_of(...)
// after removal.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace rmt {

/// Connected component of `v` in g, restricted to nodes not in `removed`.
/// Requires g.has_node(v) and !removed.contains(v).
NodeSet component_of(const Graph& g, NodeId v, const NodeSet& removed = {});

/// All connected components of g (ascending by smallest member).
std::vector<NodeSet> components(const Graph& g);

bool is_connected(const Graph& g);

/// True if removing `cut` (which must not contain s or t) disconnects s
/// from t. Vacuously true if they are already disconnected.
bool separates(const Graph& g, const NodeSet& cut, NodeId s, NodeId t);

/// BFS hop distance from s to t avoiding nothing; nullopt if unreachable.
std::optional<std::size_t> distance(const Graph& g, NodeId s, NodeId t);

/// Nodes within `k` hops of v (k = 0 gives {v}).
NodeSet ball(const Graph& g, NodeId v, std::size_t k);

}  // namespace rmt

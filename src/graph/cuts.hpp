// graph/cuts.hpp — vertex cuts and connected-subset enumeration.
//
// Every infeasibility notion in the paper (RMT-cut, Z-pp cut, adversary
// cover) quantifies over D–R vertex separators together with the connected
// component B of the receiver. The key reduction, used by all exact
// deciders (see DESIGN.md §1), is that it suffices to consider cuts of the
// form C = N(B) for connected sets B containing R: any larger qualifying
// cut with R-component B implies N(B) qualifies, by monotonicity of
// adversary structures. This file provides that enumeration.
#pragma once

#include <functional>

#include "graph/graph.hpp"

namespace rmt {

/// Enumerate every connected node set B of g with `seed ∈ B` and
/// B ∩ forbidden = ∅. `visit(B)` is called once per set; return false to
/// stop. Returns false iff the enumeration was stopped by the visitor.
///
/// Algorithm: classic connected-subgraph enumeration with an exclusion
/// frontier — each recursive level picks one boundary vertex to include and
/// forbids the previously considered ones, so every connected superset of
/// {seed} is generated exactly once. The count is exponential in general
/// (and must be: the objects quantified over are exponential families);
/// callers bound instance sizes instead of the enumerator.
bool enumerate_connected_subsets(const Graph& g, NodeId seed, const NodeSet& forbidden,
                                 const std::function<bool(const NodeSet&)>& visit);

/// The minimum number of nodes (excluding s, t) whose removal disconnects
/// s from t — Menger vertex connectivity via node-splitting max-flow.
/// Returns num_nodes() if s and t are adjacent (no separator exists).
std::size_t min_vertex_cut(const Graph& g, NodeId s, NodeId t);

/// True if every D–R separator has size >= k (i.e. there are k internally
/// node-disjoint s–t paths).
bool is_k_connected_between(const Graph& g, NodeId s, NodeId t, std::size_t k);

}  // namespace rmt

// graph/cuts.hpp — vertex cuts and connected-subset enumeration.
//
// Every infeasibility notion in the paper (RMT-cut, Z-pp cut, adversary
// cover) quantifies over D–R vertex separators together with the connected
// component B of the receiver. The key reduction, used by all exact
// deciders (see DESIGN.md §1), is that it suffices to consider cuts of the
// form C = N(B) for connected sets B containing R: any larger qualifying
// cut with R-component B implies N(B) qualifies, by monotonicity of
// adversary structures. This file provides that enumeration.
#pragma once

#include <functional>
#include <type_traits>
#include <vector>

#include "graph/graph.hpp"
#include "util/check.hpp"

namespace rmt {

/// Enumerate every connected node set B of g with `seed ∈ B` and
/// B ∩ forbidden = ∅. `visit(B)` is called once per set; return false to
/// stop. Returns false iff the enumeration was stopped by the visitor.
///
/// Algorithm: classic connected-subgraph enumeration with an exclusion
/// frontier — each recursive level picks one boundary vertex to include and
/// forbids the previously considered ones, so every connected superset of
/// {seed} is generated exactly once. The count is exponential in general
/// (and must be: the objects quantified over are exponential families);
/// callers bound instance sizes instead of the enumerator.
bool enumerate_connected_subsets(const Graph& g, NodeId seed, const NodeSet& forbidden,
                                 const std::function<bool(const NodeSet&)>& visit);

namespace detail {

template <typename Visitor>
struct ConnectedSubsetDfs {
  const Graph& g;
  Visitor& vis;
  NodeSet current;
  // Neighbour union ∪_{v ∈ current} N(v), maintained by single-node deltas:
  // boundary(current) = nbrs ∖ current, so no level ever recomputes it from
  // scratch. Union is not invertible, so exits restore from a save stack.
  NodeSet nbrs;
  std::vector<NodeSet> nbrs_save;
  // Shared candidate arena: each recursion level appends its frontier and
  // truncates back on exit, so the whole DFS performs zero per-level vector
  // allocations once the arena has warmed up.
  std::vector<NodeId> arena;
  bool aborted = false;

  void run(const NodeSet& excluded) {
    if (!vis.visit(current)) {
      aborted = true;
      return;
    }
    NodeSet frontier = nbrs;
    frontier -= current;
    frontier -= excluded;
    const std::size_t begin = arena.size();
    frontier.for_each([&](NodeId x) { arena.push_back(x); });
    const std::size_t end = arena.size();
    // Each candidate extends `current`; candidates already tried at this
    // level are excluded below, which is what makes the enumeration
    // duplicate-free.
    NodeSet banned = excluded;
    for (std::size_t i = begin; i < end && !aborted; ++i) {
      const NodeId x = arena[i];
      current.insert(x);
      nbrs_save.push_back(nbrs);
      nbrs |= g.neighbors(x);
      vis.push(x);
      run(banned);
      vis.pop(x);
      nbrs = std::move(nbrs_save.back());
      nbrs_save.pop_back();
      current.erase(x);
      banned.insert(x);
    }
    arena.resize(begin);
  }
};

}  // namespace detail

/// Incremental (push/pop) variant of enumerate_connected_subsets: the same
/// sets in the same order, but the visitor additionally observes the DFS as
/// single-node deltas, so per-B state (joint structures, boundary unions)
/// can be maintained instead of rebuilt. Visitor requirements:
///
///   void push(NodeId v);          // v entered B; called before visit(B)
///   bool visit(const NodeSet& b); // return false to stop the enumeration
///   void pop(NodeId v);           // v is leaving B (reverse push order)
///
/// push(seed) precedes the first visit; pop(seed) follows the enumeration
/// (also after an aborting visit), so pushes and pops always balance.
/// Returns false iff the enumeration was stopped by the visitor.
template <typename Visitor>
bool enumerate_connected_subsets_incremental(const Graph& g, NodeId seed,
                                             const NodeSet& forbidden, Visitor&& vis) {
  RMT_REQUIRE(g.has_node(seed), "enumerate_connected_subsets: absent seed");
  RMT_REQUIRE(!forbidden.contains(seed), "enumerate_connected_subsets: seed is forbidden");
  detail::ConnectedSubsetDfs<std::remove_reference_t<Visitor>> dfs{
      g, vis, NodeSet::single(seed), g.neighbors(seed), {}, {}, false};
  dfs.arena.reserve(g.capacity());
  dfs.nbrs_save.reserve(g.capacity() + 1);
  vis.push(seed);
  dfs.run(forbidden);
  vis.pop(seed);
  return !dfs.aborted;
}

/// The minimum number of nodes (excluding s, t) whose removal disconnects
/// s from t — Menger vertex connectivity via node-splitting max-flow.
/// Returns num_nodes() if s and t are adjacent (no separator exists).
std::size_t min_vertex_cut(const Graph& g, NodeId s, NodeId t);

/// True if every D–R separator has size >= k (i.e. there are k internally
/// node-disjoint s–t paths).
bool is_k_connected_between(const Graph& g, NodeId s, NodeId t, std::size_t k);

}  // namespace rmt

// graph/graph.hpp — undirected graphs over a global node-id space.
//
// One type serves for the communication network G, for topology views γ(v)
// (which are *subgraphs* of G), for joint views γ(S), and for the graphs G_M
// reconstructed from message sets: a Graph holds an arbitrary (possibly
// non-contiguous) set of node ids plus undirected edges among them. This
// unification matters because the paper constantly unions, restricts, and
// compares such objects, and they must all live in the same id space.
//
// Edges are authenticated channels in the model of the paper (§1.3); the
// Graph itself carries no protocol state.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/node_set.hpp"

namespace rmt {

/// Undirected edge; canonical form has a <= b.
struct Edge {
  NodeId a = 0;
  NodeId b = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  Graph() = default;

  /// Graph with nodes {0, ..., n-1} and no edges.
  explicit Graph(std::size_t n) : nodes_(NodeSet::full(n)), adj_(n) {}

  void add_node(NodeId v);
  /// Adds the edge {u, v} (and both endpoints). Self-loops are rejected:
  /// a channel from a player to itself is meaningless in the model.
  void add_edge(NodeId u, NodeId v);
  void remove_edge(NodeId u, NodeId v);
  /// Removes v and all incident edges.
  void remove_node(NodeId v);

  bool has_node(NodeId v) const { return nodes_.contains(v); }
  bool has_edge(NodeId u, NodeId v) const {
    return u < adj_.size() && adj_[u].contains(v);
  }

  const NodeSet& nodes() const { return nodes_; }
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_edges() const;

  /// Open neighborhood N(v) within this graph. Requires has_node(v).
  const NodeSet& neighbors(NodeId v) const;
  /// Closed neighborhood N[v] = N(v) ∪ {v}.
  NodeSet closed_neighborhood(NodeId v) const;
  /// Boundary N(S) \ S: nodes outside S adjacent to S. Ignores ids in S
  /// that are not graph nodes.
  NodeSet boundary(const NodeSet& s) const;
  std::size_t degree(NodeId v) const { return neighbors(v).size(); }

  /// Edges in canonical (a<b), ascending order.
  std::vector<Edge> edges() const;

  /// Node-induced subgraph on `s` (ids in `s` absent from the graph are
  /// dropped — this matches the paper's usage where G_M is "the node-induced
  /// subgraph of γ(V_M) on node set V_M").
  Graph induced(const NodeSet& s) const;

  /// Graph union: nodes and edges of both. This is exactly the joint view
  /// γ(S) = (∪ V_v, ∪ E_v) of §1.3.
  Graph united(const Graph& o) const;

  /// True if `o` has a subset of our nodes and a subset of our edges —
  /// i.e. `o` is a subgraph of *this (the partial-ordering of views, §3.1).
  bool contains_subgraph(const Graph& o) const;

  /// Equality is exact: same node set and same edge set.
  friend bool operator==(const Graph& a, const Graph& b);

  /// One past the largest node id ever added (bound for dense scratch arrays).
  std::size_t capacity() const { return adj_.size(); }

  std::string to_string() const;

  /// Deep invariant check (rmt::audit): adjacency symmetry, no self-loops,
  /// neighbors ⊆ nodes, no adjacency rows for absent nodes, canonical
  /// NodeSets throughout. Throws audit::AuditError.
  void debug_validate() const;

 private:
  friend struct AuditTestAccess;  // tests corrupt internals to prove detection

  NodeSet nodes_;
  std::vector<NodeSet> adj_;  // indexed by node id; empty for absent nodes
};

}  // namespace rmt

#include "graph/graphviz.hpp"

namespace rmt {

std::string to_dot(const Graph& g, const DotOptions& opts) {
  std::string out = "graph " + opts.graph_name + " {\n";
  out += "  node [shape=circle];\n";
  g.nodes().for_each([&](NodeId v) {
    out += "  n" + std::to_string(v) + " [label=\"" + std::to_string(v);
    if (auto it = opts.labels.find(v); it != opts.labels.end()) out += "\\n" + it->second;
    out += "\"";
    if (opts.highlight.contains(v))
      out += ", style=filled, fillcolor=" + opts.highlight_color;
    out += "];\n";
  });
  for (const Edge& e : g.edges())
    out += "  n" + std::to_string(e.a) + " -- n" + std::to_string(e.b) + ";\n";
  out += "}\n";
  return out;
}

}  // namespace rmt

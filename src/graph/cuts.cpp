#include "graph/cuts.hpp"

#include <algorithm>
#include <deque>
#include <vector>

#include "util/check.hpp"

namespace rmt {

namespace {

// The std::function API is a thin adapter over the incremental template —
// one enumerator, two surfaces, identical order by construction.
struct FnVisitor {
  const std::function<bool(const NodeSet&)>& visit_fn;
  bool visit(const NodeSet& b) const { return visit_fn(b); }
  void push(NodeId) const {}
  void pop(NodeId) const {}
};

}  // namespace

bool enumerate_connected_subsets(const Graph& g, NodeId seed, const NodeSet& forbidden,
                                 const std::function<bool(const NodeSet&)>& visit) {
  FnVisitor vis{visit};
  return enumerate_connected_subsets_incremental(g, seed, forbidden, vis);
}

namespace {

// Node-split max-flow (unit capacities) for vertex connectivity. Each node v
// becomes v_in -> v_out with capacity 1 (infinite for s, t); each edge {u,v}
// becomes u_out -> v_in and v_out -> u_in. Max flow = min vertex cut
// (Menger). Sizes here are tiny, so BFS augmentation is plenty.
struct FlowNet {
  // arc: to, capacity, index of reverse arc
  struct Arc {
    int to;
    int cap;
    std::size_t rev;
  };
  std::vector<std::vector<Arc>> adj;

  explicit FlowNet(std::size_t n) : adj(n) {}

  void add(int from, int to, int cap) {
    adj[from].push_back({to, cap, adj[to].size()});
    adj[to].push_back({from, 0, adj[from].size() - 1});
  }

  int max_flow(int s, int t) {
    int total = 0;
    for (;;) {
      // BFS for an augmenting path.
      std::vector<std::pair<int, std::size_t>> parent(adj.size(), {-1, 0});
      std::deque<int> q{s};
      parent[s] = {s, 0};
      while (!q.empty() && parent[t].first < 0) {
        const int u = q.front();
        q.pop_front();
        for (std::size_t i = 0; i < adj[u].size(); ++i) {
          const Arc& a = adj[u][i];
          if (a.cap > 0 && parent[a.to].first < 0) {
            parent[a.to] = {u, i};
            q.push_back(a.to);
          }
        }
      }
      if (parent[t].first < 0) return total;
      for (int v = t; v != s;) {
        auto [u, i] = parent[v];
        adj[u][i].cap -= 1;
        adj[adj[u][i].to][adj[u][i].rev].cap += 1;
        v = u;
      }
      ++total;
    }
  }
};

}  // namespace

std::size_t min_vertex_cut(const Graph& g, NodeId s, NodeId t) {
  RMT_REQUIRE(g.has_node(s) && g.has_node(t) && s != t, "min_vertex_cut: bad endpoints");
  if (g.has_edge(s, t)) return g.num_nodes();  // no separator exists
  const std::size_t cap = g.capacity();
  const int big = static_cast<int>(g.num_nodes()) + 1;
  FlowNet net(2 * cap);
  auto in = [](NodeId v) { return static_cast<int>(2 * v); };
  auto out = [](NodeId v) { return static_cast<int>(2 * v + 1); };
  g.nodes().for_each([&](NodeId v) {
    net.add(in(v), out(v), (v == s || v == t) ? big : 1);
  });
  for (const Edge& e : g.edges()) {
    net.add(out(e.a), in(e.b), big);
    net.add(out(e.b), in(e.a), big);
  }
  const int f = net.max_flow(in(s), out(t));
  return static_cast<std::size_t>(f);
}

bool is_k_connected_between(const Graph& g, NodeId s, NodeId t, std::size_t k) {
  return min_vertex_cut(g, s, t) >= k;
}

}  // namespace rmt

// graph/paths.hpp — simple paths and their enumeration.
//
// RMT-PKA (Protocol 1) floods messages tagged with their propagation trail
// `p`, and its decision rule quantifies over "all the D–R paths which appear
// in G_M" (Def. 5, full message set). Path enumeration is therefore a core
// primitive. The number of simple paths is exponential in general — exactly
// the communication behaviour the paper attributes to path-propagation
// protocols — so every enumerator takes an explicit budget and reports
// whether it was exhausted.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace rmt {

/// A simple path as the ordered list of its nodes.
using Path = std::vector<NodeId>;

/// True if p is non-empty, node-distinct, and each hop is an edge of g.
bool is_simple_path(const Graph& g, const Path& p);

std::string path_to_string(const Path& p);

/// Result flag for budgeted enumerations.
enum class EnumStatus : std::uint8_t {
  kComplete,   ///< every object was produced
  kTruncated,  ///< the budget ran out; output is a strict subset
};

/// Enumerate all simple s–t paths of g in DFS order, invoking `visit` for
/// each. Stops early (returning kTruncated) after `max_paths` paths or if
/// `visit` returns false. s == t yields the single-node path {s}.
EnumStatus enumerate_simple_paths(const Graph& g, NodeId s, NodeId t,
                                  const std::function<bool(const Path&)>& visit,
                                  std::size_t max_paths = SIZE_MAX);

/// Convenience: collect all simple s–t paths (throws std::length_error if
/// more than max_paths exist — callers that can tolerate truncation should
/// use the callback form).
std::vector<Path> all_simple_paths(const Graph& g, NodeId s, NodeId t,
                                   std::size_t max_paths = 1u << 20);

/// Number of simple s–t paths, counted up to `cap` (returns cap if >= cap).
std::size_t count_simple_paths(const Graph& g, NodeId s, NodeId t, std::size_t cap);

}  // namespace rmt

#include "graph/generators.hpp"

#include <cmath>
#include <vector>

#include "graph/connectivity.hpp"
#include "util/check.hpp"

namespace rmt::generators {

Graph path_graph(std::size_t n) {
  RMT_REQUIRE(n >= 1, "path_graph: need n >= 1");
  Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) g.add_edge(NodeId(i), NodeId(i + 1));
  return g;
}

Graph cycle_graph(std::size_t n) {
  RMT_REQUIRE(n >= 3, "cycle_graph: need n >= 3");
  Graph g = path_graph(n);
  g.add_edge(NodeId(n - 1), 0);
  return g;
}

Graph complete_graph(std::size_t n) {
  RMT_REQUIRE(n >= 1, "complete_graph: need n >= 1");
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) g.add_edge(NodeId(i), NodeId(j));
  return g;
}

Graph grid_graph(std::size_t w, std::size_t h) {
  RMT_REQUIRE(w >= 1 && h >= 1, "grid_graph: need positive dimensions");
  Graph g(w * h);
  auto id = [w](std::size_t x, std::size_t y) { return NodeId(y * w + x); };
  for (std::size_t y = 0; y < h; ++y)
    for (std::size_t x = 0; x < w; ++x) {
      if (x + 1 < w) g.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < h) g.add_edge(id(x, y), id(x, y + 1));
    }
  return g;
}

Graph basic_instance_graph(std::size_t m) {
  RMT_REQUIRE(m >= 1, "basic_instance_graph: need m >= 1");
  Graph g(m + 2);
  const NodeId d = 0, r = NodeId(m + 1);
  for (std::size_t a = 1; a <= m; ++a) {
    g.add_edge(d, NodeId(a));
    g.add_edge(NodeId(a), r);
  }
  return g;
}

Graph layered_graph(std::size_t layers, std::size_t width) {
  RMT_REQUIRE(layers >= 1 && width >= 1, "layered_graph: need positive dimensions");
  const std::size_t n = layers * width + 2;
  Graph g(n);
  const NodeId d = 0, r = NodeId(n - 1);
  auto id = [width](std::size_t layer, std::size_t i) { return NodeId(1 + layer * width + i); };
  for (std::size_t i = 0; i < width; ++i) {
    g.add_edge(d, id(0, i));
    g.add_edge(id(layers - 1, i), r);
  }
  for (std::size_t l = 0; l + 1 < layers; ++l)
    for (std::size_t i = 0; i < width; ++i)
      for (std::size_t j = 0; j < width; ++j) g.add_edge(id(l, i), id(l + 1, j));
  return g;
}

Graph random_tree(std::size_t n, Rng& rng) {
  RMT_REQUIRE(n >= 1, "random_tree: need n >= 1");
  Graph g(n);
  for (std::size_t v = 1; v < n; ++v) g.add_edge(NodeId(v), NodeId(rng.index(v)));
  return g;
}

Graph random_connected_gnp(std::size_t n, double p, Rng& rng) {
  RMT_REQUIRE(n >= 1, "random_connected_gnp: need n >= 1");
  RMT_REQUIRE(p >= 0.0 && p <= 1.0, "random_connected_gnp: p out of range");
  Graph g = random_tree(n, rng);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (!g.has_edge(NodeId(i), NodeId(j)) && rng.chance(p)) g.add_edge(NodeId(i), NodeId(j));
  return g;
}

Graph random_geometric(std::size_t n, double radius, Rng& rng) {
  RMT_REQUIRE(n >= 1, "random_geometric: need n >= 1");
  RMT_REQUIRE(radius >= 0.0, "random_geometric: negative radius");
  std::vector<std::pair<double, double>> pos(n);
  for (auto& p : pos) p = {rng.real(), rng.real()};
  Graph g(n);
  const double r2 = radius * radius;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = pos[i].first - pos[j].first;
      const double dy = pos[i].second - pos[j].second;
      if (dx * dx + dy * dy <= r2) g.add_edge(NodeId(i), NodeId(j));
    }
  // Patch connectivity with tree edges between nearest cross-component
  // pairs replaced by a simple random-attachment tree; geometric flavour is
  // preserved for the bulk of the edges.
  if (!is_connected(g)) {
    Graph tree = random_tree(n, rng);
    for (const Edge& e : tree.edges())
      if (!g.has_edge(e.a, e.b)) g.add_edge(e.a, e.b);
  }
  return g;
}

Graph hypercube(std::size_t d) {
  RMT_REQUIRE(d >= 1 && d <= 16, "hypercube: dimension out of range");
  const std::size_t n = std::size_t{1} << d;
  Graph g(n);
  for (std::size_t v = 0; v < n; ++v)
    for (std::size_t bit = 0; bit < d; ++bit) {
      const std::size_t u = v ^ (std::size_t{1} << bit);
      if (v < u) g.add_edge(NodeId(v), NodeId(u));
    }
  return g;
}

Graph complete_bipartite(std::size_t a, std::size_t b) {
  RMT_REQUIRE(a >= 1 && b >= 1, "complete_bipartite: need non-empty sides");
  Graph g(a + b);
  for (std::size_t i = 0; i < a; ++i)
    for (std::size_t j = 0; j < b; ++j) g.add_edge(NodeId(i), NodeId(a + j));
  return g;
}

Graph barbell(std::size_t m) {
  RMT_REQUIRE(m >= 2, "barbell: need cliques of size >= 2");
  Graph g(2 * m);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = i + 1; j < m; ++j) {
      g.add_edge(NodeId(i), NodeId(j));
      g.add_edge(NodeId(m + i), NodeId(m + j));
    }
  g.add_edge(NodeId(m - 1), NodeId(m));
  return g;
}

Graph parallel_paths(std::size_t count, std::size_t hops) {
  RMT_REQUIRE(count >= 1 && hops >= 1, "parallel_paths: need positive dimensions");
  const std::size_t n = count * hops + 2;
  Graph g(n);
  const NodeId d = 0, r = NodeId(n - 1);
  for (std::size_t i = 0; i < count; ++i) {
    NodeId prev = d;
    for (std::size_t j = 0; j < hops; ++j) {
      const NodeId v = NodeId(1 + i * hops + j);
      g.add_edge(prev, v);
      prev = v;
    }
    g.add_edge(prev, r);
  }
  return g;
}

Graph generalized_wheel(std::size_t n, std::size_t spoke_stride) {
  RMT_REQUIRE(n >= 4, "generalized_wheel: need n >= 4");
  RMT_REQUIRE(spoke_stride >= 1, "generalized_wheel: need stride >= 1");
  Graph g(n);
  const std::size_t ring = n - 1;
  for (std::size_t i = 0; i < ring; ++i)
    g.add_edge(NodeId(1 + i), NodeId(1 + (i + 1) % ring));
  for (std::size_t i = 0; i < ring; i += spoke_stride) g.add_edge(0, NodeId(1 + i));
  return g;
}

}  // namespace rmt::generators

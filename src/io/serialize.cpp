#include "io/serialize.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace rmt::io {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
  throw std::invalid_argument("instance parse error at line " + std::to_string(line) + ": " +
                              msg);
}

/// A node-id mention whose range check must wait until `nodes` is known
/// (directives may come in any order); `line` keeps the diagnostic exact.
struct IdRef {
  NodeId id = 0;
  std::size_t line = 0;
  const char* context = "";  ///< "dealer", "corruptible set", ...
};

struct Builder {
  std::size_t n = 0;
  std::size_t nodes_line = 0;  ///< 0 = not seen yet (also duplicate guard)
  std::vector<Edge> edges;
  std::vector<std::size_t> edge_lines;  ///< source line of each edge, for diagnostics
  std::optional<NodeId> dealer, receiver;
  std::size_t dealer_line = 0, receiver_line = 0, knowledge_line = 0;
  std::vector<NodeSet> sets;
  enum class Knowledge { kUnset, kAdHoc, kFull, kKHop, kCustom } knowledge = Knowledge::kUnset;
  std::size_t k = 0;
  std::size_t khop_line = 0;
  // custom-view extras: per node, extra known nodes / edges above the star
  std::map<NodeId, NodeSet> extra_nodes;
  std::map<NodeId, std::vector<Edge>> extra_edges;
  std::vector<IdRef> id_refs;  ///< deferred range checks (see IdRef)
};

/// Read one node id with the absolute cap applied immediately — ids are
/// inserted into NodeSets during parsing, so an uncapped id would allocate
/// before any end-of-parse validation runs.
NodeId parse_node(std::istringstream& ss, std::size_t line) {
  long long v = -1;
  if (!(ss >> v) || v < 0) fail(line, "expected a node id");
  if (std::size_t(v) >= kMaxParseNodes)
    fail(line, "node id " + std::to_string(v) + " out of range (ids must be < " +
                   std::to_string(kMaxParseNodes) + ")");
  return NodeId(v);
}

}  // namespace

Instance parse_instance(std::istream& in) {
  Builder b;
  std::string line;
  std::size_t lineno = 0;
  bool header = false;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::string word;
    if (!(ss >> word)) continue;  // blank / comment-only
    if (!header) {
      if (word != "rmt-instance") fail(lineno, "missing 'rmt-instance v1' header");
      std::string version;
      ss >> version;
      if (version != "v1") fail(lineno, "unsupported version '" + version + "'");
      header = true;
      continue;
    }
    if (word == "nodes") {
      if (b.nodes_line != 0)
        fail(lineno, "duplicate 'nodes' directive (first at line " +
                         std::to_string(b.nodes_line) + ")");
      long long n = -1;
      if (!(ss >> n) || n <= 0) fail(lineno, "expected a positive node count");
      if (std::size_t(n) > kMaxParseNodes)
        fail(lineno, "node count " + std::to_string(n) + " out of range (max " +
                         std::to_string(kMaxParseNodes) + ")");
      b.n = std::size_t(n);
      b.nodes_line = lineno;
    } else if (word == "edge") {
      const NodeId u = parse_node(ss, lineno), v = parse_node(ss, lineno);
      b.edges.push_back({u, v});
      b.edge_lines.push_back(lineno);
    } else if (word == "dealer") {
      if (b.dealer_line != 0)
        fail(lineno, "duplicate 'dealer' directive (first at line " +
                         std::to_string(b.dealer_line) + ")");
      b.dealer = parse_node(ss, lineno);
      b.dealer_line = lineno;
      b.id_refs.push_back({*b.dealer, lineno, "dealer"});
    } else if (word == "receiver") {
      if (b.receiver_line != 0)
        fail(lineno, "duplicate 'receiver' directive (first at line " +
                         std::to_string(b.receiver_line) + ")");
      b.receiver = parse_node(ss, lineno);
      b.receiver_line = lineno;
      b.id_refs.push_back({*b.receiver, lineno, "receiver"});
    } else if (word == "corruptible") {
      NodeSet s;
      long long v;
      while (ss >> v) {
        if (v < 0) fail(lineno, "negative node id");
        if (std::size_t(v) >= kMaxParseNodes)
          fail(lineno, "node id " + std::to_string(v) + " out of range (ids must be < " +
                           std::to_string(kMaxParseNodes) + ")");
        if (s.contains(NodeId(v)))
          fail(lineno, "duplicate node id " + std::to_string(v) + " in corruptible set");
        s.insert(NodeId(v));
        b.id_refs.push_back({NodeId(v), lineno, "corruptible set"});
      }
      b.sets.push_back(std::move(s));
    } else if (word == "knowledge") {
      if (b.knowledge_line != 0)
        fail(lineno, "duplicate 'knowledge' directive (first at line " +
                         std::to_string(b.knowledge_line) + ")");
      b.knowledge_line = lineno;
      std::string kind;
      if (!(ss >> kind)) fail(lineno, "expected a knowledge kind");
      if (kind == "adhoc") b.knowledge = Builder::Knowledge::kAdHoc;
      else if (kind == "full") b.knowledge = Builder::Knowledge::kFull;
      else if (kind == "custom") b.knowledge = Builder::Knowledge::kCustom;
      else if (kind == "k-hop") {
        b.knowledge = Builder::Knowledge::kKHop;
        long long k = -1;
        if (!(ss >> k) || k < 0) fail(lineno, "k-hop needs a radius");
        b.k = std::size_t(k);
        b.khop_line = lineno;
      } else
        fail(lineno, "unknown knowledge kind '" + kind + "'");
    } else if (word == "view" || word == "view-edge") {
      const NodeId owner = parse_node(ss, lineno);
      b.id_refs.push_back({owner, lineno, "view owner"});
      std::string colon;
      if (!(ss >> colon) || colon != ":") fail(lineno, "expected ':' after view owner");
      if (word == "view") {
        long long v;
        while (ss >> v) {
          if (v < 0) fail(lineno, "negative node id");
          if (std::size_t(v) >= kMaxParseNodes)
            fail(lineno, "node id " + std::to_string(v) + " out of range (ids must be < " +
                             std::to_string(kMaxParseNodes) + ")");
          NodeSet& extras = b.extra_nodes[owner];
          if (extras.contains(NodeId(v)))
            fail(lineno, "duplicate node id " + std::to_string(v) + " in view of node " +
                             std::to_string(owner));
          extras.insert(NodeId(v));
          b.id_refs.push_back({NodeId(v), lineno, "view"});
        }
      } else {
        const NodeId u = parse_node(ss, lineno), v = parse_node(ss, lineno);
        b.extra_edges[owner].push_back({u, v});
        b.id_refs.push_back({u, lineno, "view-edge"});
        b.id_refs.push_back({v, lineno, "view-edge"});
      }
    } else {
      fail(lineno, "unknown directive '" + word + "'");
    }
  }
  if (!header) fail(lineno, "empty input");
  if (b.n == 0) fail(lineno, "missing 'nodes'");
  if (!b.dealer || !b.receiver) fail(lineno, "missing dealer/receiver");
  // Deferred range checks: directives may precede `nodes`, so node-id and
  // radius bounds are validated here, each against its recorded line.
  for (const IdRef& ref : b.id_refs)
    if (ref.id >= b.n)
      fail(ref.line, std::string(ref.context) + " node id " + std::to_string(ref.id) +
                         " out of range (nodes " + std::to_string(b.n) + ")");
  if (b.knowledge == Builder::Knowledge::kKHop && b.k > b.n)
    fail(b.khop_line, "k-hop radius " + std::to_string(b.k) +
                          " out of range for " + std::to_string(b.n) +
                          " nodes (a radius above n adds nothing)");

  Graph g(b.n);
  std::set<std::pair<NodeId, NodeId>> seen_edges;
  for (std::size_t i = 0; i < b.edges.size(); ++i) {
    const Edge& e = b.edges[i];
    const std::size_t at = b.edge_lines[i];
    if (e.a >= b.n || e.b >= b.n) fail(at, "edge endpoint out of range");
    const auto normalized = std::minmax(e.a, e.b);
    if (!seen_edges.insert({normalized.first, normalized.second}).second)
      fail(at, "duplicate edge " + std::to_string(e.a) + " " + std::to_string(e.b));
    g.add_edge(e.a, e.b);
  }
  std::vector<NodeSet> sets = b.sets;
  sets.push_back(NodeSet{});
  AdversaryStructure z = AdversaryStructure::from_sets(sets);

  ViewFunction gamma = [&] {
    switch (b.knowledge) {
      case Builder::Knowledge::kFull:
        return ViewFunction::full(g);
      case Builder::Knowledge::kKHop:
        return ViewFunction::k_hop(g, b.k);
      case Builder::Knowledge::kUnset:
      case Builder::Knowledge::kAdHoc:
      case Builder::Knowledge::kCustom:
        return ViewFunction::ad_hoc(g);
    }
    return ViewFunction::ad_hoc(g);
  }();
  if (b.knowledge == Builder::Knowledge::kCustom) {
    // Extend the ad hoc floor with the declared extras.
    NodeSet owners;
    for (const auto& [owner, _] : b.extra_nodes) owners.insert(owner);
    for (const auto& [owner, _] : b.extra_edges) owners.insert(owner);
    owners.for_each([&](NodeId owner) {
      Graph view = gamma.view(owner);
      if (auto it = b.extra_nodes.find(owner); it != b.extra_nodes.end())
        it->second.for_each([&](NodeId v) { view.add_node(v); });
      if (auto it = b.extra_edges.find(owner); it != b.extra_edges.end())
        for (const Edge& e : it->second) view.add_edge(e.a, e.b);
      gamma.set_view(owner, std::move(view));  // validates against G
    });
  }
  return Instance(std::move(g), std::move(z), std::move(gamma), *b.dealer, *b.receiver);
}

Instance parse_instance_string(const std::string& text) {
  std::istringstream ss(text);
  return parse_instance(ss);
}

Instance load_instance(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open " + path);
  return parse_instance(in);
}

std::string serialize_instance(const Instance& inst) {
  // Built by plain string appends, not an ostringstream: this text is the
  // content-address preimage (svc::instance_key hashes it on the serving
  // hot path), and append + std::to_string produces byte-identical output
  // at a fraction of the stream machinery's cost.
  std::string out;
  out.reserve(64 + 16 * inst.graph().num_edges());
  const auto append_num = [&out](std::uint64_t v) { out += std::to_string(v); };
  out += "rmt-instance v1\n";
  out += "nodes ";
  append_num(inst.graph().capacity());
  out += "\n";
  for (const Edge& e : inst.graph().edges()) {
    out += "edge ";
    append_num(e.a);
    out += ' ';
    append_num(e.b);
    out += '\n';
  }
  out += "dealer ";
  append_num(inst.dealer());
  out += "\nreceiver ";
  append_num(inst.receiver());
  out += "\n";
  for (const NodeSet& m : inst.adversary().maximal_sets()) {
    if (m.empty()) continue;
    out += "corruptible";
    m.for_each([&](NodeId v) {
      out += ' ';
      append_num(v);
    });
    out += '\n';
  }
  // Emit custom views as extras over the ad hoc floor.
  const ViewFunction floor = ViewFunction::ad_hoc(inst.graph());
  bool is_adhoc = true;
  inst.graph().nodes().for_each([&](NodeId v) {
    if (!(inst.gamma().view(v) == floor.view(v))) is_adhoc = false;
  });
  if (is_adhoc) {
    out += "knowledge adhoc\n";
  } else {
    out += "knowledge custom\n";
    inst.graph().nodes().for_each([&](NodeId v) {
      const Graph& view = inst.gamma().view(v);
      const Graph& base = floor.view(v);
      NodeSet extra_nodes = view.nodes() - base.nodes();
      if (!extra_nodes.empty()) {
        out += "view ";
        append_num(v);
        out += " :";
        extra_nodes.for_each([&](NodeId u) {
          out += ' ';
          append_num(u);
        });
        out += '\n';
      }
      for (const Edge& e : view.edges())
        if (!base.has_edge(e.a, e.b)) {
          out += "view-edge ";
          append_num(v);
          out += " : ";
          append_num(e.a);
          out += ' ';
          append_num(e.b);
          out += '\n';
        }
    });
  }
  return out;
}

}  // namespace rmt::io

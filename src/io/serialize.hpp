// io/serialize.hpp — a human-editable text format for RMT instances.
//
// Lets users describe deployments in files and drive the analysis /
// simulation tooling (tools/rmt_cli) without writing C++. Format, line
// oriented, '#' comments:
//
//   rmt-instance v1
//   nodes 8
//   edge 0 1            # one per channel
//   dealer 0
//   receiver 7
//   corruptible 1 3     # one admissible set per line (∅ always included)
//   knowledge adhoc     # or: full | k-hop K
//   view 2 : 0 1 4      # optional, after "knowledge custom": extra known
//                       #   nodes of node 2 (beyond its star)
//   view-edge 2 : 0 1   # optional extra known edge of node 2's view
//
// parse_instance throws std::invalid_argument with a line-number message
// on malformed input; serialize_instance(parse_instance(s)) round-trips.
// The format assumes contiguous node ids 0..n-1 (what every generator in
// this library produces).
//
// Hostile-input hardening (the parser is a fuzz target — see
// check/fuzz.hpp): every node id, the node count, and the k-hop radius are
// range-checked with line-numbered errors; duplicate node ids inside a
// corruptible set or a view extra list, and duplicate nodes / dealer /
// receiver / knowledge directives, are rejected instead of silently
// folded. The absolute node-count cap below bounds every allocation the
// parser can be talked into before validation completes.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "instance/instance.hpp"

namespace rmt::io {

/// Hard cap on `nodes` accepted by the parser. Far above anything the
/// exact deciders handle (analysis::kMaxExactNodes = 26) but small enough
/// that no accepted input can allocate unbounded adjacency/view storage.
inline constexpr std::size_t kMaxParseNodes = 512;

/// Parse the text format above.
Instance parse_instance(std::istream& in);
Instance parse_instance_string(const std::string& text);

/// Open `path` and parse it ("cannot open <path>" when unreadable). The
/// one loader every consumer shares — rmt_cli, rmt_serve clients, the
/// examples — so diagnostics stay uniform.
Instance load_instance(const std::string& path);

/// Write an instance in the same format (custom views are emitted as
/// view / view-edge lines relative to the ad hoc floor).
std::string serialize_instance(const Instance& inst);

}  // namespace rmt::io

// reduction/basic_instance.hpp — the family G' of basic instances (§5.1,
// Figure 1).
//
// A basic instance has dealer D', receiver R', a "middle set" A(G'), and
// only the edges D'–a and a–R' for a ∈ A(G'). These are the instances the
// RMT self-reduction decomposes every graph into: the middle sets appear
// as (partial) neighborhoods of nodes of the original instance, and the
// structure is the node's local Z_v.
//
// On a star, feasibility collapses to a crisp combinatorial fact, proved
// here and exploited everywhere in §5: the only D'–R' cut is the whole
// middle set, so an RMT Z-pp cut exists iff A(G') = Z₁ ∪ Z₂ for
// admissible Z₁, Z₂ — i.e. the instance is solvable iff *no two
// admissible sets cover the middle* (the classic Q² condition localized).
#pragma once

#include <map>
#include <optional>

#include "instance/instance.hpp"
#include "sim/message.hpp"

namespace rmt::reduction {

using sim::Value;

/// Solvability of the basic instance with middle `middle` and structure
/// `z` (restricted to the middle): no two admissible sets cover the middle.
bool basic_instance_solvable(const AdversaryStructure& z, const NodeSet& middle);

/// Materialize the G' member as a full Instance (D' = 0, middle = 1..m,
/// R' = m+1; `z_on_middle`'s sets are re-labelled onto 1..m in ascending
/// order of the original ids). Useful for running real protocol
/// executions on the family (experiment F1).
struct BasicInstance {
  Instance instance;
  NodeSet middle;
  /// original middle id → star node id
  std::map<NodeId, NodeId> relabel;
};
BasicInstance make_basic_instance(const AdversaryStructure& z_on_middle, const NodeSet& middle);

/// Π — an RMT protocol for the family G', abstracted to the receiver's
/// decision function. On a star the receiver's entire view of a run is
/// "which middle node delivered which value" (middle nodes have no other
/// honest paths), so this interface captures any deterministic Π.
class BasicInstanceProtocol {
 public:
  virtual ~BasicInstanceProtocol() = default;

  /// `reported`: middle node → the (single) value it delivered to the
  /// receiver; absent = silent. Returns the receiver's decision.
  virtual std::optional<Value> decide(const NodeSet& middle,
                                      const std::map<NodeId, Value>& reported) = 0;
};

/// The reference Π: Z-CPA's certification on the star — decide x iff the
/// set of x-backers is not admissible. Safe always; resilient exactly on
/// solvable basic instances.
class ZcpaBasicProtocol final : public BasicInstanceProtocol {
 public:
  explicit ZcpaBasicProtocol(AdversaryStructure z) : z_(std::move(z)) {}
  std::optional<Value> decide(const NodeSet& middle,
                              const std::map<NodeId, Value>& reported) override;

 private:
  AdversaryStructure z_;
};

}  // namespace rmt::reduction

#include "reduction/self_reduction.hpp"

#include "util/check.hpp"

namespace rmt::reduction {

SimulationOracle::SimulationOracle(NodeSet neighborhood,
                                   std::unique_ptr<BasicInstanceProtocol> pi)
    : neighborhood_(std::move(neighborhood)), pi_(std::move(pi)) {
  RMT_REQUIRE(pi_ != nullptr, "SimulationOracle: null protocol");
}

bool SimulationOracle::member(const NodeSet& n) {
  ++queries_;
  RMT_REQUIRE(n.is_subset_of(neighborhood_), "SimulationOracle: query outside the neighborhood");
  // Simulate run e₀ᴺ: the receiver's view has N backing the dealer value 0
  // and A∖N backing 1 (the corrupted players mirroring run e₁ᴺ).
  ++simulations_;
  std::map<NodeId, Value> reported;
  neighborhood_.for_each([&](NodeId u) { reported[u] = n.contains(u) ? 0u : 1u; });
  const std::optional<Value> d0 = pi_->decide(neighborhood_, reported);
  // N ∉ Z_v ⇔ decision_{e₀}(v) = 0.
  return !(d0.has_value() && *d0 == 0);
}

OracleFactory simulation_oracle_factory() {
  return [](const LocalKnowledge& lk) -> std::unique_ptr<MembershipOracle> {
    const NodeSet neighborhood = lk.view.neighbors(lk.self);
    auto pi = std::make_unique<ZcpaBasicProtocol>(lk.local_z.restricted_to(neighborhood));
    return std::make_unique<SimulationOracle>(neighborhood, std::move(pi));
  };
}

}  // namespace rmt::reduction

// reduction/self_reduction.hpp — Theorem 9's Decision Protocol: the RMT
// self-reduction that makes Z-CPA poly-time unique (Cor. 10).
//
// Theorem 9: if some protocol Π solves RMT on the basic-instance family
// I(G₁) in fully polynomial time, then Z-CPA, using Π as its membership
// subroutine, solves RMT on G₁ in fully polynomial time. The crux is the
// Decision Protocol: to answer "is the backer set N admissible (N ∈ Z_v)?"
// player v *simulates* two coupled runs of Π on the star over its
// neighborhood A:
//
//   e₀ᴺ: dealer value 0, corrupted set A∖N — the corrupted players replay
//        what they send in e₁ᴺ (where they are honest relays of value 1);
//   e₁ᴺ: dealer value 1, corrupted set N — symmetric.
//
// From the receiver's seat both runs produce the same view: the nodes of N
// report 0, the nodes of A∖N report 1. The appendix-G equivalence
//
//   N ∉ Z_v  ⇔  decision_{e₀ᴺ}(v) = 0
//
// turns Π's output into the membership answer: if N ∉ Z_v then A∖N ∈ Z_v
// is a legal corruption in e₀ᴺ and resilient Π must output the true dealer
// value 0; conversely if N ∈ Z_v then e₁ᴺ is the legal run, Π must output
// 1 there, and determinism forces the same (non-0) output on the identical
// view.
//
// SimulationOracle packages this as a MembershipOracle, so the self-
// reduction is literally "Z-CPA with a different oracle plugged in" — the
// protocol-scheme composition of §5. One Π-simulation per query; Π runs on
// a star of |N(v)| nodes, so a fully polynomial Π keeps Z-CPA fully
// polynomial (the theorem's conclusion, measured by experiment T3).
#pragma once

#include <memory>

#include "reduction/basic_instance.hpp"
#include "reduction/membership_oracle.hpp"

namespace rmt::reduction {

class SimulationOracle final : public MembershipOracle {
 public:
  /// `neighborhood`: the middle set A of the simulated stars (the paper's
  /// A; silent neighbors are modeled as adversarial dissenters, the worst
  /// case). `pi`: the protocol whose runs are simulated.
  SimulationOracle(NodeSet neighborhood, std::unique_ptr<BasicInstanceProtocol> pi);

  bool member(const NodeSet& n) override;

  std::string name() const override { return "simulation(Thm 9)"; }

  /// Number of Π-runs simulated so far (one per query).
  std::size_t simulations() const { return simulations_; }

 private:
  NodeSet neighborhood_;
  std::unique_ptr<BasicInstanceProtocol> pi_;
  std::size_t simulations_ = 0;
};

/// OracleFactory wiring the reference Π (Z-CPA on the star over the
/// node's own Z_v) into SimulationOracle — the concrete composition that
/// realizes Corollary 10 in code.
OracleFactory simulation_oracle_factory();

}  // namespace rmt::reduction

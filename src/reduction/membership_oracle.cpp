#include "reduction/membership_oracle.hpp"

namespace rmt::reduction {

OracleFactory explicit_oracle_factory() {
  return [](const LocalKnowledge& lk) -> std::unique_ptr<MembershipOracle> {
    return std::make_unique<ExplicitOracle>(lk.local_z);
  };
}

OracleFactory threshold_oracle_factory(std::size_t t) {
  return [t](const LocalKnowledge&) -> std::unique_ptr<MembershipOracle> {
    return std::make_unique<ThresholdOracle>(t);
  };
}

}  // namespace rmt::reduction

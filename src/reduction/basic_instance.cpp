#include "reduction/basic_instance.hpp"

#include <vector>

#include "graph/generators.hpp"
#include "util/check.hpp"

namespace rmt::reduction {

bool basic_instance_solvable(const AdversaryStructure& z, const NodeSet& middle) {
  RMT_REQUIRE(!middle.empty(), "basic_instance_solvable: empty middle set");
  const AdversaryStructure zr = z.restricted_to(middle);
  for (const NodeSet& m1 : zr.maximal_sets())
    for (const NodeSet& m2 : zr.maximal_sets())
      if (middle.is_subset_of(m1 | m2)) return false;
  // The empty family cannot cover anything; a non-empty middle is then
  // trivially uncoverable, matching "no cut can be charged to Z".
  return true;
}

BasicInstance make_basic_instance(const AdversaryStructure& z_on_middle, const NodeSet& middle) {
  RMT_REQUIRE(!middle.empty(), "make_basic_instance: empty middle set");
  const std::vector<NodeId> original = middle.to_vector();
  Graph g = generators::basic_instance_graph(original.size());

  std::map<NodeId, NodeId> relabel;
  for (std::size_t i = 0; i < original.size(); ++i) relabel[original[i]] = NodeId(i + 1);

  // Re-label the structure onto the star's middle ids.
  std::vector<NodeSet> sets;
  const AdversaryStructure z_restricted = z_on_middle.restricted_to(middle);
  for (const NodeSet& m : z_restricted.maximal_sets()) {
    NodeSet s;
    m.for_each([&](NodeId v) { s.insert(relabel.at(v)); });
    sets.push_back(std::move(s));
  }
  AdversaryStructure z = AdversaryStructure::from_sets(sets);
  if (!z.contains(NodeSet{})) z.add(NodeSet{});

  const NodeId receiver = NodeId(original.size() + 1);
  NodeSet star_middle;
  for (std::size_t i = 1; i <= original.size(); ++i) star_middle.insert(NodeId(i));
  return BasicInstance{Instance::ad_hoc(std::move(g), std::move(z), 0, receiver), star_middle,
                       std::move(relabel)};
}

std::optional<Value> ZcpaBasicProtocol::decide(const NodeSet& middle,
                                               const std::map<NodeId, Value>& reported) {
  std::map<Value, NodeSet> backers;
  for (const auto& [u, x] : reported)
    if (middle.contains(u)) backers[x].insert(u);
  for (const auto& [x, n] : backers)
    if (!z_.contains(n)) return x;
  return std::nullopt;
}

}  // namespace rmt::reduction

// reduction/membership_oracle.hpp — the membership-check subroutine of the
// Z-CPA protocol *scheme* (§5, Definition 8).
//
// Z-CPA's rule 2 asks "is N ∉ Z_v?" but deliberately leaves *how* that is
// computed unspecified — Z-CPA is a protocol scheme, parameterized by any
// algorithm B answering the check; each B induces the concrete protocol
// Z-CPA_B. This header is that parameterization point. Implementations:
//   * ExplicitOracle    — walks an explicit antichain (poly in |Z|, which
//                         may itself be exponential in |G|);
//   * ThresholdOracle   — |N| <= t (the global/local threshold models,
//                         poly in |G|: this is why CPA is fully polynomial);
//   * SimulationOracle  — (self_reduction.hpp) answers by simulating an
//                         RMT protocol Π on basic instances per Theorem 9,
//                         the self-reduction that makes Z-CPA poly-time
//                         unique.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "knowledge/local_knowledge.hpp"

namespace rmt::reduction {

class MembershipOracle {
 public:
  virtual ~MembershipOracle() = default;

  /// Is `n` an admissible corruption set of this node's local structure
  /// (n ∈ Z_v)? Z-CPA decides on x exactly when member(N_x) is false.
  virtual bool member(const NodeSet& n) = 0;

  /// Accounting: number of membership queries answered so far.
  std::size_t queries() const { return queries_; }

  virtual std::string name() const = 0;

 protected:
  std::size_t queries_ = 0;
};

/// Direct antichain lookup on the node's explicit Z_v.
class ExplicitOracle final : public MembershipOracle {
 public:
  explicit ExplicitOracle(AdversaryStructure local_z) : z_(std::move(local_z)) {}
  bool member(const NodeSet& n) override {
    ++queries_;
    return z_.contains(n);
  }
  std::string name() const override { return "explicit"; }

 private:
  AdversaryStructure z_;
};

/// Global/local threshold check: member iff |n| <= t. Never touches an
/// explicit structure — constant work per query.
class ThresholdOracle final : public MembershipOracle {
 public:
  explicit ThresholdOracle(std::size_t t) : t_(t) {}
  bool member(const NodeSet& n) override {
    ++queries_;
    return n.size() <= t_;
  }
  std::string name() const override { return "threshold(t=" + std::to_string(t_) + ")"; }

 private:
  std::size_t t_;
};

/// How a protocol node obtains its oracle from its initial knowledge.
using OracleFactory =
    std::function<std::unique_ptr<MembershipOracle>(const LocalKnowledge&)>;

/// The default: an ExplicitOracle over the node's Z_v.
OracleFactory explicit_oracle_factory();

/// Threshold oracles with a fixed t for every node.
OracleFactory threshold_oracle_factory(std::size_t t);

}  // namespace rmt::reduction

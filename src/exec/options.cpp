#include "exec/options.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace rmt::exec {

namespace {

[[noreturn]] void bad(const std::string& flag, const std::string& why) {
  throw std::invalid_argument(flag + ": " + why);
}

/// Strict non-negative integer: all digits, fits std::size_t. Rejects
/// "-3", "4x", "" — a sweep's shape must never be a silent surprise.
std::size_t parse_count(const std::string& flag, const std::string& text) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos)
    bad(flag, "expected a non-negative integer, got '" + text + "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size())
    bad(flag, "value out of range: '" + text + "'");
  return std::size_t(v);
}

}  // namespace

ExecOptions consume_exec_flags(int& argc, char** argv) {
  ExecOptions opts;
  std::vector<char*> keep;
  keep.reserve(std::size_t(argc));
  keep.push_back(argv[0]);

  int i = 1;
  // Pull "--flag value" / "--flag=value"; returns nullopt when argv[i] is
  // not `flag` (advancing i is the caller's loop's job).
  auto take_value = [&](const char* flag) -> std::optional<std::string> {
    const std::string arg = argv[i];
    const std::string prefix = std::string(flag) + "=";
    if (arg == flag) {
      if (i + 1 >= argc) bad(flag, "missing value");
      ++i;
      return std::string(argv[i]);
    }
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    return std::nullopt;
  };

  for (; i < argc; ++i) {
    if (std::optional<std::string> v = take_value("--jobs")) {
      opts.jobs = parse_count("--jobs", *v);
      if (opts.jobs == 0) bad("--jobs", "needs at least one worker (got 0)");
      continue;
    }
    if (std::optional<std::string> v = take_value("--shard")) {
      const std::size_t slash = v->find('/');
      if (slash == std::string::npos || v->find('/', slash + 1) != std::string::npos)
        bad("--shard", "expected i/k (e.g. 0/4), got '" + *v + "'");
      opts.shard_index = parse_count("--shard", v->substr(0, slash));
      opts.shard_count = parse_count("--shard", v->substr(slash + 1));
      if (opts.shard_count == 0) bad("--shard", "k must be >= 1 in i/k");
      if (opts.shard_index >= opts.shard_count)
        bad("--shard", "i must be < k in i/k (got " + *v + ")");
      continue;
    }
    if (std::optional<std::string> v = take_value("--resume")) {
      if (v->empty()) bad("--resume", "manifest path must be non-empty");
      opts.resume = std::move(*v);
      continue;
    }
    keep.push_back(argv[i]);
  }

  for (std::size_t k = 0; k < keep.size(); ++k) argv[k] = keep[k];
  argc = int(keep.size());
  return opts;
}

}  // namespace rmt::exec

// exec/options.hpp — the shared command-line surface of the execution
// engine: --jobs N, --shard i/k, --resume MANIFEST.
//
// Every bench/fig driver (via bench::Reporter) and campaign-aware tool
// consumes these flags through one parser so the validation story is
// uniform: malformed input ("--jobs 0", "--shard 3/2", a missing value)
// throws std::invalid_argument with a message naming the flag, and the
// drivers turn that into a clear fatal line and nonzero exit — a typo'd
// sweep must die loudly, not silently run single-threaded.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace rmt::exec {

struct ExecOptions {
  /// Worker threads for the run (--jobs N, N >= 1). Default: sequential.
  std::size_t jobs = 1;
  /// Distributed slice (--shard i/k, 0 <= i < k): this process runs only
  /// shard indices ≡ i (mod k). Default: the whole campaign.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Campaign manifest to resume from / checkpoint to (--resume PATH).
  std::optional<std::string> resume;
};

/// Scan argv for --jobs/--shard/--resume (both "--flag value" and
/// "--flag=value" forms), removing consumed arguments like
/// obs::consume_json_flag does. Throws std::invalid_argument on any
/// malformed occurrence; unrelated arguments pass through untouched.
ExecOptions consume_exec_flags(int& argc, char** argv);

}  // namespace rmt::exec

#include "exec/campaign.hpp"

#include <chrono>
#include <fstream>
#include <mutex>

#include "obs/json.hpp"
#include "obs/timer.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"

namespace rmt::exec {

std::uint64_t derive_seed(std::uint64_t root_seed, std::uint64_t stream) {
  // splitmix64: advance by the golden-ratio increment per stream, then
  // finalize. Part of the rmt.campaign/1 format — do not change.
  std::uint64_t z = root_seed + (stream + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Campaign::Campaign(std::string name, std::size_t total_units, std::size_t num_shards,
                   std::uint64_t root_seed)
    : name_(std::move(name)), total_units_(total_units), root_seed_(root_seed) {
  RMT_REQUIRE(!name_.empty(), "Campaign: name must be non-empty");
  RMT_REQUIRE(name_.find('\n') == std::string::npos, "Campaign: name must be single-line");
  RMT_REQUIRE(total_units >= 1, "Campaign: needs at least one work unit");
  RMT_REQUIRE(num_shards >= 1 && num_shards <= total_units,
              "Campaign: shard count must be in [1, total_units]");
  shards_.reserve(num_shards);
  // Contiguous near-even split: the first (total % shards) shards get one
  // extra unit, so shard boundaries depend only on (total, num_shards).
  const std::size_t base = total_units / num_shards;
  const std::size_t extra = total_units % num_shards;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < num_shards; ++i) {
    const std::size_t size = base + (i < extra ? 1 : 0);
    shards_.push_back(Shard{i, num_shards, begin, begin + size, derive_seed(root_seed, i)});
    begin += size;
  }
}

bool Campaign::Result::complete() const {
  for (const std::optional<std::string>& p : payloads)
    if (!p) return false;
  return true;
}

std::string Campaign::Result::aggregate() const {
  RMT_REQUIRE(complete(), "Campaign::Result::aggregate: shards missing (subset run?)");
  std::string out;
  for (const std::optional<std::string>& p : payloads) {
    out += *p;
    out += '\n';
  }
  return out;
}

namespace {

/// Append-mode manifest writer; one fully formed line per completed
/// shard, flushed immediately (the checkpoint durability contract).
class ManifestWriter {
 public:
  ManifestWriter(const std::string& path, bool fresh) {
    if (path.empty()) return;
    // A killed run can leave a torn final line with no newline; appending
    // straight after it would weld the next checkpoint onto the garbage.
    // Start appends on a fresh line so one resume fully repairs the file.
    bool needs_newline = false;
    if (!fresh) {
      std::ifstream in(path, std::ios::binary);
      if (in.is_open() && in.seekg(-1, std::ios::end)) {
        char last = '\n';
        in.get(last);
        needs_newline = last != '\n';
      }
    }
    out_.open(path, fresh ? std::ios::trunc : std::ios::app);
    RMT_REQUIRE(out_.good(), "Campaign: cannot open manifest " + path);
    if (needs_newline) out_ << '\n';
  }

  bool active() const { return out_.is_open(); }

  void line(const std::string& doc) {
    std::lock_guard<std::mutex> lock(m_);
    out_ << doc << '\n';
    out_.flush();
    RMT_CHECK(out_.good(), "Campaign: manifest append failed");
  }

 private:
  std::mutex m_;
  std::ofstream out_;
};

std::string header_line(const Campaign& c) {
  obs::json::Writer w;
  w.begin_object();
  w.field("schema", "rmt.campaign/1");
  w.field("campaign", c.name());
  w.field("root_seed", c.root_seed());
  w.field("total_units", std::uint64_t(c.total_units()));
  w.field("shards", std::uint64_t(c.shards().size()));
  w.end_object();
  return w.take();
}

std::string shard_line(const Campaign& c, const Shard& s, double wall_us,
                       const std::string& payload) {
  obs::json::Writer w;
  w.begin_object();
  w.field("schema", "rmt.campaign/1");
  w.field("campaign", c.name());
  w.field("shard", std::uint64_t(s.index));
  w.field("of", std::uint64_t(s.of));
  w.field("begin", std::uint64_t(s.begin));
  w.field("end", std::uint64_t(s.end));
  w.field("seed", s.seed);
  w.field("wall_us", wall_us);
  w.field("payload", payload);
  w.end_object();
  return w.take();
}

std::uint64_t req_u64(const obs::json::Value& obj, const char* key) {
  const obs::json::Value* v = obj.find(key);
  RMT_REQUIRE(v != nullptr, std::string("Campaign manifest: missing field '") + key + "'");
  return v->as_u64();
}

/// Load completed shards from `path` into `result`; returns true if a
/// valid header line was seen. Lines that fail to parse (a truncated
/// tail from a killed run) are counted and ignored; lines that parse but
/// contradict the campaign identity throw — a manifest from a different
/// campaign must not silently seed this one.
bool load_manifest(const Campaign& c, const std::string& path, Campaign::Result& result) {
  std::ifstream in(path);
  if (!in.is_open()) return false;  // nonexistent manifest: fresh start
  bool saw_header = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    obs::json::Value doc;
    try {
      doc = obs::json::Value::parse(line);
    } catch (const std::invalid_argument&) {
      ++result.corrupt_manifest_lines;
      continue;
    }
    RMT_REQUIRE(doc.is_object(), "Campaign manifest: line is not an object");
    const obs::json::Value* schema = doc.find("schema");
    RMT_REQUIRE(schema != nullptr && schema->as_string() == "rmt.campaign/1",
                "Campaign manifest: not an rmt.campaign/1 line");
    const obs::json::Value* campaign = doc.find("campaign");
    RMT_REQUIRE(campaign != nullptr && campaign->as_string() == c.name(),
                "Campaign manifest: campaign name mismatch");
    if (doc.find("shard") == nullptr) {  // header line
      RMT_REQUIRE(req_u64(doc, "root_seed") == c.root_seed(),
                  "Campaign manifest: root seed mismatch");
      RMT_REQUIRE(req_u64(doc, "total_units") == c.total_units(),
                  "Campaign manifest: total_units mismatch");
      RMT_REQUIRE(req_u64(doc, "shards") == c.shards().size(),
                  "Campaign manifest: shard count mismatch");
      saw_header = true;
      continue;
    }
    const std::uint64_t index = req_u64(doc, "shard");
    RMT_REQUIRE(index < c.shards().size(), "Campaign manifest: shard index out of range");
    const Shard& expect = c.shards()[std::size_t(index)];
    RMT_REQUIRE(req_u64(doc, "of") == expect.of && req_u64(doc, "begin") == expect.begin &&
                    req_u64(doc, "end") == expect.end && req_u64(doc, "seed") == expect.seed,
                "Campaign manifest: shard geometry/seed mismatch");
    const obs::json::Value* payload = doc.find("payload");
    RMT_REQUIRE(payload != nullptr, "Campaign manifest: shard line lacks payload");
    if (!result.payloads[std::size_t(index)]) {
      result.payloads[std::size_t(index)] = payload->as_string();
      ++result.resumed;
    }
  }
  RMT_REQUIRE(result.resumed == 0 || saw_header,
              "Campaign manifest: shard lines without a matching header");
  return saw_header;
}

}  // namespace

Campaign::Result Campaign::run(ThreadPool& pool, const ShardFn& fn,
                               const RunOptions& opts) const {
  RMT_OBS_SCOPE("exec.campaign");
  RMT_REQUIRE(fn != nullptr, "Campaign::run: null shard function");
  RMT_REQUIRE(opts.subset_count >= 1 && opts.subset_index < opts.subset_count,
              "Campaign::run: subset index/count out of range");
  RMT_AUDIT_VALIDATE(*this);

  Result result;
  result.payloads.resize(shards_.size());
  bool have_header = false;
  if (!opts.manifest_path.empty())
    have_header = load_manifest(*this, opts.manifest_path, result);

  // Which shards this process actually computes.
  std::vector<std::size_t> todo;
  for (const Shard& s : shards_) {
    if (result.payloads[s.index]) continue;  // checkpointed
    if (s.index % opts.subset_count != opts.subset_index) {
      ++result.skipped;
      continue;
    }
    todo.push_back(s.index);
  }

  // Fresh start (truncate + header) unless the file already carries a
  // valid header — then append, so checkpoints survive repeated resumes.
  const bool fresh = !have_header;
  ManifestWriter manifest(opts.manifest_path, fresh);
  if (manifest.active() && fresh) manifest.line(header_line(*this));

  parallel_for(&pool, 0, todo.size(), 1, [&](std::size_t t) {
    const Shard& shard = shards_[todo[t]];
    RMT_AUDIT_VALIDATE(shard);
    const auto t0 = std::chrono::steady_clock::now();
    std::string payload;
    {
      RMT_OBS_SCOPE("exec.shard");
      payload = fn(shard);
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
    RMT_REQUIRE(payload.find('\n') == std::string::npos,
                "Campaign: shard payloads must be single-line");
    if (manifest.active()) manifest.line(shard_line(*this, shard, wall_us, payload));
    result.payloads[shard.index] = std::move(payload);
  });
  result.ran = todo.size();
  pool.publish_stats();
  return result;
}

}  // namespace rmt::exec

namespace rmt::audit {

void validate(const exec::Shard& s) {
  if (s.of == 0 || s.index >= s.of)
    detail::fail("exec", "shard index " + std::to_string(s.index) + " outside of " +
                             std::to_string(s.of) + " shards");
  if (s.begin > s.end) detail::fail("exec", "shard with begin > end");
  detail::passed("exec");
}

void validate(const exec::Campaign& c) {
  const std::vector<exec::Shard>& shards = c.shards();
  if (shards.empty()) detail::fail("exec", "campaign with no shards");
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const exec::Shard& s = shards[i];
    validate(s);
    if (s.index != i) detail::fail("exec", "shard indices not sequential");
    if (s.of != shards.size()) detail::fail("exec", "shard 'of' disagrees with the plan");
    if (s.begin != cursor) detail::fail("exec", "shards do not tile the unit range");
    if (s.end < s.begin || s.end - s.begin == 0)
      detail::fail("exec", "empty shard in the plan");
    if (s.seed != exec::derive_seed(c.root_seed(), i))
      detail::fail("exec", "shard seed does not re-derive from the root seed");
    cursor = s.end;
  }
  if (cursor != c.total_units())
    detail::fail("exec", "shards cover " + std::to_string(cursor) + " of " +
                             std::to_string(c.total_units()) + " units");
  detail::passed("exec");
}

}  // namespace rmt::audit

// exec/thread_pool.hpp — the rmt::exec scheduling core: a fixed-size
// work-stealing thread pool plus deterministic parallel loops.
//
// Every expensive path in this reproduction (strategy enumeration, the
// exact deciders' outer scans, the bench sweeps) is an embarrassingly
// parallel loop over an index range. This pool runs those loops across a
// fixed worker set: each worker owns a deque fed round-robin by submit(),
// drains it FIFO, and steals from its siblings' tails when empty — so an
// uneven chunk distribution rebalances without a central queue becoming
// the bottleneck.
//
// Determinism contract: parallelism here never changes *results*, only
// wall time. parallel_for chunks an index range and runs every chunk
// exactly once; parallel_reduce stores per-chunk partials and folds them
// in ascending chunk order on the calling thread — so the reduction is
// bit-identical at any worker count, including a pool of one and no pool
// at all. Anything order-sensitive must flow through parallel_reduce (or
// chunk-indexed storage), never through shared accumulators.
//
// Nesting: a parallel loop entered from inside one of this pool's workers
// runs inline on that worker (no re-submission), so library code can use
// the loops unconditionally without risking scheduling deadlock.
//
// Observability: the pool counts tasks executed and steals in its own
// atomics (stats()); publish_stats() pushes the deltas into the global
// rmt::obs registry as the "exec.tasks" / "exec.steals" counters and the
// "exec.queue_depth" gauge. Publishing is explicit and coarse (campaign
// and driver boundaries) so the registry's lookup mutex stays off the
// task hot path.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace rmt::exec {

class ThreadPool {
 public:
  /// Spawns `threads` workers immediately. Requires threads >= 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_workers() const { return workers_.size(); }

  /// Enqueue one task (round-robin across worker deques). Thread-safe.
  void submit(std::function<void()> task);

  /// True when called from one of this pool's workers (used by the
  /// parallel loops to run nested work inline instead of re-submitting).
  bool on_worker_thread() const;

  struct Stats {
    std::uint64_t tasks_executed = 0;
    std::uint64_t steals = 0;
    std::size_t queue_depth = 0;  ///< tasks currently enqueued, unstarted
  };
  Stats stats() const;

  /// Push the deltas since the last publish into the global obs registry
  /// ("exec.tasks", "exec.steals" counters; "exec.queue_depth" gauge).
  /// No-op while observability is disabled.
  void publish_stats();

  /// max(1, std::thread::hardware_concurrency()).
  static std::size_t hardware_concurrency();

 private:
  struct WorkerQueue {
    std::mutex m;
    std::deque<std::function<void()>> q;
  };

  void worker_loop(std::size_t self);
  std::optional<std::function<void()>> try_take(std::size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  mutable std::mutex m_;         // guards pending_ / stop_ for the sleep cv
  std::condition_variable cv_;
  std::size_t pending_ = 0;      // submitted, not yet claimed by a worker
  bool stop_ = false;
  std::atomic<std::uint64_t> next_queue_{0};

  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::mutex publish_m_;         // serializes delta accounting only
  std::uint64_t published_tasks_ = 0;
  std::uint64_t published_steals_ = 0;
};

/// A sensible chunk size for `total` units on `pool`: large enough to
/// amortize scheduling, small enough to let stealing balance (about eight
/// chunks per worker). With no pool the answer is the whole range.
std::size_t suggest_grain(std::size_t total, const ThreadPool* pool);

/// Run fn(i) for every i in [begin, end), in chunks of `grain` indices,
/// on `pool`. Blocks until every index ran. Sequential-inline (and
/// allocation-free) when pool is null, has one worker, the range fits in
/// one chunk, or the caller is already one of pool's workers. The first
/// exception (lowest chunk) is rethrown after the loop drains; every
/// other chunk still runs.
void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& fn);

/// Deterministic map/reduce over [begin, end): `map` folds one chunk
/// [lo, hi) into a T; partials are combined *in ascending chunk order*
/// with `combine`, so a non-commutative combine (string concatenation,
/// first-witness selection) gives the same answer at any worker count.
template <typename T>
T parallel_reduce(ThreadPool* pool, std::size_t begin, std::size_t end, std::size_t grain,
                  T init, const std::function<T(std::size_t, std::size_t)>& map,
                  const std::function<T(T, T)>& combine) {
  if (begin >= end) return init;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (end - begin + grain - 1) / grain;
  std::vector<std::optional<T>> partial(chunks);
  parallel_for(pool, 0, chunks, 1, [&](std::size_t c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = std::min(end, lo + grain);
    partial[c].emplace(map(lo, hi));
  });
  T acc = std::move(init);
  for (std::optional<T>& p : partial) {
    RMT_CHECK(p.has_value(), "parallel_reduce: a chunk finished without a partial");
    acc = combine(std::move(acc), std::move(*p));
  }
  return acc;
}

}  // namespace rmt::exec

#include "exec/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rmt::exec {

namespace {

/// The pool whose worker is running the current thread (null elsewhere).
/// Lets the parallel loops detect nesting and run inline instead of
/// submitting to a pool that is blocked waiting on them.
thread_local const ThreadPool* t_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  RMT_REQUIRE(threads >= 1, "ThreadPool: needs at least one worker");
  queues_.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::on_worker_thread() const { return t_worker_pool == this; }

void ThreadPool::submit(std::function<void()> task) {
  RMT_REQUIRE(task != nullptr, "ThreadPool::submit: null task");
  // Request-scoped tracing crosses the pool boundary here: capture the
  // submitting thread's context and re-enter it on the worker, so spans
  // opened inside the task nest under the owning request rather than
  // starting parentless traces. One relaxed load when tracing is off.
  if (obs::trace::enabled()) {
    if (const obs::trace::TraceContext ctx = obs::trace::current(); ctx.valid()) {
      task = [ctx, inner = std::move(task)] {
        obs::trace::ContextGuard guard(ctx);
        obs::trace::Span span(RMT_TRACE_NAME("exec.task"));
        inner();
      };
    }
  }
  const std::size_t target =
      std::size_t(next_queue_.fetch_add(1, std::memory_order_relaxed)) % queues_.size();
  {
    std::lock_guard<std::mutex> qlock(queues_[target]->m);
    queues_[target]->q.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(m_);
    ++pending_;
  }
  cv_.notify_one();
}

std::optional<std::function<void()>> ThreadPool::try_take(std::size_t self) {
  // Own deque first (FIFO), then steal from the siblings' tails.
  for (std::size_t k = 0; k < queues_.size(); ++k) {
    const std::size_t i = (self + k) % queues_.size();
    WorkerQueue& wq = *queues_[i];
    std::lock_guard<std::mutex> qlock(wq.m);
    if (wq.q.empty()) continue;
    std::function<void()> task;
    if (i == self) {
      task = std::move(wq.q.front());
      wq.q.pop_front();
    } else {
      task = std::move(wq.q.back());
      wq.q.pop_back();
      steals_.fetch_add(1, std::memory_order_relaxed);
    }
    return task;
  }
  return std::nullopt;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_worker_pool = this;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_.wait(lock, [&] { return stop_ || pending_ > 0; });
      if (pending_ == 0 && stop_) return;  // drained: every claimed task ran
      --pending_;
    }
    // Holding a claim guarantees a task exists in some deque until we take
    // one — tasks are only removed by claim holders, one task per claim.
    std::optional<std::function<void()>> task;
    while (!(task = try_take(self))) {
    }
    // Count before running: anyone who synchronises on a task's side
    // effects (a completion condvar, parallel_for's wait) then reads a
    // settled counter — the increment happens-before the effects they saw.
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    (*task)();
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(m_);
    s.queue_depth = pending_;
  }
  return s;
}

void ThreadPool::publish_stats() {
  if (!obs::enabled()) return;
  const Stats s = stats();
  std::lock_guard<std::mutex> lock(publish_m_);
  obs::Registry& reg = obs::Registry::global();
  if (s.tasks_executed > published_tasks_)
    reg.counter("exec.tasks").inc(s.tasks_executed - published_tasks_);
  if (s.steals > published_steals_) reg.counter("exec.steals").inc(s.steals - published_steals_);
  published_tasks_ = s.tasks_executed;
  published_steals_ = s.steals;
  reg.gauge("exec.queue_depth").set(double(s.queue_depth));
}

std::size_t ThreadPool::hardware_concurrency() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::size_t suggest_grain(std::size_t total, const ThreadPool* pool) {
  if (total == 0) return 1;
  if (pool == nullptr || pool->num_workers() <= 1) return total;
  return std::max<std::size_t>(1, total / (8 * pool->num_workers()));
}

void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;
  if (pool == nullptr || pool->num_workers() <= 1 || n <= grain || pool->on_worker_thread()) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunks = (n + grain - 1) / grain;
  std::vector<std::exception_ptr> errors(chunks);
  std::mutex done_m;
  std::condition_variable done_cv;
  std::size_t remaining = chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    pool->submit([&, c] {
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(end, lo + grain);
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        errors[c] = std::current_exception();
      }
      // Notify under the lock: done_cv lives on the waiter's stack, and the
      // waiter may destroy it the moment it can observe remaining == 0. With
      // the mutex held the waiter cannot return from wait() until this
      // signaler has released it, which keeps the condvar alive through
      // notify_one.
      std::lock_guard<std::mutex> lock(done_m);
      if (--remaining == 0) done_cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(done_m);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }
  // Deterministic error selection: the lowest-index failing chunk wins.
  for (std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace rmt::exec

// exec/campaign.hpp — sharded parameter sweeps with deterministic seeding
// and checkpoint/resume.
//
// A Campaign splits `total_units` work items (instances to decide, codes
// to enumerate, rows to measure) into `num_shards` contiguous shards.
// Each shard carries an RNG seed derived *only* from (root_seed, shard
// index) — never from scheduling — so a shard computes the same payload
// whether it runs first or last, on one worker or eight, in this process
// or on another machine. The campaign aggregate (payloads joined in shard
// order) is therefore byte-identical at any worker count, including a
// sequential run.
//
// Checkpointing: every completed shard is appended to a JSONL manifest
// ("rmt.campaign/1", validated by tools/check_bench_json.py):
//
//   {"schema":"rmt.campaign/1","campaign":NAME,"root_seed":S,
//    "total_units":N,"shards":K}                                 # header
//   {"schema":"rmt.campaign/1","campaign":NAME,"shard":i,"of":K,
//    "begin":b,"end":e,"seed":s,"wall_us":t,"payload":"..."}     # 1/shard
//
// A resumed run loads the manifest, verifies the header against its own
// identity (name, root seed, unit and shard counts — a mismatched
// manifest is an error, not a silent restart), marks the listed shards
// complete, and runs only the rest. A truncated final line (the process
// died mid-append) is ignored and recomputed. Manifests from distributed
// slices (`--shard i/k` runs) can be concatenated and resumed as one.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"

namespace rmt::exec {

/// Mix (root_seed, stream) into an independent 64-bit seed (splitmix64
/// finalizer over the golden-ratio sequence). Stable across platforms and
/// releases: manifests record the derived seeds, so this function is part
/// of the rmt.campaign/1 format.
std::uint64_t derive_seed(std::uint64_t root_seed, std::uint64_t stream);

/// One contiguous slice of a campaign's unit range.
struct Shard {
  std::size_t index = 0;  ///< 0-based shard number
  std::size_t of = 1;     ///< total shards in the campaign
  std::size_t begin = 0;  ///< first unit (inclusive)
  std::size_t end = 0;    ///< last unit (exclusive)
  std::uint64_t seed = 0; ///< derive_seed(root_seed, index)
};

class Campaign {
 public:
  /// Requires total_units >= 1 and 1 <= num_shards <= total_units.
  Campaign(std::string name, std::size_t total_units, std::size_t num_shards,
           std::uint64_t root_seed);

  const std::string& name() const { return name_; }
  std::size_t total_units() const { return total_units_; }
  std::uint64_t root_seed() const { return root_seed_; }
  const std::vector<Shard>& shards() const { return shards_; }

  /// Computes one shard's aggregate payload. Must be a pure function of
  /// the Shard (use Rng(shard.seed) for randomness); must not contain
  /// newlines (payloads are manifest-line and aggregate-line atoms).
  using ShardFn = std::function<std::string(const Shard&)>;

  struct RunOptions {
    /// Distributed slice (--shard i/k): only shards with
    /// index % subset_count == subset_index execute locally.
    std::size_t subset_index = 0;
    std::size_t subset_count = 1;
    /// Manifest to load completed shards from and append new ones to
    /// (--resume). Empty disables checkpointing. A nonexistent file is a
    /// fresh start, not an error.
    std::string manifest_path;
  };

  struct Result {
    std::vector<std::optional<std::string>> payloads;  ///< by shard index
    std::size_t ran = 0;       ///< shards computed in this run
    std::size_t resumed = 0;   ///< shards loaded from the manifest
    std::size_t skipped = 0;   ///< shards outside the subset filter
    std::size_t corrupt_manifest_lines = 0;  ///< ignored (truncated) lines

    bool complete() const;
    /// Payloads joined in shard order, one line each. Requires complete().
    std::string aggregate() const;
  };

  /// Run every shard not already checkpointed (and inside the subset
  /// filter) on `pool`, shards concurrently, checkpointing each as it
  /// completes. Exceptions from shard functions propagate (lowest shard
  /// first) after in-flight shards drain; completed shards stay
  /// checkpointed, so a crashed campaign resumes where it died.
  Result run(ThreadPool& pool, const ShardFn& fn, const RunOptions& opts) const;
  Result run(ThreadPool& pool, const ShardFn& fn) const { return run(pool, fn, RunOptions()); }

 private:
  std::string name_;
  std::size_t total_units_;
  std::uint64_t root_seed_;
  std::vector<Shard> shards_;
};

}  // namespace rmt::exec

namespace rmt::audit {
/// Deep invariants of the shard plan: contiguous cover of [0, total),
/// sequential indices, seeds re-derived from the root. Hooked (via
/// RMT_AUDIT_VALIDATE) at Campaign::run entry and per-shard boundaries.
void validate(const exec::Shard& s);
void validate(const exec::Campaign& c);
}  // namespace rmt::audit

#include "svc/instance_key.hpp"

#include "io/serialize.hpp"

namespace rmt::svc {

namespace {

// The splitmix64 finalizer, bit-for-bit the mix exec::derive_seed uses.
// Duplicated (three lines) rather than exported from exec so the two
// frozen contracts — campaign seeds, instance keys — stay independently
// auditable.
std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string InstanceKey::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = kDigits[(hi >> (4 * i)) & 0xf];
    out[31 - i] = kDigits[(lo >> (4 * i)) & 0xf];
  }
  return out;
}

std::string canonical_instance_text(const Instance& inst) {
  return io::serialize_instance(inst);
}

InstanceKey key_of_text(const std::string& canonical_text) {
  InstanceKey key;
  key.lo = fnv1a64(canonical_text);
  key.hi = splitmix64(key.lo);
  return key;
}

InstanceKey instance_key(const Instance& inst) {
  return key_of_text(canonical_instance_text(inst));
}

Instance canonicalize(const Instance& inst) {
  return io::parse_instance_string(canonical_instance_text(inst));
}

}  // namespace rmt::svc

// svc/metric_names.hpp — the closed registry of rmt::svc metric names.
//
// Every "svc.*" (or "cache.*") metric name a C++ source references must be
// listed here, mirroring the phase-name registry (obs/phase_names.hpp):
// tools/rmt_lint.py cross-checks both directions — a source referencing an
// unregistered name, or a registry entry with no remaining source — so
// dashboards and the BENCH_svc.json consumers can treat the serving
// vocabulary as a stable schema. Phase names ("svc.batch", "svc.compute")
// live in the phase registry, not here; the linter knows the difference.
//
// To add a metric: add the instrumentation site and the entry here in the
// same change; the linter markers below delimit what it parses.
#pragma once

#include <array>
#include <string_view>

namespace rmt::svc {

// lint:svc-metric-registry-begin
inline constexpr std::array<std::string_view, 13> kSvcMetricNames = {
    "svc.cache.bytes",
    "svc.cache.entries",
    "svc.cache.evictions",
    "svc.cache.hits",
    "svc.cache.misses",
    "svc.coalesced",
    "svc.computed",
    "svc.deadline_exceeded",
    "svc.disk_hits",
    "svc.errors",
    "svc.inflight_joins",
    "svc.request_us",
    "svc.requests",
};
// lint:svc-metric-registry-end

constexpr bool is_known_svc_metric(std::string_view name) {
  for (std::string_view m : kSvcMetricNames)
    if (m == name) return true;
  return false;
}

}  // namespace rmt::svc

#include "svc/result_cache.hpp"

#include "obs/metrics.hpp"
#include "svc/instance_key.hpp"
#include "util/check.hpp"

namespace rmt::svc {

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::size_t entry_bytes(const std::string& key, const std::string& value) {
  return key.size() + value.size();
}

}  // namespace

ResultCache::ResultCache() : ResultCache(Options{}) {}

ResultCache::ResultCache(Options opts) {
  const std::size_t shards = next_pow2(opts.shards == 0 ? 1 : opts.shards);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
  shard_budget_ = opts.max_bytes / shards;
}

ResultCache::Shard& ResultCache::shard_of(const std::string& key) {
  // num_shards is a power of two, so the low bits of the frozen mix index.
  return *shards_[fnv1a64(key) & (shards_.size() - 1)];
}

std::optional<std::string> ResultCache::get(const std::string& key) {
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.m);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    ++s.misses;
    return std::nullopt;
  }
  ++s.hits;
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
  return it->second->second;
}

void ResultCache::put(const std::string& key, std::string value) {
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.m);
  if (const auto it = s.index.find(key); it != s.index.end()) {
    s.bytes -= entry_bytes(key, it->second->second);
    s.lru.erase(it->second);
    s.index.erase(it);
  }
  const std::size_t incoming = entry_bytes(key, value);
  if (incoming > shard_budget_) return;  // would evict the whole shard for nothing
  while (s.bytes + incoming > shard_budget_ && !s.lru.empty()) {
    const auto& victim = s.lru.back();
    s.bytes -= entry_bytes(victim.first, victim.second);
    s.index.erase(victim.first);
    s.lru.pop_back();
    ++s.evictions;
  }
  s.lru.emplace_front(key, std::move(value));
  s.index.emplace(key, s.lru.begin());
  s.bytes += incoming;
}

ResultCache::Stats ResultCache::stats() const {
  Stats out;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->m);
    out.hits += sp->hits;
    out.misses += sp->misses;
    out.evictions += sp->evictions;
    out.bytes += sp->bytes;
    out.entries += sp->lru.size();
  }
  return out;
}

void ResultCache::publish_stats() {
  if (!obs::enabled()) return;
  const Stats now = stats();
  std::lock_guard<std::mutex> lock(publish_m_);
  obs::Registry& reg = obs::Registry::global();
  RMT_CHECK(now.hits >= published_hits_ && now.misses >= published_misses_ &&
                now.evictions >= published_evictions_,
            "ResultCache::publish_stats: counters moved backwards");
  reg.counter("svc.cache.hits").inc(now.hits - published_hits_);
  reg.counter("svc.cache.misses").inc(now.misses - published_misses_);
  reg.counter("svc.cache.evictions").inc(now.evictions - published_evictions_);
  reg.gauge("svc.cache.bytes").set(double(now.bytes));
  reg.gauge("svc.cache.entries").set(double(now.entries));
  published_hits_ = now.hits;
  published_misses_ = now.misses;
  published_evictions_ = now.evictions;
}

}  // namespace rmt::svc

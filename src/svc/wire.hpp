// svc/wire.hpp — the rmt.request/1 / rmt.response/1 line protocol.
//
// One JSON object per line (JSONL), the transport tools/rmt_serve speaks
// on stdio and tools/check_bench_json.py validates. A request:
//
//   {"schema":"rmt.request/1","id":"q1","kind":"decide_rmt",
//    "instance":"rmt-instance v1\nnodes 3\n...",
//    "deadline_ms":50,"no_cache":false,
//    "params":{"value":7,"corrupted":[1],"strategy":"two-faced",
//              "seed":9,"max_rounds":0}}
//
// `instance` embeds the io/serialize.hpp text format verbatim — one
// parser, one canonical form, and a request is self-contained (no server
// side file paths). `params` applies to kind "simulate" only;
// `deadline_ms`, `no_cache` and `params` are optional. The matching
// response:
//
//   {"schema":"rmt.response/1","id":"q1","status":"ok",
//    "key":"bc6adf4f00f0be64...","result":{...},"error":null,
//    "cached":false,"coalesced":false,"wall_us":412.0,
//    "trace_id":"7f3a9c51d2e80b64"}
//
// `result` is the engine's deterministic payload object when status is
// "ok" and null otherwise; `error` is the converse. `id` is echoed
// verbatim so a client may pipeline requests and match answers by id —
// within one batch the server also preserves order. `trace_id` names the
// request's span subtree in rmt.trace/1 dumps (null when tracing is off).
#pragma once

#include <cstddef>
#include <string>

#include "svc/engine.hpp"

namespace rmt::svc::wire {

inline constexpr const char* kRequestSchema = "rmt.request/1";
inline constexpr const char* kResponseSchema = "rmt.response/1";

/// Upper bound on one request line. A line over the limit is rejected
/// before JSON parsing — the parser is recursive and the server reads
/// untrusted stdin, so "one absurd line" must cost O(limit), not O(line).
/// 4 MiB comfortably fits every realistic embedded instance text.
inline constexpr std::size_t kMaxRequestBytes = 4u << 20;

/// "ok" / "deadline_exceeded" / "error".
const char* to_string(Response::Status status);

struct ParsedRequest {
  std::string id;
  Request request;
};

/// Parse one rmt.request/1 line. Throws std::invalid_argument naming the
/// offending field on malformed input — the server turns that into an
/// "error" response carrying the same id when one could be extracted.
ParsedRequest parse_request(const std::string& line);

/// Best-effort id extraction from a line that failed parse_request, so
/// the error response can still be matched by the client ("" if even the
/// id is unreadable).
std::string extract_id(const std::string& line);

/// Format one rmt.response/1 line (no trailing newline).
std::string format_response(const std::string& id, const Response& resp);

/// Format an "error"-status response for a request that never reached the
/// engine (parse failure, unknown kind).
std::string format_parse_error(const std::string& id, const std::string& message);

/// "stats" / "trace" for a probe line the engine must never see, "" for
/// everything else (including lines that are not valid JSON).
std::string probe_kind(const std::string& line);

/// Format the "stats" probe response: the engine and cache counters as the
/// result object ({"kind":"stats","engine":{...},"cache":{...}}). A server
/// may splice one extra section (the TCP front end passes its "net"
/// counters as an already-serialized JSON object); both empty = none.
std::string format_stats_response(const std::string& id, Engine& engine,
                                  const std::string& extra_key = "",
                                  const std::string& extra_json = "");

/// Format the "trace" probe response: the flight recorder's header and
/// spans embedded verbatim as rmt.trace/1 objects — written one per line
/// they validate as an rmt.trace/1 dump.
std::string format_trace_response(const std::string& id);

}  // namespace rmt::svc::wire

// svc/engine.hpp — the memoizing query engine over the exact deciders.
//
// Turns the library's analysis and simulation entry points into *served*
// queries, the shape of an inference-serving stack: requests carry an
// instance, a query kind, parameters and an optional deadline; the engine
// answers from the sharded result cache when it can, coalesces duplicate
// keys into one computation when it cannot, and batches the remaining
// unique work onto an exec::ThreadPool. Memoization is sound because every
// query kind is a pure function of the canonical instance (the PODC'16
// characterizations are exact; simulation is seeded deterministically).
//
// Determinism contract: the result payload of a response is a pure
// function of (instance key, kind, canonical params) — never of worker
// count, scheduling order, cache state, or which of cached / coalesced /
// freshly-computed path produced it. bench_svc_throughput hard-checks the
// byte identity (the `identical` column of BENCH_svc.json); seeds for the
// simulate kind default to derive_seed(engine root seed, instance key), a
// function of content, not arrival order.
//
// Deadlines are enforced at *scheduling* granularity: a request whose
// deadline has passed before its computation (or cache lookup) starts is
// rejected with Status::kDeadlineExceeded; a decider that already started
// is never killed (the deciders are not interruptible, and an answer that
// was paid for is cached for the next asker). deadline_ms counts from
// run() entry; 0 is therefore already expired — a deterministic way to
// exercise the rejection path.
//
// Coalescing: within one run() batch, duplicate keys share one
// computation (svc.coalesced). Across concurrent run() calls, a key
// already being computed by another batch is joined, not recomputed
// (svc.inflight_joins) — the joining *caller thread* blocks until the
// owning batch publishes. Consequently run() must not be called from the
// engine's own pool workers (the join could wait on a task queued behind
// itself); callers are external threads — tools, servers, tests.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "instance/instance.hpp"
#include "store/store.hpp"
#include "svc/instance_key.hpp"
#include "svc/result_cache.hpp"

namespace rmt::exec {
class ThreadPool;
}

namespace rmt::svc {

enum class QueryKind {
  kDecideRmt,   ///< find_rmt_cut: RMT solvability + witness
  kDecideZpp,   ///< find_rmt_zpp_cut: Z-CPA solvability + witness
  kAnalyze,     ///< all three characterizations (rmt / zpp / two-cover)
  kSimulate,    ///< one seeded RMT-PKA run under an attack strategy
};

/// "decide_rmt" etc. — the names rmt.request/1 carries.
const char* to_string(QueryKind kind);
std::optional<QueryKind> parse_query_kind(const std::string& name);

/// Parameters of the simulate kind (ignored by the decide/analyze kinds).
struct SimParams {
  std::uint64_t value = 42;          ///< the dealer's input
  NodeSet corrupted;                 ///< must be admissible under Z
  std::string strategy = "two-faced";  ///< sim strategy name (see make_strategy)
  /// Seed for randomized strategies. Absent = derived from the engine
  /// root seed and the instance key — deterministic in content.
  std::optional<std::uint64_t> seed;
  std::size_t max_rounds = 0;  ///< 0 = the protocol's default bound
};

struct Request {
  QueryKind kind = QueryKind::kDecideRmt;
  Instance instance;
  SimParams params;  ///< simulate only
  /// Deadline in milliseconds from run() entry; nullopt = none. 0 is
  /// already expired (see header comment).
  std::optional<std::uint64_t> deadline_ms;
  bool no_cache = false;  ///< bypass lookup *and* store for this request
};

struct Response {
  enum class Status { kOk, kDeadlineExceeded, kError };
  Status status = Status::kOk;
  std::string key;      ///< InstanceKey::to_hex() of the request's instance
  std::string result;   ///< kOk: the result JSON object (deterministic bytes)
  std::string error;    ///< kError: what went wrong
  bool cached = false;     ///< served from the result cache
  bool coalesced = false;  ///< shared another request's computation
  double wall_us = 0;      ///< this request's wall time inside run()
  /// Root trace id of this request's span subtree (obs/trace.hpp); 0 when
  /// tracing was disabled. The wire layer renders it as a 16-hex string.
  std::uint64_t trace_id = 0;
  /// Span id of the request's "svc.request" root span (0 when tracing was
  /// disabled). Never on the wire — the net layer joins its "net.write"
  /// spans to it so a response's transport leg links into the trace.
  std::uint64_t root_span = 0;
};

class Engine {
 public:
  struct Options {
    ResultCache::Options cache;
    /// Disk tier under the cache (store::Options::dir empty = memory
    /// only). Lookups go memory → disk → compute; completed results are
    /// written back through both tiers, so they survive restarts.
    store::Options store;
    /// Root of the derived simulate seeds (see SimParams::seed).
    std::uint64_t root_seed = 4242;
  };

  /// `pool` is borrowed (null = compute sequentially on the caller) and
  /// must outlive the engine.
  explicit Engine(exec::ThreadPool* pool);  ///< default Options
  Engine(exec::ThreadPool* pool, Options opts);

  /// Answer a batch. Responses are positionally aligned with `requests`.
  /// Individual failures (inadmissible corruption, oversized instance,
  /// unknown strategy) become Status::kError responses, never exceptions —
  /// one bad request must not poison its batch.
  std::vector<Response> run(const std::vector<Request>& requests);

  ResultCache& cache() { return cache_; }
  /// The disk tier, or null when Options::store.dir was empty.
  store::Store* store() { return store_.get(); }
  const store::Store* store() const { return store_.get(); }

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t computed = 0;           ///< unique computations executed
    std::uint64_t coalesced = 0;          ///< in-batch duplicates served
    std::uint64_t inflight_joins = 0;     ///< cross-batch joins served
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t errors = 0;
    std::uint64_t disk_hits = 0;          ///< served from the store tier
  };
  Stats stats() const;

  /// Push counter deltas into the global obs registry (svc.requests,
  /// svc.computed, svc.coalesced, svc.inflight_joins,
  /// svc.deadline_exceeded, svc.errors, svc.disk_hits) and forward to
  /// cache().publish_stats() and the store tier's publish_stats().
  /// No-op while observability is disabled.
  void publish_stats();

 private:
  struct Inflight;

  /// The cache/coalescing identity of a request:
  /// "<key-hex>|<kind>|<canonical params>".
  std::string composite_key(const Request& req, const InstanceKey& key) const;

  /// Compute the deterministic result payload (throws on bad input).
  std::string compute(const Request& req, const InstanceKey& key) const;

  exec::ThreadPool* pool_;
  Options opts_;
  ResultCache cache_;
  std::unique_ptr<store::Store> store_;  ///< null = no disk tier

  std::mutex inflight_m_;
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> computed_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> inflight_joins_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> disk_hits_{0};

  std::mutex publish_m_;  // serializes delta accounting only
  Stats published_;
};

}  // namespace rmt::svc

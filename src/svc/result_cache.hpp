// svc/result_cache.hpp — the sharded, byte-budgeted LRU result store.
//
// Maps a composite text key — instance key hex + query kind + canonical
// params (svc::Engine composes it) — to the serialized result payload.
// Results are cached as the exact bytes the engine returns, so a hit is
// byte-identical to the original computation by construction.
//
// Sharding: a power-of-two shard count, each shard an independent
// (mutex, LRU list, index) triple; the shard of a key is picked from the
// same frozen FNV-1a mix the instance key uses, so placement is stable
// across runs. One global lock never serializes unrelated queries — the
// contention unit is the shard, and the TSan suite (SvcCache*) races
// get/put across shards to prove it.
//
// Eviction: the budget is bytes (keys + values), divided evenly across
// shards. put() evicts least-recently-used entries of the target shard
// until the new entry fits; an entry larger than a whole shard's budget
// is not cached at all (admitting it would just evict the entire shard
// and then be evicted by the next insert). Eviction never blocks readers
// of other shards.
//
// Observability: hits/misses/evictions counters and the live byte total,
// surfaced as svc.cache.{hits,misses,evictions,bytes} by publish_stats()
// — explicit and coarse, like exec::ThreadPool::publish_stats, so the
// registry mutex stays off the lookup path.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace rmt::svc {

class ResultCache {
 public:
  struct Options {
    /// Rounded up to the next power of two; >= 1.
    std::size_t shards = 8;
    /// Total byte budget (keys + values) across all shards.
    std::size_t max_bytes = 64u << 20;
  };

  ResultCache();  ///< default Options (defined out of line for the nested
                  ///< default member initializers)
  explicit ResultCache(Options opts);

  /// The stored payload, refreshing recency; nullopt on miss.
  std::optional<std::string> get(const std::string& key);

  /// Insert or overwrite, then evict LRU entries until the shard fits its
  /// budget. A payload larger than one shard's budget is dropped.
  void put(const std::string& key, std::string value);

  std::size_t num_shards() const { return shards_.size(); }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t bytes = 0;    ///< live key+value bytes
    std::size_t entries = 0;  ///< live entry count
  };
  Stats stats() const;

  /// Push counter deltas since the last publish into the global obs
  /// registry (svc.cache.{hits,misses,evictions} counters, svc.cache.bytes
  /// gauge). No-op while observability is disabled.
  void publish_stats();

 private:
  struct Shard {
    mutable std::mutex m;
    /// Front = most recently used. Entries are (key, value).
    std::list<std::pair<std::string, std::string>> lru;
    std::unordered_map<std::string, decltype(lru)::iterator> index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_of(const std::string& key);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_budget_ = 0;

  std::mutex publish_m_;  // serializes delta accounting only
  std::uint64_t published_hits_ = 0;
  std::uint64_t published_misses_ = 0;
  std::uint64_t published_evictions_ = 0;
};

}  // namespace rmt::svc

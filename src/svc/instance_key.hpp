// svc/instance_key.hpp — content-addressed identity for RMT instances.
//
// The serving layer memoizes decide/analyze/simulate answers, which is
// sound because every query the engine exposes is a pure function of the
// instance (the PODC'16 characterizations are exact). Memoization needs an
// identity, and that identity is a content hash of the *canonical* text
// form of the instance (io::serialize_instance):
//   * Graph::edges() lists edges in canonical (a<b, ascending) order and
//     AdversaryStructure keeps its antichain in canonical sorted form, so
//     two semantically equal instances built in different orders serialize
//     to the same bytes;
//   * views are emitted as extras over the ad hoc floor, so "knowledge
//     k-hop 2" and the equivalent explicit custom views collide, as they
//     must — they denote the same γ.
//
// Stability contract (frozen): the key is part of every on-disk artifact
// that mentions it (rmt.response/1 lines, cached manifests), so its
// definition never changes within schema version 1:
//   lo = FNV-1a-64 over the canonical text (offset basis
//        0xcbf29ce484222325, prime 0x100000001b3);
//   hi = splitmix64 finalizer of lo (the exec::derive_seed mix).
// Worked example, also asserted by tests/test_svc_key.cpp: the 3-path
// instance "rmt-instance v1\nnodes 3\nedge 0 1\nedge 1 2\ndealer 0\n
// receiver 2\nknowledge adhoc\n" has key bc6adf4f00f0be648b62687f484b0ff8.
#pragma once

#include <cstdint>
#include <string>

#include "instance/instance.hpp"

namespace rmt::svc {

/// 128-bit content key; hi/lo as documented above. Collision of two
/// *distinct* canonical texts is possible in principle (it is a hash, not
/// an injection) but at 128 mixed bits is not a practical concern for the
/// cache sizes this process serves.
struct InstanceKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const InstanceKey&, const InstanceKey&) = default;

  /// 32 lowercase hex chars, hi then lo — the form artifacts carry.
  std::string to_hex() const;
};

/// FNV-1a-64 over arbitrary bytes (the frozen `lo` half). Exposed so the
/// cache can shard by the same mix without re-deriving text.
std::uint64_t fnv1a64(const std::string& bytes);

/// The canonical text the key is computed over: io::serialize_instance.
/// (A named alias so call sites say what they mean.)
std::string canonical_instance_text(const Instance& inst);

/// Key of an instance = key of its canonical text.
InstanceKey instance_key(const Instance& inst);
InstanceKey key_of_text(const std::string& canonical_text);

/// The canonical representative of an instance's equivalence class:
/// parse(serialize(inst)). serialize ∘ parse is a fixed point on its
/// output (asserted over every shipped example instance by test_io), so
/// canonicalize(canonicalize(x)) == canonicalize(x) and two instances
/// with equal keys canonicalize identically.
Instance canonicalize(const Instance& inst);

}  // namespace rmt::svc

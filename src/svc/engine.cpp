#include "svc/engine.hpp"

#include <chrono>
#include <exception>

#include "analysis/feasibility.hpp"
#include "analysis/rmt_cut.hpp"
#include "analysis/zpp_cut.hpp"
#include "exec/campaign.hpp"
#include "exec/thread_pool.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "protocols/rmt_pka.hpp"
#include "protocols/runner.hpp"
#include "sim/strategies.hpp"
#include "util/check.hpp"

namespace rmt::svc {

namespace {

/// Same vocabulary as bench_util's make_strategy; duplicated here because
/// bench/ headers are not part of the library. Unknown names throw — a
/// typo'd request must fail loudly, not silently run a different attack.
std::unique_ptr<sim::AdversaryStrategy> make_strategy(const std::string& name,
                                                      std::uint64_t seed) {
  if (name == "silent") return std::make_unique<sim::SilentStrategy>();
  if (name == "value-flip") return std::make_unique<sim::ValueFlipStrategy>();
  if (name == "random-lies") return std::make_unique<sim::RandomLieStrategy>(Rng{seed}, 4);
  if (name == "phantom-world") return std::make_unique<sim::FictitiousWorldStrategy>();
  if (name == "two-faced") return std::make_unique<sim::TwoFacedStrategy>();
  throw std::invalid_argument("unknown adversary strategy '" + name + "'");
}

/// Span-attribute spelling of a response status. Deliberately duplicates
/// wire::to_string: the engine must not depend on the wire layer above it.
const char* status_name(Response::Status status) {
  switch (status) {
    case Response::Status::kOk: return "ok";
    case Response::Status::kDeadlineExceeded: return "deadline_exceeded";
    case Response::Status::kError: return "error";
  }
  return "unknown";
}

void write_witness(obs::json::Writer& w, const NodeSet& c1, const NodeSet& c2,
                   const NodeSet& b) {
  w.begin_object();
  w.field("c1", c1.to_string());
  w.field("c2", c2.to_string());
  w.field("b", b.to_string());
  w.end_object();
}

}  // namespace

const char* to_string(QueryKind kind) {
  switch (kind) {
    case QueryKind::kDecideRmt: return "decide_rmt";
    case QueryKind::kDecideZpp: return "decide_zpp";
    case QueryKind::kAnalyze: return "analyze";
    case QueryKind::kSimulate: return "simulate";
  }
  return "unknown";
}

std::optional<QueryKind> parse_query_kind(const std::string& name) {
  if (name == "decide_rmt") return QueryKind::kDecideRmt;
  if (name == "decide_zpp") return QueryKind::kDecideZpp;
  if (name == "analyze") return QueryKind::kAnalyze;
  if (name == "simulate") return QueryKind::kSimulate;
  return std::nullopt;
}

struct Engine::Inflight {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  Response::Status status = Response::Status::kOk;
  std::string result;
  std::string error;
  /// The owner's "svc.compute" span id (0 when tracing was off or the
  /// computation never started); joiners' "svc.join" spans reference it.
  std::uint64_t compute_span = 0;
};

Engine::Engine(exec::ThreadPool* pool) : Engine(pool, Options{}) {}

Engine::Engine(exec::ThreadPool* pool, Options opts)
    : pool_(pool), opts_(opts), cache_(opts.cache) {
  // The disk tier opens (and recovers) eagerly: a hostile store file
  // rejects at construction, not on the first served request.
  if (!opts_.store.dir.empty()) store_ = std::make_unique<store::Store>(opts_.store);
}

std::string Engine::composite_key(const Request& req, const InstanceKey& key) const {
  std::string out = key.to_hex();
  out += '|';
  out += to_string(req.kind);
  if (req.kind == QueryKind::kSimulate) {
    const SimParams& p = req.params;
    const std::uint64_t seed =
        p.seed ? *p.seed : exec::derive_seed(opts_.root_seed, key.lo);
    out += "|corrupt=" + p.corrupted.to_string();
    out += ";max_rounds=" + std::to_string(p.max_rounds);
    out += ";seed=" + std::to_string(seed);
    out += ";strategy=" + p.strategy;
    out += ";value=" + std::to_string(p.value);
  }
  return out;
}

std::string Engine::compute(const Request& req, const InstanceKey& key) const {
  const Instance& inst = req.instance;
  obs::json::Writer w;
  w.begin_object();
  w.field("kind", to_string(req.kind));
  switch (req.kind) {
    case QueryKind::kDecideRmt: {
      const auto cut = analysis::find_rmt_cut(inst);
      w.field("solvable", !cut.has_value());
      w.key("witness");
      if (cut) write_witness(w, cut->c1, cut->c2, cut->b);
      else w.null();
      break;
    }
    case QueryKind::kDecideZpp: {
      const auto cut = analysis::find_rmt_zpp_cut(inst);
      w.field("solvable", !cut.has_value());
      w.key("witness");
      if (cut) write_witness(w, cut->c1, cut->c2, cut->b);
      else w.null();
      break;
    }
    case QueryKind::kAnalyze: {
      const auto rmt_cut = analysis::find_rmt_cut(inst);
      const auto zpp = analysis::find_rmt_zpp_cut(inst);
      const bool full = analysis::solvable_full_knowledge(inst.graph(), inst.adversary(),
                                                          inst.dealer(), inst.receiver());
      w.field("rmt_solvable", !rmt_cut.has_value());
      w.key("rmt_cut_witness");
      if (rmt_cut) write_witness(w, rmt_cut->c1, rmt_cut->c2, rmt_cut->b);
      else w.null();
      w.field("zcpa_solvable", !zpp.has_value());
      w.field("full_knowledge_solvable", full);
      break;
    }
    case QueryKind::kSimulate: {
      const SimParams& p = req.params;
      if (!inst.admissible_corruption(p.corrupted))
        throw std::invalid_argument("corruption set " + p.corrupted.to_string() +
                                    " is not admissible under Z");
      const std::uint64_t seed =
          p.seed ? *p.seed : exec::derive_seed(opts_.root_seed, key.lo);
      const auto strategy = make_strategy(p.strategy, seed);
      const protocols::Outcome out = protocols::run_rmt(
          inst, protocols::RmtPka{}, p.value, p.corrupted, strategy.get(), p.max_rounds);
      w.field("value", p.value);
      w.field("corrupted", p.corrupted.to_string());
      w.field("strategy", p.strategy);
      w.field("seed", seed);
      w.key("decision");
      if (out.decision) w.value(std::uint64_t(*out.decision));
      else w.null();
      w.field("correct", out.correct);
      w.field("wrong", out.wrong);
      w.field("rounds", std::uint64_t(out.stats.rounds));
      w.field("honest_messages", std::uint64_t(out.stats.honest_messages));
      break;
    }
  }
  w.end_object();
  return w.take();
}

std::vector<Response> Engine::run(const std::vector<Request>& requests) {
  RMT_OBS_SCOPE("svc.batch");
  RMT_TRACE_SPAN("svc.batch");
  using clock = std::chrono::steady_clock;
  const clock::time_point t0 = clock::now();
  const auto elapsed_ms = [&t0] {
    return std::chrono::duration<double, std::milli>(clock::now() - t0).count();
  };
  const auto elapsed_us = [&t0] {
    return std::chrono::duration<double, std::micro>(clock::now() - t0).count();
  };

  const std::size_t n = requests.size();
  requests_.fetch_add(n, std::memory_order_relaxed);
  std::vector<Response> out(n);

  // Request-scoped tracing: each request gets a fresh root context in the
  // pre-pass; the root "svc.request" span is emitted when its response is
  // final (timestamps are captured eagerly, records lazily).
  const bool tracing = obs::trace::enabled();
  struct ReqTrace {
    obs::trace::TraceContext ctx;
    std::uint64_t start_ns = 0;
  };
  std::vector<ReqTrace> rtr(tracing ? n : 0);
  bool any_deadline = false;
  // cache_tag: "hit" / "miss" / "bypass" (no_cache) / "none" (rejected
  // before lookup); join_tag: "batch" / "inflight" / null (owned leader).
  const auto emit_root = [&](std::size_t i, const char* cache_tag, const char* join_tag) {
    obs::trace::SpanRecord rec;
    rec.trace_id = rtr[i].ctx.trace_id;
    rec.span_id = rtr[i].ctx.span_id;
    rec.set_name(RMT_TRACE_NAME("svc.request"));
    rec.start_ns = rtr[i].start_ns;
    rec.end_ns = obs::trace::now_ns();
    rec.add_attr("kind", to_string(requests[i].kind));
    rec.add_attr("status", status_name(out[i].status));
    rec.add_attr("cache", cache_tag);
    if (join_tag != nullptr) rec.add_attr("join", join_tag);
    rec.add_attr("coalesced", out[i].coalesced);
    rec.add_attr("bytes", std::uint64_t(out[i].result.size()));
    obs::trace::emit(rec);
  };

  // A unit of computation: the first request of each composite key leads;
  // in-batch duplicates follow; a key another batch is already computing
  // is joined instead of claimed.
  struct Job {
    std::size_t leader = 0;
    std::vector<std::size_t> followers;
    std::shared_ptr<Inflight> slot;
    InstanceKey ikey;        ///< computed once in the pre-pass
    std::string ckey;        ///< composite cache key, ditto
    bool owner = false;      ///< this batch computes the slot
    bool store = false;      ///< any attached request allows caching
    double start_ms = -1;    ///< compute start (owner jobs; -1 = never ran)
    double claim_ms = 0;     ///< when the key was claimed/joined
    obs::trace::TraceContext ctx;  ///< leader's root context (tracing only)
  };
  std::vector<Job> jobs;
  std::unordered_map<std::string, std::size_t> job_of_key;

  // Pre-pass (caller thread): reject expired, serve cache hits, group the
  // rest by composite key and claim/join the in-flight slot per group.
  for (std::size_t i = 0; i < n; ++i) {
    const Request& req = requests[i];
    const InstanceKey key = instance_key(req.instance);
    out[i].key = key.to_hex();
    if (tracing) {
      rtr[i].ctx = obs::trace::new_root_context();
      rtr[i].start_ns = obs::trace::now_ns();
      out[i].trace_id = rtr[i].ctx.trace_id;
      out[i].root_span = rtr[i].ctx.span_id;
    }
    if (req.deadline_ms && elapsed_ms() >= double(*req.deadline_ms)) {
      out[i].status = Response::Status::kDeadlineExceeded;
      out[i].wall_us = elapsed_us();
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      if (tracing) {
        any_deadline = true;
        emit_root(i, "none", nullptr);
      }
      continue;
    }
    const std::string ckey = composite_key(req, key);
    if (!req.no_cache) {
      if (std::optional<std::string> hit = cache_.get(ckey)) {
        out[i].status = Response::Status::kOk;
        out[i].result = std::move(*hit);
        out[i].cached = true;
        out[i].wall_us = elapsed_us();
        if (tracing) emit_root(i, "hit", nullptr);
        continue;
      }
      // Memory missed: consult the disk tier. A verified disk hit is
      // promoted into the memory cache so the next asker skips the read.
      if (store_) {
        if (std::optional<std::string> hit = store_->get(ckey)) {
          cache_.put(ckey, *hit);
          out[i].status = Response::Status::kOk;
          out[i].result = std::move(*hit);
          out[i].cached = true;
          out[i].wall_us = elapsed_us();
          disk_hits_.fetch_add(1, std::memory_order_relaxed);
          if (tracing) emit_root(i, "disk", nullptr);
          continue;
        }
      }
    }
    if (const auto it = job_of_key.find(ckey); it != job_of_key.end()) {
      jobs[it->second].followers.push_back(i);
      jobs[it->second].store = jobs[it->second].store || !req.no_cache;
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Job job;
    job.leader = i;
    job.ikey = key;
    job.ckey = ckey;
    job.store = !req.no_cache;
    job.claim_ms = elapsed_ms();
    if (tracing) job.ctx = rtr[i].ctx;
    {
      std::lock_guard<std::mutex> lock(inflight_m_);
      if (const auto inflight_it = inflight_.find(ckey); inflight_it != inflight_.end()) {
        job.slot = inflight_it->second;  // join the other batch's computation
        inflight_joins_.fetch_add(1, std::memory_order_relaxed);
      } else {
        job.slot = std::make_shared<Inflight>();
        job.owner = true;
        inflight_.emplace(ckey, job.slot);
      }
    }
    job_of_key.emplace(ckey, jobs.size());
    jobs.push_back(std::move(job));
  }

  // Owned jobs run on the pool, one task each (requests are the batching
  // unit; each computation is itself sequential and deterministic).
  std::vector<std::size_t> owned;
  for (std::size_t j = 0; j < jobs.size(); ++j)
    if (jobs[j].owner) owned.push_back(j);
  exec::parallel_for(pool_, 0, owned.size(), 1, [&](std::size_t k) {
    Job& job = jobs[owned[k]];
    const Request& req = requests[job.leader];
    // Compute under the leader's root context so the "svc.compute" span —
    // and every decider phase span inside it — nests under the owning
    // request even when this task landed on a pool worker.
    obs::trace::ContextGuard trace_guard(job.ctx);
    job.start_ms = elapsed_ms();
    // Reject-before-start: compute only if some attached request is still
    // inside its deadline; a running decider is never killed afterwards.
    const auto live_at_start = [&](std::size_t idx) {
      return !requests[idx].deadline_ms ||
             job.start_ms < double(*requests[idx].deadline_ms);
    };
    bool any_live = live_at_start(job.leader);
    for (std::size_t f : job.followers) any_live = any_live || live_at_start(f);
    Inflight& slot = *job.slot;
    std::string result, error;
    Response::Status status = Response::Status::kOk;
    std::uint64_t compute_span = 0;
    if (any_live) {
      RMT_OBS_SCOPE("svc.compute");
      RMT_TRACE_SPAN("svc.compute");
      compute_span = obs::trace::current().span_id;
      try {
        result = compute(req, job.ikey);
        computed_.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::exception& e) {
        status = Response::Status::kError;
        error = e.what();
      }
    } else {
      status = Response::Status::kDeadlineExceeded;
    }
    {
      std::lock_guard<std::mutex> lock(slot.m);
      slot.status = status;
      slot.result = result;
      slot.error = error;
      slot.compute_span = compute_span;
      slot.done = true;
    }
    slot.cv.notify_all();
    if (status == Response::Status::kOk && job.store) {
      cache_.put(job.ckey, result);
      if (store_) {
        // Write-back through the disk tier too (runs on a pool worker;
        // the store is internally locked). A full or failing disk must
        // not poison an answer that was already computed and served.
        try {
          store_->put(job.ckey, result);
        } catch (const std::exception&) {
        }
      }
    }
  });

  // Fill phase: joined slots may still be computing in another batch —
  // the caller thread waits for them here (never a pool worker, see the
  // header contract).
  for (Job& job : jobs) {
    Inflight& slot = *job.slot;
    {
      std::unique_lock<std::mutex> lock(slot.m);
      slot.cv.wait(lock, [&slot] { return slot.done; });
    }
    const double start_ms = job.owner ? job.start_ms : job.claim_ms;
    const auto fill = [&](std::size_t idx, bool is_leader) {
      const Request& req = requests[idx];
      Response& resp = out[idx];
      if (slot.status == Response::Status::kDeadlineExceeded ||
          (req.deadline_ms && start_ms >= double(*req.deadline_ms))) {
        resp.status = Response::Status::kDeadlineExceeded;
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        any_deadline = true;
      } else if (slot.status == Response::Status::kError) {
        resp.status = Response::Status::kError;
        resp.error = slot.error;
        errors_.fetch_add(1, std::memory_order_relaxed);
      } else {
        resp.status = Response::Status::kOk;
        resp.result = slot.result;
        resp.coalesced = !(job.owner && is_leader);
      }
      resp.wall_us = elapsed_us();
    };
    fill(job.leader, true);
    for (std::size_t f : job.followers) fill(f, false);

    if (tracing) {
      // Coalescing is explicit in the trace: every request that shared
      // the computation gets a "svc.join" span (child of its own root)
      // referencing the leader's compute span — in-batch followers and
      // cross-batch inflight joiners alike. Joins close before roots so
      // intervals nest.
      const std::uint64_t leader_target =
          slot.compute_span != 0 ? slot.compute_span : rtr[job.leader].ctx.span_id;
      const auto emit_join = [&](std::size_t idx) {
        obs::trace::SpanRecord rec;
        rec.trace_id = rtr[idx].ctx.trace_id;
        rec.span_id = obs::trace::next_id();
        rec.parent_span_id = rtr[idx].ctx.span_id;
        rec.set_name(RMT_TRACE_NAME("svc.join"));
        rec.join_span_id = leader_target;
        rec.start_ns = rtr[idx].start_ns;
        rec.end_ns = obs::trace::now_ns();
        obs::trace::emit(rec);
      };
      if (!job.owner) emit_join(job.leader);
      for (std::size_t f : job.followers) emit_join(f);
      emit_root(job.leader, requests[job.leader].no_cache ? "bypass" : "miss",
                job.owner ? nullptr : "inflight");
      for (std::size_t f : job.followers)
        emit_root(f, requests[f].no_cache ? "bypass" : "miss", "batch");
    }
  }

  // Release owned slots only after their results are filled everywhere;
  // a future batch then starts fresh (and will hit the cache instead).
  {
    std::lock_guard<std::mutex> lock(inflight_m_);
    for (const auto& [ckey, j] : job_of_key)
      if (jobs[j].owner) inflight_.erase(ckey);
  }

  if (obs::enabled()) {
    obs::Histogram& h = obs::Registry::global().histogram("svc.request_us");
    for (const Response& resp : out) h.observe(resp.wall_us);
  }
  // Flight-recorder dump on deadline_exceeded: when a dump path is
  // configured (rmt_serve --trace-out), the spans leading up to a missed
  // deadline are preserved for post-mortem before the ring overwrites
  // them. No-op otherwise.
  if (tracing && any_deadline) obs::trace::Recorder::global().dump_now("deadline_exceeded");
  return out;
}

Engine::Stats Engine::stats() const {
  Stats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.computed = computed_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.inflight_joins = inflight_joins_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.disk_hits = disk_hits_.load(std::memory_order_relaxed);
  return s;
}

void Engine::publish_stats() {
  cache_.publish_stats();
  if (store_) store_->publish_stats();
  if (!obs::enabled()) return;
  const Stats now = stats();
  std::lock_guard<std::mutex> lock(publish_m_);
  obs::Registry& reg = obs::Registry::global();
  reg.counter("svc.requests").inc(now.requests - published_.requests);
  reg.counter("svc.computed").inc(now.computed - published_.computed);
  reg.counter("svc.coalesced").inc(now.coalesced - published_.coalesced);
  reg.counter("svc.inflight_joins").inc(now.inflight_joins - published_.inflight_joins);
  reg.counter("svc.deadline_exceeded").inc(now.deadline_exceeded - published_.deadline_exceeded);
  reg.counter("svc.errors").inc(now.errors - published_.errors);
  reg.counter("svc.disk_hits").inc(now.disk_hits - published_.disk_hits);
  published_ = now;
}

}  // namespace rmt::svc

#include "svc/wire.hpp"

#include <stdexcept>

#include "io/serialize.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace rmt::svc::wire {

namespace {

const obs::json::Value& require(const obs::json::Value& doc, const std::string& key) {
  const obs::json::Value* v = doc.find(key);
  if (!v) throw std::invalid_argument("rmt.request/1: missing field '" + key + "'");
  return *v;
}

std::string require_string(const obs::json::Value& doc, const std::string& key) {
  const obs::json::Value& v = require(doc, key);
  if (v.kind() != obs::json::Value::Kind::kString)
    throw std::invalid_argument("rmt.request/1: field '" + key + "' must be a string");
  return v.as_string();
}

}  // namespace

const char* to_string(Response::Status status) {
  switch (status) {
    case Response::Status::kOk: return "ok";
    case Response::Status::kDeadlineExceeded: return "deadline_exceeded";
    case Response::Status::kError: return "error";
  }
  return "unknown";
}

ParsedRequest parse_request(const std::string& line) {
  if (line.size() > kMaxRequestBytes)
    throw std::invalid_argument("rmt.request/1: line exceeds " +
                                std::to_string(kMaxRequestBytes) + " bytes (got " +
                                std::to_string(line.size()) + ")");
  const obs::json::Value doc = obs::json::Value::parse(line);
  if (!doc.is_object()) throw std::invalid_argument("rmt.request/1: not a JSON object");
  if (require_string(doc, "schema") != kRequestSchema)
    throw std::invalid_argument("rmt.request/1: unexpected schema value");
  const std::string id = require_string(doc, "id");
  const std::string kind_name = require_string(doc, "kind");
  const std::optional<QueryKind> kind = parse_query_kind(kind_name);
  if (!kind)
    throw std::invalid_argument("rmt.request/1: unknown kind '" + kind_name + "'");

  Instance inst = io::parse_instance_string(require_string(doc, "instance"));

  SimParams params;
  if (const obs::json::Value* p = doc.find("params")) {
    if (!p->is_object())
      throw std::invalid_argument("rmt.request/1: 'params' must be an object");
    if (const obs::json::Value* v = p->find("value")) params.value = v->as_u64();
    if (const obs::json::Value* v = p->find("corrupted")) {
      for (const obs::json::Value& node : v->array())
        params.corrupted.insert(NodeId(node.as_u64()));
    }
    if (const obs::json::Value* v = p->find("strategy")) params.strategy = v->as_string();
    if (const obs::json::Value* v = p->find("seed")) params.seed = v->as_u64();
    if (const obs::json::Value* v = p->find("max_rounds"))
      params.max_rounds = std::size_t(v->as_u64());
  }

  std::optional<std::uint64_t> deadline_ms;
  if (const obs::json::Value* v = doc.find("deadline_ms")) deadline_ms = v->as_u64();
  bool no_cache = false;
  if (const obs::json::Value* v = doc.find("no_cache")) no_cache = v->as_bool();

  return ParsedRequest{id, Request{*kind, std::move(inst), params, deadline_ms, no_cache}};
}

std::string extract_id(const std::string& line) {
  try {
    const obs::json::Value doc = obs::json::Value::parse(line);
    if (!doc.is_object()) return "";
    const obs::json::Value* v = doc.find("id");
    if (v && v->kind() == obs::json::Value::Kind::kString) return v->as_string();
  } catch (const std::invalid_argument&) {
    // fall through: the line is not even JSON
  }
  return "";
}

std::string format_response(const std::string& id, const Response& resp) {
  obs::json::Writer w;
  w.begin_object();
  w.field("schema", kResponseSchema);
  w.field("id", id);
  w.field("status", to_string(resp.status));
  w.key("key");
  if (resp.key.empty()) w.null();
  else w.value(resp.key);
  w.key("result");
  if (resp.status == Response::Status::kOk) w.raw_value(resp.result);
  else w.null();
  w.key("error");
  if (resp.status == Response::Status::kError) w.value(resp.error);
  else w.null();
  w.field("cached", resp.cached);
  w.field("coalesced", resp.coalesced);
  w.field("wall_us", resp.wall_us);
  w.key("trace_id");
  if (resp.trace_id != 0) w.value(obs::trace::id_hex(resp.trace_id));
  else w.null();
  w.end_object();
  return w.take();
}

std::string format_parse_error(const std::string& id, const std::string& message) {
  Response resp;
  resp.status = Response::Status::kError;
  resp.error = message;
  return format_response(id, resp);
}

std::string probe_kind(const std::string& line) {
  if (line.size() > kMaxRequestBytes) return "";
  try {
    const obs::json::Value doc = obs::json::Value::parse(line);
    if (!doc.is_object()) return "";
    const obs::json::Value* kind = doc.find("kind");
    if (!kind || kind->kind() != obs::json::Value::Kind::kString) return "";
    const std::string name = kind->as_string();
    return (name == "stats" || name == "trace") ? name : "";
  } catch (const std::invalid_argument&) {
    return "";
  }
}

namespace {

/// The shared probe-response envelope: an "ok" response whose result is
/// `body` (a serialized JSON object) and whose volatile fields are inert.
std::string probe_envelope(const std::string& id, const std::string& body) {
  obs::json::Writer w;
  w.begin_object();
  w.field("schema", kResponseSchema);
  w.field("id", id);
  w.field("status", "ok");
  w.key("key").null();
  w.key("result").raw_value(body);
  w.key("error").null();
  w.field("cached", false);
  w.field("coalesced", false);
  w.field("wall_us", 0.0);
  w.key("trace_id").null();
  w.end_object();
  return w.take();
}

}  // namespace

std::string format_stats_response(const std::string& id, Engine& engine,
                                  const std::string& extra_key,
                                  const std::string& extra_json) {
  const Engine::Stats e = engine.stats();
  const ResultCache::Stats c = engine.cache().stats();
  obs::json::Writer w;
  w.begin_object();
  w.field("kind", "stats");
  w.key("engine").begin_object();
  w.field("requests", e.requests);
  w.field("computed", e.computed);
  w.field("coalesced", e.coalesced);
  w.field("inflight_joins", e.inflight_joins);
  w.field("deadline_exceeded", e.deadline_exceeded);
  w.field("errors", e.errors);
  w.field("disk_hits", e.disk_hits);
  w.end_object();
  w.key("cache").begin_object();
  w.field("hits", c.hits);
  w.field("misses", c.misses);
  w.field("evictions", c.evictions);
  w.field("bytes", std::uint64_t(c.bytes));
  w.field("entries", std::uint64_t(c.entries));
  w.end_object();
  // The disk tier reports only when configured, so memory-only consumers
  // keep seeing the exact pre-store stats shape.
  if (const store::Store* s = engine.store()) {
    const store::Stats st = s->stats();
    w.key("store").begin_object();
    w.field("hits", st.hits);
    w.field("misses", st.misses);
    w.field("appends", st.appends);
    w.field("read_errors", st.read_errors);
    w.field("compactions", st.compactions);
    w.field("evictions", st.evictions);
    w.field("repairs", st.repairs);
    w.field("merged", st.merged);
    w.field("records", st.records);
    w.field("live_records", st.live_records);
    w.field("bytes", st.bytes);
    w.field("live_bytes", st.live_bytes);
    w.field("generation", st.generation);
    w.end_object();
  }
  if (!extra_key.empty()) w.key(extra_key).raw_value(extra_json);
  w.end_object();
  return probe_envelope(id, w.take());
}

std::string format_trace_response(const std::string& id) {
  const obs::trace::Recorder& rec = obs::trace::Recorder::global();
  // snapshot() first: it drains the per-thread buffers, so the header's
  // recorded count then agrees with the spans array.
  const std::vector<obs::trace::SpanRecord> spans = rec.snapshot();
  obs::json::Writer w;
  w.begin_object();
  w.field("kind", "trace");
  w.key("header").raw_value(obs::trace::header_json(rec.header()));
  w.key("spans").begin_array();
  for (const obs::trace::SpanRecord& s : spans) w.raw_value(obs::trace::span_json(s));
  w.end_array();
  w.end_object();
  return probe_envelope(id, w.take());
}

}  // namespace rmt::svc::wire

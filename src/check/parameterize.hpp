// check/parameterize.hpp — the PARAMETERIZE-style product-set harness.
//
// One declaration runs a property over the cross product of several axes
// (graph family × adversary-structure family × view floor × D,R placement ×
// worker count — or any other axes a test wants). Each axis is declared
// once with RMT_PARAMETERIZE/RMT_OPTION; a Runner then sweeps the full
// product in lexicographic coordinate order:
//
//   RMT_PARAMETERIZE(small_graphs, Graph, g,
//       RMT_OPTION(g, generators::path_graph(5));
//       RMT_OPTION(g, generators::cycle_graph(6));
//   )
//
//   propcheck::Runner runner({/*root_seed=*/7});
//   Graph g; std::size_t k;
//   const propcheck::Result r = runner.check(
//       [&](std::uint64_t cell_seed) { /* property; throw to fail */ },
//       RMT_PC_AXIS(small_graphs, g), RMT_PC_AXIS(view_floors, k));
//
// Determinism contract (frozen, like rmt.campaign/1 seeds):
//   * cells are visited in lexicographic coordinate order — coordinate
//     (0,0,...,0) first, last axis fastest;
//   * every cell's seed is the exec::derive_seed splitmix64 chain folded
//     over its coordinates from the runner's root seed. The seed is a pure
//     function of (root_seed, coordinates): independent of wall clock,
//     sweep count, other axes' contents, and of which cells fail.
//
// Failing-cell minimization: the sweep is exhaustive, so the harness
// *knows* every failing coordinate; the shrunk repro is the
// lexicographically-least failing coordinate (the global minimum — no
// search heuristics involved). The runner then re-executes exactly that
// one cell in targeted mode to prove the repro is deterministic, and
// Result::summary() prints it as a coordinate/label/seed triple.
//
// Properties signal failure by throwing (RMT_CHECK/RMT_REQUIRE, gtest
// ASSERT wrappers, plain std::runtime_error) or by returning false; any
// other return completes the cell.
#pragma once

#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/campaign.hpp"
#include "util/check.hpp"

namespace rmt::propcheck {

/// One failing cell: where (coordinates + human labels), how to reproduce
/// (the derived seed) and what went wrong.
struct CellFailure {
  std::vector<std::size_t> coord;  ///< option index per axis, outermost first
  std::string labels;              ///< "var = expr / var = expr / ..."
  std::uint64_t seed = 0;          ///< the cell's derived seed
  std::string message;             ///< exception text ("" = returned false)
};

/// Outcome of one product sweep.
struct Result {
  std::size_t cells = 0;                 ///< cells executed by the sweep
  std::vector<std::size_t> shape;        ///< option count per axis
  std::vector<CellFailure> failures;     ///< every failing cell, sweep order
  /// The lexicographically-least failing coordinate (== failures.front(),
  /// since the sweep is lexicographic), re-executed in targeted mode.
  std::optional<CellFailure> minimal;
  /// The targeted re-run of `minimal` failed again with the same seed —
  /// the repro is deterministic.
  bool minimal_reproduced = false;

  bool ok() const { return failures.empty(); }
  std::string summary() const;
};

class Runner {
 public:
  struct Options {
    std::uint64_t root_seed = 0x9c0ffee0;  ///< frozen default for the suite
    bool shrink = true;  ///< minimize + reproduce on failure
  };

  Runner() = default;
  explicit Runner(Options opts) : opts_(opts) {}

  /// Sweep the product of `axes` and run `property` in every cell.
  /// Each axis is a callable (Runner&, next) that assigns its bound
  /// variable per option and descends — what RMT_PC_AXIS builds from an
  /// RMT_PARAMETERIZE declaration.
  template <typename Property, typename... Axes>
  Result check(Property&& property, Axes&&... axes) {
    Result result;
    mode_ = Mode::kSweep;
    begin_pass();
    descend(
        [&] {
          result.cells += 1;
          run_property_cell(property, result.failures);
        },
        axes...);
    result.shape = shape_;
    if (!result.failures.empty() && opts_.shrink) {
      // Lexicographic sweep order makes the first recorded failure the
      // lexicographically-least failing coordinate; re-run exactly that
      // cell to prove the repro stands alone.
      result.minimal = result.failures.front();
      std::vector<CellFailure> rerun;
      run_cell(result.minimal->coord,
               [&] { run_property_cell(property, rerun); }, axes...);
      result.minimal_reproduced =
          rerun.size() == 1 && rerun.front().coord == result.minimal->coord &&
          rerun.front().seed == result.minimal->seed;
    }
    return result;
  }

  /// Execute exactly one cell of the product (targeted mode): only the
  /// matching option is descended at every axis. `leaf` runs zero or one
  /// time. Exposed for tests and for custom repro drivers.
  template <typename Leaf, typename... Axes>
  void run_cell(const std::vector<std::size_t>& coord, Leaf&& leaf, Axes&&... axes) {
    mode_ = Mode::kTargeted;
    target_ = coord;
    begin_pass();
    descend(leaf, axes...);
    mode_ = Mode::kSweep;
    target_.clear();
  }

  /// The current cell's derived seed: exec::derive_seed folded over the
  /// coordinate path from root_seed. Valid inside an option/leaf scope.
  std::uint64_t cell_seed() const {
    std::uint64_t s = opts_.root_seed;
    for (const std::size_t idx : path_) s = exec::derive_seed(s, idx);
    return s;
  }

  /// Current coordinates (option index per entered axis, outermost first).
  const std::vector<std::size_t>& coord() const { return path_; }

  /// "var = expr / var = expr" labels of the current coordinate path.
  std::string cell_labels() const {
    std::string out;
    for (const std::string& l : labels_) {
      if (!out.empty()) out += " / ";
      out += l;
    }
    return out;
  }

  // -- macro protocol (RMT_OPTION calls these; not for direct use) --------

  /// Enter option `label` at the current depth. Returns true when the
  /// subtree below it should run (always in a sweep; only on coordinate
  /// match in a targeted run). Every enter is paired with leave_option().
  bool enter_option(const char* label) {
    const std::size_t depth = path_.size();
    if (counts_.size() <= depth) counts_.push_back(0);
    const std::size_t idx = counts_[depth]++;
    if (shape_.size() <= depth) shape_.push_back(0);
    if (counts_[depth] > shape_[depth]) shape_[depth] = counts_[depth];
    path_.push_back(idx);
    labels_.emplace_back(label);
    if (mode_ == Mode::kTargeted)
      return depth < target_.size() && target_[depth] == idx;
    return true;
  }

  void leave_option() {
    RMT_CHECK(!path_.empty(), "propcheck: leave_option without enter_option");
    // Children counters must restart for the next sibling subtree.
    counts_.resize(path_.size());
    path_.pop_back();
    labels_.pop_back();
  }

 private:
  enum class Mode { kSweep, kTargeted };

  void begin_pass() {
    path_.clear();
    labels_.clear();
    counts_.clear();
    shape_.clear();
  }

  // Fold the axis pack into nested descents; the innermost call is `leaf`.
  template <typename Leaf>
  void descend(Leaf&& leaf) {
    leaf();
  }
  template <typename Leaf, typename Axis0, typename... Rest>
  void descend(Leaf&& leaf, Axis0&& axis0, Rest&&... rest) {
    axis0(*this, [&] { descend(leaf, rest...); });
  }

  // Run `property` in the current cell, recording a CellFailure on throw
  // or (for bool-returning properties) on false.
  template <typename Property>
  void run_property_cell(Property& property, std::vector<CellFailure>& failures) {
    const std::uint64_t seed = cell_seed();
    std::string message;
    bool failed = false;
    try {
      if constexpr (std::is_convertible_v<decltype(property(seed)), bool>) {
        if (!property(seed)) failed = true;
      } else {
        property(seed);
      }
    } catch (const std::exception& e) {
      failed = true;
      message = e.what();
    } catch (...) {
      failed = true;
      message = "(non-std exception)";
    }
    if (failed) failures.push_back(CellFailure{path_, cell_labels(), seed, message});
  }

  Options opts_;
  Mode mode_ = Mode::kSweep;
  std::vector<std::size_t> target_;  // targeted-mode coordinates

  std::vector<std::size_t> path_;    // current coordinates
  std::vector<std::string> labels_;  // current option labels
  std::vector<std::size_t> counts_;  // options seen per depth, current parent
  std::vector<std::size_t> shape_;   // max options seen per depth this pass
};

inline std::string Result::summary() const {
  std::string out = "propcheck: " + std::to_string(cells) + " cells (";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) out += "x";
    out += std::to_string(shape[i]);
  }
  out += "), " + std::to_string(failures.size()) + " failing";
  if (minimal) {
    out += "; minimal failing cell [";
    for (std::size_t i = 0; i < minimal->coord.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(minimal->coord[i]);
    }
    out += "] " + minimal->labels + " seed=" + std::to_string(minimal->seed) +
           (minimal_reproduced ? " (reproduced)" : " (NOT reproduced)");
    if (!minimal->message.empty()) out += ": " + minimal->message;
  }
  return out;
}

}  // namespace rmt::propcheck

// -- declaration macros -------------------------------------------------------

/// Declare a reusable axis: a function `name` that, per RMT_OPTION, assigns
/// `var` and descends into the rest of the product. Mirrors exotracker's
/// PARAMETERIZE(name, T, var, OPTION...) shape, minus the subcase re-entry
/// (the Runner enumerates the product in one pass).
#define RMT_PARAMETERIZE(name, T, var, ...)                                   \
  template <typename RmtPcNext>                                               \
  void name(::rmt::propcheck::Runner& rmt_pc_runner, T& var,                  \
            RmtPcNext&& rmt_pc_next) {                                        \
    __VA_ARGS__                                                               \
  }

/// One option of an axis: assign and descend. The value expression is the
/// option's label in failure reports.
#define RMT_OPTION(var, ...)                                                  \
  do {                                                                        \
    if (rmt_pc_runner.enter_option(#var " = " #__VA_ARGS__)) {                \
      var = (__VA_ARGS__);                                                    \
      rmt_pc_next();                                                          \
    }                                                                         \
    rmt_pc_runner.leave_option();                                             \
  } while (0)

/// Bind an RMT_PARAMETERIZE axis to its variable for Runner::check — the
/// PICK-composition step: check(prop, RMT_PC_AXIS(a, x), RMT_PC_AXIS(b, y))
/// sweeps the a×b product assigning x and y per cell.
#define RMT_PC_AXIS(name, var)                                                \
  [&](::rmt::propcheck::Runner& rmt_pc_axis_runner, auto&& rmt_pc_axis_next) { \
    name(rmt_pc_axis_runner, var, rmt_pc_axis_next);                          \
  }

#include "check/fuzz.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "adversary/threshold.hpp"
#include "store/format.hpp"
#include "exec/campaign.hpp"
#include "exec/thread_pool.hpp"
#include "graph/generators.hpp"
#include "io/serialize.hpp"
#include "svc/engine.hpp"
#include "util/audit.hpp"
#include "util/check.hpp"
#include "util/simd.hpp"

namespace rmt::propcheck {

namespace {

// Independent derivation domains off the root seed, so adding mutants
// never shifts the differential stream (and vice versa). Frozen: repro
// seeds recorded in artifacts and regression comments depend on them.
constexpr std::uint64_t kMutantDomain = 0x4d55544e;  // "MUTN"
constexpr std::uint64_t kDiffDomain = 0x44494646;    // "DIFF"
constexpr std::uint64_t kKernelDomain = 0x4b524e4c;  // "KRNL"
constexpr std::uint64_t kStoreDomain = 0x53544f52;   // "STOR"

std::uint64_t unit_seed(std::uint64_t root, std::uint64_t domain, std::uint64_t index) {
  return exec::derive_seed(exec::derive_seed(root, domain), index);
}

// --- mutation ---------------------------------------------------------------

const char* const kVocabulary[] = {
    "rmt-instance", "v1",       "nodes",  "edge",     "dealer", "receiver",
    "corruptible",  "knowledge", "adhoc",  "full",     "k-hop",  "custom",
    "view",         "view-edge", ":",      "#",        "v2",     "-1",
};

const char* const kBoundaryNumbers[] = {
    "0", "1", "2", "26", "27", "63", "64", "65", "4294967295",
    "18446744073709551615", "-1", "999999999999999999999",
};

bool is_number_token(const std::string& tok) {
  if (tok.empty()) return false;
  std::size_t i = tok[0] == '-' ? 1 : 0;
  if (i == tok.size()) return false;
  for (; i < tok.size(); ++i)
    if (tok[i] < '0' || tok[i] > '9') return false;
  return true;
}

std::string mutate_bytes(const std::string& text, Rng& rng) {
  std::string out = text;
  switch (rng.index(4)) {
    case 0: {  // flip one bit
      if (out.empty()) return out + char(rng.index(256));
      out[rng.index(out.size())] ^= char(1u << rng.index(8));
      return out;
    }
    case 1: {  // insert a byte (printable-biased, occasionally hostile)
      const char pool[] = " 0123456789abcdexyz:#\n\t\r\0-";
      const char c = pool[rng.index(sizeof(pool))];
      out.insert(out.begin() + long(rng.index(out.size() + 1)), c);
      return out;
    }
    case 2: {  // erase a byte
      if (out.empty()) return out;
      out.erase(out.begin() + long(rng.index(out.size())));
      return out;
    }
    default: {  // duplicate a short span
      if (out.empty()) return out;
      const std::size_t at = rng.index(out.size());
      const std::size_t len = std::min(out.size() - at, 1 + rng.index(16));
      out.insert(at, out.substr(at, len));
      return out;
    }
  }
}

std::string mutate_tokens(const std::string& text, Rng& rng) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  if (lines.empty()) lines.emplace_back();
  switch (rng.index(5)) {
    case 0:  // duplicate a line
      lines.insert(lines.begin() + long(rng.index(lines.size())),
                   lines[rng.index(lines.size())]);
      break;
    case 1:  // delete a line
      lines.erase(lines.begin() + long(rng.index(lines.size())));
      break;
    case 2: {  // swap two lines (e.g. directives before the header)
      std::swap(lines[rng.index(lines.size())], lines[rng.index(lines.size())]);
      break;
    }
    case 3: {  // replace one whitespace token with a boundary number
      std::string& line = lines[rng.index(lines.size())];
      std::istringstream ls(line);
      std::vector<std::string> toks;
      for (std::string t; ls >> t;) toks.push_back(t);
      if (!toks.empty()) {
        std::string& tok = toks[rng.index(toks.size())];
        // Prefer re-targeting numbers; otherwise clobber whatever is there.
        tok = is_number_token(tok) || rng.chance(0.5)
                  ? kBoundaryNumbers[rng.index(std::size(kBoundaryNumbers))]
                  : kVocabulary[rng.index(std::size(kVocabulary))];
        std::string rebuilt;
        for (const std::string& t : toks) {
          if (!rebuilt.empty()) rebuilt += ' ';
          rebuilt += t;
        }
        line = rebuilt;
      }
      break;
    }
    default: {  // splice a fresh directive from the vocabulary
      std::string line = kVocabulary[rng.index(std::size(kVocabulary))];
      const std::size_t extra = rng.index(4);
      for (std::size_t i = 0; i < extra; ++i) {
        line += ' ';
        line += rng.chance(0.7) ? kBoundaryNumbers[rng.index(std::size(kBoundaryNumbers))]
                                : kVocabulary[rng.index(std::size(kVocabulary))];
      }
      lines.insert(lines.begin() + long(rng.index(lines.size() + 1)), line);
      break;
    }
  }
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

// --- store-image synthesis and mutation -------------------------------------

/// A valid-by-construction store image: identity header plus 0–5 framed
/// records with svc-shaped keys (and the occasional hostile key — '|',
/// newline and NUL bytes are legal inside the binary framing).
std::string synth_store_image(Rng& rng) {
  std::string img = store::header_line(rng.index(4));
  const std::size_t nrecords = rng.index(6);
  for (std::size_t r = 0; r < nrecords; ++r) {
    std::string key = "a2b0f763e7b5441" + std::to_string(rng.index(10));
    switch (rng.index(4)) {
      case 0: key += "|decide_rmt"; break;
      case 1: key += "|simulate|seed=" + std::to_string(rng.index(100)); break;
      case 2:  // hostile key bytes — newline and NUL are legal inside frames
        key += "|\n|";
        key.push_back('\0');
        break;
      default: break;
    }
    std::string value;
    const std::size_t vlen = rng.index(64);
    for (std::size_t b = 0; b < vlen; ++b) value.push_back(char(rng.index(256)));
    img += store::encode_record(key, value, rng.index(1000));
  }
  return img;
}

/// One seeded corruption step aimed at the format's failure surfaces:
/// torn appends (truncate), rot (bit flip), splices, duplicated spans,
/// and length bombs over the u32 framing fields.
std::string mutate_store_image(const std::string& img, Rng& rng) {
  std::string out = img;
  switch (rng.index(6)) {
    case 0:  // torn append: cut anywhere, header included
      out.resize(rng.index(out.size() + 1));
      return out;
    case 1: {  // single-bit rot
      if (out.empty()) return out;
      out[rng.index(out.size())] ^= char(1u << rng.index(8));
      return out;
    }
    case 2: {  // splice a fresh, internally-valid record at a random offset
      std::string key = "spliced|" + std::to_string(rng.index(100));
      out.insert(rng.index(out.size() + 1),
                 store::encode_record(key, "v", rng.index(1000)));
      return out;
    }
    case 3: {  // duplicate a short span (repeated-append shapes)
      if (out.empty()) return out;
      const std::size_t at = rng.index(out.size());
      const std::size_t len = std::min(out.size() - at, 1 + rng.index(32));
      out.insert(at, out.substr(at, len));
      return out;
    }
    case 4: {  // length bomb: blast 4 bytes to 0xff (framing caps must hold)
      if (out.size() < 4) return out;
      const std::size_t at = rng.index(out.size() - 3);
      for (std::size_t b = 0; b < 4; ++b) out[at + b] = char(0xff);
      return out;
    }
    default: {  // erase a byte (shifts every later frame)
      if (out.empty()) return out;
      out.erase(out.begin() + long(rng.index(out.size())));
      return out;
    }
  }
}

/// The scan_bytes contract over one (possibly corrupt) image. Every
/// divergence becomes a finding carrying the image bytes.
void check_store_image(const std::string& img, std::uint64_t seed, std::size_t index,
                       FuzzReport& report) {
  report.store_checks += 1;
  store::ScanResult scan;
  try {
    scan = store::scan_bytes(img);
  } catch (const std::invalid_argument&) {
    report.store_rejected += 1;  // the contract: hostile identity, clean reject
    return;
  } catch (const std::exception& e) {
    report.findings.push_back(FuzzFinding{
        "store-crash", std::string("scan_bytes threw non-invalid_argument: ") + e.what(),
        img, seed, index});
    return;
  }

  // Deep invariants of the accepted scan against its image.
  try {
    audit::validate(scan, img);
  } catch (const std::exception& e) {
    report.findings.push_back(FuzzFinding{
        "store-audit-violation", std::string("audit::validate: ") + e.what(), img, seed,
        index});
    return;
  }
  if (scan.torn) {
    report.store_repaired += 1;
    if (scan.tail_error.empty())
      report.findings.push_back(FuzzFinding{
          "store-audit-violation", "torn scan carries no tail_error", img, seed, index});
  }

  // Surviving records must re-encode byte-identically (frame, checksum
  // and all) — a record the scanner "fixed up" silently would diverge.
  for (const store::RecordRef& r : scan.records) {
    report.store_records += 1;
    const std::string value = img.substr(r.value_offset, r.value_len);
    std::string reencoded;
    try {
      reencoded = store::encode_record(r.key, value, r.seq);
    } catch (const std::exception& e) {
      report.findings.push_back(FuzzFinding{
          "store-roundtrip-diverged",
          std::string("accepted record does not re-encode: ") + e.what(), img, seed,
          index});
      continue;
    }
    if (reencoded != img.substr(r.offset, r.size) ||
        r.checksum != store::record_checksum(r.key, value, r.seq))
      report.findings.push_back(FuzzFinding{
          "store-roundtrip-diverged",
          "record at offset " + std::to_string(r.offset) + " is not an encode fixed point",
          img, seed, index});
  }

  // Repair idempotence: truncating to valid_prefix (what Store does on
  // open) must rescan cleanly to the same records — never tear again.
  const std::string repaired = img.substr(0, scan.valid_prefix);
  try {
    const store::ScanResult again = store::scan_bytes(repaired);
    if (again.torn || again.generation != scan.generation ||
        again.records.size() != scan.records.size() ||
        again.valid_prefix != repaired.size())
      report.findings.push_back(FuzzFinding{
          "store-repair-diverged",
          "repaired prefix rescans differently (torn=" + std::to_string(again.torn) +
              ", records " + std::to_string(again.records.size()) + " vs " +
              std::to_string(scan.records.size()) + ")",
          img, seed, index});
  } catch (const std::exception& e) {
    report.findings.push_back(FuzzFinding{
        "store-repair-diverged",
        std::string("repaired prefix no longer scans: ") + e.what(), img, seed, index});
  }
}

// --- differential helpers ---------------------------------------------------

std::string set_str(const NodeSet& s) {
  std::string out = "{";
  s.for_each([&](NodeId v) {
    if (out.size() > 1) out += ",";
    out += std::to_string(v);
  });
  return out + "}";
}

template <typename Witness>
std::string witness_str(const std::optional<Witness>& w) {
  if (!w) return "none";
  return "c1=" + set_str(w->c1) + " c2=" + set_str(w->c2) + " b=" + set_str(w->b);
}

template <typename Witness>
bool witness_equal(const std::optional<Witness>& a, const std::optional<Witness>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a) return true;
  return a->c1 == b->c1 && a->c2 == b->c2 && a->b == b->b;
}

/// Seeded random instance for topping up the differential stream (the
/// shape of tests/test_util.hpp's random_instance, re-derived here so the
/// library target does not include test headers).
Instance random_small_instance(std::size_t max_nodes, Rng& rng) {
  const std::size_t n = 4 + rng.index(std::max<std::size_t>(1, max_nodes - 3));
  Graph g = generators::random_connected_gnp(n, 0.2 + 0.5 * rng.real(), rng);
  const NodeId d = 0, r = NodeId(n - 1);
  AdversaryStructure z = random_structure(g.nodes(), 1 + rng.index(4), 1 + rng.index(2),
                                          NodeSet{d, r}, rng);
  switch (rng.index(3)) {
    case 0: return Instance::ad_hoc(std::move(g), std::move(z), d, r);
    case 1: return Instance::full_knowledge(std::move(g), std::move(z), d, r);
    default: {
      ViewFunction gamma = ViewFunction::k_hop(g, 1 + rng.index(2));
      return Instance(std::move(g), std::move(z), std::move(gamma), d, r);
    }
  }
}

/// Audit an accepted instance with the collecting validator; one finding
/// per violated component.
void audit_instance(const Instance& inst, const std::string& input, std::uint64_t seed,
                    std::size_t index, FuzzReport& report) {
  report.audit_checks += 1;
  for (const audit::Diagnostic& d : audit::check_instance(inst))
    report.findings.push_back(FuzzFinding{
        "audit-violation", "audit[" + d.component + "]: " + d.message, input, seed, index});
}

}  // namespace

std::vector<std::string> builtin_corpus() {
  // Frozen: every directive of the v1 format appears at least once, so
  // token-wise mutation can reach every parser branch from the corpus.
  return {
      // the paper's triple-path shape, ad hoc
      "rmt-instance v1\n"
      "nodes 8\n"
      "edge 0 1\nedge 1 7\nedge 0 2\nedge 2 7\nedge 0 3\nedge 3 7\n"
      "dealer 0\nreceiver 7\n"
      "corruptible 1\ncorruptible 2\ncorruptible 3\n"
      "knowledge adhoc\n",
      // ring with a 2-set adversary, 1-hop knowledge
      "rmt-instance v1\n"
      "nodes 6\n"
      "edge 0 1\nedge 1 2\nedge 2 3\nedge 3 4\nedge 4 5\nedge 5 0\n"
      "dealer 0\nreceiver 3\n"
      "corruptible 1 2\ncorruptible 4\n"
      "knowledge k-hop 1\n",
      // full knowledge, comments and blank lines
      "# full-knowledge diamond\n"
      "rmt-instance v1\n"
      "nodes 4\n"
      "edge 0 1\nedge 0 2\nedge 1 3\nedge 2 3\n\n"
      "dealer 0   # the dealer\n"
      "receiver 3\n"
      "corruptible 1\n"
      "knowledge full\n",
      // custom views with extra nodes and edges
      "rmt-instance v1\n"
      "nodes 5\n"
      "edge 0 1\nedge 1 2\nedge 2 3\nedge 3 4\nedge 0 4\n"
      "dealer 0\nreceiver 2\n"
      "corruptible 1\ncorruptible 3\n"
      "knowledge custom\n"
      "view 1 : 3 4\n"
      "view-edge 1 : 2 3\n",
  };
}

std::vector<std::string> load_corpus_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec))
    throw std::invalid_argument("fuzz corpus: not a directory: " + dir);
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.is_regular_file()) paths.push_back(entry.path());
  std::sort(paths.begin(), paths.end());
  std::vector<std::string> out;
  for (const fs::path& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) throw std::invalid_argument("fuzz corpus: cannot open " + p.string());
    std::ostringstream buf;
    buf << in.rdbuf();
    out.push_back(std::move(buf).str());
  }
  return out;
}

std::string mutate(const std::string& text, Rng& rng) {
  return rng.chance(0.5) ? mutate_bytes(text, rng) : mutate_tokens(text, rng);
}

FuzzReport run_fuzz(const FuzzOptions& opts) {
  RMT_REQUIRE(opts.max_exact_nodes <= analysis::kMaxExactNodes,
              "run_fuzz: max_exact_nodes above the exact-decider guard");
  FuzzReport report;

  std::vector<std::string> corpus = builtin_corpus();
  corpus.insert(corpus.end(), opts.corpus.begin(), opts.corpus.end());
  RMT_REQUIRE(!corpus.empty(), "run_fuzz: empty corpus");

  const auto rmt_decider = opts.rmt_decider
                               ? opts.rmt_decider
                               : [](const Instance& i) { return analysis::find_rmt_cut(i); };
  const auto zpp_decider =
      opts.zpp_decider ? opts.zpp_decider
                       : [](const Instance& i) { return analysis::find_rmt_zpp_cut(i); };

  // --- loop 1: parser robustness over mutated corpus entries ---------------
  // Accepted small mutants feed the differential loop below, so fuzzing the
  // parser also diversifies the decider workload beyond the generators.
  std::vector<std::pair<Instance, std::string>> parsed_pool;
  for (std::size_t i = 0; i < opts.parser_mutants; ++i) {
    const std::uint64_t seed = unit_seed(opts.seed, kMutantDomain, i);
    Rng rng(seed);
    std::string text = corpus[rng.index(corpus.size())];
    const std::size_t steps = 1 + rng.index(4);
    for (std::size_t s = 0; s < steps; ++s) text = mutate(text, rng);

    report.parser_mutants += 1;
    std::optional<Instance> inst;
    try {
      inst = io::parse_instance_string(text);
    } catch (const std::invalid_argument&) {
      report.rejected += 1;  // the contract: clean, typed rejection
      continue;
    } catch (const std::exception& e) {
      report.findings.push_back(FuzzFinding{
          "parser-crash", std::string("parser threw non-invalid_argument: ") + e.what(),
          text, seed, i});
      continue;
    }
    report.parsed_ok += 1;

    // Accept-then-diverge: the accepted mutant must reach the round-trip
    // fixed point (serialize ∘ parse ∘ serialize is the identity on the
    // first serialization) and survive the deep audit.
    try {
      const std::string s1 = io::serialize_instance(*inst);
      const Instance again = io::parse_instance_string(s1);
      const std::string s2 = io::serialize_instance(again);
      report.roundtrip_checks += 1;
      if (s1 != s2) {
        report.findings.push_back(FuzzFinding{
            "roundtrip-diverged", "serialize∘parse is not a fixed point", text, seed, i});
        continue;
      }
      audit_instance(*inst, text, seed, i, report);
      if (inst->num_players() <= opts.max_exact_nodes &&
          parsed_pool.size() < opts.diff_checks)
        parsed_pool.emplace_back(std::move(*inst), s1);
    } catch (const std::exception& e) {
      report.findings.push_back(FuzzFinding{
          "roundtrip-diverged",
          std::string("accepted mutant failed to round-trip: ") + e.what(), text, seed, i});
    }
  }

  // --- loop 2: differential deciders + svc byte identity -------------------
  std::optional<exec::ThreadPool> pool;
  if (opts.svc_workers > 0) pool.emplace(opts.svc_workers);
  svc::Engine engine(pool ? &*pool : nullptr);

  for (std::size_t i = 0; i < opts.diff_checks; ++i) {
    const std::uint64_t seed = unit_seed(opts.seed, kDiffDomain, i);
    std::optional<Instance> inst;
    std::string text;
    if (i < parsed_pool.size()) {
      inst = parsed_pool[i].first;
      text = parsed_pool[i].second;
    } else {
      Rng rng(seed);
      try {
        inst = random_small_instance(opts.max_exact_nodes, rng);
        text = io::serialize_instance(*inst);
      } catch (const std::exception& e) {
        report.findings.push_back(FuzzFinding{
            "generator-invalid", std::string("instance generator threw: ") + e.what(),
            text, seed, i});
        continue;
      }
      audit_instance(*inst, text, seed, i, report);
    }
    report.diff_checks += 1;

    // Optimized vs reference deciders: existence and witness, bit-identical.
    try {
      const auto ref_rmt = analysis::find_rmt_cut_reference(*inst);
      const auto opt_rmt = rmt_decider(*inst);
      if (!witness_equal(ref_rmt, opt_rmt))
        report.findings.push_back(FuzzFinding{
            "decider-diverged",
            "rmt: reference=" + witness_str(ref_rmt) + " optimized=" + witness_str(opt_rmt),
            text, seed, i});
      const auto ref_zpp = analysis::find_rmt_zpp_cut_reference(*inst);
      const auto opt_zpp = zpp_decider(*inst);
      if (!witness_equal(ref_zpp, opt_zpp))
        report.findings.push_back(FuzzFinding{
            "decider-diverged",
            "zpp: reference=" + witness_str(ref_zpp) + " optimized=" + witness_str(opt_zpp),
            text, seed, i});
    } catch (const std::exception& e) {
      report.findings.push_back(FuzzFinding{
          "decider-diverged", std::string("decider threw: ") + e.what(), text, seed, i});
      continue;
    }

    // Batched vs per-candidate membership kernels on this instance's
    // adversary structure: probe_batch must agree with contains
    // probe-for-probe, under the compiled vector backend AND with the
    // scalar reference forced — four answers per probe, one truth. The
    // probes straddle the popcount-bucket boundaries: each maximal set
    // itself, one node more, one node fewer, plus seeded random subsets.
    {
      const AdversaryStructure& z = inst->adversary();
      const NodeSet nodes = inst->graph().nodes();
      Rng krng(unit_seed(opts.seed, kKernelDomain, i));
      constexpr std::size_t kMaxProbes = 64;
      NodeSet probes[kMaxProbes];
      std::size_t nprobes = 0;
      for (const NodeSet& m : z.maximal_sets()) {
        if (nprobes + 3 > kMaxProbes) break;
        probes[nprobes++] = m;
        NodeSet plus = m;
        nodes.for_each([&](NodeId v) {
          if (plus == m && !m.contains(v)) plus.insert(v);
        });
        probes[nprobes++] = std::move(plus);
        NodeSet minus = m;
        m.for_each([&](NodeId v) {
          if (minus == m) minus -= NodeSet::single(v);
        });
        probes[nprobes++] = std::move(minus);
      }
      while (nprobes < kMaxProbes && nprobes < 3 * z.maximal_sets().size() + 8) {
        NodeSet s;
        nodes.for_each([&](NodeId v) {
          if (krng.chance(0.3)) s.insert(v);
        });
        probes[nprobes++] = std::move(s);
      }
      bool vec_batch[kMaxProbes];
      bool scal_batch[kMaxProbes];
      z.probe_batch(probes, nprobes, vec_batch);
      {
        const simd::ScopedForceScalar scalar_only;
        z.probe_batch(probes, nprobes, scal_batch);
      }
      for (std::size_t j = 0; j < nprobes; ++j) {
        report.kernel_probes += 1;
        const bool vec_one = z.contains(probes[j]);
        bool scal_one = false;
        {
          const simd::ScopedForceScalar scalar_only;
          scal_one = z.contains(probes[j]);
        }
        if (vec_batch[j] != vec_one || scal_batch[j] != scal_one || vec_one != scal_one)
          report.findings.push_back(FuzzFinding{
              "kernel-diverged",
              "probe " + set_str(probes[j]) + ": batch/vector=" +
                  std::to_string(vec_batch[j]) + " single/vector=" +
                  std::to_string(vec_one) + " batch/scalar=" +
                  std::to_string(scal_batch[j]) + " single/scalar=" +
                  std::to_string(scal_one),
              text, seed, i});
      }
    }

    // svc::Engine byte identity for one instance_key across the no-cache,
    // freshly-computed, cached and coalesced paths.
    svc::Request fresh{svc::QueryKind::kDecideRmt, *inst, svc::SimParams{}, std::nullopt,
                       /*no_cache=*/true};
    svc::Request normal{svc::QueryKind::kDecideRmt, *inst, svc::SimParams{}, std::nullopt,
                        /*no_cache=*/false};
    const auto r_fresh = engine.run({fresh});
    const auto r_first = engine.run({normal});
    const auto r_pair = engine.run({normal, normal});  // in-batch coalescing
    std::vector<const svc::Response*> all{&r_fresh[0], &r_first[0], &r_pair[0], &r_pair[1]};
    bool svc_ok = true;
    for (const svc::Response* r : all)
      if (r->status != svc::Response::Status::kOk) svc_ok = false;
    if (svc_ok)
      for (const svc::Response* r : all)
        if (r->result != r_fresh[0].result || r->key != r_fresh[0].key) svc_ok = false;
    if (svc_ok && !(r_pair[0].cached && r_pair[1].cached)) svc_ok = false;
    if (!svc_ok)
      report.findings.push_back(FuzzFinding{
          "svc-diverged",
          "no-cache/fresh/cached/coalesced answers for one instance_key differ "
          "(fresh status=" + std::to_string(int(r_fresh[0].status)) + ")",
          text, seed, i});
  }

  // --- loop 3: store-image robustness over mutated record logs -------------
  // Pure bytes in, bytes out: scan_bytes never touches the filesystem, so
  // this loop is as deterministic as the parser loop. Roughly a third of
  // the images go in unmutated — the clean-image path (scan, audit,
  // round-trip every record, no tear) must stay green too.
  for (std::size_t i = 0; i < opts.store_checks; ++i) {
    const std::uint64_t seed = unit_seed(opts.seed, kStoreDomain, i);
    Rng rng(seed);
    std::string img = synth_store_image(rng);
    if (!rng.chance(0.33)) {
      const std::size_t steps = 1 + rng.index(4);
      for (std::size_t s = 0; s < steps; ++s) img = mutate_store_image(img, rng);
    }
    check_store_image(img, seed, i, report);
  }

  return report;
}

std::size_t write_artifacts(const std::string& dir, const std::vector<FuzzFinding>& findings) {
  if (findings.empty()) return 0;
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  std::size_t written = 0;
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const FuzzFinding& f = findings[i];
    std::string num = std::to_string(i);
    while (num.size() < 3) num.insert(num.begin(), '0');
    const std::string stem = dir + "/finding-" + num + "-" + f.kind;
    std::ofstream rmt(stem + ".rmt", std::ios::binary);
    rmt << f.input;
    std::ofstream txt(stem + ".txt", std::ios::binary);
    txt << "kind: " << f.kind << "\nindex: " << f.index << "\nseed: " << f.seed
        << "\ndetail: " << f.detail << "\n";
    if (rmt && txt) written += 2;
  }
  return written;
}

std::string FuzzReport::summary() const {
  return "fuzz: " + std::to_string(parser_mutants) + " parser mutants (" +
         std::to_string(parsed_ok) + " parsed, " + std::to_string(rejected) +
         " rejected), " + std::to_string(roundtrip_checks) + " round-trips, " +
         std::to_string(audit_checks) + " audits, " + std::to_string(diff_checks) +
         " differential checks, " + std::to_string(kernel_probes) +
         " kernel probes, " + std::to_string(store_checks) + " store images (" +
         std::to_string(store_rejected) + " rejected, " + std::to_string(store_repaired) +
         " repaired, " + std::to_string(store_records) + " records), " +
         std::to_string(findings.size()) + " findings";
}

}  // namespace rmt::propcheck

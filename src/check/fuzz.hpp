// check/fuzz.hpp — the seed-driven structured fuzzer behind rmt_fuzz and
// the fuzz_smoke ctest gate.
//
// Two loops, both deterministic in FuzzOptions::seed:
//
//   * Parser robustness: serialized instances from the corpus are mutated
//     byte-wise and token-wise, then fed through io::parse_instance_string.
//     The parser's contract under hostile bytes is: throw
//     std::invalid_argument (a clean, line-numbered rejection) or accept —
//     never crash, never throw anything else, and never accept-then-
//     diverge (an accepted mutant must serialize to a round-trip fixed
//     point and pass the deep audit validators).
//
//   * Differential deciders: parsed mutants (topped up with seeded random
//     instances so the check count is deterministic) are pushed through
//     the optimized deciders vs the find_*_reference oracles — existence
//     AND witness must be bit-identical — and through a memoizing
//     svc::Engine, where the cached, coalesced and no-cache answers for
//     one instance_key must be byte-identical. The same instances feed a
//     membership-kernel differential: AdversaryStructure::probe_batch vs
//     per-candidate contains, under the compiled vector backend and again
//     with simd::force_scalar — four answers per probe, one truth.
//
//   * Store images: synthetic record logs (header_line + encode_record,
//     valid by construction) are truncated, bit-flipped, spliced and
//     length-bombed, then fed through store::scan_bytes. The loader's
//     contract under hostile bytes mirrors the parser's: throw
//     std::invalid_argument (the identity line is not ours) or return a
//     scan whose surviving records re-encode byte-identically, whose torn
//     tail carries a precise error, that passes rmt::audit::validate
//     against the image, and whose repaired prefix rescans to the same
//     records without tearing again (repair is idempotent — the exact
//     recovery a restarted server performs).
//
// The deciders under test are injectable (FuzzOptions::rmt_decider /
// zpp_decider) so the harness can prove it *catches* a deliberately broken
// decider — that self-test is wired as the fuzz_selftest ctest and
// `rmt_fuzz --self-test`.
//
// Every divergence becomes a FuzzFinding carrying the offending serialized
// instance: rmt_fuzz writes them to the artifact directory, and minimized
// ones get checked into tests/fuzz_corpus/regressions/ as permanent
// parser-hardening cases.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/rmt_cut.hpp"
#include "analysis/zpp_cut.hpp"
#include "instance/instance.hpp"
#include "util/rng.hpp"

namespace rmt::propcheck {

struct FuzzOptions {
  std::uint64_t seed = 0x5eedc0de;   ///< root of every derived stream (frozen)
  std::size_t parser_mutants = 10000;  ///< mutants fed through the parser
  std::size_t diff_checks = 500;       ///< differential decider/svc checks
  std::size_t store_checks = 500;      ///< mutated store images fed to scan_bytes
  /// Instances above this size skip the exact deciders (they are
  /// exponential); parser checks still run. Must be <= analysis::kMaxExactNodes.
  std::size_t max_exact_nodes = 8;
  std::size_t svc_workers = 2;  ///< engine pool width (0 = sequential)
  /// Extra corpus entries (serialized instances) on top of builtin_corpus().
  std::vector<std::string> corpus;
  /// Deciders under differential test; null = the optimized find_rmt_cut /
  /// find_rmt_zpp_cut. Tests inject broken ones to prove detection.
  std::function<std::optional<analysis::RmtCutWitness>(const Instance&)> rmt_decider;
  std::function<std::optional<analysis::ZppCutWitness>(const Instance&)> zpp_decider;
};

/// One divergence/contract violation, with everything needed to reproduce.
struct FuzzFinding {
  std::string kind;    ///< parser-crash | roundtrip-diverged | audit-violation
                       ///< | decider-diverged | kernel-diverged | svc-diverged
                       ///< | generator-invalid | store-crash
                       ///< | store-roundtrip-diverged | store-audit-violation
                       ///< | store-repair-diverged
  std::string detail;  ///< human explanation (exception text, mismatch shape)
  std::string input;   ///< the serialized instance / mutant bytes involved
  std::uint64_t seed = 0;   ///< the derived seed of the failing unit
  std::size_t index = 0;    ///< unit index within its loop
};

struct FuzzReport {
  std::size_t parser_mutants = 0;    ///< mutants fed to the parser
  std::size_t parsed_ok = 0;         ///< accepted by the parser
  std::size_t rejected = 0;          ///< clean std::invalid_argument rejections
  std::size_t roundtrip_checks = 0;  ///< serialize∘parse fixed-point checks run
  std::size_t audit_checks = 0;      ///< deep-validator passes over accepted mutants
  std::size_t diff_checks = 0;       ///< differential decider/svc checks run
  std::size_t kernel_probes = 0;     ///< probe_batch-vs-contains probes compared
  std::size_t store_checks = 0;      ///< mutated store images scanned
  std::size_t store_rejected = 0;    ///< hostile identity lines cleanly rejected
  std::size_t store_repaired = 0;    ///< scans that tore and kept a valid prefix
  std::size_t store_records = 0;     ///< surviving records round-trip-checked
  std::vector<FuzzFinding> findings;

  bool ok() const { return findings.empty(); }
  /// One-line outcome, e.g.
  /// "fuzz: 10000 parser mutants (812 parsed, 9188 rejected), 500
  ///  differential checks, 0 findings".
  std::string summary() const;
};

/// Run both loops. Deterministic: the report (including findings and their
/// order) is a pure function of `opts`.
FuzzReport run_fuzz(const FuzzOptions& opts);

/// The frozen built-in seed corpus: small serialized instances covering
/// every directive of the format (edges, corruptible sets, adhoc / full /
/// k-hop / custom knowledge, view and view-edge extras).
std::vector<std::string> builtin_corpus();

/// Read every regular file in `dir` (sorted by name) as a corpus entry.
/// Throws std::invalid_argument when the directory cannot be read.
std::vector<std::string> load_corpus_dir(const std::string& dir);

/// Apply one seeded mutation step (byte-wise or token-wise, chosen by the
/// rng) to `text`. Exposed for tests; run_fuzz stacks 1–4 of these.
std::string mutate(const std::string& text, Rng& rng);

/// Write each finding as two files under `dir` (created if needed):
/// finding-NNN-<kind>.rmt (the input) and finding-NNN-<kind>.txt (the
/// detail + repro seed). Returns the file count written.
std::size_t write_artifacts(const std::string& dir, const std::vector<FuzzFinding>& findings);

}  // namespace rmt::propcheck

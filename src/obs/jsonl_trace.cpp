#include "obs/jsonl_trace.hpp"

#include "obs/json.hpp"

namespace rmt::obs {

const char* payload_kind(const sim::Payload& p) {
  struct Visitor {
    const char* operator()(const sim::ValuePayload&) const { return "value"; }
    const char* operator()(const sim::PathValuePayload&) const { return "path_value"; }
    const char* operator()(const sim::KnowledgePayload&) const { return "knowledge"; }
  };
  return std::visit(Visitor{}, p);
}

void JsonlTraceObserver::on_round_begin(std::size_t round) {
  round_ = round;
  json::Writer w;
  w.begin_object();
  w.field("event", "round");
  w.field("round", round);
  w.end_object();
  out_ << w.take() << '\n';
  ++events_;
}

void JsonlTraceObserver::on_delivery(const sim::Message& m, bool adversarial) {
  if (only_to_ && m.to != *only_to_) return;
  json::Writer w;
  w.begin_object();
  w.field("event", "delivery");
  w.field("round", round_);
  w.field("from", std::uint64_t(m.from));
  w.field("to", std::uint64_t(m.to));
  w.field("kind", payload_kind(m.payload));
  w.field("bytes", sim::payload_bytes(m.payload));
  w.field("adversarial", adversarial);
  w.end_object();
  out_ << w.take() << '\n';
  ++events_;
}

}  // namespace rmt::obs

#include "obs/trace.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace rmt::obs::trace {

namespace {

std::atomic<bool> g_enabled{false};

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kDefaultSeed = 4242;

std::uint64_t splitmix_mix(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ull;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z;
}

std::atomic<std::uint64_t> g_id_state{kDefaultSeed};

thread_local TraceContext t_context;

std::string hex16(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[std::size_t(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// Bounded copy into a SpanRecord char field, always NUL-terminated.
void copy_bounded(char* dst, std::size_t cap, std::string_view src) {
  const std::size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

std::string_view field_view(const char* field, std::size_t cap) {
  std::size_t n = 0;
  while (n < cap && field[n] != '\0') ++n;
  return std::string_view(field, n);
}

/// One thread's pending-span buffer; flushed in batches so the ring mutex
/// stays off the per-span path most of the time.
constexpr std::size_t kFlushBatch = 32;

struct ThreadBuffer {
  std::mutex m;
  std::vector<SpanRecord> buf;
};

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void set_seed(std::uint64_t seed) { g_id_state.store(seed, std::memory_order_relaxed); }

std::uint64_t next_id() {
  const std::uint64_t s = g_id_state.fetch_add(kGolden, std::memory_order_relaxed) + kGolden;
  const std::uint64_t id = splitmix_mix(s);
  return id != 0 ? id : 1;
}

std::string id_hex(std::uint64_t id) { return hex16(id); }

TraceContext current() { return t_context; }

ContextGuard::ContextGuard(TraceContext ctx) {
  if (!ctx.valid()) return;
  prev_ = t_context;
  t_context = ctx;
  active_ = true;
}

ContextGuard::~ContextGuard() {
  if (active_) t_context = prev_;
}

TraceContext new_root_context() {
  TraceContext ctx;
  ctx.trace_id = next_id();
  ctx.span_id = next_id();
  return ctx;
}

void SpanRecord::set_name(std::string_view v) { copy_bounded(name, kNameBytes, v); }
void SpanRecord::set_kind(std::string_view v) { copy_bounded(kind, kKindBytes, v); }

void SpanRecord::add_attr(std::string_view key, std::string_view value) {
  const std::size_t used = field_view(attrs, kAttrBytes).size();
  // "<;>key=value" + NUL must fit; an attribute never appears truncated.
  const std::size_t sep = used > 0 ? 1 : 0;
  if (used + sep + key.size() + 1 + value.size() + 1 > kAttrBytes) return;
  char* p = attrs + used;
  if (sep) *p++ = ';';
  std::memcpy(p, key.data(), key.size());
  p += key.size();
  *p++ = '=';
  std::memcpy(p, value.data(), value.size());
  p += value.size();
  *p = '\0';
}

void SpanRecord::add_attr(std::string_view key, std::uint64_t value) {
  add_attr(key, std::string_view(std::to_string(value)));
}

void SpanRecord::add_attr(std::string_view key, bool value) {
  add_attr(key, value ? std::string_view("true") : std::string_view("false"));
}

// ---------------------------------------------------------------------------
// Recorder

struct Recorder::Impl {
  mutable std::mutex m;  // ring, accounting, buffer registry, dump path
  std::vector<SpanRecord> ring;
  std::size_t head = 0;        // next slot to overwrite
  std::uint64_t recorded = 0;  // spans ever flushed into the ring
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::string dump_path;

  std::uint64_t run_start_unix_ms = 0;
  std::chrono::steady_clock::time_point mono_epoch;
  std::uint64_t mono_anchor_ns = 0;

  void append_locked(const SpanRecord& rec) {
    ring[head] = rec;
    head = (head + 1) % ring.size();
    ++recorded;
  }

  void drain_locked(ThreadBuffer& tb) {
    std::lock_guard<std::mutex> lock(tb.m);
    for (const SpanRecord& rec : tb.buf) append_locked(rec);
    tb.buf.clear();
  }
};

namespace {

/// Raw view for the signal handler: set once when the recorder is built
/// (the recorder itself is leaked, so these never dangle).
Recorder::Impl* g_crash_impl = nullptr;
char g_crash_path[512] = {};

/// The recorder's monotonic epoch, mirrored here so now_ns() pays one
/// clock read and a subtraction, no lock.
std::chrono::steady_clock::time_point g_mono_epoch;

}  // namespace

Recorder::Recorder() : impl_(new Impl) {
  impl_->ring.resize(kDefaultCapacity);
  impl_->mono_epoch = std::chrono::steady_clock::now();
  impl_->mono_anchor_ns = std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                            impl_->mono_epoch.time_since_epoch())
                                            .count());
  impl_->run_start_unix_ms =
      std::uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count());
  g_mono_epoch = impl_->mono_epoch;
  g_crash_impl = impl_;
}

Recorder& Recorder::global() {
  // Leaked on purpose: thread buffers and the crash handler may outlive
  // normal static destruction order.
  static Recorder* r = new Recorder();
  return *r;
}

std::uint64_t now_ns() {
  (void)Recorder::global();  // establish the epoch on first use
  return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - g_mono_epoch)
                           .count());
}

void Recorder::set_capacity(std::size_t capacity) {
  RMT_REQUIRE(capacity >= 1, "trace::Recorder: capacity must be >= 1");
  std::lock_guard<std::mutex> lock(impl_->m);
  impl_->ring.assign(capacity, SpanRecord{});
  impl_->head = 0;
  impl_->recorded = 0;
}

std::size_t Recorder::capacity() const {
  std::lock_guard<std::mutex> lock(impl_->m);
  return impl_->ring.size();
}

void Recorder::clear() {
  std::lock_guard<std::mutex> lock(impl_->m);
  for (const std::shared_ptr<ThreadBuffer>& tb : impl_->buffers) {
    std::lock_guard<std::mutex> lb(tb->m);
    tb->buf.clear();
  }
  std::fill(impl_->ring.begin(), impl_->ring.end(), SpanRecord{});
  impl_->head = 0;
  impl_->recorded = 0;
}

std::uint64_t Recorder::recorded() const {
  std::lock_guard<std::mutex> lock(impl_->m);
  return impl_->recorded;
}

std::uint64_t Recorder::dropped() const {
  std::lock_guard<std::mutex> lock(impl_->m);
  const std::uint64_t cap = impl_->ring.size();
  return impl_->recorded > cap ? impl_->recorded - cap : 0;
}

DumpHeader Recorder::header() const {
  std::lock_guard<std::mutex> lock(impl_->m);
  DumpHeader h;
  h.run_start_unix_ms = impl_->run_start_unix_ms;
  h.mono_anchor_ns = impl_->mono_anchor_ns;
  h.capacity = impl_->ring.size();
  h.recorded = impl_->recorded;
  const std::uint64_t cap = impl_->ring.size();
  h.dropped = impl_->recorded > cap ? impl_->recorded - cap : 0;
  return h;
}

namespace {

/// The calling thread's buffer, registered with the recorder on first
/// use and drained/unregistered at thread exit.
ThreadBuffer& local_buffer(Recorder::Impl& impl) {
  struct Handle {
    Recorder::Impl* impl;
    std::shared_ptr<ThreadBuffer> tb;
    ~Handle() {
      std::lock_guard<std::mutex> lock(impl->m);
      impl->drain_locked(*tb);
      auto& v = impl->buffers;
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (v[i] == tb) {
          v.erase(v.begin() + std::ptrdiff_t(i));
          break;
        }
      }
    }
  };
  thread_local Handle handle = [&impl] {
    auto tb = std::make_shared<ThreadBuffer>();
    {
      std::lock_guard<std::mutex> lock(impl.m);
      impl.buffers.push_back(tb);
    }
    return Handle{&impl, std::move(tb)};
  }();
  return *handle.tb;
}

}  // namespace

void Recorder::record(const SpanRecord& rec) {
  if (rec.span_id == 0) return;
  ThreadBuffer& tb = local_buffer(*impl_);
  SpanRecord batch[kFlushBatch];
  std::size_t pending = 0;
  {
    std::lock_guard<std::mutex> lock(tb.m);
    tb.buf.push_back(rec);
    if (tb.buf.size() >= kFlushBatch) {
      pending = tb.buf.size() < kFlushBatch ? tb.buf.size() : kFlushBatch;
      for (std::size_t i = 0; i < pending; ++i) batch[i] = tb.buf[i];
      tb.buf.clear();
    }
  }
  // The buffer lock is released before the ring lock is taken, so the
  // snapshot path (ring lock, then buffer locks) can never deadlock us.
  if (pending > 0) {
    std::lock_guard<std::mutex> lock(impl_->m);
    for (std::size_t i = 0; i < pending; ++i) impl_->append_locked(batch[i]);
  }
}

std::vector<SpanRecord> Recorder::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->m);
  for (const std::shared_ptr<ThreadBuffer>& tb : impl_->buffers) impl_->drain_locked(*tb);
  const std::size_t cap = impl_->ring.size();
  const std::size_t count =
      impl_->recorded < cap ? std::size_t(impl_->recorded) : cap;
  std::vector<SpanRecord> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k)
    out.push_back(impl_->ring[(impl_->head + cap - count + k) % cap]);
  return out;
}

void Recorder::set_dump_path(std::string path) {
  std::lock_guard<std::mutex> lock(impl_->m);
  impl_->dump_path = std::move(path);
  copy_bounded(g_crash_path, sizeof(g_crash_path), impl_->dump_path);
}

std::string Recorder::dump_path() const {
  std::lock_guard<std::mutex> lock(impl_->m);
  return impl_->dump_path;
}

// ---------------------------------------------------------------------------
// JSONL emission

std::string span_json(const SpanRecord& rec) {
  json::Writer w;
  w.begin_object();
  w.field("schema", "rmt.trace/1");
  w.field("trace", hex16(rec.trace_id));
  w.field("span", hex16(rec.span_id));
  w.key("parent");
  if (rec.parent_span_id != 0) w.value(hex16(rec.parent_span_id));
  else w.null();
  w.field("name", std::string(field_view(rec.name, SpanRecord::kNameBytes)));
  w.field("kind", std::string(field_view(rec.kind, SpanRecord::kKindBytes)));
  w.key("join");
  if (rec.join_span_id != 0) w.value(hex16(rec.join_span_id));
  else w.null();
  w.field("start_ns", rec.start_ns);
  w.field("end_ns", rec.end_ns);
  w.field("attrs", std::string(field_view(rec.attrs, SpanRecord::kAttrBytes)));
  w.end_object();
  return w.take();
}

std::string header_json(const DumpHeader& h) {
  json::Writer w;
  w.begin_object();
  w.field("schema", "rmt.trace/1");
  w.field("run_start_unix_ms", h.run_start_unix_ms);
  w.field("mono_anchor_ns", h.mono_anchor_ns);
  w.field("capacity", h.capacity);
  w.field("recorded", h.recorded);
  w.field("dropped", h.dropped);
  w.end_object();
  return w.take();
}

void Recorder::write_jsonl(std::ostream& out) const {
  // snapshot() first: it drains the per-thread buffers, so the header's
  // recorded count agrees with the span lines that follow it.
  const std::vector<SpanRecord> spans = snapshot();
  const DumpHeader h = header();
  out << header_json(h) << '\n';
  for (const SpanRecord& rec : spans) out << span_json(rec) << '\n';
}

bool Recorder::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_jsonl(out);
  return bool(out);
}

void Recorder::dump_now(const char* reason) {
  const std::string path = dump_path();
  if (path.empty()) return;
  (void)reason;  // the header carries the anchors; reasons live in logs
  (void)write_file(path);
}

// ---------------------------------------------------------------------------
// Spans

Span::Span(const char* name) {
  if (!enabled()) return;
  armed_ = true;
  prev_ = t_context;
  rec_.trace_id = prev_.valid() ? prev_.trace_id : next_id();
  rec_.parent_span_id = prev_.valid() ? prev_.span_id : 0;
  rec_.span_id = next_id();
  rec_.set_name(name);
  rec_.set_kind("span");
  rec_.start_ns = now_ns();
  t_context = TraceContext{rec_.trace_id, rec_.span_id};
}

Span::~Span() { finish(); }

void Span::finish() {
  if (!armed_ || finished_) return;
  finished_ = true;
  rec_.end_ns = now_ns();
  t_context = prev_;
  Recorder::global().record(rec_);
}

void Span::attr(std::string_view key, std::string_view value) {
  if (armed_ && !finished_) rec_.add_attr(key, value);
}
void Span::attr(std::string_view key, std::uint64_t value) {
  if (armed_ && !finished_) rec_.add_attr(key, value);
}
void Span::attr(std::string_view key, bool value) {
  if (armed_ && !finished_) rec_.add_attr(key, value);
}

void Span::set_join(std::uint64_t target_span_id) {
  if (!armed_ || finished_) return;
  rec_.join_span_id = target_span_id;
  rec_.set_kind("join");
}

void emit(const SpanRecord& rec) {
  if (!enabled() || rec.span_id == 0) return;
  SpanRecord copy = rec;
  if (copy.kind[0] == '\0') copy.set_kind(copy.join_span_id != 0 ? "join" : "span");
  Recorder::global().record(copy);
}

// ---------------------------------------------------------------------------
// Crash dumping (async-signal-safe: open/write/close and manual
// formatting only; no locks, no allocation, no stdio)

namespace {

void ss_write(int fd, const char* s, std::size_t n) {
  while (n > 0) {
    const ssize_t k = ::write(fd, s, n);  // lint:raw-io-allowed: async-signal-safe crash dump
    if (k <= 0) return;
    s += k;
    n -= std::size_t(k);
  }
}

std::size_t ss_dec(std::uint64_t v, char* out) {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = char('0' + v % 10);
    v /= 10;
  } while (v > 0);
  for (std::size_t i = 0; i < n; ++i) out[i] = tmp[n - 1 - i];
  return n;
}

std::size_t ss_hex16(std::uint64_t v, char* out) {
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    out[i] = kDigits[v & 0xf];
    v >>= 4;
  }
  return 16;
}

/// Copy a bounded char field, replacing anything that could break the
/// JSON string (quotes, backslashes, control bytes) with '_'.
std::size_t ss_sanitized(const char* field, std::size_t cap, char* out) {
  std::size_t n = 0;
  for (; n < cap && field[n] != '\0'; ++n) {
    const char c = field[n];
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-' ||
                      c == '=' || c == ';' || c == ',' || c == ':' || c == '/' ||
                      c == ' ' || c == '{' || c == '}';
    out[n] = safe ? c : '_';
  }
  return n;
}

struct LineBuf {
  char buf[768];
  std::size_t len = 0;
  void lit(const char* s) {
    while (*s != '\0' && len < sizeof(buf) - 1) buf[len++] = *s++;
  }
  void dec(std::uint64_t v) {
    if (len + 20 < sizeof(buf)) len += ss_dec(v, buf + len);
  }
  void hex(std::uint64_t v) {
    if (len + 16 < sizeof(buf)) len += ss_hex16(v, buf + len);
  }
  void hex_or_null(std::uint64_t v) {
    if (v == 0) {
      lit("null");
    } else {
      lit("\"");
      hex(v);
      lit("\"");
    }
  }
  void sanitized(const char* field, std::size_t cap) {
    if (len + cap < sizeof(buf)) len += ss_sanitized(field, cap, buf + len);
  }
};

void rmt_trace_crash_handler(int sig) {
  static volatile std::sig_atomic_t in_crash = 0;
  if (in_crash == 0 && g_crash_impl != nullptr && g_crash_path[0] != '\0') {
    in_crash = 1;
    Recorder::Impl* impl = g_crash_impl;
    const int fd = ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC,  // lint:raw-io-allowed: signal handler
                          0644);
    if (fd >= 0) {
      // Unlocked reads: the process is dying, torn values are acceptable
      // (the consumer treats a crash dump as best effort; see DESIGN §13).
      const SpanRecord* ring = impl->ring.data();
      const std::size_t cap = impl->ring.size();
      const std::uint64_t recorded = impl->recorded;
      const std::size_t head = impl->head < cap ? impl->head : 0;
      const std::size_t count = recorded < cap ? std::size_t(recorded) : cap;
      {
        LineBuf line;
        line.lit("{\"schema\":\"rmt.trace/1\",\"run_start_unix_ms\":");
        line.dec(impl->run_start_unix_ms);
        line.lit(",\"mono_anchor_ns\":");
        line.dec(impl->mono_anchor_ns);
        line.lit(",\"capacity\":");
        line.dec(cap);
        line.lit(",\"recorded\":");
        line.dec(recorded);
        line.lit(",\"dropped\":");
        line.dec(recorded > cap ? recorded - cap : 0);
        line.lit("}\n");
        ss_write(fd, line.buf, line.len);
      }
      for (std::size_t k = 0; k < count; ++k) {
        const SpanRecord& rec = ring[(head + cap - count + k) % cap];
        if (rec.span_id == 0) continue;
        LineBuf line;
        line.lit("{\"schema\":\"rmt.trace/1\",\"trace\":\"");
        line.hex(rec.trace_id);
        line.lit("\",\"span\":\"");
        line.hex(rec.span_id);
        line.lit("\",\"parent\":");
        line.hex_or_null(rec.parent_span_id);
        line.lit(",\"name\":\"");
        line.sanitized(rec.name, SpanRecord::kNameBytes);
        line.lit("\",\"kind\":\"");
        line.sanitized(rec.kind, SpanRecord::kKindBytes);
        line.lit("\",\"join\":");
        line.hex_or_null(rec.join_span_id);
        line.lit(",\"start_ns\":");
        line.dec(rec.start_ns);
        line.lit(",\"end_ns\":");
        line.dec(rec.end_ns);
        line.lit(",\"attrs\":\"");
        line.sanitized(rec.attrs, SpanRecord::kAttrBytes);
        line.lit("\"}\n");
        ss_write(fd, line.buf, line.len);
      }
      ::close(fd);
    }
  }
  std::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void install_crash_handler() {
  (void)Recorder::global();  // bind g_crash_impl before any signal can fire
  static std::atomic<bool> installed{false};
  if (installed.exchange(true)) return;
  std::signal(SIGSEGV, rmt_trace_crash_handler);
  std::signal(SIGBUS, rmt_trace_crash_handler);
  std::signal(SIGFPE, rmt_trace_crash_handler);
  std::signal(SIGABRT, rmt_trace_crash_handler);
}

}  // namespace rmt::obs::trace

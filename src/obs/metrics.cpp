#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace rmt::obs {

namespace {

std::atomic<bool> g_enabled{false};

void atomic_min(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::size_t Histogram::bucket_of(double v) {
  if (!(v > 1.0)) return 0;  // [0,1] and any negative/NaN input
  // Bucket i (i ≥ 1) holds (2^(i-1), 2^i]: ceil(log2(v)) clamped to range.
  const double lg = std::ceil(std::log2(v));
  if (lg >= double(kBuckets - 1)) return kBuckets - 1;
  return std::size_t(lg);
}

void Histogram::observe(double v) {
  if (v < 0) v = 0;  // durations and byte counts are non-negative by contract
  count_.fetch_add(1, std::memory_order_relaxed);
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}
double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / double(n);
}

double Histogram::quantile(double q) const {
  RMT_REQUIRE(q >= 0.0 && q <= 1.0, "Histogram::quantile: q outside [0,1]");
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  // Rank of the target observation, 1-based, nearest-rank method.
  const std::uint64_t rank = std::max<std::uint64_t>(1, std::uint64_t(std::ceil(q * double(n))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (seen + c >= rank) {
      // Interpolate inside (lo, hi], clamped to the observed range so a
      // single-bucket distribution reports within [min, max].
      const double hi = std::min(i == 0 ? 1.0 : std::ldexp(1.0, int(i)), max());
      const double lo = std::max(i == 0 ? 0.0 : std::ldexp(1.0, int(i) - 1), min());
      const double frac = double(rank - seen) / double(c);
      return lo + (hi - lo) * frac;
    }
    seen += c;
  }
  return max();
}

namespace {

/// Saturating add for count-like atomics: repeated merges of long-lived
/// sinks must clamp at 2^64-1, never wrap back to a small count (a
/// wrapped count silently breaks every quantile that divides by it).
void atomic_sat_add(std::atomic<std::uint64_t>& a, std::uint64_t delta) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  std::uint64_t next;
  do {
    constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
    next = cur > kMax - delta ? kMax : cur + delta;
  } while (!a.compare_exchange_weak(cur, next, std::memory_order_relaxed));
}

}  // namespace

void Histogram::merge(const Histogram& o) {
  if (o.count() == 0) return;  // keep our min/max untouched by an empty peer
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = o.buckets_[i].load(std::memory_order_relaxed);
    if (c) atomic_sat_add(buckets_[i], c);
  }
  atomic_sat_add(count_, o.count());
  atomic_add(sum_, o.sum());
  atomic_min(min_, o.min());
  atomic_max(max_, o.max());
}

std::vector<std::pair<double, std::uint64_t>> Histogram::nonzero_buckets() const {
  std::vector<std::pair<double, std::uint64_t>> out;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c) out.emplace_back(i == 0 ? 1.0 : std::ldexp(1.0, int(i)), c);
  }
  return out;
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Registry::Slot& Registry::slot(const std::string& name, Labels&& labels, Entry::Kind kind) {
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lock(m_);
  auto [it, inserted] = metrics_.try_emplace(Key{name, std::move(labels)});
  Slot& s = it->second;
  if (inserted) {
    s.kind = kind;
    switch (kind) {
      case Entry::Kind::kCounter: s.counter = std::make_unique<Counter>(); break;
      case Entry::Kind::kGauge: s.gauge = std::make_unique<Gauge>(); break;
      case Entry::Kind::kHistogram: s.histogram = std::make_unique<Histogram>(); break;
      case Entry::Kind::kSummary: s.summary = std::make_unique<Summary>(); break;
    }
  } else {
    RMT_REQUIRE(s.kind == kind, "metric '" + name + "' already registered with another kind");
  }
  return s;
}

Counter& Registry::counter(const std::string& name, Labels labels) {
  return *slot(name, std::move(labels), Entry::Kind::kCounter).counter;
}
Gauge& Registry::gauge(const std::string& name, Labels labels) {
  return *slot(name, std::move(labels), Entry::Kind::kGauge).gauge;
}
Histogram& Registry::histogram(const std::string& name, Labels labels) {
  return *slot(name, std::move(labels), Entry::Kind::kHistogram).histogram;
}
Summary& Registry::summary(const std::string& name, Labels labels) {
  return *slot(name, std::move(labels), Entry::Kind::kSummary).summary;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(m_);
  metrics_.clear();
}

void Registry::merge_from(const Registry& other) {
  RMT_REQUIRE(&other != this, "Registry::merge_from: cannot merge a registry into itself");
  for (const Entry& e : other.entries()) {
    Labels labels = e.labels;
    Slot& s = slot(e.name, std::move(labels), e.kind);
    switch (e.kind) {
      case Entry::Kind::kCounter: s.counter->merge(*e.counter); break;
      case Entry::Kind::kGauge: s.gauge->merge(*e.gauge); break;
      case Entry::Kind::kHistogram: s.histogram->merge(*e.histogram); break;
      case Entry::Kind::kSummary: s.summary->merge(*e.summary); break;
    }
  }
}

std::vector<Registry::Entry> Registry::entries() const {
  std::lock_guard<std::mutex> lock(m_);
  std::vector<Entry> out;
  out.reserve(metrics_.size());
  for (const auto& [key, s] : metrics_) {
    Entry e;
    e.name = key.name;
    e.labels = key.labels;
    e.kind = s.kind;
    e.counter = s.counter.get();
    e.gauge = s.gauge.get();
    e.histogram = s.histogram.get();
    e.summary = s.summary.get();
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace rmt::obs

// obs/timer.hpp — scoped phase timers for the hot paths.
//
//   void find_rmt_cut(...) {
//     RMT_OBS_SCOPE("rmt_cut.find");
//     ...
//   }
//
// When observability is on (obs::set_enabled), each scope exit records its
// wall-clock duration twice: into the global registry histogram
// "phase.<name>" (microseconds — the cross-run aggregate the bench
// reports export), and into the thread-local PhaseProfile collector, if
// one is installed (the per-run breakdown protocols::Outcome carries).
// When observability is off the macro costs one relaxed atomic load and
// no clock reads — cheap enough to leave in the deciders' entry points.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.hpp"
#include "obs/phase_names.hpp"
#include "util/audit.hpp"

namespace rmt::obs {

/// Accumulated wall time of one named phase within a profiled region.
struct PhaseStat {
  std::uint64_t count = 0;
  double total_us = 0;
  double max_us = 0;
};

/// name -> accumulated stat. Attached to run outcomes; merged by drivers.
class PhaseProfile {
 public:
  void record(const char* name, double us) {
    PhaseStat& s = phases_[name];
    ++s.count;
    s.total_us += us;
    if (us > s.max_us) s.max_us = us;
  }

  void merge(const PhaseProfile& o) {
    for (const auto& [name, s] : o.phases_) {
      PhaseStat& mine = phases_[name];
      mine.count += s.count;
      mine.total_us += s.total_us;
      if (s.max_us > mine.max_us) mine.max_us = s.max_us;
    }
  }

  bool empty() const { return phases_.empty(); }
  const std::map<std::string, PhaseStat>& phases() const { return phases_; }

 private:
  std::map<std::string, PhaseStat> phases_;
};

namespace detail {
/// The thread's active per-run collector (null when none). Exposed only
/// for ScopedCollector/ScopedTimer.
PhaseProfile*& current_profile();
}  // namespace detail

/// RAII: routes this thread's scope timings into `profile` (in addition
/// to the global registry) until destruction. Nest-safe: restores the
/// previous collector on exit.
class ScopedCollector {
 public:
  explicit ScopedCollector(PhaseProfile& profile)
      : prev_(detail::current_profile()) {
    detail::current_profile() = &profile;
  }
  ~ScopedCollector() { detail::current_profile() = prev_; }
  ScopedCollector(const ScopedCollector&) = delete;
  ScopedCollector& operator=(const ScopedCollector&) = delete;

 private:
  PhaseProfile* prev_;
};

/// The object RMT_OBS_SCOPE plants. `name` must outlive the scope (the
/// macro passes a string literal).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name) : name_(name), armed_(enabled()) {
    // Audited builds enforce the closed phase registry at runtime (the
    // linter enforces it statically); see obs/phase_names.hpp.
    if constexpr (audit::kEnabled) {
      if (!is_known_phase(name_))
        audit::detail::fail("obs", std::string("unregistered phase name: ") + name_);
    }
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (!armed_) return;
    const auto end = std::chrono::steady_clock::now();
    const double us = std::chrono::duration<double, std::micro>(end - start_).count();
    Registry::global().histogram(std::string("phase.") + name_).observe(us);
    if (PhaseProfile* p = detail::current_profile()) p->record(name_, us);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rmt::obs

#define RMT_OBS_CONCAT_INNER(a, b) a##b
#define RMT_OBS_CONCAT(a, b) RMT_OBS_CONCAT_INNER(a, b)
/// Time the enclosing scope as observability phase `name` (a literal).
#define RMT_OBS_SCOPE(name) ::rmt::obs::ScopedTimer RMT_OBS_CONCAT(rmt_obs_scope_, __LINE__)(name)

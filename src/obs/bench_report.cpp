#include "obs/bench_report.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace rmt::obs {

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {
  // The trace recorder's anchors, so a BENCH_*.json and an rmt.trace/1
  // dump from the same process agree on the epoch byte-for-byte.
  const trace::DumpHeader h = trace::Recorder::global().header();
  run_start_unix_ms_ = h.run_start_unix_ms;
  mono_anchor_ns_ = h.mono_anchor_ns;
}

void BenchReport::set_columns(std::vector<std::string> columns) {
  RMT_REQUIRE(rows_.empty(), "BenchReport: set_columns after rows were added");
  columns_ = std::move(columns);
}

void BenchReport::add_row(std::vector<BenchValue> cells) {
  RMT_REQUIRE(cells.size() == columns_.size(),
              "BenchReport: row width does not match the column count");
  rows_.push_back(std::move(cells));
}

namespace {

void write_cell(json::Writer& w, const BenchValue& v) {
  struct Visitor {
    json::Writer& w;
    void operator()(const std::string& s) const { w.value(s); }
    void operator()(double d) const { w.value(d); }
    void operator()(std::int64_t i) const { w.value(i); }
    void operator()(std::uint64_t u) const { w.value(u); }
    void operator()(bool b) const { w.value(b); }
  };
  std::visit(Visitor{w}, v);
}

}  // namespace

std::string BenchReport::to_json() const {
  json::Writer w;
  w.begin_object();
  w.field("schema", "rmt.bench/1");
  w.field("name", name_);
  w.key("run").begin_object();
  w.field("start_unix_ms", run_start_unix_ms_);
  w.field("mono_anchor_ns", mono_anchor_ns_);
  w.end_object();
  w.key("columns").begin_array();
  for (const auto& c : columns_) w.value(c);
  w.end_array();
  w.key("rows").begin_array();
  for (const auto& row : rows_) {
    w.begin_object();
    for (std::size_t i = 0; i < row.size(); ++i) {
      w.key(columns_[i]);
      write_cell(w, row[i]);
    }
    w.end_object();
  }
  w.end_array();
  w.key("metrics").raw_value(snapshot_json(Registry::global()));
  w.end_object();
  return w.take();
}

void BenchReport::write(const std::string& path) const {
  const std::string doc = to_json();
  if (path == "-") {
    std::printf("%s\n", doc.c_str());
    return;
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("BenchReport: cannot open " + path);
  out << doc << '\n';
  if (!out) throw std::runtime_error("BenchReport: write failed for " + path);
}

std::optional<std::string> consume_string_flag(int& argc, char** argv, const char* flag) {
  const std::string prefix = std::string(flag) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::optional<std::string> value;
    int consumed = 0;
    if (arg == flag && i + 1 < argc) {
      value = argv[i + 1];
      consumed = 2;
    } else if (arg.rfind(prefix, 0) == 0) {
      value = arg.substr(prefix.size());
      consumed = 1;
    }
    if (!value) continue;
    for (int j = i; j + consumed < argc; ++j) argv[j] = argv[j + consumed];
    argc -= consumed;
    return value;
  }
  return std::nullopt;
}

std::optional<std::string> consume_json_flag(int& argc, char** argv) {
  return consume_string_flag(argc, argv, "--json");
}

}  // namespace rmt::obs

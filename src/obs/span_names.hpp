// obs/span_names.hpp — the closed registry of trace span names.
//
// Span names are the phase vocabulary of the request-scoped tracer
// (obs/trace.hpp). A name used by library code is either
//  * a phase name from obs/phase_names.hpp — RMT_TRACE_SPAN sites mirror
//    RMT_OBS_SCOPE sites one-for-one, so a span and its histogram share a
//    label; or
//  * a span-only name listed here — the structural spans the svc/exec
//    layers emit that have no scoped-timer counterpart (request roots,
//    coalescing joins, pool task re-entry).
//
// Like the phase registry, this one is enforced twice:
//  * statically  — tools/rmt_lint.py scans every RMT_TRACE_SPAN /
//    RMT_TRACE_NAME literal under src/ against the union of both
//    registries, both directions (an unknown site name, or a span-registry
//    entry with no remaining site, fails the lint_project test);
//  * dynamically — with RMT_AUDIT on, the RMT_TRACE_SPAN constructor
//    rejects names outside the phase registry (obs/trace.hpp).
//
// To add a span name: add the RMT_TRACE_NAME site and the entry here in
// the same change; the linter markers below delimit what it parses.
#pragma once

#include <array>
#include <string_view>

#include "obs/phase_names.hpp"

namespace rmt::obs {

// lint:span-registry-begin
inline constexpr std::array<std::string_view, 6> kSpanNames = {
    "exec.task",
    "net.conn",
    "net.read",
    "net.write",
    "svc.join",
    "svc.request",
};
// lint:span-registry-end

constexpr bool is_known_span(std::string_view name) {
  // "test." is reserved for unit tests, mirroring is_known_phase.
  if (is_known_phase(name)) return true;
  for (std::string_view s : kSpanNames)
    if (s == name) return true;
  return false;
}

}  // namespace rmt::obs

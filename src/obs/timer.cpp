#include "obs/timer.hpp"

namespace rmt::obs::detail {

PhaseProfile*& current_profile() {
  thread_local PhaseProfile* p = nullptr;
  return p;
}

}  // namespace rmt::obs::detail

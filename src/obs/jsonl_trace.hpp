// obs/jsonl_trace.hpp — the machine-readable sibling of sim::TraceRecorder.
//
// Observes the same Network callbacks but appends one JSON object per
// line to an ostream, so transcripts can be post-processed (jq, pandas)
// instead of read by eye:
//
//   {"event":"round","round":1}
//   {"event":"delivery","round":1,"from":0,"to":1,"kind":"value",
//    "bytes":9,"adversarial":false}
//
// An optional receiver filter keeps only deliveries addressed to one
// node — the JSONL analogue of TraceRecorder::render_for.
#pragma once

#include <optional>
#include <ostream>

#include "sim/message.hpp"
#include "sim/trace.hpp"

namespace rmt::obs {

class JsonlTraceObserver final : public sim::NetworkObserver {
 public:
  /// Writes events to `out` (not owned; must outlive the observer). If
  /// `only_to` is set, deliveries to other nodes are skipped (round
  /// boundary events are always emitted).
  explicit JsonlTraceObserver(std::ostream& out, std::optional<NodeId> only_to = std::nullopt)
      : out_(out), only_to_(only_to) {}

  void on_round_begin(std::size_t round) override;
  void on_delivery(const sim::Message& m, bool adversarial) override;

  std::size_t events_written() const { return events_; }

 private:
  std::ostream& out_;
  std::optional<NodeId> only_to_;
  std::size_t round_ = 0;
  std::size_t events_ = 0;
};

/// Short payload-kind tag used in trace events ("value", "path_value",
/// "knowledge").
const char* payload_kind(const sim::Payload& p);

}  // namespace rmt::obs

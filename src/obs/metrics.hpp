// obs/metrics.hpp — the observability core: named, label-tagged metrics.
//
// Four metric kinds cover everything the experiments report:
//   * Counter   — monotone event count (messages routed, oracle queries);
//   * Gauge     — last-written level (live instances, current round);
//   * Histogram — value distribution over fixed log-scale buckets, with
//                 percentile estimation (phase latencies, payload sizes);
//   * Summary   — the existing OnlineStats (util/stats.hpp) under a name.
//
// Metrics live in a Registry keyed by (name, labels). The global()
// registry is what the RMT_OBS_SCOPE timers and the simulator feed;
// drivers snapshot it (obs/json.hpp) into machine-readable reports.
//
// Cost model: observability is *globally disabled by default*. Every
// instrumentation site guards on obs::enabled() — one relaxed atomic
// load — so the fault-free hot paths pay nothing measurable when the
// feature is off. Metric objects themselves use relaxed atomics, so a
// handle obtained once can be bumped from hot loops without locking;
// the registry mutex is touched only on lookup/registration.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.hpp"

namespace rmt::obs {

/// Global observability switch. Off by default; experiment drivers and the
/// CLI flip it on before the runs they want measured.
bool enabled();
void set_enabled(bool on);

/// Labels attach dimensions to a metric name ("protocol" -> "zcpa").
/// Sorted on construction so label order never splits a series.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t by = 1) { v_.fetch_add(by, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  /// Fold another counter in (totals add).
  void merge(const Counter& o) { inc(o.value()); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  /// Gauges are last-written levels; merging adopts the other's value.
  void merge(const Gauge& o) { set(o.value()); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-scale histogram: bucket i counts observations in (2^(i-1), 2^i]
/// (bucket 0 is [0, 1]). 64 buckets span the full non-negative double
/// range the experiments can produce (nanosecond phases up to hours,
/// byte counts up to exabytes) with ≤ 2x relative quantile error — the
/// right trade for regress-checking latency percentiles across PRs.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  ///< 0 when empty
  double max() const;  ///< 0 when empty
  double mean() const;

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// selected log bucket. p50/p95/p99 in reports come from here.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// Non-empty buckets as (upper_bound, count) pairs, for export.
  std::vector<std::pair<double, std::uint64_t>> nonzero_buckets() const;

  /// Fold another histogram in: bucket-wise counts add; sum/count add;
  /// min/max widen. Quantiles of the merge equal those of the combined
  /// observation stream (up to the shared bucket resolution). Counts
  /// saturate at 2^64-1 instead of wrapping.
  void merge(const Histogram& o);

 private:
  static std::size_t bucket_of(double v);
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{0.0};
};

/// OnlineStats under a registry name — exact mean/stddev/min/max where
/// the log-bucket resolution of Histogram is too coarse (table cells).
/// Not lock-free; guarded by its own mutex (summary sites are not hot).
class Summary {
 public:
  void observe(double v) {
    std::lock_guard<std::mutex> lock(m_);
    stats_.add(v);
  }
  OnlineStats snapshot() const {
    std::lock_guard<std::mutex> lock(m_);
    return stats_;
  }
  /// Fold another summary in (parallel Welford combination).
  void merge(const Summary& o) {
    const OnlineStats theirs = o.snapshot();  // lock o, then self: no nesting
    std::lock_guard<std::mutex> lock(m_);
    stats_.merge(theirs);
  }

 private:
  mutable std::mutex m_;
  OnlineStats stats_;
};

/// Owns all metrics. Lookup registers on first use; returned references
/// stay valid for the registry's lifetime (metrics are never removed).
class Registry {
 public:
  /// The process-wide registry all built-in instrumentation feeds.
  static Registry& global();

  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  Histogram& histogram(const std::string& name, Labels labels = {});
  Summary& summary(const std::string& name, Labels labels = {});

  /// Drop every metric (a fresh slate between bench sections).
  void reset();

  /// Fold every metric of `other` into this registry (get-or-create by
  /// (name, labels), then kind-wise merge: counters/histograms/summaries
  /// add, gauges adopt the other's level). This is how per-worker sinks
  /// combine into an aggregate without contending on one registry from
  /// hot loops: workers feed private registries, the owner concatenates
  /// them once at a shard/phase boundary. A name registered with a
  /// different kind on the two sides is an error.
  void merge_from(const Registry& other);

  /// One metric at snapshot time, for export and tests.
  struct Entry {
    enum class Kind { kCounter, kGauge, kHistogram, kSummary };
    std::string name;
    Labels labels;
    Kind kind;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
    const Summary* summary = nullptr;
  };

  /// Stable order: by name, then labels.
  std::vector<Entry> entries() const;

 private:
  struct Key {
    std::string name;
    Labels labels;
    bool operator<(const Key& o) const {
      return name != o.name ? name < o.name : labels < o.labels;
    }
  };
  struct Slot {
    Entry::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<Summary> summary;
  };

  Slot& slot(const std::string& name, Labels&& labels, Entry::Kind kind);

  mutable std::mutex m_;
  std::map<Key, Slot> metrics_;
};

}  // namespace rmt::obs

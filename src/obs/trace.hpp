// obs/trace.hpp — request-scoped span tracing and the flight recorder.
//
// Where obs/metrics.hpp aggregates globally, this layer answers "where did
// *this request* spend its time": every span carries a 64-bit trace id
// (the request) and span id (the scope), a parent link, monotonic
// start/stop timestamps and a small attribute string. Ids are
// splitmix-derived from a global sequence — deterministic under a fixed
// set_seed, so tests can assert exact ids.
//
// Data path ("lock-free-enough"): a finished span is appended to a
// per-thread buffer under that thread's own uncontended mutex; full
// buffers flush in batches into the bounded flight-recorder ring (the
// last-capacity() spans are always retained in memory). The ring is
// dumped as rmt.trace/1 JSONL
//   * on demand            — write_file / write_jsonl / rmt_serve's
//                            "trace" probe / --trace-out at exit;
//   * on deadline_exceeded — svc::Engine calls dump_now when a dump path
//                            is configured;
//   * on crash             — install_crash_handler writes the ring with
//                            async-signal-safe calls only (best effort:
//                            unflushed per-thread tails are lost and a
//                            torn in-flight slot may be garbled; see
//                            DESIGN §13).
//
// Context propagation: the current TraceContext is thread-local;
// exec::ThreadPool::submit captures the submitting thread's context and
// re-enters it in the worker (wrapped in an "exec.task" span), so decider
// phases nest under the owning request even across the pool boundary.
//
// Cost model: like obs::enabled(), tracing is off by default and every
// entry point guards on one relaxed atomic load — bench_trace_overhead
// hard-checks that an idle RMT_TRACE_SPAN stays within its per-site
// budget, so the macros are safe to leave in the deciders' entry points.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/phase_names.hpp"
#include "obs/span_names.hpp"
#include "obs/timer.hpp"  // RMT_OBS_CONCAT
#include "util/audit.hpp"

namespace rmt::obs::trace {

/// Global tracing switch, independent of obs::enabled(). Off by default.
bool enabled();
void set_enabled(bool on);

/// Reset the id stream: the k-th id after set_seed(s) is a pure function
/// of (s, k). Also the default stream's definition (seed 4242).
void set_seed(std::uint64_t seed);

/// Next id from the global splitmix stream; never 0 (0 = "no id").
std::uint64_t next_id();

/// The canonical 16-hex-digit wire spelling of a trace/span id ("...").
/// rmt.trace/1 and the rmt.response/1 trace_id field both use it.
std::string id_hex(std::uint64_t id);

/// Monotonic nanoseconds since the recorder's epoch (first use).
std::uint64_t now_ns();

/// The (trace id, active span id) pair a thread carries. trace_id == 0
/// means "no active trace" — spans started then become trace roots.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

/// This thread's active context ({0,0} when none).
TraceContext current();

/// RAII: make `ctx` current until destruction (no-op for invalid ctx).
/// This is what the pool's task wrapper uses to re-enter the submitter's
/// context on a worker thread.
class ContextGuard {
 public:
  explicit ContextGuard(TraceContext ctx);
  ~ContextGuard();
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  TraceContext prev_;
  bool active_ = false;
};

/// A fresh root context (new trace id, new root span id). The caller owns
/// emitting the matching root span record (see svc::Engine::run).
TraceContext new_root_context();

/// One finished span, as stored in the flight recorder. Fixed-size POD:
/// the ring is preallocated and the crash writer must never allocate, so
/// names and attributes live in bounded char arrays (silently truncated).
struct SpanRecord {
  static constexpr std::size_t kNameBytes = 48;
  static constexpr std::size_t kKindBytes = 8;
  static constexpr std::size_t kAttrBytes = 128;

  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;  ///< 0 = root
  std::uint64_t join_span_id = 0;    ///< "join" spans: the leader's span
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  char name[kNameBytes] = {};
  char kind[kKindBytes] = {};  ///< "span" or "join"
  char attrs[kAttrBytes] = {};  ///< "k=v;k=v", append-only

  void set_name(std::string_view v);
  void set_kind(std::string_view v);
  /// Append "key=value"; dropped whole if it does not fit. The const char*
  /// overload exists so string literals do not decay into the bool one.
  void add_attr(std::string_view key, std::string_view value);
  void add_attr(std::string_view key, const char* value) {
    add_attr(key, std::string_view(value));
  }
  void add_attr(std::string_view key, std::uint64_t value);
  void add_attr(std::string_view key, bool value);
};

/// Record a manually-assembled span (fills kind with "span" when unset).
/// No-op while tracing is disabled.
void emit(const SpanRecord& rec);

/// RAII span: starts on construction, becomes the thread's current
/// context, records itself into the flight recorder on finish()/
/// destruction. Inert (no clock read, nothing recorded) while tracing is
/// disabled. `name` must outlive the span (pass a string literal).
class Span {
 public:
  /// Tag for RMT_TRACE_SPAN: audited builds enforce the phase registry,
  /// exactly like RMT_OBS_SCOPE's ScopedTimer.
  struct Phase {};

  explicit Span(const char* name);
  Span(Phase, const char* name) : Span(name) {
    if constexpr (audit::kEnabled) {
      if (!is_known_phase(name))
        audit::detail::fail("obs", std::string("unregistered trace phase name: ") + name);
    }
  }
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// End the span early (idempotent); restores the previous context.
  void finish();

  void attr(std::string_view key, std::string_view value);
  void attr(std::string_view key, const char* value) { attr(key, std::string_view(value)); }
  void attr(std::string_view key, std::uint64_t value);
  void attr(std::string_view key, bool value);
  /// Mark as a coalescing join referencing `target_span_id`.
  void set_join(std::uint64_t target_span_id);

  bool armed() const { return armed_; }
  std::uint64_t trace_id() const { return rec_.trace_id; }
  std::uint64_t span_id() const { return rec_.span_id; }

 private:
  SpanRecord rec_;
  TraceContext prev_;
  bool armed_ = false;
  bool finished_ = false;
};

/// Dump header: enough to align this dump with other artifacts from the
/// same process (rmt.bench/1 carries the same two anchors).
struct DumpHeader {
  std::uint64_t run_start_unix_ms = 0;  ///< wall clock at the epoch, once
  std::uint64_t mono_anchor_ns = 0;     ///< steady_clock raw value at the epoch
  std::uint64_t capacity = 0;
  std::uint64_t recorded = 0;  ///< spans ever flushed into the ring
  std::uint64_t dropped = 0;   ///< overwritten (recorded - retained)
};

/// The bounded flight recorder. One per process (global()); deliberately
/// leaked so the crash handler can never observe a destroyed ring.
class Recorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  static Recorder& global();

  /// Resize the ring (drops retained spans). Configure before tracing.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  /// Drop retained spans and reset the recorded/dropped accounting.
  void clear();

  std::uint64_t recorded() const;
  std::uint64_t dropped() const;
  DumpHeader header() const;

  /// Drain every thread buffer into the ring, then copy it out, oldest
  /// first. The recorder's read path for dumps, probes and tests.
  std::vector<SpanRecord> snapshot() const;

  /// rmt.trace/1 JSONL: one header line, then one line per retained span.
  void write_jsonl(std::ostream& out) const;
  /// write_jsonl to `path`; false (with no throw) on I/O failure.
  bool write_file(const std::string& path) const;

  /// Dump destination for dump_now / the crash handler ("" = disabled).
  void set_dump_path(std::string path);
  std::string dump_path() const;
  /// Best-effort write_file(dump_path()) tagged with `reason`; no-op when
  /// no dump path is configured. svc::Engine calls this on
  /// deadline_exceeded.
  void dump_now(const char* reason);

  // Internal producer API (Span / emit): append one finished record via
  // the calling thread's buffer.
  void record(const SpanRecord& rec);

  /// Opaque state; public only so the signal handler (a file-scope
  /// function, not a member) can hold a raw pointer to it.
  struct Impl;

 private:
  Recorder();
  Impl* impl_;  // leaked with the recorder
};

/// JSON for one span line / the header line (shared by file dumps and
/// rmt_serve's "trace" probe, so both speak identical rmt.trace/1 bytes).
std::string span_json(const SpanRecord& rec);
std::string header_json(const DumpHeader& h);

/// Install SIGSEGV/SIGBUS/SIGFPE/SIGABRT handlers that write the ring to
/// the configured dump path with async-signal-safe calls, then re-raise.
/// Opt-in (rmt_serve --trace-out); idempotent.
void install_crash_handler();

}  // namespace rmt::obs::trace

/// Marks a span-name literal for tools/rmt_lint.py's span registry rule;
/// expands to the literal itself.
#define RMT_TRACE_NAME(name) name

/// Span-emitting sibling of RMT_OBS_SCOPE: trace the enclosing scope as a
/// span named `name` (a phase-registry literal).
#define RMT_TRACE_SPAN(name)                                    \
  ::rmt::obs::trace::Span RMT_OBS_CONCAT(rmt_trace_span_, __LINE__)( \
      ::rmt::obs::trace::Span::Phase{}, name)

// obs/phase_names.hpp — the closed registry of observability phase names.
//
// Every RMT_OBS_SCOPE site in the library must use a name listed here, so
// that dashboards, bench baselines and the rmt.bench/1 consumers can treat
// the phase vocabulary as a stable schema rather than a free-form string
// space. The registry is enforced twice:
//  * statically  — tools/rmt_lint.py cross-checks all RMT_OBS_SCOPE sites
//    against this list, both directions (unknown site name, or a registry
//    entry with no remaining site, fails the lint_project test);
//  * dynamically — with RMT_AUDIT on, ScopedTimer rejects unregistered
//    names at scope entry (obs/timer.hpp).
//
// To add a phase: add the RMT_OBS_SCOPE site and the entry here in the
// same change; the linter markers below delimit what it parses.
#pragma once

#include <array>
#include <string_view>

namespace rmt::obs {

// lint:phase-registry-begin
inline constexpr std::array<std::string_view, 20> kPhaseNames = {
    "adversary.matrix_build",
    "adversary.oplus",
    "adversary.restrict",
    "audit.validate",
    "exec.campaign",
    "exec.shard",
    "feasibility.two_cover",
    "minimal_knowledge.search",
    "rmt_cut.find",
    "runner.run_broadcast",
    "runner.run_rmt",
    "sim.adversary_act",
    "sim.honest_round",
    "sim.route",
    "store.append",
    "store.compact",
    "store.load",
    "svc.batch",
    "svc.compute",
    "zpp_cut.find",
};
// lint:phase-registry-end

constexpr bool is_known_phase(std::string_view name) {
  // The "test." prefix is reserved for unit tests exercising the timer
  // machinery itself; library code must use a registered name (the linter
  // rejects "test." under src/).
  if (name.substr(0, 5) == "test.") return true;
  for (std::string_view p : kPhaseNames)
    if (p == name) return true;
  return false;
}

}  // namespace rmt::obs

// obs/bench_report.hpp — the machine-readable artifact every experiment
// driver can emit next to its ASCII table.
//
// Schema "rmt.bench/1" (validated by tools/check_bench_json.py):
//   {
//     "schema":  "rmt.bench/1",
//     "name":    "<driver name>",
//     "run":     {"start_unix_ms": <wall clock at construction>,
//                 "mono_anchor_ns": <steady_clock raw value at the trace
//                 epoch — the same pair an rmt.trace/1 header carries, so
//                 tools/trace_compare.py can align a bench artifact with
//                 the trace dump from the same process>},
//     "columns": ["n", "time_us", ...],
//     "rows":    [{"n": 6, "time_us": 12.5, ...}, ...],
//     "metrics": <obs::snapshot_json of the global registry — includes
//                 "phases" (per-phase timing histograms recorded by
//                 RMT_OBS_SCOPE) and "counters" (the "sim.*" simulator
//                 totals the protocol runner accumulates)>
//   }
//
// Rows are typed (numbers stay numbers) so the BENCH_*.json perf
// trajectory can be diffed numerically across PRs, not re-parsed from
// table text.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace rmt::obs {

/// One typed table cell.
using BenchValue = std::variant<std::string, double, std::int64_t, std::uint64_t, bool>;

class BenchReport {
 public:
  /// Captures the run anchors (wall clock + the trace recorder's monotonic
  /// epoch) once, at construction.
  explicit BenchReport(std::string name);

  /// Column names; must be set before the first add_row.
  void set_columns(std::vector<std::string> columns);

  /// One result row; size must match the column count.
  void add_row(std::vector<BenchValue> cells);

  const std::string& name() const { return name_; }
  std::size_t num_rows() const { return rows_.size(); }

  /// Full document, including the current global-registry snapshot.
  std::string to_json() const;

  /// Write to_json() to `path` ("-" = stdout). Throws on I/O failure.
  void write(const std::string& path) const;

 private:
  std::string name_;
  std::uint64_t run_start_unix_ms_ = 0;
  std::uint64_t mono_anchor_ns_ = 0;
  std::vector<std::string> columns_;
  std::vector<std::vector<BenchValue>> rows_;
};

/// Scan argv for "<flag> <value>" (or "<flag>=<value>"); returns the value
/// and removes the flag from argv/argc so drivers can hand the rest to
/// their own parsing (google-benchmark's included).
std::optional<std::string> consume_string_flag(int& argc, char** argv, const char* flag);

/// consume_string_flag for "--json <path>".
std::optional<std::string> consume_json_flag(int& argc, char** argv);

}  // namespace rmt::obs

#include "obs/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace rmt::obs {

namespace json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Writer::before_value() {
  if (!stack_.empty() && stack_.back() == Ctx::kObject)
    RMT_CHECK(pending_key_, "json::Writer: value inside an object requires key() first");
  if (needs_comma_) out_ += ',';
  needs_comma_ = false;
  pending_key_ = false;
}

Writer& Writer::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Ctx::kObject);
  return *this;
}

Writer& Writer::end_object() {
  RMT_CHECK(!stack_.empty() && stack_.back() == Ctx::kObject && !pending_key_,
            "json::Writer: unbalanced end_object");
  stack_.pop_back();
  out_ += '}';
  needs_comma_ = true;
  return *this;
}

Writer& Writer::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Ctx::kArray);
  return *this;
}

Writer& Writer::end_array() {
  RMT_CHECK(!stack_.empty() && stack_.back() == Ctx::kArray,
            "json::Writer: unbalanced end_array");
  stack_.pop_back();
  out_ += ']';
  needs_comma_ = true;
  return *this;
}

Writer& Writer::key(const std::string& k) {
  RMT_CHECK(!stack_.empty() && stack_.back() == Ctx::kObject && !pending_key_,
            "json::Writer: key() outside an object");
  if (needs_comma_) out_ += ',';
  needs_comma_ = false;
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

Writer& Writer::value(const std::string& v) {
  before_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  needs_comma_ = true;
  return *this;
}

Writer& Writer::value(const char* v) { return value(std::string(v)); }

Writer& Writer::value(double v) {
  if (!std::isfinite(v)) return null();
  before_value();
  // Shortest %g form that round-trips the double exactly.
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double parsed = 0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == v) break;
  }
  out_ += buf;
  needs_comma_ = true;
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  needs_comma_ = true;
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  needs_comma_ = true;
  return *this;
}

Writer& Writer::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  needs_comma_ = true;
  return *this;
}

Writer& Writer::null() {
  before_value();
  out_ += "null";
  needs_comma_ = true;
  return *this;
}

Writer& Writer::raw_value(const std::string& document) {
  before_value();
  out_ += document;
  needs_comma_ = true;
  return *this;
}

std::string Writer::take() {
  RMT_CHECK(stack_.empty(), "json::Writer: take() with open containers");
  return std::move(out_);
}

/// Recursive-descent parser over the grammar the Writer emits.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value document() {
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after the document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("json::parse: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_word(const char* w) {
    const std::size_t len = std::string(w).size();
    if (s_.compare(pos_, len, w) != 0) return false;
    pos_ += len;
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Value v;
        v.kind_ = Value::Kind::kString;
        v.str_ = string();
        return v;
      }
      case 't':
      case 'f': {
        Value v;
        v.kind_ = Value::Kind::kBool;
        if (consume_word("true")) v.bool_ = true;
        else if (consume_word("false")) v.bool_ = false;
        else fail("bad literal");
        return v;
      }
      case 'n': {
        if (!consume_word("null")) fail("bad literal");
        return Value{};
      }
      default: return number();
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind_ = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind_ = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr_.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The Writer only emits \u00XX for control characters; anything
          // beyond one byte is outside the dialect we read back.
          if (code > 0xff) fail("\\u escape beyond the writer's dialect");
          out += char(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    const std::string token = s_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("malformed number");
    Value v;
    v.kind_ = Value::Kind::kNumber;
    // Exact path for non-negative integers (seeds, counts): all digits.
    if (token.find_first_not_of("0123456789") == std::string::npos && token.size() <= 20) {
      errno = 0;
      char* endp = nullptr;
      const unsigned long long u = std::strtoull(token.c_str(), &endp, 10);
      if (errno == 0 && endp == token.c_str() + token.size()) {
        v.uint_ = u;
        v.exact_uint_ = true;
        v.num_ = double(u);
        return v;
      }
    }
    std::size_t used = 0;
    try {
      v.num_ = std::stod(token, &used);
    } catch (const std::exception&) {
      fail("malformed number");
    }
    if (used != token.size()) fail("malformed number");
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

Value Value::parse(const std::string& text) { return Parser(text).document(); }

bool Value::as_bool() const {
  RMT_REQUIRE(kind_ == Kind::kBool, "json::Value: not a bool");
  return bool_;
}

double Value::as_double() const {
  RMT_REQUIRE(kind_ == Kind::kNumber, "json::Value: not a number");
  return num_;
}

std::uint64_t Value::as_u64() const {
  RMT_REQUIRE(kind_ == Kind::kNumber && exact_uint_,
              "json::Value: not an exact unsigned integer");
  return uint_;
}

const std::string& Value::as_string() const {
  RMT_REQUIRE(kind_ == Kind::kString, "json::Value: not a string");
  return str_;
}

const std::vector<Value>& Value::array() const {
  RMT_REQUIRE(kind_ == Kind::kArray, "json::Value: not an array");
  return arr_;
}

const Value* Value::find(const std::string& key) const {
  RMT_REQUIRE(kind_ == Kind::kObject, "json::Value: find() on a non-object");
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

}  // namespace json

namespace {

std::string series_key(const Registry::Entry& e, const std::string& name) {
  if (e.labels.empty()) return name;
  std::string k = name + "{";
  for (std::size_t i = 0; i < e.labels.size(); ++i) {
    if (i) k += ",";
    k += e.labels[i].first + "=" + e.labels[i].second;
  }
  return k + "}";
}

void write_histogram_body(json::Writer& w, const Histogram& h) {
  w.begin_object();
  w.field("count", h.count());
  w.field("total_us", h.sum());
  w.field("mean_us", h.mean());
  w.field("min_us", h.min());
  w.field("p50_us", h.p50());
  w.field("p95_us", h.p95());
  w.field("p99_us", h.p99());
  w.field("max_us", h.max());
  w.end_object();
}

}  // namespace

std::string snapshot_json(const Registry& r) {
  constexpr const char* kPhasePrefix = "phase.";
  const auto entries = r.entries();
  json::Writer w;
  w.begin_object();

  w.key("counters").begin_object();
  for (const auto& e : entries)
    if (e.kind == Registry::Entry::Kind::kCounter)
      w.field(series_key(e, e.name), e.counter->value());
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& e : entries)
    if (e.kind == Registry::Entry::Kind::kGauge)
      w.field(series_key(e, e.name), e.gauge->value());
  w.end_object();

  w.key("phases").begin_object();
  for (const auto& e : entries) {
    if (e.kind != Registry::Entry::Kind::kHistogram || e.name.rfind(kPhasePrefix, 0) != 0)
      continue;
    w.key(series_key(e, e.name.substr(std::string(kPhasePrefix).size())));
    write_histogram_body(w, *e.histogram);
  }
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& e : entries) {
    if (e.kind != Registry::Entry::Kind::kHistogram || e.name.rfind(kPhasePrefix, 0) == 0)
      continue;
    w.key(series_key(e, e.name));
    write_histogram_body(w, *e.histogram);
  }
  w.end_object();

  w.key("summaries").begin_object();
  for (const auto& e : entries) {
    if (e.kind != Registry::Entry::Kind::kSummary) continue;
    const OnlineStats s = e.summary->snapshot();
    w.key(series_key(e, e.name)).begin_object();
    w.field("count", s.count());
    if (!s.empty()) {
      w.field("mean", s.mean());
      w.field("stddev", s.stddev());
      w.field("min", s.min());
      w.field("max", s.max());
    }
    w.end_object();
  }
  w.end_object();

  w.end_object();
  return w.take();
}

}  // namespace rmt::obs

#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace rmt::obs {

namespace json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Writer::before_value() {
  if (!stack_.empty() && stack_.back() == Ctx::kObject)
    RMT_CHECK(pending_key_, "json::Writer: value inside an object requires key() first");
  if (needs_comma_) out_ += ',';
  needs_comma_ = false;
  pending_key_ = false;
}

Writer& Writer::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Ctx::kObject);
  return *this;
}

Writer& Writer::end_object() {
  RMT_CHECK(!stack_.empty() && stack_.back() == Ctx::kObject && !pending_key_,
            "json::Writer: unbalanced end_object");
  stack_.pop_back();
  out_ += '}';
  needs_comma_ = true;
  return *this;
}

Writer& Writer::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Ctx::kArray);
  return *this;
}

Writer& Writer::end_array() {
  RMT_CHECK(!stack_.empty() && stack_.back() == Ctx::kArray,
            "json::Writer: unbalanced end_array");
  stack_.pop_back();
  out_ += ']';
  needs_comma_ = true;
  return *this;
}

Writer& Writer::key(const std::string& k) {
  RMT_CHECK(!stack_.empty() && stack_.back() == Ctx::kObject && !pending_key_,
            "json::Writer: key() outside an object");
  if (needs_comma_) out_ += ',';
  needs_comma_ = false;
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

Writer& Writer::value(const std::string& v) {
  before_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  needs_comma_ = true;
  return *this;
}

Writer& Writer::value(const char* v) { return value(std::string(v)); }

Writer& Writer::value(double v) {
  if (!std::isfinite(v)) return null();
  before_value();
  // Shortest %g form that round-trips the double exactly.
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double parsed = 0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == v) break;
  }
  out_ += buf;
  needs_comma_ = true;
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  needs_comma_ = true;
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  needs_comma_ = true;
  return *this;
}

Writer& Writer::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  needs_comma_ = true;
  return *this;
}

Writer& Writer::null() {
  before_value();
  out_ += "null";
  needs_comma_ = true;
  return *this;
}

Writer& Writer::raw_value(const std::string& document) {
  before_value();
  out_ += document;
  needs_comma_ = true;
  return *this;
}

std::string Writer::take() {
  RMT_CHECK(stack_.empty(), "json::Writer: take() with open containers");
  return std::move(out_);
}

}  // namespace json

namespace {

std::string series_key(const Registry::Entry& e, const std::string& name) {
  if (e.labels.empty()) return name;
  std::string k = name + "{";
  for (std::size_t i = 0; i < e.labels.size(); ++i) {
    if (i) k += ",";
    k += e.labels[i].first + "=" + e.labels[i].second;
  }
  return k + "}";
}

void write_histogram_body(json::Writer& w, const Histogram& h) {
  w.begin_object();
  w.field("count", h.count());
  w.field("total_us", h.sum());
  w.field("mean_us", h.mean());
  w.field("min_us", h.min());
  w.field("p50_us", h.p50());
  w.field("p95_us", h.p95());
  w.field("p99_us", h.p99());
  w.field("max_us", h.max());
  w.end_object();
}

}  // namespace

std::string snapshot_json(const Registry& r) {
  constexpr const char* kPhasePrefix = "phase.";
  const auto entries = r.entries();
  json::Writer w;
  w.begin_object();

  w.key("counters").begin_object();
  for (const auto& e : entries)
    if (e.kind == Registry::Entry::Kind::kCounter)
      w.field(series_key(e, e.name), e.counter->value());
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& e : entries)
    if (e.kind == Registry::Entry::Kind::kGauge)
      w.field(series_key(e, e.name), e.gauge->value());
  w.end_object();

  w.key("phases").begin_object();
  for (const auto& e : entries) {
    if (e.kind != Registry::Entry::Kind::kHistogram || e.name.rfind(kPhasePrefix, 0) != 0)
      continue;
    w.key(series_key(e, e.name.substr(std::string(kPhasePrefix).size())));
    write_histogram_body(w, *e.histogram);
  }
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& e : entries) {
    if (e.kind != Registry::Entry::Kind::kHistogram || e.name.rfind(kPhasePrefix, 0) == 0)
      continue;
    w.key(series_key(e, e.name));
    write_histogram_body(w, *e.histogram);
  }
  w.end_object();

  w.key("summaries").begin_object();
  for (const auto& e : entries) {
    if (e.kind != Registry::Entry::Kind::kSummary) continue;
    const OnlineStats s = e.summary->snapshot();
    w.key(series_key(e, e.name)).begin_object();
    w.field("count", s.count());
    if (!s.empty()) {
      w.field("mean", s.mean());
      w.field("stddev", s.stddev());
      w.field("min", s.min());
      w.field("max", s.max());
    }
    w.end_object();
  }
  w.end_object();

  w.end_object();
  return w.take();
}

}  // namespace rmt::obs

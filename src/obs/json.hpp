// obs/json.hpp — a dependency-free streaming JSON writer, plus the
// registry-snapshot export.
//
// Deliberately a writer, not a document model: everything this repository
// exports (metric snapshots, JSONL trace events, bench reports) is
// produced in one forward pass, so a push API with automatic comma and
// escape handling is all that is needed — and it cannot produce
// malformed output short of unbalanced begin/end calls, which it checks.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rmt::obs {

class Registry;

namespace json {

/// Forward-only JSON builder. Usage:
///   Writer w;
///   w.begin_object();
///   w.key("rounds").value(12);
///   w.key("phases").begin_array(); ... w.end_array();
///   w.end_object();
///   std::string out = w.take();
class Writer {
 public:
  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Must be called inside an object, immediately before the value.
  Writer& key(const std::string& k);

  Writer& value(const std::string& v);
  Writer& value(const char* v);
  Writer& value(double v);  ///< non-finite values render as null
  Writer& value(std::uint64_t v);
  Writer& value(std::int64_t v);
  Writer& value(int v) { return value(std::int64_t(v)); }
  Writer& value(unsigned v) { return value(std::uint64_t(v)); }
  Writer& value(bool v);
  Writer& null();

  /// Splice an already-serialized JSON document in value position (e.g.
  /// a snapshot_json() string). The caller vouches for its validity.
  Writer& raw_value(const std::string& document);

  /// Shorthand for key(k).value(v).
  template <typename T>
  Writer& field(const std::string& k, const T& v) {
    return key(k).value(v);
  }

  /// Finish and return the document. Throws if containers are unbalanced.
  std::string take();

 private:
  enum class Ctx : unsigned char { kArray, kObject };
  void before_value();
  std::string out_;
  std::vector<Ctx> stack_;
  bool needs_comma_ = false;
  bool pending_key_ = false;
};

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
std::string escape(const std::string& s);

/// Minimal document model for *reading back* the artifacts this module
/// writes (campaign manifests, bench reports in tests). Numbers keep
/// their exact unsigned-integer value when the token was a non-negative
/// integer that fits std::uint64_t — seeds round-trip losslessly — and
/// a double rendering otherwise. This is a reader for our own output,
/// not a general-purpose JSON library: \uXXXX escapes outside the BMP
/// basics and exotic number forms are rejected rather than interpreted.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parse one complete JSON document (throws std::invalid_argument on
  /// malformed input or trailing garbage).
  static Value parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Typed accessors; each requires the matching kind.
  bool as_bool() const;
  double as_double() const;
  /// Requires the token to have been an exact non-negative integer.
  std::uint64_t as_u64() const;
  const std::string& as_string() const;
  const std::vector<Value>& array() const;

  /// Object member lookup; null when absent. Requires kind() == kObject.
  const Value* find(const std::string& key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::uint64_t uint_ = 0;
  bool exact_uint_ = false;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> members_;

  friend class Parser;
};

}  // namespace json

/// Serialize every metric of `r` as one JSON object:
///   {"counters": {...}, "gauges": {...},
///    "phases": {"rmt_cut.find": {"count":..,"total_us":..,"p50_us":..}},
///    "histograms": {...}, "summaries": {...}}
/// Histograms named "phase.<x>" are reported under "phases" (keyed by
/// <x>); labels render as a "name{k=v,...}" key suffix.
std::string snapshot_json(const Registry& r);

}  // namespace rmt::obs

// bench_micro_sets — microbenchmarks for NodeSet, AdversaryStructure and
// the ⊕ machinery (experiment µB of DESIGN.md). With `--json <path>` the
// per-benchmark timings and the observability snapshot (phase histograms
// of the instrumented ⊕/restrict operations) are also written as an
// rmt.bench/1 artifact.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <optional>
#include <string>

#include "adversary/bit_matrix.hpp"
#include "adversary/joint.hpp"
#include "adversary/threshold.hpp"
#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

using namespace rmt;

NodeSet from_mask(std::size_t mask, std::size_t n) {
  NodeSet s;
  for (std::size_t i = 0; i < n; ++i)
    if ((mask >> i) & 1) s.insert(NodeId(i));
  return s;
}

std::vector<NodeSet> random_sets(std::size_t count, std::size_t universe, Rng& rng) {
  std::vector<NodeSet> out;
  for (std::size_t i = 0; i < count; ++i) {
    NodeSet s;
    for (std::size_t v = 0; v < universe; ++v)
      if (rng.chance(0.3)) s.insert(NodeId(v));
    out.push_back(std::move(s));
  }
  return out;
}

void BM_NodeSetUnion(benchmark::State& state) {
  Rng rng(1);
  const auto sets = random_sets(64, std::size_t(state.range(0)), rng);
  std::size_t i = 0;
  for (auto _ : state) {
    NodeSet u = sets[i % 64] | sets[(i + 7) % 64];
    benchmark::DoNotOptimize(u);
    ++i;
  }
}
BENCHMARK(BM_NodeSetUnion)->Arg(64)->Arg(256)->Arg(1024);

void BM_NodeSetSubset(benchmark::State& state) {
  Rng rng(2);
  const auto sets = random_sets(64, std::size_t(state.range(0)), rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sets[i % 64].is_subset_of(sets[(i + 13) % 64]));
    ++i;
  }
}
BENCHMARK(BM_NodeSetSubset)->Arg(64)->Arg(1024);

void BM_StructureContains(benchmark::State& state) {
  Rng rng(3);
  const auto z = AdversaryStructure::from_sets(random_sets(std::size_t(state.range(0)), 48, rng));
  const auto probes = random_sets(64, 48, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.contains(probes[i++ % 64]));
  }
}
BENCHMARK(BM_StructureContains)->Arg(8)->Arg(64)->Arg(512);

void BM_StructureRestrict(benchmark::State& state) {
  Rng rng(4);
  const auto z = AdversaryStructure::from_sets(random_sets(std::size_t(state.range(0)), 48, rng));
  const auto grounds = random_sets(16, 48, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.restricted_to(grounds[i++ % 16]));
  }
}
BENCHMARK(BM_StructureRestrict)->Arg(8)->Arg(64);

void BM_OplusMaterialize(benchmark::State& state) {
  Rng rng(5);
  const std::size_t k = std::size_t(state.range(0));
  const auto a = RestrictedStructure(AdversaryStructure::from_sets(random_sets(k, 24, rng)),
                                     NodeSet::full(24));
  const auto b = RestrictedStructure(AdversaryStructure::from_sets(random_sets(k, 24, rng)),
                                     from_mask(0xffff00, 24));
  for (auto _ : state) {
    benchmark::DoNotOptimize(oplus(a, b));
  }
}
BENCHMARK(BM_OplusMaterialize)->Arg(4)->Arg(16)->Arg(64);

void BM_JointLazyMembership(benchmark::State& state) {
  Rng rng(6);
  JointStructure joint;
  for (int i = 0; i < state.range(0); ++i) {
    NodeSet ground;
    for (std::size_t v = 0; v < 32; ++v)
      if (rng.chance(0.4)) ground.insert(NodeId(v));
    joint.add_constraint(ground,
                         AdversaryStructure::from_sets(random_sets(6, 32, rng)));
  }
  const auto probes = random_sets(64, 32, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(joint.contains(probes[i++ % 64]));
  }
}
BENCHMARK(BM_JointLazyMembership)->Arg(2)->Arg(8)->Arg(32);

// ---- decider-hot-path shapes (n = 26, the exact-decider cap) -------------
//
// The next three benchmarks probe the structures exactly as find_rmt_cut
// does: the antichain is a 2-threshold (276 maximal sets) or a random
// general structure over 26 nodes, and the probes are boundary-sized sets
// (|C| ≈ 2..4). They exercise the support/popcount prefilters on
// AdversaryStructure::contains and the lazy conjunction in
// JointStructure::contains.

std::vector<NodeSet> cut_shaped_probes(std::size_t count, std::size_t n, Rng& rng) {
  std::vector<NodeSet> out;
  for (std::size_t i = 0; i < count; ++i) {
    NodeSet s;
    const std::size_t k = 2 + i % 3;
    while (s.size() < k) s.insert(NodeId(rng.index(n)));
    out.push_back(std::move(s));
  }
  return out;
}

void BM_StructureContains26(benchmark::State& state) {
  Rng rng(7);
  const NodeSet players = NodeSet::full(26) - NodeSet{0, 13};
  // range(0) == 0: 2-threshold antichain; 1: random 8×3 general antichain —
  // the two adversaries bench_decider_hotpath runs the deciders under.
  const AdversaryStructure z = state.range(0) == 0
                                   ? threshold_structure(players, 2)
                                   : random_structure(players, 8, 3, NodeSet{0, 13}, rng);
  const auto probes = cut_shaped_probes(64, 26, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.contains(probes[i++ % 64]));
  }
}
BENCHMARK(BM_StructureContains26)->Arg(0)->Arg(1);

void BM_JointContains26(benchmark::State& state) {
  Rng rng(8);
  const NodeSet players = NodeSet::full(26) - NodeSet{0, 13};
  const AdversaryStructure z = state.range(0) == 0
                                   ? threshold_structure(players, 2)
                                   : random_structure(players, 8, 3, NodeSet{0, 13}, rng);
  // Z_B for a |B| = 8 component under 3-node views — the same restricted
  // per-node constraints the incremental decider pushes.
  JointStructure joint;
  for (std::size_t v = 13; v < 21; ++v) {
    const NodeSet view{NodeId(v == 0 ? 25 : v - 1), NodeId(v), NodeId((v + 1) % 26)};
    joint.add_constraint(RestrictedStructure(z, view));
  }
  const auto probes = cut_shaped_probes(64, 26, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(joint.contains(probes[i++ % 64]));
  }
}
BENCHMARK(BM_JointContains26)->Arg(0)->Arg(1);

void BM_StructureAdd(benchmark::State& state) {
  // Incremental antichain maintenance: stream range(0) random sets through
  // AdversaryStructure::add. add() is a single ordered domination pass with
  // popcount prefilters; this is the op protocol knowledge-exchange uses to
  // fold reported sets into a running structure.
  Rng rng(9);
  const auto sets = random_sets(std::size_t(state.range(0)), 26, rng);
  for (auto _ : state) {
    AdversaryStructure z;
    for (const NodeSet& s : sets) z.add(s);
    benchmark::DoNotOptimize(z);
  }
}
BENCHMARK(BM_StructureAdd)->Arg(16)->Arg(64)->Arg(256);

void BM_ThresholdStructureBuild(benchmark::State& state) {
  const NodeSet universe = NodeSet::full(std::size_t(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(threshold_structure(universe, 3));
  }
}
BENCHMARK(BM_ThresholdStructureBuild)->Arg(8)->Arg(12)->Arg(16);

// ---- SIMD bit-matrix kernels (util/simd.hpp via SubsetMatrix) ------------
//
// The antichain scan kernels the deciders hit hardest, on the active
// backend and with the scalar reference forced. Run alongside, the pair
// shows what the vector path buys at each antichain size; the identity
// sweep below proves the two backends agree probe for probe.

void BM_SubsetAnyBatched(benchmark::State& state) {
  // range(0): antichain rows (8 sits at the vector-dispatch floor, 64 is
  // comfortably past it); range(1): 1 forces the scalar kernels.
  Rng rng(10);
  const auto z = AdversaryStructure::from_sets(
      random_sets(std::size_t(state.range(0)) * 2, 26, rng));
  SubsetMatrix matrix;
  matrix.build(z.maximal_sets());
  const auto probes = cut_shaped_probes(64, 26, rng);
  const simd::ScopedForceScalar scalar_only(state.range(1) != 0);
  bool out[64];
  for (auto _ : state) {
    matrix.probe_batch(probes.data(), probes.size(), out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * 64);
}
BENCHMARK(BM_SubsetAnyBatched)->Args({8, 0})->Args({8, 1})->Args({64, 0})->Args({64, 1});

void BM_ProbeBatchK(benchmark::State& state) {
  // probe_batch with the decider's chunk sizes (range(0) = k) against the
  // 276-row 2-threshold antichain; range(1): 1 forces scalar.
  Rng rng(11);
  const NodeSet players = NodeSet::full(26) - NodeSet{0, 13};
  const AdversaryStructure z = threshold_structure(players, 2);
  const auto probes = cut_shaped_probes(64, 26, rng);
  const std::size_t k = std::size_t(state.range(0));
  const simd::ScopedForceScalar scalar_only(state.range(1) != 0);
  bool out[64];
  std::size_t base = 0;
  for (auto _ : state) {
    z.probe_batch(probes.data() + base, k, out);
    benchmark::DoNotOptimize(out);
    base = (base + k) % (64 - k);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * std::int64_t(k));
}
BENCHMARK(BM_ProbeBatchK)->Args({4, 0})->Args({4, 1})->Args({16, 0})->Args({16, 1});

// ---- scalar-vs-SIMD identity sweep ---------------------------------------
//
// The backend-identity acceptance for the kernel layer: for antichain
// sizes straddling the dispatch thresholds and probes straddling every
// popcount-bucket boundary, the active backend and the forced-scalar
// reference must answer identically, and probe_batch must equal
// per-candidate contains. Each case is an RMT_CHECK (the emit step fails,
// not just the schema check) and one artifact row.

struct SweepRow {
  std::string kernel;
  std::uint64_t rows;
  std::uint64_t probes;
  double ns_per_probe;
  bool identical;
};

template <typename F>
double ns_per_call(F&& f, std::size_t reps) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < reps; ++i) f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / double(reps);
}

std::vector<SweepRow> run_identity_sweep() {
  std::vector<SweepRow> out;
  Rng rng(12);
  // Antichain sizes: below/at/above the vector-dispatch floor, the matrix
  // build threshold, and the decider-shaped 64 and 276 row counts.
  for (const std::size_t target_rows : {2u, 7u, 8u, 9u, 64u, 276u}) {
    const auto z =
        AdversaryStructure::from_sets(random_sets(target_rows * 3, 26, rng));
    SubsetMatrix matrix;
    matrix.build(z.maximal_sets());
    // Probes at every popcount-bucket boundary p-1 / p / p+1 for each
    // distinct row popcount, plus the empty set and an over-wide set.
    std::vector<NodeSet> probes;
    probes.push_back(NodeSet{});
    probes.push_back(NodeSet::full(27));
    for (const NodeSet& m : z.maximal_sets()) {
      const std::vector<NodeId> elems = m.to_vector();
      if (elems.empty()) continue;
      for (std::size_t take :
           {elems.size() - 1, elems.size(), elems.size() + 1}) {
        NodeSet p;
        for (std::size_t i = 0; i < take && i < elems.size(); ++i) p.insert(elems[i]);
        if (take > elems.size()) p.insert(NodeId(26));
        probes.push_back(std::move(p));
      }
      if (probes.size() >= 96) break;
    }
    std::vector<char> vec_ans(probes.size()), scal_ans(probes.size());
    bool raw[128];
    const double vec_ns = ns_per_call(
        [&] {
          for (std::size_t i = 0; i < probes.size(); ++i)
            vec_ans[i] = matrix.contains_subset(probes[i]) ? 1 : 0;
        },
        200);
    {
      const simd::ScopedForceScalar scalar_only;
      for (std::size_t i = 0; i < probes.size(); ++i)
        scal_ans[i] = matrix.contains_subset(probes[i]) ? 1 : 0;
    }
    matrix.probe_batch(probes.data(), probes.size(), raw);
    bool same = true;
    for (std::size_t i = 0; i < probes.size(); ++i)
      same = same && vec_ans[i] == scal_ans[i] && (raw[i] ? 1 : 0) == vec_ans[i];
    RMT_CHECK(same, "bench_micro_sets: backend identity sweep diverged at " +
                        std::to_string(z.num_maximal_sets()) + " rows");
    out.push_back({"subset_any", z.num_maximal_sets(), probes.size(),
                   vec_ns / double(probes.size()), same});
  }
  return out;
}

/// ConsoleReporter that additionally captures every run for JSON export.
class CapturingReporter final : public benchmark::ConsoleReporter {
 public:
  std::vector<Run> runs;
  void ReportRuns(const std::vector<Run>& report) override {
    runs.insert(runs.end(), report.begin(), report.end());
    ConsoleReporter::ReportRuns(report);
  }
};

}  // namespace

namespace {

/// Pull `--sets-json <path>` out of argv (same convention as
/// obs::consume_json_flag, separate artifact): the kernel rows +
/// identity-sweep report lands there as BENCH_sets.json.
std::optional<std::string> consume_sets_json_flag(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--sets-json" && i + 1 < argc) {
      std::string path = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      return path;
    }
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = rmt::obs::consume_json_flag(argc, argv);
  const auto sets_json_path = consume_sets_json_flag(argc, argv);
  rmt::obs::Registry::global().reset();
  rmt::obs::set_enabled(true);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  // The backend identity sweep always runs: its RMT_CHECKs make this
  // binary fail outright if the vector and scalar kernels ever disagree,
  // with or without an artifact path.
  const std::vector<SweepRow> sweep = run_identity_sweep();
  if (json_path) {
    rmt::obs::BenchReport rep("bench_micro_sets");
    rep.set_columns({"benchmark", "iterations", "real_ns", "cpu_ns"});
    for (const auto& r : reporter.runs) {
      if (r.error_occurred) continue;
      rep.add_row({r.benchmark_name(), std::uint64_t(r.iterations), r.GetAdjustedRealTime(),
                   r.GetAdjustedCPUTime()});
    }
    rep.write(*json_path);
  }
  if (sets_json_path) {
    // BENCH_sets.json: the SIMD kernel rows (both backends, from the
    // google-benchmark runs) plus one identity-sweep row per antichain
    // size. `identical` is also RMT_CHECKed above — a false here can never
    // reach the schema checker.
    rmt::obs::BenchReport rep("bench_sets");
    rep.set_columns({"kernel", "rows", "probes", "ns_per_probe", "identical"});
    for (const auto& r : reporter.runs) {
      if (r.error_occurred) continue;
      const std::string name = r.benchmark_name();
      const bool is_subset = name.rfind("BM_SubsetAnyBatched", 0) == 0;
      const bool is_batch = name.rfind("BM_ProbeBatchK", 0) == 0;
      if (!is_subset && !is_batch) continue;
      // Name format BM_Foo/<arg0>/<scalar>: arg0 is the antichain rows for
      // SubsetAnyBatched and the batch width k for ProbeBatchK.
      const std::size_t slash = name.find('/');
      const std::uint64_t arg0 =
          slash == std::string::npos ? 0 : std::strtoull(name.c_str() + slash + 1, nullptr, 10);
      const std::uint64_t rows = is_subset ? arg0 : 276;
      const std::uint64_t probes = is_subset ? 64 : arg0;
      const double per_probe =
          probes > 0 ? r.GetAdjustedRealTime() / double(probes) : 0.0;
      rep.add_row({name, rows, probes, per_probe, true});
    }
    for (const SweepRow& s : sweep)
      rep.add_row({s.kernel, s.rows, s.probes, s.ns_per_probe, s.identical});
    rep.write(*sets_json_path);
  }
  benchmark::Shutdown();
  return 0;
}

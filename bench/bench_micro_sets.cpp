// bench_micro_sets — microbenchmarks for NodeSet, AdversaryStructure and
// the ⊕ machinery (experiment µB of DESIGN.md). With `--json <path>` the
// per-benchmark timings and the observability snapshot (phase histograms
// of the instrumented ⊕/restrict operations) are also written as an
// rmt.bench/1 artifact.
#include <benchmark/benchmark.h>

#include "adversary/joint.hpp"
#include "adversary/threshold.hpp"
#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace rmt;

NodeSet from_mask(std::size_t mask, std::size_t n) {
  NodeSet s;
  for (std::size_t i = 0; i < n; ++i)
    if ((mask >> i) & 1) s.insert(NodeId(i));
  return s;
}

std::vector<NodeSet> random_sets(std::size_t count, std::size_t universe, Rng& rng) {
  std::vector<NodeSet> out;
  for (std::size_t i = 0; i < count; ++i) {
    NodeSet s;
    for (std::size_t v = 0; v < universe; ++v)
      if (rng.chance(0.3)) s.insert(NodeId(v));
    out.push_back(std::move(s));
  }
  return out;
}

void BM_NodeSetUnion(benchmark::State& state) {
  Rng rng(1);
  const auto sets = random_sets(64, std::size_t(state.range(0)), rng);
  std::size_t i = 0;
  for (auto _ : state) {
    NodeSet u = sets[i % 64] | sets[(i + 7) % 64];
    benchmark::DoNotOptimize(u);
    ++i;
  }
}
BENCHMARK(BM_NodeSetUnion)->Arg(64)->Arg(256)->Arg(1024);

void BM_NodeSetSubset(benchmark::State& state) {
  Rng rng(2);
  const auto sets = random_sets(64, std::size_t(state.range(0)), rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sets[i % 64].is_subset_of(sets[(i + 13) % 64]));
    ++i;
  }
}
BENCHMARK(BM_NodeSetSubset)->Arg(64)->Arg(1024);

void BM_StructureContains(benchmark::State& state) {
  Rng rng(3);
  const auto z = AdversaryStructure::from_sets(random_sets(std::size_t(state.range(0)), 48, rng));
  const auto probes = random_sets(64, 48, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.contains(probes[i++ % 64]));
  }
}
BENCHMARK(BM_StructureContains)->Arg(8)->Arg(64)->Arg(512);

void BM_StructureRestrict(benchmark::State& state) {
  Rng rng(4);
  const auto z = AdversaryStructure::from_sets(random_sets(std::size_t(state.range(0)), 48, rng));
  const auto grounds = random_sets(16, 48, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.restricted_to(grounds[i++ % 16]));
  }
}
BENCHMARK(BM_StructureRestrict)->Arg(8)->Arg(64);

void BM_OplusMaterialize(benchmark::State& state) {
  Rng rng(5);
  const std::size_t k = std::size_t(state.range(0));
  const auto a = RestrictedStructure(AdversaryStructure::from_sets(random_sets(k, 24, rng)),
                                     NodeSet::full(24));
  const auto b = RestrictedStructure(AdversaryStructure::from_sets(random_sets(k, 24, rng)),
                                     from_mask(0xffff00, 24));
  for (auto _ : state) {
    benchmark::DoNotOptimize(oplus(a, b));
  }
}
BENCHMARK(BM_OplusMaterialize)->Arg(4)->Arg(16)->Arg(64);

void BM_JointLazyMembership(benchmark::State& state) {
  Rng rng(6);
  JointStructure joint;
  for (int i = 0; i < state.range(0); ++i) {
    NodeSet ground;
    for (std::size_t v = 0; v < 32; ++v)
      if (rng.chance(0.4)) ground.insert(NodeId(v));
    joint.add_constraint(ground,
                         AdversaryStructure::from_sets(random_sets(6, 32, rng)));
  }
  const auto probes = random_sets(64, 32, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(joint.contains(probes[i++ % 64]));
  }
}
BENCHMARK(BM_JointLazyMembership)->Arg(2)->Arg(8)->Arg(32);

void BM_ThresholdStructureBuild(benchmark::State& state) {
  const NodeSet universe = NodeSet::full(std::size_t(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(threshold_structure(universe, 3));
  }
}
BENCHMARK(BM_ThresholdStructureBuild)->Arg(8)->Arg(12)->Arg(16);

/// ConsoleReporter that additionally captures every run for JSON export.
class CapturingReporter final : public benchmark::ConsoleReporter {
 public:
  std::vector<Run> runs;
  void ReportRuns(const std::vector<Run>& report) override {
    runs.insert(runs.end(), report.begin(), report.end());
    ConsoleReporter::ReportRuns(report);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = rmt::obs::consume_json_flag(argc, argv);
  rmt::obs::Registry::global().reset();
  rmt::obs::set_enabled(true);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (json_path) {
    rmt::obs::BenchReport rep("bench_micro_sets");
    rep.set_columns({"benchmark", "iterations", "real_ns", "cpu_ns"});
    for (const auto& r : reporter.runs) {
      if (r.error_occurred) continue;
      rep.add_row({r.benchmark_name(), std::uint64_t(r.iterations), r.GetAdjustedRealTime(),
                   r.GetAdjustedCPUTime()});
    }
    rep.write(*json_path);
  }
  benchmark::Shutdown();
  return 0;
}

// bench_micro_sets — microbenchmarks for NodeSet, AdversaryStructure and
// the ⊕ machinery (experiment µB of DESIGN.md). With `--json <path>` the
// per-benchmark timings and the observability snapshot (phase histograms
// of the instrumented ⊕/restrict operations) are also written as an
// rmt.bench/1 artifact.
#include <benchmark/benchmark.h>

#include "adversary/joint.hpp"
#include "adversary/threshold.hpp"
#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace rmt;

NodeSet from_mask(std::size_t mask, std::size_t n) {
  NodeSet s;
  for (std::size_t i = 0; i < n; ++i)
    if ((mask >> i) & 1) s.insert(NodeId(i));
  return s;
}

std::vector<NodeSet> random_sets(std::size_t count, std::size_t universe, Rng& rng) {
  std::vector<NodeSet> out;
  for (std::size_t i = 0; i < count; ++i) {
    NodeSet s;
    for (std::size_t v = 0; v < universe; ++v)
      if (rng.chance(0.3)) s.insert(NodeId(v));
    out.push_back(std::move(s));
  }
  return out;
}

void BM_NodeSetUnion(benchmark::State& state) {
  Rng rng(1);
  const auto sets = random_sets(64, std::size_t(state.range(0)), rng);
  std::size_t i = 0;
  for (auto _ : state) {
    NodeSet u = sets[i % 64] | sets[(i + 7) % 64];
    benchmark::DoNotOptimize(u);
    ++i;
  }
}
BENCHMARK(BM_NodeSetUnion)->Arg(64)->Arg(256)->Arg(1024);

void BM_NodeSetSubset(benchmark::State& state) {
  Rng rng(2);
  const auto sets = random_sets(64, std::size_t(state.range(0)), rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sets[i % 64].is_subset_of(sets[(i + 13) % 64]));
    ++i;
  }
}
BENCHMARK(BM_NodeSetSubset)->Arg(64)->Arg(1024);

void BM_StructureContains(benchmark::State& state) {
  Rng rng(3);
  const auto z = AdversaryStructure::from_sets(random_sets(std::size_t(state.range(0)), 48, rng));
  const auto probes = random_sets(64, 48, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.contains(probes[i++ % 64]));
  }
}
BENCHMARK(BM_StructureContains)->Arg(8)->Arg(64)->Arg(512);

void BM_StructureRestrict(benchmark::State& state) {
  Rng rng(4);
  const auto z = AdversaryStructure::from_sets(random_sets(std::size_t(state.range(0)), 48, rng));
  const auto grounds = random_sets(16, 48, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.restricted_to(grounds[i++ % 16]));
  }
}
BENCHMARK(BM_StructureRestrict)->Arg(8)->Arg(64);

void BM_OplusMaterialize(benchmark::State& state) {
  Rng rng(5);
  const std::size_t k = std::size_t(state.range(0));
  const auto a = RestrictedStructure(AdversaryStructure::from_sets(random_sets(k, 24, rng)),
                                     NodeSet::full(24));
  const auto b = RestrictedStructure(AdversaryStructure::from_sets(random_sets(k, 24, rng)),
                                     from_mask(0xffff00, 24));
  for (auto _ : state) {
    benchmark::DoNotOptimize(oplus(a, b));
  }
}
BENCHMARK(BM_OplusMaterialize)->Arg(4)->Arg(16)->Arg(64);

void BM_JointLazyMembership(benchmark::State& state) {
  Rng rng(6);
  JointStructure joint;
  for (int i = 0; i < state.range(0); ++i) {
    NodeSet ground;
    for (std::size_t v = 0; v < 32; ++v)
      if (rng.chance(0.4)) ground.insert(NodeId(v));
    joint.add_constraint(ground,
                         AdversaryStructure::from_sets(random_sets(6, 32, rng)));
  }
  const auto probes = random_sets(64, 32, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(joint.contains(probes[i++ % 64]));
  }
}
BENCHMARK(BM_JointLazyMembership)->Arg(2)->Arg(8)->Arg(32);

// ---- decider-hot-path shapes (n = 26, the exact-decider cap) -------------
//
// The next three benchmarks probe the structures exactly as find_rmt_cut
// does: the antichain is a 2-threshold (276 maximal sets) or a random
// general structure over 26 nodes, and the probes are boundary-sized sets
// (|C| ≈ 2..4). They exercise the support/popcount prefilters on
// AdversaryStructure::contains and the lazy conjunction in
// JointStructure::contains.

std::vector<NodeSet> cut_shaped_probes(std::size_t count, std::size_t n, Rng& rng) {
  std::vector<NodeSet> out;
  for (std::size_t i = 0; i < count; ++i) {
    NodeSet s;
    const std::size_t k = 2 + i % 3;
    while (s.size() < k) s.insert(NodeId(rng.index(n)));
    out.push_back(std::move(s));
  }
  return out;
}

void BM_StructureContains26(benchmark::State& state) {
  Rng rng(7);
  const NodeSet players = NodeSet::full(26) - NodeSet{0, 13};
  // range(0) == 0: 2-threshold antichain; 1: random 8×3 general antichain —
  // the two adversaries bench_decider_hotpath runs the deciders under.
  const AdversaryStructure z = state.range(0) == 0
                                   ? threshold_structure(players, 2)
                                   : random_structure(players, 8, 3, NodeSet{0, 13}, rng);
  const auto probes = cut_shaped_probes(64, 26, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.contains(probes[i++ % 64]));
  }
}
BENCHMARK(BM_StructureContains26)->Arg(0)->Arg(1);

void BM_JointContains26(benchmark::State& state) {
  Rng rng(8);
  const NodeSet players = NodeSet::full(26) - NodeSet{0, 13};
  const AdversaryStructure z = state.range(0) == 0
                                   ? threshold_structure(players, 2)
                                   : random_structure(players, 8, 3, NodeSet{0, 13}, rng);
  // Z_B for a |B| = 8 component under 3-node views — the same restricted
  // per-node constraints the incremental decider pushes.
  JointStructure joint;
  for (std::size_t v = 13; v < 21; ++v) {
    const NodeSet view{NodeId(v == 0 ? 25 : v - 1), NodeId(v), NodeId((v + 1) % 26)};
    joint.add_constraint(RestrictedStructure(z, view));
  }
  const auto probes = cut_shaped_probes(64, 26, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(joint.contains(probes[i++ % 64]));
  }
}
BENCHMARK(BM_JointContains26)->Arg(0)->Arg(1);

void BM_StructureAdd(benchmark::State& state) {
  // Incremental antichain maintenance: stream range(0) random sets through
  // AdversaryStructure::add. add() is a single ordered domination pass with
  // popcount prefilters; this is the op protocol knowledge-exchange uses to
  // fold reported sets into a running structure.
  Rng rng(9);
  const auto sets = random_sets(std::size_t(state.range(0)), 26, rng);
  for (auto _ : state) {
    AdversaryStructure z;
    for (const NodeSet& s : sets) z.add(s);
    benchmark::DoNotOptimize(z);
  }
}
BENCHMARK(BM_StructureAdd)->Arg(16)->Arg(64)->Arg(256);

void BM_ThresholdStructureBuild(benchmark::State& state) {
  const NodeSet universe = NodeSet::full(std::size_t(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(threshold_structure(universe, 3));
  }
}
BENCHMARK(BM_ThresholdStructureBuild)->Arg(8)->Arg(12)->Arg(16);

/// ConsoleReporter that additionally captures every run for JSON export.
class CapturingReporter final : public benchmark::ConsoleReporter {
 public:
  std::vector<Run> runs;
  void ReportRuns(const std::vector<Run>& report) override {
    runs.insert(runs.end(), report.begin(), report.end());
    ConsoleReporter::ReportRuns(report);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = rmt::obs::consume_json_flag(argc, argv);
  rmt::obs::Registry::global().reset();
  rmt::obs::set_enabled(true);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (json_path) {
    rmt::obs::BenchReport rep("bench_micro_sets");
    rep.set_columns({"benchmark", "iterations", "real_ns", "cpu_ns"});
    for (const auto& r : reporter.runs) {
      if (r.error_occurred) continue;
      rep.add_row({r.benchmark_name(), std::uint64_t(r.iterations), r.GetAdjustedRealTime(),
                   r.GetAdjustedCPUTime()});
    }
    rep.write(*json_path);
  }
  benchmark::Shutdown();
  return 0;
}

// table_s1_smt — Experiment S1: the secure-transmission companion
// (smt/) measured — wires-model PRMT vs PSMT, the [3]/[9] baselines the
// paper's efficiency discussion (§6) builds on.
//
// Sweep t with n at each protocol's tight bound; report delivery under a
// worst-case wire corruption, the field elements shipped (communication),
// and decode wall time. Expected shapes: PRMT ships n elements and decodes
// in O(n); PSMT ships n shares and pays the (t+1)-subset decode — growing
// combinatorially in t in this exact implementation, polynomial in
// Berlekamp–Welch production terms; both never deliver wrong.
#include "bench_util.hpp"
#include "smt/psmt.hpp"

int main() {
  using namespace rmt;
  using namespace rmt::bench;
  using namespace rmt::smt;

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"protocol", "t", "n", "delivered", "wrong", "elements", "time(us)"});

  for (std::size_t t = 1; t <= 4; ++t) {
    {  // PRMT at n = 2t+1, all t wires flipped.
      const std::size_t n = 2 * t + 1;
      std::vector<WireFault> faults;
      for (std::size_t i = 1; i <= t; ++i) faults.push_back({std::uint32_t(i), Fp(13)});
      TransmissionResult out;
      const double us = time_us([&] { out = prmt_transmit(Fp(7777), n, t, faults); });
      rows.push_back({"PRMT", std::to_string(t), std::to_string(n),
                      out.correct ? "yes" : "no", out.wrong ? "YES" : "no",
                      std::to_string(n), fmt::fixed(us, 1)});
    }
    {  // PSMT at n = 3t+1, t wires replaced with garbage.
      const std::size_t n = 3 * t + 1;
      Rng rng(600 + t);
      std::vector<WireFault> faults;
      for (std::size_t i = 1; i <= t; ++i)
        faults.push_back({std::uint32_t(i), Fp(rng.uniform(0, kFieldPrime - 1))});
      TransmissionResult out;
      const double us =
          time_us([&] { out = psmt_transmit(Fp(7777), n, t, faults, rng); });
      rows.push_back({"PSMT", std::to_string(t), std::to_string(n),
                      out.correct ? "yes" : "no", out.wrong ? "YES" : "no",
                      std::to_string(n), fmt::fixed(us, 1)});
    }
  }
  print_table("S1 — wires-model transmission: reliability vs privacy price", rows);
  return 0;
}

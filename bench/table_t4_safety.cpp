// table_t4_safety — Experiment T4 (DESIGN.md §5).
//
// Claim exercised: Theorem 4 (RMT-PKA safety) and the safety of Z-CPA/CPA,
// operationally: across the full attack suite, admissible corruptions and
// random instances, the number of wrong receiver decisions must be zero
// for the safe protocols. PPA is included as the contrast: it is only
// guaranteed safe on full-knowledge-solvable instances (see ppa.hpp), so
// its row counts only runs on such instances — also expected 0.
#include "analysis/feasibility.hpp"
#include "bench_util.hpp"
#include "protocols/cpa.hpp"
#include "protocols/ppa.hpp"
#include "protocols/rmt_pka.hpp"
#include "protocols/zcpa.hpp"

int main(int argc, char** argv) {
  using namespace rmt;
  using namespace rmt::bench;

  Reporter rep(argc, argv, "table_t4_safety");

  struct Row {
    std::string protocol;
    std::size_t runs = 0, wrong = 0, correct = 0, abstained = 0;
  };
  std::vector<Row> tally = {{"RMT-PKA"}, {"RMT-PKA(greedy)"}, {"Z-CPA"}, {"PPA(full-know)"}};

  Rng rng(31337);
  const int kInstances = 12;
  for (int i = 0; i < kInstances; ++i) {
    const Graph g = generators::random_connected_gnp(6, 0.35, rng);
    const AdversaryStructure z = random_structure(g.nodes(), 2, 2, NodeSet{0, 5}, rng);
    const Instance adhoc = Instance::ad_hoc(g, z, 0, 5);
    const Instance full = Instance::full_knowledge(g, z, 0, 5);
    const bool full_solvable = analysis::solvable_full_knowledge(g, z, 0, 5);

    std::uint64_t salt = 0;
    for (const NodeSet& t : z.maximal_sets()) {
      for (const std::string& sname : all_strategies()) {
        auto record = [&](Row& row, const protocols::Outcome& out) {
          ++row.runs;
          row.wrong += out.wrong;
          row.correct += out.correct;
          row.abstained += !out.decision.has_value();
        };
        {
          auto s = make_strategy(sname, salt++);
          record(tally[0], protocols::run_rmt(adhoc, protocols::RmtPka{}, 5, t, s.get()));
        }
        {
          auto s = make_strategy(sname, salt++);
          record(tally[1], protocols::run_rmt(
                               adhoc, protocols::RmtPka{protocols::DeciderMode::kGreedy}, 5,
                               t, s.get()));
        }
        {
          auto s = make_strategy(sname, salt++);
          record(tally[2], protocols::run_rmt(adhoc, protocols::Zcpa{}, 5, t, s.get()));
        }
        if (full_solvable) {
          auto s = make_strategy(sname, salt++);
          record(tally[3], protocols::run_rmt(full, protocols::Ppa{}, 5, t, s.get()));
        }
      }
    }
  }

  rep.columns({"protocol", "runs", "wrong", "correct", "abstained"});
  for (const Row& r : tally)
    rep.row({r.protocol, std::uint64_t(r.runs), std::uint64_t(r.wrong),
             std::uint64_t(r.correct), std::uint64_t(r.abstained)});
  rep.finish("T4 — safety under active attack (expected: wrong = 0 everywhere)");
  return 0;
}

// bench/bench_util.hpp — shared machinery for the experiment drivers.
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adversary/threshold.hpp"
#include "graph/generators.hpp"
#include "instance/instance.hpp"
#include "protocols/runner.hpp"
#include "sim/strategies.hpp"
#include "util/fmt.hpp"
#include "util/rng.hpp"

namespace rmt::bench {

/// Wall-clock one call, in microseconds.
template <typename F>
double time_us(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

/// Print a titled ASCII table.
inline void print_table(const std::string& title,
                        const std::vector<std::vector<std::string>>& rows) {
  std::printf("\n## %s\n\n%s", title.c_str(), fmt::table(rows).c_str());
}

/// The knowledge levels the experiments sweep, in increasing order.
struct KnowledgeLevel {
  std::string label;
  std::function<ViewFunction(const Graph&)> build;
};

inline std::vector<KnowledgeLevel> knowledge_ladder() {
  return {
      {"ad hoc", [](const Graph& g) { return ViewFunction::ad_hoc(g); }},
      {"1-hop", [](const Graph& g) { return ViewFunction::k_hop(g, 1); }},
      {"2-hop", [](const Graph& g) { return ViewFunction::k_hop(g, 2); }},
      {"full", [](const Graph& g) { return ViewFunction::full(g); }},
  };
}

/// A fresh strategy instance by name (strategies are stateful per run).
inline std::unique_ptr<sim::AdversaryStrategy> make_strategy(const std::string& name,
                                                             std::uint64_t seed) {
  if (name == "silent") return std::make_unique<sim::SilentStrategy>();
  if (name == "value-flip") return std::make_unique<sim::ValueFlipStrategy>();
  if (name == "random-lies") return std::make_unique<sim::RandomLieStrategy>(Rng{seed}, 4);
  if (name == "phantom-world") return std::make_unique<sim::FictitiousWorldStrategy>();
  return std::make_unique<sim::TwoFacedStrategy>();
}

inline std::vector<std::string> all_strategies() {
  return {"silent", "value-flip", "random-lies", "phantom-world", "two-faced"};
}

/// Random instance family used across experiments: connected G(n,p), a
/// random general structure keeping D = 0 and R = n-1 honest.
inline Instance random_instance(std::size_t n, std::size_t sets, std::size_t set_size,
                                const ViewFunction& gamma, const Graph& g, Rng& rng) {
  AdversaryStructure z = random_structure(g.nodes(), sets, set_size,
                                          NodeSet{0, NodeId(n - 1)}, rng);
  return Instance(g, std::move(z), gamma, 0, NodeId(n - 1));
}

}  // namespace rmt::bench

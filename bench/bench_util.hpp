// bench/bench_util.hpp — shared machinery for the experiment drivers.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/threshold.hpp"
#include "exec/campaign.hpp"
#include "exec/options.hpp"
#include "exec/thread_pool.hpp"
#include "graph/generators.hpp"
#include "instance/instance.hpp"
#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocols/runner.hpp"
#include "sim/strategies.hpp"
#include "util/fmt.hpp"
#include "util/rng.hpp"

namespace rmt::bench {

/// Wall-clock one call, in microseconds.
template <typename F>
double time_us(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

/// Print a titled ASCII table.
inline void print_table(const std::string& title,
                        const std::vector<std::vector<std::string>>& rows) {
  std::printf("\n## %s\n\n%s", title.c_str(), fmt::table(rows).c_str());
}

/// Typed result collector for the table/fig drivers: every row feeds both
/// the human ASCII table and (when the driver was invoked with
/// `--json <path>`) an rmt.bench/1 artifact carrying the same cells as
/// typed values plus the observability snapshot (per-phase timings,
/// "sim.*" counters). Construction enables observability so the snapshot
/// is populated; the metrics registry is reset so the artifact covers
/// only this driver's work. `--trace-out <path>` additionally turns on
/// span tracing (obs/trace.hpp) and dumps the flight recorder as
/// rmt.trace/1 JSONL in finish() — the dump and the artifact share run
/// anchors, so tools/trace_compare.py can align them.
class Reporter {
 public:
  Reporter(int& argc, char** argv, std::string name)
      : report_(std::move(name)), json_path_(obs::consume_json_flag(argc, argv)),
        trace_out_(obs::consume_string_flag(argc, argv, "--trace-out")),
        exec_(consume_exec_flags_or_exit(argc, argv)) {
    obs::Registry::global().reset();
    obs::set_enabled(true);
    if (trace_out_) obs::trace::set_enabled(true);
  }

  /// The --jobs/--shard/--resume options this driver was invoked with.
  const exec::ExecOptions& exec() const { return exec_; }

  /// The worker pool sized by --jobs, built on first use. Returns nullptr
  /// for --jobs 1 so callers hit the sequential-inline paths directly.
  exec::ThreadPool* pool() {
    if (exec_.jobs <= 1) return nullptr;
    if (!pool_) pool_ = std::make_unique<exec::ThreadPool>(exec_.jobs);
    return pool_.get();
  }

  /// Campaign subset/manifest options straight from the command line.
  exec::Campaign::RunOptions campaign_options() const {
    exec::Campaign::RunOptions opts;
    opts.subset_index = exec_.shard_index;
    opts.subset_count = exec_.shard_count;
    if (exec_.resume) opts.manifest_path = *exec_.resume;
    return opts;
  }

  void columns(std::vector<std::string> names) {
    table_.push_back(names);
    report_.set_columns(std::move(names));
  }

  void row(std::vector<obs::BenchValue> cells) {
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (const obs::BenchValue& c : cells) text.push_back(cell_text(c));
    table_.push_back(std::move(text));
    report_.add_row(std::move(cells));
  }

  /// Print the ASCII table; write the JSON/trace artifacts if requested.
  void finish(const std::string& title) {
    if (pool_) pool_->publish_stats();  // exec.* metrics join the snapshot
    print_table(title, table_);
    if (json_path_) {
      report_.write(*json_path_);
      if (*json_path_ != "-")
        std::printf("\nwrote %s (%zu rows)\n", json_path_->c_str(), report_.num_rows());
    }
    if (trace_out_) {
      if (obs::trace::Recorder::global().write_file(*trace_out_))
        std::printf("\nwrote %s\n", trace_out_->c_str());
      else
        std::fprintf(stderr, "warning: cannot write trace to %s\n", trace_out_->c_str());
    }
  }

 private:
  /// Flag errors are user errors: report and exit(2), no stack trace.
  static exec::ExecOptions consume_exec_flags_or_exit(int& argc, char** argv) {
    try {
      return exec::consume_exec_flags(argc, argv);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "fatal: %s\n", e.what());
      std::exit(2);
    }
  }

  static std::string cell_text(const obs::BenchValue& v) {
    struct Visitor {
      std::string operator()(const std::string& s) const { return s; }
      std::string operator()(double d) const { return fmt::fixed(d, 2); }
      std::string operator()(std::int64_t i) const { return std::to_string(i); }
      std::string operator()(std::uint64_t u) const { return std::to_string(u); }
      std::string operator()(bool b) const { return b ? "yes" : "no"; }
    };
    return std::visit(Visitor{}, v);
  }

  std::vector<std::vector<std::string>> table_;
  obs::BenchReport report_;
  std::optional<std::string> json_path_;
  std::optional<std::string> trace_out_;
  exec::ExecOptions exec_;
  std::unique_ptr<exec::ThreadPool> pool_;
};

/// The knowledge levels the experiments sweep, in increasing order.
struct KnowledgeLevel {
  std::string label;
  std::function<ViewFunction(const Graph&)> build;
};

inline std::vector<KnowledgeLevel> knowledge_ladder() {
  return {
      {"ad hoc", [](const Graph& g) { return ViewFunction::ad_hoc(g); }},
      {"1-hop", [](const Graph& g) { return ViewFunction::k_hop(g, 1); }},
      {"2-hop", [](const Graph& g) { return ViewFunction::k_hop(g, 2); }},
      {"full", [](const Graph& g) { return ViewFunction::full(g); }},
  };
}

/// A fresh strategy instance by name (strategies are stateful per run).
/// Unknown names are an error — a typo must not silently mislabel a bench
/// row as some other attack.
inline std::unique_ptr<sim::AdversaryStrategy> make_strategy(const std::string& name,
                                                             std::uint64_t seed) {
  if (name == "silent") return std::make_unique<sim::SilentStrategy>();
  if (name == "value-flip") return std::make_unique<sim::ValueFlipStrategy>();
  if (name == "random-lies") return std::make_unique<sim::RandomLieStrategy>(Rng{seed}, 4);
  if (name == "phantom-world") return std::make_unique<sim::FictitiousWorldStrategy>();
  if (name == "two-faced") return std::make_unique<sim::TwoFacedStrategy>();
  throw std::invalid_argument("make_strategy: unknown adversary strategy '" + name + "'");
}

inline std::vector<std::string> all_strategies() {
  return {"silent", "value-flip", "random-lies", "phantom-world", "two-faced"};
}

/// Random instance family used across experiments: connected G(n,p), a
/// random general structure keeping D = 0 and R = n-1 honest.
inline Instance random_instance(std::size_t n, std::size_t sets, std::size_t set_size,
                                const ViewFunction& gamma, const Graph& g, Rng& rng) {
  AdversaryStructure z = random_structure(g.nodes(), sets, set_size,
                                          NodeSet{0, NodeId(n - 1)}, rng);
  return Instance(g, std::move(z), gamma, 0, NodeId(n - 1));
}

}  // namespace rmt::bench

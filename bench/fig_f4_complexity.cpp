// fig_f4_complexity — Experiment F4 (DESIGN.md §5): communication cost of
// the protocols as instances grow.
//
// Families: cycles (sparse, 2 paths) and parallel_paths(3, h) (3 disjoint
// paths of growing length), both solvable for the chosen structures.
//
// Expected shape: Z-CPA's message count grows linearly in n (each player
// transmits once); RMT-PKA's grows with the number of simple paths ×
// their length — already on these sparse families visibly superlinear,
// and its payload bytes dominate (trails + knowledge payloads). This is
// the efficiency contrast that motivates the paper's §5.
#include "bench_util.hpp"
#include "protocols/rmt_pka.hpp"
#include "protocols/zcpa.hpp"

int main() {
  using namespace rmt;
  using namespace rmt::bench;

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"family", "n", "protocol", "rounds", "messages", "bytes", "delivered"});

  auto run_both = [&](const std::string& family, const Instance& inst) {
    struct P {
      std::string label;
      const protocols::Protocol& proto;
    };
    const protocols::Zcpa zcpa;
    const protocols::RmtPka pka;
    for (const P& p : std::vector<P>{{"Z-CPA", zcpa}, {"RMT-PKA", pka}}) {
      const protocols::Outcome out = protocols::run_rmt(inst, p.proto, 3, NodeSet{});
      rows.push_back({family, std::to_string(inst.num_players()), p.label,
                      std::to_string(out.stats.rounds),
                      std::to_string(out.stats.honest_messages),
                      std::to_string(out.stats.honest_payload_bytes),
                      out.correct ? "yes" : "no"});
    }
  };

  for (std::size_t n : {5u, 7u, 9u, 11u, 13u}) {
    const Graph g = generators::cycle_graph(n);
    run_both("cycle", Instance::ad_hoc(g, AdversaryStructure::trivial(), 0, NodeId(n / 2)));
  }
  for (std::size_t h : {1u, 2u, 3u, 4u}) {
    const Graph g = generators::parallel_paths(3, h);
    run_both("3-paths",
             Instance::ad_hoc(g, AdversaryStructure::trivial(), 0, NodeId(g.num_nodes() - 1)));
  }
  print_table("F4 — communication complexity, fault-free runs", rows);
  return 0;
}

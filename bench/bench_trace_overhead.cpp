// bench_trace — the tracing-cost acceptance bench: what a RMT_TRACE_SPAN
// costs when tracing is off (the price every decider entry point pays,
// always) and when it is on (the price of a live flight recorder), plus
// the end-to-end decider ratio with tracing on vs. off.
//
// Unlike the timing columns elsewhere, `within_budget` is a hard gate in
// both directions: the driver RMT_CHECKs it and tools/check_bench_json.py
// refuses a BENCH_trace.json with any row not literally true. The budgets
// are deliberately loose — absolute nanosecond ceilings for the span
// rows and a generous on/off ratio for the decider row — so the gate
// catches "tracing became a lock fight", not scheduler noise:
//   span-idle   — per-span cost with tracing disabled; budget 100 ns
//                 (the real cost is one relaxed atomic load);
//   span-live   — per-span cost with tracing enabled; budget 5000 ns
//                 (clock reads + a batched flush into the ring);
//   decider-off — best-of-kReps find_rmt_cut, tracing off (the baseline);
//   decider-on  — the same with tracing on; budget: <= 3x decider-off.
#include <cstddef>
#include <string>

#include "analysis/rmt_cut.hpp"
#include "bench_util.hpp"
#include "obs/trace.hpp"

namespace {

using namespace rmt;

inline constexpr int kReps = 5;
inline constexpr std::size_t kIdleSpans = 1000000;
inline constexpr std::size_t kLiveSpans = 200000;
inline constexpr double kIdleSpanBudgetNs = 100.0;
inline constexpr double kLiveSpanBudgetNs = 5000.0;
inline constexpr double kDeciderRatioBudget = 3.0;

template <typename F>
double best_us(F&& f) {
  double best = 0;
  for (int i = 0; i < kReps; ++i) {
    const double us = rmt::bench::time_us(f);
    if (i == 0 || us < best) best = us;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rmt;
  using namespace rmt::bench;

  Reporter rep(argc, argv, "bench_trace");
  rep.columns({"row", "iters", "total_us", "per_span_ns", "ratio", "within_budget"});

  // ---- Per-span cost, tracing off -------------------------------------
  obs::trace::set_enabled(false);
  const double idle_us = best_us([] {
    for (std::size_t i = 0; i < kIdleSpans; ++i) { RMT_TRACE_SPAN("svc.batch"); }
  });
  const double idle_ns = idle_us * 1000.0 / double(kIdleSpans);
  const bool idle_ok = idle_ns <= kIdleSpanBudgetNs;
  rep.row({"span-idle", std::uint64_t(kIdleSpans), idle_us, idle_ns, 0.0, idle_ok});

  // ---- Per-span cost, tracing on --------------------------------------
  obs::trace::set_enabled(true);
  obs::trace::Recorder::global().clear();
  const double live_us = best_us([] {
    for (std::size_t i = 0; i < kLiveSpans; ++i) { RMT_TRACE_SPAN("svc.batch"); }
  });
  obs::trace::set_enabled(false);
  const double live_ns = live_us * 1000.0 / double(kLiveSpans);
  const bool live_ok = live_ns <= kLiveSpanBudgetNs;
  rep.row({"span-live", std::uint64_t(kLiveSpans), live_us, live_ns, 0.0, live_ok});

  // ---- End-to-end decider, tracing off vs. on -------------------------
  // A fig_f4 shape with no cut: the decider traverses the whole subset
  // space, so the RMT_TRACE_SPAN at its entry runs against real work.
  const std::size_t n = 18;
  const Graph g = generators::cycle_graph(n);
  const Instance inst = Instance::ad_hoc(g, AdversaryStructure::trivial(), 0, NodeId(n / 2));

  const double decider_off_us = best_us([&] { (void)analysis::find_rmt_cut(inst); });
  rep.row({"decider-off", std::uint64_t(kReps), decider_off_us, 0.0, 1.0, true});

  obs::trace::set_enabled(true);
  obs::trace::Recorder::global().clear();
  const double decider_on_us = best_us([&] { (void)analysis::find_rmt_cut(inst); });
  const double ratio = decider_off_us > 0 ? decider_on_us / decider_off_us : 0.0;
  const bool ratio_ok = ratio <= kDeciderRatioBudget;
  rep.row({"decider-on", std::uint64_t(kReps), decider_on_us, 0.0, ratio, ratio_ok});

  rep.finish("TRACE — span overhead and decider on/off ratio (hard budgets)");
  RMT_CHECK(idle_ok, "bench_trace: idle span costs " + fmt::fixed(idle_ns, 1) +
                         "ns, budget " + fmt::fixed(kIdleSpanBudgetNs, 0) + "ns");
  RMT_CHECK(live_ok, "bench_trace: live span costs " + fmt::fixed(live_ns, 1) +
                         "ns, budget " + fmt::fixed(kLiveSpanBudgetNs, 0) + "ns");
  RMT_CHECK(ratio_ok, "bench_trace: tracing slows the decider " + fmt::fixed(ratio, 2) +
                          "x, budget " + fmt::fixed(kDeciderRatioBudget, 1) + "x");
  return 0;
}

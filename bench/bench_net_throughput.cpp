// bench_net — the TCP front end's acceptance bench: closed-loop request
// throughput against an in-process net::Server at 100% cache-hit rate,
// swept over client count, with an in-process baseline for the same
// stream so the transport's cost is a reported *factor*, not a guess.
//
// Per row (one per client count in {1, 2, 4, 8}):
//   qps_tcp      — C concurrent net::Client ping-pong loops (request +
//                  blank-line flush, wait for the answer) through one
//                  shared server; qps counts every completed response;
//   qps_direct   — the same total request count replayed through
//                  svc::Engine::run + wire::format_response in-process,
//                  sequentially: what stdio mode does minus the pipe.
//   tcp_overhead_x = qps_direct / qps_tcp — the transport overhead
//                  factor (sockets, framing, event loop, batching);
//   p50_us/p95_us — client-observed round-trip latency.
//
// The workload is 100% hit on purpose: a cache hit is the cheapest thing
// the engine can serve, so the row isolates transport cost — a compute-
// bound workload would hide the event loop behind the decider.
//
// The `identical` column is the determinism gate: every TCP response's
// deterministic segment (status/key/result/error — the slice between
// volatile serving metadata) must be byte-equal to the fresh in-process
// answer for its instance. It is RMT_CHECKed here and re-enforced by
// tools/check_bench_json.py on BENCH_net.json, which also requires every
// qps* cell to be a non-negative finite number. Timings themselves are
// never asserted — this is a perf smoke, not a perf gate.
#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "io/serialize.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/json.hpp"
#include "svc/engine.hpp"
#include "svc/wire.hpp"

namespace {

using namespace rmt;

inline constexpr std::size_t kHotSet = 4;
inline constexpr std::size_t kReqsPerClient = 300;

/// Hot-set instances: trivial-structure cycles, distinct keys by receiver.
/// Trivial shapes decide in microseconds, so after the one-time warmup
/// every request is a pure cache hit and the rows measure transport.
Instance hot_instance(std::size_t i) {
  const std::size_t n = 12;
  const Graph g = generators::cycle_graph(n);
  return Instance::ad_hoc(g, AdversaryStructure::trivial(), 0, NodeId(1 + (i % (n - 1))));
}

std::string request_line(const std::string& id, const std::string& instance_text) {
  return "{\"schema\":\"rmt.request/1\",\"id\":\"" + id +
         "\",\"kind\":\"decide_rmt\",\"instance\":\"" + obs::json::escape(instance_text) + "\"}";
}

/// The deterministic slice of a response line — status, key, result and
/// error, excluding the id before it and the cached/coalesced/wall_us/
/// trace_id serving metadata after it. Byte-identity across transports
/// is asserted on exactly this slice.
std::string det_segment(const std::string& line) {
  const std::size_t a = line.find("\"status\":");
  const std::size_t b = line.find(",\"cached\":");
  RMT_CHECK(a != std::string::npos && b != std::string::npos && a < b,
            "bench_net: response line lacks the deterministic segment: " + line);
  return line.substr(a, b - a);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rmt;
  using namespace rmt::bench;

  Reporter rep(argc, argv, "bench_net");
  rep.columns({"clients", "requests", "qps_tcp", "qps_direct", "tcp_overhead_x", "p50_us",
               "p95_us", "identical"});

  // The expected bytes per hot instance, from a fresh sequential engine —
  // the identity baseline both serving paths must reproduce.
  std::vector<std::string> instance_text;
  std::vector<std::string> expected_segment;
  for (std::size_t i = 0; i < kHotSet; ++i) {
    const Instance inst = hot_instance(i);
    instance_text.push_back(io::serialize_instance(inst));
    svc::Engine fresh(nullptr);
    std::vector<svc::Request> batch;
    batch.push_back(svc::Request{svc::QueryKind::kDecideRmt, inst, svc::SimParams{},
                                 std::nullopt, /*no_cache=*/true});
    const std::vector<svc::Response> responses = fresh.run(batch);
    RMT_CHECK(responses[0].status == svc::Response::Status::kOk,
              "bench_net: baseline decide failed");
    expected_segment.push_back(det_segment(svc::wire::format_response("x", responses[0])));
  }

  // One shared server for every row, hosted on a dedicated one-thread
  // pool; batches flush as soon as the loop sees them (blank lines make
  // each ping-pong request its own flush anyway).
  net::Server::Options opts;
  opts.batch_wait_ms = 0;
  net::Server server(nullptr, opts);
  exec::ThreadPool serve_pool(1);
  serve_pool.submit([&server] { server.serve(); });

  // Warm the shared cache through the real transport, once.
  {
    net::Client warm;
    warm.connect(server.bound_port());
    for (std::size_t i = 0; i < kHotSet; ++i) {
      warm.send_line(request_line("w" + std::to_string(i), instance_text[i]));
      warm.send_line("");
      std::string line;
      RMT_CHECK(warm.recv_line(line), "bench_net: EOF during warmup");
      RMT_CHECK(det_segment(line) == expected_segment[i],
                "bench_net: warmup bytes diverged from fresh sequential");
    }
    warm.close();
  }

  const std::size_t max_clients = 8;
  exec::ThreadPool client_pool(max_clients);

  for (const std::size_t clients : {std::size_t(1), std::size_t(2), std::size_t(4),
                                    std::size_t(8)}) {
    const std::uint64_t total = clients * kReqsPerClient;
    std::vector<bool> ok(clients, false);
    std::vector<std::vector<double>> lat(clients);

    const double tcp_us = time_us([&] {
      exec::parallel_for(&client_pool, 0, clients, 1, [&](std::size_t c) {
        net::Client client;
        client.connect(server.bound_port());
        std::vector<double>& mine = lat[c];
        mine.reserve(kReqsPerClient);
        bool identical = true;
        std::string line;
        for (std::size_t i = 0; i < kReqsPerClient; ++i) {
          const std::size_t h = (c + i) % kHotSet;
          const std::string id = "c" + std::to_string(c) + "_" + std::to_string(i);
          const double us = time_us([&] {
            client.send_line(request_line(id, instance_text[h]));
            client.send_line("");
            RMT_CHECK(client.recv_line(line), "bench_net: EOF mid-stream");
          });
          mine.push_back(us);
          identical = identical && line.find("\"id\":\"" + id + "\"") != std::string::npos &&
                      det_segment(line) == expected_segment[h];
        }
        client.close();
        ok[c] = identical;
      });
    });

    // Baseline: the same request total through the engine in-process,
    // sequentially — parse-free, socket-free, one warmed cache hit plus
    // response formatting per request.
    svc::Engine direct(nullptr);
    {
      std::vector<svc::Request> warmup;
      for (std::size_t i = 0; i < kHotSet; ++i)
        warmup.push_back(svc::Request{svc::QueryKind::kDecideRmt, hot_instance(i),
                                      svc::SimParams{}, std::nullopt, false});
      direct.run(warmup);
    }
    bool identical = std::all_of(ok.begin(), ok.end(), [](bool b) { return b; });
    const double direct_us = time_us([&] {
      for (std::uint64_t i = 0; i < total; ++i) {
        const std::size_t h = i % kHotSet;
        std::vector<svc::Request> batch;
        batch.push_back(svc::Request{svc::QueryKind::kDecideRmt, hot_instance(h),
                                     svc::SimParams{}, std::nullopt, false});
        const std::vector<svc::Response> responses = direct.run(batch);
        identical = identical && responses[0].cached &&
                    det_segment(svc::wire::format_response("x", responses[0])) ==
                        expected_segment[h];
      }
    });

    obs::Histogram rtt;
    for (const std::vector<double>& mine : lat)
      for (const double us : mine) rtt.observe(us);
    const double qps_tcp = tcp_us > 0 ? double(total) * 1e6 / tcp_us : 0.0;
    const double qps_direct = direct_us > 0 ? double(total) * 1e6 / direct_us : 0.0;
    const double overhead = qps_tcp > 0 ? qps_direct / qps_tcp : 0.0;

    rep.row({std::uint64_t(clients), total, qps_tcp, qps_direct, overhead, rtt.p50(),
             rtt.p95(), identical});
    RMT_CHECK(identical, "bench_net: clients=" + std::to_string(clients) +
                             " served bytes diverged from fresh sequential");
  }

  server.stop();
  server.publish_stats();
  rep.finish("NET — TCP front end: closed-loop throughput vs. in-process baseline "
             "(identical bytes)");
  return 0;
}

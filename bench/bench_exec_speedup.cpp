// bench_exec — the rmt::exec acceptance benchmark: 1-thread vs N-thread
// wall time for the two hot layers the pool accelerates, with a result-
// identity check on every comparison.
//
// Workloads:
//  * rmt-cut    — the exact RMT-cut decider on an F2-sized instance, via
//                 the batched parallel scan of analysis/rmt_cut.hpp;
//  * two-cover  — the full-knowledge pair-grid decider;
//  * adv-search — exhaustive per-node-mode strategy enumeration
//                 (sim/adversary_search.hpp), 3^|T| protocol runs per
//                 maximal corruption set.
//
// Every parallel run is compared against its sequential twin ("identical"
// column) — the determinism contract says parallelism changes wall time
// only, never answers. Speedup is honest wall-clock: on a single-core
// host the ratio hovers near (or below) 1.0; CI records the multi-core
// numbers. With `--json BENCH_exec.json` the table becomes the rmt.bench/1
// speedup artifact referenced by the acceptance criteria.
#include <string>

#include "analysis/feasibility.hpp"
#include "analysis/rmt_cut.hpp"
#include "bench_util.hpp"
#include "protocols/zcpa.hpp"
#include "sim/adversary_search.hpp"

namespace {

using namespace rmt;

bool same_witness(const std::optional<analysis::RmtCutWitness>& a,
                  const std::optional<analysis::RmtCutWitness>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a) return true;
  return a->c1 == b->c1 && a->c2 == b->c2 && a->b == b->b;
}

bool same_search(const sim::SearchResult& a, const sim::SearchResult& b) {
  if (a.behaviors_tried != b.behaviors_tried) return false;
  if (a.safety_violation.has_value() != b.safety_violation.has_value()) return false;
  if (a.liveness_block.has_value() != b.liveness_block.has_value()) return false;
  if (a.safety_violation && a.safety_violation->modes != b.safety_violation->modes) return false;
  if (a.liveness_block && a.liveness_block->modes != b.liveness_block->modes) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rmt;
  using namespace rmt::bench;

  Reporter rep(argc, argv, "bench_exec");
  rep.columns({"workload", "jobs", "wall_ms", "speedup", "identical"});

  // N workers: the --jobs value when given, else every hardware thread
  // (at least 2, so the parallel path is exercised even on one core).
  const std::size_t jobs = rep.exec().jobs > 1
                               ? rep.exec().jobs
                               : std::max<std::size_t>(2, exec::ThreadPool::hardware_concurrency());
  exec::ThreadPool pool(jobs);

  // `identical` is evaluated *after* both runs, against their results; a
  // divergence is also a hard failure (the determinism contract broke).
  const auto compare = [&](const std::string& workload, const std::function<double()>& seq_ms,
                           const std::function<double()>& par_ms,
                           const std::function<bool()>& identical) {
    const double s = seq_ms();
    const double p = par_ms();
    const bool same = identical();
    rep.row({workload, std::uint64_t(1), s, 1.0, true});
    rep.row({workload, std::uint64_t(jobs), p, p > 0 ? s / p : 0.0, same});
    RMT_CHECK(same, "bench_exec: " + workload + " answers diverged between 1 and " +
                        std::to_string(jobs) + " jobs");
  };

  // --- rmt-cut: the exact decider on an F2-sized instance ----------------
  {
    Rng rng(1214);
    const std::size_t n = 16;
    const Graph g = generators::random_connected_gnp(n, 0.25, rng);
    const AdversaryStructure z = random_structure(g.nodes(), 4, 3, NodeSet{0, NodeId(n - 1)}, rng);
    const Instance inst(g, z, ViewFunction::k_hop(g, 1), 0, NodeId(n - 1));
    std::optional<analysis::RmtCutWitness> w_seq, w_par;
    compare(
        "rmt-cut", [&] { return time_us([&] { w_seq = analysis::find_rmt_cut(inst); }) / 1000.0; },
        [&] { return time_us([&] { w_par = analysis::find_rmt_cut(inst, &pool); }) / 1000.0; },
        [&] { return same_witness(w_seq, w_par); });
  }

  // --- two-cover: the full-knowledge pair grid ----------------------------
  {
    Rng rng(77);
    const std::size_t n = 18;
    const Graph g = generators::random_connected_gnp(n, 0.2, rng);
    const AdversaryStructure z =
        random_structure(g.nodes(), 24, 3, NodeSet{0, NodeId(n - 1)}, rng);
    std::optional<analysis::TwoCoverWitness> w_seq, w_par;
    compare(
        "two-cover",
        [&] {
          return time_us([&] { w_seq = analysis::find_two_cover_cut(g, z, 0, NodeId(n - 1)); }) /
                 1000.0;
        },
        [&] {
          return time_us([&] {
                   w_par = analysis::find_two_cover_cut(g, z, 0, NodeId(n - 1), &pool);
                 }) /
                 1000.0;
        },
        [&] {
          return w_seq.has_value() == w_par.has_value() &&
                 (!w_seq || (w_seq->z1 == w_par->z1 && w_seq->z2 == w_par->z2));
        });
  }

  // --- adv-search: exhaustive strategy enumeration ------------------------
  {
    Rng rng(900);
    const std::size_t n = 9;
    const Graph g = generators::random_connected_gnp(n, 0.45, rng);
    const AdversaryStructure z = random_structure(g.nodes(), 3, 5, NodeSet{0, NodeId(n - 1)}, rng);
    const Instance inst = Instance::ad_hoc(g, z, 0, NodeId(n - 1));
    const protocols::Zcpa proto;
    sim::SearchResult r_seq, r_par;
    compare(
        "adv-search",
        [&] {
          return time_us([&] {
                   r_seq = sim::search_all_corruptions_exhaustive(inst, proto, 1, nullptr);
                 }) /
                 1000.0;
        },
        [&] {
          return time_us([&] {
                   r_par = sim::search_all_corruptions_exhaustive(inst, proto, 1, &pool);
                 }) /
                 1000.0;
        },
        [&] { return same_search(r_seq, r_par); });
  }

  pool.publish_stats();  // exec.* counters into the --json metrics snapshot
  rep.finish("EXEC — 1-thread vs " + std::to_string(jobs) + "-thread wall time (identical answers)");
  return 0;
}

// fig_f1_basic_instances — Experiment F1 (DESIGN.md §5): the paper's
// Figure-1 family G' of basic instances, measured.
//
// For middle sizes |A| and adversary models we report (a) the exact
// solvability fraction from the star condition ("no two admissible sets
// cover the middle", §5.1), and (b) Z-CPA's delivery rate on materialized
// star instances under the worst admissible corruption with a value-flip
// attack — the two series must coincide (Z-CPA is unique on G').
//
// Expected shape: global-t thresholds flip from 0% to 100% exactly at
// |A| = 2t+1; random structures interpolate, rising with |A|.
#include "bench_util.hpp"
#include "protocols/zcpa.hpp"
#include "reduction/basic_instance.hpp"

int main() {
  using namespace rmt;
  using namespace rmt::bench;

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"|A|", "adversary", "solvable%", "zcpa-delivery%"});

  for (std::size_t m : {2u, 3u, 4u, 5u, 6u, 8u, 10u}) {
    NodeSet middle;
    for (std::size_t i = 1; i <= m; ++i) middle.insert(NodeId(i));

    struct Model {
      std::string label;
      std::vector<AdversaryStructure> samples;
    };
    std::vector<Model> models;
    for (std::size_t t : {1u, 2u}) {
      if (t <= m) models.push_back({"global-" + std::to_string(t),
                                    {threshold_structure(middle, t)}});
    }
    {
      Rng rng(900 + m);
      std::vector<AdversaryStructure> samples;
      for (int i = 0; i < 20; ++i)
        samples.push_back(random_structure(middle, 3, (m + 1) / 2, NodeSet{}, rng));
      models.push_back({"random(3 sets, |Z|=" + std::to_string((m + 1) / 2) + ")",
                        std::move(samples)});
    }

    for (const Model& model : models) {
      int solvable = 0, delivered = 0, solvable_runs = 0;
      for (const AdversaryStructure& z : model.samples) {
        const bool ok = reduction::basic_instance_solvable(z, middle);
        solvable += ok;
        if (!ok) continue;
        const reduction::BasicInstance bi = reduction::make_basic_instance(z, middle);
        NodeSet corrupted;
        for (const NodeSet& mx : bi.instance.adversary().maximal_sets())
          if (mx.size() > corrupted.size()) corrupted = mx;
        ++solvable_runs;
        auto strategy = make_strategy("value-flip", 0);
        delivered += protocols::run_rmt(bi.instance, protocols::Zcpa{}, 7, corrupted,
                                        strategy.get())
                         .correct;
      }
      rows.push_back({std::to_string(m), model.label,
                      fmt::fixed(100.0 * solvable / model.samples.size(), 1),
                      solvable_runs ? fmt::fixed(100.0 * delivered / solvable_runs, 1) : "-"});
    }
  }
  print_table("F1 — the basic-instance family G' (Fig. 1): feasibility and Z-CPA", rows);
  return 0;
}

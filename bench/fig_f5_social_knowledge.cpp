// fig_f5_social_knowledge — Experiment F5: the paper's motivating story
// (§1), quantified.
//
// "The motivation for partial knowledge considerations comes from large
// scale networks … proximity in social networks is often correlated with
// an increased amount of available information." We model that with the
// social view function: ad hoc stars plus each further edge of G known
// independently with probability p. Sweeping p from 0 (pure ad hoc) to 1
// (full knowledge) measures how much *unstructured, partial* extra
// knowledge buys on the knowledge-sensitive instance families.
//
// Expected shape: solvable fraction interpolates monotonically (in
// expectation) from the ad hoc to the full-knowledge level; on the
// engineered triple-path family the jump is steep — a little gossip goes
// a long way.
#include "analysis/feasibility.hpp"
#include "bench_util.hpp"

int main() {
  using namespace rmt;
  using namespace rmt::bench;

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"family", "p(extra edge known)", "solvable%", "samples"});

  const std::vector<double> ps = {0.0, 0.1, 0.25, 0.5, 0.75, 1.0};

  {  // Engineered family: 3 disjoint 2-hop paths, singleton bottlenecks.
    const Graph g = generators::parallel_paths(3, 2);
    AdversaryStructure z = AdversaryStructure::trivial();
    for (NodeId x : {1u, 3u, 5u}) z.add(NodeSet::single(x));
    const NodeId r = NodeId(g.num_nodes() - 1);
    for (double p : ps) {
      int solvable = 0;
      const int kSamples = 40;
      Rng rng(100);
      for (int i = 0; i < kSamples; ++i) {
        const Instance inst(g, z, ViewFunction::social(g, 0, p, rng), 0, r);
        solvable += analysis::solvable(inst);
      }
      rows.push_back({"3x2-paths", fmt::fixed(p, 2),
                      fmt::fixed(100.0 * solvable / kSamples, 1), std::to_string(kSamples)});
    }
  }

  {  // Random sparse instances.
    for (double p : ps) {
      int solvable = 0;
      const int kSamples = 30;
      Rng rng(200);
      for (int i = 0; i < kSamples; ++i) {
        const Graph g = generators::random_connected_gnp(7, 0.25, rng);
        const AdversaryStructure z = random_structure(g.nodes(), 2, 2, NodeSet{0, 6}, rng);
        const Instance inst(g, z, ViewFunction::social(g, 0, p, rng), 0, 6);
        solvable += analysis::solvable(inst);
      }
      rows.push_back({"G(7,.25)", fmt::fixed(p, 2),
                      fmt::fixed(100.0 * solvable / kSamples, 1), std::to_string(kSamples)});
    }
  }
  print_table("F5 — solvability vs social (gossip) knowledge probability", rows);
  return 0;
}

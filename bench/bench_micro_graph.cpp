// bench_micro_graph — microbenchmarks for the graph substrate used by the
// exact deciders (experiment µB of DESIGN.md).
#include <benchmark/benchmark.h>

#include "graph/connectivity.hpp"
#include "graph/cuts.hpp"
#include "graph/generators.hpp"
#include "graph/paths.hpp"
#include "util/rng.hpp"

namespace {

using namespace rmt;

void BM_ComponentOf(benchmark::State& state) {
  Rng rng(11);
  const Graph g = generators::random_connected_gnp(std::size_t(state.range(0)), 0.15, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(component_of(g, 0, NodeSet{NodeId(state.range(0) / 2)}));
  }
}
BENCHMARK(BM_ComponentOf)->Arg(16)->Arg(64)->Arg(256);

void BM_SimplePathEnumeration(benchmark::State& state) {
  const Graph g = generators::grid_graph(std::size_t(state.range(0)), 3);
  const NodeId t = NodeId(g.num_nodes() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_simple_paths(g, 0, t, 1u << 20));
  }
}
BENCHMARK(BM_SimplePathEnumeration)->Arg(3)->Arg(4)->Arg(5);

void BM_ConnectedSubsetEnumeration(benchmark::State& state) {
  Rng rng(12);
  const Graph g = generators::random_connected_gnp(std::size_t(state.range(0)), 0.25, rng);
  for (auto _ : state) {
    std::size_t count = 0;
    enumerate_connected_subsets(g, 0, {}, [&](const NodeSet&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_ConnectedSubsetEnumeration)->Arg(8)->Arg(12)->Arg(16);

void BM_MinVertexCut(benchmark::State& state) {
  Rng rng(13);
  const Graph g = generators::random_connected_gnp(std::size_t(state.range(0)), 0.1, rng);
  const NodeId t = NodeId(g.num_nodes() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_vertex_cut(g, 0, t));
  }
}
BENCHMARK(BM_MinVertexCut)->Arg(16)->Arg(64)->Arg(128);

void BM_InducedSubgraph(benchmark::State& state) {
  Rng rng(14);
  const Graph g = generators::random_connected_gnp(std::size_t(state.range(0)), 0.2, rng);
  const NodeSet half = ball(g, 0, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.induced(half));
  }
}
BENCHMARK(BM_InducedSubgraph)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();

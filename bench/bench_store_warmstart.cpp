// bench_store — the persistence acceptance bench: cold compute vs. a
// memory-cache hit vs. a disk-store hit *after a restart*, on the fig_f4
// shapes that cost real decider work, through svc::Engine end to end.
//
// One row per workload:
//   cold_us      — best-of-kReps simulate with no_cache (full compute);
//   mem_warm_us  — best-of-kReps the same request from the result cache;
//   disk_warm_us — best-of-kReps through a FRESH engine over the same
//                  store directory each rep: the memory cache is cold, so
//                  the answer must come off disk (pread + checksum), the
//                  warm-start path a restarted server takes;
//   speedup_mem  = cold / mem_warm, speedup_disk = cold / disk_warm.
//
// The `identical` column is the determinism gate: the cold, memory-warm,
// and every restarted disk-warm response must be byte-equal to the fresh
// sequential answer, and each restart must report cached=true with
// computed==0 — warm-start is only worth having if it serves the exact
// bytes without re-paying the decider. Both facts are RMT_CHECKed here
// (the emit step fails first) and tools/check_bench_json.py re-enforces
// the all-true identical column on the artifact.
//
// speedup_disk is RMT_CHECKed >= kMinDiskSpeedup: a disk tier that
// silently degenerated into recomputation would read ~1x.
#include <cstddef>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "store/store.hpp"
#include "svc/engine.hpp"

namespace {

using namespace rmt;

inline constexpr int kReps = 5;
// The acceptance floor: a restarted server answering from disk must beat
// re-running the decider by 20x on the fig_f4 shapes. Cold decides there
// cost milliseconds of joint-structure work; a verified pread costs tens
// of microseconds — 20x leaves slow-CI headroom while still separating
// "served from disk" from "recomputed" by orders of magnitude.
inline constexpr double kMinDiskSpeedup = 20.0;

svc::Request sim_request(const Instance& inst, bool no_cache = false) {
  return svc::Request{svc::QueryKind::kSimulate, inst, svc::SimParams{}, std::nullopt, no_cache};
}

/// The sequential, fresh-engine answer — the identity baseline.
std::string expected_result(const Instance& inst) {
  svc::Engine engine(nullptr);
  std::vector<svc::Request> batch;
  batch.push_back(sim_request(inst, /*no_cache=*/true));
  const std::vector<svc::Response> responses = engine.run(batch);
  RMT_CHECK(responses[0].status == svc::Response::Status::kOk,
            "bench_store: baseline decide failed");
  return responses[0].result;
}

/// The fig_f4 instance families (same shapes as bench_svc_throughput),
/// queried with the simulate kind: a seeded RMT-PKA protocol run costs
/// hundreds of microseconds of round-by-round message work while the
/// served-request fixed cost (instance-key hashing over the 2-threshold
/// structure) stays ~15us — the §16 simd kernels cut the *decide* kinds
/// to within one order of that fixed cost, which would make the 20x
/// floor measure the clock, not the tier. Simulate is deterministic in
/// content (seed derived from root seed and instance key), so the
/// byte-identity gate holds across restarts all the same.
std::vector<std::pair<std::string, Instance>> fig_f4_workloads() {
  std::vector<std::pair<std::string, Instance>> out;
  for (std::size_t n : {20u, 26u}) {
    const Graph g = generators::cycle_graph(n);
    const NodeSet players = g.nodes() - NodeSet{0, NodeId(n / 2)};
    out.emplace_back("cycle-" + std::to_string(n),
                     Instance(g, threshold_structure(players, 2), ViewFunction::k_hop(g, 1), 0,
                              NodeId(n / 2)));
  }
  for (std::size_t h : {6u, 8u}) {
    const Graph g = generators::parallel_paths(3, h);
    const NodeId r = NodeId(g.num_nodes() - 1);
    const NodeSet players = g.nodes() - NodeSet{0, r};
    out.emplace_back("3-paths-h" + std::to_string(h),
                     Instance(g, threshold_structure(players, 2), ViewFunction::k_hop(g, 1), 0, r));
  }
  return out;
}

template <typename F>
double best_us(F&& f) {
  double best = 0;
  for (int i = 0; i < kReps; ++i) {
    const double us = rmt::bench::time_us(f);
    if (i == 0 || us < best) best = us;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rmt;
  using namespace rmt::bench;

  Reporter rep(argc, argv, "bench_store");
  rep.columns({"workload", "cold_us", "mem_warm_us", "disk_warm_us", "speedup_mem",
               "speedup_disk", "identical"});

  const std::size_t jobs = rep.exec().jobs > 1
                               ? rep.exec().jobs
                               : std::max<std::size_t>(2, exec::ThreadPool::hardware_concurrency());
  exec::ThreadPool pool(jobs);

  const std::string scratch = "bench_store_scratch";
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);  // Store mkdirs one level only

  for (const auto& [name, inst] : fig_f4_workloads()) {
    const std::string expected = expected_result(inst);

    svc::Engine::Options opts;
    opts.store.dir = scratch + "/" + name;
    std::filesystem::remove_all(opts.store.dir);

    svc::Engine engine(&pool, opts);

    // Cold: the full compute path (no_cache bypasses both tiers).
    std::vector<svc::Request> cold_batch;
    cold_batch.push_back(sim_request(inst, /*no_cache=*/true));
    std::vector<svc::Response> last;
    const double cold_us = best_us([&] { last = engine.run(cold_batch); });
    bool identical = last[0].result == expected;

    // One cacheable request writes through memory AND disk; then every
    // rep must hit the memory tier.
    std::vector<svc::Request> warm_batch;
    warm_batch.push_back(sim_request(inst));
    last = engine.run(warm_batch);
    identical = identical && last[0].result == expected;
    const double mem_warm_us = best_us([&] { last = engine.run(warm_batch); });
    identical = identical && last[0].cached && last[0].result == expected;
    engine.publish_stats();

    // Disk-warm: a fresh engine per rep over the same store directory —
    // each one is a restarted server whose first answer must come off
    // disk, byte-identical, with zero recomputation.
    double disk_warm_us = 0;
    for (int i = 0; i < kReps; ++i) {
      svc::Engine restarted(&pool, opts);
      std::vector<svc::Response> out;
      const double us = time_us([&] { out = restarted.run(warm_batch); });
      identical = identical && out[0].status == svc::Response::Status::kOk &&
                  out[0].cached && out[0].result == expected;
      RMT_CHECK(restarted.stats().computed == 0,
                "bench_store: " + name + " restart recomputed instead of serving from disk");
      RMT_CHECK(restarted.stats().disk_hits == 1,
                "bench_store: " + name + " restart answered without touching the disk tier");
      restarted.publish_stats();
      if (i == 0 || us < disk_warm_us) disk_warm_us = us;
    }

    const double speedup_mem = mem_warm_us > 0 ? cold_us / mem_warm_us : 0.0;
    const double speedup_disk = disk_warm_us > 0 ? cold_us / disk_warm_us : 0.0;
    rep.row({name, cold_us, mem_warm_us, disk_warm_us, speedup_mem, speedup_disk, identical});
    RMT_CHECK(identical, "bench_store: " + name + " served bytes diverged from fresh sequential");
    RMT_CHECK(speedup_disk >= kMinDiskSpeedup,
              "bench_store: " + name + " disk-warm restart only " + fmt::fixed(speedup_disk, 2) +
                  "x faster than cold (floor " + fmt::fixed(kMinDiskSpeedup, 1) + "x)");
  }

  std::filesystem::remove_all(scratch);
  pool.publish_stats();
  rep.finish("STORE — persistent result store: cold vs. memory-warm vs. disk-warm restart");
  return 0;
}

// fig_f6_scale — Experiment F6: the efficiency theme of §5 at scale.
//
// The exact deciders and RMT-PKA are inherently exponential (F2); the
// point of §5 is that Z-CPA, given a polynomial membership subroutine, is
// *fully polynomial*. Here we run Z-CPA and CPA on geometric "sensor
// fields" from 100 to 1000 nodes — two to three orders of magnitude above
// anything the exact machinery touches — against an active value-flipping
// adversary, with threshold oracles (the poly case) and a sparse explicit
// structure.
//
// Expected shapes:
//  * Z-CPA: rounds grow with the diameter, messages near-linearly in n,
//    wall time near-linearly — deployable at sizes where the feasibility
//    *analysis* is astronomically out of reach; that division of labor is
//    the paper's point.
//  * CPA(t=1) is included as a cautionary baseline: its threshold is
//    *mis-calibrated* against the general adversary (corruption pockets
//    put several liars into one neighborhood), so it may decide WRONG
//    where Z-CPA — same wire format, exact structure knowledge — stays
//    correct. This is the paper's §1 motivation for general adversary
//    structures, reproduced at n = 1000.
//
// The sweep runs as an rmt::exec campaign: one shard per field size, each
// seeded from the campaign root via derive_seed, so the emitted rows are
// byte-identical at any --jobs level and the sweep supports --shard i/k
// slicing and --resume <manifest> checkpointing.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "obs/json.hpp"
#include "protocols/cpa.hpp"
#include "protocols/zcpa.hpp"

int main(int argc, char** argv) {
  using namespace rmt;
  using namespace rmt::bench;

  Reporter rep(argc, argv, "fig_f6_scale");
  rep.columns({"n", "edges", "protocol", "delivered", "rounds", "messages", "time(ms)"});

  const std::vector<std::size_t> field_sizes = {100, 250, 500, 1000};
  const exec::Campaign campaign("fig_f6_scale", field_sizes.size(), field_sizes.size(), 4242);

  // Pure function of the shard: every row it emits depends only on the
  // shard geometry and seed, never on scheduling.
  const auto run_shard = [&](const exec::Shard& shard) -> std::string {
    obs::json::Writer w;
    w.begin_array();
    for (std::size_t unit = shard.begin; unit < shard.end; ++unit) {
      const std::size_t n = field_sizes[unit];
      Rng rng(exec::derive_seed(shard.seed, unit - shard.begin));
      // Keep expected degree roughly constant: radius ~ sqrt(12 / n).
      const double radius = std::sqrt(12.0 / double(n));
      const Graph g = generators::random_geometric(n, radius, rng);
      const NodeId r = NodeId(n - 1);
      // Sparse explicit structure: a handful of 3-node corruption pockets.
      const AdversaryStructure z = random_structure(g.nodes(), 6, 3, NodeSet{0, r}, rng);
      const Instance inst = Instance::ad_hoc(g, z, 0, r);
      NodeSet corrupted;
      for (const NodeSet& m : z.maximal_sets())
        if (m.size() > corrupted.size()) corrupted = m;

      struct Variant {
        std::string label;
        const protocols::Protocol& proto;
      };
      const protocols::Zcpa zcpa;
      const protocols::Cpa cpa(1);
      for (const auto& [label, proto] :
           std::vector<Variant>{{"Z-CPA[explicit]", zcpa}, {"CPA(t=1)", cpa}}) {
        protocols::Outcome out;
        auto strategy = make_strategy("value-flip", 0);
        const double ms =
            time_us([&] { out = protocols::run_rmt(inst, proto, 7, corrupted, strategy.get()); }) /
            1000.0;
        w.begin_object();
        w.field("n", std::uint64_t(n));
        w.field("edges", std::uint64_t(g.num_edges()));
        w.field("protocol", label);
        w.field("delivered", std::string(out.correct ? "yes" : (out.wrong ? "WRONG" : "no")));
        w.field("rounds", std::uint64_t(out.stats.rounds));
        w.field("messages", std::uint64_t(out.stats.honest_messages));
        w.field("ms", ms);
        w.end_object();
      }
    }
    w.end_array();
    return w.take();
  };

  exec::ThreadPool sequential(1);
  exec::ThreadPool* pool = rep.pool() != nullptr ? rep.pool() : &sequential;
  const exec::Campaign::Result result = campaign.run(*pool, run_shard, rep.campaign_options());

  // Rows in shard (= field size) order; a --shard slice reports only its
  // own units, and a --resume run re-reports checkpointed ones.
  for (const std::optional<std::string>& payload : result.payloads) {
    if (!payload) continue;
    const obs::json::Value rows = obs::json::Value::parse(*payload);
    for (const obs::json::Value& row : rows.array()) {
      rep.row({row.find("n")->as_u64(), row.find("edges")->as_u64(),
               row.find("protocol")->as_string(), row.find("delivered")->as_string(),
               row.find("rounds")->as_u64(), row.find("messages")->as_u64(),
               row.find("ms")->as_double()});
    }
  }
  if (!result.complete())
    std::printf("note: partial sweep — %zu shard(s) outside this --shard slice\n",
                result.skipped);
  rep.finish("F6 — certified propagation at scale (geometric fields, active liar)");
  return 0;
}
